package obs

import (
	"sort"
	"sync"

	"avdb/internal/avtime"
)

// DefaultBuckets is the fixed histogram bucket layout used by every
// pipeline histogram: upper bounds in microseconds (world-time units),
// spanning one millisecond to ten seconds.  A fixed layout keeps
// snapshots byte-comparable across runs and across code versions.
var DefaultBuckets = []int64{
	int64(avtime.Millisecond),
	int64(2 * avtime.Millisecond),
	int64(5 * avtime.Millisecond),
	int64(10 * avtime.Millisecond),
	int64(20 * avtime.Millisecond),
	int64(50 * avtime.Millisecond),
	int64(100 * avtime.Millisecond),
	int64(200 * avtime.Millisecond),
	int64(500 * avtime.Millisecond),
	int64(avtime.Second),
	int64(2 * avtime.Second),
	int64(5 * avtime.Second),
	int64(10 * avtime.Second),
}

// Histogram accumulates observations into fixed buckets.  Counts[i]
// holds observations ≤ Bounds[i]; the final element of Counts holds the
// overflow.
type Histogram struct {
	Bounds []int64
	Counts []int64
	N      int64
	Sum    int64
	Min    int64
	Max    int64
}

func newHistogram(bounds []int64) *Histogram {
	return &Histogram{Bounds: bounds, Counts: make([]int64, len(bounds)+1)}
}

func (h *Histogram) observe(v int64) {
	i := sort.Search(len(h.Bounds), func(i int) bool { return v <= h.Bounds[i] })
	h.Counts[i]++
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if h.N == 0 || v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += v
}

// Mean reports the average observation (zero when empty).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Registry holds the named metrics: monotone counters, last-value
// gauges, and fixed-bucket histograms.  Metrics are created on first
// touch; histograms always use DefaultBuckets so layouts never diverge.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
		hists:    make(map[string]*Histogram),
	}
}

// Count adds delta to the named counter.
func (r *Registry) Count(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// SetGauge sets the named gauge.
func (r *Registry) SetGauge(name string, value int64) {
	r.mu.Lock()
	r.gauges[name] = value
	r.mu.Unlock()
}

// Observe records one value into the named histogram.
func (r *Registry) Observe(name string, value int64) {
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(DefaultBuckets)
		r.hists[name] = h
	}
	h.observe(value)
	r.mu.Unlock()
}

// Counter reads a counter (zero when absent).
func (r *Registry) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge reads a gauge, reporting whether it has been set.
func (r *Registry) Gauge(name string) (int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gauges[name]
	return v, ok
}

// HistogramSnapshot reads a copy of the named histogram, or nil.
func (r *Registry) HistogramSnapshot(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		return nil
	}
	cp := *h
	cp.Bounds = append([]int64(nil), h.Bounds...)
	cp.Counts = append([]int64(nil), h.Counts...)
	return &cp
}
