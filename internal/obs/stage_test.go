package obs

import (
	"testing"

	"avdb/internal/avtime"
)

// driveSink emits a representative telemetry sequence — nested spans,
// attrs, counters, gauges, histograms, a parent referenced after its
// child ends — and returns the ids BeginSpan handed back.
func driveSink(s Sink) []SpanID {
	var ids []SpanID
	root := s.BeginSpan(NoSpan, KindSession, "sess", 0)
	ids = append(ids, root)
	s.SpanAttr(root, "rate", 30)
	child := s.BeginSpan(root, KindChunk, "chunk", 10*avtime.Millisecond)
	ids = append(ids, child)
	s.SpanAttr(child, "seq", 1)
	s.Count("chunks", 1)
	s.Observe("latency_us", 250)
	s.EndSpan(child, 12*avtime.Millisecond)
	s.SetGauge("active", 1)
	sibling := s.BeginSpan(root, KindChunk, "chunk", 20*avtime.Millisecond)
	ids = append(ids, sibling)
	s.EndSpan(sibling, 21*avtime.Millisecond)
	s.EndSpan(root, 30*avtime.Millisecond)
	return ids
}

// TestStageReplayMatchesDirect is the stage's core guarantee: staging a
// sequence and flushing it into a collector produces a byte-identical
// snapshot to emitting the same sequence directly.
func TestStageReplayMatchesDirect(t *testing.T) {
	direct := NewCollector()
	driveSink(direct)
	want, err := direct.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}

	staged := NewCollector()
	var stage Stage
	ids := driveSink(&stage)
	for _, id := range ids {
		if id >= 0 {
			t.Fatalf("staged BeginSpan returned non-provisional id %v", id)
		}
	}
	if stage.Pending() == 0 {
		t.Fatal("nothing staged")
	}
	stage.Flush(staged)
	if stage.Pending() != 0 {
		t.Fatalf("%d ops left after Flush", stage.Pending())
	}
	got, err := staged.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("staged replay diverged from direct emission:\n got: %s\nwant: %s", got, want)
	}
}

// TestStageCrossFlushParents covers the engine's actual usage: a span
// begun in one flush cycle (a playback span at Begin) is referenced —
// attributed, parented under, ended — by operations staged in later
// cycles.  Real positive ids must pass through replay untouched.
func TestStageCrossFlushParents(t *testing.T) {
	direct := NewCollector()
	droot := direct.BeginSpan(NoSpan, KindPlayback, "pb", 0)
	dc := direct.BeginSpan(droot, KindChunk, "chunk", avtime.Millisecond)
	direct.EndSpan(dc, 2*avtime.Millisecond)
	direct.SpanAttr(droot, "ticks", 1)
	direct.EndSpan(droot, 3*avtime.Millisecond)
	want, err := direct.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}

	col := NewCollector()
	root := col.BeginSpan(NoSpan, KindPlayback, "pb", 0) // real id, pre-staging
	var stage Stage
	c := stage.BeginSpan(root, KindChunk, "chunk", avtime.Millisecond)
	stage.EndSpan(c, 2*avtime.Millisecond)
	stage.Flush(col)
	// Second cycle reuses the same buffers and still resolves the real id.
	stage.SpanAttr(root, "ticks", 1)
	stage.EndSpan(root, 3*avtime.Millisecond)
	stage.Flush(col)
	got, err := col.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("cross-flush replay diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestStageFlushNil drops the buffer without touching a sink.
func TestStageFlushNil(t *testing.T) {
	var stage Stage
	id := stage.BeginSpan(NoSpan, KindSession, "s", 0)
	stage.EndSpan(id, avtime.Millisecond)
	stage.Flush(nil)
	if stage.Pending() != 0 {
		t.Fatalf("%d ops left after nil Flush", stage.Pending())
	}
	// Provisional numbering restarts; a fresh cycle must still resolve.
	col := NewCollector()
	id2 := stage.BeginSpan(NoSpan, KindSession, "s2", 0)
	stage.EndSpan(id2, avtime.Millisecond)
	stage.Flush(col)
	snap := col.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "s2" {
		t.Fatalf("unexpected spans after reset: %+v", snap.Spans)
	}
}
