package obs

import (
	"sync"

	"avdb/internal/avtime"
)

// Attr is one integer span attribute in insertion order.
type Attr struct {
	Key   string `json:"key"`
	Value int64  `json:"value"`
}

// Span is one recorded span.  Start and End are world times; an open
// span has Open true and End equal to its start.
type Span struct {
	ID     SpanID           `json:"id"`
	Parent SpanID           `json:"parent,omitempty"`
	Kind   string           `json:"kind"`
	Name   string           `json:"name"`
	Start  avtime.WorldTime `json:"start"`
	End    avtime.WorldTime `json:"end"`
	Open   bool             `json:"open,omitempty"`
	Attrs  []Attr           `json:"attrs,omitempty"`
}

// Dur reports the span's world-time extent.
func (s Span) Dur() avtime.WorldTime { return s.End - s.Start }

// Tracer records spans.  IDs are assigned in call order, so a
// single-goroutine workload (the discrete-event graph runner) produces
// identical traces on every run.
type Tracer struct {
	mu    sync.Mutex
	spans []Span
	index map[SpanID]int // id -> position in spans
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{index: make(map[SpanID]int)}
}

// Begin opens a span under parent (NoSpan for a root).
func (t *Tracer) Begin(parent SpanID, kind, name string, at avtime.WorldTime) SpanID {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Kind: kind, Name: name,
		Start: at, End: at, Open: true,
	})
	t.index[id] = len(t.spans) - 1
	return id
}

// End closes a span.  Ending NoSpan, an unknown span, or a span that is
// already closed is a no-op.
func (t *Tracer) End(id SpanID, at avtime.WorldTime) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.index[id]
	if !ok || !t.spans[i].Open {
		return
	}
	t.spans[i].Open = false
	if at > t.spans[i].Start {
		t.spans[i].End = at
	}
}

// Attr attaches an integer attribute to a span.  Unknown spans are
// ignored; attributes may be added to closed spans (e.g. totals stamped
// after the fact).
func (t *Tracer) Attr(id SpanID, key string, value int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.index[id]
	if !ok {
		return
	}
	t.spans[i].Attrs = append(t.spans[i].Attrs, Attr{Key: key, Value: value})
}

// Spans returns a copy of the recorded spans in ID order.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		out[i].Attrs = append([]Attr(nil), out[i].Attrs...)
	}
	return out
}

// Len reports the number of recorded spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}
