package obs

import (
	"strings"
	"sync"
	"testing"

	"avdb/internal/avtime"
)

func TestTracerSpanLifecycle(t *testing.T) {
	tr := NewTracer()
	root := tr.Begin(NoSpan, KindSession, "sess-1", 0)
	child := tr.Begin(root, KindPlayback, "pb", 10)
	tr.Attr(child, "chunks", 42)
	tr.End(child, 100)
	tr.End(root, 200)
	tr.End(root, 300) // double end is a no-op

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].ID != root || spans[0].Parent != NoSpan || spans[0].End != 200 || spans[0].Open {
		t.Errorf("root span wrong: %+v", spans[0])
	}
	if spans[1].Parent != root || spans[1].Dur() != 90 {
		t.Errorf("child span wrong: %+v", spans[1])
	}
	if len(spans[1].Attrs) != 1 || spans[1].Attrs[0] != (Attr{"chunks", 42}) {
		t.Errorf("child attrs wrong: %+v", spans[1].Attrs)
	}
}

func TestTracerEndUnknownIsNoop(t *testing.T) {
	tr := NewTracer()
	tr.End(NoSpan, 10)
	tr.End(99, 10)
	tr.Attr(99, "k", 1)
	if tr.Len() != 0 {
		t.Fatalf("phantom spans recorded")
	}
}

func TestRegistryMetrics(t *testing.T) {
	r := NewRegistry()
	r.Count("a", 2)
	r.Count("a", 3)
	r.SetGauge("g", 7)
	r.SetGauge("g", 9)
	for _, v := range []int64{int64(avtime.Millisecond) / 2, int64(3 * avtime.Millisecond), int64(avtime.Minute)} {
		r.Observe("h", v)
	}
	if got := r.Counter("a"); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if got, ok := r.Gauge("g"); !ok || got != 9 {
		t.Errorf("gauge = %d,%v, want 9,true", got, ok)
	}
	h := r.HistogramSnapshot("h")
	if h == nil || h.N != 3 {
		t.Fatalf("histogram missing or wrong count: %+v", h)
	}
	if h.Counts[0] != 1 { // ≤ 1ms
		t.Errorf("bucket 0 = %d, want 1", h.Counts[0])
	}
	if h.Counts[len(h.Counts)-1] != 1 { // overflow
		t.Errorf("overflow bucket = %d, want 1", h.Counts[len(h.Counts)-1])
	}
	if h.Min != int64(avtime.Millisecond)/2 || h.Max != int64(avtime.Minute) {
		t.Errorf("min/max = %d/%d", h.Min, h.Max)
	}
}

func TestCollectorSnapshotDeterministic(t *testing.T) {
	build := func() *Snapshot {
		c := NewCollector()
		s := c.BeginSpan(NoSpan, KindSession, "s", 0)
		p := c.BeginSpan(s, KindPlayback, "p", 5)
		c.SpanAttr(p, "ticks", 3)
		c.Count("stream.chunks", 10)
		c.Count("stream.bytes", 1<<20)
		c.SetGauge("admission.used_buffers", 2)
		c.Observe("stream.chunk_latency_us", int64(12*avtime.Millisecond))
		c.EndSpan(p, 50)
		c.EndSpan(s, 60)
		return c.Snapshot()
	}
	a, b := build(), build()
	at, bt := a.Text(), b.Text()
	if at != bt {
		t.Fatalf("snapshot text differs between identical runs:\n%s\n----\n%s", at, bt)
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if aj != bj {
		t.Fatalf("snapshot JSON differs between identical runs")
	}
	if !strings.Contains(at, "counter stream.chunks") || !strings.Contains(at, "session \"s\"") {
		t.Errorf("snapshot text missing expected content:\n%s", at)
	}
	if a.Counter("stream.chunks") != 10 {
		t.Errorf("Counter accessor = %d", a.Counter("stream.chunks"))
	}
	if v, ok := a.Gauge("admission.used_buffers"); !ok || v != 2 {
		t.Errorf("Gauge accessor = %d,%v", v, ok)
	}
	if h := a.Histogram("stream.chunk_latency_us"); h == nil || h.N != 1 {
		t.Errorf("Histogram accessor wrong: %+v", h)
	}
}

func TestSnapshotTraceNesting(t *testing.T) {
	c := NewCollector()
	s := c.BeginSpan(NoSpan, KindSession, "sess", 0)
	p := c.BeginSpan(s, KindPlayback, "run", 0)
	conn := c.BeginSpan(p, KindConnection, "a.out->b.in", 0)
	ch := c.BeginSpan(conn, KindChunk, "a.out->b.in", 10)
	c.EndSpan(ch, 20)
	c.EndSpan(conn, 30)
	c.EndSpan(p, 30)
	c.EndSpan(s, 40)
	text := c.Snapshot().TraceText()
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	if len(lines) != 5 { // header + 4 spans
		t.Fatalf("got %d lines:\n%s", len(lines), text)
	}
	for i, prefix := range []string{"== trace ==", "session", "  playback", "    connection", "      chunk"} {
		if !strings.HasPrefix(lines[i], prefix) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], prefix)
		}
	}
}

func TestCollectorConcurrentSafety(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				id := c.BeginSpan(NoSpan, KindChunk, "x", avtime.WorldTime(j))
				c.SpanAttr(id, "j", int64(j))
				c.EndSpan(id, avtime.WorldTime(j+1))
				c.Count("n", 1)
				c.SetGauge("g", int64(j))
				c.Observe("h", int64(j))
			}
		}()
	}
	wg.Wait()
	snap := c.Snapshot()
	if snap.Counter("n") != 8*200 {
		t.Errorf("counter n = %d, want %d", snap.Counter("n"), 8*200)
	}
	if len(snap.Spans) != 8*200 {
		t.Errorf("spans = %d, want %d", len(snap.Spans), 8*200)
	}
}

// The no-op sink must not allocate: instrumented hot paths run with it
// (or with a nil Sink) in production configurations.
func TestNopSinkDoesNotAllocate(t *testing.T) {
	var sink Sink = NopSink{}
	allocs := testing.AllocsPerRun(1000, func() {
		id := sink.BeginSpan(NoSpan, KindChunk, "c", 0)
		sink.SpanAttr(id, "seq", 1)
		sink.Count("stream.chunks", 1)
		sink.Observe("stream.chunk_latency_us", 42)
		sink.SetGauge("g", 1)
		sink.EndSpan(id, 1)
	})
	if allocs != 0 {
		t.Fatalf("NopSink allocates %v per op, want 0", allocs)
	}
}
