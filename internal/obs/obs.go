// Package obs is the AV database's observability subsystem: span-based
// tracing keyed to the virtual presentation clock, a metrics registry
// (counters, gauges, fixed-bucket histograms), and deterministic export
// surfaces.
//
// The paper's client interface is asynchronous and stream-based (§3.3):
// clients start transfers and learn what happened through event
// notifications.  That makes visibility into scheduling, data rates and
// deadline misses a first-class database concern — a playback must be
// reconstructible after the fact as nested spans (session → playback →
// connection → chunk) and summarized as per-stream QoS metrics.
//
// Everything is measured in world time read from the virtual clock, so
// two runs of the same seeded workload produce byte-identical traces and
// metric snapshots: there is no wall-clock nondeterminism anywhere in
// the subsystem.
//
// Instrumentation points across the pipeline accept a Sink.  A nil Sink
// disables instrumentation entirely; the NopSink discards everything
// while exercising the call path.  Both keep hot paths allocation-free
// (benchmark-verified in the activity package), so observability costs
// nothing until it is switched on.
package obs

import "avdb/internal/avtime"

// SpanID identifies one span within a Tracer.  IDs are assigned
// sequentially from 1; NoSpan (zero) is "no parent" / "not recorded".
type SpanID int64

// NoSpan is the zero SpanID: no parent, or tracing disabled.
const NoSpan SpanID = 0

// Span kinds used by the pipeline.  The nesting is
// session → playback → activity/connection → chunk.
const (
	KindSession    = "session"
	KindPlayback   = "playback"
	KindActivity   = "activity"
	KindConnection = "connection"
	KindChunk      = "chunk"
)

// Sink receives instrumentation from the pipeline.  Implementations must
// be safe for concurrent use; all times are world times read from the
// caller's clock.  The Collector is the recording implementation and
// NopSink the discarding one.
type Sink interface {
	// BeginSpan opens a span under parent (NoSpan for a root) and
	// returns its ID.
	BeginSpan(parent SpanID, kind, name string, at avtime.WorldTime) SpanID
	// EndSpan closes an open span.  Ending NoSpan or an already-ended
	// span is a no-op.
	EndSpan(id SpanID, at avtime.WorldTime)
	// SpanAttr attaches an integer attribute to an open span.
	SpanAttr(id SpanID, key string, value int64)
	// Count adds delta to the named counter.
	Count(name string, delta int64)
	// SetGauge sets the named gauge.
	SetGauge(name string, value int64)
	// Observe records one value into the named histogram.
	Observe(name string, value int64)
}

// NopSink is a Sink that records nothing.  The zero value is ready to
// use; its methods never allocate, making it the cheapest way to keep
// instrumented call sites exercised without collecting anything.
type NopSink struct{}

// BeginSpan implements Sink.
func (NopSink) BeginSpan(SpanID, string, string, avtime.WorldTime) SpanID { return NoSpan }

// EndSpan implements Sink.
func (NopSink) EndSpan(SpanID, avtime.WorldTime) {}

// SpanAttr implements Sink.
func (NopSink) SpanAttr(SpanID, string, int64) {}

// Count implements Sink.
func (NopSink) Count(string, int64) {}

// SetGauge implements Sink.
func (NopSink) SetGauge(string, int64) {}

// Observe implements Sink.
func (NopSink) Observe(string, int64) {}
