package obs

import (
	"avdb/internal/avtime"
)

// Stage is a Sink that records every operation instead of applying it,
// so a batch of sessions ticked in parallel can each write telemetry
// race-free into a private buffer and the engine can replay the buffers
// into the real sink *in admission order* at the commit barrier.  That
// replay order is exactly the order a serial engine would have emitted,
// which is what keeps snapshot span ids — assigned by the tracer in
// arrival order — byte-identical for any worker count.
//
// BeginSpan cannot know the real id the tracer will assign at replay,
// so it hands back a provisional negative id (NoSpan is 0 and real ids
// are positive, so the spaces never collide).  Later operations naming
// a provisional id are rewritten to the real id during Flush; real and
// NoSpan ids pass through untouched.  This works because within one
// stage a span is always begun before it is ended or attributed — the
// same program order the real sink relies on.
//
// All buffers are reused across Flush cycles, so a warmed Stage stays
// allocation-free in steady state.  A Stage is not goroutine-safe; the
// engine gives each session its own.
type Stage struct {
	ops   []stageOp
	provs int     // BeginSpans staged this cycle (provisional id source)
	real  []SpanID // provisional index -> real id, filled during Flush
}

type stageKind uint8

const (
	stageBegin stageKind = iota
	stageEnd
	stageAttr
	stageCount
	stageGauge
	stageObserve
)

type stageOp struct {
	op   stageKind
	span SpanID // Begin: parent; End/Attr: target
	kind string // Begin: span kind; Attr: attribute key
	name string // Begin/Count/Gauge/Observe: name
	val  int64  // Begin/End: at; Attr/Count/Gauge/Observe: value
}

// BeginSpan implements Sink, returning a provisional negative id.
func (g *Stage) BeginSpan(parent SpanID, kind, name string, at avtime.WorldTime) SpanID {
	g.provs++
	prov := SpanID(-g.provs)
	g.ops = append(g.ops, stageOp{op: stageBegin, span: parent, kind: kind, name: name, val: int64(at)})
	return prov
}

// EndSpan implements Sink.
func (g *Stage) EndSpan(id SpanID, at avtime.WorldTime) {
	g.ops = append(g.ops, stageOp{op: stageEnd, span: id, val: int64(at)})
}

// SpanAttr implements Sink.
func (g *Stage) SpanAttr(id SpanID, key string, value int64) {
	g.ops = append(g.ops, stageOp{op: stageAttr, span: id, kind: key, val: value})
}

// Count implements Sink.
func (g *Stage) Count(name string, delta int64) {
	g.ops = append(g.ops, stageOp{op: stageCount, name: name, val: delta})
}

// SetGauge implements Sink.
func (g *Stage) SetGauge(name string, value int64) {
	g.ops = append(g.ops, stageOp{op: stageGauge, name: name, val: value})
}

// Observe implements Sink.
func (g *Stage) Observe(name string, value int64) {
	g.ops = append(g.ops, stageOp{op: stageObserve, name: name, val: value})
}

// Pending reports the number of staged operations.
func (g *Stage) Pending() int { return len(g.ops) }

// resolve maps a staged id to the real one: provisional negatives index
// the replay table, NoSpan and real positives pass through.
func (g *Stage) resolve(id SpanID) SpanID {
	if id >= 0 {
		return id
	}
	return g.real[-id-1]
}

// Flush replays every staged operation into sink in staging order,
// translating provisional span ids to the ids the sink assigns, then
// resets the stage for the next cycle.  A nil sink just discards the
// buffer.
func (g *Stage) Flush(sink Sink) {
	if sink == nil {
		g.ops = g.ops[:0]
		g.real = g.real[:0]
		g.provs = 0
		return
	}
	g.real = g.real[:0]
	for i := range g.ops {
		op := &g.ops[i]
		switch op.op {
		case stageBegin:
			id := sink.BeginSpan(g.resolve(op.span), op.kind, op.name, avtime.WorldTime(op.val))
			g.real = append(g.real, id)
		case stageEnd:
			sink.EndSpan(g.resolve(op.span), avtime.WorldTime(op.val))
		case stageAttr:
			sink.SpanAttr(g.resolve(op.span), op.kind, op.val)
		case stageCount:
			sink.Count(op.name, op.val)
		case stageGauge:
			sink.SetGauge(op.name, op.val)
		case stageObserve:
			sink.Observe(op.name, op.val)
		}
	}
	g.ops = g.ops[:0]
	g.real = g.real[:0]
	g.provs = 0
}
