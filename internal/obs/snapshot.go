package obs

import (
	"encoding/json"
	"fmt"
	"strings"

	"avdb/internal/avtime"
)

// MetricValue is one named counter or gauge reading.
type MetricValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// NamedHistogram is one named histogram reading.
type NamedHistogram struct {
	Name string     `json:"name"`
	Hist *Histogram `json:"hist"`
}

// Snapshot is a deterministic capture of a Collector: metrics sorted by
// name, spans in ID order.  Render it with MetricsText, TraceText, Text
// or JSON; identical workloads yield identical bytes.
type Snapshot struct {
	Counters   []MetricValue    `json:"counters"`
	Gauges     []MetricValue    `json:"gauges"`
	Histograms []NamedHistogram `json:"histograms"`
	Spans      []Span           `json:"spans"`
}

// Counter reads a counter from the snapshot (zero when absent).
func (s *Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge reads a gauge from the snapshot, reporting whether it was set.
func (s *Snapshot) Gauge(name string) (int64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram reads a histogram from the snapshot, or nil.
func (s *Snapshot) Histogram(name string) *Histogram {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h.Hist
		}
	}
	return nil
}

// MetricsText renders the metric section: one line per counter and
// gauge, a summary plus populated buckets per histogram.
func (s *Snapshot) MetricsText() string {
	var b strings.Builder
	b.WriteString("== metrics ==\n")
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "counter %-32s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "gauge   %-32s %d\n", g.Name, g.Value)
	}
	for _, nh := range s.Histograms {
		h := nh.Hist
		fmt.Fprintf(&b, "hist    %-32s n=%d sum=%v min=%v max=%v\n",
			nh.Name, h.N, avtime.WorldTime(h.Sum), avtime.WorldTime(h.Min), avtime.WorldTime(h.Max))
		for i, cnt := range h.Counts {
			if cnt == 0 {
				continue
			}
			if i < len(h.Bounds) {
				fmt.Fprintf(&b, "        le %-12v %d\n", avtime.WorldTime(h.Bounds[i]), cnt)
			} else {
				fmt.Fprintf(&b, "        le +inf        %d\n", cnt)
			}
		}
	}
	return b.String()
}

// TraceText renders the span tree, indented by nesting depth, each line
// carrying the span's kind, name, interval and attributes.
func (s *Snapshot) TraceText() string {
	children := make(map[SpanID][]SpanID, len(s.Spans))
	byID := make(map[SpanID]Span, len(s.Spans))
	var roots []SpanID
	for _, sp := range s.Spans {
		byID[sp.ID] = sp
		if sp.Parent == NoSpan {
			roots = append(roots, sp.ID)
		} else if _, ok := byID[sp.Parent]; ok {
			children[sp.Parent] = append(children[sp.Parent], sp.ID)
		} else {
			// Orphaned parents (ended before this snapshot's horizon)
			// surface the span as a root rather than dropping it.
			roots = append(roots, sp.ID)
		}
	}
	var b strings.Builder
	b.WriteString("== trace ==\n")
	var walk func(id SpanID, depth int)
	walk = func(id SpanID, depth int) {
		sp := byID[id]
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s %q [%v, %v)", sp.Kind, sp.Name, sp.Start, sp.End)
		if sp.Open {
			b.WriteString(" open")
		}
		for _, a := range sp.Attrs {
			fmt.Fprintf(&b, " %s=%d", a.Key, a.Value)
		}
		b.WriteByte('\n')
		for _, c := range children[id] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

// Text renders metrics followed by the trace.
func (s *Snapshot) Text() string {
	return s.MetricsText() + s.TraceText()
}

// JSON renders the snapshot as indented JSON.  Field order is fixed by
// the struct definitions and slice order, so the output is byte-stable.
func (s *Snapshot) JSON() (string, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}
