package obs

import (
	"sort"

	"avdb/internal/avtime"
)

// Collector is the recording Sink: a Tracer plus a Registry with a
// deterministic Snapshot.  One Collector serves a whole database
// instance; install it at the pipeline's instrumentation points and read
// it back with Snapshot.
type Collector struct {
	tracer *Tracer
	reg    *Registry
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{tracer: NewTracer(), reg: NewRegistry()}
}

// Tracer exposes the collector's span store.
func (c *Collector) Tracer() *Tracer { return c.tracer }

// Registry exposes the collector's metric store.
func (c *Collector) Registry() *Registry { return c.reg }

// BeginSpan implements Sink.
func (c *Collector) BeginSpan(parent SpanID, kind, name string, at avtime.WorldTime) SpanID {
	return c.tracer.Begin(parent, kind, name, at)
}

// EndSpan implements Sink.
func (c *Collector) EndSpan(id SpanID, at avtime.WorldTime) { c.tracer.End(id, at) }

// SpanAttr implements Sink.
func (c *Collector) SpanAttr(id SpanID, key string, value int64) { c.tracer.Attr(id, key, value) }

// Count implements Sink.
func (c *Collector) Count(name string, delta int64) { c.reg.Count(name, delta) }

// SetGauge implements Sink.
func (c *Collector) SetGauge(name string, value int64) { c.reg.SetGauge(name, value) }

// Observe implements Sink.
func (c *Collector) Observe(name string, value int64) { c.reg.Observe(name, value) }

// Snapshot captures the collector's state: metrics sorted by name and
// spans in ID order.  Two runs of the same seeded workload produce
// byte-identical snapshot renditions.
func (c *Collector) Snapshot() *Snapshot {
	s := &Snapshot{Spans: c.tracer.Spans()}
	c.reg.mu.Lock()
	for name, v := range c.reg.counters {
		s.Counters = append(s.Counters, MetricValue{Name: name, Value: v})
	}
	for name, v := range c.reg.gauges {
		s.Gauges = append(s.Gauges, MetricValue{Name: name, Value: v})
	}
	for name, h := range c.reg.hists {
		cp := *h
		cp.Bounds = append([]int64(nil), h.Bounds...)
		cp.Counts = append([]int64(nil), h.Counts...)
		s.Histograms = append(s.Histograms, NamedHistogram{Name: name, Hist: &cp})
	}
	c.reg.mu.Unlock()
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
