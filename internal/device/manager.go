package device

import (
	"fmt"
	"sort"
	"sync"

	"avdb/internal/obs"
)

// ErrHeld is wrapped by acquisition failures on exclusive devices.
var ErrHeld = fmt.Errorf("device: exclusive device held")

// Manager is the platform's device registry and arbiter.  Exclusive
// devices — converters, framebuffers, effects processors, the jukebox —
// must be acquired before use and are handed to one owner at a time;
// acquiring a held device fails immediately (the client decides whether to
// retry, per the paper's client-visible scheduling).
type Manager struct {
	mu      sync.Mutex
	devices map[string]Device
	holders map[string]string // device id -> owner
	sink    obs.Sink
}

// SetSink installs an observability sink.  Exclusive-device arbitration
// emits device.acquired / acquire_denied / released counters.
func (m *Manager) SetSink(s obs.Sink) {
	m.mu.Lock()
	m.sink = s
	m.mu.Unlock()
}

// NewManager returns an empty device manager.
func NewManager() *Manager {
	return &Manager{devices: make(map[string]Device), holders: make(map[string]string)}
}

// Register adds a device; duplicate IDs are an error.
func (m *Manager) Register(d Device) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.devices[d.ID()]; dup {
		return fmt.Errorf("device: duplicate registration %q", d.ID())
	}
	m.devices[d.ID()] = d
	return nil
}

// Get returns the device with the given ID.
func (m *Manager) Get(id string) (Device, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.devices[id]
	return d, ok
}

// List returns all device IDs, sorted.
func (m *Manager) List() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.devices))
	for id := range m.devices {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ListKind returns the IDs of all devices of the given kind, sorted.
func (m *Manager) ListKind(k Kind) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var ids []string
	for id, d := range m.devices {
		if d.DeviceKind() == k {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Acquire grants owner the use of an exclusive device.  For shared
// devices it is a no-op succeeding immediately.  Acquiring a device the
// owner already holds succeeds (acquisition is idempotent per owner).
func (m *Manager) Acquire(id, owner string) error {
	if owner == "" {
		return fmt.Errorf("device: empty owner")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.devices[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoDevice, id)
	}
	if !d.Exclusive() {
		return nil
	}
	if h, held := m.holders[id]; held && h != owner {
		if m.sink != nil {
			m.sink.Count("device.acquire_denied", 1)
		}
		return fmt.Errorf("%w: %q held by %q", ErrHeld, id, h)
	}
	m.holders[id] = owner
	if m.sink != nil {
		m.sink.Count("device.acquired", 1)
	}
	return nil
}

// Release returns an exclusive device.  Releasing a device the owner does
// not hold is an error — it indicates a bookkeeping bug in the caller.
func (m *Manager) Release(id, owner string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.devices[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoDevice, id)
	}
	if !d.Exclusive() {
		return nil
	}
	if h, held := m.holders[id]; !held || h != owner {
		return fmt.Errorf("device: %q not held by %q", id, owner)
	}
	delete(m.holders, id)
	if m.sink != nil {
		m.sink.Count("device.released", 1)
	}
	return nil
}

// Holder reports which owner holds an exclusive device, if any.
func (m *Manager) Holder(id string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.holders[id]
	return h, ok
}

// SetFaultHook installs a fault hook on every registered device that
// accepts one (disks and jukeboxes); units have no timed read path to
// fault.  Pass nil to clear.
func (m *Manager) SetFaultHook(h FaultHook) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range m.devices {
		if f, ok := d.(Faultable); ok {
			f.SetFaultHook(h)
		}
	}
}

// ReleaseAll returns every device held by owner, for session teardown.
func (m *Manager) ReleaseAll(owner string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, h := range m.holders {
		if h == owner {
			delete(m.holders, id)
			if m.sink != nil {
				m.sink.Count("device.released", 1)
			}
		}
	}
}
