// Package device models the special-purpose hardware an AV database
// platform controls (§3.3 "database platform"): storage devices (magnetic
// disks, an analog videodisc jukebox), converters (ADC/DAC), signal
// processors, framebuffers and video-effects processors.
//
// Devices expose the two properties the paper's design arguments rest on:
// bounded bandwidth (shared devices admit reservations up to a budget and
// refuse beyond it) and exclusivity (some devices serve one client at a
// time and must be acquired).  Timing is modeled, not incurred: a device
// reports how long an operation takes in world time and the scheduler
// advances its virtual clock accordingly.
package device

import (
	"fmt"
	"sync"
	"sync/atomic"

	"avdb/internal/avtime"
	"avdb/internal/media"
)

// Kind classifies a device.
type Kind int

// The device kinds of the platform.
const (
	KindDisk Kind = iota
	KindJukebox
	KindFramebuffer
	KindADC
	KindDAC
	KindDSP
	KindEffects
)

var kindNames = [...]string{
	KindDisk:        "disk",
	KindJukebox:     "jukebox",
	KindFramebuffer: "framebuffer",
	KindADC:         "adc",
	KindDAC:         "dac",
	KindDSP:         "dsp",
	KindEffects:     "effects-processor",
}

// String returns the kind's name.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Device is a piece of platform hardware.
type Device interface {
	// ID returns the device's unique identifier.
	ID() string
	// DeviceKind reports what the device is.
	DeviceKind() Kind
	// Exclusive reports whether the device serves one client at a time.
	Exclusive() bool
}

// ErrBandwidth is wrapped by bandwidth-reservation failures.
var ErrBandwidth = fmt.Errorf("device: insufficient bandwidth")

// ErrCapacity is wrapped by space-allocation failures.
var ErrCapacity = fmt.Errorf("device: insufficient capacity")

// ErrNoDevice is wrapped by lookups of unknown devices or discs.
var ErrNoDevice = fmt.Errorf("device: no such device")

// ErrDeviceFailed is wrapped by reads against a device that is down — a
// hard fault that retrying within the outage cannot fix.
var ErrDeviceFailed = fmt.Errorf("device: device failed")

// ErrTransientRead is wrapped by reads that failed transiently (a bad
// sector, a dropped bus transaction, a disc-swap misload).  Transient
// faults are the retryable class: a bounded retry with backoff is the
// prescribed recovery.
var ErrTransientRead = fmt.Errorf("device: transient read fault")

// FaultHook is consulted on a device's timed operations; a fault
// injector implements it to make simulated hardware misbehave on a
// deterministic schedule.  A nil hook is a fault-free device.
type FaultHook interface {
	// BeforeRead runs before a read of bytes from the device.  It
	// returns extra world time the fault costs (charged to the read) and
	// an error to inject: one wrapping ErrTransientRead for a retryable
	// fault, or ErrDeviceFailed for an outage.
	BeforeRead(deviceID string, bytes int64) (avtime.WorldTime, error)
	// BeforeSwap runs before a jukebox disc swap and may fail it.
	BeforeSwap(deviceID string, disc int) error
}

// Faultable is satisfied by devices that accept a fault hook and expose
// the pre-read check; the storage layer uses it to price and classify
// faulted reads.
type Faultable interface {
	SetFaultHook(FaultHook)
	CheckRead(bytes int64) (avtime.WorldTime, error)
}

// bwAccount is a reservable bandwidth budget shared by disks and the
// jukebox.
type bwAccount struct {
	mu       sync.Mutex
	total    media.DataRate
	reserved media.DataRate
}

func (b *bwAccount) reserve(r media.DataRate) error {
	if r < 0 {
		return fmt.Errorf("device: negative bandwidth reservation %v", r)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.reserved+r > b.total {
		return fmt.Errorf("%w: %v requested, %v of %v free", ErrBandwidth, r, b.total-b.reserved, b.total)
	}
	b.reserved += r
	return nil
}

func (b *bwAccount) release(r media.DataRate) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reserved -= r
	if b.reserved < 0 {
		b.reserved = 0
	}
}

func (b *bwAccount) free() media.DataRate {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total - b.reserved
}

func (b *bwAccount) reservedNow() media.DataRate {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reserved
}

// Disk is a magnetic disk: a capacity, a sustained transfer bandwidth and
// an average positioning (seek) time.  Bandwidth reservations implement
// the paper's resource pre-allocation: a stream reserves its data rate
// before flowing and competing reservations fail once the disk is fully
// subscribed.
type Disk struct {
	id       string
	capacity int64
	seek     avtime.WorldTime
	bw       bwAccount

	// geom and hook are read on the scheduler's hot path (a positioned
	// seek per batch run, a fault check per chunk), so they live behind
	// atomics instead of mu: SeekBetween/TrackOf/CheckRead stay
	// lock-free while SetGeometry/SetFaultHook swap whole values.
	geom atomic.Pointer[diskGeom] // nil = flat seek model
	hook atomic.Pointer[FaultHook]

	mu   sync.Mutex
	used int64
}

// diskGeom is the positional model installed by SetGeometry.
type diskGeom struct {
	tracks int              // >1 enables the positional seek model
	settle avtime.WorldTime // cost of the shortest positioned seek
}

// NewDisk returns a disk with the given geometry.
func NewDisk(id string, capacity int64, bandwidth media.DataRate, seek avtime.WorldTime) *Disk {
	if capacity <= 0 || bandwidth <= 0 || seek < 0 {
		panic(fmt.Sprintf("device: invalid disk %q: cap=%d bw=%v seek=%v", id, capacity, bandwidth, seek))
	}
	d := &Disk{id: id, capacity: capacity, seek: seek}
	d.bw.total = bandwidth
	return d
}

// ID implements Device.
func (d *Disk) ID() string { return d.id }

// DeviceKind implements Device.
func (d *Disk) DeviceKind() Kind { return KindDisk }

// Exclusive implements Device: disks are shared under bandwidth control.
func (d *Disk) Exclusive() bool { return false }

// Capacity reports the disk's total capacity in bytes.
func (d *Disk) Capacity() int64 { return d.capacity }

// Used reports the bytes currently allocated.
func (d *Disk) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Allocate accounts for bytes of new data, failing when the disk is full.
func (d *Disk) Allocate(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("device: negative allocation %d", bytes)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.used+bytes > d.capacity {
		return fmt.Errorf("%w: disk %q: %d requested, %d free", ErrCapacity, d.id, bytes, d.capacity-d.used)
	}
	d.used += bytes
	return nil
}

// Free returns bytes to the disk.
func (d *Disk) Free(bytes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.used -= bytes
	if d.used < 0 {
		d.used = 0
	}
}

// TotalBandwidth reports the disk's sustained transfer rate.
func (d *Disk) TotalBandwidth() media.DataRate { return d.bw.total }

// FreeBandwidth reports the unreserved bandwidth.
func (d *Disk) FreeBandwidth() media.DataRate { return d.bw.free() }

// ReservedBandwidth reports the bandwidth currently reserved.
func (d *Disk) ReservedBandwidth() media.DataRate { return d.bw.reservedNow() }

// Reserve pre-allocates bandwidth for a stream, failing when the disk
// cannot sustain it alongside existing reservations.
func (d *Disk) Reserve(r media.DataRate) error { return d.bw.reserve(r) }

// Release returns reserved bandwidth.
func (d *Disk) Release(r media.DataRate) { d.bw.release(r) }

// TransferTime reports the world time needed to move the given bytes with
// the given number of positioning operations.
func (d *Disk) TransferTime(bytes int64, seeks int) avtime.WorldTime {
	if bytes < 0 {
		bytes = 0
	}
	if seeks < 0 {
		seeks = 0
	}
	xfer := avtime.WorldTime(bytes * int64(avtime.Second) / int64(d.bw.total))
	return avtime.WorldTime(seeks)*d.seek + xfer
}

// SeekTime reports one average positioning time.
func (d *Disk) SeekTime() avtime.WorldTime { return d.seek }

// SetGeometry gives the disk a positional model: the capacity is divided
// into tracks and a seek between two tracks costs settle plus a
// distance-proportional component that reaches the disk's full seek time
// at maximum span.  tracks <= 1 restores the flat model, under which
// SeekBetween always reports the average seek — the degenerate
// configuration every disk starts in, so existing cost accounting is
// unchanged until a geometry is installed.  settle must lie in
// [0, seek].
func (d *Disk) SetGeometry(tracks int, settle avtime.WorldTime) error {
	if settle < 0 || settle > d.seek {
		return fmt.Errorf("device: disk %q settle %v outside [0, %v]", d.id, settle, d.seek)
	}
	if tracks < 1 {
		tracks = 1
	}
	d.geom.Store(&diskGeom{tracks: tracks, settle: settle})
	return nil
}

// Tracks reports the number of tracks in the positional model; 1 when
// the disk uses the flat seek model.
func (d *Disk) Tracks() int {
	g := d.geom.Load()
	if g == nil || g.tracks < 1 {
		return 1
	}
	return g.tracks
}

// TrackOf maps a byte offset to the track holding it.  Offsets are
// clamped into the disk, so callers may pass allocation-relative
// positions without range checks.
func (d *Disk) TrackOf(offset int64) int {
	tracks := int64(d.Tracks())
	if tracks <= 1 || offset <= 0 {
		return 0
	}
	if offset >= d.capacity {
		offset = d.capacity - 1
	}
	per := (d.capacity + tracks - 1) / tracks
	return int(offset / per)
}

// SeekBetween reports the positioning cost of moving the head from one
// track to another.  Under the flat model (tracks <= 1) it is the
// average seek regardless of arguments; under a geometry, staying on the
// same track is free and the cost grows linearly with distance from
// settle up to the full average seek across the whole platter.
func (d *Disk) SeekBetween(from, to int) avtime.WorldTime {
	g := d.geom.Load()
	if g == nil || g.tracks <= 1 {
		return d.seek
	}
	tracks, settle := g.tracks, g.settle
	if from == to {
		return 0
	}
	dist := int64(from - to)
	if dist < 0 {
		dist = -dist
	}
	span := int64(tracks - 1)
	if dist > span {
		dist = span
	}
	return settle + avtime.WorldTime(int64(d.seek-settle)*dist/span)
}

// SetFaultHook implements Faultable.
func (d *Disk) SetFaultHook(h FaultHook) {
	d.hook.Store(&h)
}

// CheckRead implements Faultable: it consults the fault hook before a
// read of bytes, returning any extra latency and injected error.
func (d *Disk) CheckRead(bytes int64) (avtime.WorldTime, error) {
	p := d.hook.Load()
	if p == nil || *p == nil {
		return 0, nil
	}
	return (*p).BeforeRead(d.id, bytes)
}

// Jukebox is an analog videodisc jukebox: several discs, of which a
// small number fit the platter slots at once; switching a disc into a
// slot costs a swap latency.  "An analog videodisc jukebox provides a
// video storage capacity difficult to achieve using magnetic disks"
// (§3.3) — here it is the bulk (tertiary) tier for LV-encoded values.
// A jukebox starts with one slot, the classic single-platter player;
// SetSlots widens it.
type Jukebox struct {
	id      string
	perDisc int64
	swap    avtime.WorldTime
	bw      bwAccount

	mu     sync.Mutex
	used   []int64
	loaded []int // discs in the platter slots, most recently used first
	slots  int   // platter slots; discs loaded at once
	swaps  int64 // completed disc swaps
	hook   FaultHook
}

// NewJukebox returns a jukebox with the given number of discs and one
// platter slot (disc 0 loaded).
func NewJukebox(id string, discs int, perDiscCapacity int64, bandwidth media.DataRate, swap avtime.WorldTime) *Jukebox {
	if discs <= 0 || perDiscCapacity <= 0 || bandwidth <= 0 || swap < 0 {
		panic(fmt.Sprintf("device: invalid jukebox %q", id))
	}
	j := &Jukebox{id: id, perDisc: perDiscCapacity, swap: swap, used: make([]int64, discs), loaded: []int{0}, slots: 1}
	j.bw.total = bandwidth
	return j
}

// ID implements Device.
func (j *Jukebox) ID() string { return j.id }

// DeviceKind implements Device.
func (j *Jukebox) DeviceKind() Kind { return KindJukebox }

// Exclusive implements Device: the single reading head serializes access,
// so the jukebox is acquired exclusively.
func (j *Jukebox) Exclusive() bool { return true }

// Discs reports the number of discs.
func (j *Jukebox) Discs() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.used)
}

// CurrentDisc reports the most recently accessed loaded disc.
func (j *Jukebox) CurrentDisc() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.loaded[0]
}

// Slots reports the number of platter slots.
func (j *Jukebox) Slots() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.slots
}

// SetSlots resizes the platter to n slots.  Shrinking ejects the least
// recently used discs beyond the new size at no cost (ejection overlaps
// the next load's swap).
func (j *Jukebox) SetSlots(n int) error {
	if n < 1 {
		return fmt.Errorf("device: jukebox %q needs at least one slot, got %d", j.id, n)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.slots = n
	if len(j.loaded) > n {
		j.loaded = j.loaded[:n]
	}
	return nil
}

// Loaded returns the discs currently in the platter slots, most recently
// used first.
func (j *Jukebox) Loaded() []int {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]int, len(j.loaded))
	copy(out, j.loaded)
	return out
}

// DiscLoaded reports whether the disc sits in a platter slot, so a read
// of it needs no swap.
func (j *Jukebox) DiscLoaded(disc int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.slotOf(disc) >= 0
}

// Swaps reports the number of completed disc swaps.
func (j *Jukebox) Swaps() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.swaps
}

// slotOf returns the index of disc in j.loaded, or -1; j.mu is held.
func (j *Jukebox) slotOf(disc int) int {
	for i, d := range j.loaded {
		if d == disc {
			return i
		}
	}
	return -1
}

// Capacity reports the total capacity across discs.
func (j *Jukebox) Capacity() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.perDisc * int64(len(j.used))
}

// Allocate accounts for bytes on the given disc.
func (j *Jukebox) Allocate(disc int, bytes int64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if disc < 0 || disc >= len(j.used) {
		return fmt.Errorf("%w: jukebox %q has no disc %d", ErrNoDevice, j.id, disc)
	}
	if bytes < 0 {
		return fmt.Errorf("device: negative allocation %d", bytes)
	}
	if j.used[disc]+bytes > j.perDisc {
		return fmt.Errorf("%w: disc %d: %d requested, %d free", ErrCapacity, disc, bytes, j.perDisc-j.used[disc])
	}
	j.used[disc] += bytes
	return nil
}

// Free returns bytes on the given disc.
func (j *Jukebox) Free(disc int, bytes int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if disc < 0 || disc >= len(j.used) {
		return
	}
	j.used[disc] -= bytes
	if j.used[disc] < 0 {
		j.used[disc] = 0
	}
}

// AccessTime reports the world time to read bytes from the given disc,
// including a swap if it sits in no platter slot, and loads it.  Loading
// into a full platter ejects the least recently used disc.
func (j *Jukebox) AccessTime(disc int, bytes int64) (avtime.WorldTime, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if disc < 0 || disc >= len(j.used) {
		return 0, fmt.Errorf("%w: jukebox %q has no disc %d", ErrNoDevice, j.id, disc)
	}
	var t avtime.WorldTime
	if i := j.slotOf(disc); i >= 0 {
		// Already loaded: bump to most recently used.
		copy(j.loaded[1:], j.loaded[:i])
		j.loaded[0] = disc
	} else {
		if j.hook != nil {
			if err := j.hook.BeforeSwap(j.id, disc); err != nil {
				// The swap mechanism jammed: the platter keeps its discs
				// and the failed attempt still costs a swap latency.
				return j.swap, err
			}
		}
		t += j.swap
		j.swaps++
		if len(j.loaded) < j.slots {
			j.loaded = append(j.loaded, 0)
		}
		copy(j.loaded[1:], j.loaded)
		j.loaded[0] = disc
	}
	if bytes > 0 {
		t += avtime.WorldTime(bytes * int64(avtime.Second) / int64(j.bw.total))
	}
	return t, nil
}

// TotalBandwidth reports the read head's transfer rate.
func (j *Jukebox) TotalBandwidth() media.DataRate { return j.bw.total }

// Reserve pre-allocates read bandwidth.
func (j *Jukebox) Reserve(r media.DataRate) error { return j.bw.reserve(r) }

// Release returns reserved bandwidth.
func (j *Jukebox) Release(r media.DataRate) { j.bw.release(r) }

// SetFaultHook implements Faultable.
func (j *Jukebox) SetFaultHook(h FaultHook) {
	j.mu.Lock()
	j.hook = h
	j.mu.Unlock()
}

// CheckRead implements Faultable.
func (j *Jukebox) CheckRead(bytes int64) (avtime.WorldTime, error) {
	j.mu.Lock()
	h := j.hook
	j.mu.Unlock()
	if h == nil {
		return 0, nil
	}
	return h.BeforeRead(j.id, bytes)
}

// Unit is a non-storage device: framebuffer, ADC, DAC, DSP or video
// effects processor.  Throughput is the data rate the unit can process;
// exclusive units (converters, framebuffers, effects processors — the
// paper's expensive shared boxes) serve one owner at a time via the
// Manager.
type Unit struct {
	id         string
	kind       Kind
	throughput media.DataRate
	exclusive  bool
}

// NewUnit returns a non-storage device.
func NewUnit(id string, kind Kind, throughput media.DataRate, exclusive bool) *Unit {
	if kind == KindDisk || kind == KindJukebox {
		panic(fmt.Sprintf("device: unit %q with storage kind %v", id, kind))
	}
	if throughput <= 0 {
		panic(fmt.Sprintf("device: unit %q without throughput", id))
	}
	return &Unit{id: id, kind: kind, throughput: throughput, exclusive: exclusive}
}

// ID implements Device.
func (u *Unit) ID() string { return u.id }

// DeviceKind implements Device.
func (u *Unit) DeviceKind() Kind { return u.kind }

// Exclusive implements Device.
func (u *Unit) Exclusive() bool { return u.exclusive }

// Throughput reports the unit's processing rate.
func (u *Unit) Throughput() media.DataRate { return u.throughput }

// ProcessTime reports the world time the unit needs to process the given
// bytes.
func (u *Unit) ProcessTime(bytes int64) avtime.WorldTime {
	if bytes <= 0 {
		return 0
	}
	return avtime.WorldTime(bytes * int64(avtime.Second) / int64(u.throughput))
}
