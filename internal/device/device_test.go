package device

import (
	"errors"
	"sync"
	"testing"

	"avdb/internal/avtime"
	"avdb/internal/media"
)

func testDisk() *Disk {
	return NewDisk("disk0", 1_000_000, 10*media.MBPerSecond, 10*avtime.Millisecond)
}

func TestKindString(t *testing.T) {
	if KindDisk.String() != "disk" || KindEffects.String() != "effects-processor" {
		t.Error("kind names wrong")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("out-of-range kind name wrong")
	}
}

func TestDiskAllocation(t *testing.T) {
	d := testDisk()
	if d.Capacity() != 1_000_000 || d.Used() != 0 {
		t.Error("initial accounting wrong")
	}
	if err := d.Allocate(600_000); err != nil {
		t.Fatal(err)
	}
	if err := d.Allocate(600_000); !errors.Is(err, ErrCapacity) {
		t.Errorf("over-allocation error = %v", err)
	}
	d.Free(300_000)
	if d.Used() != 300_000 {
		t.Errorf("Used = %d", d.Used())
	}
	if err := d.Allocate(-1); err == nil {
		t.Error("negative allocation accepted")
	}
	d.Free(1_000_000_000) // over-free clamps
	if d.Used() != 0 {
		t.Errorf("Used after over-free = %d", d.Used())
	}
}

func TestDiskBandwidthReservation(t *testing.T) {
	d := testDisk()
	if d.TotalBandwidth() != 10*media.MBPerSecond {
		t.Error("bandwidth wrong")
	}
	if err := d.Reserve(6 * media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	if err := d.Reserve(6 * media.MBPerSecond); !errors.Is(err, ErrBandwidth) {
		t.Errorf("over-reservation error = %v", err)
	}
	if d.FreeBandwidth() != 4*media.MBPerSecond || d.ReservedBandwidth() != 6*media.MBPerSecond {
		t.Error("free/reserved bandwidth wrong")
	}
	d.Release(6 * media.MBPerSecond)
	if err := d.Reserve(10 * media.MBPerSecond); err != nil {
		t.Errorf("full reservation after release failed: %v", err)
	}
	d.Release(100 * media.MBPerSecond) // over-release clamps
	if d.ReservedBandwidth() != 0 {
		t.Error("over-release did not clamp")
	}
	if err := d.Reserve(-1); err == nil {
		t.Error("negative reservation accepted")
	}
}

func TestDiskTransferTime(t *testing.T) {
	d := testDisk()
	// 1 MB at 10 MB/s = 100ms, plus one 10ms seek.
	if got := d.TransferTime(1_000_000, 1); got != 110*avtime.Millisecond {
		t.Errorf("TransferTime = %v, want 110ms", got)
	}
	if got := d.TransferTime(0, 0); got != 0 {
		t.Errorf("zero transfer = %v", got)
	}
	if got := d.TransferTime(-5, -1); got != 0 {
		t.Errorf("negative transfer = %v", got)
	}
	if d.SeekTime() != 10*avtime.Millisecond {
		t.Error("SeekTime wrong")
	}
}

func TestDiskConcurrentReservations(t *testing.T) {
	d := NewDisk("d", 1000, 100*media.BytePerSecond, 0)
	var wg sync.WaitGroup
	grants := make(chan struct{}, 200)
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if d.Reserve(media.BytePerSecond) == nil {
				grants <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(grants)
	var n int
	for range grants {
		n++
	}
	if n != 100 {
		t.Errorf("granted %d reservations of budget 100", n)
	}
}

func TestJukebox(t *testing.T) {
	j := NewJukebox("jb0", 3, 1000, 1*media.MBPerSecond, 5*avtime.Second)
	if j.Discs() != 3 || j.Capacity() != 3000 || j.CurrentDisc() != 0 {
		t.Error("jukebox geometry wrong")
	}
	if err := j.Allocate(1, 800); err != nil {
		t.Fatal(err)
	}
	if err := j.Allocate(1, 300); !errors.Is(err, ErrCapacity) {
		t.Errorf("disc over-allocation error = %v", err)
	}
	if err := j.Allocate(5, 1); err == nil {
		t.Error("allocation on missing disc accepted")
	}
	if err := j.Allocate(0, -1); err == nil {
		t.Error("negative allocation accepted")
	}
	j.Free(1, 800)
	j.Free(9, 10) // no-op

	// Reading the loaded disc has no swap; switching pays one.
	dt, err := j.AccessTime(0, 1_000_000)
	if err != nil || dt != avtime.Second {
		t.Errorf("same-disc access = %v, %v", dt, err)
	}
	dt, err = j.AccessTime(2, 0)
	if err != nil || dt != 5*avtime.Second {
		t.Errorf("swap access = %v, %v", dt, err)
	}
	if j.CurrentDisc() != 2 {
		t.Error("swap did not load disc")
	}
	if _, err := j.AccessTime(7, 0); err == nil {
		t.Error("access to missing disc succeeded")
	}
	if !j.Exclusive() {
		t.Error("jukebox should be exclusive")
	}
	if err := j.Reserve(2 * media.MBPerSecond); !errors.Is(err, ErrBandwidth) {
		t.Error("jukebox over-reservation accepted")
	}
	if err := j.Reserve(media.MBPerSecond); err != nil {
		t.Error(err)
	}
	j.Release(media.MBPerSecond)
	if j.TotalBandwidth() != media.MBPerSecond {
		t.Error("bandwidth wrong")
	}
}

func TestUnit(t *testing.T) {
	u := NewUnit("fx0", KindEffects, 50*media.MBPerSecond, true)
	if u.ID() != "fx0" || u.DeviceKind() != KindEffects || !u.Exclusive() {
		t.Error("unit metadata wrong")
	}
	if u.Throughput() != 50*media.MBPerSecond {
		t.Error("throughput wrong")
	}
	// 50 MB at 50 MB/s = 1s.
	if got := u.ProcessTime(50_000_000); got != avtime.Second {
		t.Errorf("ProcessTime = %v", got)
	}
	if got := u.ProcessTime(-1); got != 0 {
		t.Errorf("negative ProcessTime = %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unit with storage kind did not panic")
			}
		}()
		NewUnit("bad", KindDisk, 1, false)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unit without throughput did not panic")
			}
		}()
		NewUnit("bad", KindDSP, 0, false)
	}()
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"disk zero capacity":  func() { NewDisk("d", 0, 1, 0) },
		"disk zero bandwidth": func() { NewDisk("d", 1, 0, 0) },
		"disk negative seek":  func() { NewDisk("d", 1, 1, -1) },
		"jukebox no discs":    func() { NewJukebox("j", 0, 1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestManagerRegistry(t *testing.T) {
	m := NewManager()
	d := testDisk()
	if err := m.Register(d); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(d); err == nil {
		t.Error("duplicate registration accepted")
	}
	if got, ok := m.Get("disk0"); !ok || got != Device(d) {
		t.Error("Get failed")
	}
	if _, ok := m.Get("nope"); ok {
		t.Error("Get of missing device succeeded")
	}
	if err := m.Register(NewUnit("dac0", KindDAC, media.MBPerSecond, true)); err != nil {
		t.Fatal(err)
	}
	if ids := m.List(); len(ids) != 2 || ids[0] != "dac0" {
		t.Errorf("List = %v", ids)
	}
	if ids := m.ListKind(KindDisk); len(ids) != 1 || ids[0] != "disk0" {
		t.Errorf("ListKind = %v", ids)
	}
}

func TestManagerExclusiveAcquisition(t *testing.T) {
	m := NewManager()
	fx := NewUnit("fx0", KindEffects, media.MBPerSecond, true)
	disk := testDisk()
	if err := m.Register(fx); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(disk); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("fx0", "alice"); err != nil {
		t.Fatal(err)
	}
	// Idempotent per owner.
	if err := m.Acquire("fx0", "alice"); err != nil {
		t.Errorf("re-acquire by holder failed: %v", err)
	}
	if err := m.Acquire("fx0", "bob"); !errors.Is(err, ErrHeld) {
		t.Errorf("contended acquire error = %v", err)
	}
	if h, ok := m.Holder("fx0"); !ok || h != "alice" {
		t.Error("Holder wrong")
	}
	// Shared devices acquire without contention.
	if err := m.Acquire("disk0", "bob"); err != nil {
		t.Errorf("shared acquire failed: %v", err)
	}
	if err := m.Release("disk0", "anyone"); err != nil {
		t.Errorf("shared release failed: %v", err)
	}
	// Wrong-owner release is an error.
	if err := m.Release("fx0", "bob"); err == nil {
		t.Error("release by non-holder accepted")
	}
	if err := m.Release("fx0", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("fx0", "bob"); err != nil {
		t.Errorf("acquire after release failed: %v", err)
	}
	// Errors for unknown devices and empty owners.
	if err := m.Acquire("nope", "x"); err == nil {
		t.Error("acquire of missing device accepted")
	}
	if err := m.Release("nope", "x"); err == nil {
		t.Error("release of missing device accepted")
	}
	if err := m.Acquire("fx0", ""); err == nil {
		t.Error("empty owner accepted")
	}
	// Double release is an error.
	if err := m.Release("fx0", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := m.Release("fx0", "bob"); err == nil {
		t.Error("double release accepted")
	}
}

func TestManagerReleaseAll(t *testing.T) {
	m := NewManager()
	for _, id := range []string{"a", "b", "c"} {
		if err := m.Register(NewUnit(id, KindDAC, 1, true)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Acquire("a", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("b", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire("c", "bob"); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll("alice")
	if _, held := m.Holder("a"); held {
		t.Error("a still held")
	}
	if _, held := m.Holder("b"); held {
		t.Error("b still held")
	}
	if h, held := m.Holder("c"); !held || h != "bob" {
		t.Error("bob's device released")
	}
}

func TestDiskFlatSeekModel(t *testing.T) {
	d := testDisk()
	if got := d.Tracks(); got != 1 {
		t.Fatalf("fresh disk has %d tracks, want 1", got)
	}
	// Under the degenerate single-track model every positioning costs
	// the flat average seek, and every offset is on track 0 — the
	// behavior all pre-geometry accounting was built on.
	if got := d.SeekBetween(0, 0); got != d.SeekTime() {
		t.Fatalf("flat SeekBetween = %v, want %v", got, d.SeekTime())
	}
	if got := d.SeekBetween(3, 7); got != d.SeekTime() {
		t.Fatalf("flat SeekBetween(3,7) = %v, want %v", got, d.SeekTime())
	}
	if got := d.TrackOf(999_999); got != 0 {
		t.Fatalf("flat TrackOf = %d, want 0", got)
	}
}

func TestDiskGeometrySeeks(t *testing.T) {
	d := testDisk() // 1MB, seek 10ms
	settle := avtime.WorldTime(1 * avtime.Millisecond)
	if err := d.SetGeometry(11, settle); err != nil {
		t.Fatal(err)
	}
	if got := d.Tracks(); got != 11 {
		t.Fatalf("Tracks = %d, want 11", got)
	}
	if got := d.SeekBetween(4, 4); got != 0 {
		t.Fatalf("same-track seek = %v, want 0", got)
	}
	// Distance scales linearly from settle to the full average seek.
	adj := d.SeekBetween(4, 5)
	want := settle + (d.SeekTime()-settle)/10
	if adj != want {
		t.Fatalf("adjacent seek = %v, want %v", adj, want)
	}
	if got := d.SeekBetween(0, 10); got != d.SeekTime() {
		t.Fatalf("full-span seek = %v, want %v", got, d.SeekTime())
	}
	if a, b := d.SeekBetween(2, 9), d.SeekBetween(9, 2); a != b {
		t.Fatalf("seek not symmetric: %v vs %v", a, b)
	}
	// TrackOf partitions the capacity; out-of-range offsets clamp.
	if got := d.TrackOf(0); got != 0 {
		t.Fatalf("TrackOf(0) = %d, want 0", got)
	}
	if got := d.TrackOf(d.Capacity() + 5); got != 10 {
		t.Fatalf("TrackOf(beyond) = %d, want 10", got)
	}
	if got := d.TrackOf(-1); got != 0 {
		t.Fatalf("TrackOf(-1) = %d, want 0", got)
	}
}

func TestDiskGeometryValidation(t *testing.T) {
	d := testDisk()
	if err := d.SetGeometry(8, -1); err == nil {
		t.Fatal("negative settle accepted")
	}
	if err := d.SetGeometry(8, d.SeekTime()+1); err == nil {
		t.Fatal("settle above seek accepted")
	}
	// tracks <= 1 restores the flat model.
	if err := d.SetGeometry(16, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.SetGeometry(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := d.SeekBetween(1, 1); got != d.SeekTime() {
		t.Fatalf("flat model not restored: SeekBetween = %v", got)
	}
}

func TestJukeboxPlatterSlots(t *testing.T) {
	j := NewJukebox("jb0", 4, 1000, 1*media.MBPerSecond, 5*avtime.Second)
	if j.Slots() != 1 {
		t.Fatalf("default slots = %d, want 1 (legacy single-platter)", j.Slots())
	}
	if err := j.SetSlots(0); err == nil {
		t.Error("zero slots accepted")
	}
	if err := j.SetSlots(2); err != nil {
		t.Fatal(err)
	}
	// Disc 0 starts loaded; loading disc 1 fills the second slot with no
	// eviction, so both stay swap-free afterwards.
	if _, err := j.AccessTime(1, 0); err != nil {
		t.Fatal(err)
	}
	if !j.DiscLoaded(0) || !j.DiscLoaded(1) {
		t.Fatalf("loaded = %v, want discs 0 and 1", j.Loaded())
	}
	if j.Swaps() != 1 {
		t.Errorf("swaps = %d, want 1", j.Swaps())
	}
	dt, err := j.AccessTime(0, 0)
	if err != nil || dt != 0 {
		t.Errorf("access to resident disc cost %v, %v; want free", dt, err)
	}
	// Disc 2 evicts the least recently used resident (disc 1: disc 0 was
	// just bumped).
	if _, err := j.AccessTime(2, 0); err != nil {
		t.Fatal(err)
	}
	if !j.DiscLoaded(0) || j.DiscLoaded(1) || !j.DiscLoaded(2) {
		t.Fatalf("loaded = %v, want discs 2 and 0", j.Loaded())
	}
	if j.CurrentDisc() != 2 {
		t.Errorf("current disc = %d, want 2", j.CurrentDisc())
	}
	if j.Swaps() != 2 {
		t.Errorf("swaps = %d, want 2", j.Swaps())
	}
	// Shrinking drops the colder residents.
	if err := j.SetSlots(1); err != nil {
		t.Fatal(err)
	}
	if got := j.Loaded(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("loaded after shrink = %v, want [2]", got)
	}
}

// jamOnce fails the first swap it sees.
type jamOnce struct{ jammed *bool }

func (h jamOnce) BeforeRead(string, int64) (avtime.WorldTime, error) { return 0, nil }
func (h jamOnce) BeforeSwap(string, int) error {
	if !*h.jammed {
		*h.jammed = true
		return errors.New("jam")
	}
	return nil
}

func TestJukeboxSwapJamKeepsPlatter(t *testing.T) {
	j := NewJukebox("jb0", 3, 1000, 1*media.MBPerSecond, 5*avtime.Second)
	jammed := false
	j.SetFaultHook(jamOnce{jammed: &jammed})
	dt, err := j.AccessTime(1, 0)
	if err == nil {
		t.Fatal("jammed swap succeeded")
	}
	if dt != 5*avtime.Second {
		t.Errorf("jammed swap cost %v, want the full swap latency", dt)
	}
	// The platter kept its disc and the failed attempt is not a swap.
	if !j.DiscLoaded(0) || j.DiscLoaded(1) || j.Swaps() != 0 {
		t.Errorf("after jam: loaded %v, swaps %d; want [0], 0", j.Loaded(), j.Swaps())
	}
	// The retry goes through.
	if _, err := j.AccessTime(1, 0); err != nil {
		t.Fatal(err)
	}
	if !j.DiscLoaded(1) || j.Swaps() != 1 {
		t.Errorf("after retry: loaded %v, swaps %d; want disc 1, 1", j.Loaded(), j.Swaps())
	}
}
