package temporal

import (
	"strings"
	"testing"

	"avdb/internal/avtime"
	"avdb/internal/media"
)

// newscastClip builds the paper's Fig. 1 composite: videoTrack spanning
// [t0, t3), the other tracks spanning [t1, t2) inside it.
func newscastClip(t *testing.T) *Composite {
	t.Helper()
	video := media.NewVideoValue(media.TypeRawVideo30, 4, 4, 8)
	for i := 0; i < 120; i++ { // 4s of video: [0, 4s)
		if err := video.AppendFrame(media.NewFrame(4, 4, 8)); err != nil {
			t.Fatal(err)
		}
	}
	english := media.NewAudioValue(media.TypeVoiceAudio, 1)
	if err := english.AppendSamples(make([]int16, 16000)); err != nil { // 2s
		t.Fatal(err)
	}
	english.Translate(avtime.Second) // [1s, 3s)
	french := media.NewAudioValue(media.TypeVoiceAudio, 1)
	if err := french.AppendSamples(make([]int16, 16000)); err != nil {
		t.Fatal(err)
	}
	french.Translate(avtime.Second)
	subs := media.NewTextStreamValue(2000) // 2s of ticks
	if err := subs.AddCue(media.Cue{At: 0, Dur: 900, Text: "good evening"}); err != nil {
		t.Fatal(err)
	}
	subs.Translate(avtime.Second)

	c := NewComposite("Newscast.clip")
	if err := c.Add("videoTrack", video); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("englishTrack", english); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("frenchTrack", french); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("subtitleTrack", subs); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompositeBasics(t *testing.T) {
	c := newscastClip(t)
	if c.Name() != "Newscast.clip" || c.NumTracks() != 4 {
		t.Error("composite shape wrong")
	}
	if _, ok := c.Track("videoTrack"); !ok {
		t.Error("Track lookup failed")
	}
	if _, ok := c.Track("nope"); ok {
		t.Error("missing track found")
	}
	tracks := c.Tracks()
	if len(tracks) != 4 || tracks[0].Name != "videoTrack" {
		t.Error("track order lost")
	}
	if c.Start() != 0 || c.Duration() != 4*avtime.Second {
		t.Errorf("hull = [%v, %v)", c.Start(), c.Duration())
	}
}

func TestCompositeAddValidation(t *testing.T) {
	c := NewComposite("c")
	v := media.NewTextStreamValue(10)
	if err := c.Add("", v); err == nil {
		t.Error("empty name accepted")
	}
	if err := c.Add("t", nil); err == nil {
		t.Error("nil value accepted")
	}
	if err := c.Add("t", v); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("t", v); err == nil {
		t.Error("duplicate track accepted")
	}
}

func TestCompositeActiveAt(t *testing.T) {
	c := newscastClip(t)
	if got := c.ActiveAt(500 * avtime.Millisecond); len(got) != 1 || got[0].Name != "videoTrack" {
		t.Errorf("active at 0.5s = %d tracks", len(got))
	}
	if got := c.ActiveAt(2 * avtime.Second); len(got) != 4 {
		t.Errorf("active at 2s = %d tracks, want 4", len(got))
	}
	if got := c.ActiveAt(3500 * avtime.Millisecond); len(got) != 1 {
		t.Errorf("active at 3.5s = %d tracks, want 1", len(got))
	}
	if got := c.ActiveAt(10 * avtime.Second); got != nil {
		t.Error("active past end")
	}
}

func TestCompositeTranslate(t *testing.T) {
	c := newscastClip(t)
	c.Translate(10 * avtime.Second)
	if c.Start() != 10*avtime.Second {
		t.Errorf("Start after translate = %v", c.Start())
	}
	// Internal correlations preserved.
	spec := []Correlation{
		{A: "englishTrack", B: "videoTrack", Rel: avtime.RelDuring},
	}
	if err := c.Verify(spec); err != nil {
		t.Errorf("correlation broken by translate: %v", err)
	}
}

func TestVerifyCorrelations(t *testing.T) {
	c := newscastClip(t)
	good := []Correlation{
		{A: "englishTrack", B: "videoTrack", Rel: avtime.RelDuring},
		{A: "videoTrack", B: "englishTrack", Rel: avtime.RelContains},
		{A: "englishTrack", B: "frenchTrack", Rel: avtime.RelEqual},
		{A: "englishTrack", B: "subtitleTrack", Rel: avtime.RelEqual},
	}
	if err := c.Verify(good); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []Correlation{{A: "videoTrack", B: "englishTrack", Rel: avtime.RelBefore}}
	if err := c.Verify(bad); err == nil {
		t.Error("violated correlation accepted")
	}
	unknown := []Correlation{{A: "nope", B: "videoTrack", Rel: avtime.RelEqual}}
	if err := c.Verify(unknown); err == nil {
		t.Error("unknown track accepted")
	}
	unknownB := []Correlation{{A: "videoTrack", B: "nope", Rel: avtime.RelEqual}}
	if err := c.Verify(unknownB); err == nil {
		t.Error("unknown B track accepted")
	}
	if s := good[0].String(); !strings.Contains(s, "during") {
		t.Errorf("Correlation String = %q", s)
	}
}

func TestTimelineBoundaries(t *testing.T) {
	c := newscastClip(t)
	tl := c.Timeline()
	if len(tl.Entries) != 4 {
		t.Fatal("entries wrong")
	}
	marks := tl.Boundaries()
	// Fig. 1 has four distinct boundaries: t0=0, t1=1s, t2=3s, t3=4s.
	want := []avtime.WorldTime{0, avtime.Second, 3 * avtime.Second, 4 * avtime.Second}
	if len(marks) != len(want) {
		t.Fatalf("boundaries = %v", marks)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Errorf("boundary %d = %v, want %v", i, marks[i], want[i])
		}
	}
}

func TestTimelineASCII(t *testing.T) {
	c := newscastClip(t)
	out := c.Timeline().ASCII(40)
	if !strings.Contains(out, "videoTrack") || !strings.Contains(out, "subtitleTrack") {
		t.Errorf("diagram missing tracks:\n%s", out)
	}
	// The video row is fully shaded; the audio rows shaded in the middle.
	lines := strings.Split(out, "\n")
	var videoRow, englishRow string
	for _, l := range lines {
		if strings.Contains(l, "videoTrack") {
			videoRow = l
		}
		if strings.Contains(l, "englishTrack") {
			englishRow = l
		}
	}
	if strings.Contains(videoRow, ".") {
		t.Errorf("video row should be fully shaded: %q", videoRow)
	}
	if !strings.HasPrefix(strings.TrimSpace(strings.SplitN(englishRow, "|", 2)[1]), ".") {
		t.Errorf("english row should start unshaded: %q", englishRow)
	}
	if !strings.Contains(out, "t0 = 0.000000s") || !strings.Contains(out, "t3 = 4.000000s") {
		t.Errorf("legend missing:\n%s", out)
	}
	// Degenerate cases.
	empty := (&Timeline{Name: "e"}).ASCII(20)
	if !strings.Contains(empty, "(empty)") {
		t.Error("empty timeline rendering wrong")
	}
	tiny := c.Timeline().ASCII(1) // clamped to minimum width
	if tiny == "" {
		t.Error("tiny width produced nothing")
	}
}

func TestTimelineASCIIPointTrack(t *testing.T) {
	// An untimed image occupies a point; it must still render a mark.
	c := NewComposite("p")
	img := media.NewImageValue(media.NewFrame(2, 2, 8))
	img.Translate(avtime.Second)
	if err := c.Add("img", img); err != nil {
		t.Fatal(err)
	}
	v := media.NewVideoValue(media.TypeRawVideo30, 2, 2, 8)
	for i := 0; i < 60; i++ {
		if err := v.AppendFrame(media.NewFrame(2, 2, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Add("vid", v); err != nil {
		t.Fatal(err)
	}
	out := c.Timeline().ASCII(20)
	if !strings.Contains(out, "img") {
		t.Errorf("point track missing:\n%s", out)
	}
}
