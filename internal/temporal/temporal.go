// Package temporal implements temporal composition (§4.1): the
// aggregation of temporally correlated media values into multi-track
// composites, per-instance timeline diagrams in the style of the paper's
// Fig. 1, and verification of declared track correlations using Allen's
// interval algebra.
//
// "In general, temporal composition is necessary when a number of media
// values are simultaneously presented. ... A track-like structure is a
// common feature among the emerging multimedia data formats.  Temporal
// composition naturally describes this structure and so is essential to
// AV databases."
package temporal

import (
	"fmt"
	"strings"

	"avdb/internal/avtime"
	"avdb/internal/media"
)

// Track is one component of a temporal composite: a named media value
// positioned on the composite's world timeline via the value's own
// transform (Translate/Scale).
type Track struct {
	Name  string
	Value media.Value
}

// Interval reports the track's placement on the world timeline.
func (t *Track) Interval() avtime.Interval { return t.Value.Interval() }

// Composite is a tcomp instance: an ordered set of uniquely named tracks.
// Correlations between the tracks are "specified, on a per-instance
// basis, by a timeline diagram" — the placement of each track's value.
type Composite struct {
	name   string
	tracks []*Track
	byName map[string]*Track
}

// NewComposite returns an empty temporal composite.
func NewComposite(name string) *Composite {
	return &Composite{name: name, byName: make(map[string]*Track)}
}

// Name returns the composite's name.
func (c *Composite) Name() string { return c.name }

// Add appends a track; duplicate names are an error.
func (c *Composite) Add(name string, v media.Value) error {
	if name == "" {
		return fmt.Errorf("temporal: empty track name")
	}
	if v == nil {
		return fmt.Errorf("temporal: nil value for track %q", name)
	}
	if _, dup := c.byName[name]; dup {
		return fmt.Errorf("temporal: composite %q already has track %q", c.name, name)
	}
	t := &Track{Name: name, Value: v}
	c.tracks = append(c.tracks, t)
	c.byName[name] = t
	return nil
}

// NumTracks reports the number of tracks.
func (c *Composite) NumTracks() int { return len(c.tracks) }

// Track returns the named track.
func (c *Composite) Track(name string) (*Track, bool) {
	t, ok := c.byName[name]
	return t, ok
}

// Tracks returns the tracks in insertion order.
func (c *Composite) Tracks() []*Track {
	return append([]*Track(nil), c.tracks...)
}

// Interval reports the convex hull of all track intervals.
func (c *Composite) Interval() avtime.Interval {
	var hull avtime.Interval
	for i, t := range c.tracks {
		if i == 0 {
			hull = t.Interval()
			continue
		}
		hull = hull.Union(t.Interval())
	}
	return hull
}

// Start reports the earliest track start.
func (c *Composite) Start() avtime.WorldTime { return c.Interval().Start }

// Duration reports the span from the earliest start to the latest end.
func (c *Composite) Duration() avtime.WorldTime { return c.Interval().Dur }

// Translate shifts every track by dw, moving the whole composite on the
// world timeline.
func (c *Composite) Translate(dw avtime.WorldTime) {
	for _, t := range c.tracks {
		t.Value.Translate(dw)
	}
}

// ActiveAt returns the tracks whose intervals contain w, in track order.
func (c *Composite) ActiveAt(w avtime.WorldTime) []*Track {
	var out []*Track
	for _, t := range c.tracks {
		if t.Interval().Contains(w) {
			out = append(out, t)
		}
	}
	return out
}

// Correlation declares that track A stands in the given Allen relation to
// track B.
type Correlation struct {
	A, B string
	Rel  avtime.Relation
}

// String formats the correlation.
func (co Correlation) String() string {
	return fmt.Sprintf("%s %v %s", co.A, co.Rel, co.B)
}

// Verify checks every declared correlation against the tracks' actual
// intervals, returning an error describing the first violation.
func (c *Composite) Verify(spec []Correlation) error {
	for _, co := range spec {
		a, ok := c.byName[co.A]
		if !ok {
			return fmt.Errorf("temporal: correlation references unknown track %q", co.A)
		}
		b, ok := c.byName[co.B]
		if !ok {
			return fmt.Errorf("temporal: correlation references unknown track %q", co.B)
		}
		if got := avtime.Relate(a.Interval(), b.Interval()); got != co.Rel {
			return fmt.Errorf("temporal: %v violated: %s %v %s (intervals %v, %v)",
				co, co.A, got, co.B, a.Interval(), b.Interval())
		}
	}
	return nil
}

// Timeline is a snapshot of a composite's track placements, the data
// behind a timeline diagram.
type Timeline struct {
	Name    string
	Entries []TimelineEntry
}

// TimelineEntry is one row of a timeline diagram.
type TimelineEntry struct {
	Track    string
	Interval avtime.Interval
}

// Timeline captures the composite's current placements.
func (c *Composite) Timeline() *Timeline {
	tl := &Timeline{Name: c.name}
	for _, t := range c.tracks {
		tl.Entries = append(tl.Entries, TimelineEntry{Track: t.Name, Interval: t.Interval()})
	}
	return tl
}

// Boundaries returns the distinct start/end times across all entries, in
// ascending order — the t0, t1, t2... marks of the paper's Fig. 1.
func (tl *Timeline) Boundaries() []avtime.WorldTime {
	seen := make(map[avtime.WorldTime]bool)
	var out []avtime.WorldTime
	add := func(w avtime.WorldTime) {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	for _, e := range tl.Entries {
		add(e.Interval.Start)
		add(e.Interval.End())
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ASCII renders the timeline as a diagram in the style of Fig. 1: one row
// per track, '=' inside the track's interval, '.' outside, with a
// boundary legend.  Width is the number of diagram columns (minimum 10).
func (tl *Timeline) ASCII(width int) string {
	if width < 10 {
		width = 10
	}
	if len(tl.Entries) == 0 {
		return fmt.Sprintf("%s: (empty)\n", tl.Name)
	}
	hull := tl.Entries[0].Interval
	nameWidth := len("time")
	for _, e := range tl.Entries {
		hull = hull.Union(e.Interval)
		if len(e.Track) > nameWidth {
			nameWidth = len(e.Track)
		}
	}
	if hull.Dur == 0 {
		hull.Dur = 1
	}
	col := func(w avtime.WorldTime) int {
		c := int(int64(w-hull.Start) * int64(width) / int64(hull.Dur))
		if c < 0 {
			c = 0
		}
		if c > width {
			c = width
		}
		return c
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%v .. %v]\n", tl.Name, hull.Start, hull.End())
	for _, e := range tl.Entries {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		lo, hi := col(e.Interval.Start), col(e.Interval.End())
		if hi == lo && !e.Interval.IsEmpty() {
			hi = lo + 1
			if hi > width {
				lo, hi = width-1, width
			}
		}
		for i := lo; i < hi; i++ {
			row[i] = '='
		}
		fmt.Fprintf(&b, "  %-*s |%s|\n", nameWidth, e.Track, row)
	}
	// Boundary legend: t0, t1, ... with their world times.
	marks := tl.Boundaries()
	ruler := make([]byte, width+1)
	for i := range ruler {
		ruler[i] = ' '
	}
	for i, m := range marks {
		pos := col(m)
		if pos > width-1 {
			pos = width - 1
		}
		ruler[pos] = byte('0' + i%10)
	}
	fmt.Fprintf(&b, "  %-*s  %s\n", nameWidth, "time", ruler)
	for i, m := range marks {
		fmt.Fprintf(&b, "  t%d = %v\n", i, m)
	}
	return b.String()
}
