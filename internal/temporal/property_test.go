package temporal

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"avdb/internal/avtime"
	"avdb/internal/media"
)

// Property tests over randomly built composites, fixed-seed so failures
// reproduce.  Tracks are cheap text streams placed at random offsets.

const propIterations = 300

// randomComposite builds a composite of 1..6 text-stream tracks with
// random durations and translations.
func randomComposite(t *testing.T, r *rand.Rand) *Composite {
	t.Helper()
	c := NewComposite("prop")
	n := 1 + r.Intn(6)
	for i := 0; i < n; i++ {
		v := media.NewTextStreamValue(avtime.ObjectTime(1 + r.Intn(5000))) // up to 5s of 1ms ticks
		v.Translate(avtime.WorldTime(r.Int63n(int64(10 * avtime.Second))))
		if err := c.Add(fmt.Sprintf("track%d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestPropHullContainsEveryTrack(t *testing.T) {
	r := rand.New(rand.NewSource(1993))
	for i := 0; i < propIterations; i++ {
		c := randomComposite(t, r)
		hull := c.Interval()
		for _, tr := range c.Tracks() {
			if !hull.ContainsInterval(tr.Interval()) {
				t.Fatalf("iter %d: hull %v misses track %s %v", i, hull, tr.Name, tr.Interval())
			}
		}
		if c.Start() != hull.Start || c.Duration() != hull.Dur {
			t.Fatalf("iter %d: Start/Duration disagree with Interval", i)
		}
	}
}

func TestPropTranslateShiftsAndInverts(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < propIterations; i++ {
		c := randomComposite(t, r)
		before := make(map[string]avtime.Interval)
		for _, tr := range c.Tracks() {
			before[tr.Name] = tr.Interval()
		}
		hull := c.Interval()
		d := avtime.WorldTime(r.Int63n(int64(avtime.Minute)) - int64(30*avtime.Second))
		c.Translate(d)
		if got := c.Interval(); got != hull.Shift(d) {
			t.Fatalf("iter %d: Translate(%v) moved hull %v to %v, want %v", i, d, hull, got, hull.Shift(d))
		}
		for _, tr := range c.Tracks() {
			if tr.Interval() != before[tr.Name].Shift(d) {
				t.Fatalf("iter %d: track %s moved to %v, want %v", i, tr.Name, tr.Interval(), before[tr.Name].Shift(d))
			}
		}
		c.Translate(-d)
		for _, tr := range c.Tracks() {
			if tr.Interval() != before[tr.Name] {
				t.Fatalf("iter %d: Translate(-%v) did not restore track %s", i, d, tr.Name)
			}
		}
	}
}

func TestPropVerifyAcceptsActualRelations(t *testing.T) {
	// Correlations derived from the tracks' actual placements must verify;
	// translation preserves all pairwise relations, so they must still
	// verify after the composite moves.
	r := rand.New(rand.NewSource(42))
	for i := 0; i < propIterations; i++ {
		c := randomComposite(t, r)
		tracks := c.Tracks()
		var spec []Correlation
		for _, a := range tracks {
			for _, b := range tracks {
				if a == b {
					continue
				}
				spec = append(spec, Correlation{A: a.Name, B: b.Name, Rel: avtime.Relate(a.Interval(), b.Interval())})
			}
		}
		if err := c.Verify(spec); err != nil {
			t.Fatalf("iter %d: self-derived correlations rejected: %v", i, err)
		}
		c.Translate(avtime.WorldTime(r.Int63n(int64(avtime.Minute))))
		if err := c.Verify(spec); err != nil {
			t.Fatalf("iter %d: relations not translation-invariant: %v", i, err)
		}
	}
}

func TestPropTimelineBoundariesSortedUnique(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < propIterations; i++ {
		c := randomComposite(t, r)
		marks := c.Timeline().Boundaries()
		if !sort.SliceIsSorted(marks, func(a, b int) bool { return marks[a] < marks[b] }) {
			t.Fatalf("iter %d: boundaries not sorted: %v", i, marks)
		}
		seen := make(map[avtime.WorldTime]bool)
		for _, m := range marks {
			if seen[m] {
				t.Fatalf("iter %d: duplicate boundary %v", i, m)
			}
			seen[m] = true
		}
		// Every track endpoint appears.
		for _, tr := range c.Tracks() {
			if !seen[tr.Interval().Start] || !seen[tr.Interval().End()] {
				t.Fatalf("iter %d: track %s endpoints missing from %v", i, tr.Name, marks)
			}
		}
	}
}

func TestPropActiveAtMatchesContainment(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < propIterations; i++ {
		c := randomComposite(t, r)
		w := avtime.WorldTime(r.Int63n(int64(20 * avtime.Second)))
		active := make(map[string]bool)
		for _, tr := range c.ActiveAt(w) {
			active[tr.Name] = true
		}
		for _, tr := range c.Tracks() {
			if tr.Interval().Contains(w) != active[tr.Name] {
				t.Fatalf("iter %d: ActiveAt(%v) disagrees with %s interval %v", i, w, tr.Name, tr.Interval())
			}
		}
	}
}
