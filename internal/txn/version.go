package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"avdb/internal/media"
	"avdb/internal/schema"
)

// ErrNoVersion is wrapped when an operation names a version number that
// does not exist in the attribute's chain.
var ErrNoVersion = errors.New("txn: no such version")

// Version is one entry in a media attribute's version chain.
type Version struct {
	Num   int // 1-based, ascending
	Value media.Value
	Note  string
}

// versionKey identifies a versioned attribute.
type versionKey struct {
	oid  schema.OID
	attr string
}

// VersionStore keeps version chains for media-valued attributes, the
// version control §2 calls for in multimedia databases: editing
// applications check in successive cuts of a video value and can retrieve
// or revert to any earlier version.
type VersionStore struct {
	mu     sync.RWMutex
	chains map[versionKey][]Version
}

// NewVersionStore returns an empty version store.
func NewVersionStore() *VersionStore {
	return &VersionStore{chains: make(map[versionKey][]Version)}
}

// Checkin appends a new version of the attribute's value and returns its
// version number.
func (vs *VersionStore) Checkin(oid schema.OID, attr string, v media.Value, note string) (int, error) {
	if v == nil {
		return 0, fmt.Errorf("txn: nil value checked in for %v.%s", oid, attr)
	}
	vs.mu.Lock()
	defer vs.mu.Unlock()
	k := versionKey{oid, attr}
	num := len(vs.chains[k]) + 1
	vs.chains[k] = append(vs.chains[k], Version{Num: num, Value: v, Note: note})
	return num, nil
}

// Current returns the newest version.
func (vs *VersionStore) Current(oid schema.OID, attr string) (Version, bool) {
	vs.mu.RLock()
	defer vs.mu.RUnlock()
	chain := vs.chains[versionKey{oid, attr}]
	if len(chain) == 0 {
		return Version{}, false
	}
	return chain[len(chain)-1], true
}

// Get returns a specific version.
func (vs *VersionStore) Get(oid schema.OID, attr string, num int) (Version, bool) {
	vs.mu.RLock()
	defer vs.mu.RUnlock()
	chain := vs.chains[versionKey{oid, attr}]
	if num < 1 || num > len(chain) {
		return Version{}, false
	}
	return chain[num-1], true
}

// History returns the full chain, oldest first.
func (vs *VersionStore) History(oid schema.OID, attr string) []Version {
	vs.mu.RLock()
	defer vs.mu.RUnlock()
	return append([]Version(nil), vs.chains[versionKey{oid, attr}]...)
}

// Revert appends a copy of an older version as the new current version,
// preserving history.
func (vs *VersionStore) Revert(oid schema.OID, attr string, num int) (int, error) {
	old, ok := vs.Get(oid, attr, num)
	if !ok {
		return 0, fmt.Errorf("%w: version %d of %v.%s", ErrNoVersion, num, oid, attr)
	}
	return vs.Checkin(oid, attr, old.Value, fmt.Sprintf("revert to v%d", num))
}

// VersionedAttrs lists the attributes of an object that have chains,
// sorted.
func (vs *VersionStore) VersionedAttrs(oid schema.OID) []string {
	vs.mu.RLock()
	defer vs.mu.RUnlock()
	var out []string
	for k := range vs.chains {
		if k.oid == oid {
			out = append(out, k.attr)
		}
	}
	sort.Strings(out)
	return out
}
