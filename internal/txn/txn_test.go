package txn

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"avdb/internal/media"
)

func TestModeCompatibilityMatrix(t *testing.T) {
	// Spot-check the classic matrix.
	cases := []struct {
		a, b Mode
		want bool
	}{
		{ModeIS, ModeX, false},
		{ModeIS, ModeSIX, true},
		{ModeIX, ModeIX, true},
		{ModeIX, ModeS, false},
		{ModeS, ModeS, true},
		{ModeS, ModeIX, false},
		{ModeSIX, ModeIS, true},
		{ModeSIX, ModeSIX, false},
		{ModeX, ModeIS, false},
	}
	for _, c := range cases {
		if compatible[c.a][c.b] != c.want {
			t.Errorf("compatible[%v][%v] = %v, want %v", c.a, c.b, compatible[c.a][c.b], c.want)
		}
		// Compatibility is symmetric.
		if compatible[c.a][c.b] != compatible[c.b][c.a] {
			t.Errorf("compatibility not symmetric for %v,%v", c.a, c.b)
		}
	}
	if ModeSIX.String() != "SIX" || Mode(9).String() != "Mode(9)" {
		t.Error("mode names wrong")
	}
}

func TestLubUpgrades(t *testing.T) {
	if lub[ModeIX][ModeS] != ModeSIX || lub[ModeS][ModeIX] != ModeSIX {
		t.Error("IX+S should upgrade to SIX")
	}
	if lub[ModeIS][ModeX] != ModeX || lub[ModeSIX][ModeIS] != ModeSIX {
		t.Error("lub wrong")
	}
	f := func(a, b uint8) bool {
		x, y := Mode(a%5), Mode(b%5)
		// lub is commutative and idempotent-ish (result >= both args in
		// the lattice: lub(result, x) == result).
		r := lub[x][y]
		return lub[y][x] == r && lub[r][x] == r && lub[r][y] == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, ClassRes("N"), ModeS); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, ClassRes("N"), ModeS); err != nil {
		t.Fatal(err)
	}
	if m, ok := lm.Held(1, ClassRes("N")); !ok || m != ModeS {
		t.Error("Held wrong")
	}
	lm.ReleaseAll(1)
	if _, ok := lm.Held(1, ClassRes("N")); ok {
		t.Error("released lock still held")
	}
}

func TestExclusiveBlocksAndWakes(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, DatabaseRes, ModeX); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- lm.Acquire(2, DatabaseRes, ModeX) }()
	select {
	case err := <-got:
		t.Fatalf("second X acquired while first held: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	lm.ReleaseAll(1)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke")
	}
}

func TestLockUpgrade(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, ClassRes("N"), ModeS); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(1, ClassRes("N"), ModeIX); err != nil {
		t.Fatal(err)
	}
	if m, _ := lm.Held(1, ClassRes("N")); m != ModeSIX {
		t.Errorf("upgraded mode = %v, want SIX", m)
	}
	// A second transaction's IS is still compatible with SIX.
	if err := lm.Acquire(2, ClassRes("N"), ModeIS); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	lm := NewLockManager()
	a, b := ObjectRes("N", 1), ObjectRes("N", 2)
	if err := lm.Acquire(1, a, ModeX); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, b, ModeX); err != nil {
		t.Fatal(err)
	}
	// Tx 1 waits for b.
	done1 := make(chan error, 1)
	go func() { done1 <- lm.Acquire(1, b, ModeX) }()
	time.Sleep(20 * time.Millisecond)
	// Tx 2 requesting a closes the cycle and must be refused.
	err := lm.Acquire(2, a, ModeX)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("deadlock not detected: %v", err)
	}
	// Victim releases; tx 1 proceeds.
	lm.ReleaseAll(2)
	select {
	case err := <-done1:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("survivor never proceeded")
	}
}

func TestTransactionLifecycle(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if tx.State() != TxActive || m.ActiveCount() != 1 {
		t.Error("begin state wrong")
	}
	if err := tx.LockObject("Newscast", 7, ModeX); err != nil {
		t.Fatal(err)
	}
	// Hierarchical acquisition: intention locks on ancestors.
	if m2, ok := m.Locks().Held(tx.ID(), DatabaseRes); !ok || m2 != ModeIX {
		t.Errorf("database lock = %v, %v", m2, ok)
	}
	if m2, ok := m.Locks().Held(tx.ID(), ClassRes("Newscast")); !ok || m2 != ModeIX {
		t.Errorf("class lock = %v, %v", m2, ok)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.State() != TxCommitted || m.ActiveCount() != 0 {
		t.Error("commit state wrong")
	}
	if _, ok := m.Locks().Held(tx.ID(), DatabaseRes); ok {
		t.Error("locks survive commit")
	}
	// Operations after commit fail.
	if err := tx.LockClass("X", ModeS); err == nil {
		t.Error("lock after commit accepted")
	}
	if err := tx.Commit(); err == nil {
		t.Error("double commit accepted")
	}
	tx.Abort() // no-op on finished tx
}

func TestAbortReleasesLocks(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if err := tx.LockClass("N", ModeX); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if tx.State() != TxAborted {
		t.Error("abort state wrong")
	}
	tx2 := m.Begin()
	if err := tx2.LockClass("N", ModeX); err != nil {
		t.Fatalf("lock after abort blocked: %v", err)
	}
	tx2.Abort()
}

func TestConcurrentTransfersSerialize(t *testing.T) {
	// Classic bank transfer under 2PL: concurrent increments of a shared
	// counter keyed by object locks never lose updates.
	m := NewManager()
	kv := NewKV()
	seed := m.Begin()
	if err := kv.Put(seed, "balance", []byte{0}); err != nil {
		t.Fatal(err)
	}
	kv.Commit(seed)
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	const workers, iters = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for {
					tx := m.Begin()
					if err := tx.LockObject("Acct", 1, ModeX); err != nil {
						tx.Abort()
						continue
					}
					v, _ := kv.Get("balance")
					if err := kv.Put(tx, "balance", []byte{v[0] + 1}); err != nil {
						t.Error(err)
					}
					kv.Commit(tx)
					if err := tx.Commit(); err != nil {
						t.Error(err)
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	v, _ := kv.Get("balance")
	if v[0] != workers*iters {
		t.Errorf("balance = %d, want %d", v[0], workers*iters)
	}
}

func TestWALAppendAndTypes(t *testing.T) {
	w := NewWAL()
	lsn1 := w.Append(Record{Type: RecBegin, TxID: 1})
	lsn2 := w.Append(Record{Type: RecCommit, TxID: 1})
	if lsn1 != 1 || lsn2 != 2 || w.Len() != 2 {
		t.Error("LSN assignment wrong")
	}
	if RecUpdate.String() != "UPDATE" || RecordType(9).String() != "RecordType(9)" {
		t.Error("record type names wrong")
	}
}

func TestKVCommitDurableAcrossCrash(t *testing.T) {
	m := NewManager()
	kv := NewKV()
	tx := m.Begin()
	if err := kv.Put(tx, "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(tx, "b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	kv.Commit(tx)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	kv.Crash()
	if kv.Len() != 0 {
		t.Fatal("crash did not clear volatile store")
	}
	kv.Recover()
	if v, ok := kv.Get("a"); !ok || string(v) != "1" {
		t.Errorf("a after recovery = %q, %v", v, ok)
	}
	if v, ok := kv.Get("b"); !ok || string(v) != "2" {
		t.Errorf("b after recovery = %q, %v", v, ok)
	}
}

func TestKVUncommittedRolledBackOnRecovery(t *testing.T) {
	m := NewManager()
	kv := NewKV()
	committed := m.Begin()
	if err := kv.Put(committed, "stable", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	kv.Commit(committed)
	if err := committed.Commit(); err != nil {
		t.Fatal(err)
	}
	loser := m.Begin()
	if err := kv.Put(loser, "stable", []byte("overwritten")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(loser, "new", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Crash with the loser in flight.
	kv.Crash()
	kv.Recover()
	if v, ok := kv.Get("stable"); !ok || string(v) != "yes" {
		t.Errorf("loser's overwrite survived: %q, %v", v, ok)
	}
	if _, ok := kv.Get("new"); ok {
		t.Error("loser's insert survived")
	}
}

func TestKVAbortUndoes(t *testing.T) {
	m := NewManager()
	kv := NewKV()
	setup := m.Begin()
	if err := kv.Put(setup, "k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	kv.Commit(setup)
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin()
	if err := kv.Put(tx, "k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(tx, "k", []byte("newer")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(tx, "fresh", []byte("x")); err != nil {
		t.Fatal(err)
	}
	kv.Abort(tx)
	tx.Abort()
	if v, _ := kv.Get("k"); string(v) != "old" {
		t.Errorf("k after abort = %q", v)
	}
	if _, ok := kv.Get("fresh"); ok {
		t.Error("aborted insert survived")
	}
	// Recovery after an abort keeps the same state.
	kv.Crash()
	kv.Recover()
	if v, _ := kv.Get("k"); string(v) != "old" {
		t.Errorf("k after recovery = %q", v)
	}
	if _, ok := kv.Get("fresh"); ok {
		t.Error("aborted insert reappeared after recovery")
	}
}

func TestKVDeleteAndRecovery(t *testing.T) {
	m := NewManager()
	kv := NewKV()
	tx := m.Begin()
	if err := kv.Put(tx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(tx, "k", nil); err != nil { // delete
		t.Fatal(err)
	}
	kv.Commit(tx)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := kv.Get("k"); ok {
		t.Error("deleted key readable")
	}
	kv.Crash()
	kv.Recover()
	if _, ok := kv.Get("k"); ok {
		t.Error("deleted key resurrected by recovery")
	}
}

func TestKVPutOnFinishedTx(t *testing.T) {
	m := NewManager()
	kv := NewKV()
	tx := m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(tx, "k", []byte("v")); err == nil {
		t.Error("put on committed tx accepted")
	}
}

func TestRecoveryEquivalenceProperty(t *testing.T) {
	// Random workload; crash+recover must reproduce exactly the state
	// committed transactions left behind.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		m := NewManager()
		kv := NewKV()
		want := make(map[string]string)
		for txi := 0; txi < 10; txi++ {
			tx := m.Begin()
			pending := make(map[string]*string)
			for op := 0; op < 5; op++ {
				key := fmt.Sprintf("k%d", rng.Intn(8))
				if rng.Intn(5) == 0 {
					if err := kv.Put(tx, key, nil); err != nil {
						t.Fatal(err)
					}
					pending[key] = nil
				} else {
					val := fmt.Sprintf("v%d-%d", txi, op)
					if err := kv.Put(tx, key, []byte(val)); err != nil {
						t.Fatal(err)
					}
					v := val
					pending[key] = &v
				}
			}
			if rng.Intn(3) == 0 && txi != 9 {
				kv.Abort(tx)
				tx.Abort()
				continue
			}
			// The last transaction stays uncommitted (in flight at crash).
			if txi == 9 {
				break
			}
			kv.Commit(tx)
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			for k, v := range pending {
				if v == nil {
					delete(want, k)
				} else {
					want[k] = *v
				}
			}
		}
		kv.Crash()
		kv.Recover()
		if kv.Len() != len(want) {
			t.Fatalf("trial %d: %d keys, want %d", trial, kv.Len(), len(want))
		}
		for k, v := range want {
			got, ok := kv.Get(k)
			if !ok || string(got) != v {
				t.Fatalf("trial %d: %s = %q, want %q", trial, k, got, v)
			}
		}
	}
}

func TestVersionStore(t *testing.T) {
	vs := NewVersionStore()
	mk := func(frames int) media.Value {
		v := media.NewVideoValue(media.TypeRawVideo30, 2, 2, 8)
		for i := 0; i < frames; i++ {
			if err := v.AppendFrame(media.NewFrame(2, 2, 8)); err != nil {
				t.Fatal(err)
			}
		}
		return v
	}
	v1, v2 := mk(10), mk(20)
	n, err := vs.Checkin(1, "videoTrack", v1, "rough cut")
	if err != nil || n != 1 {
		t.Fatalf("checkin = %d, %v", n, err)
	}
	n, err = vs.Checkin(1, "videoTrack", v2, "final cut")
	if err != nil || n != 2 {
		t.Fatalf("checkin = %d, %v", n, err)
	}
	if cur, ok := vs.Current(1, "videoTrack"); !ok || cur.Value != v2 || cur.Num != 2 {
		t.Error("Current wrong")
	}
	if old, ok := vs.Get(1, "videoTrack", 1); !ok || old.Value != v1 {
		t.Error("Get wrong")
	}
	if _, ok := vs.Get(1, "videoTrack", 3); ok {
		t.Error("missing version found")
	}
	if _, ok := vs.Current(2, "videoTrack"); ok {
		t.Error("missing chain found")
	}
	if h := vs.History(1, "videoTrack"); len(h) != 2 || h[0].Note != "rough cut" {
		t.Errorf("History = %v", h)
	}
	// Revert keeps history and re-instates the old value.
	n, err = vs.Revert(1, "videoTrack", 1)
	if err != nil || n != 3 {
		t.Fatalf("revert = %d, %v", n, err)
	}
	if cur, _ := vs.Current(1, "videoTrack"); cur.Value != v1 {
		t.Error("revert did not restore value")
	}
	if _, err := vs.Revert(1, "videoTrack", 99); err == nil {
		t.Error("revert to missing version accepted")
	}
	if _, err := vs.Checkin(1, "x", nil, ""); err == nil {
		t.Error("nil checkin accepted")
	}
	if attrs := vs.VersionedAttrs(1); len(attrs) != 1 || attrs[0] != "videoTrack" {
		t.Errorf("VersionedAttrs = %v", attrs)
	}
}
