package txn

import (
	"errors"
	"testing"

	"avdb/internal/media"
	"avdb/internal/schema"
)

// TestNotActiveSentinel checks that every operation on a finished
// transaction wraps ErrNotActive.
func TestNotActiveSentinel(t *testing.T) {
	m := NewManager()

	committed := m.Begin()
	if err := committed.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := committed.Commit(); !errors.Is(err, ErrNotActive) {
		t.Errorf("second commit = %v, want ErrNotActive", err)
	}
	if err := committed.LockClass("Newscast", ModeS); !errors.Is(err, ErrNotActive) {
		t.Errorf("lock after commit = %v, want ErrNotActive", err)
	}

	aborted := m.Begin()
	aborted.Abort()
	if err := aborted.LockObject("Newscast", schema.OID(1), ModeX); !errors.Is(err, ErrNotActive) {
		t.Errorf("lock after abort = %v, want ErrNotActive", err)
	}
	if err := aborted.Commit(); !errors.Is(err, ErrNotActive) {
		t.Errorf("commit after abort = %v, want ErrNotActive", err)
	}
}

// TestNoVersionSentinel checks that chain lookups with a bad version
// number wrap ErrNoVersion.
func TestNoVersionSentinel(t *testing.T) {
	vs := NewVersionStore()
	oid := schema.OID(7)
	if _, err := vs.Revert(oid, "videoTrack", 1); !errors.Is(err, ErrNoVersion) {
		t.Errorf("revert on empty chain = %v, want ErrNoVersion", err)
	}
	v := media.NewVideoValue(media.TypeRawVideo30, 4, 4, 8)
	if err := v.AppendFrame(media.NewFrame(4, 4, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := vs.Checkin(oid, "videoTrack", v, "initial"); err != nil {
		t.Fatal(err)
	}
	if _, err := vs.Revert(oid, "videoTrack", 2); !errors.Is(err, ErrNoVersion) {
		t.Errorf("revert to missing version = %v, want ErrNoVersion", err)
	}
	if _, err := vs.Revert(oid, "videoTrack", 1); err != nil {
		t.Errorf("revert to existing version failed: %v", err)
	}
}
