package txn

import (
	"fmt"
	"testing"
)

func BenchmarkLockAcquireReleaseUncontended(b *testing.B) {
	m := NewManager()
	for i := 0; i < b.N; i++ {
		tx := m.Begin()
		if err := tx.LockObject("Newscast", 1, ModeX); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLockSharedParallel(b *testing.B) {
	m := NewManager()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tx := m.Begin()
			if err := tx.LockClass("Newscast", ModeS); err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkKVPutCommit(b *testing.B) {
	m := NewManager()
	kv := NewKV()
	payload := make([]byte, 128)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := m.Begin()
		if err := kv.Put(tx, fmt.Sprintf("k%d", i%1024), payload); err != nil {
			b.Fatal(err)
		}
		kv.Commit(tx)
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecovery(b *testing.B) {
	m := NewManager()
	kv := NewKV()
	for i := 0; i < 2000; i++ {
		tx := m.Begin()
		if err := kv.Put(tx, fmt.Sprintf("k%d", i%256), []byte{byte(i)}); err != nil {
			b.Fatal(err)
		}
		if i%7 == 0 {
			kv.Abort(tx)
			tx.Abort()
			continue
		}
		kv.Commit(tx)
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv.Crash()
		kv.Recover()
	}
	if kv.Len() == 0 {
		b.Fatal("recovery produced nothing")
	}
}
