package txn

import (
	"fmt"
	"sync"
)

// RecordType classifies log records.
type RecordType int

// The WAL record types.  RecCLR is a compensation log record: the logged
// image of one undo action performed by an abort.  CLRs are redo-only —
// replaying them re-performs the rollback, so recovery never undoes an
// aborted transaction a second time.
const (
	RecBegin RecordType = iota
	RecUpdate
	RecCommit
	RecAbort
	RecCLR
)

var recordNames = [...]string{
	RecBegin: "BEGIN", RecUpdate: "UPDATE", RecCommit: "COMMIT", RecAbort: "ABORT",
	RecCLR: "CLR",
}

// String returns the record type's name.
func (t RecordType) String() string {
	if t < 0 || int(t) >= len(recordNames) {
		return fmt.Sprintf("RecordType(%d)", int(t))
	}
	return recordNames[t]
}

// Record is one WAL entry.  Update records carry physical before/after
// images, enabling both redo and undo.
type Record struct {
	LSN    uint64
	Type   RecordType
	TxID   uint64
	Key    string
	Before []byte // nil means the key did not exist
	After  []byte // nil means the key is deleted
}

// WAL is the stable log.  In this simulated platform "stable" means it
// survives Crash(); the volatile store does not.
type WAL struct {
	mu      sync.Mutex
	records []Record
	nextLSN uint64
}

// NewWAL returns an empty log.
func NewWAL() *WAL {
	return &WAL{nextLSN: 1}
}

// Append force-writes a record and returns its LSN.
func (w *WAL) Append(r Record) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	r.LSN = w.nextLSN
	w.nextLSN++
	w.records = append(w.records, r)
	return r.LSN
}

// Records returns a copy of the log.
func (w *WAL) Records() []Record {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Record(nil), w.records...)
}

// Len reports the number of records.
func (w *WAL) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.records)
}

// KV is a recoverable key-value store: mutations go through transactions,
// every update is logged before it is applied (write-ahead rule), and
// after a crash Recover rebuilds exactly the committed state.
type KV struct {
	wal *WAL

	mu  sync.Mutex
	mem map[string][]byte
	// inTx tracks which transactions have logged a Begin.
	inTx map[uint64]bool
}

// NewKV returns an empty recoverable store with its own log.
func NewKV() *KV {
	return &KV{wal: NewWAL(), mem: make(map[string][]byte), inTx: make(map[uint64]bool)}
}

// WAL exposes the store's log.
func (kv *KV) WAL() *WAL { return kv.wal }

// Get reads a key from the volatile store.
func (kv *KV) Get(key string) ([]byte, bool) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	v, ok := kv.mem[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Len reports the number of live keys.
func (kv *KV) Len() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return len(kv.mem)
}

// Put writes key=val under tx.  Passing val nil deletes the key.
func (kv *KV) Put(tx *Tx, key string, val []byte) error {
	if err := tx.ensureActive(); err != nil {
		return err
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if !kv.inTx[tx.ID()] {
		kv.wal.Append(Record{Type: RecBegin, TxID: tx.ID()})
		kv.inTx[tx.ID()] = true
	}
	var before []byte
	if old, ok := kv.mem[key]; ok {
		before = append([]byte(nil), old...)
	}
	kv.wal.Append(Record{Type: RecUpdate, TxID: tx.ID(), Key: key,
		Before: before, After: append([]byte(nil), val...)})
	if val == nil {
		delete(kv.mem, key)
	} else {
		kv.mem[key] = append([]byte(nil), val...)
	}
	return nil
}

// Commit logs the transaction's commit.  The caller still calls
// tx.Commit to release locks.
func (kv *KV) Commit(tx *Tx) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.inTx[tx.ID()] {
		kv.wal.Append(Record{Type: RecCommit, TxID: tx.ID()})
		delete(kv.inTx, tx.ID())
	}
}

// Abort undoes the transaction's updates from the log (newest first),
// logging a compensation record for every undo action, and then logs the
// abort.
func (kv *KV) Abort(tx *Tx) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if !kv.inTx[tx.ID()] {
		return
	}
	recs := kv.wal.Records()
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		if r.Type != RecUpdate || r.TxID != tx.ID() {
			continue
		}
		var cur []byte
		if v, ok := kv.mem[r.Key]; ok {
			cur = append([]byte(nil), v...)
		}
		kv.wal.Append(Record{Type: RecCLR, TxID: tx.ID(), Key: r.Key,
			Before: cur, After: append([]byte(nil), r.Before...)})
		if r.Before == nil {
			delete(kv.mem, r.Key)
		} else {
			kv.mem[r.Key] = append([]byte(nil), r.Before...)
		}
	}
	kv.wal.Append(Record{Type: RecAbort, TxID: tx.ID()})
	delete(kv.inTx, tx.ID())
}

// Crash discards the volatile store, simulating a failure.  The log
// survives.
func (kv *KV) Crash() {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.mem = make(map[string][]byte)
	kv.inTx = make(map[uint64]bool)
}

// Recover rebuilds the store from the log: redo every update in LSN
// order, then undo the updates of transactions without a commit record,
// newest first (ARIES analysis/redo/undo over physical images).
func (kv *KV) Recover() {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	recs := kv.wal.Records()

	committed := make(map[uint64]bool)
	aborted := make(map[uint64]bool)
	for _, r := range recs {
		switch r.Type {
		case RecCommit:
			committed[r.TxID] = true
		case RecAbort:
			aborted[r.TxID] = true
		}
	}

	kv.mem = make(map[string][]byte)
	// Redo phase: repeat history, including compensation records — their
	// replay re-performs the rollbacks aborts already did.
	for _, r := range recs {
		if r.Type != RecUpdate && r.Type != RecCLR {
			continue
		}
		if r.After == nil {
			delete(kv.mem, r.Key)
		} else {
			kv.mem[r.Key] = append([]byte(nil), r.After...)
		}
	}
	// Undo phase: roll back the losers — transactions with neither a
	// commit nor an abort record (in flight at the crash).  Aborted
	// transactions are already compensated by their CLRs.
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		if r.Type != RecUpdate || committed[r.TxID] || aborted[r.TxID] {
			continue
		}
		if r.Before == nil {
			delete(kv.mem, r.Key)
		} else {
			kv.mem[r.Key] = append([]byte(nil), r.Before...)
		}
	}
	kv.inTx = make(map[uint64]bool)
}
