// Package txn provides the transactional substrate of the AV database:
// a hierarchical two-phase lock manager with multigranularity modes
// (IS/IX/S/SIX/X) and deadlock detection, a write-ahead log with
// ARIES-style redo/undo recovery over a volatile store, and a version
// store for media values ("the problem of version control has also been
// investigated", §2).
package txn

import (
	"errors"
	"fmt"
	"sync"

	"avdb/internal/schema"
)

// Mode is a multigranularity lock mode.
type Mode int

// The lock modes, weakest to strongest.
const (
	ModeIS Mode = iota
	ModeIX
	ModeS
	ModeSIX
	ModeX
)

var modeNames = [...]string{
	ModeIS: "IS", ModeIX: "IX", ModeS: "S", ModeSIX: "SIX", ModeX: "X",
}

// String returns the mode's conventional name.
func (m Mode) String() string {
	if m < 0 || int(m) >= len(modeNames) {
		return fmt.Sprintf("Mode(%d)", int(m))
	}
	return modeNames[m]
}

// compatible reports whether two modes may be held simultaneously by
// different transactions.
var compatible = [5][5]bool{
	ModeIS:  {ModeIS: true, ModeIX: true, ModeS: true, ModeSIX: true},
	ModeIX:  {ModeIS: true, ModeIX: true},
	ModeS:   {ModeIS: true, ModeS: true},
	ModeSIX: {ModeIS: true},
	ModeX:   {},
}

// lub is the least upper bound of two held modes, for lock upgrades.
var lub = [5][5]Mode{
	ModeIS:  {ModeIS: ModeIS, ModeIX: ModeIX, ModeS: ModeS, ModeSIX: ModeSIX, ModeX: ModeX},
	ModeIX:  {ModeIS: ModeIX, ModeIX: ModeIX, ModeS: ModeSIX, ModeSIX: ModeSIX, ModeX: ModeX},
	ModeS:   {ModeIS: ModeS, ModeIX: ModeSIX, ModeS: ModeS, ModeSIX: ModeSIX, ModeX: ModeX},
	ModeSIX: {ModeIS: ModeSIX, ModeIX: ModeSIX, ModeS: ModeSIX, ModeSIX: ModeSIX, ModeX: ModeX},
	ModeX:   {ModeIS: ModeX, ModeIX: ModeX, ModeS: ModeX, ModeSIX: ModeX, ModeX: ModeX},
}

// ResourceKind is a level of the lock hierarchy.
type ResourceKind int

// The hierarchy: database > class > object.
const (
	ResDatabase ResourceKind = iota
	ResClass
	ResObject
)

// Resource names a lockable entity.
type Resource struct {
	Kind  ResourceKind
	Class string
	OID   schema.OID
}

// DatabaseRes is the root of the lock hierarchy.
var DatabaseRes = Resource{Kind: ResDatabase}

// ClassRes names a class-level resource.
func ClassRes(class string) Resource { return Resource{Kind: ResClass, Class: class} }

// ObjectRes names an object-level resource.
func ObjectRes(class string, oid schema.OID) Resource {
	return Resource{Kind: ResObject, Class: class, OID: oid}
}

// String formats the resource.
func (r Resource) String() string {
	switch r.Kind {
	case ResDatabase:
		return "db"
	case ResClass:
		return "class:" + r.Class
	default:
		return fmt.Sprintf("obj:%s/%v", r.Class, r.OID)
	}
}

// ErrDeadlock is returned to a transaction chosen as the deadlock victim.
var ErrDeadlock = errors.New("txn: deadlock detected")

// ErrNotActive is wrapped by every operation attempted on a transaction
// that has already committed or aborted; callers branch with errors.Is.
var ErrNotActive = errors.New("txn: transaction not active")

// lockState tracks one resource's holders.
type lockState struct {
	holders map[uint64]Mode
}

// LockManager grants multigranularity locks with blocking waits and
// wait-for-graph deadlock detection.  A transaction whose wait would
// close a cycle receives ErrDeadlock instead of waiting.
type LockManager struct {
	mu    sync.Mutex
	cond  *sync.Cond
	locks map[Resource]*lockState
	// waits[t] is the set of transactions t currently waits for.
	waits map[uint64]map[uint64]bool
}

// NewLockManager returns an empty lock manager.
func NewLockManager() *LockManager {
	lm := &LockManager{
		locks: make(map[Resource]*lockState),
		waits: make(map[uint64]map[uint64]bool),
	}
	lm.cond = sync.NewCond(&lm.mu)
	return lm
}

// Acquire grants mode on res to tx, blocking while incompatible locks are
// held.  It returns ErrDeadlock if waiting would create a cycle.
// Re-acquiring upgrades the held mode.
func (lm *LockManager) Acquire(tx uint64, res Resource, mode Mode) error {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for {
		st, ok := lm.locks[res]
		if !ok {
			st = &lockState{holders: make(map[uint64]Mode)}
			lm.locks[res] = st
		}
		want := mode
		if held, ok := st.holders[tx]; ok {
			want = lub[held][mode]
		}
		blockers := st.blockers(tx, want)
		if len(blockers) == 0 {
			st.holders[tx] = want
			delete(lm.waits, tx)
			return nil
		}
		// Record the wait and look for a cycle through it.
		ws := make(map[uint64]bool, len(blockers))
		for _, b := range blockers {
			ws[b] = true
		}
		lm.waits[tx] = ws
		if lm.cycleFrom(tx) {
			delete(lm.waits, tx)
			return fmt.Errorf("%w: tx %d waiting for %v on %v", ErrDeadlock, tx, blockers, res)
		}
		lm.cond.Wait()
	}
}

// blockers lists the other holders whose modes conflict with want.
func (st *lockState) blockers(tx uint64, want Mode) []uint64 {
	var out []uint64
	for other, held := range st.holders {
		if other == tx {
			continue
		}
		if !compatible[want][held] {
			out = append(out, other)
		}
	}
	return out
}

// cycleFrom reports whether the wait-for graph has a cycle reachable from
// start.
func (lm *LockManager) cycleFrom(start uint64) bool {
	seen := make(map[uint64]bool)
	var stack []uint64
	for next := range lm.waits[start] {
		stack = append(stack, next)
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t == start {
			return true
		}
		if seen[t] {
			continue
		}
		seen[t] = true
		for next := range lm.waits[t] {
			stack = append(stack, next)
		}
	}
	return false
}

// ReleaseAll drops every lock held by tx and wakes waiters.
func (lm *LockManager) ReleaseAll(tx uint64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for res, st := range lm.locks {
		if _, held := st.holders[tx]; held {
			delete(st.holders, tx)
			if len(st.holders) == 0 {
				delete(lm.locks, res)
			}
		}
	}
	delete(lm.waits, tx)
	lm.cond.Broadcast()
}

// Held reports the mode tx holds on res, if any.
func (lm *LockManager) Held(tx uint64, res Resource) (Mode, bool) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	st, ok := lm.locks[res]
	if !ok {
		return 0, false
	}
	m, ok := st.holders[tx]
	return m, ok
}

// TxState is a transaction's lifecycle state.
type TxState int

// The transaction states.
const (
	TxActive TxState = iota
	TxCommitted
	TxAborted
)

// Tx is one transaction against a Manager.
type Tx struct {
	id  uint64
	mgr *Manager

	mu    sync.Mutex
	state TxState
}

// ID returns the transaction's identifier.
func (t *Tx) ID() uint64 { return t.id }

// State reports the transaction's state.
func (t *Tx) State() TxState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

func (t *Tx) ensureActive() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != TxActive {
		return fmt.Errorf("%w: transaction %d", ErrNotActive, t.id)
	}
	return nil
}

// LockClass acquires mode on a class, taking the matching intention lock
// on the database root first.
func (t *Tx) LockClass(class string, mode Mode) error {
	if err := t.ensureActive(); err != nil {
		return err
	}
	if err := t.mgr.locks.Acquire(t.id, DatabaseRes, intention(mode)); err != nil {
		return err
	}
	return t.mgr.locks.Acquire(t.id, ClassRes(class), mode)
}

// LockObject acquires mode on an object, taking intention locks on the
// database and class first.
func (t *Tx) LockObject(class string, oid schema.OID, mode Mode) error {
	if err := t.ensureActive(); err != nil {
		return err
	}
	if err := t.mgr.locks.Acquire(t.id, DatabaseRes, intention(mode)); err != nil {
		return err
	}
	if err := t.mgr.locks.Acquire(t.id, ClassRes(class), intention(mode)); err != nil {
		return err
	}
	return t.mgr.locks.Acquire(t.id, ObjectRes(class, oid), mode)
}

// intention maps a leaf mode to the intention mode its ancestors need.
func intention(mode Mode) Mode {
	switch mode {
	case ModeS, ModeIS:
		return ModeIS
	default:
		return ModeIX
	}
}

// Commit ends the transaction successfully, releasing all locks.
func (t *Tx) Commit() error {
	t.mu.Lock()
	if t.state != TxActive {
		t.mu.Unlock()
		return fmt.Errorf("%w: transaction %d", ErrNotActive, t.id)
	}
	t.state = TxCommitted
	t.mu.Unlock()
	t.mgr.finish(t)
	return nil
}

// Abort ends the transaction unsuccessfully, releasing all locks.
// Aborting a finished transaction is a no-op.
func (t *Tx) Abort() {
	t.mu.Lock()
	if t.state != TxActive {
		t.mu.Unlock()
		return
	}
	t.state = TxAborted
	t.mu.Unlock()
	t.mgr.finish(t)
}

// Manager creates transactions over a shared lock manager.
type Manager struct {
	locks *LockManager

	mu     sync.Mutex
	nextID uint64
	active map[uint64]*Tx
}

// NewManager returns a transaction manager.
func NewManager() *Manager {
	return &Manager{locks: NewLockManager(), nextID: 1, active: make(map[uint64]*Tx)}
}

// Locks exposes the underlying lock manager.
func (m *Manager) Locks() *LockManager { return m.locks }

// Begin starts a transaction.
func (m *Manager) Begin() *Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &Tx{id: m.nextID, mgr: m}
	m.nextID++
	m.active[t.id] = t
	return t
}

// ActiveCount reports the number of in-flight transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

func (m *Manager) finish(t *Tx) {
	m.locks.ReleaseAll(t.id)
	m.mu.Lock()
	delete(m.active, t.id)
	m.mu.Unlock()
}
