package core

import (
	"fmt"

	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/media"
	"avdb/internal/netsim"
	"avdb/internal/sched"
)

// DegradableSource is a source activity that can rebind to a cheaper
// representation of its value mid-stream (VideoReader implements it).
type DegradableSource interface {
	activity.Activity
	Degrade(v media.Value, port string) error
}

// DegradeSpec wires one stream's graceful-degradation path: when the
// sink reports a sustained stall — or the engine's overload sweep
// picks the session as a victim — the source is rebound to the
// fallback quality, the admission grant shrinks to the cheaper bundle,
// and the network reservation is renegotiated down — §4.1's quality
// factors used as the recovery currency.
type DegradeSpec struct {
	// Source is the reader to rebind; Port is its bound port ("out").
	Source DegradableSource
	Port   string
	// Sink is the activity whose EventStalled triggers degradation — a
	// VideoWindow with stall detection enabled.
	Sink activity.Activity
	// Quality is the fallback quality factor.
	Quality media.VideoQuality
	// Grant, when set, is shrunk to the fallback's resource bundle.
	Grant *sched.Grant
	// Conn, when set, is renegotiated to the fallback's data rate.
	Conn *netsim.Conn
}

// degradeState is the session's recorded degradation path plus enough
// of the original stream to undo it: the full-quality binding, grant
// bundle and connection rate.  It is written on the engine goroutine
// (stall handlers and overload sweeps both run there) and read under
// the session lock.
type degradeState struct {
	spec DegradeSpec

	degraded    bool
	origVal     media.Value
	origRes     sched.Resources
	origRate    media.DataRate
	grantShrunk bool
	connDropped bool
}

// eventEmitter is satisfied by every activity embedding *activity.Base.
type eventEmitter interface {
	Emit(activity.EventInfo)
}

// EnableDegradation arms a quality renegotiation on the session: the
// first EventStalled from spec.Sink re-retrieves the bound value at
// spec.Quality, rebinds the source in place, shrinks the grant and
// renegotiates the connection, then emits EventDegraded on the sink
// and source.  The handler runs synchronously on the engine goroutine.
// A failed degradation attempt leaves the stream untouched, so a later
// stall edge (or the engine's next sweep) may try again.
//
// The same armed path is what the engine's overload control drives:
// under pressure the engine degrades armed sessions lowest priority
// first, and when pressure clears it restores them — Grant.Grow,
// Conn.Renegotiate back up, original binding back in place — emitting
// EventRestored.
func (s *Session) EnableDegradation(spec DegradeSpec) error {
	if spec.Source == nil || spec.Sink == nil {
		return fmt.Errorf("core: degradation needs a source and a sink")
	}
	if spec.Port == "" {
		spec.Port = "out"
	}
	if !spec.Quality.Valid() {
		return fmt.Errorf("core: invalid fallback quality %v", spec.Quality)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrSessionClosed, s.id)
	}
	s.deg = &degradeState{spec: spec}
	s.mu.Unlock()
	return spec.Sink.Catch(activity.EventStalled, func(info activity.EventInfo) {
		// Already-degraded sessions ignore further stall edges; a failed
		// attempt stays un-degraded and retries on the next edge.
		s.degradeNow(info.At)
	})
}

// CanDegrade reports whether the session has an armed, not yet fired
// degradation path — the property the engine's sweep selects victims
// by.
func (s *Session) CanDegrade() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deg != nil && !s.deg.degraded && !s.closed
}

// Degraded reports whether the session currently runs its fallback
// quality.
func (s *Session) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deg != nil && s.deg.degraded
}

// degradeNow performs the renegotiation: retrieve cheaper, rebind,
// shrink, renegotiate, announce.  Idempotent while degraded.
func (s *Session) degradeNow(at avtime.WorldTime) error {
	s.mu.Lock()
	st := s.deg
	closed := s.closed
	s.mu.Unlock()
	if st == nil {
		return fmt.Errorf("core: session %s has no degradation path", s.id)
	}
	if closed {
		return fmt.Errorf("%w: %s", ErrSessionClosed, s.id)
	}
	if st.degraded {
		return nil
	}
	spec := st.spec
	v, ok := spec.Source.Binding(spec.Port)
	if !ok {
		return fmt.Errorf("core: %s has no binding on %q", spec.Source.Name(), spec.Port)
	}
	degraded, _, err := RetrieveAtQuality(v, spec.Quality)
	if err != nil {
		return err
	}
	if err := spec.Source.Degrade(degraded, spec.Port); err != nil {
		return err
	}
	rate := spec.Quality.DataRate()
	if spec.Grant != nil {
		target := ResourcesForVideo(spec.Quality)
		// Shrinking is strictly downward; a target the grant cannot cover
		// means the grant was already cheaper — leave it.
		if target.Fits(spec.Grant.Resources()) {
			before := spec.Grant.Resources()
			if err := spec.Grant.Shrink(target); err != nil {
				return err
			}
			s.mu.Lock()
			st.origRes, st.grantShrunk = before, true
			s.mu.Unlock()
		}
	}
	if spec.Conn != nil && rate < spec.Conn.Rate() {
		before := spec.Conn.Rate()
		if err := spec.Conn.Renegotiate(rate); err != nil {
			return err
		}
		s.mu.Lock()
		st.origRate, st.connDropped = before, true
		s.mu.Unlock()
	}
	s.mu.Lock()
	st.origVal = v
	st.degraded = true
	s.mu.Unlock()
	if em, ok := spec.Sink.(eventEmitter); ok {
		em.Emit(activity.EventInfo{Event: activity.EventDegraded, Activity: spec.Sink.Name(), At: at})
	}
	if em, ok := spec.Source.(eventEmitter); ok {
		em.Emit(activity.EventInfo{Event: activity.EventDegraded, Activity: spec.Source.Name(), At: at})
	}
	if sink := s.db.sink(); sink != nil {
		sink.Count("stream.degraded", 1)
	}
	return nil
}

// restoreNow undoes a fired degradation once pressure clears: the
// grant grows back (competing for the budget again — failure leaves
// the session degraded), the connection renegotiates up, the original
// binding is restored, and EventRestored is announced.  The engine's
// restore sweep is the only caller; it runs on the engine goroutine.
func (s *Session) restoreNow(at avtime.WorldTime) error {
	s.mu.Lock()
	st := s.deg
	closed := s.closed
	var snap degradeState
	if st != nil {
		snap = *st
	}
	s.mu.Unlock()
	if st == nil || !snap.degraded {
		return nil
	}
	if closed {
		return fmt.Errorf("%w: %s", ErrSessionClosed, s.id)
	}
	spec := snap.spec
	if snap.grantShrunk {
		if err := spec.Grant.Grow(snap.origRes); err != nil {
			return err
		}
	}
	if snap.connDropped {
		if err := spec.Conn.Renegotiate(snap.origRate); err != nil {
			// Roll the grant back so accounting matches the stream that
			// stays degraded.
			if snap.grantShrunk {
				spec.Grant.Shrink(ResourcesForVideo(spec.Quality))
			}
			return err
		}
	}
	if err := spec.Source.Degrade(snap.origVal, spec.Port); err != nil {
		if snap.connDropped {
			spec.Conn.Renegotiate(spec.Quality.DataRate())
		}
		if snap.grantShrunk {
			spec.Grant.Shrink(ResourcesForVideo(spec.Quality))
		}
		return err
	}
	s.mu.Lock()
	st.degraded, st.grantShrunk, st.connDropped = false, false, false
	s.mu.Unlock()
	if em, ok := spec.Sink.(eventEmitter); ok {
		em.Emit(activity.EventInfo{Event: activity.EventRestored, Activity: spec.Sink.Name(), At: at})
	}
	if em, ok := spec.Source.(eventEmitter); ok {
		em.Emit(activity.EventInfo{Event: activity.EventRestored, Activity: spec.Source.Name(), At: at})
	}
	if sink := s.db.sink(); sink != nil {
		sink.Count("stream.restored", 1)
	}
	return nil
}
