package core

import (
	"fmt"
	"sync"

	"avdb/internal/activity"
	"avdb/internal/media"
	"avdb/internal/netsim"
	"avdb/internal/sched"
)

// DegradableSource is a source activity that can rebind to a cheaper
// representation of its value mid-stream (VideoReader implements it).
type DegradableSource interface {
	activity.Activity
	Degrade(v media.Value, port string) error
}

// DegradeSpec wires one stream's graceful-degradation path: when the
// sink reports a sustained stall, the source is rebound to the fallback
// quality, the admission grant shrinks to the cheaper bundle, and the
// network reservation is renegotiated down — §4.1's quality factors
// used as the recovery currency.
type DegradeSpec struct {
	// Source is the reader to rebind; Port is its bound port ("out").
	Source DegradableSource
	Port   string
	// Sink is the activity whose EventStalled triggers degradation — a
	// VideoWindow with stall detection enabled.
	Sink activity.Activity
	// Quality is the fallback quality factor.
	Quality media.VideoQuality
	// Grant, when set, is shrunk to the fallback's resource bundle.
	Grant *sched.Grant
	// Conn, when set, is renegotiated to the fallback's data rate.
	Conn *netsim.Conn
}

// eventEmitter is satisfied by every activity embedding *activity.Base.
type eventEmitter interface {
	Emit(activity.EventInfo)
}

// EnableDegradation arms a one-shot quality renegotiation on the
// session: the first EventStalled from spec.Sink re-retrieves the bound
// value at spec.Quality, rebinds the source in place, shrinks the grant
// and renegotiates the connection, then emits EventDegraded on the
// sink.  The handler runs synchronously on the graph-runner goroutine.
// A failed degradation attempt leaves the stream untouched and re-arms,
// so a later stall edge may try again.
func (s *Session) EnableDegradation(spec DegradeSpec) error {
	if spec.Source == nil || spec.Sink == nil {
		return fmt.Errorf("core: degradation needs a source and a sink")
	}
	if spec.Port == "" {
		spec.Port = "out"
	}
	if !spec.Quality.Valid() {
		return fmt.Errorf("core: invalid fallback quality %v", spec.Quality)
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return fmt.Errorf("%w: %s", ErrSessionClosed, s.id)
	}
	var mu sync.Mutex
	done := false
	return spec.Sink.Catch(activity.EventStalled, func(info activity.EventInfo) {
		mu.Lock()
		if done {
			mu.Unlock()
			return
		}
		mu.Unlock()
		if err := s.degradeOnce(spec, info); err != nil {
			return // stream unchanged; a later stall edge retries
		}
		mu.Lock()
		done = true
		mu.Unlock()
	})
}

// degradeOnce performs the renegotiation: retrieve cheaper, rebind,
// shrink, renegotiate, announce.
func (s *Session) degradeOnce(spec DegradeSpec, info activity.EventInfo) error {
	v, ok := spec.Source.Binding(spec.Port)
	if !ok {
		return fmt.Errorf("core: %s has no binding on %q", spec.Source.Name(), spec.Port)
	}
	degraded, _, err := RetrieveAtQuality(v, spec.Quality)
	if err != nil {
		return err
	}
	if err := spec.Source.Degrade(degraded, spec.Port); err != nil {
		return err
	}
	rate := spec.Quality.DataRate()
	if spec.Grant != nil {
		target := ResourcesForVideo(spec.Quality)
		// Shrinking is strictly downward; a target the grant cannot cover
		// means the grant was already cheaper — leave it.
		if target.Fits(spec.Grant.Resources()) {
			if err := spec.Grant.Shrink(target); err != nil {
				return err
			}
		}
	}
	if spec.Conn != nil && rate < spec.Conn.Rate() {
		if err := spec.Conn.Renegotiate(rate); err != nil {
			return err
		}
	}
	if em, ok := spec.Sink.(eventEmitter); ok {
		em.Emit(activity.EventInfo{Event: activity.EventDegraded, Activity: spec.Sink.Name(), At: info.At})
	}
	if em, ok := spec.Source.(eventEmitter); ok {
		em.Emit(activity.EventInfo{Event: activity.EventDegraded, Activity: spec.Source.Name(), At: info.At})
	}
	if sink := s.db.sink(); sink != nil {
		sink.Count("stream.degraded", 1)
	}
	return nil
}
