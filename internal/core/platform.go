package core

import (
	"fmt"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
	"avdb/internal/netsim"
	"avdb/internal/sched"
)

// PlatformConfig sizes a default platform.
type PlatformConfig struct {
	Disks         int              // number of magnetic disks (default 2)
	DiskCapacity  int64            // bytes per disk (default 2 GB)
	DiskBandwidth media.DataRate   // per-disk transfer rate (default 20 MB/s)
	JukeboxDiscs  int              // analog videodisc count (default 4; negative disables)
	LinkBandwidth media.DataRate   // client link capacity (default 12 MB/s)
	LinkLatency   avtime.WorldTime // propagation latency (default 2 ms)
	LinkJitter    avtime.WorldTime // jitter bound (default 1 ms)
	Seed          int64            // jitter seed
}

func (c *PlatformConfig) fill() {
	if c.Disks <= 0 {
		c.Disks = 2
	}
	if c.DiskCapacity <= 0 {
		c.DiskCapacity = 2_000_000_000
	}
	if c.DiskBandwidth <= 0 {
		c.DiskBandwidth = 20 * media.MBPerSecond
	}
	if c.JukeboxDiscs == 0 {
		c.JukeboxDiscs = 4
	}
	if c.LinkBandwidth <= 0 {
		c.LinkBandwidth = 12 * media.MBPerSecond
	}
	if c.LinkLatency < 0 {
		c.LinkLatency = 0
	} else if c.LinkLatency == 0 {
		c.LinkLatency = 2 * avtime.Millisecond
	}
	if c.LinkJitter == 0 {
		c.LinkJitter = avtime.Millisecond
	}
}

// OpenDefault builds a database on a conventional 1993-style platform:
// magnetic disks, an analog videodisc jukebox, ADC/DAC converters, a DSP,
// a video-effects processor, and one client network link named "lan0".
func OpenDefault(name string, pc PlatformConfig) (*Database, error) {
	pc.fill()
	db, err := Open(Config{
		Name: name,
		Resources: sched.Resources{
			Buffers: 64,
			CPU:     media.DataRate(pc.Disks) * pc.DiskBandwidth * 2,
			Bus:     media.DataRate(pc.Disks) * pc.DiskBandwidth * 4,
		},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < pc.Disks; i++ {
		d := device.NewDisk(fmt.Sprintf("disk%d", i), pc.DiskCapacity, pc.DiskBandwidth, 10*avtime.Millisecond)
		if err := db.Devices().Register(d); err != nil {
			return nil, err
		}
	}
	if pc.JukeboxDiscs > 0 {
		jb := device.NewJukebox("jukebox0", pc.JukeboxDiscs, 30_000_000_000, 4*media.MBPerSecond, 6*avtime.Second)
		if err := db.Devices().Register(jb); err != nil {
			return nil, err
		}
	}
	units := []struct {
		id   string
		kind device.Kind
		rate media.DataRate
		excl bool
	}{
		{"adc0", device.KindADC, 40 * media.MBPerSecond, true},
		{"dac0", device.KindDAC, 2 * media.MBPerSecond, true},
		{"dsp0", device.KindDSP, 80 * media.MBPerSecond, false},
		{"fx0", device.KindEffects, 60 * media.MBPerSecond, true},
		{"fb0", device.KindFramebuffer, 120 * media.MBPerSecond, true},
	}
	for _, u := range units {
		if err := db.Devices().Register(device.NewUnit(u.id, u.kind, u.rate, u.excl)); err != nil {
			return nil, err
		}
	}
	link := netsim.NewLink("lan0", pc.LinkBandwidth, pc.LinkLatency, pc.LinkJitter, pc.Seed)
	if err := db.Network().AddLink(link); err != nil {
		return nil, err
	}
	return db, nil
}
