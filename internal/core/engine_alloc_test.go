package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/obs"
	"avdb/internal/sched"
)

// fakeRun is a no-op engineRun: it ticks forever, advancing its due
// time by one unit per tick, and allocates nothing.  Admitting fakes
// isolates the engine's own step path — run-set heap churn, batch
// resolution, label switching, snapshot refresh, clock commit — from
// the graph executor's interior, so TestEngineAllocsPerStep and
// BenchmarkEngineStep measure exactly the code this PR pins.
type fakeRun struct {
	g     *activity.Graph
	unit  avtime.WorldTime
	due   avtime.WorldTime
	ticks int
}

func (f *fakeRun) Graph() *activity.Graph            { return f.g }
func (f *fakeRun) Rate() avtime.Rate                 { return avtime.RateVideo30 }
func (f *fakeRun) Ticks() int                        { return f.ticks }
func (f *fakeRun) Err() error                        { return nil }
func (f *fakeRun) Done() bool                        { return false }
func (f *fakeRun) NextDue() avtime.WorldTime         { return f.due }
func (f *fakeRun) CommitHorizon() avtime.WorldTime   { return f.due }
func (f *fakeRun) SetRound(int64)                    {}
func (f *fakeRun) SwapObs(s obs.Sink) obs.Sink       { return nil }
func (f *fakeRun) Finish() (*activity.RunStats, error) { return &activity.RunStats{}, nil }

func (f *fakeRun) Tick() (bool, error) {
	f.ticks++
	f.due += f.unit
	return false, nil
}

// admitFakeRuns enters n fake runs into the engine with the loop
// goroutine held out (running forced true), so the test drives
// stepOnce synchronously.  All fakes share one due time, so every step
// batches all of them — the widest, worst-case step.
func admitFakeRuns(t testing.TB, db *Database, n int) *Engine {
	t.Helper()
	s, err := db.Connect("alloc-harness", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	e := db.Engine()
	e.mu.Lock()
	e.running = true // keep the loop goroutine out; the test steps directly
	e.mu.Unlock()
	g := activity.NewGraph("fake")
	for i := 0; i < n; i++ {
		e.admit(s, &fakeRun{g: g, unit: avtime.Millisecond}, &Playback{done: make(chan struct{})}, -1)
	}
	return e
}

// TestEngineAllocsPerStep pins the tentpole target: once warm, one
// engine step — DueBatch over the run-set heap, batch resolution,
// per-run label switch and tick, snapshot refresh, reschedule, clock
// commit — performs zero heap allocations of its own.  The runs are
// no-op fakes, so any allocation measured here is engine bookkeeping.
func TestEngineAllocsPerStep(t *testing.T) {
	for _, n := range []int{1, 16} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("sessions-%d-workers-%d", n, workers), func(t *testing.T) {
				db := testDB(t)
				e := admitFakeRuns(t, db, n)
				e.SetWorkers(workers)
				// Warm the batch/retired/DueBatch buffers (and, sharded, the
				// worker pool and its goroutines' sudog caches) past growth.
				for i := 0; i < 32; i++ {
					e.stepOnce()
				}
				allocs := testing.AllocsPerRun(200, func() { e.stepOnce() })
				if allocs != 0 {
					t.Errorf("engine step allocates %.1f times per step at %d sessions, %d workers, want 0",
						allocs, n, workers)
				}
			})
		}
	}
}

// busyRun is fakeRun with a deterministic arithmetic spin per tick,
// sized to imitate a real session's host-side tick cost (~hundreds of
// ns — BENCH_pr5 measures ~420ns/session on the wide step).  It gives
// BenchmarkEngineStepSharded actual work to divide across workers
// while keeping the 0 allocs/step bound measurable.
type busyRun struct {
	fakeRun
	spin int
	acc  uint64 // accumulated so the spin cannot be dead-code eliminated
}

func (r *busyRun) Tick() (bool, error) {
	x := r.acc + 12345
	for i := 0; i < r.spin; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	r.acc = x
	r.ticks++
	r.due += r.unit
	return false, nil
}

// admitBusyRuns is admitFakeRuns over busyRuns.
func admitBusyRuns(t testing.TB, db *Database, n, spin int) *Engine {
	t.Helper()
	s, err := db.Connect("shard-harness", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	e := db.Engine()
	e.mu.Lock()
	e.running = true // keep the loop goroutine out; the test steps directly
	e.mu.Unlock()
	g := activity.NewGraph("busy")
	for i := 0; i < n; i++ {
		e.admit(s, &busyRun{fakeRun: fakeRun{g: g, unit: avtime.Millisecond}, spin: spin}, &Playback{done: make(chan struct{})}, -1)
	}
	return e
}

// BenchmarkEngineStepSharded measures step throughput as the tick
// phase fans out: serial versus a 4-worker pool at 256/1k/4k sessions
// of µs-scale busy work.  On a multi-core host the 4-worker arms
// approach linear scaling; scripts/bench.sh pr9 records both and
// enforces the speedup bound when the host can express it (cpus > 1),
// plus the 0 allocs/op bound everywhere.
func BenchmarkEngineStepSharded(b *testing.B) {
	const spin = 400
	for _, n := range []int{256, 1024, 4096} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("sessions-%d-workers-%d", n, workers), func(b *testing.B) {
				db := testDB(b)
				e := admitBusyRuns(b, db, n, spin)
				e.SetWorkers(workers)
				for i := 0; i < 8; i++ {
					e.stepOnce()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.stepOnce()
				}
			})
		}
	}
}

// BenchmarkEngineStep measures the engine's own per-step cost over
// no-op runs at narrow and wide session counts.  ReportAllocs keeps
// the 0 allocs/op bound visible; scripts/bench.sh pr8 gates both arms.
func BenchmarkEngineStep(b *testing.B) {
	for _, n := range []int{4, 256} {
		name := "narrow-4"
		if n > 4 {
			name = "wide-256"
		}
		b.Run(name, func(b *testing.B) {
			db := testDB(b)
			e := admitFakeRuns(b, db, n)
			for i := 0; i < 32; i++ {
				e.stepOnce()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.stepOnce()
			}
		})
	}
}

// TestEngineSessionsPollRace is the regression for the Sessions()
// introspection race: it used to call run.Ticks()/Rate()/NextDue()
// after dropping the engine lock while the loop was mid-Tick on the
// same GraphRun — a data race on the run's tick counter that -race
// reports reliably under a busy multi-session load.  Sessions() now
// reads the loop-maintained snapshot under the lock.
func TestEngineSessionsPollRace(t *testing.T) {
	db := testDB(t)
	var pss []*playbackSession
	for i := 0; i < 3; i++ {
		pss = append(pss, buildPlaybackSession(t, db, fmt.Sprintf("poll-%d", i), 60))
	}
	db.Engine().Pause()
	var pbs []*Playback
	for _, ps := range pss {
		pb, err := ps.sess.Start()
		if err != nil {
			t.Fatal(err)
		}
		pbs = append(pbs, pb)
	}

	// Poll introspection from several goroutines for the whole run.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, es := range db.Engine().Sessions() {
					if es.Ticks < 0 || es.Due < 0 {
						t.Errorf("implausible snapshot: %+v", es)
						return
					}
				}
			}
		}()
	}
	db.Engine().Resume()
	for _, pb := range pbs {
		if _, err := pb.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	for _, ps := range pss {
		if err := ps.sess.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineActiveGaugeConsistency is the regression for the
// engine.sessions.active gauge race: both admit and the retire phase
// used to publish the gauge after dropping the engine lock, so an
// interleaved admit/retire pair could publish out of order and leave
// the gauge at a stale count forever.  Publishing inside the critical
// section that changes the count makes the publish order the count
// order, so once the engine drains the gauge must read exactly zero.
func TestEngineActiveGaugeConsistency(t *testing.T) {
	db := testDB(t)
	col := db.EnableObservability()
	const lanes, rounds = 4, 3
	// Graph construction is serial; only Start/Wait/Close race below, so
	// the interleavings exercised are exactly admit vs retire.
	sessions := make([][]*playbackSession, lanes)
	for lane := 0; lane < lanes; lane++ {
		for i := 0; i < rounds; i++ {
			sessions[lane] = append(sessions[lane], buildPlaybackSession(t, db, fmt.Sprintf("gauge-%d-%d", lane, i), 5))
		}
	}
	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			// Sequential short playbacks per lane, lanes concurrent with
			// each other and with the engine's retire phase: admissions
			// and retirements interleave heavily.
			for _, ps := range sessions[lane] {
				pb, err := ps.sess.Start()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := pb.Wait(); err != nil {
					t.Error(err)
					return
				}
				if err := ps.sess.Close(); err != nil {
					t.Error(err)
					return
				}
			}
		}(lane)
	}
	wg.Wait()
	// Engine drained: every admit was matched by a retire, and because
	// each publish happened atomically with its count change the final
	// published value is the final count.
	if g, ok := col.Snapshot().Gauge("engine.sessions.active"); !ok || g != 0 {
		t.Errorf("engine.sessions.active = %d,%v after drain, want 0", g, ok)
	}
	if st := db.Engine().Stats(); st.Active != 0 {
		t.Errorf("engine still has %d active entries after drain", st.Active)
	}
}

// TestAdmitCheckStartEnableRace is the regression for the shed gate's
// torn decision: admitCheck used to spread one shed across three lock
// acquisitions — level check, shedRejected++, and the clock read for
// the RetryAfter hint — so a concurrent EnableOverloadControl could
// swap the detector between them and the counted shed/hint reflected a
// mix of two regimes.  The check, count and hint now form one critical
// section; this test hammers admitCheck against detector swaps under
// -race and asserts every shed is internally consistent: the hint is
// exactly now + RetryAfter of one of the installed policies, and the
// Stats counter matches the number of errors returned.
func TestAdmitCheckStartEnableRace(t *testing.T) {
	db := testDB(t)
	eng := db.Engine()

	// Two regimes with distinguishable retry hints.  overloaded() arms a
	// detector and drives it straight to Overloaded (Window 1: every
	// step is a boundary; 90/100 misses clears the 0.25 default).
	const retryA = 7 * avtime.Second
	const retryB = 31 * avtime.Second
	overloaded := func(retry avtime.WorldTime) {
		det := eng.EnableOverloadControl(sched.OverloadPolicy{Window: 1, RetryAfter: retry})
		det.ObserveStep(100, 90, 0, 0)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				overloaded(retryA)
			case 1:
				// A fresh detector reads Normal: admissions flow again.
				eng.EnableOverloadControl(sched.OverloadPolicy{Window: 1, RetryAfter: retryB})
			case 2:
				overloaded(retryB)
			}
		}
	}()

	now := db.Clock().Now() // no engine running; the clock is static
	var sheds int64
	var checkers sync.WaitGroup
	for i := 0; i < 4; i++ {
		checkers.Add(1)
		go func() {
			defer checkers.Done()
			for j := 0; j < 2000; j++ {
				err := eng.admitCheck()
				if err == nil {
					continue
				}
				atomic.AddInt64(&sheds, 1)
				var oe *OverloadError
				if !errors.As(err, &oe) {
					t.Errorf("admitCheck returned %T, want *OverloadError", err)
					return
				}
				if oe.RetryAfter != now+retryA && oe.RetryAfter != now+retryB {
					t.Errorf("torn retry hint %v: not %v or %v", oe.RetryAfter, now+retryA, now+retryB)
					return
				}
			}
		}()
	}
	checkers.Wait()
	close(stop)
	wg.Wait()
	if got := eng.Stats().Rejected; got != atomic.LoadInt64(&sheds) {
		t.Errorf("Stats().Rejected = %d, but admitCheck returned %d errors", got, sheds)
	}
}
