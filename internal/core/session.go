package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/media"
	"avdb/internal/netsim"
	"avdb/internal/obs"
	"avdb/internal/sched"
	"avdb/internal/schema"
	"avdb/internal/storage"
)

// Session is one client's connection to the database: the scope in which
// activities are created, resources allocated, values bound and streams
// started.  Its shape follows §4.3's pseudo-code line by line: create
// activities (allocating resources — "if insufficient resources were
// available this statement would fail"), connect ports (allocating
// network bandwidth), query, bind, start.
type Session struct {
	db     *Database
	id     string
	client string
	link   *netsim.Link
	graph  *activity.Graph

	mu       sync.Mutex
	grants   []*sched.Grant
	conns    []*netsim.Conn
	streams  []*storage.Stream
	devices  []string
	playback *Playback
	closed   bool
	workers  int                    // 0 inherits the database's Workers setting
	striping *storage.StripePolicy  // nil inherits the store's policy
	tiered   *bool                  // nil follows the store's tier policy
	span     obs.SpanID             // session span when observability is on
	priority sched.Priority         // service class for overload sweeps
	deg      *degradeState          // armed degradation path, nil if none
	stalls   []*sched.StallDetector // detectors feeding the engine's pressure signal
}

// SetPriority assigns the session's service class.  Under engine
// overload control, lower-priority sessions are degraded first and
// restored last, and priority never changes the schedule while the
// system is healthy.
func (s *Session) SetPriority(p sched.Priority) {
	s.mu.Lock()
	s.priority = p
	s.mu.Unlock()
}

// Priority reports the session's service class.
func (s *Session) Priority() sched.Priority {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.priority
}

// WatchStalls registers stall detectors whose episodes feed the
// engine's pressure detector while this session is scheduled.  A
// window's EnableStallDetection detector is the usual candidate.
func (s *Session) WatchStalls(ds ...*sched.StallDetector) {
	s.mu.Lock()
	s.stalls = append(s.stalls, ds...)
	s.mu.Unlock()
}

// stallEpisodes sums episodes across the watched detectors.
func (s *Session) stallEpisodes() int64 {
	s.mu.Lock()
	ds := s.stalls
	s.mu.Unlock()
	var n int64
	for _, d := range ds {
		n += int64(d.Episodes())
	}
	return n
}

// Closed reports whether the session has been closed.
func (s *Session) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// SetWorkers overrides the database's executor lane bound for this
// session's streams.  Zero restores the database default; one forces
// serial execution.  Configure before Start.
func (s *Session) SetWorkers(n int) {
	s.mu.Lock()
	s.workers = n
	s.mu.Unlock()
}

// SetStriping overrides the store's stripe policy for streams this
// session binds afterwards (the Width field is placement-time and has no
// effect here; Seeks and Rounds govern how the session's reads are
// priced and scheduled).  Configure before binding values.
func (s *Session) SetStriping(p storage.StripePolicy) {
	s.mu.Lock()
	s.striping = &p
	s.mu.Unlock()
}

// SetTiered overrides whether streams this session binds afterwards go
// through popularity accounting (storage tier promotion/replication).
// By default sessions follow the store's tier policy; administrative
// sessions that should not skew popularity pass false.
func (s *Session) SetTiered(on bool) {
	s.mu.Lock()
	s.tiered = &on
	s.mu.Unlock()
}

// CacheStats aggregates the buffer-pool behavior of the session's open
// streams: hits, shared hits (chunks a neighbor session staged), and
// misses.
func (s *Session) CacheStats() storage.CacheStats {
	s.mu.Lock()
	streams := make([]*storage.Stream, len(s.streams))
	copy(streams, s.streams)
	s.mu.Unlock()
	var agg storage.CacheStats
	for _, stream := range streams {
		cs := stream.CacheStats()
		agg.Hits += cs.Hits
		agg.Misses += cs.Misses
		agg.Shared += cs.Shared
		agg.Prefetched += cs.Prefetched
		agg.Evicted += cs.Evicted
	}
	return agg
}

// InstallStriped is Install for an activity consuming a striped stream:
// the admission reservation spans the stripe, scaling the buffer demand
// by width while bus and CPU stay one stream's worth.
func (s *Session) InstallStriped(act activity.Activity, res sched.Resources, width int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: %s", ErrSessionClosed, s.id)
	}
	var g *sched.Grant
	if act.Location() == activity.AtDatabase && !res.IsZero() {
		var err error
		g, err = s.db.admission.ReserveStriped(res, width)
		if err != nil {
			return err
		}
	}
	if err := s.graph.Add(act); err != nil {
		if g != nil {
			g.Release()
		}
		return err
	}
	if g != nil {
		s.grants = append(s.grants, g)
	}
	return nil
}

// Connect opens a session for a client reachable over the given network
// link.
func (db *Database) Connect(client, linkID string) (*Session, error) {
	link, ok := db.network.Link(linkID)
	if !ok {
		return nil, fmt.Errorf("core: no network link %q", linkID)
	}
	db.mu.Lock()
	db.nextSession++
	id := fmt.Sprintf("%s/session-%d", db.name, db.nextSession)
	db.mu.Unlock()
	s := &Session{
		db: db, id: id, client: client, link: link,
		graph:    activity.NewGraph(id),
		priority: db.priority,
	}
	if sink := db.sink(); sink != nil {
		s.span = sink.BeginSpan(obs.NoSpan, obs.KindSession, id, db.clock.Now())
		sink.Count("session.opened", 1)
	}
	return s, nil
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// Graph exposes the session's activity graph.
func (s *Session) Graph() *activity.Graph { return s.graph }

// Install adds an activity to the session.  Database-located activities
// reserve res from the database's admission budget first — creating an
// activity IS allocating resources (§4.3) — and installation fails when
// the budget cannot cover it.
func (s *Session) Install(act activity.Activity, res sched.Resources) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: %s", ErrSessionClosed, s.id)
	}
	var g *sched.Grant
	if act.Location() == activity.AtDatabase && !res.IsZero() {
		var err error
		g, err = s.db.admission.Reserve(res)
		if err != nil {
			return err
		}
	}
	if err := s.graph.Add(act); err != nil {
		// A reservation for an activity that never joined the graph must
		// not outlive the failure.
		if g != nil {
			g.Release()
		}
		return err
	}
	if g != nil {
		s.grants = append(s.grants, g)
	}
	return nil
}

// AcquireDevice grants the session exclusive use of a platform device
// (an effects processor, a DAC, the jukebox).  The device is released at
// session close.
func (s *Session) AcquireDevice(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: %s", ErrSessionClosed, s.id)
	}
	if err := s.db.devices.Acquire(id, s.id); err != nil {
		return err
	}
	s.devices = append(s.devices, id)
	return nil
}

// Connect wires two activity ports.  A connection crossing the
// database/application boundary reserves rate on the session's network
// link and fails when the link cannot sustain it.
func (s *Session) Connect(from activity.Activity, fromPort string, to activity.Activity, toPort string, rate media.DataRate) (*activity.Connection, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("%w: %s", ErrSessionClosed, s.id)
	}
	if from.Location() == to.Location() {
		return s.graph.Connect(from, fromPort, to, toPort)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("core: a cross-location connection needs a positive rate")
	}
	nc, err := s.link.Connect(rate)
	if err != nil {
		return nil, err
	}
	conn, err := s.graph.ConnectVia(from, fromPort, to, toPort, nc)
	if err != nil {
		nc.Close()
		return nil, err
	}
	s.conns = append(s.conns, nc)
	return conn, nil
}

// streamAttacher is satisfied by reader activities that can pay storage
// read time per chunk.
type streamAttacher interface {
	AttachStream(*storage.Stream)
}

// BindValue binds the media value of oid.attr to an activity port —
// §4.3's "bind myNews.videoTrack to dbSource".  The paper's location
// rule is enforced: "activities bound to database values must be located
// with the database."  When the value has a placement, a storage stream
// at the given rate is opened and attached so delivery pays device time.
func (s *Session) BindValue(oid schema.OID, attr string, act activity.Activity, port string, rate media.DataRate) error {
	if act.Location() != activity.AtDatabase {
		return fmt.Errorf("core: activities bound to database values must be located with the database; %s is at the application", act.Name())
	}
	d, err := s.db.GetAttr(oid, attr)
	if err != nil {
		return err
	}
	if d.Kind() != schema.KindMedia {
		return fmt.Errorf("core: %v.%s is %v, not media", oid, attr, d.Kind())
	}
	if err := act.Bind(d.MediaVal(), port); err != nil {
		return err
	}
	return s.attachPlacement(oid, attr, "", act, rate)
}

// BindTrack binds one track of a tcomp attribute to an activity port —
// the component bindings behind "bind myNews.clip to dbSource".
func (s *Session) BindTrack(oid schema.OID, attr, track string, act activity.Activity, port string, rate media.DataRate) error {
	if act.Location() != activity.AtDatabase {
		return fmt.Errorf("core: activities bound to database values must be located with the database; %s is at the application", act.Name())
	}
	d, err := s.db.GetAttr(oid, attr)
	if err != nil {
		return err
	}
	if d.Kind() != schema.KindTComp {
		return fmt.Errorf("core: %v.%s is %v, not a tcomp", oid, attr, d.Kind())
	}
	tr, ok := d.TCompVal().Track(track)
	if !ok {
		return fmt.Errorf("core: %v.%s has no track %q", oid, attr, track)
	}
	if err := act.Bind(tr.Value, port); err != nil {
		return err
	}
	return s.attachPlacement(oid, attr, track, act, rate)
}

// BindClip binds every track of a tcomp attribute to the same-named
// component of a composite activity — the paper's one-statement
// "bind myNews.clip to dbSource".
func (s *Session) BindClip(oid schema.OID, attr string, comp *activity.Composite, rate media.DataRate) error {
	d, err := s.db.GetAttr(oid, attr)
	if err != nil {
		return err
	}
	if d.Kind() != schema.KindTComp {
		return fmt.Errorf("core: %v.%s is %v, not a tcomp", oid, attr, d.Kind())
	}
	for _, child := range comp.Children() {
		if _, ok := d.TCompVal().Track(child.Name()); !ok {
			continue // components without a matching track keep their binding
		}
		if err := s.BindTrack(oid, attr, child.Name(), child, "out", rate); err != nil {
			return err
		}
	}
	return nil
}

func (s *Session) attachPlacement(oid schema.OID, attr, track string, act activity.Activity, rate media.DataRate) error {
	seg, ok := s.db.Placement(oid, attr, track)
	if !ok || rate <= 0 {
		return nil
	}
	at, ok := act.(streamAttacher)
	if !ok {
		return nil
	}
	s.mu.Lock()
	override := s.striping
	tiered := s.tiered
	s.mu.Unlock()
	useTier := s.db.mediaSt.Tiering().Enabled()
	if tiered != nil {
		useTier = useTier && *tiered
	}
	policy := s.db.mediaSt.Striping()
	if override != nil {
		policy = *override
	}
	var stream *storage.Stream
	var err error
	if useTier {
		// Tiered open: the access bumps the value's popularity and may
		// promote or replicate it; any copy cost lands on this stream's
		// startup, charged to its first read.
		stream, _, err = s.db.mediaSt.OpenStreamTieredWith(seg.ID(), rate, s.db.clock.Now(), policy)
	} else if override != nil {
		stream, _, err = s.db.mediaSt.OpenStreamWith(seg.ID(), rate, *override)
	} else {
		stream, _, err = s.db.mediaSt.OpenStream(seg.ID(), rate)
	}
	if err != nil {
		return err
	}
	at.AttachStream(stream)
	s.mu.Lock()
	s.streams = append(s.streams, stream)
	s.mu.Unlock()
	return nil
}

// Playback is the handle of one started stream: the asynchronous side of
// the client interface.  "The client does not want to block during such
// transfers.  Rather it needs to initiate the transfer and then proceed
// to other tasks, perhaps being informed when the transfer is complete."
type Playback struct {
	graph *activity.Graph
	done  chan struct{}

	mu      sync.Mutex
	stats   *activity.RunStats
	err     error
	stopErr error // first failed Stop, kept for Session.Close reporting
}

// Start launches the session's graph.  It returns immediately; the
// stream runs against the database clock and completion is observed via
// the returned Playback.
func (s *Session) Start() (*Playback, error) {
	return s.StartAt(avtime.RateVideo30, 0)
}

// StartAt launches the graph at a specific tick rate; maxTicks <= 0 runs
// until the sources finish.
func (s *Session) StartAt(rate avtime.Rate, maxTicks int) (*Playback, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("%w: %s", ErrSessionClosed, s.id)
	}
	if s.playback != nil {
		select {
		case <-s.playback.done:
			// previous playback finished; allow a new one
		default:
			return nil, fmt.Errorf("core: session %s already has a running stream", s.id)
		}
	}
	// Load shedding: an overloaded engine rejects new admissions with a
	// retry hint rather than thrashing the sessions already scheduled.
	if err := s.db.runEngine.admitCheck(); err != nil {
		return nil, err
	}
	if err := s.graph.Start(); err != nil {
		return nil, err
	}
	workers := s.workers
	if workers == 0 {
		workers = s.db.workers
	}
	cfg := activity.RunConfig{
		Clock: s.db.clock, Rate: rate, MaxTicks: maxTicks, Workers: workers,
		Obs: s.db.sink(), ObsParent: s.span,
	}
	// The playback no longer owns a private run loop: the graph is split
	// into a resumable GraphRun and admitted to the database engine,
	// which interleaves every active session's ticks on the one shared
	// clock.  The Playback handle keeps the asynchronous client
	// interface of §3.3 unchanged — Done/Wait/Stop behave as before.
	run, err := s.graph.Begin(cfg)
	if err != nil {
		s.graph.Stop()
		return nil, err
	}
	p := &Playback{graph: s.graph, done: make(chan struct{})}
	s.playback = p
	s.db.runEngine.admit(s, run, p, s.stripeShardKeyLocked())
	return p, nil
}

// stripeShardKeyLocked derives the session's engine shard key from the
// disk groups its streams read: sessions over the same stripe group
// land in the same shard, so a shard's tick slice leans on one disk
// group's SCAN-EDF batches rather than spraying every shard across
// every disk.  Unstriped (or streamless) sessions return -1 and are
// spread round-robin by the engine.  The caller holds s.mu.
func (s *Session) stripeShardKeyLocked() int {
	h := fnv.New32a()
	keyed := false
	for _, st := range s.streams {
		seg := st.Segment()
		if seg == nil {
			continue
		}
		for _, id := range seg.Stripe() {
			h.Write([]byte(id))
			keyed = true
		}
	}
	if !keyed {
		return -1
	}
	// Mask to non-negative; the engine reduces modulo its shard count.
	return int(h.Sum32() & 0x7fffffff)
}

// Done returns a channel closed when the stream completes — the
// asynchronous notification of §3.3.
func (p *Playback) Done() <-chan struct{} { return p.done }

// Wait blocks until completion and returns the run statistics.
func (p *Playback) Wait() (*activity.RunStats, error) {
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats, p.err
}

// complete records the run's outcome and unblocks waiters; called by
// the engine when it retires the run.
func (p *Playback) complete(stats *activity.RunStats, err error) {
	p.mu.Lock()
	p.stats, p.err = stats, err
	p.mu.Unlock()
	close(p.done)
}

// Stop halts the stream and reports teardown failures from the graph's
// nodes; Wait still returns the stream's statistics.  Stopping a stream
// that already finished is a no-op returning nil.
func (p *Playback) Stop() error {
	err := p.graph.Stop()
	if err != nil {
		p.mu.Lock()
		if p.stopErr == nil {
			p.stopErr = err
		}
		p.mu.Unlock()
	}
	return err
}

// Close stops any running stream and releases every resource the session
// holds: admission grants, network connections, storage streams and
// exclusive devices.  It reports the teardown errors a stopped stream's
// nodes raised, so a failed cleanup is visible to clients that never
// call Playback.Wait.  Close never fails to release resources; the
// error is purely a report.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	playback := s.playback
	grants := s.grants
	conns := s.conns
	streams := s.streams
	s.grants, s.conns, s.streams, s.devices = nil, nil, nil, nil
	s.mu.Unlock()

	var closeErr error
	if playback != nil {
		playback.Stop()
		<-playback.done
		// stopErr captures the first failed Stop (ours above or an
		// earlier client call); stats.StopErr carries the run's own
		// teardown failures from the engine's retirement pass.
		playback.mu.Lock()
		closeErr = playback.stopErr
		if playback.stats != nil && playback.stats.StopErr != nil {
			closeErr = errors.Join(closeErr, playback.stats.StopErr)
		}
		playback.mu.Unlock()
	} else if err := s.graph.Stop(); err != nil {
		closeErr = err
	}
	for _, g := range grants {
		g.Release()
	}
	for _, c := range conns {
		c.Close()
	}
	for _, st := range streams {
		st.Close()
	}
	s.db.devices.ReleaseAll(s.id)
	if sink := s.db.sink(); sink != nil {
		sink.EndSpan(s.span, s.db.clock.Now())
		sink.Count("session.closed", 1)
	}
	return closeErr
}

// Link returns the session's network link.
func (s *Session) Link() *netsim.Link { return s.link }
