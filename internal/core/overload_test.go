package core

import (
	"errors"
	"fmt"
	"testing"

	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/media"
	"avdb/internal/netsim"
	"avdb/internal/sched"
)

// degradableSession is a playbackSession with an armed degradation path
// whose grant the engine's sweep can shrink and grow.
type degradableSession struct {
	*playbackSession
	grant *sched.Grant
}

func buildDegradableSession(t testing.TB, db *Database, client string, frames int, prio sched.Priority) *degradableSession {
	t.Helper()
	ps := buildPlaybackSession(t, db, client, frames)
	ps.sess.SetPriority(prio)
	q, err := media.ParseVideoQuality(testQualityStr)
	if err != nil {
		t.Fatal(err)
	}
	grant, err := db.Admission().Reserve(ResourcesForVideo(q))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { grant.Release() })
	fallback := media.VideoQuality{Width: 16, Height: 12, Depth: 8, FPS: 30}
	if err := ps.sess.EnableDegradation(DegradeSpec{
		Source: ps.src, Port: "out", Sink: ps.win, Quality: fallback, Grant: grant,
	}); err != nil {
		t.Fatal(err)
	}
	return &degradableSession{playbackSession: ps, grant: grant}
}

// TestSessionPriorityPlumbing covers the service-class wiring: sessions
// inherit the database Config's priority and SetPriority overrides it.
func TestSessionPriorityPlumbing(t *testing.T) {
	db, err := Open(Config{
		Name:      "prio",
		Resources: sched.Resources{Buffers: 8, CPU: 100 * media.MBPerSecond, Bus: 100 * media.MBPerSecond},
		Priority:  sched.PriorityLow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Network().AddLink(netsim.NewLink("lan0", 12*media.MBPerSecond, avtime.Millisecond, 0, 1)); err != nil {
		t.Fatal(err)
	}
	sess, err := db.Connect("app", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if got := sess.Priority(); got != sched.PriorityLow {
		t.Errorf("inherited priority = %v, want %v", got, sched.PriorityLow)
	}
	sess.SetPriority(sched.PriorityHigh)
	if got := sess.Priority(); got != sched.PriorityHigh {
		t.Errorf("after SetPriority: %v, want %v", got, sched.PriorityHigh)
	}
}

// TestSessionStartShedWhenOverloaded drives the detector to Overloaded
// and checks the load-shedding contract: Start fails with a sentinel the
// client can test with errors.Is, the error carries a virtual-time retry
// hint, and once pressure drops below Overloaded the same session is
// admitted.
func TestSessionStartShedWhenOverloaded(t *testing.T) {
	db := testDB(t)
	det := db.Engine().EnableOverloadControl(sched.OverloadPolicy{Window: 1, RetryAfter: avtime.Second})

	// One window of pure misses: immediate escalation to Overloaded.
	if level, _, _ := det.ObserveStep(4, 4, 1, 0); level != sched.PressureOverloaded {
		t.Fatalf("level after miss window = %v, want Overloaded", level)
	}

	ps := buildPlaybackSession(t, db, "late", 10)
	defer ps.sess.Close()
	_, err := ps.sess.Start()
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Start under overload = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("Start error %T does not unwrap to *OverloadError", err)
	}
	if want := db.Clock().Now() + avtime.Second; oe.RetryAfter != want {
		t.Errorf("RetryAfter = %v, want %v", oe.RetryAfter, want)
	}
	st := db.Engine().Stats()
	if !st.OverloadOn || st.Pressure != sched.PressureOverloaded || st.Rejected != 1 {
		t.Errorf("engine stats under overload = %+v", st)
	}

	// Two clean windows step the level down to Pressured, which still
	// admits; the retry the error hinted at now succeeds.
	det.ObserveStep(10, 0, 0, 0)
	if level, _, _ := det.ObserveStep(10, 0, 0, 0); level != sched.PressurePressured {
		t.Fatalf("level after clean windows = %v, want Pressured", level)
	}
	pb, err := ps.sess.Start()
	if err != nil {
		t.Fatalf("Start after pressure cleared: %v", err)
	}
	if _, err := pb.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineDegradeSweepPriorityOrder exercises the sweep directly: with
// High, Normal and Low priority sessions all armed, Pressured sweeps
// degrade one victim per window lowest class first, Overloaded takes the
// whole lowest class at once, and the high-priority session is never
// degraded while a lower class still has headroom to give.  Restores run
// in reverse order and put the grant back.
func TestEngineDegradeSweepPriorityOrder(t *testing.T) {
	db := testDB(t)
	// A huge window keeps the live loop's own evaluations out of the
	// test; the sweeps below are called directly while paused.
	db.Engine().EnableOverloadControl(sched.OverloadPolicy{Window: 1 << 30})

	high := buildDegradableSession(t, db, "pri-high", 10, sched.PriorityHigh)
	norm := buildDegradableSession(t, db, "pri-norm", 10, sched.PriorityNormal)
	low := buildDegradableSession(t, db, "pri-low", 10, sched.PriorityLow)
	all := []*degradableSession{high, norm, low}

	q, _ := media.ParseVideoQuality(testQualityStr)
	fallback := media.VideoQuality{Width: 16, Height: 12, Depth: 8, FPS: 30}
	fullRes, degRes := ResourcesForVideo(q), ResourcesForVideo(fallback)

	eng := db.Engine()
	eng.Pause()
	var pbs []*Playback
	for _, ds := range all {
		pb, err := ds.sess.Start()
		if err != nil {
			t.Fatal(err)
		}
		pbs = append(pbs, pb)
	}

	now := db.Clock().Now()
	degraded := func() []bool {
		return []bool{high.sess.Degraded(), norm.sess.Degraded(), low.sess.Degraded()}
	}
	check := func(stage string, want []bool) {
		t.Helper()
		got := degraded()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: degraded [high norm low] = %v, want %v", stage, got, want)
			}
		}
	}

	// Pressured: one victim per window, lowest class first.
	eng.degradeSweep(sched.PressurePressured, now, nil)
	check("sweep 1", []bool{false, false, true})
	if got := low.grant.Resources(); got != degRes {
		t.Errorf("low grant after degrade = %v, want %v", got, degRes)
	}
	eng.degradeSweep(sched.PressurePressured, now, nil)
	check("sweep 2", []bool{false, true, true})

	// Overloaded: the whole lowest class present (now only High remains).
	eng.degradeSweep(sched.PressureOverloaded, now, nil)
	check("sweep 3", []bool{true, true, true})

	st := eng.Stats()
	if st.Degraded != 3 || st.DegradedNow != 3 {
		t.Errorf("stats after sweeps = %+v, want Degraded=3 DegradedNow=3", st)
	}

	// Restores pop most-recently-degraded first: high, then norm, then
	// low — the first victim is the last made whole.
	eng.restoreSweep(now, nil)
	check("restore 1", []bool{false, true, true})
	eng.restoreSweep(now, nil)
	check("restore 2", []bool{false, false, true})
	eng.restoreSweep(now, nil)
	check("restore 3", []bool{false, false, false})
	for i, ds := range all {
		if got := ds.grant.Resources(); got != fullRes {
			t.Errorf("session %d grant after restore = %v, want %v", i, got, fullRes)
		}
	}
	st = eng.Stats()
	if st.Restored != 3 || st.DegradedNow != 0 {
		t.Errorf("stats after restores = %+v, want Restored=3 DegradedNow=0", st)
	}

	eng.Resume()
	for _, pb := range pbs {
		if _, err := pb.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	for _, ds := range all {
		if err := ds.sess.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineRestoreEmitsEvents checks the event contract around a full
// degrade/restore cycle: EventDegraded then EventRestored on the sink,
// with the window back at full quality afterwards.
func TestEngineRestoreEmitsEvents(t *testing.T) {
	db := testDB(t)
	db.Engine().EnableOverloadControl(sched.OverloadPolicy{Window: 1 << 30})
	ds := buildDegradableSession(t, db, "cycle", 10, sched.PriorityLow)

	var events []activity.Event
	for _, ev := range []activity.Event{activity.EventDegraded, activity.EventRestored} {
		ev := ev
		if err := ds.win.Catch(ev, func(activity.EventInfo) { events = append(events, ev) }); err != nil {
			t.Fatal(err)
		}
	}

	eng := db.Engine()
	eng.Pause()
	pb, err := ds.sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	now := db.Clock().Now()
	eng.degradeSweep(sched.PressurePressured, now, nil)
	if !ds.sess.Degraded() {
		t.Fatal("session not degraded after sweep")
	}
	eng.restoreSweep(now, nil)
	if ds.sess.Degraded() {
		t.Fatal("session still degraded after restore sweep")
	}
	eng.Resume()
	if _, err := pb.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := ds.sess.Close(); err != nil {
		t.Fatal(err)
	}
	want := []activity.Event{activity.EventDegraded, activity.EventRestored}
	if len(events) != len(want) || events[0] != want[0] || events[1] != want[1] {
		t.Errorf("event sequence = %v, want %v", events, want)
	}
}

// BenchmarkEngineOverload measures the host cost the overload-control
// path adds to the shared run loop — per-step detector feeding, window
// evaluation and the armed sweep machinery — against the identical
// four-session playback with control disabled.
func BenchmarkEngineOverload(b *testing.B) {
	for _, control := range []bool{false, true} {
		name := "control-off"
		if control {
			name = "control-on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := testDB(b)
				if control {
					db.Engine().EnableOverloadControl(sched.OverloadPolicy{})
				}
				var dss []*degradableSession
				for j := 0; j < 4; j++ {
					prio := sched.PriorityLow
					if j%2 == 0 {
						prio = sched.PriorityHigh
					}
					dss = append(dss, buildDegradableSession(b, db, fmt.Sprintf("bench-%d", j), 30, prio))
				}
				b.StartTimer()
				db.Engine().Pause()
				var pbs []*Playback
				for _, ds := range dss {
					pb, err := ds.sess.Start()
					if err != nil {
						b.Fatal(err)
					}
					pbs = append(pbs, pb)
				}
				db.Engine().Resume()
				for _, pb := range pbs {
					if _, err := pb.Wait(); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				for _, ds := range dss {
					ds.sess.Close()
				}
				b.StartTimer()
			}
		})
	}
}
