package core

// tier_fault_test.go exercises the storage hierarchy under the engine:
// a disk outage that lands mid-playback on a replicated hot clip (reads
// fail over to the surviving copy, no frames lost), the same outage
// breaking a promotion attempt (the copy rolls back, the value stays
// archival and keeps playing from the jukebox), and a platter jam that
// kills a swap-dependent open outright — all byte-identical across
// engine worker counts, with bystanders untouched.

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/fault"
	"avdb/internal/media"
	"avdb/internal/sched"
	"avdb/internal/schema"
	"avdb/internal/storage"
)

// buildTierPlayback wires a playback session over a clip placed by the
// caller; a BindValue failure (e.g. a jammed platter swap) is returned,
// not fatal, so tests can assert on it.
func buildTierPlayback(t testing.TB, db *Database, client string, oid schema.OID) (*playbackSession, error) {
	t.Helper()
	q, err := media.ParseVideoQuality(testQualityStr)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := db.Connect(client, "lan0")
	if err != nil {
		t.Fatal(err)
	}
	src, err := activities.NewVideoReader("src", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Install(src, sched.Resources{Buffers: 1}); err != nil {
		t.Fatal(err)
	}
	win := activities.NewVideoWindow("win", activity.AtApplication, q, avtime.Second)
	if err := sess.Install(win, sched.Resources{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Connect(src, "out", win, "in", q.DataRate()); err != nil {
		t.Fatal(err)
	}
	if err := sess.BindValue(oid, "videoTrack", src, "out", media.MBPerSecond); err != nil {
		sess.Close()
		return nil, err
	}
	return &playbackSession{sess: sess, src: src, win: win}, nil
}

// tierNewscast stores a clip without placing it, leaving placement to
// the caller.
func tierNewscast(t testing.TB, db *Database, title string, frames int) schema.OID {
	t.Helper()
	o, err := db.NewObject("SimpleNewscast")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(o.OID(), "title", schema.String(title)); err != nil {
		t.Fatal(err)
	}
	when := time.Date(1993, 4, 19, 0, 0, 0, 0, time.UTC)
	if err := db.SetAttr(o.OID(), "whenBroadcast", schema.Date(when)); err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(o.OID(), "videoTrack", schema.Media(testClip(frames))); err != nil {
		t.Fatal(err)
	}
	return o.OID()
}

// TestEngineTierFaultIsolation is the hierarchy's fault story under the
// engine, following TestEngineDiskCrashIsolation's structure.  Wave 1
// warms the system: one jukebox session plays the archival clip (first
// popularity access, platter loaded).  Then disk0 goes down and the
// jukebox carousel jams, and wave 2 starts five sessions at once:
//
//   - two hot-clip sessions on a striped value that replicates at the
//     second access — their disk0-homed chunks fail over to the replica,
//     so they finish every frame with no loss and no error;
//   - a second jukebox session whose access crosses the promotion
//     threshold mid-outage — the promotion's write probe hits dead
//     disk0, rolls back, and the session keeps playing from the platter;
//   - a jam victim whose clip sits on an unloaded disc — its open dies
//     on the jammed swap;
//   - a bystander on disk3, untouched.
//
// The whole ensemble is byte-identical at EngineWorkers 1, 2 and 4, and
// the bystander matches a fault-free run.
func TestEngineTierFaultIsolation(t *testing.T) {
	const frames = 30

	type tierOutcome struct {
		Shown   int
		Lost    int
		Err     string
		BindErr string
	}

	run := func(engineWorkers int, inject bool) (string, []tierOutcome, []storage.TierInfo) {
		db := isoDB(t, 4)
		col := db.EnableObservability()
		db.Engine().SetWorkers(engineWorkers)
		db.Storage().SetTierPolicy(storage.TierPolicy{
			PromoteAt: 2,
			Width:     4, // promotion wants every disk, including dead disk0
			Replicas:  storage.ReplicaPolicy{Copies: 2, PromoteAt: 2},
		})
		db.Storage().SetCachePolicy(storage.CachePolicy{Capacity: 8, Lookahead: 4})

		hotOID := tierNewscast(t, db, "hot", frames)
		if _, err := db.PlaceMediaStriped(hotOID, "videoTrack", media.MBPerSecond, 2); err != nil {
			t.Fatal(err)
		}
		archOID := tierNewscast(t, db, "archive", frames)
		if _, err := db.PlaceMediaOnDisc(archOID, "videoTrack", "jukebox0", 2); err != nil {
			t.Fatal(err)
		}
		coldOID := tierNewscast(t, db, "cold", frames)
		if _, err := db.PlaceMediaOnDisc(coldOID, "videoTrack", "jukebox0", 3); err != nil {
			t.Fatal(err)
		}
		byOID := tierNewscast(t, db, "bystander", frames)
		if _, err := db.PlaceMedia(byOID, "videoTrack", "disk3", media.MBPerSecond); err != nil {
			t.Fatal(err)
		}

		// Wave 1: play the archival clip once — first popularity access,
		// and it leaves disc 2 in the platter for wave 2.
		warm, err := buildTierPlayback(t, db, "warmup", archOID)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := warm.sess.Start()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pb.Wait(); err != nil {
			t.Fatal(err)
		}
		warm.sess.Close()
		// First popularity access for the hot clip too, so wave 2's first
		// session crosses the replication threshold at bind time — before
		// either hot stream opens and snapshots the replica set.
		warmHot, err := buildTierPlayback(t, db, "warmup-hot", hotOID)
		if err != nil {
			t.Fatal(err)
		}
		warmHot.sess.Close()

		if inject {
			now := db.Clock().Now()
			plan := fault.NewPlan(7)
			for _, f := range []fault.Fault{
				{Kind: fault.DeviceOutage, Target: "disk0", Start: now, Dur: avtime.WorldTime(1 << 40)},
				{Kind: fault.DiscSwapFail, Target: "jukebox0", Start: now, Dur: avtime.WorldTime(1 << 40), Probability: 1},
			} {
				if _, err := plan.Add(f); err != nil {
					t.Fatal(err)
				}
			}
			db.Devices().SetFaultHook(fault.NewInjector(plan, db.Clock()))
		}

		// Wave 2.  Binding opens the streams, so tier movement happens
		// here: hot-b's access replicates the hot clip, promo's access
		// attempts (and under the outage fails) the promotion, and the
		// jam victim's bind dies on the swap.
		outs := make([]tierOutcome, 5)
		hotA, err := buildTierPlayback(t, db, "hot-a", hotOID)
		if err != nil {
			t.Fatal(err)
		}
		hotB, err := buildTierPlayback(t, db, "hot-b", hotOID)
		if err != nil {
			t.Fatal(err)
		}
		promo, err := buildTierPlayback(t, db, "promo", archOID)
		if err != nil {
			t.Fatal(err)
		}
		jam, jamErr := buildTierPlayback(t, db, "jam-victim", coldOID)
		if jamErr != nil {
			outs[3].BindErr = jamErr.Error()
		}
		by, err := buildTierPlayback(t, db, "bystander", byOID)
		if err != nil {
			t.Fatal(err)
		}

		all := []*playbackSession{hotA, hotB, promo, jam, by}
		for _, ps := range all {
			if ps != nil {
				ps.src.SetDropOnFault(true)
			}
		}
		db.Engine().Pause()
		var pbs []*Playback
		var idx []int
		for i, ps := range all {
			if ps == nil {
				continue
			}
			pb, err := ps.sess.Start()
			if err != nil {
				t.Fatal(err)
			}
			pbs = append(pbs, pb)
			idx = append(idx, i)
		}
		db.Engine().Resume()
		for k, pb := range pbs {
			i := idx[k]
			_, err := pb.Wait()
			outs[i] = tierOutcome{Shown: all[i].win.FramesShown(), Lost: all[i].src.FramesLost(), BindErr: outs[i].BindErr}
			if err != nil {
				outs[i].Err = err.Error()
			}
		}
		for _, ps := range all {
			if ps != nil {
				ps.sess.Close()
			}
		}
		tiers := db.Storage().TierInfo(db.Clock().Now())
		js, err := col.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js, outs, tiers
	}

	snap, outs, tiers := run(1, true)

	// Hot sessions rode the replica through the outage: all frames, no
	// loss, no error.
	for _, i := range []int{0, 1} {
		if outs[i].Err != "" || outs[i].Shown != frames || outs[i].Lost != 0 {
			t.Errorf("hot session %d under outage: %+v, want %d/0 frames via failover", i, outs[i], frames)
		}
	}
	// The promotion rolled back, but the archival copy kept playing.
	if outs[2].Err != "" || outs[2].Shown != frames {
		t.Errorf("promo session: %+v, want full playback from the jukebox", outs[2])
	}
	if tiers[1].Seg == 0 || tiers[1].Promoted {
		t.Errorf("archival value promoted through a dead disk: %+v", tiers[1])
	}
	if tiers[0].Copies != 2 {
		t.Errorf("hot clip copies = %d, want 2 (replicated at second access)", tiers[0].Copies)
	}
	// The jam victim never got a stream.
	if outs[3].BindErr == "" {
		t.Error("jam victim bound a stream through a jammed carousel")
	} else if !strings.Contains(outs[3].BindErr, device.ErrTransientRead.Error()) {
		t.Errorf("jam victim error %q does not mention the swap fault", outs[3].BindErr)
	}
	if outs[4].Err != "" || outs[4].Shown != frames || outs[4].Lost != 0 {
		t.Errorf("bystander under faults: %+v, want %d/0 frames", outs[4], frames)
	}

	// Deterministic across engine parallelism: same outcomes, tier state
	// and observability bytes at every worker count.
	for _, workers := range []int{2, 4} {
		wSnap, wOuts, wTiers := run(workers, true)
		if !reflect.DeepEqual(outs, wOuts) {
			t.Errorf("engine workers=%d: outcomes diverged: %+v vs %+v", workers, wOuts, outs)
		}
		if !reflect.DeepEqual(tiers, wTiers) {
			t.Errorf("engine workers=%d: tier state diverged: %+v vs %+v", workers, wTiers, tiers)
		}
		if wSnap != snap {
			t.Errorf("engine workers=%d: obs snapshots differ (%d vs %d bytes)", workers, len(wSnap), len(snap))
		}
	}

	// The bystander matches a fault-free run; the promotion goes through
	// when nothing is broken.
	_, cleanOuts, cleanTiers := run(1, false)
	if outs[4] != cleanOuts[4] {
		t.Errorf("bystander perturbed by tier faults: %+v vs clean %+v", outs[4], cleanOuts[4])
	}
	if !cleanTiers[1].Promoted {
		t.Errorf("fault-free promotion did not happen: %+v", cleanTiers[1])
	}
}
