package core

import (
	"fmt"

	"avdb/internal/avtime"
	"avdb/internal/codec"
	"avdb/internal/media"
)

// RepresentationHints tell the database what an application needs from a
// stored video value, so the database — not the application — can pick
// the encoding: "applications should avoid explicit references to
// particular AV data representations" (§4.1).
type RepresentationHints struct {
	// RandomAccess favors an intra-coded representation, where every
	// frame decodes independently (editing workloads).
	RandomAccess bool
	// Scalable favors a layered representation servable at several
	// qualities without re-encoding.
	Scalable bool
	// Archive favors the smallest representation (inter-coded).
	Archive bool
	// Raw skips encoding entirely (capture staging).
	Raw bool
}

// ChooseVideoCodec resolves hints to a codec.  Priority: Raw (none) >
// Scalable > RandomAccess > Archive > default (inter-coded).
func ChooseVideoCodec(h RepresentationHints) (codec.VideoCodec, bool) {
	switch {
	case h.Raw:
		return nil, false
	case h.Scalable:
		return codec.ScalableCodec, true
	case h.RandomAccess:
		return codec.JPEG, true
	default:
		return codec.MPEG, true
	}
}

// ImportVideo converts captured raw video into the representation the
// hints call for, returning the value to store.
func (db *Database) ImportVideo(v *media.VideoValue, h RepresentationHints) (media.Value, error) {
	c, encode := ChooseVideoCodec(h)
	if !encode {
		return v, nil
	}
	return c.Encode(v)
}

// RetrievalInfo describes how a quality-factor retrieval was served.
type RetrievalInfo struct {
	// Method is "direct", "layer-drop" or "transcode".
	Method string
	// BytesProcessed is the data volume the database had to touch to
	// serve the request (the cost driver).
	BytesProcessed int64
	// BytesOut is the size of the produced representation.
	BytesOut int64
}

// RetrieveAtQuality serves a media value at a requested video quality
// factor.  Scalable values are served by dropping layers — "a video
// value encoded at one quality can be viewed at a lower quality by
// ignoring some of the encoded data" — which touches only the retained
// bytes.  Other representations must be transcoded: fully decoded,
// resampled and re-encoded, touching every stored byte.
func RetrieveAtQuality(v media.Value, q media.VideoQuality) (media.Value, RetrievalInfo, error) {
	if !q.Valid() {
		return nil, RetrievalInfo{}, fmt.Errorf("core: invalid quality %v", q)
	}
	switch stored := v.(type) {
	case *codec.EncodedVideo:
		if stored.Layers() > 0 || stored.GOP() == 1 {
			return serveByDropping(stored, q)
		}
		return transcodeEncoded(stored, q)
	case *media.VideoValue:
		out := stored
		method := "direct"
		if keep := frameKeepFactor(stored.Type().Rate, q); keep > 1 {
			sub := media.NewVideoValue(stored.Type(), stored.Width(), stored.Height(), stored.Depth())
			for i := 0; i < stored.NumFrames(); i += keep {
				f, err := stored.Frame(i)
				if err != nil {
					return nil, RetrievalInfo{}, err
				}
				if err := sub.AppendFrame(f); err != nil {
					return nil, RetrievalInfo{}, err
				}
			}
			out = sub
			method = "frame-drop"
		}
		if out.Width() != q.Width || out.Height() != q.Height {
			resized, err := resizeVideo(out, q.Width, q.Height)
			if err != nil {
				return nil, RetrievalInfo{}, err
			}
			return resized, RetrievalInfo{Method: "transcode", BytesProcessed: out.Size() + resized.Size(), BytesOut: resized.Size()}, nil
		}
		return out, RetrievalInfo{Method: method, BytesProcessed: out.Size(), BytesOut: out.Size()}, nil
	}
	return nil, RetrievalInfo{}, fmt.Errorf("core: cannot serve %T at a video quality", v)
}

// serveByDropping serves a request from an all-key-frame representation
// by ignoring encoded data: layers for resolution, frames for rate.
func serveByDropping(stored *codec.EncodedVideo, q media.VideoQuality) (media.Value, RetrievalInfo, error) {
	out := stored
	method := "direct"
	if stored.Layers() > 0 {
		if keep := layersFor(stored, q); keep < stored.Layers() {
			dropped, err := codec.DropLayers(stored, keep)
			if err != nil {
				return nil, RetrievalInfo{}, err
			}
			out = dropped
			method = "layer-drop"
		}
	} else if q.Width < stored.Width() || q.Height < stored.Height() {
		// An intra-coded value has no layers; resolution reduction means
		// transcoding.
		return transcodeEncoded(stored, q)
	}
	if keep := frameKeepFactor(out.Type().Rate, q); keep > 1 {
		dropped, err := codec.DropFrames(out, keep)
		if err != nil {
			return nil, RetrievalInfo{}, err
		}
		out = dropped
		if method == "direct" {
			method = "frame-drop"
		}
	}
	return out, RetrievalInfo{Method: method, BytesProcessed: out.Size(), BytesOut: out.Size()}, nil
}

// frameKeepFactor reports how many stored frames map to one requested
// frame (1 = no temporal scaling).
func frameKeepFactor(stored avtime.Rate, q media.VideoQuality) int {
	hz := stored.Hz()
	if hz <= 0 || q.FPS <= 0 || float64(q.FPS) >= hz {
		return 1
	}
	keep := int(hz / float64(q.FPS))
	if keep < 1 {
		keep = 1
	}
	return keep
}

// layersFor picks the layer count whose resolution covers the request.
func layersFor(e *codec.EncodedVideo, q media.VideoQuality) int {
	switch {
	case q.Width <= (e.Width()+3)/4 && q.Height <= (e.Height()+3)/4:
		return 1
	case q.Width <= (e.Width()+1)/2 && q.Height <= (e.Height()+1)/2:
		return 2
	default:
		return codec.NumLayers
	}
}

// transcodeEncoded fully decodes, resamples and re-encodes a
// non-scalable value — the expensive path a scalable representation
// avoids.
func transcodeEncoded(e *codec.EncodedVideo, q media.VideoQuality) (media.Value, RetrievalInfo, error) {
	c, ok := codec.LookupVideoCodec(e.Codec())
	if !ok {
		return nil, RetrievalInfo{}, fmt.Errorf("core: stored value uses unknown codec %q", e.Codec())
	}
	raw, err := c.Decode(e)
	if err != nil {
		return nil, RetrievalInfo{}, err
	}
	resized := raw
	if raw.Width() != q.Width || raw.Height() != q.Height {
		resized, err = resizeVideo(raw, q.Width, q.Height)
		if err != nil {
			return nil, RetrievalInfo{}, err
		}
	}
	out, err := c.Encode(resized)
	if err != nil {
		return nil, RetrievalInfo{}, err
	}
	touched := e.Size() + raw.Size() + resized.Size() + out.Size()
	return out, RetrievalInfo{Method: "transcode", BytesProcessed: touched, BytesOut: out.Size()}, nil
}

// resizeVideo nearest-neighbor resamples every frame.
func resizeVideo(v *media.VideoValue, w, h int) (*media.VideoValue, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("core: invalid resize target %dx%d", w, h)
	}
	out := media.NewVideoValue(media.TypeRawVideo30, w, h, v.Depth())
	bpp := v.Depth() / 8
	for i := 0; i < v.NumFrames(); i++ {
		src, err := v.Frame(i)
		if err != nil {
			return nil, err
		}
		dst := media.NewFrame(w, h, v.Depth())
		for y := 0; y < h; y++ {
			sy := y * src.Height / h
			for x := 0; x < w; x++ {
				sx := x * src.Width / w
				copy(dst.Pix[(y*w+x)*bpp:(y*w+x+1)*bpp], src.Pix[(sy*src.Width+sx)*bpp:])
			}
		}
		if err := out.AppendFrame(dst); err != nil {
			return nil, err
		}
	}
	return out, nil
}
