package core

import (
	"sync"
	"testing"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/fault"
	"avdb/internal/media"
	"avdb/internal/sched"
	"avdb/internal/schema"
)

// faultedStream installs a transient-fault injector on disk0 and builds
// a resilient reader→window stream over the stored newscast.
func faultedStream(t *testing.T, db *Database, oid schema.OID) (*Session, *activities.VideoReader, *activities.VideoWindow) {
	t.Helper()
	plan := fault.NewPlan(21).
		MustAdd(fault.Fault{Kind: fault.TransientRead, Target: "disk0", Start: 0, Probability: 0.3})
	db.Devices().SetFaultHook(fault.NewInjector(plan, db.Clock()))

	q, _ := media.ParseVideoQuality(testQualityStr)
	sess, err := db.Connect("app", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	src, err := activities.NewVideoReader("src", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	src.SetRetry(fault.DefaultRetry)
	src.SetDropOnFault(true)
	if err := sess.Install(src, ResourcesForVideo(q)); err != nil {
		t.Fatal(err)
	}
	win := activities.NewVideoWindow("win", activity.AtApplication, q, avtime.Second)
	if err := sess.Install(win, sched.Resources{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Connect(src, "out", win, "in", q.DataRate()); err != nil {
		t.Fatal(err)
	}
	if err := sess.BindValue(oid, "videoTrack", src, "out", media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	return sess, src, win
}

func TestCrashRecoverDuringFaultedPlayback(t *testing.T) {
	db := testDB(t)
	oid := storeNewscast(t, db, "60 Minutes", 60)
	sess, src, win := faultedStream(t, db, oid)
	defer sess.Close()

	// Crash the volatile state mid-stream, while the reader is riding out
	// injected faults.  Media segments and the WAL survive a crash, so
	// the running stream must not notice.
	crashed := make(chan struct{})
	var once sync.Once
	if err := src.Catch(activity.EventEachFrame, func(activity.EventInfo) {
		once.Do(func() {
			db.Crash()
			close(crashed)
		})
	}); err != nil {
		t.Fatal(err)
	}
	pb, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pb.Wait(); err != nil {
		t.Fatalf("faulted playback died across the crash: %v", err)
	}
	<-crashed
	if win.FramesShown()+src.FramesLost() != 60 {
		t.Errorf("frames shown %d + sacrificed %d != 60", win.FramesShown(), src.FramesLost())
	}
	if src.Retries() == 0 {
		t.Error("no retries; faults were not injected")
	}

	// Recovery rebuilds the objects from the WAL and re-attaches media
	// from the surviving segments; the stored clip replays in full.
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := db.SelectOne(`select SimpleNewscast where title = "60 Minutes"`)
	if err != nil {
		t.Fatal(err)
	}
	if got != oid {
		t.Errorf("recovered oid = %v, want %v", got, oid)
	}
	sess2, src2, win2 := faultedStream(t, db, oid)
	defer sess2.Close()
	pb2, err := sess2.Start()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pb2.Wait(); err != nil {
		t.Fatalf("post-recovery playback died: %v", err)
	}
	if win2.FramesShown()+src2.FramesLost() != 60 {
		t.Errorf("post-recovery frames shown %d + sacrificed %d != 60",
			win2.FramesShown(), src2.FramesLost())
	}
}

func TestStopAndCloseIdempotentConcurrent(t *testing.T) {
	db := testDB(t)
	oid := storeNewscast(t, db, "60 Minutes", 5000)
	sess, _, _ := faultedStream(t, db, oid)

	pb, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Stop and Close racing from many goroutines must be safe, and every
	// call after the first a no-op.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pb.Stop()
			sess.Close()
		}()
	}
	wg.Wait()
	if _, err := pb.Wait(); err != nil {
		t.Errorf("stopped stream reported error: %v", err)
	}
	// Still idempotent after completion.
	pb.Stop()
	sess.Close()
	// A closed session rejects new work with the sentinel.
	if _, err := sess.Start(); err == nil {
		t.Error("closed session started a stream")
	}
}
