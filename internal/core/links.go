package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"avdb/internal/schema"
	"avdb/internal/txn"
)

// Link is a hypermedia link between two stored objects — Scenario I's
// interface "which links, for example, the documents describing a project
// to the video of a presentation by the project leader."
type Link struct {
	From, To schema.OID
	Label    string
}

// String formats the link.
func (l Link) String() string {
	return fmt.Sprintf("%v -[%s]-> %v", l.From, l.Label, l.To)
}

// linkStore indexes links in both directions.
type linkStore struct {
	mu      sync.RWMutex
	forward map[schema.OID][]Link
	back    map[schema.OID][]Link
}

func newLinkStore() *linkStore {
	return &linkStore{forward: make(map[schema.OID][]Link), back: make(map[schema.OID][]Link)}
}

func (ls *linkStore) add(l Link) bool {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	for _, e := range ls.forward[l.From] {
		if e == l {
			return false
		}
	}
	ls.forward[l.From] = append(ls.forward[l.From], l)
	ls.back[l.To] = append(ls.back[l.To], l)
	return true
}

func (ls *linkStore) remove(l Link) bool {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	removed := false
	ls.forward[l.From], removed = drop(ls.forward[l.From], l)
	if removed {
		ls.back[l.To], _ = drop(ls.back[l.To], l)
	}
	return removed
}

func drop(s []Link, l Link) ([]Link, bool) {
	for i, e := range s {
		if e == l {
			return append(s[:i], s[i+1:]...), true
		}
	}
	return s, false
}

func (ls *linkStore) from(oid schema.OID) []Link {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	out := append([]Link(nil), ls.forward[oid]...)
	sortLinks(out)
	return out
}

func (ls *linkStore) to(oid schema.OID) []Link {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	out := append([]Link(nil), ls.back[oid]...)
	sortLinks(out)
	return out
}

func sortLinks(ls []Link) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].To != ls[j].To {
			return ls[i].To < ls[j].To
		}
		return ls[i].Label < ls[j].Label
	})
}

// AddLink records a durable hypermedia link between two live objects.
// Adding the same link twice is a no-op.
func (db *Database) AddLink(from, to schema.OID, label string) error {
	if label == "" || strings.Contains(label, "/") {
		return fmt.Errorf("core: link label must be non-empty and slash-free, got %q", label)
	}
	if _, ok := db.objects.Get(from); !ok {
		return fmt.Errorf("%w: %v", ErrNoObject, from)
	}
	if _, ok := db.objects.Get(to); !ok {
		return fmt.Errorf("%w: %v", ErrNoObject, to)
	}
	l := Link{From: from, To: to, Label: label}
	if !db.links.add(l) {
		return nil
	}
	tx := db.txns.Begin()
	defer tx.Abort()
	if err := db.kv.Put(tx, linkKey(l), []byte{1}); err != nil {
		return err
	}
	db.kv.Commit(tx)
	return tx.Commit()
}

// RemoveLink deletes a link; removing a missing link is an error.
func (db *Database) RemoveLink(from, to schema.OID, label string) error {
	l := Link{From: from, To: to, Label: label}
	if !db.links.remove(l) {
		return fmt.Errorf("core: no link %v", l)
	}
	tx := db.txns.Begin()
	defer tx.Abort()
	if err := db.kv.Put(tx, linkKey(l), nil); err != nil {
		return err
	}
	db.kv.Commit(tx)
	return tx.Commit()
}

// Links returns the outgoing links of an object, sorted.
func (db *Database) Links(from schema.OID) []Link { return db.links.from(from) }

// Backlinks returns the links pointing at an object, sorted.
func (db *Database) Backlinks(to schema.OID) []Link { return db.links.to(to) }

func linkKey(l Link) string {
	return fmt.Sprintf("link/%d/%d/%s", uint64(l.From), uint64(l.To), l.Label)
}

// recoverLinks rebuilds the link store from the recovered WAL state.
func (db *Database) recoverLinks(records []txn.Record) error {
	db.links = newLinkStore()
	seen := make(map[string]bool)
	for _, rec := range records {
		if !strings.HasPrefix(rec.Key, "link/") || seen[rec.Key] {
			continue
		}
		seen[rec.Key] = true
		if _, live := db.kv.Get(rec.Key); !live {
			continue
		}
		parts := strings.SplitN(strings.TrimPrefix(rec.Key, "link/"), "/", 3)
		if len(parts) != 3 {
			return fmt.Errorf("core: malformed link key %q", rec.Key)
		}
		from, err := parseOID(parts[0])
		if err != nil {
			return err
		}
		to, err := parseOID(parts[1])
		if err != nil {
			return err
		}
		db.links.add(Link{From: from, To: to, Label: parts[2]})
	}
	return nil
}
