package core

import (
	"testing"

	"avdb/internal/media"
	"avdb/internal/schema"
)

func TestHypermediaLinks(t *testing.T) {
	db := testDB(t)
	video := storeNewscast(t, db, "60 Minutes", 2)
	doc, err := db.NewObject("MediaObject")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(doc.OID(), "title", schema.String("Project X design doc")); err != nil {
		t.Fatal(err)
	}

	if err := db.AddLink(doc.OID(), video, "presentation"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddLink(doc.OID(), video, "presentation"); err != nil {
		t.Errorf("re-adding a link should be a no-op: %v", err)
	}
	if err := db.AddLink(doc.OID(), video, "demo"); err != nil {
		t.Fatal(err)
	}

	out := db.Links(doc.OID())
	if len(out) != 2 || out[0].Label != "demo" || out[1].Label != "presentation" {
		t.Errorf("Links = %v", out)
	}
	back := db.Backlinks(video)
	if len(back) != 2 || back[0].From != doc.OID() {
		t.Errorf("Backlinks = %v", back)
	}
	if db.Links(video) != nil {
		t.Error("video has no outgoing links")
	}
	if out[0].String() == "" {
		t.Error("empty String")
	}

	// Validation.
	if err := db.AddLink(9999, video, "x"); err == nil {
		t.Error("link from missing object accepted")
	}
	if err := db.AddLink(doc.OID(), 9999, "x"); err == nil {
		t.Error("link to missing object accepted")
	}
	if err := db.AddLink(doc.OID(), video, ""); err == nil {
		t.Error("empty label accepted")
	}
	if err := db.AddLink(doc.OID(), video, "a/b"); err == nil {
		t.Error("slash label accepted")
	}

	// Removal.
	if err := db.RemoveLink(doc.OID(), video, "demo"); err != nil {
		t.Fatal(err)
	}
	if err := db.RemoveLink(doc.OID(), video, "demo"); err == nil {
		t.Error("double remove accepted")
	}
	if got := db.Links(doc.OID()); len(got) != 1 {
		t.Errorf("after remove: %v", got)
	}
}

func TestLinksSurviveCrash(t *testing.T) {
	db := testDB(t)
	video := storeNewscast(t, db, "60 Minutes", 2)
	doc, err := db.NewObject("MediaObject")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(doc.OID(), "title", schema.String("doc")); err != nil {
		t.Fatal(err)
	}
	if err := db.AddLink(doc.OID(), video, "presentation"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddLink(doc.OID(), video, "deleted-later"); err != nil {
		t.Fatal(err)
	}
	if err := db.RemoveLink(doc.OID(), video, "deleted-later"); err != nil {
		t.Fatal(err)
	}

	db.Crash()
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	out := db.Links(doc.OID())
	if len(out) != 1 || out[0].Label != "presentation" || out[0].To != video {
		t.Errorf("links after recovery = %v", out)
	}
	if back := db.Backlinks(video); len(back) != 1 {
		t.Errorf("backlinks after recovery = %v", back)
	}
}

func TestRetrieveAtQualityTemporalScaling(t *testing.T) {
	clip := testClip(60) // 2s at 30fps
	// Raw value, lower frame rate requested: frames are dropped.
	lowFPS := media.VideoQuality{Width: 32, Height: 24, Depth: 8, FPS: 15}
	v, info, err := RetrieveAtQuality(clip, lowFPS)
	if err != nil {
		t.Fatal(err)
	}
	if info.Method != "frame-drop" {
		t.Errorf("method = %s", info.Method)
	}
	if v.NumElements() != 30 {
		t.Errorf("frames = %d, want 30", v.NumElements())
	}
	// Scalable value, lower resolution AND rate: layers and frames drop.
	enc, err := importScalable(clip)
	if err != nil {
		t.Fatal(err)
	}
	both := media.VideoQuality{Width: 16, Height: 12, Depth: 8, FPS: 10}
	v2, info2, err := RetrieveAtQuality(enc, both)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Method != "layer-drop" {
		t.Errorf("method = %s", info2.Method)
	}
	if v2.NumElements() != 20 {
		t.Errorf("frames = %d, want 20", v2.NumElements())
	}
	if v2.Duration() != enc.Duration() {
		t.Errorf("duration changed: %v -> %v", enc.Duration(), v2.Duration())
	}
}

func importScalable(clip *media.VideoValue) (media.Value, error) {
	db, err := Open(Config{})
	if err != nil {
		return nil, err
	}
	return db.ImportVideo(clip, RepresentationHints{Scalable: true})
}
