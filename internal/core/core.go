// Package core is the AV database system itself — the paper's primary
// contribution assembled over the substrate packages.  A Database is "a
// software/hardware entity managing a collection of AV values and AV
// activities" (§3.1): it holds the class catalog and object store,
// answers queries with references, places media values on platform
// devices, grants resources through admission control, arbitrates
// exclusive hardware, keeps scalar state recoverable through a WAL, and
// gives clients the asynchronous, stream-based session interface of §3.3.
package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
	"avdb/internal/netsim"
	"avdb/internal/obs"
	"avdb/internal/query"
	"avdb/internal/sched"
	"avdb/internal/schema"
	"avdb/internal/storage"
	"avdb/internal/txn"
)

// Sentinel errors for the core layer.  Lower layers wrap their own
// (device.ErrDeviceFailed, netsim.ErrLinkDown, storage.ErrNoPlacement,
// …); everything composes with errors.Is through %w chains.
var (
	// ErrNoObject is wrapped by operations on unknown object references.
	ErrNoObject = fmt.Errorf("core: no such object")
	// ErrNoClass is wrapped by operations naming an undefined class.
	ErrNoClass = fmt.Errorf("core: no such class")
	// ErrSessionClosed is wrapped by operations on a closed session.
	ErrSessionClosed = fmt.Errorf("core: session closed")
	// ErrOverloaded is wrapped by Session.Start while the engine's
	// overload detector reads Overloaded: admitting another stream into
	// a thrashing schedule would make every session miss.  The concrete
	// error is an *OverloadError carrying a virtual-time retry hint.
	ErrOverloaded = fmt.Errorf("core: engine overloaded")
)

// OverloadError is the shed response to Session.Start under overload.
// RetryAfter is the virtual time at which the engine suggests retrying —
// the paper's "if insufficient resources were available this statement
// would fail" (§3.3), failing fast with a schedule hint instead of
// thrashing the sessions already admitted.
type OverloadError struct {
	RetryAfter avtime.WorldTime
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("core: engine overloaded, retry at %v", e.RetryAfter)
}

// Unwrap ties the concrete error to the ErrOverloaded sentinel.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// Config parameterizes a database instance.
type Config struct {
	Name string
	// Resources is the admission-control budget for database-side
	// activities and streams.
	Resources sched.Resources
	// Workers bounds the wavefront executor for sessions on this
	// database: activities in the same dependency level of a graph tick
	// concurrently on up to this many lanes.  Zero means GOMAXPROCS;
	// one forces serial execution.  Sessions may override per stream
	// with Session.SetWorkers.
	Workers int
	// EngineWorkers bounds the engine's session-stepping pool: runs due
	// on the same step are partitioned into shards and ticked on up to
	// this many goroutines, with results merged in admission order at
	// the commit barrier so any value produces byte-identical output.
	// Zero or one keeps the engine serial.  See also Engine.SetWorkers.
	EngineWorkers int
	// Cache configures per-stream chunk caching and lookahead
	// prefetching in the media store; the zero value disables it.
	Cache storage.CachePolicy
	// Striping configures striped placement and round-based SCAN-EDF
	// disk scheduling in the media store: Width > 1 stripes automatic
	// placements over that many disks, Seeks prices every demand chunk
	// read with a positioning cost, Rounds batches co-admitted streams'
	// chunk requests into per-disk service rounds.  The zero value
	// changes nothing.  Sessions may override per stream with
	// Session.SetStriping.
	Striping storage.StripePolicy
	// Tiering configures the storage hierarchy: popularity-driven
	// promotion of jukebox values to the disk tier, demotion sweeps, and
	// hot-clip replication across stripe groups.  The zero value
	// disables it.  Sessions may opt out with Session.SetTiered(false).
	Tiering storage.TierPolicy
	// Priority is the default service class for sessions this database
	// opens; individual sessions may override with Session.SetPriority.
	// The zero value is sched.PriorityNormal.  Priority orders the
	// engine's overload response: under pressure, lower-priority
	// sessions are degraded first and restored last.
	Priority sched.Priority
}

// Database is one AV database instance.
type Database struct {
	name string

	schema    *schema.Schema
	objects   *schema.Store
	engine    *query.Engine
	mediaSt   *storage.Store
	devices   *device.Manager
	network   *netsim.Network
	txns      *txn.Manager
	versions  *txn.VersionStore
	admission *sched.Admission
	kv        *txn.KV
	clock     *sched.VirtualClock
	links     *linkStore
	runEngine *Engine // the one run loop advancing the shared clock

	workers  int            // executor lanes for sessions; 0 = GOMAXPROCS
	priority sched.Priority // default service class for new sessions

	mu          sync.Mutex
	nextSession int
	segments    map[string]storage.SegID // "oid/attr[/track]" -> segment
	obsC        *obs.Collector
}

// Workers reports the database-wide executor lane bound.
func (db *Database) Workers() int { return db.workers }

// Open creates a database.  Devices and network links are registered
// afterwards through Devices() and Network().  It fails on an invalid
// configuration, such as a negative resource budget.
func Open(cfg Config) (*Database, error) {
	if cfg.Name == "" {
		cfg.Name = "avdb"
	}
	admission, err := sched.NewAdmission(cfg.Resources)
	if err != nil {
		return nil, fmt.Errorf("core: opening %q: %w", cfg.Name, err)
	}
	devices := device.NewManager()
	db := &Database{
		name:      cfg.Name,
		schema:    schema.NewSchema(),
		objects:   schema.NewStore(),
		devices:   devices,
		mediaSt:   storage.NewStore(devices),
		network:   netsim.NewNetwork(),
		txns:      txn.NewManager(),
		versions:  txn.NewVersionStore(),
		admission: admission,
		kv:        txn.NewKV(),
		clock:     sched.NewVirtualClock(0),
		links:     newLinkStore(),
		segments:  make(map[string]storage.SegID),
		workers:   cfg.Workers,
		priority:  cfg.Priority,
	}
	db.mediaSt.SetCachePolicy(cfg.Cache)
	db.mediaSt.SetStriping(cfg.Striping)
	db.mediaSt.SetTierPolicy(cfg.Tiering)
	db.engine = query.NewEngine(db.schema, db.objects)
	db.runEngine = newEngine(db)
	db.runEngine.SetWorkers(cfg.EngineWorkers)
	return db, nil
}

// Engine returns the database's multi-session stream engine: the single
// run loop every started playback is scheduled on.
func (db *Database) Engine() *Engine { return db.runEngine }

// MediaIOStats returns the media store's cumulative disk-scheduling
// counters: rounds flushed, seeks charged and saved, deadline misses.
func (db *Database) MediaIOStats() storage.IOStats { return db.mediaSt.IOStats() }

// Name returns the database's name.
func (db *Database) Name() string { return db.name }

// EnableObservability installs a collector across the database's
// instrumentation points — admission control, the media store, the
// device manager, and every network link registered so far — and
// returns it.  Sessions opened afterwards trace their playbacks into
// it.  Calling it again returns the same collector (links registered in
// between are picked up).
func (db *Database) EnableObservability() *obs.Collector {
	db.mu.Lock()
	if db.obsC == nil {
		db.obsC = obs.NewCollector()
	}
	c := db.obsC
	db.mu.Unlock()
	db.admission.SetSink(c)
	db.mediaSt.SetSink(c)
	db.devices.SetSink(c)
	for _, id := range db.network.Links() {
		if l, ok := db.network.Link(id); ok {
			l.SetSink(c)
		}
	}
	return c
}

// Obs returns the installed collector, or nil when observability was
// never enabled.
func (db *Database) Obs() *obs.Collector {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.obsC
}

// sink returns the collector as a Sink, or a nil interface when
// observability is off (never a non-nil interface holding a nil
// pointer, which instrumentation nil checks would mistake for live).
func (db *Database) sink() obs.Sink {
	if c := db.Obs(); c != nil {
		return c
	}
	return nil
}

// Devices returns the platform device manager.
func (db *Database) Devices() *device.Manager { return db.devices }

// Network returns the client network.
func (db *Database) Network() *netsim.Network { return db.network }

// Storage returns the media store.
func (db *Database) Storage() *storage.Store { return db.mediaSt }

// Admission returns the database's resource authority.
func (db *Database) Admission() *sched.Admission { return db.admission }

// Versions returns the media version store.
func (db *Database) Versions() *txn.VersionStore { return db.versions }

// Clock returns the database's presentation clock.
func (db *Database) Clock() *sched.VirtualClock { return db.clock }

// Schema returns the class catalog.
func (db *Database) Schema() *schema.Schema { return db.schema }

// DefineClass registers a class.
func (db *Database) DefineClass(name, super string, attrs []schema.AttrDef) (*schema.Class, error) {
	return db.schema.Define(name, super, attrs)
}

// CreateIndex builds an attribute index used by the query planner.
func (db *Database) CreateIndex(className, attr string, kind query.IndexKind) error {
	_, err := db.engine.CreateIndex(className, attr, kind)
	return err
}

// NewObject creates an instance of the class under a short auto-commit
// transaction.
func (db *Database) NewObject(className string) (*schema.Object, error) {
	c, ok := db.schema.Class(className)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoClass, className)
	}
	tx := db.txns.Begin()
	defer tx.Abort()
	if err := tx.LockClass(className, txn.ModeIX); err != nil {
		return nil, err
	}
	o := db.objects.NewObject(c)
	if err := db.kv.Put(tx, metaKey(o.OID()), []byte(className)); err != nil {
		return nil, err
	}
	db.kv.Commit(tx)
	return o, tx.Commit()
}

// SetAttr assigns an attribute under a short auto-commit transaction,
// maintaining indexes and, for scalar attributes, durability.
func (db *Database) SetAttr(oid schema.OID, attr string, d schema.Datum) error {
	o, ok := db.objects.Get(oid)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoObject, oid)
	}
	tx := db.txns.Begin()
	defer tx.Abort()
	if err := tx.LockObject(o.Class().Name(), oid, txn.ModeX); err != nil {
		return err
	}
	var old *schema.Datum
	if prev, had := o.Get(attr); had {
		old = &prev
	}
	if err := o.Set(attr, d); err != nil {
		return err
	}
	db.engine.OnSet(o, attr, old, d)
	if isScalar(d.Kind()) {
		enc, err := encodeDatum(d)
		if err != nil {
			return err
		}
		if err := db.kv.Put(tx, attrKey(oid, attr), enc); err != nil {
			return err
		}
	}
	db.kv.Commit(tx)
	return tx.Commit()
}

// GetAttr reads an attribute under a short shared-lock transaction.
func (db *Database) GetAttr(oid schema.OID, attr string) (schema.Datum, error) {
	o, ok := db.objects.Get(oid)
	if !ok {
		return schema.Datum{}, fmt.Errorf("%w: %v", ErrNoObject, oid)
	}
	tx := db.txns.Begin()
	defer tx.Abort()
	if err := tx.LockObject(o.Class().Name(), oid, txn.ModeS); err != nil {
		return schema.Datum{}, err
	}
	d, had := o.Get(attr)
	if !had {
		return schema.Datum{}, fmt.Errorf("core: %v has no value for %q", oid, attr)
	}
	if err := tx.Commit(); err != nil {
		return schema.Datum{}, err
	}
	return d, nil
}

// DeleteObject removes an object, its index entries and its durable
// scalar state.
func (db *Database) DeleteObject(oid schema.OID) error {
	o, ok := db.objects.Get(oid)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoObject, oid)
	}
	tx := db.txns.Begin()
	defer tx.Abort()
	if err := tx.LockObject(o.Class().Name(), oid, txn.ModeX); err != nil {
		return err
	}
	db.engine.OnDelete(o)
	if err := db.objects.Delete(oid); err != nil {
		return err
	}
	if err := db.kv.Put(tx, metaKey(oid), nil); err != nil {
		return err
	}
	for _, attr := range o.Fields() {
		if d, had := o.Get(attr); had && isScalar(d.Kind()) {
			if err := db.kv.Put(tx, attrKey(oid, attr), nil); err != nil {
				return err
			}
		}
	}
	db.kv.Commit(tx)
	return tx.Commit()
}

// Select parses and runs a query, returning references: "queries may
// return references to AV values rather than the values themselves."
func (db *Database) Select(src string) ([]schema.OID, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	tx := db.txns.Begin()
	defer tx.Abort()
	if err := tx.LockClass(q.ClassName, txn.ModeS); err != nil {
		return nil, err
	}
	oids, err := db.engine.Run(q)
	if err != nil {
		return nil, err
	}
	return oids, tx.Commit()
}

// SelectOne runs a query expected to match exactly one object.
func (db *Database) SelectOne(src string) (schema.OID, error) {
	oids, err := db.Select(src)
	if err != nil {
		return 0, err
	}
	if len(oids) != 1 {
		return 0, fmt.Errorf("core: query matched %d objects, want 1", len(oids))
	}
	return oids[0], nil
}

// Object returns the live object for a reference.
func (db *Database) Object(oid schema.OID) (*schema.Object, bool) {
	return db.objects.Get(oid)
}

// PlaceMedia stores a media attribute's value on a device and remembers
// the placement.  deviceID may be empty to let the store choose a disk
// that can sustain rate.
func (db *Database) PlaceMedia(oid schema.OID, attr string, deviceID string, rate media.DataRate) (*storage.Segment, error) {
	d, err := db.GetAttr(oid, attr)
	if err != nil {
		return nil, err
	}
	if d.Kind() != schema.KindMedia {
		return nil, fmt.Errorf("core: %v.%s is %v, not media", oid, attr, d.Kind())
	}
	var seg *storage.Segment
	if deviceID == "" {
		if w := db.mediaSt.Striping().Width; w > 1 {
			seg, err = db.mediaSt.PlaceStriped(d.MediaVal(), rate, w)
		} else {
			seg, err = db.mediaSt.PlaceAuto(d.MediaVal(), rate)
		}
	} else {
		seg, err = db.mediaSt.Place(d.MediaVal(), deviceID)
	}
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.segments[placementKey(oid, attr, "")] = seg.ID()
	db.mu.Unlock()
	return seg, nil
}

// PlaceMediaStriped stores a media attribute's value striped round-robin
// over width disks (chosen load-aware) and remembers the placement.
// Streams bound to it later reserve a 1/width share of their rate on
// every stripe disk, multiplying the bandwidth one stream can draw.
func (db *Database) PlaceMediaStriped(oid schema.OID, attr string, rate media.DataRate, width int) (*storage.Segment, error) {
	d, err := db.GetAttr(oid, attr)
	if err != nil {
		return nil, err
	}
	if d.Kind() != schema.KindMedia {
		return nil, fmt.Errorf("core: %v.%s is %v, not media", oid, attr, d.Kind())
	}
	seg, err := db.mediaSt.PlaceStriped(d.MediaVal(), rate, width)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.segments[placementKey(oid, attr, "")] = seg.ID()
	db.mu.Unlock()
	return seg, nil
}

// PlaceMediaOnDisc stores a media attribute's value on one disc of a
// videodisc jukebox — the analog bulk tier ("an analog videodisc jukebox
// provides a video storage capacity difficult to achieve using magnetic
// disks", §3.3).
func (db *Database) PlaceMediaOnDisc(oid schema.OID, attr, deviceID string, disc int) (*storage.Segment, error) {
	d, err := db.GetAttr(oid, attr)
	if err != nil {
		return nil, err
	}
	if d.Kind() != schema.KindMedia {
		return nil, fmt.Errorf("core: %v.%s is %v, not media", oid, attr, d.Kind())
	}
	seg, err := db.mediaSt.PlaceOnDisc(d.MediaVal(), deviceID, disc)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.segments[placementKey(oid, attr, "")] = seg.ID()
	db.mu.Unlock()
	return seg, nil
}

// PlaceTrack places one track of a tcomp attribute.
func (db *Database) PlaceTrack(oid schema.OID, attr, track, deviceID string, rate media.DataRate) (*storage.Segment, error) {
	d, err := db.GetAttr(oid, attr)
	if err != nil {
		return nil, err
	}
	if d.Kind() != schema.KindTComp {
		return nil, fmt.Errorf("core: %v.%s is %v, not a tcomp", oid, attr, d.Kind())
	}
	tr, ok := d.TCompVal().Track(track)
	if !ok {
		return nil, fmt.Errorf("core: %v.%s has no track %q", oid, attr, track)
	}
	var seg *storage.Segment
	if deviceID == "" {
		seg, err = db.mediaSt.PlaceAuto(tr.Value, rate)
	} else {
		seg, err = db.mediaSt.Place(tr.Value, deviceID)
	}
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.segments[placementKey(oid, attr, track)] = seg.ID()
	db.mu.Unlock()
	return seg, nil
}

// Placement reports where a media attribute (or track) is stored.
func (db *Database) Placement(oid schema.OID, attr, track string) (*storage.Segment, bool) {
	db.mu.Lock()
	id, ok := db.segments[placementKey(oid, attr, track)]
	db.mu.Unlock()
	if !ok {
		return nil, false
	}
	return db.mediaSt.Get(id)
}

// Crash simulates loss of the database's volatile state: objects, index
// structures and the volatile store vanish; the WAL and the media
// segments on devices survive.
func (db *Database) Crash() {
	db.kv.Crash()
	db.objects = schema.NewStore()
	db.engine = query.NewEngine(db.schema, db.objects)
}

// Recover rebuilds the scalar object state from the WAL.  Media
// attributes are re-attached from their surviving segments.  Attribute
// indexes are volatile structures: recreate them with CreateIndex after
// recovery (they rebuild from the recovered extent).
func (db *Database) Recover() error {
	db.kv.Recover()
	// Pass 1: recreate objects.
	type pending struct {
		oid   schema.OID
		class *schema.Class
	}
	var objs []pending
	attrs := make(map[schema.OID][]string)
	for _, rec := range db.kv.WAL().Records() {
		key := rec.Key
		switch {
		case strings.HasPrefix(key, "objmeta/"):
			oid, err := parseOID(strings.TrimPrefix(key, "objmeta/"))
			if err != nil {
				return err
			}
			val, live := db.kv.Get(key)
			if !live {
				continue // deleted object
			}
			c, ok := db.schema.Class(string(val))
			if !ok {
				return fmt.Errorf("core: recovery found unknown class %q", val)
			}
			objs = append(objs, pending{oid, c})
		case strings.HasPrefix(key, "attr/"):
			rest := strings.TrimPrefix(key, "attr/")
			slash := strings.IndexByte(rest, '/')
			if slash < 0 {
				return fmt.Errorf("core: malformed attribute key %q", key)
			}
			oid, err := parseOID(rest[:slash])
			if err != nil {
				return err
			}
			attrs[oid] = append(attrs[oid], rest[slash+1:])
		}
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].oid < objs[j].oid })
	restored := make(map[schema.OID]*schema.Object)
	for _, p := range objs {
		if _, dup := restored[p.oid]; dup {
			continue
		}
		o, err := db.objects.RestoreObject(p.class, p.oid)
		if err != nil {
			return err
		}
		restored[p.oid] = o
	}
	// Pass 2: restore committed scalar attributes.
	for oid, names := range attrs {
		o, ok := restored[oid]
		if !ok {
			continue
		}
		seen := make(map[string]bool)
		for _, attr := range names {
			if seen[attr] {
				continue
			}
			seen[attr] = true
			enc, live := db.kv.Get(attrKey(oid, attr))
			if !live {
				continue
			}
			d, err := decodeDatum(enc)
			if err != nil {
				return fmt.Errorf("core: recovering %v.%s: %w", oid, attr, err)
			}
			if err := o.Set(attr, d); err != nil {
				return fmt.Errorf("core: recovering %v.%s: %w", oid, attr, err)
			}
		}
	}
	if err := db.recoverLinks(db.kv.WAL().Records()); err != nil {
		return err
	}
	// Pass 3: re-attach surviving media segments.
	db.mu.Lock()
	placements := make(map[string]storage.SegID, len(db.segments))
	for k, v := range db.segments {
		placements[k] = v
	}
	db.mu.Unlock()
	for key, segID := range placements {
		seg, ok := db.mediaSt.Get(segID)
		if !ok {
			continue
		}
		oid, attr, track, err := parsePlacementKey(key)
		if err != nil {
			return err
		}
		o, ok := restored[oid]
		if !ok {
			continue
		}
		if track == "" {
			if err := o.Set(attr, schema.Media(seg.Value())); err != nil {
				return fmt.Errorf("core: re-attaching %v.%s: %w", oid, attr, err)
			}
		}
		// Tracks of tcomp attributes are re-attached by the application
		// rebuilding the composite; scalar state and segments survive.
	}
	return nil
}

func isScalar(k schema.AttrKind) bool {
	switch k {
	case schema.KindString, schema.KindInt, schema.KindFloat, schema.KindBool, schema.KindDate:
		return true
	}
	return false
}

func metaKey(oid schema.OID) string { return "objmeta/" + strconv.FormatUint(uint64(oid), 10) }

func attrKey(oid schema.OID, attr string) string {
	return "attr/" + strconv.FormatUint(uint64(oid), 10) + "/" + attr
}

func placementKey(oid schema.OID, attr, track string) string {
	k := strconv.FormatUint(uint64(oid), 10) + "/" + attr
	if track != "" {
		k += "/" + track
	}
	return k
}

func parsePlacementKey(key string) (schema.OID, string, string, error) {
	parts := strings.SplitN(key, "/", 3)
	if len(parts) < 2 {
		return 0, "", "", fmt.Errorf("core: malformed placement key %q", key)
	}
	oid, err := parseOID(parts[0])
	if err != nil {
		return 0, "", "", err
	}
	track := ""
	if len(parts) == 3 {
		track = parts[2]
	}
	return oid, parts[1], track, nil
}

func parseOID(s string) (schema.OID, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("core: malformed OID %q", s)
	}
	return schema.OID(v), nil
}

// walDatum is the gob envelope for scalar datum persistence.
type walDatum struct {
	Kind schema.AttrKind
	Str  string
	Int  int64
	Flt  float64
	Bool bool
	Time time.Time
}

func encodeDatum(d schema.Datum) ([]byte, error) {
	wd := walDatum{Kind: d.Kind(), Str: d.Str(), Int: d.IntVal(), Flt: d.FloatVal(), Bool: d.BoolVal(), Time: d.DateVal()}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wd); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeDatum(b []byte) (schema.Datum, error) {
	var wd walDatum
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&wd); err != nil {
		return schema.Datum{}, err
	}
	switch wd.Kind {
	case schema.KindString:
		return schema.String(wd.Str), nil
	case schema.KindInt:
		return schema.Int(wd.Int), nil
	case schema.KindFloat:
		return schema.Float(wd.Flt), nil
	case schema.KindBool:
		return schema.Bool(wd.Bool), nil
	case schema.KindDate:
		return schema.Date(wd.Time), nil
	}
	return schema.Datum{}, fmt.Errorf("core: cannot decode datum kind %v", wd.Kind)
}

// ResourcesForVideo estimates the admission-control bundle a video stream
// of the given quality needs: one staging buffer, CPU and bus budget at
// the stream's data rate.
func ResourcesForVideo(q media.VideoQuality) sched.Resources {
	r := q.DataRate()
	return sched.Resources{Buffers: 1, CPU: r, Bus: r}
}

// ResourcesForAudio estimates the bundle for an audio stream.
func ResourcesForAudio(q media.AudioQuality) sched.Resources {
	r := q.DataRate()
	return sched.Resources{Buffers: 1, CPU: r, Bus: r}
}
