package core

import (
	"fmt"
	"sort"

	"avdb/internal/media"
	"avdb/internal/schema"
)

// SimilarityMatch is one result of a query-by-pictorial-example.
type SimilarityMatch struct {
	OID      schema.OID
	Distance float64 // L1 signature distance, ascending is more similar
}

// FindSimilar performs restricted content-based retrieval in the style of
// REDI's Query-by-Pictorial-Example (§2): it ranks the class's instances
// by the similarity of their video or image attribute to the example
// frame and returns the closest limit matches.  Objects without the
// attribute, or whose attribute is not raster-addressable (encoded
// values), are skipped — content retrieval operates on the database's
// extracted features, not on encoded payloads.
func (db *Database) FindSimilar(className, attr string, example *media.Frame, limit int) ([]SimilarityMatch, error) {
	if example == nil {
		return nil, fmt.Errorf("core: FindSimilar needs an example frame")
	}
	if limit <= 0 {
		return nil, fmt.Errorf("core: FindSimilar needs a positive limit")
	}
	c, ok := db.schema.Class(className)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoClass, className)
	}
	def, ok := c.Attr(attr)
	if !ok {
		return nil, fmt.Errorf("core: class %s has no attribute %q", className, attr)
	}
	if def.Kind != schema.KindMedia || (def.MediaKind != media.KindVideo && def.MediaKind != media.KindImage) {
		return nil, fmt.Errorf("core: attribute %q is not a video or image attribute", attr)
	}
	want := media.SignatureOf(example)

	var out []SimilarityMatch
	for _, oid := range db.objects.OfClass(c, true) {
		o, ok := db.objects.Get(oid)
		if !ok {
			continue
		}
		d, ok := o.Get(attr)
		if !ok {
			continue
		}
		var sig media.Signature
		switch v := d.MediaVal().(type) {
		case *media.VideoValue:
			s, err := media.VideoSignature(v, 8)
			if err != nil {
				continue
			}
			sig = s
		case *media.ImageValue:
			sig = media.SignatureOf(v.Image())
		default:
			continue
		}
		out = append(out, SimilarityMatch{OID: oid, Distance: want.Distance(sig)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].OID < out[j].OID
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}
