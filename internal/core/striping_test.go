package core

import (
	"testing"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
	"avdb/internal/sched"
	"avdb/internal/schema"
	"avdb/internal/storage"
)

// TestConfigStripingReachesStore pins the Config -> store plumbing: the
// policy set at Open governs automatic placement.
func TestConfigStripingReachesStore(t *testing.T) {
	db, err := Open(Config{
		Name:      "striped",
		Resources: sched.Resources{Buffers: 64, CPU: 100 * media.MBPerSecond, Bus: 100 * media.MBPerSecond},
		Striping:  storage.StripePolicy{Width: 2, Seeks: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.mediaSt.Striping(); got.Width != 2 || !got.Seeks {
		t.Fatalf("store policy = %+v, want Width 2 + Seeks", got)
	}
	for _, id := range []string{"disk0", "disk1"} {
		if err := db.Devices().Register(device.NewDisk(id, 100_000_000, 20*media.MBPerSecond, 10*avtime.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.DefineClass("MediaObject", "", []schema.AttrDef{
		{Name: "videoTrack", Kind: schema.KindMedia, MediaKind: media.KindVideo},
	}); err != nil {
		t.Fatal(err)
	}
	o, err := db.NewObject("MediaObject")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(o.OID(), "videoTrack", schema.Media(testClip(10))); err != nil {
		t.Fatal(err)
	}
	// An automatic placement under Width 2 stripes over both disks.
	seg, err := db.PlaceMedia(o.OID(), "videoTrack", "", media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	if !seg.Striped() || len(seg.Stripe()) != 2 {
		t.Errorf("auto placement under Width 2 gave %v", seg)
	}
}

// TestSessionStripedPlayback runs §4.3's program over a striped
// placement with SCAN-EDF rounds: PlaceMediaStriped, InstallStriped,
// bind, play, and verify the round scheduler carried the reads and the
// stripe reservations settle at close.
func TestSessionStripedPlayback(t *testing.T) {
	db := testDB(t)
	o, err := db.NewObject("SimpleNewscast")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(o.OID(), "videoTrack", schema.Media(testClip(40))); err != nil {
		t.Fatal(err)
	}
	seg, err := db.PlaceMediaStriped(o.OID(), "videoTrack", media.MBPerSecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Stripe()) != 2 {
		t.Fatalf("striped placement spans %v", seg.Stripe())
	}

	sess, err := db.Connect("striped-app", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	sess.SetStriping(storage.StripePolicy{Seeks: true, Rounds: true})
	q, _ := media.ParseVideoQuality(testQualityStr)
	reader, err := activities.NewVideoReader("dbSource", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.InstallStriped(reader, ResourcesForVideo(q), 2); err != nil {
		t.Fatal(err)
	}
	win := activities.NewVideoWindow("appSink", activity.AtApplication, q, 50*avtime.Millisecond)
	if err := sess.Install(win, sched.Resources{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Connect(reader, "out", win, "in", q.DataRate()); err != nil {
		t.Fatal(err)
	}
	if err := sess.BindValue(o.OID(), "videoTrack", reader, "out", media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	// The bound stream reserved a half-rate share on each stripe disk.
	for _, id := range seg.Stripe() {
		d, _ := db.Devices().Get(id)
		if got := d.(*device.Disk).ReservedBandwidth(); got != media.MBPerSecond/2 {
			t.Errorf("disk %s reserves %v, want %v", id, got, media.MBPerSecond/2)
		}
	}
	pb, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pb.Wait(); err != nil {
		t.Fatal(err)
	}
	if win.FramesShown() != 40 {
		t.Errorf("displayed %d frames, want 40", win.FramesShown())
	}
	io := db.mediaSt.IOStats()
	if io.Scheduled == 0 || io.Rounds == 0 {
		t.Errorf("round scheduler idle during striped playback: %+v", io)
	}
	sess.Close()
	for _, id := range seg.Stripe() {
		d, _ := db.Devices().Get(id)
		if got := d.(*device.Disk).ReservedBandwidth(); got != 0 {
			t.Errorf("disk %s still reserves %v after close", id, got)
		}
	}
}
