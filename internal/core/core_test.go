package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/codec"
	"avdb/internal/media"
	"avdb/internal/netsim"
	"avdb/internal/query"
	"avdb/internal/sched"
	"avdb/internal/schema"
	"avdb/internal/synth"
	"avdb/internal/temporal"
	"avdb/internal/txn"
)

const testQualityStr = "32x24x8@30"

func testDB(t testing.TB) *Database {
	t.Helper()
	db, err := OpenDefault("test", PlatformConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineClass("MediaObject", "", []schema.AttrDef{
		{Name: "title", Kind: schema.KindString},
	}); err != nil {
		t.Fatal(err)
	}
	q, err := media.ParseVideoQuality(testQualityStr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineClass("SimpleNewscast", "MediaObject", []schema.AttrDef{
		{Name: "broadcastSource", Kind: schema.KindString},
		{Name: "whenBroadcast", Kind: schema.KindDate},
		{Name: "videoTrack", Kind: schema.KindMedia, MediaKind: media.KindVideo, VideoQuality: q},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineClass("Newscast", "MediaObject", []schema.AttrDef{
		{Name: "whenBroadcast", Kind: schema.KindDate},
		{Name: "clip", Kind: schema.KindTComp, Tracks: []schema.TrackDef{
			{Name: "video", MediaKind: media.KindVideo},
			{Name: "english", MediaKind: media.KindAudio},
			{Name: "subtitles", MediaKind: media.KindText},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func testClip(frames int) *media.VideoValue {
	return synth.Video(media.TypeRawVideo30, synth.PatternMotion, 32, 24, 8, frames, 3)
}

// storeNewscast inserts a SimpleNewscast with a placed video value.
func storeNewscast(t testing.TB, db *Database, title string, frames int) schema.OID {
	t.Helper()
	o, err := db.NewObject("SimpleNewscast")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(o.OID(), "title", schema.String(title)); err != nil {
		t.Fatal(err)
	}
	when := time.Date(1993, 4, 19, 0, 0, 0, 0, time.UTC)
	if err := db.SetAttr(o.OID(), "whenBroadcast", schema.Date(when)); err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(o.OID(), "videoTrack", schema.Media(testClip(frames))); err != nil {
		t.Fatal(err)
	}
	if _, err := db.PlaceMedia(o.OID(), "videoTrack", "disk0", media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	return o.OID()
}

func TestDatabaseCRUDAndQuery(t *testing.T) {
	db := testDB(t)
	oid := storeNewscast(t, db, "60 Minutes", 30)
	storeNewscast(t, db, "Evening News", 30)

	// The paper's query, verbatim in structure.
	got, err := db.SelectOne(`select SimpleNewscast where (title = "60 Minutes" and whenBroadcast = 1993-04-19)`)
	if err != nil {
		t.Fatal(err)
	}
	if got != oid {
		t.Errorf("SelectOne = %v, want %v", got, oid)
	}
	all, err := db.Select(`select SimpleNewscast`)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Errorf("Select all = %d", len(all))
	}
	if _, err := db.SelectOne(`select SimpleNewscast`); err == nil {
		t.Error("SelectOne over two matches succeeded")
	}
	// Attribute reads.
	d, err := db.GetAttr(oid, "title")
	if err != nil || d.Str() != "60 Minutes" {
		t.Errorf("GetAttr = %v, %v", d.Format(), err)
	}
	if _, err := db.GetAttr(oid, "unset"); err == nil {
		t.Error("GetAttr of unset attribute succeeded")
	}
	if _, err := db.GetAttr(9999, "title"); err == nil {
		t.Error("GetAttr of missing object succeeded")
	}
	// Deletion removes the object from queries.
	if err := db.DeleteObject(oid); err != nil {
		t.Fatal(err)
	}
	left, err := db.Select(`select SimpleNewscast`)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 {
		t.Errorf("after delete: %d objects", len(left))
	}
	if err := db.DeleteObject(oid); err == nil {
		t.Error("double delete succeeded")
	}
	if _, err := db.NewObject("Nope"); err == nil {
		t.Error("object of unknown class created")
	}
}

func TestDatabaseIndexedQuery(t *testing.T) {
	db := testDB(t)
	for i := 0; i < 20; i++ {
		title := "Evening News"
		if i%4 == 0 {
			title = "60 Minutes"
		}
		storeNewscast(t, db, title, 2)
	}
	if err := db.CreateIndex("SimpleNewscast", "title", query.HashIndex); err != nil {
		t.Fatal(err)
	}
	oids, err := db.Select(`select SimpleNewscast where title = "60 Minutes"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != 5 {
		t.Errorf("indexed query matched %d, want 5", len(oids))
	}
	// Index maintenance through SetAttr.
	if err := db.SetAttr(oids[0], "title", schema.String("Renamed")); err != nil {
		t.Fatal(err)
	}
	oids2, _ := db.Select(`select SimpleNewscast where title = "60 Minutes"`)
	if len(oids2) != 4 {
		t.Errorf("after rename: %d", len(oids2))
	}
}

func TestDurabilityAcrossCrash(t *testing.T) {
	db := testDB(t)
	oid := storeNewscast(t, db, "60 Minutes", 10)
	seg, ok := db.Placement(oid, "videoTrack", "")
	if !ok {
		t.Fatal("placement lost")
	}

	db.Crash()
	if _, ok := db.Object(oid); ok {
		t.Fatal("object survived crash without recovery")
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	o, ok := db.Object(oid)
	if !ok {
		t.Fatal("object not recovered")
	}
	if d, _ := o.Get("title"); d.Str() != "60 Minutes" {
		t.Errorf("title after recovery = %v", d.Format())
	}
	if d, _ := o.Get("whenBroadcast"); d.DateVal().Year() != 1993 {
		t.Error("date not recovered")
	}
	// Media re-attached from its surviving segment.
	d, err := db.GetAttr(oid, "videoTrack")
	if err != nil {
		t.Fatal(err)
	}
	if d.MediaVal() != seg.Value() {
		t.Error("media not re-attached from segment")
	}
	// Queries work after recovery.
	got, err := db.SelectOne(`select SimpleNewscast where title = "60 Minutes"`)
	if err != nil || got != oid {
		t.Errorf("query after recovery = %v, %v", got, err)
	}
}

func TestRecoveryDropsUncommittedAndDeleted(t *testing.T) {
	db := testDB(t)
	keep := storeNewscast(t, db, "Keep", 2)
	gone := storeNewscast(t, db, "Gone", 2)
	if err := db.DeleteObject(gone); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Object(keep); !ok {
		t.Error("kept object lost")
	}
	if _, ok := db.Object(gone); ok {
		t.Error("deleted object resurrected")
	}
}

func TestSessionPaperProgram(t *testing.T) {
	// §4.3, statements 1–6, line for line.
	db := testDB(t)
	storeNewscast(t, db, "60 Minutes", 45)
	q, _ := media.ParseVideoQuality(testQualityStr)

	sess, err := db.Connect("corporate-app", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// 1: dbSource = new activity VideoSource for SimpleNewscast.videoTrack
	dbSource, err := activities.NewVideoReader("dbSource", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Install(dbSource, ResourcesForVideo(q)); err != nil {
		t.Fatal(err)
	}
	// 2: appSink = new activity VideoWindow quality 320x240x8@30
	appSink := activities.NewVideoWindow("appSink", activity.AtApplication, q, 50*avtime.Millisecond)
	if err := sess.Install(appSink, sched.Resources{}); err != nil {
		t.Fatal(err)
	}
	// 3: videoStream = new connection from dbSource.out to appSink.in
	if _, err := sess.Connect(dbSource, "out", appSink, "in", q.DataRate()); err != nil {
		t.Fatal(err)
	}
	// 4: myNews = select SimpleNewscast where (...)
	myNews, err := db.SelectOne(`select SimpleNewscast where (title = "60 Minutes" and whenBroadcast = 1993-04-19)`)
	if err != nil {
		t.Fatal(err)
	}
	// 5: bind myNews.videoTrack to dbSource
	if err := sess.BindValue(myNews, "videoTrack", dbSource, "out", media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	// 6: start videoStream
	pb, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pb.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if appSink.FramesShown() != 45 {
		t.Errorf("displayed %d frames, want 45", appSink.FramesShown())
	}
	if stats.Ticks != 45 {
		t.Errorf("ticks = %d", stats.Ticks)
	}
	if appSink.Monitor().MissRate() > 0 {
		t.Errorf("deadline misses: %v", appSink.Monitor())
	}
}

func TestSessionAsyncInterface(t *testing.T) {
	db := testDB(t)
	oid := storeNewscast(t, db, "60 Minutes", 300)
	q, _ := media.ParseVideoQuality(testQualityStr)

	sess, err := db.Connect("app", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	src, err := activities.NewVideoReader("src", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Install(src, ResourcesForVideo(q)); err != nil {
		t.Fatal(err)
	}
	win := activities.NewVideoWindow("win", activity.AtApplication, q, avtime.Second)
	if err := sess.Install(win, sched.Resources{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Connect(src, "out", win, "in", q.DataRate()); err != nil {
		t.Fatal(err)
	}
	if err := sess.BindValue(oid, "videoTrack", src, "out", media.MBPerSecond); err != nil {
		t.Fatal(err)
	}

	// Completion notification via Catch, §3.3 "asynchronous notification".
	lastSeen := make(chan struct{}, 1)
	if err := src.Catch(activity.EventLastFrame, func(activity.EventInfo) {
		lastSeen <- struct{}{}
	}); err != nil {
		t.Fatal(err)
	}
	pb, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Start returned immediately; the client proceeds to other tasks and
	// is informed when the transfer completes.
	select {
	case <-pb.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("stream never completed")
	}
	select {
	case <-lastSeen:
	default:
		t.Error("LAST_FRAME never delivered")
	}
	// A second Start on the same session is allowed after completion.
	if _, err := sess.Start(); err != nil {
		t.Errorf("restart failed: %v", err)
	}
}

func TestSessionStopMidStream(t *testing.T) {
	db := testDB(t)
	oid := storeNewscast(t, db, "60 Minutes", 100000)
	q, _ := media.ParseVideoQuality(testQualityStr)
	sess, err := db.Connect("app", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	src, err := activities.NewVideoReader("src", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Install(src, sched.Resources{Buffers: 1}); err != nil {
		t.Fatal(err)
	}
	win := activities.NewVideoWindow("win", activity.AtApplication, q, avtime.Second)
	if err := sess.Install(win, sched.Resources{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Connect(src, "out", win, "in", q.DataRate()); err != nil {
		t.Fatal(err)
	}
	if err := sess.BindValue(oid, "videoTrack", src, "out", 0); err != nil {
		t.Fatal(err)
	}
	stopAt := 50
	n := 0
	graph := sess.Graph()
	if err := src.Catch(activity.EventEachFrame, func(activity.EventInfo) {
		n++
		if n == stopAt {
			graph.Stop()
		}
	}); err != nil {
		t.Fatal(err)
	}
	pb, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pb.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ticks > stopAt+2 {
		t.Errorf("ran %d ticks after stop at %d", stats.Ticks, stopAt)
	}
	// While one stream runs, a second Start fails.
}

func TestSessionAdmissionFailure(t *testing.T) {
	db := testDB(t)
	sess, err := db.Connect("greedy", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	src, err := activities.NewVideoReader("src", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	// Demand more CPU than the whole platform has.
	huge := sched.Resources{CPU: db.Admission().Total().CPU + 1}
	if err := sess.Install(src, huge); !errors.Is(err, sched.ErrAdmission) {
		t.Errorf("oversized install error = %v", err)
	}
}

func TestSessionNetworkAdmissionFailure(t *testing.T) {
	db := testDB(t)
	storeNewscast(t, db, "60 Minutes", 5)
	sess, err := db.Connect("app", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	src, err := activities.NewVideoReader("src", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Install(src, sched.Resources{}); err != nil {
		t.Fatal(err)
	}
	q, _ := media.ParseVideoQuality(testQualityStr)
	win := activities.NewVideoWindow("win", activity.AtApplication, q, 0)
	if err := sess.Install(win, sched.Resources{}); err != nil {
		t.Fatal(err)
	}
	// The link carries 12 MB/s; demand 100.
	if _, err := sess.Connect(src, "out", win, "in", 100*media.MBPerSecond); !errors.Is(err, netsim.ErrBandwidth) {
		t.Errorf("oversized connection error = %v", err)
	}
	// Cross-location connections need a rate.
	if _, err := sess.Connect(src, "out", win, "in", 0); err == nil {
		t.Error("rateless cross-location connection accepted")
	}
}

func TestBindLocationRule(t *testing.T) {
	db := testDB(t)
	oid := storeNewscast(t, db, "60 Minutes", 5)
	sess, err := db.Connect("app", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	appReader, err := activities.NewVideoReader("appReader", activity.AtApplication, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Install(appReader, sched.Resources{}); err != nil {
		t.Fatal(err)
	}
	err = sess.BindValue(oid, "videoTrack", appReader, "out", 0)
	if err == nil || !strings.Contains(err.Error(), "located with the database") {
		t.Errorf("location rule error = %v", err)
	}
}

func TestSessionCloseReleasesEverything(t *testing.T) {
	db := testDB(t)
	oid := storeNewscast(t, db, "60 Minutes", 10)
	q, _ := media.ParseVideoQuality(testQualityStr)
	link, _ := db.Network().Link("lan0")

	sess, err := db.Connect("app", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	src, err := activities.NewVideoReader("src", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Install(src, ResourcesForVideo(q)); err != nil {
		t.Fatal(err)
	}
	win := activities.NewVideoWindow("win", activity.AtApplication, q, 0)
	if err := sess.Install(win, sched.Resources{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Connect(src, "out", win, "in", q.DataRate()); err != nil {
		t.Fatal(err)
	}
	if err := sess.BindValue(oid, "videoTrack", src, "out", media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	if err := sess.AcquireDevice("fx0"); err != nil {
		t.Fatal(err)
	}
	if db.Admission().Used().IsZero() {
		t.Fatal("no resources reserved")
	}
	if link.Reserved() == 0 {
		t.Fatal("no link bandwidth reserved")
	}
	sess.Close()
	sess.Close() // idempotent
	if !db.Admission().Used().IsZero() {
		t.Error("admission grants leaked")
	}
	if link.Reserved() != 0 {
		t.Error("link bandwidth leaked")
	}
	if _, held := db.Devices().Holder("fx0"); held {
		t.Error("device leaked")
	}
	// Closed sessions refuse work.
	if err := sess.Install(win, sched.Resources{}); err == nil {
		t.Error("install on closed session accepted")
	}
	if _, err := sess.Start(); err == nil {
		t.Error("start on closed session accepted")
	}
	if err := sess.AcquireDevice("fx0"); err == nil {
		t.Error("acquire on closed session accepted")
	}
}

func TestDeviceContentionBetweenSessions(t *testing.T) {
	db := testDB(t)
	s1, err := db.Connect("a", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := db.Connect("b", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s1.AcquireDevice("fx0"); err != nil {
		t.Fatal(err)
	}
	if err := s2.AcquireDevice("fx0"); err == nil {
		t.Error("second session acquired a held effects processor")
	}
	s1.Close()
	if err := s2.AcquireDevice("fx0"); err != nil {
		t.Errorf("acquire after release failed: %v", err)
	}
}

func TestSynchronizedNewscastSession(t *testing.T) {
	// The paper's second program: MultiSource/MultiSink with a composite
	// clip over one connection.
	db := testDB(t)
	o, err := db.NewObject("Newscast")
	if err != nil {
		t.Fatal(err)
	}
	clip := buildClip(t, 60)
	if err := db.SetAttr(o.OID(), "title", schema.String("60 Minutes")); err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(o.OID(), "clip", schema.TComp(clip)); err != nil {
		t.Fatal(err)
	}

	sess, err := db.Connect("app", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	dbSource := activities.NewMultiSource("dbSource", activity.AtDatabase)
	vr, err := activities.NewVideoReader("video", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := activities.NewAudioReader("english", activity.AtDatabase, media.TypeVoiceAudio)
	if err != nil {
		t.Fatal(err)
	}
	if err := dbSource.Install(vr); err != nil {
		t.Fatal(err)
	}
	if err := dbSource.Install(ar); err != nil {
		t.Fatal(err)
	}
	if err := activities.SealMultiSource(dbSource); err != nil {
		t.Fatal(err)
	}
	if err := sess.Install(dbSource, sched.Resources{Buffers: 2}); err != nil {
		t.Fatal(err)
	}

	appSink := activities.NewMultiSink("appSink", activity.AtApplication)
	win := activities.NewVideoWindow("video", activity.AtApplication, media.VideoQuality{}, 50*avtime.Millisecond)
	dac, err := activities.NewAudioSink("english", activity.AtApplication, media.TypeVoiceAudio, media.AudioQualityVoice, 50*avtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := appSink.Install(win); err != nil {
		t.Fatal(err)
	}
	if err := appSink.Install(dac); err != nil {
		t.Fatal(err)
	}
	if err := activities.SealMultiSink(appSink); err != nil {
		t.Fatal(err)
	}
	if err := sess.Install(appSink, sched.Resources{}); err != nil {
		t.Fatal(err)
	}

	if _, err := sess.Connect(dbSource, "out", appSink, "in", media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	myNews, err := db.SelectOne(`select Newscast where title = "60 Minutes"`)
	if err != nil {
		t.Fatal(err)
	}
	// Binding a track named after a missing component errors cleanly.
	if err := sess.BindTrack(myNews, "clip", "nope", vr, "out", 0); err == nil {
		t.Error("bind of missing track accepted")
	}
	if err := sess.BindClip(myNews, "clip", dbSource, 0); err != nil {
		t.Fatal(err)
	}
	pb, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pb.Wait(); err != nil {
		t.Fatal(err)
	}
	if win.FramesShown() != 60 {
		t.Errorf("video frames = %d, want 60", win.FramesShown())
	}
	if dac.SamplesPlayed() != 16000 {
		t.Errorf("audio samples = %d, want 16000", dac.SamplesPlayed())
	}
}

// buildClip assembles the Newscast.clip temporal composite: 2s of video,
// a 2s English narration and subtitles.
func buildClip(t *testing.T, frames int) *temporal.Composite {
	t.Helper()
	clip := temporal.NewComposite("clip")
	if err := clip.Add("video", testClip(frames)); err != nil {
		t.Fatal(err)
	}
	eng, err := synth.Speech(media.AudioQualityVoice, float64(frames)/30, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := clip.Add("english", eng); err != nil {
		t.Fatal(err)
	}
	subs, err := synth.Subtitles([]string{"good evening", "tonight"}, int64(frames)*1000/60)
	if err != nil {
		t.Fatal(err)
	}
	if err := clip.Add("subtitles", subs); err != nil {
		t.Fatal(err)
	}
	return clip
}

func TestImportVideoRepresentationHints(t *testing.T) {
	clip := testClip(10)
	cases := []struct {
		hints RepresentationHints
		typ   *media.Type
	}{
		{RepresentationHints{Raw: true}, media.TypeRawVideo30},
		{RepresentationHints{Scalable: true}, codec.TypeScalableVideo},
		{RepresentationHints{RandomAccess: true}, codec.TypeJPEGVideo},
		{RepresentationHints{Archive: true}, codec.TypeMPEGVideo},
		{RepresentationHints{}, codec.TypeMPEGVideo},
	}
	db := testDB(t)
	for _, c := range cases {
		v, err := db.ImportVideo(clip, c.hints)
		if err != nil {
			t.Fatal(err)
		}
		if v.Type() != c.typ {
			t.Errorf("hints %+v gave %s, want %s", c.hints, v.Type().Name, c.typ.Name)
		}
	}
}

func TestRetrieveAtQualityScalableVsTranscode(t *testing.T) {
	clip := synth.Video(media.TypeRawVideo30, synth.PatternMotion, 64, 48, 8, 10, 5)
	scal, err := codec.ScalableCodec.Encode(clip)
	if err != nil {
		t.Fatal(err)
	}
	mpeg, err := codec.MPEG.Encode(clip)
	if err != nil {
		t.Fatal(err)
	}
	low := media.VideoQuality{Width: 16, Height: 12, Depth: 8, FPS: 30}

	got, info, err := RetrieveAtQuality(scal, low)
	if err != nil {
		t.Fatal(err)
	}
	if info.Method != "layer-drop" {
		t.Errorf("scalable method = %s", info.Method)
	}
	if got.(*codec.EncodedVideo).Layers() != 1 {
		t.Error("layer count wrong")
	}
	if info.BytesProcessed >= scal.Size() {
		t.Errorf("layer-drop touched %d of %d bytes", info.BytesProcessed, scal.Size())
	}

	_, tinfo, err := RetrieveAtQuality(mpeg, low)
	if err != nil {
		t.Fatal(err)
	}
	if tinfo.Method != "transcode" {
		t.Errorf("non-scalable method = %s", tinfo.Method)
	}
	if tinfo.BytesProcessed <= info.BytesProcessed {
		t.Errorf("transcode (%d) not costlier than layer-drop (%d)",
			tinfo.BytesProcessed, info.BytesProcessed)
	}

	// Full-quality request on a scalable value is direct.
	full := media.VideoQuality{Width: 64, Height: 48, Depth: 8, FPS: 30}
	_, dinfo, err := RetrieveAtQuality(scal, full)
	if err != nil || dinfo.Method != "direct" {
		t.Errorf("full-quality method = %s, %v", dinfo.Method, err)
	}
	// Raw values resize.
	_, rinfo, err := RetrieveAtQuality(clip, low)
	if err != nil || rinfo.Method != "transcode" {
		t.Errorf("raw method = %s, %v", rinfo.Method, err)
	}
	if _, _, err := RetrieveAtQuality(clip, media.VideoQuality{}); err == nil {
		t.Error("invalid quality accepted")
	}
	// Mid quality uses two layers.
	mid := media.VideoQuality{Width: 32, Height: 24, Depth: 8, FPS: 30}
	v2, _, err := RetrieveAtQuality(scal, mid)
	if err != nil || v2.(*codec.EncodedVideo).Layers() != 2 {
		t.Errorf("mid-quality layers = %v, %v", v2, err)
	}
}

func TestResourceEstimates(t *testing.T) {
	q, _ := media.ParseVideoQuality("640x480x8@30")
	r := ResourcesForVideo(q)
	if r.Buffers != 1 || r.CPU != q.DataRate() || r.Bus != q.DataRate() {
		t.Errorf("ResourcesForVideo = %v", r)
	}
	a := ResourcesForAudio(media.AudioQualityCD)
	if a.CPU != media.AudioQualityCD.DataRate() {
		t.Errorf("ResourcesForAudio = %v", a)
	}
}

func TestVersioningWorkflow(t *testing.T) {
	db := testDB(t)
	oid := storeNewscast(t, db, "60 Minutes", 10)
	rough := testClip(10)
	finalCut := testClip(8)
	if _, err := db.Versions().Checkin(oid, "videoTrack", rough, "rough cut"); err != nil {
		t.Fatal(err)
	}
	n, err := db.Versions().Checkin(oid, "videoTrack", finalCut, "final cut")
	if err != nil || n != 2 {
		t.Fatal(err)
	}
	cur, ok := db.Versions().Current(oid, "videoTrack")
	if !ok || cur.Value != media.Value(finalCut) {
		t.Error("current version wrong")
	}
	if h := db.Versions().History(oid, "videoTrack"); len(h) != 2 {
		t.Error("history wrong")
	}
	_ = txn.Version{} // the version type is part of the public workflow
}

func TestConnectUnknownLink(t *testing.T) {
	db := testDB(t)
	if _, err := db.Connect("app", "wan9"); err == nil {
		t.Error("connect over missing link succeeded")
	}
}

func TestPlaceMediaErrors(t *testing.T) {
	db := testDB(t)
	oid := storeNewscast(t, db, "60 Minutes", 5)
	if _, err := db.PlaceMedia(oid, "title", "disk0", 0); err == nil {
		t.Error("placing a string attribute succeeded")
	}
	if _, err := db.PlaceMedia(9999, "videoTrack", "disk0", 0); err == nil {
		t.Error("placing a missing object succeeded")
	}
	// Auto placement.
	if _, err := db.PlaceMedia(oid, "videoTrack", "", media.MBPerSecond); err != nil {
		t.Errorf("auto placement failed: %v", err)
	}
}

func TestAccessorsAndPlaceTrack(t *testing.T) {
	db := testDB(t)
	if db.Name() != "test" || db.Storage() == nil || db.Clock() == nil || db.Schema() == nil {
		t.Error("accessors wrong")
	}
	o, err := db.NewObject("Newscast")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(o.OID(), "title", schema.String("Tracked")); err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(o.OID(), "clip", schema.TComp(buildClip(t, 30))); err != nil {
		t.Fatal(err)
	}
	seg, err := db.PlaceTrack(o.OID(), "clip", "video", "disk1", media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Device() != "disk1" {
		t.Errorf("track placed on %s", seg.Device())
	}
	if got, ok := db.Placement(o.OID(), "clip", "video"); !ok || got != seg {
		t.Error("track placement lost")
	}
	// Auto placement for tracks.
	if _, err := db.PlaceTrack(o.OID(), "clip", "english", "", media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	// Errors.
	if _, err := db.PlaceTrack(o.OID(), "clip", "nope", "disk0", 0); err == nil {
		t.Error("missing track placed")
	}
	if _, err := db.PlaceTrack(o.OID(), "title", "video", "disk0", 0); err == nil {
		t.Error("non-tcomp attribute placed as track")
	}
	if _, err := db.PlaceTrack(9999, "clip", "video", "disk0", 0); err == nil {
		t.Error("missing object placed")
	}
	// Bound readers pick up the track placement's storage stream.
	sess, err := db.Connect("app", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.ID() == "" || sess.Link() == nil {
		t.Error("session accessors wrong")
	}
	vr, err := activities.NewVideoReader("video", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Install(vr, sched.Resources{}); err != nil {
		t.Fatal(err)
	}
	win := activities.NewVideoWindow("win", activity.AtApplication, media.VideoQuality{}, avtime.Second)
	if err := sess.Install(win, sched.Resources{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Connect(vr, "out", win, "in", media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	if err := sess.BindTrack(o.OID(), "clip", "video", vr, "out", media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	pb, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pb.Wait(); err != nil {
		t.Fatal(err)
	}
	if win.FramesShown() != 30 {
		t.Errorf("frames = %d", win.FramesShown())
	}
	// The very first frame paid the disk seek through the attached stream.
	if win.Arrivals()[0] == 0 {
		t.Error("placement stream not attached: no read latency")
	}
}

func TestBindErrors(t *testing.T) {
	db := testDB(t)
	oid := storeNewscast(t, db, "60 Minutes", 3)
	sess, err := db.Connect("app", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	vr, err := activities.NewVideoReader("r", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	// Binding a scalar attribute fails.
	if err := sess.BindValue(oid, "title", vr, "out", 0); err == nil {
		t.Error("scalar bound as media")
	}
	// Binding a missing attribute fails.
	if err := sess.BindValue(oid, "nope", vr, "out", 0); err == nil {
		t.Error("missing attribute bound")
	}
	// BindTrack on a media (non-tcomp) attribute fails.
	if err := sess.BindTrack(oid, "videoTrack", "x", vr, "out", 0); err == nil {
		t.Error("media attribute bound as track")
	}
	// BindClip location rule: children at the application are rejected.
	comp := activities.NewMultiSource("appcomp", activity.AtApplication)
	appReader, err := activities.NewVideoReader("video", activity.AtApplication, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := comp.Install(appReader); err != nil {
		t.Fatal(err)
	}
	o, err := db.NewObject("Newscast")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(o.OID(), "clip", schema.TComp(buildClip(t, 30))); err != nil {
		t.Fatal(err)
	}
	if err := sess.BindClip(o.OID(), "clip", comp, 0); err == nil {
		t.Error("application-located composite bound to database clip")
	}
	if err := sess.BindClip(oid, "videoTrack", comp, 0); err == nil {
		t.Error("BindClip on non-tcomp accepted")
	}
}
