package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/fault"
	"avdb/internal/media"
	"avdb/internal/netsim"
	"avdb/internal/sched"
	"avdb/internal/schema"
)

// isoDB opens a platform with enough disks to give every session its
// own spindle, so a crash on one disk touches exactly one stream.
func isoDB(t testing.TB, disks int) *Database {
	t.Helper()
	db, err := OpenDefault("iso", PlatformConfig{Disks: disks, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineClass("MediaObject", "", []schema.AttrDef{
		{Name: "title", Kind: schema.KindString},
	}); err != nil {
		t.Fatal(err)
	}
	q, err := media.ParseVideoQuality(testQualityStr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineClass("SimpleNewscast", "MediaObject", []schema.AttrDef{
		{Name: "whenBroadcast", Kind: schema.KindDate},
		{Name: "videoTrack", Kind: schema.KindMedia, MediaKind: media.KindVideo, VideoQuality: q},
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

// buildPlaybackOn is buildPlaybackSession with the clip placed on a
// chosen disk and connected over a chosen link.
func buildPlaybackOn(t testing.TB, db *Database, client string, frames int, disk, link string) *playbackSession {
	t.Helper()
	o, err := db.NewObject("SimpleNewscast")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(o.OID(), "title", schema.String(client+"-clip")); err != nil {
		t.Fatal(err)
	}
	when := time.Date(1993, 4, 19, 0, 0, 0, 0, time.UTC)
	if err := db.SetAttr(o.OID(), "whenBroadcast", schema.Date(when)); err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(o.OID(), "videoTrack", schema.Media(testClip(frames))); err != nil {
		t.Fatal(err)
	}
	if _, err := db.PlaceMedia(o.OID(), "videoTrack", disk, media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	q, err := media.ParseVideoQuality(testQualityStr)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := db.Connect(client, link)
	if err != nil {
		t.Fatal(err)
	}
	src, err := activities.NewVideoReader("src", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Install(src, sched.Resources{Buffers: 1}); err != nil {
		t.Fatal(err)
	}
	win := activities.NewVideoWindow("win", activity.AtApplication, q, avtime.Second)
	if err := sess.Install(win, sched.Resources{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Connect(src, "out", win, "in", q.DataRate()); err != nil {
		t.Fatal(err)
	}
	if err := sess.BindValue(o.OID(), "videoTrack", src, "out", media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	return &playbackSession{sess: sess, src: src, win: win}
}

// isoOutcome is the per-session result a crash must not perturb for
// bystanders.
type isoOutcome struct {
	Shown int
	Lost  int
	Err   string
}

// TestEngineDiskCrashIsolation is the tentpole's fault-isolation
// guarantee: five co-scheduled sessions on four disks, a mid-run crash
// of disk2 that never recovers.  The armed session on disk2 fails soft
// (sacrifices frames, completes), the unarmed one dies with a device
// error, and the three bystanders on other disks are untouched —
// byte-for-byte the same observability output at Workers 1, 2 and 4,
// and the same per-session outcomes as a crash-free run.
func TestEngineDiskCrashIsolation(t *testing.T) {
	const frames = 30
	total := avtime.WorldTime(frames) * avtime.Second / 30

	run := func(workers int, inject bool) (string, []isoOutcome, []*activity.RunStats) {
		db := isoDB(t, 4)
		col := db.EnableObservability()
		if inject {
			plan, err := fault.NewPlan(7).Add(fault.Fault{
				Kind: fault.DeviceOutage, Target: "disk2", Start: total / 3, Dur: total,
			})
			if err != nil {
				t.Fatal(err)
			}
			db.Devices().SetFaultHook(fault.NewInjector(plan, db.Clock()))
		}

		a := buildPlaybackOn(t, db, "bystander-a", frames, "disk0", "lan0")
		b := buildPlaybackOn(t, db, "bystander-b", frames, "disk1", "lan0")
		soft := buildPlaybackOn(t, db, "victim-soft", frames, "disk2", "lan0")
		soft.src.SetDropOnFault(true) // fail-soft: sacrifice frames, keep playing
		hard := buildPlaybackOn(t, db, "victim-hard", frames, "disk2", "lan0")
		d := buildPlaybackOn(t, db, "bystander-d", frames, "disk3", "lan0")
		all := []*playbackSession{a, b, soft, hard, d}
		for _, ps := range all {
			ps.sess.SetWorkers(workers)
		}

		db.Engine().Pause()
		var pbs []*Playback
		for _, ps := range all {
			pb, err := ps.sess.Start()
			if err != nil {
				t.Fatal(err)
			}
			pbs = append(pbs, pb)
		}
		db.Engine().Resume()

		outs := make([]isoOutcome, len(all))
		stats := make([]*activity.RunStats, len(all))
		for i, pb := range pbs {
			st, err := pb.Wait()
			outs[i] = isoOutcome{Shown: all[i].win.FramesShown(), Lost: all[i].src.FramesLost()}
			if err != nil {
				outs[i].Err = err.Error()
			}
			stats[i] = st
		}
		for _, ps := range all {
			ps.sess.Close()
		}
		js, err := col.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js, outs, stats
	}

	snap, outs, stats := run(1, true)

	// Bystanders (indices 0, 1, 4) are whole; soft victim survived with
	// sacrificed frames; hard victim died of the device failure.
	for _, i := range []int{0, 1, 4} {
		if outs[i].Err != "" || outs[i].Shown != frames || outs[i].Lost != 0 {
			t.Errorf("bystander %d under crash: %+v, want %d/0 frames and no error", i, outs[i], frames)
		}
	}
	if outs[2].Err != "" || outs[2].Lost == 0 || outs[2].Shown+outs[2].Lost != frames {
		t.Errorf("fail-soft victim: %+v, want lost > 0, shown+lost = %d, no error", outs[2], frames)
	}
	if outs[3].Err == "" {
		t.Error("hard victim survived a dead disk")
	} else if got := outs[3].Err; !strings.Contains(got, device.ErrDeviceFailed.Error()) {
		t.Errorf("hard victim error %q does not mention device failure", got)
	}

	// The crash response is deterministic: identical outcomes, RunStats
	// and observability bytes at every worker count.
	for _, workers := range []int{2, 4} {
		wSnap, wOuts, wStats := run(workers, true)
		if !reflect.DeepEqual(outs, wOuts) {
			t.Errorf("workers=%d: outcomes diverged under crash: %+v vs %+v", workers, wOuts, outs)
		}
		if !reflect.DeepEqual(stats, wStats) {
			t.Errorf("workers=%d: per-session RunStats diverged under crash", workers)
		}
		if wSnap != snap {
			t.Errorf("workers=%d: obs snapshots differ (%d vs %d bytes)", workers, len(wSnap), len(snap))
		}
	}

	// Isolation proper: the bystanders' outcomes match a crash-free run
	// of the same schedule — the disk2 outage leaked nothing across.
	_, cleanOuts, _ := run(1, false)
	for _, i := range []int{0, 1, 4} {
		if outs[i] != cleanOuts[i] {
			t.Errorf("bystander %d perturbed by crash: %+v vs crash-free %+v", i, outs[i], cleanOuts[i])
		}
	}
}

// TestEngineChaosIsolationDeterminism is the chaos-under-engine check:
// one victim session with the full recovery stack (bounded retry, frame
// sacrifice, fail-soft transfers, degradation) rides out transient
// faults, an outage and a link collapse on its own disk and link, while
// two bystanders on separate spindles and the shared link stream
// unharmed.  The whole ensemble is deterministic across repeats at
// Workers 4 — the configuration the race detector exercises.
func TestEngineChaosIsolationDeterminism(t *testing.T) {
	const frames = 30
	total := avtime.WorldTime(frames) * avtime.Second / 30

	run := func() (string, []isoOutcome) {
		db := isoDB(t, 3)
		col := db.EnableObservability()
		// The victim gets a private link so the mid-run link collapse
		// cannot touch the bystanders' transfers.
		vLink := netsim.NewLink("lan-victim", 12*media.MBPerSecond, 2*avtime.Millisecond, avtime.Millisecond, 7)
		if err := db.Network().AddLink(vLink); err != nil {
			t.Fatal(err)
		}

		plan := fault.NewPlan(7)
		for _, f := range []fault.Fault{
			{Kind: fault.TransientRead, Target: "disk0", Start: 0, Dur: total / 2, Probability: 0.4},
			{Kind: fault.DeviceOutage, Target: "disk0", Start: total * 2 / 5, Dur: total / 10},
			{Kind: fault.LinkDegrade, Target: "lan-victim", Start: total / 2, Dur: total / 4, Factor: 0.25},
		} {
			if _, err := plan.Add(f); err != nil {
				t.Fatal(err)
			}
		}
		inj := fault.NewInjector(plan, db.Clock())
		db.Devices().SetFaultHook(inj)
		vLink.SetFaultHook(inj)

		victim := buildPlaybackOn(t, db, "victim", frames, "disk0", "lan-victim")
		victim.src.SetRetry(fault.DefaultRetry)
		victim.src.SetDropOnFault(true)
		b1 := buildPlaybackOn(t, db, "bystander-1", frames, "disk1", "lan0")
		b2 := buildPlaybackOn(t, db, "bystander-2", frames, "disk2", "lan0")
		all := []*playbackSession{victim, b1, b2}
		for _, ps := range all {
			ps.sess.SetWorkers(4)
		}

		db.Engine().Pause()
		var pbs []*Playback
		for _, ps := range all {
			pb, err := ps.sess.Start()
			if err != nil {
				t.Fatal(err)
			}
			pbs = append(pbs, pb)
		}
		db.Engine().Resume()

		outs := make([]isoOutcome, len(all))
		for i, pb := range pbs {
			_, err := pb.Wait()
			outs[i] = isoOutcome{Shown: all[i].win.FramesShown(), Lost: all[i].src.FramesLost()}
			if err != nil {
				outs[i].Err = err.Error()
			}
		}
		for _, ps := range all {
			ps.sess.Close()
		}
		js, err := col.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js, outs
	}

	snap, outs := run()
	if outs[0].Err != "" {
		t.Errorf("armed victim died: %v", outs[0].Err)
	}
	if outs[0].Shown+outs[0].Lost != frames {
		t.Errorf("victim accounting: shown %d + lost %d != %d", outs[0].Shown, outs[0].Lost, frames)
	}
	for i := 1; i < 3; i++ {
		if outs[i] != (isoOutcome{Shown: frames}) {
			t.Errorf("bystander %d touched by victim's faults: %+v", i, outs[i])
		}
	}
	snap2, outs2 := run()
	if !reflect.DeepEqual(outs, outs2) {
		t.Errorf("chaos outcomes not deterministic: %+v vs %+v", outs, outs2)
	}
	if snap != snap2 {
		t.Errorf("chaos obs snapshots differ across repeats (%d vs %d bytes)", len(snap), len(snap2))
	}
}
