package core

import (
	"context"
	"runtime/pprof"
	"sync"

	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/sched"
)

// Engine is the database's multi-session run loop: the one place the
// shared virtual clock advances.  "Special devices and scheduling are
// under database control and shared between clients" (§3.3) — so a
// started playback is not a private goroutine racing the clock forward;
// it is a schedulable entity admitted into the engine's run set.
//
// Each engine step:
//
//  1. picks the earliest next-due time across admitted runs (sessions
//     may tick at different rates; no LCM is needed — the engine simply
//     steps to whichever run is due next),
//  2. ticks every run due at that time, in admission order, tagging all
//     of them with the same storage service round so their chunk
//     requests merge into shared per-disk SCAN-EDF batches,
//  3. commits the clock once, to the minimum commit horizon across the
//     surviving runs, via the AdvanceGate discipline,
//  4. retires finished runs (drain, span close-out, node teardown) and
//     completes their Playback handles.
//
// A single admitted session therefore executes the exact sequence
// Graph.Run would: same tick times, same round numbers, same commit
// points — byte-identical RunStats and obs output for any Workers.
//
// The loop runs on one goroutine, started lazily at first admission and
// exited when the run set drains; the step counter persists across
// restarts so storage round numbers never rewind below the IOSched
// flush watermark.
type Engine struct {
	db *Database

	mu       sync.Mutex
	cond     *sync.Cond
	set      sched.RunSet
	entries  map[sched.RunID]*engineEntry
	running  bool // loop goroutine alive
	paused   bool
	stepping bool // a step is executing outside the lock
	step     int64
	finished int64 // runs retired since open
}

// engineEntry is one admitted playback.
type engineEntry struct {
	id       sched.RunID
	session  string
	graph    string
	run      *activity.GraphRun
	playback *Playback
	ticks    int
}

func newEngine(db *Database) *Engine {
	e := &Engine{db: db, entries: make(map[sched.RunID]*engineEntry)}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// admit enters a begun run into the run set and wakes (or starts) the
// loop.  Called by Session.StartAt with the graph already started and
// the playback handle registered on the session.
func (e *Engine) admit(sessionID string, run *activity.GraphRun, p *Playback) {
	e.mu.Lock()
	id := e.set.Admit(run.NextDue())
	e.entries[id] = &engineEntry{
		id:       id,
		session:  sessionID,
		graph:    run.Graph().Name(),
		run:      run,
		playback: p,
	}
	active := int64(len(e.entries))
	if !e.running {
		e.running = true
		go e.loop()
	}
	e.cond.Broadcast()
	e.mu.Unlock()
	if sink := e.db.sink(); sink != nil {
		sink.SetGauge("engine.sessions.active", active)
	}
}

// Pause holds the engine between steps: admitted runs stay in the set
// but no tick executes until Resume.  Pause waits for an in-flight step
// to finish, so after it returns no graph is mid-tick.  Tests use the
// pair to admit several sessions and release them into the same first
// step deterministically.
func (e *Engine) Pause() {
	e.mu.Lock()
	e.paused = true
	for e.stepping {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// Resume releases a paused engine.
func (e *Engine) Resume() {
	e.mu.Lock()
	e.paused = false
	e.cond.Broadcast()
	e.mu.Unlock()
}

// loop is the engine goroutine: one iteration per step, exiting when
// the run set drains.  Ticks execute outside the engine lock so event
// handlers running on this goroutine may call back into the database
// (start another session, renegotiate quality) without deadlocking.
func (e *Engine) loop() {
	for {
		e.mu.Lock()
		for e.paused {
			e.cond.Wait()
		}
		if e.set.Len() == 0 {
			e.running = false
			e.cond.Broadcast()
			e.mu.Unlock()
			return
		}
		due, ids, _ := e.set.DueBatch()
		step := e.step
		e.step++
		batch := make([]*engineEntry, 0, len(ids))
		for _, id := range ids {
			batch = append(batch, e.entries[id])
		}
		e.stepping = true
		e.mu.Unlock()

		sink := e.db.sink()
		if sink != nil {
			// Lag is how far the committed clock trails the step's due
			// time; it goes positive when a finishing run's drain pushed
			// the clock past other runs' schedules.
			lag := e.db.clock.Now() - due
			if lag < 0 {
				lag = 0
			}
			sink.Observe("engine.tick.lag", int64(lag))
		}

		// Phase 1 — tick every due run, in admission order, all tagged
		// with this step's service round so the store batches their chunk
		// requests into the same per-disk SCAN-EDF rounds.
		var retired []*engineEntry
		for _, en := range batch {
			en.run.SetRound(step)
			var done bool
			labels := pprof.Labels("avdb_session", en.session, "avdb_graph", en.graph)
			pprof.Do(context.Background(), labels, func(context.Context) {
				done, _ = en.run.Tick()
			})
			en.ticks = en.run.Ticks()
			if done || en.run.Err() != nil {
				retired = append(retired, en)
			}
		}

		// Phase 2 — one clock commit for the whole step: the minimum
		// commit horizon across runs that ticked cleanly.  Runs admitted
		// but not yet ticked contribute their start time, which the clock
		// already covers, so they never drag it backwards — AdvanceTo is
		// monotone.
		horizon := avtime.WorldTime(-1)
		e.mu.Lock()
		for _, en := range e.entries {
			if en.run.Err() != nil {
				continue
			}
			if h := en.run.CommitHorizon(); horizon < 0 || h < horizon {
				horizon = h
			}
		}
		for _, en := range batch {
			if en.run.Err() == nil && !en.run.Done() {
				e.set.Reschedule(en.id, en.run.NextDue())
			}
		}
		e.mu.Unlock()
		if horizon >= 0 {
			e.db.clock.AdvanceTo(horizon)
		}
		if sink != nil {
			sink.Count("engine.steps", 1)
		}

		// Phase 3 — retire finished runs: drain their gates, close spans,
		// stop nodes, complete the Playback so waiters unblock.
		for _, en := range retired {
			stats, err := en.run.Finish()
			e.mu.Lock()
			e.set.Remove(en.id)
			delete(e.entries, en.id)
			e.finished++
			active := int64(len(e.entries))
			e.mu.Unlock()
			en.playback.complete(stats, err)
			if sink != nil {
				sink.Count("engine.runs.finished", 1)
				sink.SetGauge("engine.sessions.active", active)
			}
		}

		e.mu.Lock()
		e.stepping = false
		e.cond.Broadcast()
		e.mu.Unlock()
	}
}

// EngineSession describes one admitted run for introspection (the
// avdbsh `sessions` command).
type EngineSession struct {
	Session string           // owning session id
	Graph   string           // graph name
	Rate    avtime.Rate      // tick rate
	Ticks   int              // ticks executed so far
	Due     avtime.WorldTime // when the next tick is due
	State   string           // "admitted" until the first tick, then "running"
}

// Sessions lists the active engine entries in admission order.
func (e *Engine) Sessions() []EngineSession {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]EngineSession, 0, len(e.entries))
	// Walk the run set rather than the map so the order is admission
	// order, not map order.
	for _, id := range e.admissionOrderLocked() {
		en := e.entries[id]
		state := "running"
		if en.run.Ticks() == 0 {
			state = "admitted"
		}
		out = append(out, EngineSession{
			Session: en.session,
			Graph:   en.graph,
			Rate:    en.run.Rate(),
			Ticks:   en.run.Ticks(),
			Due:     en.run.NextDue(),
			State:   state,
		})
	}
	return out
}

// admissionOrderLocked returns the active run ids in admission order.
func (e *Engine) admissionOrderLocked() []sched.RunID {
	ids := make([]sched.RunID, 0, len(e.entries))
	for id := range e.entries {
		ids = append(ids, id)
	}
	// RunIDs are handed out in admission order, so sorting by id IS
	// admission order; insertion sort keeps this dependency-free.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// EngineStats summarizes the engine's lifetime counters.
type EngineStats struct {
	Active   int   // runs currently admitted
	Steps    int64 // engine steps executed
	Finished int64 // runs retired
	Paused   bool
}

// Stats returns the engine's counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EngineStats{
		Active:   len(e.entries),
		Steps:    e.step,
		Finished: e.finished,
		Paused:   e.paused,
	}
}
