package core

import (
	"context"
	"runtime/pprof"
	"sync"

	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/obs"
	"avdb/internal/sched"
	"avdb/internal/storage"
)

// Engine is the database's multi-session run loop: the one place the
// shared virtual clock advances.  "Special devices and scheduling are
// under database control and shared between clients" (§3.3) — so a
// started playback is not a private goroutine racing the clock forward;
// it is a schedulable entity admitted into the engine's run set.
//
// Each engine step:
//
//  1. picks the earliest next-due time across admitted runs (sessions
//     may tick at different rates; no LCM is needed — the engine simply
//     steps to whichever run is due next),
//  2. ticks every run due at that time, in admission order, tagging all
//     of them with the same storage service round so their chunk
//     requests merge into shared per-disk SCAN-EDF batches,
//  3. commits the clock once, to the minimum commit horizon across the
//     surviving runs, via the AdvanceGate discipline,
//  4. retires finished runs (drain, span close-out, node teardown) and
//     completes their Playback handles.
//
// A single admitted session therefore executes the exact sequence
// Graph.Run would: same tick times, same round numbers, same commit
// points — byte-identical RunStats and obs output for any Workers.
//
// The loop runs on one goroutine, started lazily at first admission and
// exited when the run set drains; the step counter persists across
// restarts so storage round numbers never rewind below the IOSched
// flush watermark.
//
// With EngineWorkers > 1 the tick phase itself fans out (DESIGN.md
// §14): admitted runs are partitioned into engineShards session shards
// (keyed by stripe group when striped, round-robin otherwise), each
// step hands the due batch's shard slices to a bounded worker pool, and
// the commit barrier merges results back in admission order.  Runs tick
// on disjoint per-run state; every shared structure they touch
// mid-tick (SCAN-EDF rounds, device fault hooks, link counters, the
// metrics registry) is either lock-protected and order-independent or
// read-only, and per-run telemetry is buffered in a private obs.Stage
// replayed in admission order at the barrier — so any worker count
// stays byte-identical to serial, the cross-session restatement of the
// wavefront executor's guarantee.  Sessions admitted from inside event
// handlers during a parallel tick keep working but fall outside the
// byte-identity guarantee (admission order then depends on worker
// interleaving), as do probabilistic fault hooks shared by sessions in
// different shards (their RNG draw order follows service order).
//
// The step path follows the same allocation-free discipline as the
// SCAN-EDF scheduler (DESIGN.md §12, §13): the due batch, the retired
// list and the run-set walk all live in buffers reused step to step,
// and per-run pprof label contexts are built once at admission — in
// steady state a step performs zero heap allocations of its own
// (pinned by TestEngineAllocsPerStep).
//
// With overload control enabled (EnableOverloadControl), the engine
// additionally closes the loop §3.3 opens at admission time: a
// per-step pressure detector watches deadline misses, SCAN-EDF round
// overruns and stall episodes, and the engine responds by degrading
// low-priority sessions first (their armed EnableDegradation paths),
// restoring them when pressure clears, and shedding new Session.Start
// calls with ErrOverloaded while the schedule is infeasible.
type Engine struct {
	db *Database

	mu       sync.Mutex
	cond     *sync.Cond
	set      *sched.ShardedRunSet
	entries  map[sched.RunID]*engineEntry
	admitted []sched.RunID // active ids, admission order (ids are monotonic)
	running  bool          // loop goroutine alive
	paused   bool
	stepping bool // a step is executing outside the lock
	steps    int64
	finished int64 // runs retired since open
	workers  int   // tick-phase pool size; <= 1 steps serially
	rrShard  int   // round-robin cursor for unkeyed admissions

	// Worker pool, built lazily at the first parallel step and torn
	// down when the run set drains (or SetWorkers resizes it).
	workCh   chan engineShardJob
	poolSize int // goroutines the live pool was built with
	stepWG   sync.WaitGroup

	// Step-path scratch, reused step to step.  Only the loop goroutine
	// (or a test driving stepOnce directly) touches these outside the
	// engine lock.
	stepBatch   []*engineEntry   // entries due this step, admission order
	shardBatch  [][]*engineEntry // the same entries sliced by shard
	retiredBuf  []*engineEntry   // entries finishing this step
	sessScratch []*Session       // degradeCandidates session snapshot
	candScratch []*Session       // degradeCandidates result buffer
	baseCtx     context.Context  // label-free context restored after a step's ticks

	// overload control; all nil/zero until EnableOverloadControl
	detector      *sched.OverloadDetector
	lastIO        storage.IOStats // stats at the previous step's sample
	degradedOrder []*Session      // sweep victims, oldest first; restores pop the tail
	sweptWindow   int64           // detector window of the last sweep; the next window settles
	shedRejected  int64           // Start calls rejected with ErrOverloaded
	shedDegraded  int64           // sweep degradations performed
	shedRestored  int64           // sweep restores performed
}

// engineRun is the slice of activity.GraphRun the engine schedules
// through.  Narrowing the dependency to an interface keeps the step
// path testable in isolation: TestEngineAllocsPerStep and
// BenchmarkEngineStep admit no-op runs so the measured allocations are
// the engine's own, not the graph executor's.
type engineRun interface {
	Graph() *activity.Graph
	Rate() avtime.Rate
	Ticks() int
	Err() error
	Done() bool
	NextDue() avtime.WorldTime
	CommitHorizon() avtime.WorldTime
	SetRound(int64)
	SwapObs(obs.Sink) obs.Sink
	Tick() (bool, error)
	Finish() (*activity.RunStats, error)
}

// engineShards is the fixed shard count runs are partitioned over.
// Decoupling it from the worker count keeps shard assignment stable
// across SetWorkers calls: workers pull shard jobs from a channel, so
// any pool size serves any shard population.
const engineShards = 16

// engineShardJob asks a pool worker to tick one shard's slice of the
// current due batch.
type engineShardJob struct {
	shard  int
	step   int64
	sample bool // sample stall episodes (overload control armed)
}

// engineEntry is one admitted playback.  The ticks/due/rate fields are
// the loop-maintained snapshot Sessions() reads under the engine lock:
// introspection must never call into the GraphRun itself, which the
// loop may be mid-Tick on outside the lock.
type engineEntry struct {
	id       sched.RunID
	sess     *Session
	session  string
	graph    string
	run      engineRun
	playback *Playback
	labelCtx context.Context // pprof labels, built once at admission

	rate       avtime.Rate      // immutable after Begin; cached for Sessions()
	ticks      int              // snapshot, written and read under the engine lock
	due        avtime.WorldTime // snapshot of the next due time, under the engine lock
	lastStalls int64            // stall episodes at the previous sample (loop only)

	shard int        // home shard, fixed at admission
	stage *obs.Stage // private telemetry buffer under parallel stepping

	// Tick results, written by the ticking goroutine during phase 1 and
	// read by the loop goroutine at the merge (the pool's WaitGroup
	// provides the happens-before edge).
	tickDone  bool
	tickStall int64
}

func newEngine(db *Database) *Engine {
	e := &Engine{
		db:         db,
		set:        sched.NewShardedRunSet(engineShards),
		entries:    make(map[sched.RunID]*engineEntry),
		shardBatch: make([][]*engineEntry, engineShards),
		workers:    1,
		baseCtx:    context.Background(),
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// SetWorkers bounds the engine's tick-phase worker pool; n <= 1 steps
// serially.  The output is byte-identical for any value, so it is
// purely a host-parallelism knob (Config.EngineWorkers sets it at
// Open).  Call it before admitting sessions: telemetry staging is
// decided per admission, so runs admitted while the engine was serial
// keep emitting directly and would interleave nondeterministically if
// later steps went parallel.
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.mu.Lock()
	for e.stepping {
		e.cond.Wait()
	}
	e.workers = n
	e.stopPoolLocked()
	e.mu.Unlock()
}

// Workers reports the engine's tick-phase pool bound.
func (e *Engine) Workers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.workers
}

// ensurePool makes the worker pool match e.workers, building it on
// first (or post-resize) use.  Only the loop goroutine calls it.
func (e *Engine) ensurePool(n int) {
	if e.workCh != nil && e.poolSize == n {
		return
	}
	e.stopPool()
	e.workCh = make(chan engineShardJob, engineShards)
	e.poolSize = n
	for i := 0; i < n; i++ {
		go e.poolWorker(e.workCh)
	}
}

// stopPool closes the pool; in-flight jobs have already been waited
// for (the step barrier precedes every call).
func (e *Engine) stopPool() {
	if e.workCh != nil {
		close(e.workCh)
		e.workCh = nil
		e.poolSize = 0
	}
}

// stopPoolLocked is stopPool for callers holding e.mu; the pool fields
// themselves are only ever touched between steps, so the lock is about
// caller convenience, not the channel.
func (e *Engine) stopPoolLocked() { e.stopPool() }

// poolWorker drains shard jobs until the channel closes.
func (e *Engine) poolWorker(ch chan engineShardJob) {
	for job := range ch {
		e.tickShard(job)
		e.stepWG.Done()
	}
}

// tickShard executes one shard's slice of the due batch: every run
// ticks in admission order within the shard, recording its outcome on
// its own entry.  Cross-shard ordering is free to race — runs touch
// disjoint per-run state, and all shared mid-tick structures are
// lock-protected and order-independent (see the Engine doc comment).
func (e *Engine) tickShard(job engineShardJob) {
	for _, en := range e.shardBatch[job.shard] {
		en.run.SetRound(job.step)
		pprof.SetGoroutineLabels(en.labelCtx)
		done, _ := en.run.Tick()
		en.tickDone = done
		en.tickStall = 0
		if job.sample {
			eps := en.sess.stallEpisodes()
			en.tickStall = eps - en.lastStalls
			en.lastStalls = eps
		}
	}
	pprof.SetGoroutineLabels(e.baseCtx)
}

// EnableOverloadControl arms the engine's pressure detector and
// overload response with the given policy (zero fields defaulted).
// From then on every step feeds the detector, window boundaries run
// the degradation/restore sweeps, and an Overloaded level sheds new
// Session.Start calls.  Returns the detector for inspection.
func (e *Engine) EnableOverloadControl(p sched.OverloadPolicy) *sched.OverloadDetector {
	det := sched.NewOverloadDetector(p)
	io := e.db.mediaSt.IOStats()
	e.mu.Lock()
	e.detector = det
	e.lastIO = io
	e.mu.Unlock()
	if sink := e.db.sink(); sink != nil {
		sink.SetGauge("engine.pressure.level", int64(sched.PressureNormal))
	}
	return det
}

// Pressure reports the current pressure level; Normal when overload
// control is off.
func (e *Engine) Pressure() sched.PressureLevel {
	e.mu.Lock()
	det := e.detector
	e.mu.Unlock()
	if det == nil {
		return sched.PressureNormal
	}
	return det.Level()
}

// admitCheck is the shed gate Session.Start passes through: while the
// detector reads Overloaded, new admissions are rejected with an
// *OverloadError carrying a virtual-time retry hint.  The level check,
// the shed count and the retry-hint clock read form one critical
// section: a concurrent EnableOverloadControl (detector swap) or level
// transition can no longer interleave between them, so a counted shed
// always reflects the detector that was actually consulted and the
// hint is computed from that same detector's policy.
func (e *Engine) admitCheck() error {
	e.mu.Lock()
	det := e.detector
	if det == nil || det.Level() != sched.PressureOverloaded {
		e.mu.Unlock()
		return nil
	}
	e.shedRejected++
	retry := e.db.clock.Now() + det.Policy().RetryAfter
	e.mu.Unlock()
	if sink := e.db.sink(); sink != nil {
		sink.Count("engine.shed.rejected", 1)
	}
	return &OverloadError{RetryAfter: retry}
}

// admit enters a begun run into the run set and wakes (or starts) the
// loop.  Called by Session.StartAt with the graph already started and
// the playback handle registered on the session.  The pprof label
// context is built here, once per admission, so the step path never
// constructs label sets per tick.
//
// shardKey picks the run's home shard: a non-negative key (the
// session's stripe-group hash, computed by the caller since it owns
// the session lock) maps sessions sharing a disk group to the same
// shard, a negative key takes the round-robin cursor.  Under parallel
// stepping with observability on, the run's sink is swapped for a
// private obs.Stage here — after Begin, which emitted the session's
// setup spans directly, and before the first tick.
func (e *Engine) admit(s *Session, run engineRun, p *Playback, shardKey int) {
	labels := pprof.Labels("avdb_session", s.ID(), "avdb_graph", run.Graph().Name())
	ctx := pprof.WithLabels(context.Background(), labels)
	sink := e.db.sink()
	e.mu.Lock()
	shard := shardKey % engineShards
	if shard < 0 {
		shard = e.rrShard
		e.rrShard = (e.rrShard + 1) % engineShards
	}
	due := run.NextDue()
	id := e.set.Admit(due, shard)
	en := &engineEntry{
		id:       id,
		sess:     s,
		session:  s.ID(),
		graph:    run.Graph().Name(),
		run:      run,
		playback: p,
		labelCtx: ctx,
		rate:     run.Rate(),
		due:      due,
		shard:    shard,
	}
	if sink != nil && e.workers > 1 {
		en.stage = &obs.Stage{}
		run.SwapObs(en.stage)
	}
	e.entries[id] = en
	e.admitted = append(e.admitted, id)
	if sink != nil {
		// Published inside the critical section that changed the count:
		// an interleaved admit/retire pair can no longer leave the gauge
		// at a stale value (the last publish is the last count change).
		sink.SetGauge("engine.sessions.active", int64(len(e.entries)))
	}
	if !e.running {
		e.running = true
		go e.loop()
	}
	e.cond.Broadcast()
	e.mu.Unlock()
}

// Pause holds the engine between steps: admitted runs stay in the set
// but no tick executes until Resume.  Pause waits for an in-flight step
// to finish, so after it returns no graph is mid-tick.  Tests use the
// pair to admit several sessions and release them into the same first
// step deterministically.
func (e *Engine) Pause() {
	e.mu.Lock()
	e.paused = true
	for e.stepping {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// Resume releases a paused engine.
func (e *Engine) Resume() {
	e.mu.Lock()
	e.paused = false
	e.cond.Broadcast()
	e.mu.Unlock()
}

// loop is the engine goroutine: one step per iteration, exiting when
// the run set drains.
func (e *Engine) loop() {
	for e.stepOnce() {
	}
}

// stepOnce executes one engine step and returns false when the run set
// has drained (the loop exits; a later admit restarts it).  It blocks
// while the engine is paused.  Ticks execute outside the engine lock so
// event handlers running on this goroutine may call back into the
// database (start another session, renegotiate quality) without
// deadlocking.
func (e *Engine) stepOnce() bool {
	e.mu.Lock()
	for e.paused {
		e.cond.Wait()
	}
	if e.set.Len() == 0 {
		e.running = false
		e.stopPoolLocked()
		e.cond.Broadcast()
		e.mu.Unlock()
		return false
	}
	due, ids, _ := e.set.DueBatch()
	step := e.steps
	e.steps++
	// The DueBatch buffer is owned by the run set and only valid until
	// its next call; resolve ids to entries into the engine's own
	// reusable batch buffer (and its per-shard slices) before dropping
	// the lock.
	e.stepBatch = e.stepBatch[:0]
	for i := range e.shardBatch {
		e.shardBatch[i] = e.shardBatch[i][:0]
	}
	for _, id := range ids {
		en := e.entries[id]
		e.stepBatch = append(e.stepBatch, en)
		e.shardBatch[en.shard] = append(e.shardBatch[en.shard], en)
	}
	batch := e.stepBatch
	det := e.detector
	workers := e.workers
	e.stepping = true
	e.mu.Unlock()

	sink := e.db.sink()
	if sink != nil {
		// Lag is how far the committed clock trails the step's due
		// time; it goes positive when a finishing run's drain pushed
		// the clock past other runs' schedules.
		lag := e.db.clock.Now() - due
		if lag < 0 {
			lag = 0
		}
		sink.Observe("engine.tick.lag", int64(lag))
	}

	// Phase 1 — tick every due run, all tagged with this step's service
	// round so the store batches their chunk requests into the same
	// per-disk SCAN-EDF rounds.  Serial engines walk the batch in
	// admission order on this goroutine; parallel engines hand each
	// shard's slice to the worker pool and wait at the barrier.  Either
	// way each run ticks under its admission-time pprof label context.
	if workers > 1 && len(batch) > 1 {
		e.ensurePool(workers)
		pending := 0
		for si := range e.shardBatch {
			if len(e.shardBatch[si]) > 0 {
				pending++
			}
		}
		e.stepWG.Add(pending)
		sample := det != nil
		for si := range e.shardBatch {
			if len(e.shardBatch[si]) > 0 {
				e.workCh <- engineShardJob{shard: si, step: step, sample: sample}
			}
		}
		e.stepWG.Wait()
	} else {
		for _, en := range batch {
			en.run.SetRound(step)
			pprof.SetGoroutineLabels(en.labelCtx)
			done, _ := en.run.Tick()
			en.tickDone = done
			en.tickStall = 0
			if det != nil {
				eps := en.sess.stallEpisodes()
				en.tickStall = eps - en.lastStalls
				en.lastStalls = eps
			}
		}
		if len(batch) > 0 {
			pprof.SetGoroutineLabels(e.baseCtx)
		}
	}

	// Merge — walk the batch in admission order: accumulate the stall
	// sample, replay each run's staged telemetry into the real sink
	// (re-establishing exactly the emission order a serial step would
	// have produced), and collect finished runs.  This is the commit
	// barrier that makes any worker count byte-identical to serial.
	e.retiredBuf = e.retiredBuf[:0]
	var stallDelta int64
	for _, en := range batch {
		stallDelta += en.tickStall
		if en.stage != nil {
			en.stage.Flush(sink)
		}
		if en.tickDone || en.run.Err() != nil {
			e.retiredBuf = append(e.retiredBuf, en)
		}
	}

	// Phase 2 — one clock commit for the whole step: the minimum
	// commit horizon across runs that ticked cleanly.  Runs admitted
	// but not yet ticked contribute their start time, which the clock
	// already covers, so they never drag it backwards — AdvanceTo is
	// monotone.
	horizon := avtime.WorldTime(-1)
	e.mu.Lock()
	for _, en := range e.entries {
		if en.run.Err() != nil {
			continue
		}
		if h := en.run.CommitHorizon(); horizon < 0 || h < horizon {
			horizon = h
		}
	}
	for _, en := range batch {
		// Refresh the introspection snapshot under the lock: Sessions()
		// reads these fields instead of calling into the run, which
		// this goroutine mutates outside the lock.
		en.ticks = en.run.Ticks()
		en.due = en.run.NextDue()
		if en.run.Err() == nil && !en.run.Done() {
			e.set.Reschedule(en.id, en.due)
		}
	}
	e.mu.Unlock()
	if horizon >= 0 {
		e.db.clock.AdvanceTo(horizon)
	}
	if sink != nil {
		sink.Count("engine.steps", 1)
	}

	// Phase 3 — retire finished runs: drain their gates, close spans,
	// stop nodes, complete the Playback so waiters unblock.
	for _, en := range e.retiredBuf {
		stats, err := en.run.Finish()
		if en.stage != nil {
			// Finish emits its close-out (span ends, teardown counters)
			// through the run's sink — the stage, under parallel
			// stepping.  Replay it now, at the same point a serial
			// engine would have emitted it directly.
			en.stage.Flush(sink)
		}
		e.mu.Lock()
		e.set.Remove(en.id)
		delete(e.entries, en.id)
		e.removeAdmittedLocked(en.id)
		e.finished++
		if sink != nil {
			// Under the lock for the same reason admit publishes under
			// it: the gauge sequence must match the count sequence.
			sink.SetGauge("engine.sessions.active", int64(len(e.entries)))
		}
		e.mu.Unlock()
		en.playback.complete(stats, err)
		if sink != nil {
			sink.Count("engine.runs.finished", 1)
		}
	}

	// Phase 4 — overload control: feed the detector this step's load
	// deltas and, on window boundaries, run the degradation or
	// restore sweep.  Runs outside the engine lock so the sweep may
	// take session locks (the lock order everywhere is session, then
	// engine).
	if det != nil {
		e.overloadStep(det, sink, stallDelta)
	}

	e.mu.Lock()
	e.stepping = false
	e.cond.Broadcast()
	e.mu.Unlock()
	return true
}

// overloadStep samples the per-step load deltas, feeds the detector,
// publishes transitions, and runs the window sweep.
func (e *Engine) overloadStep(det *sched.OverloadDetector, sink obs.Sink, stallDelta int64) {
	io := e.db.mediaSt.IOStats()
	e.mu.Lock()
	served := (io.Scheduled + io.Demand) - (e.lastIO.Scheduled + e.lastIO.Demand)
	missed := io.DeadlineMisses - e.lastIO.DeadlineMisses
	overruns := io.RoundsOverrun - e.lastIO.RoundsOverrun
	e.lastIO = io
	e.mu.Unlock()

	level, evaluated, changed := det.ObserveStep(served, missed, overruns, stallDelta)
	if changed && sink != nil {
		sink.SetGauge("engine.pressure.level", int64(level))
		sink.Count("engine.pressure.transitions", 1)
		if level == sched.PressureOverloaded {
			sink.Count("engine.pressure.overload", 1)
		}
	}
	if !evaluated {
		return
	}
	now := e.db.clock.Now()
	e.mu.Lock()
	settling := e.sweptWindow > 0 && det.Windows() <= e.sweptWindow+1
	e.mu.Unlock()
	switch {
	case level >= sched.PressurePressured && det.WindowDirty():
		// Sweep new victims only when the window that just closed was
		// itself dirty: while an elevated level decays through clean
		// windows, the already-shed load is sufficient.  And give each
		// sweep one full window to take effect before piling on — the
		// window straddling a sweep still carries pre-sweep misses, and
		// acting on it would punish higher classes for load the last
		// victims already gave up.
		if settling {
			return
		}
		if e.degradeSweep(level, now, sink) > 0 {
			e.mu.Lock()
			e.sweptWindow = det.Windows()
			e.mu.Unlock()
		}
	case level == sched.PressureNormal:
		e.restoreSweep(now, sink)
	}
}

// degradeCandidates lists sessions with an armed, unfired degradation
// path, lowest priority first, admission order within a class.  Session
// locks are taken only after the engine lock is dropped.  The session
// and candidate buffers are engine scratch reused sweep to sweep; only
// the loop goroutine calls this.
func (e *Engine) degradeCandidates() []*Session {
	e.mu.Lock()
	sessions := e.sessScratch[:0]
	for _, id := range e.admitted {
		if en := e.entries[id]; en.sess != nil {
			sessions = append(sessions, en.sess)
		}
	}
	e.sessScratch = sessions
	e.mu.Unlock()
	cands := e.candScratch[:0]
	for _, s := range sessions {
		if s.CanDegrade() {
			cands = append(cands, s)
		}
	}
	// Stable insertion sort by priority (shift only while strictly
	// lower), preserving admission order within a class without a
	// sort.SliceStable closure allocation.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].Priority() < cands[j-1].Priority(); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	e.candScratch = cands
	return cands
}

// degradeSweep sheds load by degrading victims: one session per window
// under Pressured, the whole lowest-priority class under Overloaded.
// Higher-priority sessions are never degraded while a lower class
// still has headroom to give.  Returns how many victims it degraded.
func (e *Engine) degradeSweep(level sched.PressureLevel, now avtime.WorldTime, sink obs.Sink) int {
	cands := e.degradeCandidates()
	if len(cands) == 0 {
		return 0
	}
	n := 1
	if level == sched.PressureOverloaded {
		// The whole lowest class present goes at once: overload means the
		// schedule is infeasible, and one victim per window is too slow.
		lowest := cands[0].Priority()
		for n < len(cands) && cands[n].Priority() == lowest {
			n++
		}
	}
	victims := 0
	for _, s := range cands[:n] {
		if err := s.degradeNow(now); err != nil {
			continue
		}
		victims++
		e.mu.Lock()
		e.degradedOrder = append(e.degradedOrder, s)
		e.shedDegraded++
		e.mu.Unlock()
		if sink != nil {
			sink.Count("engine.shed.degraded", 1)
		}
	}
	return victims
}

// restoreSweep undoes at most one degradation per clear window, most
// recently degraded first — the mirror image of the degrade order, so
// the longest-suffering (lowest-priority, earliest-victim) session is
// restored last, when the most headroom has proven stable.
func (e *Engine) restoreSweep(now avtime.WorldTime, sink obs.Sink) {
	for {
		e.mu.Lock()
		n := len(e.degradedOrder)
		var s *Session
		if n > 0 {
			s = e.degradedOrder[n-1]
		}
		e.mu.Unlock()
		if s == nil {
			return
		}
		if s.Closed() || !s.Degraded() {
			// The victim went away (closed, or restored by other means);
			// drop it and consider the next.
			e.mu.Lock()
			e.degradedOrder = e.degradedOrder[:len(e.degradedOrder)-1]
			e.mu.Unlock()
			continue
		}
		if err := s.restoreNow(now); err != nil {
			// Headroom is not back (Grow lost the race) or the path is
			// wedged; leave the victim queued and retry next window.
			return
		}
		e.mu.Lock()
		e.degradedOrder = e.degradedOrder[:len(e.degradedOrder)-1]
		e.shedRestored++
		e.mu.Unlock()
		if sink != nil {
			sink.Count("engine.shed.restored", 1)
		}
		return
	}
}

// EngineSession describes one admitted run for introspection (the
// avdbsh `sessions` command).
type EngineSession struct {
	Session  string           // owning session id
	Graph    string           // graph name
	Rate     avtime.Rate      // tick rate
	Ticks    int              // ticks executed so far
	Due      avtime.WorldTime // when the next tick is due
	State    string           // "admitted" until the first tick, then "running"
	Priority sched.Priority   // service class for overload sweeps
	Degraded bool             // running its fallback quality

	PoolHits   int64 // buffer-pool hits across the session's open streams
	PoolMisses int64 // buffer-pool misses across the session's open streams

	sess *Session // carried between the two SessionsAppend passes, then cleared
}

// Sessions lists the active engine entries in admission order.  It
// allocates a fresh slice so concurrent pollers never share a buffer;
// callers that poll at scale should use SessionsAppend with a retained
// buffer (and a cap) instead.
func (e *Engine) Sessions() []EngineSession {
	return e.SessionsAppend(nil, 0)
}

// SessionsAppend appends up to top active entries (0 = all), in
// admission order, to buf and returns the extended slice — the
// avdbsh-facing listing that stays usable at 10k sessions: the
// admission-order id list is maintained incrementally (appended at
// admit, spliced at retire), so no per-call sort happens, the cap
// bounds both the copy and the per-session lock hops, and a retained
// buf makes repeated polls allocation-free once warm.
//
// All run-derived fields come from the loop-maintained snapshot read
// under the engine lock — never from the GraphRun itself, which the
// loop may be mid-Tick on.
func (e *Engine) SessionsAppend(buf []EngineSession, top int) []EngineSession {
	start := len(buf)
	e.mu.Lock()
	n := len(e.admitted)
	if top > 0 && top < n {
		n = top
	}
	for _, id := range e.admitted[:n] {
		en := e.entries[id]
		state := "running"
		if en.ticks == 0 {
			state = "admitted"
		}
		buf = append(buf, EngineSession{
			Session: en.session,
			Graph:   en.graph,
			Rate:    en.rate,
			Ticks:   en.ticks,
			Due:     en.due,
			State:   state,
			sess:    en.sess,
		})
	}
	e.mu.Unlock()
	// Session locks are taken after the engine lock is dropped; the
	// lock order everywhere is session, then engine.
	for i := start; i < len(buf); i++ {
		if s := buf[i].sess; s != nil {
			buf[i].Priority = s.Priority()
			buf[i].Degraded = s.Degraded()
			cs := s.CacheStats()
			buf[i].PoolHits, buf[i].PoolMisses = cs.Hits, cs.Misses
			buf[i].sess = nil
		}
	}
	return buf
}

// removeAdmittedLocked splices a retired id out of the admission-order
// list; the caller holds the engine lock.  Ids are monotonic so the
// list is sorted and binary search finds the victim.
func (e *Engine) removeAdmittedLocked(id sched.RunID) {
	lo, hi := 0, len(e.admitted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if e.admitted[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(e.admitted) && e.admitted[lo] == id {
		copy(e.admitted[lo:], e.admitted[lo+1:])
		e.admitted = e.admitted[:len(e.admitted)-1]
	}
}

// EngineStats summarizes the engine's lifetime counters.
type EngineStats struct {
	Active   int   // runs currently admitted
	Steps    int64 // engine steps executed
	Finished int64 // runs retired
	Paused   bool

	// Overload control (zero while disabled).
	OverloadOn  bool
	Pressure    sched.PressureLevel
	Transitions int64 // pressure level changes
	Rejected    int64 // Start calls shed with ErrOverloaded
	Degraded    int64 // sweep degradations performed
	Restored    int64 // sweep restores performed
	DegradedNow int   // victims currently awaiting restore
}

// Stats returns the engine's counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := EngineStats{
		Active:   len(e.entries),
		Steps:    e.steps,
		Finished: e.finished,
		Paused:   e.paused,
	}
	if e.detector != nil {
		st.OverloadOn = true
		st.Pressure = e.detector.Level()
		st.Transitions = e.detector.Transitions()
		st.Rejected = e.shedRejected
		st.Degraded = e.shedDegraded
		st.Restored = e.shedRestored
		st.DegradedNow = len(e.degradedOrder)
	}
	return st
}
