package core

import (
	"testing"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/media"
	"avdb/internal/sched"
	"avdb/internal/schema"
)

// TestJukeboxArchivePlayback plays a value stored on the analog videodisc
// jukebox: the session must acquire the (exclusive) jukebox, and the
// first frame pays the disc-swap latency, after which the stream runs at
// rate.
func TestJukeboxArchivePlayback(t *testing.T) {
	db := testDB(t)
	o, err := db.NewObject("SimpleNewscast")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(o.OID(), "title", schema.String("Archive Reel")); err != nil {
		t.Fatal(err)
	}
	if err := db.SetAttr(o.OID(), "videoTrack", schema.Media(testClip(60))); err != nil {
		t.Fatal(err)
	}
	seg, err := db.PlaceMediaOnDisc(o.OID(), "videoTrack", "jukebox0", 2)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Disc() != 2 || seg.Device() != "jukebox0" {
		t.Fatalf("placement = %v", seg)
	}

	sess, err := db.Connect("archivist", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.AcquireDevice("jukebox0"); err != nil {
		t.Fatal(err)
	}
	// A second session cannot use the jukebox while we hold it.
	other, err := db.Connect("rival", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.AcquireDevice("jukebox0"); err == nil {
		t.Error("jukebox double-acquired")
	}

	reader, err := activities.NewVideoReader("lvSource", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Install(reader, sched.Resources{Buffers: 1}); err != nil {
		t.Fatal(err)
	}
	win := activities.NewVideoWindow("win", activity.AtApplication, media.VideoQuality{}, 10*avtime.Second)
	if err := sess.Install(win, sched.Resources{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Connect(reader, "out", win, "in", media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	if err := sess.BindValue(o.OID(), "videoTrack", reader, "out", media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	pb, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pb.Wait(); err != nil {
		t.Fatal(err)
	}
	if win.FramesShown() != 60 {
		t.Fatalf("frames = %d", win.FramesShown())
	}
	// First frame pays the 6s disc swap; later frames do not.
	arr := win.Arrivals()
	if arr[0] < 6*avtime.Second {
		t.Errorf("first arrival %v did not pay the disc swap", arr[0])
	}
	if late := arr[30] - 30*33333*avtime.Microsecond; late > 100*avtime.Millisecond {
		t.Errorf("steady-state frame late by %v", late)
	}
}
