package core

import (
	"testing"

	"avdb/internal/media"
	"avdb/internal/schema"
	"avdb/internal/synth"
)

func TestFindSimilarRanksByContent(t *testing.T) {
	db := testDB(t)
	store := func(title string, p synth.Pattern, seed int64) schema.OID {
		o, err := db.NewObject("SimpleNewscast")
		if err != nil {
			t.Fatal(err)
		}
		if err := db.SetAttr(o.OID(), "title", schema.String(title)); err != nil {
			t.Fatal(err)
		}
		clip := synth.Video(media.TypeRawVideo30, p, 32, 24, 8, 10, seed)
		if err := db.SetAttr(o.OID(), "videoTrack", schema.Media(clip)); err != nil {
			t.Fatal(err)
		}
		return o.OID()
	}
	bars := store("bars", synth.PatternBars, 1)
	store("noise", synth.PatternNoise, 2)
	checker := store("checker", synth.PatternChecker, 3)

	// Querying with a bars example ranks the bars clip first.
	example := synth.Video(media.TypeRawVideo30, synth.PatternBars, 32, 24, 8, 1, 9)
	f, _ := example.Frame(0)
	matches, err := db.FindSimilar("SimpleNewscast", "videoTrack", f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches = %v", matches)
	}
	if matches[0].OID != bars {
		t.Errorf("closest = %v, want bars (%v): %v", matches[0].OID, bars, matches)
	}
	if matches[0].Distance > 0.01 {
		t.Errorf("identical-pattern distance = %v", matches[0].Distance)
	}
	if matches[1].Distance <= matches[0].Distance {
		t.Error("results not ordered by distance")
	}
	// A checker example ranks checker first.
	cexample := synth.Video(media.TypeRawVideo30, synth.PatternChecker, 32, 24, 8, 1, 9)
	cf, _ := cexample.Frame(0)
	cm, err := db.FindSimilar("SimpleNewscast", "videoTrack", cf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cm[0].OID != checker {
		t.Errorf("closest to checker example = %v", cm[0].OID)
	}

	// Validation.
	if _, err := db.FindSimilar("SimpleNewscast", "videoTrack", nil, 1); err == nil {
		t.Error("nil example accepted")
	}
	if _, err := db.FindSimilar("SimpleNewscast", "videoTrack", f, 0); err == nil {
		t.Error("zero limit accepted")
	}
	if _, err := db.FindSimilar("Nope", "videoTrack", f, 1); err == nil {
		t.Error("missing class accepted")
	}
	if _, err := db.FindSimilar("SimpleNewscast", "nope", f, 1); err == nil {
		t.Error("missing attribute accepted")
	}
	if _, err := db.FindSimilar("SimpleNewscast", "title", f, 1); err == nil {
		t.Error("string attribute accepted")
	}
}
