package core

import (
	"fmt"
	"reflect"
	"testing"

	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/fault"
	"avdb/internal/media"
	"avdb/internal/netsim"
)

// engine_shard_test.go pins the PR 9 guarantee: the sharded engine's
// output is byte-identical to serial for ANY EngineWorkers count — the
// cross-session restatement of the wavefront executor's Workers
// guarantee, proven the same way the PR 5 suite proved the serial
// engine equivalent to back-to-back Graph.Run.

// TestEngineShardedDeterminism crosses EngineWorkers {1,2,4} with
// session Workers {1,2}: every combination must produce the same obs
// snapshot bytes and the same per-session RunStats as the fully serial
// engine.  Sessions are unstriped here, so shard assignment is
// round-robin; the Zipf tenancy experiment covers stripe-keyed shards.
func TestEngineShardedDeterminism(t *testing.T) {
	const sessions = 5
	run := func(engineWorkers, sessionWorkers int) (string, []*activity.RunStats) {
		db := testDB(t)
		col := db.EnableObservability()
		db.Engine().SetWorkers(engineWorkers)
		var pss []*playbackSession
		for i := 0; i < sessions; i++ {
			ps := buildPlaybackSession(t, db, fmt.Sprintf("shard-%d", i), 15+4*i)
			ps.sess.SetWorkers(sessionWorkers)
			pss = append(pss, ps)
		}
		db.Engine().Pause()
		var pbs []*Playback
		for _, ps := range pss {
			pb, err := ps.sess.Start()
			if err != nil {
				t.Fatal(err)
			}
			pbs = append(pbs, pb)
		}
		db.Engine().Resume()
		var all []*activity.RunStats
		for _, pb := range pbs {
			stats, err := pb.Wait()
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, stats)
		}
		for _, ps := range pss {
			if err := ps.sess.Close(); err != nil {
				t.Fatal(err)
			}
		}
		js, err := col.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js, all
	}

	baseSnap, baseStats := run(1, 1)
	for _, sw := range []int{1, 2} {
		for _, ew := range []int{1, 2, 4} {
			if ew == 1 && sw == 1 {
				continue
			}
			snap, stats := run(ew, sw)
			if !reflect.DeepEqual(baseStats, stats) {
				t.Errorf("EngineWorkers=%d Workers=%d: per-session RunStats diverged", ew, sw)
			}
			if snap != baseSnap {
				t.Errorf("EngineWorkers=%d Workers=%d: obs snapshots differ (%d vs %d bytes)",
					ew, sw, len(snap), len(baseSnap))
			}
		}
	}
}

// TestEngineShardedChaosDeterminism is the chaos arm the race detector
// exercises: a victim session with the full recovery stack rides out
// probabilistic transient faults, a mid-run disk outage and a link
// collapse while bystanders stream on other spindles — all under
// EngineWorkers 4, repeated, and compared byte-for-byte against the
// serial engine.  The probabilistic fault targets disk0, which exactly
// one session reads, so its RNG draws serialize inside that session's
// tick stream and stay deterministic under parallel stepping.
func TestEngineShardedChaosDeterminism(t *testing.T) {
	const frames = 30
	total := avtime.WorldTime(frames) * avtime.Second / 30

	run := func(engineWorkers int) (string, []isoOutcome) {
		db := isoDB(t, 3)
		col := db.EnableObservability()
		db.Engine().SetWorkers(engineWorkers)
		vLink := netsim.NewLink("lan-victim", 12*media.MBPerSecond, 2*avtime.Millisecond, avtime.Millisecond, 7)
		if err := db.Network().AddLink(vLink); err != nil {
			t.Fatal(err)
		}

		plan := fault.NewPlan(7)
		for _, f := range []fault.Fault{
			{Kind: fault.TransientRead, Target: "disk0", Start: 0, Dur: total / 2, Probability: 0.4},
			{Kind: fault.DeviceOutage, Target: "disk0", Start: total * 2 / 5, Dur: total / 10},
			{Kind: fault.LinkDegrade, Target: "lan-victim", Start: total / 2, Dur: total / 4, Factor: 0.25},
		} {
			if _, err := plan.Add(f); err != nil {
				t.Fatal(err)
			}
		}
		inj := fault.NewInjector(plan, db.Clock())
		db.Devices().SetFaultHook(inj)
		vLink.SetFaultHook(inj)

		victim := buildPlaybackOn(t, db, "victim", frames, "disk0", "lan-victim")
		victim.src.SetRetry(fault.DefaultRetry)
		victim.src.SetDropOnFault(true)
		b1 := buildPlaybackOn(t, db, "bystander-1", frames, "disk1", "lan0")
		b2 := buildPlaybackOn(t, db, "bystander-2", frames, "disk2", "lan0")
		all := []*playbackSession{victim, b1, b2}

		db.Engine().Pause()
		var pbs []*Playback
		for _, ps := range all {
			pb, err := ps.sess.Start()
			if err != nil {
				t.Fatal(err)
			}
			pbs = append(pbs, pb)
		}
		db.Engine().Resume()

		outs := make([]isoOutcome, len(all))
		for i, pb := range pbs {
			_, err := pb.Wait()
			outs[i] = isoOutcome{Shown: all[i].win.FramesShown(), Lost: all[i].src.FramesLost()}
			if err != nil {
				outs[i].Err = err.Error()
			}
		}
		for _, ps := range all {
			ps.sess.Close()
		}
		js, err := col.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js, outs
	}

	serialSnap, serialOuts := run(1)
	if serialOuts[0].Err != "" {
		t.Errorf("armed victim died: %v", serialOuts[0].Err)
	}
	for i := 1; i < 3; i++ {
		if serialOuts[i] != (isoOutcome{Shown: frames}) {
			t.Errorf("bystander %d touched by victim's faults: %+v", i, serialOuts[i])
		}
	}
	for rep := 0; rep < 2; rep++ {
		snap, outs := run(4)
		if !reflect.DeepEqual(serialOuts, outs) {
			t.Errorf("EngineWorkers=4 rep %d: outcomes diverged: %+v vs %+v", rep, outs, serialOuts)
		}
		if snap != serialSnap {
			t.Errorf("EngineWorkers=4 rep %d: obs snapshot differs from serial (%d vs %d bytes)",
				rep, len(snap), len(serialSnap))
		}
	}
}

// TestEngineSessionsTop covers the capped listing avdbsh uses at scale:
// SessionsAppend returns the first N in admission order, reuses the
// caller's buffer, and a zero cap returns everything.
func TestEngineSessionsTop(t *testing.T) {
	db := testDB(t)
	eng := db.Engine()
	var pss []*playbackSession
	var pbs []*Playback
	eng.Pause()
	for i := 0; i < 5; i++ {
		ps := buildPlaybackSession(t, db, fmt.Sprintf("top-%d", i), 10)
		pb, err := ps.sess.Start()
		if err != nil {
			t.Fatal(err)
		}
		pss = append(pss, ps)
		pbs = append(pbs, pb)
	}

	buf := eng.SessionsAppend(nil, 3)
	if len(buf) != 3 {
		t.Fatalf("SessionsAppend(top=3) = %d entries, want 3", len(buf))
	}
	for i, es := range buf {
		if want := pss[i].sess.ID(); es.Session != want {
			t.Errorf("entry %d = %q, want %q (admission order)", i, es.Session, want)
		}
	}
	// Reuse: truncating and re-filling the same buffer must not grow it.
	buf = buf[:0]
	capBefore := cap(buf)
	buf = eng.SessionsAppend(buf, 3)
	if cap(buf) != capBefore {
		t.Errorf("retained buffer reallocated: cap %d -> %d", capBefore, cap(buf))
	}
	if all := eng.SessionsAppend(nil, 0); len(all) != 5 {
		t.Errorf("SessionsAppend(top=0) = %d entries, want 5", len(all))
	}
	if all := eng.SessionsAppend(nil, 99); len(all) != 5 {
		t.Errorf("SessionsAppend(top=99) = %d entries, want 5", len(all))
	}

	eng.Resume()
	for i, pb := range pbs {
		pb.Wait()
		pss[i].sess.Close()
	}
}
