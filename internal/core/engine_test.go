package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/media"
	"avdb/internal/sched"
)

// playbackSession wires one VideoReader → VideoWindow stream over its
// own newscast object, ready to Start.
type playbackSession struct {
	sess *Session
	src  *activities.VideoReader
	win  *activities.VideoWindow
}

func buildPlaybackSession(t testing.TB, db *Database, client string, frames int) *playbackSession {
	t.Helper()
	oid := storeNewscast(t, db, client+"-clip", frames)
	q, err := media.ParseVideoQuality(testQualityStr)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := db.Connect(client, "lan0")
	if err != nil {
		t.Fatal(err)
	}
	src, err := activities.NewVideoReader("src", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Install(src, sched.Resources{Buffers: 1}); err != nil {
		t.Fatal(err)
	}
	win := activities.NewVideoWindow("win", activity.AtApplication, q, avtime.Second)
	if err := sess.Install(win, sched.Resources{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Connect(src, "out", win, "in", q.DataRate()); err != nil {
		t.Fatal(err)
	}
	if err := sess.BindValue(oid, "videoTrack", src, "out", media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	return &playbackSession{sess: sess, src: src, win: win}
}

// TestEngineSharedClockMonotonic is the regression for the pre-refactor
// hazard: every Session.StartAt used to spawn a private Graph.Run
// goroutine, so two concurrent playbacks advanced the shared virtual
// clock from two goroutines at once — each stream could observe the
// clock jumping backwards relative to its own schedule, differently on
// every run.  Under the engine both graphs tick on one loop, so the
// observed clock sequence is monotonic and identical across repeats.
func TestEngineSharedClockMonotonic(t *testing.T) {
	observe := func() []avtime.WorldTime {
		db := testDB(t)
		a := buildPlaybackSession(t, db, "client-a", 40)
		b := buildPlaybackSession(t, db, "client-b", 25)
		defer a.sess.Close()
		defer b.sess.Close()

		// Handlers run on the engine goroutine, so appends are serialized;
		// pb.Wait() below gives the test goroutine the happens-after edge.
		var seen []avtime.WorldTime
		record := func(activity.EventInfo) { seen = append(seen, db.Clock().Now()) }
		for _, ps := range []*playbackSession{a, b} {
			if err := ps.src.Catch(activity.EventEachFrame, record); err != nil {
				t.Fatal(err)
			}
		}

		// Pause/Resume releases both admissions into the same first step,
		// making the interleave deterministic for the repeat comparison.
		db.Engine().Pause()
		pbA, err := a.sess.Start()
		if err != nil {
			t.Fatal(err)
		}
		pbB, err := b.sess.Start()
		if err != nil {
			t.Fatal(err)
		}
		db.Engine().Resume()
		if _, err := pbA.Wait(); err != nil {
			t.Fatal(err)
		}
		if _, err := pbB.Wait(); err != nil {
			t.Fatal(err)
		}
		return seen
	}

	first := observe()
	if len(first) != 40+25 {
		t.Fatalf("observed %d frame events, want %d", len(first), 40+25)
	}
	for i := 1; i < len(first); i++ {
		if first[i] < first[i-1] {
			t.Fatalf("clock went backwards at event %d: %v -> %v", i, first[i-1], first[i])
		}
	}
	second := observe()
	if !reflect.DeepEqual(first, second) {
		t.Error("two identical concurrent runs observed different clock sequences")
	}
}

// TestEngineCrossSessionDeterminism pins N concurrent sessions to one
// byte stream: for every Workers setting the obs snapshot (spans,
// metrics, engine counters) and each session's RunStats must be
// identical.
func TestEngineCrossSessionDeterminism(t *testing.T) {
	const sessions = 3
	run := func(workers int) (string, []*activity.RunStats) {
		db := testDB(t)
		col := db.EnableObservability()
		var pss []*playbackSession
		for i := 0; i < sessions; i++ {
			ps := buildPlaybackSession(t, db, "client-"+string(rune('a'+i)), 20+5*i)
			ps.sess.SetWorkers(workers)
			pss = append(pss, ps)
		}
		db.Engine().Pause()
		var pbs []*Playback
		for _, ps := range pss {
			pb, err := ps.sess.Start()
			if err != nil {
				t.Fatal(err)
			}
			pbs = append(pbs, pb)
		}
		db.Engine().Resume()
		var all []*activity.RunStats
		for _, pb := range pbs {
			stats, err := pb.Wait()
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, stats)
		}
		for _, ps := range pss {
			if err := ps.sess.Close(); err != nil {
				t.Fatal(err)
			}
		}
		js, err := col.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js, all
	}

	baseSnap, baseStats := run(1)
	for _, workers := range []int{2, 4} {
		snap, stats := run(workers)
		if !reflect.DeepEqual(baseStats, stats) {
			t.Errorf("workers=%d: per-session RunStats diverged", workers)
		}
		if snap != baseSnap {
			t.Errorf("workers=%d: obs snapshots differ (%d vs %d bytes)", workers, len(snap), len(baseSnap))
		}
	}
}

// TestEngineMultiRateSessions runs two sessions at different tick rates
// on the one clock: the engine steps at each run's own next-due time
// (no LCM grid), and both streams complete with their full frame
// counts.
func TestEngineMultiRateSessions(t *testing.T) {
	db := testDB(t)
	fast := buildPlaybackSession(t, db, "fast", 30)
	slow := buildPlaybackSession(t, db, "slow", 15)
	defer fast.sess.Close()
	defer slow.sess.Close()

	db.Engine().Pause()
	pbF, err := fast.sess.StartAt(avtime.RateVideo30, 0)
	if err != nil {
		t.Fatal(err)
	}
	pbS, err := slow.sess.StartAt(avtime.MakeRate(15, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	db.Engine().Resume()

	statsF, err := pbF.Wait()
	if err != nil {
		t.Fatal(err)
	}
	statsS, err := pbS.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if statsF.Ticks != 30 || fast.win.FramesShown() != 30 {
		t.Errorf("fast: ticks=%d shown=%d, want 30/30", statsF.Ticks, fast.win.FramesShown())
	}
	if statsS.Ticks != 15 || slow.win.FramesShown() != 15 {
		t.Errorf("slow: ticks=%d shown=%d, want 15/15", statsS.Ticks, slow.win.FramesShown())
	}
	// The 15Hz stream spans the same second the 30Hz stream does; the
	// shared clock must have covered both schedules.
	if now := db.Clock().Now(); now < avtime.Second {
		t.Errorf("final clock %v does not cover the 1s schedules", now)
	}
}

// stopBombSink is a sink whose teardown always fails, for exercising
// Stop-error reporting through Playback and Session.Close.
type stopBombSink struct {
	*activity.Base
	fail error
}

func newStopBombSink(name string, fail error) *stopBombSink {
	s := &stopBombSink{Base: activity.NewBase(name, "StopBomb", activity.AtApplication), fail: fail}
	s.AddPort("in", activity.In, media.TypeRawVideo30)
	return s
}

func (s *stopBombSink) Tick(*activity.TickContext) error { return nil }

func (s *stopBombSink) Stop() error {
	_ = s.Base.Stop()
	return s.fail
}

// TestPlaybackStopErrorReporting covers the satellite fix: Playback.Stop
// used to discard the error Graph.Stop returns; now it surfaces the
// teardown failure and Session.Close folds it into its report.
func TestPlaybackStopErrorReporting(t *testing.T) {
	errBoom := errors.New("dac wedged on stop")
	db := testDB(t)
	oid := storeNewscast(t, db, "clip", 5)
	sess, err := db.Connect("app", "lan0")
	if err != nil {
		t.Fatal(err)
	}
	src, err := activities.NewVideoReader("src", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Install(src, sched.Resources{}); err != nil {
		t.Fatal(err)
	}
	bomb := newStopBombSink("sink", errBoom)
	if err := sess.Install(bomb, sched.Resources{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Connect(src, "out", bomb, "in", media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	if err := sess.BindValue(oid, "videoTrack", src, "out", media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	pb, err := sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pb.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// The engine's retirement pass already saw the teardown failure.
	if !errors.Is(stats.StopErr, errBoom) {
		t.Errorf("stats.StopErr = %v, want wrapped %v", stats.StopErr, errBoom)
	}
	// An explicit client Stop reports it too (the old API dropped it).
	if err := pb.Stop(); !errors.Is(err, errBoom) {
		t.Errorf("Playback.Stop = %v, want wrapped %v", err, errBoom)
	}
	// And Close folds the failure into its report.
	if err := sess.Close(); !errors.Is(err, errBoom) {
		t.Errorf("Session.Close = %v, want wrapped %v", err, errBoom)
	}
}

// TestEngineIntrospection checks the run-set listing avdbsh's `sessions`
// command renders: entries visible with their state while admitted, the
// counters advancing as runs retire.
func TestEngineIntrospection(t *testing.T) {
	db := testDB(t)
	a := buildPlaybackSession(t, db, "client-a", 10)
	b := buildPlaybackSession(t, db, "client-b", 20)
	defer a.sess.Close()
	defer b.sess.Close()

	eng := db.Engine()
	eng.Pause()
	pbA, err := a.sess.Start()
	if err != nil {
		t.Fatal(err)
	}
	pbB, err := b.sess.StartAt(avtime.MakeRate(15, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	list := eng.Sessions()
	if len(list) != 2 {
		t.Fatalf("Sessions() = %d entries, want 2", len(list))
	}
	if list[0].Session != a.sess.ID() || list[1].Session != b.sess.ID() {
		t.Errorf("admission order lost: %q then %q", list[0].Session, list[1].Session)
	}
	for i, es := range list {
		if es.State != "admitted" || es.Ticks != 0 {
			t.Errorf("entry %d before resume: state=%q ticks=%d", i, es.State, es.Ticks)
		}
	}
	if list[1].Rate != avtime.MakeRate(15, 1) {
		t.Errorf("entry 1 rate = %v, want 15Hz", list[1].Rate)
	}
	if st := eng.Stats(); !st.Paused || st.Active != 2 {
		t.Errorf("paused stats = %+v", st)
	}
	eng.Resume()
	if _, err := pbA.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := pbB.Wait(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := eng.Stats()
		if st.Active == 0 && st.Finished >= 2 {
			if st.Steps < 20 {
				t.Errorf("engine ran %d steps, want >= 20", st.Steps)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine never drained: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if len(eng.Sessions()) != 0 {
		t.Errorf("Sessions() after drain = %v", eng.Sessions())
	}
}

// BenchmarkEngineSessions measures the host cost of the shared run loop
// as concurrent sessions scale: each iteration admits n playbacks into
// one engine step stream and drains them.
func BenchmarkEngineSessions(b *testing.B) {
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("sessions-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := testDB(b)
				var pss []*playbackSession
				for j := 0; j < n; j++ {
					pss = append(pss, buildPlaybackSession(b, db, fmt.Sprintf("client-%d", j), 30))
				}
				b.StartTimer()
				db.Engine().Pause()
				var pbs []*Playback
				for _, ps := range pss {
					pb, err := ps.sess.Start()
					if err != nil {
						b.Fatal(err)
					}
					pbs = append(pbs, pb)
				}
				db.Engine().Resume()
				for _, pb := range pbs {
					if _, err := pb.Wait(); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				for _, ps := range pss {
					ps.sess.Close()
				}
				b.StartTimer()
			}
		})
	}
}
