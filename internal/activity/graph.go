package activity

import (
	"errors"
	"fmt"
	"sync"

	"avdb/internal/avtime"
	"avdb/internal/netsim"
	"avdb/internal/obs"
	"avdb/internal/sched"
)

// Connection links an Out port to an In port — the paper's flow-
// composition rule 1: "an 'in' port can be connected to an 'out' port
// provided they are of the same data type."  A connection may ride a
// reserved network connection, in which case every chunk crossing it pays
// (and accounts) the transfer time.
type Connection struct {
	from     Activity
	fromPort *Port
	to       Activity
	toPort   *Port
	net      *netsim.Conn
	label    string // precomputed String(), reused for span names

	mu        sync.Mutex
	failSoft  bool
	bytes     int64
	chunks    int64
	dropped   int64
	corrupted int64
	failures  int64
}

// SetFailSoft chooses the connection's transfer-failure policy.  A
// fail-soft connection absorbs failed transfers — the chunk is lost,
// the failure is counted and surfaced as an EventFault on the receiving
// activity, and the stream continues.  A fail-hard connection (the
// default) aborts the run on the first failed transfer.
func (c *Connection) SetFailSoft(on bool) {
	c.mu.Lock()
	c.failSoft = on
	c.mu.Unlock()
}

// Dropped reports chunks lost in flight by injected faults.
func (c *Connection) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// CorruptedCount reports chunks delivered with damaged payloads.
func (c *Connection) CorruptedCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.corrupted
}

// Failures reports transfers that failed outright (link down, closed).
func (c *Connection) Failures() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failures
}

// From returns the upstream activity and port.
func (c *Connection) From() (Activity, *Port) { return c.from, c.fromPort }

// To returns the downstream activity and port.
func (c *Connection) To() (Activity, *Port) { return c.to, c.toPort }

// Network returns the reserved network connection, if any.
func (c *Connection) Network() *netsim.Conn { return c.net }

// BytesCarried reports the total payload bytes moved over the connection.
func (c *Connection) BytesCarried() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Chunks reports the number of chunks moved.
func (c *Connection) Chunks() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.chunks
}

// String formats the connection.
func (c *Connection) String() string { return c.label }

// outcome describes how one delivery attempt went.
type outcome struct {
	chunk     *Chunk // nil when nothing arrived
	dropped   bool   // lost in flight
	failed    bool   // transfer failed (fail-soft absorbed it)
	corrupted bool   // arrived damaged
	err       error  // fatal (fail-hard) failure
}

// deliver moves a chunk across the connection, returning the copy that
// arrives downstream with transfer latency applied — or the fault that
// kept it from arriving.
func (c *Connection) deliver(in *Chunk) outcome {
	out := *in
	if c.net != nil {
		d, err := c.net.TransferChunk(in.Size())
		if err != nil {
			c.mu.Lock()
			c.failures++
			soft := c.failSoft
			c.mu.Unlock()
			if soft {
				return outcome{failed: true}
			}
			return outcome{err: fmt.Errorf("activity: %v: %w", c, err)}
		}
		if d.Dropped {
			c.mu.Lock()
			c.dropped++
			c.mu.Unlock()
			return outcome{dropped: true}
		}
		if d.Corrupted {
			out.Corrupted = true
		}
		out.Arrived += d.Time
		propagateExtra(&out, d.Time)
	}
	c.mu.Lock()
	c.bytes += in.Size()
	c.chunks++
	if out.Corrupted {
		c.corrupted++
	}
	c.mu.Unlock()
	return outcome{chunk: &out, corrupted: out.Corrupted}
}

// Graph is an activity graph: the unit of flow composition.  Nodes are
// activities; edges are typed port connections.  A graph runs tick by
// tick against a virtual clock.
type Graph struct {
	name string

	mu    sync.Mutex
	nodes map[string]Activity
	order []string
	conns []*Connection
}

// NewGraph returns an empty graph.
func NewGraph(name string) *Graph {
	return &Graph{name: name, nodes: make(map[string]Activity)}
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// Add inserts an activity; duplicate names are an error.
func (g *Graph) Add(a Activity) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.nodes[a.Name()]; dup {
		return fmt.Errorf("activity: graph %q already has node %q", g.name, a.Name())
	}
	g.nodes[a.Name()] = a
	g.order = append(g.order, a.Name())
	return nil
}

// Node returns the activity with the given name.
func (g *Graph) Node(name string) (Activity, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	a, ok := g.nodes[name]
	return a, ok
}

// Nodes returns the activities in insertion order.
func (g *Graph) Nodes() []Activity {
	g.mu.Lock()
	defer g.mu.Unlock()
	ns := make([]Activity, len(g.order))
	for i, n := range g.order {
		ns[i] = g.nodes[n]
	}
	return ns
}

// Connections returns the graph's connections.
func (g *Graph) Connections() []*Connection {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Connection(nil), g.conns...)
}

// Connect wires from's Out port to to's In port.
func (g *Graph) Connect(from Activity, outPort string, to Activity, inPort string) (*Connection, error) {
	return g.ConnectVia(from, outPort, to, inPort, nil)
}

// ConnectVia wires a connection that rides a reserved network connection.
func (g *Graph) ConnectVia(from Activity, outPort string, to Activity, inPort string, nc *netsim.Conn) (*Connection, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[from.Name()]; !ok {
		return nil, fmt.Errorf("activity: graph %q does not contain %q", g.name, from.Name())
	}
	if _, ok := g.nodes[to.Name()]; !ok {
		return nil, fmt.Errorf("activity: graph %q does not contain %q", g.name, to.Name())
	}
	fp, ok := from.Port(outPort)
	if !ok {
		return nil, fmt.Errorf("activity: %s has no port %q", from.Name(), outPort)
	}
	tp, ok := to.Port(inPort)
	if !ok {
		return nil, fmt.Errorf("activity: %s has no port %q", to.Name(), inPort)
	}
	if fp.Dir() != Out {
		return nil, fmt.Errorf("activity: %v is not an out port", fp)
	}
	if tp.Dir() != In {
		return nil, fmt.Errorf("activity: %v is not an in port", tp)
	}
	if fp.Type() != tp.Type() {
		return nil, fmt.Errorf("activity: port types differ: %v vs %v", fp, tp)
	}
	for _, c := range g.conns {
		if c.toPort == tp {
			return nil, fmt.Errorf("activity: %v already connected", tp)
		}
	}
	conn := &Connection{
		from: from, fromPort: fp, to: to, toPort: tp, net: nc,
		label: fmt.Sprintf("%s -> %s", fp, tp),
	}
	g.conns = append(g.conns, conn)
	return conn, nil
}

// topo returns the activities in topological order, erroring on cycles.
func (g *Graph) topo() ([]Activity, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	indeg := make(map[string]int, len(g.nodes))
	adj := make(map[string][]string, len(g.nodes))
	for n := range g.nodes {
		indeg[n] = 0
	}
	for _, c := range g.conns {
		adj[c.from.Name()] = append(adj[c.from.Name()], c.to.Name())
		indeg[c.to.Name()]++
	}
	var queue []string
	for _, n := range g.order { // insertion order keeps runs deterministic
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	out := make([]Activity, 0, len(g.nodes))
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, g.nodes[n])
		for _, m := range adj[n] {
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if len(out) != len(g.nodes) {
		return nil, fmt.Errorf("activity: graph %q contains a cycle", g.name)
	}
	return out, nil
}

// Start starts every node in the graph.
func (g *Graph) Start() error {
	for _, a := range g.Nodes() {
		if err := a.Start(); err != nil {
			return err
		}
	}
	return nil
}

// Stop stops every node in the graph.  Per-node Stop errors are
// collected and joined rather than discarded, so a failed teardown is
// visible to the caller; every node is stopped regardless.
func (g *Graph) Stop() error {
	var errs []error
	for _, a := range g.Nodes() {
		if err := a.Stop(); err != nil {
			errs = append(errs, fmt.Errorf("activity: stopping %s: %w", a.Name(), err))
		}
	}
	return errors.Join(errs...)
}

// RunConfig parameterizes one graph run.
type RunConfig struct {
	Clock    *sched.VirtualClock // required
	Rate     avtime.Rate         // tick rate; defaults to 30Hz
	MaxTicks int                 // safety bound; defaults to 10 million

	// Workers bounds the wavefront executor's pool: activities in the
	// same dependency level tick concurrently on up to this many lanes.
	// Zero (the default) means GOMAXPROCS; one forces serial execution.
	// Either way the run's RunStats and observability output are
	// byte-identical — see executor.go.
	Workers int

	// Obs, when non-nil, receives a playback span covering the run with
	// nested activity, connection and chunk spans, plus the stream.* and
	// sched.* metrics.  ObsParent nests the playback span under an
	// enclosing span (e.g. a session).
	Obs       obs.Sink
	ObsParent obs.SpanID
}

// RunStats summarizes a completed run.
type RunStats struct {
	Ticks      int              // scheduling intervals executed
	Elapsed    avtime.WorldTime // world time the run spanned
	Chunks     int64            // chunks delivered over connections
	BytesMoved int64            // payload bytes delivered over connections

	// LastArrival is the latest chunk arrival the run observed.  The
	// final clock reading is guaranteed to cover it: a tail chunk whose
	// accumulated latency lands past the last tick is drained into
	// Elapsed rather than silently cut off.
	LastArrival avtime.WorldTime

	// Fault accounting.
	ChunksDropped    int64 // chunks lost in flight
	ChunksCorrupted  int64 // chunks delivered with damaged payloads
	TransferFailures int64 // failed transfers absorbed by fail-soft connections

	// StopErr carries the joined per-node Stop errors from the run's
	// teardown, so a failed teardown isn't invisible to callers that
	// only look at stats.
	StopErr error
}

// Run executes the graph until every source has exhausted its stream (or
// every node has stopped), advancing the clock one tick at a time.  Nodes
// must have been started; Run returns immediately if nothing is running.
//
// Run is the single-graph driver over the resumable state machine in
// run.go: Begin, then Tick/Commit until done, then Finish.  The
// multi-session engine (internal/core) drives the same machine but
// interleaves ticks from several graphs before each clock commit.
func (g *Graph) Run(cfg RunConfig) (*RunStats, error) {
	r, err := g.Begin(cfg)
	if err != nil {
		return nil, err
	}
	for {
		done, err := r.Tick()
		if err != nil {
			break
		}
		r.Commit()
		if done {
			break
		}
	}
	return r.Finish()
}

// sourcesFinished reports whether no source activity remains started.
func (g *Graph) sourcesFinished() bool {
	for _, a := range g.Nodes() {
		if a.Kind() == KindSource && a.State() == StateStarted {
			return false
		}
	}
	return true
}

// eventEmitter is satisfied by *Base and therefore by every concrete
// activity.
type eventEmitter interface {
	Emit(EventInfo)
}

// emitFault surfaces a fault on the receiving activity's event
// interface; activities that have not declared EventFault simply have
// no handlers and the emit is a no-op.
func emitFault(a Activity, info EventInfo) {
	if em, ok := a.(eventEmitter); ok {
		em.Emit(info)
	}
}

// latencySampler is satisfied by *Base and therefore by every concrete
// activity.
type latencySampler interface {
	SampleLatency() avtime.WorldTime
}

func sampleLatency(a Activity) avtime.WorldTime {
	if ls, ok := a.(latencySampler); ok {
		return ls.SampleLatency()
	}
	return 0
}

// propagateExtra adds a shared path delay to every part of a multiplexed
// payload, keeping part arrival times consistent with the outer chunk's.
//
// The shift is copy-on-write: chunk copies made by deliver (and by tee
// activities fanning one output to several ports) share the same
// *MultiPayload, so shifting the shared parts in place would apply one
// branch's latency to every branch — double-counting on fan-out.  The
// chunk instead gets its own shifted clone and the shared original is
// left untouched.
func propagateExtra(c *Chunk, extra avtime.WorldTime) {
	if extra == 0 {
		return
	}
	if mp, ok := c.Payload.(*MultiPayload); ok {
		c.Payload = mp.cloneShifted(extra)
	}
}

// MaxArrival reports the latest arrival time among chunks, for
// transformers that merge inputs.
func MaxArrival(chunks ...*Chunk) avtime.WorldTime {
	var worst avtime.WorldTime
	for _, c := range chunks {
		if c != nil && c.Arrived > worst {
			worst = c.Arrived
		}
	}
	return worst
}
