package activity

import (
	"fmt"
	"sort"
	"sync"

	"avdb/internal/avtime"
	"avdb/internal/media"
	"avdb/internal/sched"
)

// Base supplies the MediaActivity behavior shared by every concrete
// activity class: port and event bookkeeping, bindings, cueing, the
// start/stop state machine and event dispatch.  Concrete activities embed
// *Base and implement Tick.
type Base struct {
	name  string
	class string
	loc   Location

	mu        sync.Mutex
	ports     map[string]*Port
	portOrder []string
	events    map[Event]bool
	handlers  map[Event][]Handler
	bindings  map[string]media.Value
	latency   *sched.Latency
	state     State
	cue       avtime.WorldTime
}

// NewBase returns an activity base.  The name identifies the instance
// within a graph; the class is the activity class name of Table 1.
func NewBase(name, class string, loc Location) *Base {
	if name == "" || class == "" {
		panic("activity: activity needs a name and a class")
	}
	b := &Base{
		name: name, class: class, loc: loc,
		ports:    make(map[string]*Port),
		events:   make(map[Event]bool),
		handlers: make(map[Event][]Handler),
		bindings: make(map[string]media.Value),
	}
	b.DeclareEvents(EventStarted, EventStopped)
	return b
}

// AddPort declares a port at construction time.  Duplicate names panic:
// the port set is part of the activity class definition, not runtime
// state.
func (b *Base) AddPort(name string, dir Dir, typ *media.Type) *Port {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.ports[name]; dup {
		panic(fmt.Sprintf("activity: %s: duplicate port %q", b.name, name))
	}
	p := &Port{name: name, dir: dir, typ: typ, owner: b.name}
	b.ports[name] = p
	b.portOrder = append(b.portOrder, name)
	return p
}

// DeclareEvents adds events to the activity's event set.
func (b *Base) DeclareEvents(evs ...Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, e := range evs {
		b.events[e] = true
	}
}

// SetLatency attaches a processing-latency model; nil means instantaneous.
func (b *Base) SetLatency(l *sched.Latency) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.latency = l
}

// SampleLatency draws one processing delay (zero without a model).
func (b *Base) SampleLatency() avtime.WorldTime {
	b.mu.Lock()
	l := b.latency
	b.mu.Unlock()
	if l == nil {
		return 0
	}
	return l.Sample()
}

// Name implements Activity.
func (b *Base) Name() string { return b.name }

// Class implements Activity.
func (b *Base) Class() string { return b.class }

// Location implements Activity.
func (b *Base) Location() Location { return b.loc }

// Kind implements Activity, classifying by port directions.
func (b *Base) Kind() ActivityKind {
	b.mu.Lock()
	defer b.mu.Unlock()
	var in, out bool
	for _, p := range b.ports {
		switch p.dir {
		case In:
			in = true
		case Out:
			out = true
		}
	}
	switch {
	case in && out:
		return KindTransformer
	case in:
		return KindSink
	default:
		return KindSource
	}
}

// Ports implements Activity.
func (b *Base) Ports() []*Port {
	b.mu.Lock()
	defer b.mu.Unlock()
	ps := make([]*Port, len(b.portOrder))
	for i, n := range b.portOrder {
		ps[i] = b.ports[n]
	}
	return ps
}

// Port implements Activity.
func (b *Base) Port(name string) (*Port, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.ports[name]
	return p, ok
}

// Events implements Activity.
func (b *Base) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	evs := make([]Event, 0, len(b.events))
	for e := range b.events {
		evs = append(evs, e)
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i] < evs[j] })
	return evs
}

// Bind implements Activity.
func (b *Base) Bind(v media.Value, port string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.ports[port]
	if !ok {
		return fmt.Errorf("activity: %s has no port %q", b.name, port)
	}
	if v.Type() != p.typ {
		return fmt.Errorf("activity: cannot bind %s value to port %v", v.Type(), p)
	}
	b.bindings[port] = v
	return nil
}

// Binding implements Activity.
func (b *Base) Binding(port string) (media.Value, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.bindings[port]
	return v, ok
}

// Cue implements Activity.  Cueing a running activity is an error; the
// client stops it first.
func (b *Base) Cue(w avtime.WorldTime) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateStarted {
		return fmt.Errorf("activity: %s: cue while started", b.name)
	}
	if w < 0 {
		return fmt.Errorf("activity: %s: cue to negative time %v", b.name, w)
	}
	b.cue = w
	return nil
}

// CuePoint reports the current cue position.
func (b *Base) CuePoint() avtime.WorldTime {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cue
}

// Start implements Activity.
func (b *Base) Start() error {
	b.mu.Lock()
	if b.state == StateStarted {
		b.mu.Unlock()
		return fmt.Errorf("activity: %s already started", b.name)
	}
	b.state = StateStarted
	b.mu.Unlock()
	b.Emit(EventInfo{Event: EventStarted, Activity: b.name})
	return nil
}

// Stop implements Activity.  Stopping an activity that is not running is
// a no-op: the client may race a stop against natural completion.
func (b *Base) Stop() error {
	b.mu.Lock()
	if b.state != StateStarted {
		b.mu.Unlock()
		return nil
	}
	b.state = StateStopped
	b.mu.Unlock()
	b.Emit(EventInfo{Event: EventStopped, Activity: b.name})
	return nil
}

// Catch implements Activity.
func (b *Base) Catch(e Event, h Handler) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.events[e] {
		return fmt.Errorf("activity: %s does not generate event %q", b.name, e)
	}
	if h == nil {
		return fmt.Errorf("activity: nil handler for event %q", e)
	}
	b.handlers[e] = append(b.handlers[e], h)
	return nil
}

// Emit delivers an event to every caught handler.
func (b *Base) Emit(info EventInfo) {
	b.mu.Lock()
	hs := append([]Handler(nil), b.handlers[info.Event]...)
	b.mu.Unlock()
	if info.Activity == "" {
		info.Activity = b.name
	}
	for _, h := range hs {
		h(info)
	}
}

// State implements Activity.
func (b *Base) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// MarkDone transitions a started activity to Done (sources call this when
// their bound value is exhausted).
func (b *Base) MarkDone() {
	b.mu.Lock()
	if b.state == StateStarted {
		b.state = StateDone
	}
	b.mu.Unlock()
}

// Reset returns a stopped or done activity to idle for reuse.
func (b *Base) Reset() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateStarted {
		return fmt.Errorf("activity: %s: reset while started", b.name)
	}
	b.state = StateIdle
	b.cue = 0
	return nil
}

// TickContext carries one scheduling interval through an activity's Tick:
// the chunks that arrived on its In ports and the chunks it emits on its
// Out ports.
type TickContext struct {
	Now      avtime.WorldTime // scheduled tick time
	Seq      int              // tick number since graph start
	Interval avtime.Interval  // world-time span the tick covers

	// Round is the storage service round this tick's chunk requests
	// belong to.  A standalone Graph.Run numbers rounds by Seq; under the
	// multi-session engine every graph ticked in the same engine step
	// shares one round, so the per-disk SCAN-EDF batches span sessions.
	Round int64

	in  map[string]*Chunk
	out map[string]*Chunk
}

// NewTickContext returns a context for one tick; the graph runner is the
// usual constructor.
func NewTickContext(now avtime.WorldTime, seq int, iv avtime.Interval) *TickContext {
	return &TickContext{Now: now, Seq: seq, Interval: iv, Round: int64(seq), in: make(map[string]*Chunk), out: make(map[string]*Chunk)}
}

// In returns the chunk delivered to the named In port this tick, or nil.
func (tc *TickContext) In(port string) *Chunk { return tc.in[port] }

// SetIn places a chunk on an In port (the graph runner's side).
func (tc *TickContext) SetIn(port string, c *Chunk) { tc.in[port] = c }

// Emit places a chunk on an Out port.
func (tc *TickContext) Emit(port string, c *Chunk) { tc.out[port] = c }

// Out returns the chunk emitted on the named Out port this tick, or nil.
func (tc *TickContext) Out(port string) *Chunk { return tc.out[port] }

// Outputs returns the emitted chunks by port name.
func (tc *TickContext) Outputs() map[string]*Chunk { return tc.out }
