package activity

import (
	"errors"
	"fmt"
	"sync"

	"avdb/internal/avtime"
	"avdb/internal/media"
	"avdb/internal/sched"
)

// MultiPayload is the element carried by a multiplexed composite stream:
// one chunk per track, bundled so that temporally correlated tracks cross
// a single connection together (the paper's single arrow between the
// MultiSource and MultiSink composites in Fig. 3).
type MultiPayload struct {
	Parts map[string]*Chunk // track name -> the track's chunk this tick
}

// ElementKind reports media.KindMulti.
func (m *MultiPayload) ElementKind() media.Kind { return media.KindMulti }

// Size reports the total payload size of all parts.
func (m *MultiPayload) Size() int64 {
	var n int64
	for _, c := range m.Parts {
		n += c.Size()
	}
	return n
}

// Clone returns a deep copy of the payload: a fresh part map holding
// struct copies of the part chunks, with nested multiplexed payloads
// cloned recursively.  Leaf payload elements stay shared — they are
// immutable on the delivery path.
func (m *MultiPayload) Clone() *MultiPayload { return m.cloneShifted(0) }

// cloneShifted is Clone with every part's (and nested part's) Arrived
// time shifted by extra, in one pass.  propagateExtra uses it so a chunk
// copy gets a privately shifted payload while siblings sharing the
// original — fan-out branches, the producer's own copy — are untouched.
func (m *MultiPayload) cloneShifted(extra avtime.WorldTime) *MultiPayload {
	parts := make(map[string]*Chunk, len(m.Parts))
	for name, p := range m.Parts {
		cp := *p
		cp.Arrived += extra
		if nested, ok := cp.Payload.(*MultiPayload); ok {
			cp.Payload = nested.cloneShifted(extra)
		}
		parts[name] = &cp
	}
	return &MultiPayload{Parts: parts}
}

// Composite is a composite activity — flow-composition rule 2: an
// activity containing component activities, whose ports re-export
// component ports.  A composite that processes a temporally composed
// value contains one component per track and "would maintain the
// synchronization of its component activities" (§4.2); EnableSync turns
// that resynchronization on.
type Composite struct {
	*Base

	mu         sync.Mutex
	children   map[string]Activity
	childOrder []string
	internal   []*Connection
	// exports: composite port name -> (child, child port name)
	exportsIn  map[string]portRef
	exportsOut map[string]portRef
	// mux ports: composite port name -> set of (track=child name, port)
	muxOut map[string][]portRef
	muxIn  map[string][]portRef
	sync   *sched.Resync
}

type portRef struct {
	child Activity
	port  string
}

// NewComposite returns an empty composite activity.
func NewComposite(name, class string, loc Location) *Composite {
	return &Composite{
		Base:       NewBase(name, class, loc),
		children:   make(map[string]Activity),
		exportsIn:  make(map[string]portRef),
		exportsOut: make(map[string]portRef),
		muxOut:     make(map[string][]portRef),
		muxIn:      make(map[string][]portRef),
	}
}

// Install adds a component activity — the paper's "install (new activity
// VideoSource ...) in dbSource".  Components must share the composite's
// location.
func (c *Composite) Install(child Activity) error {
	if child.Location() != c.Location() {
		return fmt.Errorf("activity: component %s at %v cannot join composite %s at %v",
			child.Name(), child.Location(), c.Name(), c.Location())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.children[child.Name()]; dup {
		return fmt.Errorf("activity: composite %s already contains %q", c.Name(), child.Name())
	}
	c.children[child.Name()] = child
	c.childOrder = append(c.childOrder, child.Name())
	return nil
}

// Children returns the component activities in installation order.
func (c *Composite) Children() []Activity {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Activity, len(c.childOrder))
	for i, n := range c.childOrder {
		out[i] = c.children[n]
	}
	return out
}

// Child returns the named component.
func (c *Composite) Child(name string) (Activity, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.children[name]
	return a, ok
}

// ConnectChildren wires two components inside the composite; the same
// typing rules as Graph.Connect apply.
func (c *Composite) ConnectChildren(from Activity, outPort string, to Activity, inPort string) (*Connection, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.children[from.Name()]; !ok {
		return nil, fmt.Errorf("activity: composite %s does not contain %q", c.Name(), from.Name())
	}
	if _, ok := c.children[to.Name()]; !ok {
		return nil, fmt.Errorf("activity: composite %s does not contain %q", c.Name(), to.Name())
	}
	fp, ok := from.Port(outPort)
	if !ok || fp.Dir() != Out {
		return nil, fmt.Errorf("activity: %s has no out port %q", from.Name(), outPort)
	}
	tp, ok := to.Port(inPort)
	if !ok || tp.Dir() != In {
		return nil, fmt.Errorf("activity: %s has no in port %q", to.Name(), inPort)
	}
	if fp.Type() != tp.Type() {
		return nil, fmt.Errorf("activity: port types differ: %v vs %v", fp, tp)
	}
	conn := &Connection{from: from, fromPort: fp, to: to, toPort: tp}
	c.internal = append(c.internal, conn)
	return conn, nil
}

// ExportIn re-exports a component's In port as a composite In port of the
// same type ("it is possible to connect an 'out' port of a component to
// the 'out' of the composite ... a similar rule applies to 'in' ports").
func (c *Composite) ExportIn(name string, child Activity, childPort string) error {
	p, err := c.checkExport(child, childPort, In)
	if err != nil {
		return err
	}
	c.AddPort(name, In, p.Type())
	c.mu.Lock()
	c.exportsIn[name] = portRef{child, childPort}
	c.mu.Unlock()
	return nil
}

// ExportOut re-exports a component's Out port as a composite Out port.
func (c *Composite) ExportOut(name string, child Activity, childPort string) error {
	p, err := c.checkExport(child, childPort, Out)
	if err != nil {
		return err
	}
	c.AddPort(name, Out, p.Type())
	c.mu.Lock()
	c.exportsOut[name] = portRef{child, childPort}
	c.mu.Unlock()
	return nil
}

// ExportMuxOut declares a multiplexing Out port of type multi/tracks that
// bundles the given component Out ports; each component's stream becomes
// a track named after the component.
func (c *Composite) ExportMuxOut(name string, refs ...TrackRef) error {
	if len(refs) == 0 {
		return fmt.Errorf("activity: mux port %q needs at least one track", name)
	}
	var prs []portRef
	for _, r := range refs {
		if _, err := c.checkExport(r.Child, r.Port, Out); err != nil {
			return err
		}
		prs = append(prs, portRef{r.Child, r.Port})
	}
	c.AddPort(name, Out, media.TypeMultiTrack)
	c.mu.Lock()
	c.muxOut[name] = prs
	c.mu.Unlock()
	return nil
}

// ExportMuxIn declares a demultiplexing In port of type multi/tracks that
// routes each track to the component of the same name through the given
// In port.
func (c *Composite) ExportMuxIn(name string, refs ...TrackRef) error {
	if len(refs) == 0 {
		return fmt.Errorf("activity: mux port %q needs at least one track", name)
	}
	var prs []portRef
	for _, r := range refs {
		if _, err := c.checkExport(r.Child, r.Port, In); err != nil {
			return err
		}
		prs = append(prs, portRef{r.Child, r.Port})
	}
	c.AddPort(name, In, media.TypeMultiTrack)
	c.mu.Lock()
	c.muxIn[name] = prs
	c.mu.Unlock()
	return nil
}

// TrackRef names a component port participating in a mux port.
type TrackRef struct {
	Child Activity
	Port  string
}

func (c *Composite) checkExport(child Activity, childPort string, dir Dir) (*Port, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.children[child.Name()]; !ok {
		return nil, fmt.Errorf("activity: composite %s does not contain %q", c.Name(), child.Name())
	}
	p, ok := child.Port(childPort)
	if !ok {
		return nil, fmt.Errorf("activity: %s has no port %q", child.Name(), childPort)
	}
	if p.Dir() != dir {
		return nil, fmt.Errorf("activity: %v direction mismatch for export", p)
	}
	return p, nil
}

// EnableSync attaches a resynchronization controller so the composite
// keeps its tracks temporally correlated; alpha is the estimator's
// smoothing factor.
func (c *Composite) EnableSync(alpha float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sync = sched.NewResync(alpha)
}

// SyncController returns the resynchronization controller, if enabled.
func (c *Composite) SyncController() *sched.Resync {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sync
}

// Start starts the composite and all components.
func (c *Composite) Start() error {
	for _, child := range c.Children() {
		if err := child.Start(); err != nil {
			return err
		}
	}
	return c.Base.Start()
}

// Stop stops the composite and all components, joining any component
// Stop errors with the composite's own.
func (c *Composite) Stop() error {
	var errs []error
	for _, child := range c.Children() {
		if err := child.Stop(); err != nil {
			errs = append(errs, fmt.Errorf("activity: stopping component %s: %w", child.Name(), err))
		}
	}
	errs = append(errs, c.Base.Stop())
	return errors.Join(errs...)
}

// Tick implements Activity: it routes composite inputs to components,
// runs the components in internal topological order with their latencies
// and the synchronization corrections applied, and assembles composite
// outputs.
func (c *Composite) Tick(tc *TickContext) error {
	c.mu.Lock()
	children := make([]Activity, len(c.childOrder))
	for i, n := range c.childOrder {
		children[i] = c.children[n]
	}
	internal := append([]*Connection(nil), c.internal...)
	exportsIn := copyRefs(c.exportsIn)
	exportsOut := copyRefs(c.exportsOut)
	muxOut := copyMux(c.muxOut)
	muxIn := copyMux(c.muxIn)
	syncCtl := c.sync
	c.mu.Unlock()

	order, err := topoChildren(children, internal)
	if err != nil {
		return err
	}

	ctxs := make(map[string]*TickContext, len(order))
	for _, child := range order {
		ctxs[child.Name()] = NewTickContext(tc.Now, tc.Seq, tc.Interval)
	}

	// Route composite inputs.
	for name, ref := range exportsIn {
		if in := tc.In(name); in != nil {
			cp := *in
			ctxs[ref.child.Name()].SetIn(ref.port, &cp)
		}
	}
	for name, refs := range muxIn {
		in := tc.In(name)
		if in == nil {
			continue
		}
		mp, ok := in.Payload.(*MultiPayload)
		if !ok {
			return fmt.Errorf("activity: %s.%s received non-multiplexed payload", c.Name(), name)
		}
		for _, ref := range refs {
			part := mp.Parts[ref.child.Name()]
			if part == nil {
				continue
			}
			cp := *part
			if syncCtl != nil {
				lat := cp.Arrived - cp.At
				if lat < 0 {
					lat = 0
				}
				cp.Arrived += syncCtl.Correction(ref.child.Name())
				syncCtl.Observe(ref.child.Name(), lat)
			}
			ctxs[ref.child.Name()].SetIn(ref.port, &cp)
		}
	}

	// Run components.
	outputs := make(map[string]map[string]*Chunk, len(order)) // child -> port -> chunk
	for _, child := range order {
		ctx := ctxs[child.Name()]
		// Feed internal connections from already-run components.
		for _, conn := range internal {
			if conn.to.Name() != child.Name() {
				continue
			}
			if srcOuts := outputs[conn.from.Name()]; srcOuts != nil {
				if chunk := srcOuts[conn.fromPort.Name()]; chunk != nil {
					oc := conn.deliver(chunk)
					if oc.err != nil {
						return oc.err
					}
					if oc.chunk == nil {
						// Lost or absorbed in flight inside the composite.
						emitFault(conn.to, EventInfo{Event: EventFault, Activity: conn.to.Name(), At: tc.Now, Seq: chunk.Seq})
						continue
					}
					ctx.SetIn(conn.toPort.Name(), oc.chunk)
				}
			}
		}
		if child.State() != StateStarted {
			continue
		}
		if err := child.Tick(ctx); err != nil {
			return fmt.Errorf("activity: composite %s component %s: %w", c.Name(), child.Name(), err)
		}
		lat := sampleLatency(child)
		outs := make(map[string]*Chunk)
		for port, chunk := range ctx.Outputs() {
			if chunk == nil {
				continue
			}
			if chunk.Arrived < tc.Now {
				chunk.Arrived = tc.Now
			}
			chunk.Arrived += lat
			propagateExtra(chunk, lat)
			if chunk.Track == "" {
				chunk.Track = child.Name()
			}
			outs[port] = chunk
		}
		outputs[child.Name()] = outs
	}

	// Assemble composite outputs.
	for name, ref := range exportsOut {
		if outs := outputs[ref.child.Name()]; outs != nil {
			if chunk := outs[ref.port]; chunk != nil {
				tc.Emit(name, chunk)
			}
		}
	}
	for name, refs := range muxOut {
		mp := &MultiPayload{Parts: make(map[string]*Chunk, len(refs))}
		for _, ref := range refs {
			if outs := outputs[ref.child.Name()]; outs != nil {
				if chunk := outs[ref.port]; chunk != nil {
					mp.Parts[ref.child.Name()] = chunk
				}
			}
		}
		if len(mp.Parts) == 0 {
			continue
		}
		outer := &Chunk{Seq: tc.Seq, At: tc.Now, Arrived: MaxArrival(partList(mp)...), Payload: mp}
		tc.Emit(name, outer)
	}

	// A source composite finishes when all its source components have.
	if c.Kind() == KindSource {
		done := true
		for _, child := range children {
			if child.Kind() == KindSource && child.State() == StateStarted {
				done = false
				break
			}
		}
		if done {
			c.MarkDone()
		}
	}
	return nil
}

func partList(mp *MultiPayload) []*Chunk {
	out := make([]*Chunk, 0, len(mp.Parts))
	for _, c := range mp.Parts {
		out = append(out, c)
	}
	return out
}

func copyRefs(m map[string]portRef) map[string]portRef {
	out := make(map[string]portRef, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyMux(m map[string][]portRef) map[string][]portRef {
	out := make(map[string][]portRef, len(m))
	for k, v := range m {
		out[k] = append([]portRef(nil), v...)
	}
	return out
}

// topoChildren orders components topologically by internal connections.
func topoChildren(children []Activity, conns []*Connection) ([]Activity, error) {
	indeg := make(map[string]int, len(children))
	adj := make(map[string][]string)
	byName := make(map[string]Activity, len(children))
	var order []string
	for _, ch := range children {
		indeg[ch.Name()] = 0
		byName[ch.Name()] = ch
		order = append(order, ch.Name())
	}
	for _, c := range conns {
		adj[c.from.Name()] = append(adj[c.from.Name()], c.to.Name())
		indeg[c.to.Name()]++
	}
	var queue []string
	for _, n := range order {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	out := make([]Activity, 0, len(children))
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, byName[n])
		for _, m := range adj[n] {
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if len(out) != len(children) {
		return nil, fmt.Errorf("activity: composite contains a component cycle")
	}
	return out, nil
}
