package activity

import (
	"errors"
	"strings"
	"testing"

	"avdb/internal/avtime"
	"avdb/internal/media"
	"avdb/internal/netsim"
	"avdb/internal/sched"
)

// frameSource produces the frames of a bound VideoValue, one per tick.
type frameSource struct {
	*Base
	pos int
}

func newFrameSource(name string, loc Location) *frameSource {
	s := &frameSource{Base: NewBase(name, "TestVideoSource", loc)}
	s.AddPort("out", Out, media.TypeRawVideo30)
	s.DeclareEvents(EventEachFrame, EventLastFrame)
	return s
}

func (s *frameSource) Tick(tc *TickContext) error {
	v, ok := s.Binding("out")
	if !ok {
		return errors.New("no value bound")
	}
	vv := v.(*media.VideoValue)
	if s.pos == 0 {
		s.pos = int(media.TypeRawVideo30.Rate.UnitsIn(s.CuePoint()))
	}
	if s.pos >= vv.NumFrames() {
		s.MarkDone()
		return nil
	}
	f, err := vv.Frame(s.pos)
	if err != nil {
		return err
	}
	c := &Chunk{Seq: s.pos, At: tc.Now, Arrived: tc.Now, Payload: f}
	tc.Emit("out", c)
	s.Emit(EventInfo{Event: EventEachFrame, At: tc.Now, Seq: s.pos})
	s.pos++
	if s.pos == vv.NumFrames() {
		s.Emit(EventInfo{Event: EventLastFrame, At: tc.Now, Seq: s.pos - 1})
		s.MarkDone()
	}
	return nil
}

// inverter flips every pixel, a trivial transformer.
type inverter struct{ *Base }

func newInverter(name string, loc Location) *inverter {
	tr := &inverter{Base: NewBase(name, "TestInverter", loc)}
	tr.AddPort("in", In, media.TypeRawVideo30)
	tr.AddPort("out", Out, media.TypeRawVideo30)
	return tr
}

func (tr *inverter) Tick(tc *TickContext) error {
	in := tc.In("in")
	if in == nil {
		return nil
	}
	f := in.Payload.(*media.Frame).Clone()
	for i := range f.Pix {
		f.Pix[i] = ^f.Pix[i]
	}
	out := *in
	out.Payload = f
	tc.Emit("out", &out)
	return nil
}

// frameSink collects frames and records deadline statistics.
type frameSink struct {
	*Base
	frames  []*media.Frame
	monitor *sched.Monitor
	arrived []avtime.WorldTime
}

func newFrameSink(name string, loc Location) *frameSink {
	s := &frameSink{Base: NewBase(name, "TestVideoWindow", loc), monitor: sched.NewMonitor(10 * avtime.Millisecond)}
	s.AddPort("in", In, media.TypeRawVideo30)
	return s
}

func (s *frameSink) Tick(tc *TickContext) error {
	in := tc.In("in")
	if in == nil {
		return nil
	}
	s.frames = append(s.frames, in.Payload.(*media.Frame))
	s.monitor.Record(in.At, in.Arrived)
	s.arrived = append(s.arrived, in.Arrived)
	return nil
}

func testValue(n int) *media.VideoValue {
	v := media.NewVideoValue(media.TypeRawVideo30, 4, 4, 8)
	for i := 0; i < n; i++ {
		f := media.NewFrame(4, 4, 8)
		for p := range f.Pix {
			f.Pix[p] = byte(i)
		}
		if err := v.AppendFrame(f); err != nil {
			panic(err)
		}
	}
	return v
}

func TestBaseMetadataAndKind(t *testing.T) {
	src := newFrameSource("src", AtDatabase)
	if src.Name() != "src" || src.Class() != "TestVideoSource" || src.Location() != AtDatabase {
		t.Error("metadata wrong")
	}
	if src.Kind() != KindSource {
		t.Errorf("source kind = %v", src.Kind())
	}
	if newInverter("t", AtDatabase).Kind() != KindTransformer {
		t.Error("transformer kind wrong")
	}
	if newFrameSink("s", AtApplication).Kind() != KindSink {
		t.Error("sink kind wrong")
	}
	ports := src.Ports()
	if len(ports) != 1 || ports[0].Name() != "out" || ports[0].Dir() != Out {
		t.Errorf("Ports = %v", ports)
	}
	if _, ok := src.Port("out"); !ok {
		t.Error("Port lookup failed")
	}
	if got := ports[0].String(); !strings.Contains(got, "src.out") {
		t.Errorf("port String = %q", got)
	}
	evs := src.Events()
	if len(evs) != 4 { // STARTED, STOPPED, EACH_FRAME, LAST_FRAME
		t.Errorf("Events = %v", evs)
	}
	if AtDatabase.String() != "database" || AtApplication.String() != "application" {
		t.Error("location names wrong")
	}
	if KindSource.String() != "source" || KindTransformer.String() != "transformer" || KindSink.String() != "sink" {
		t.Error("kind names wrong")
	}
	if In.String() != "in" || Out.String() != "out" {
		t.Error("dir names wrong")
	}
}

func TestBindTypeChecking(t *testing.T) {
	src := newFrameSource("src", AtDatabase)
	v := testValue(3)
	if err := src.Bind(v, "out"); err != nil {
		t.Fatal(err)
	}
	if got, ok := src.Binding("out"); !ok || got != media.Value(v) {
		t.Error("Binding lost value")
	}
	if err := src.Bind(v, "nope"); err == nil {
		t.Error("bind to missing port accepted")
	}
	a := media.NewAudioValue(media.TypeCDAudio, 2)
	if err := src.Bind(a, "out"); err == nil {
		t.Error("bind of audio value to video port accepted")
	}
}

func TestStartStopStateMachine(t *testing.T) {
	src := newFrameSource("src", AtDatabase)
	var events []Event
	if err := src.Catch(EventStarted, func(e EventInfo) { events = append(events, e.Event) }); err != nil {
		t.Fatal(err)
	}
	if err := src.Catch(EventStopped, func(e EventInfo) { events = append(events, e.Event) }); err != nil {
		t.Fatal(err)
	}
	if src.State() != StateIdle {
		t.Error("initial state wrong")
	}
	if err := src.Start(); err != nil {
		t.Fatal(err)
	}
	if err := src.Start(); err == nil {
		t.Error("double start accepted")
	}
	if src.State() != StateStarted {
		t.Error("not started")
	}
	if err := src.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := src.Stop(); err != nil {
		t.Error("redundant stop should be a no-op")
	}
	if len(events) != 2 || events[0] != EventStarted || events[1] != EventStopped {
		t.Errorf("events = %v", events)
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	if src.State() != StateIdle {
		t.Error("reset did not idle")
	}
	if StateIdle.String() != "idle" || StateDone.String() != "done" {
		t.Error("state names wrong")
	}
}

func TestCueRules(t *testing.T) {
	src := newFrameSource("src", AtDatabase)
	if err := src.Cue(avtime.Second); err != nil {
		t.Fatal(err)
	}
	if src.CuePoint() != avtime.Second {
		t.Error("cue lost")
	}
	if err := src.Cue(-1); err == nil {
		t.Error("negative cue accepted")
	}
	if err := src.Start(); err != nil {
		t.Fatal(err)
	}
	if err := src.Cue(0); err == nil {
		t.Error("cue while started accepted")
	}
}

func TestCatchUnknownEvent(t *testing.T) {
	src := newFrameSource("src", AtDatabase)
	if err := src.Catch("NO_SUCH", func(EventInfo) {}); err == nil {
		t.Error("catch of undeclared event accepted")
	}
	if err := src.Catch(EventEachFrame, nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestGraphConnectTypeRules(t *testing.T) {
	g := NewGraph("g")
	src := newFrameSource("src", AtDatabase)
	sink := newFrameSink("sink", AtApplication)
	other := newFrameSink("other", AtApplication)
	if err := g.Add(src); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(src); err == nil {
		t.Error("duplicate node accepted")
	}
	if err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(src, "out", sink, "in"); err != nil {
		t.Fatal(err)
	}
	// Second connection to the same in port is rejected.
	if _, err := g.Connect(src, "out", sink, "in"); err == nil {
		t.Error("double connection to in port accepted")
	}
	// Node not in graph.
	if _, err := g.Connect(src, "out", other, "in"); err == nil {
		t.Error("connection to foreign node accepted")
	}
	// Direction violations.
	if _, err := g.Connect(src, "out", src, "out"); err == nil {
		t.Error("out->out connection accepted")
	}
	// Missing ports.
	if _, err := g.Connect(src, "nope", sink, "in"); err == nil {
		t.Error("missing out port accepted")
	}
	if _, err := g.Connect(src, "out", sink, "nope"); err == nil {
		t.Error("missing in port accepted")
	}
	if n, ok := g.Node("src"); !ok || n.Name() != "src" {
		t.Error("Node lookup failed")
	}
	if len(g.Nodes()) != 2 || len(g.Connections()) != 1 {
		t.Error("graph shape wrong")
	}
}

func TestGraphRunDeliversAllFrames(t *testing.T) {
	g := NewGraph("play")
	src := newFrameSource("src", AtDatabase)
	inv := newInverter("inv", AtDatabase)
	sink := newFrameSink("sink", AtApplication)
	for _, a := range []Activity{src, inv, sink} {
		if err := g.Add(a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.Connect(src, "out", inv, "in"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(inv, "out", sink, "in"); err != nil {
		t.Fatal(err)
	}
	if err := src.Bind(testValue(30), "out"); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	clock := sched.NewVirtualClock(0)
	stats, err := g.Run(RunConfig{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.frames) != 30 {
		t.Fatalf("sink received %d frames, want 30", len(sink.frames))
	}
	// Transformed: frame i has pixel ^i.
	for i, f := range sink.frames {
		if f.Pix[0] != ^byte(i) {
			t.Fatalf("frame %d pixel = %d, want %d", i, f.Pix[0], ^byte(i))
		}
	}
	if stats.Ticks != 30 {
		t.Errorf("Ticks = %d", stats.Ticks)
	}
	if stats.Chunks != 60 { // 30 over each of 2 connections
		t.Errorf("Chunks = %d", stats.Chunks)
	}
	if clock.Now() != avtime.Second {
		t.Errorf("clock = %v, want 1s for 30 frames at 30fps", clock.Now())
	}
	if src.State() != StateDone {
		t.Errorf("source state = %v", src.State())
	}
}

func TestGraphRunEventsAndCue(t *testing.T) {
	g := NewGraph("g")
	src := newFrameSource("src", AtDatabase)
	sink := newFrameSink("sink", AtApplication)
	if err := g.Add(src); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(src, "out", sink, "in"); err != nil {
		t.Fatal(err)
	}
	if err := src.Bind(testValue(30), "out"); err != nil {
		t.Fatal(err)
	}
	// Cue one second in: frames 0..29 start at frame 30... value has 30
	// frames, so cue to 0.5s = frame 15, leaving 15 frames.
	if err := src.Cue(500 * avtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	var each, last int
	if err := src.Catch(EventEachFrame, func(EventInfo) { each++ }); err != nil {
		t.Fatal(err)
	}
	if err := src.Catch(EventLastFrame, func(EventInfo) { last++ }); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0)}); err != nil {
		t.Fatal(err)
	}
	if len(sink.frames) != 15 {
		t.Errorf("cued playback delivered %d frames, want 15", len(sink.frames))
	}
	if each != 15 || last != 1 {
		t.Errorf("events: each=%d last=%d", each, last)
	}
	if sink.frames[0].Pix[0] != 15 {
		t.Errorf("first cued frame = %d, want 15", sink.frames[0].Pix[0])
	}
}

func TestGraphRunWithNetworkAndLatency(t *testing.T) {
	g := NewGraph("g")
	src := newFrameSource("src", AtDatabase)
	src.SetLatency(sched.NewLatency(2*avtime.Millisecond, 0, 1))
	sink := newFrameSink("sink", AtApplication)
	if err := g.Add(src); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	link := netsim.NewLink("lan", media.MBPerSecond, 3*avtime.Millisecond, 0, 1)
	nc, err := link.Connect(media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := g.ConnectVia(src, "out", sink, "in", nc)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Bind(testValue(10), "out"); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0)}); err != nil {
		t.Fatal(err)
	}
	if len(sink.arrived) != 10 {
		t.Fatal("frames lost")
	}
	// Each frame: 2ms source latency + 3ms propagation + 16 bytes
	// serialization (16µs).
	want := 2*avtime.Millisecond + 3*avtime.Millisecond + 16*avtime.Microsecond
	if got := sink.arrived[0] - 0; got != want {
		t.Errorf("first arrival lateness = %v, want %v", got, want)
	}
	if conn.BytesCarried() != 160 || conn.Chunks() != 10 {
		t.Errorf("connection accounting: %d bytes, %d chunks", conn.BytesCarried(), conn.Chunks())
	}
	if conn.Network() != nc {
		t.Error("Network accessor wrong")
	}
	if sink.monitor.MissRate() != 0 {
		t.Errorf("5ms lateness should be within the 10ms tolerance: %v", sink.monitor)
	}
}

func TestGraphCycleDetection(t *testing.T) {
	g := NewGraph("cyclic")
	a := newInverter("a", AtDatabase)
	b := newInverter("b", AtDatabase)
	if err := g.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(b); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(a, "out", b, "in"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(b, "out", a, "in"); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0)}); err == nil {
		t.Error("cyclic graph ran")
	}
}

func TestGraphRunRequiresClock(t *testing.T) {
	g := NewGraph("g")
	if _, err := g.Run(RunConfig{}); err == nil {
		t.Error("run without clock accepted")
	}
}

func TestGraphStopEndsRun(t *testing.T) {
	g := NewGraph("g")
	src := newFrameSource("src", AtDatabase)
	if err := g.Add(src); err != nil {
		t.Fatal(err)
	}
	if err := src.Bind(testValue(1000), "out"); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	// Stop after 5 frames via an event handler.
	n := 0
	if err := src.Catch(EventEachFrame, func(EventInfo) {
		n++
		if n == 5 {
			g.Stop()
		}
	}); err != nil {
		t.Fatal(err)
	}
	stats, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ticks > 6 {
		t.Errorf("run continued after stop: %d ticks", stats.Ticks)
	}
}

func TestGraphMaxTicksBoundsLiveSources(t *testing.T) {
	// A source that never finishes (live camera) is bounded by MaxTicks.
	g := NewGraph("live")
	src := newFrameSource("src", AtDatabase)
	if err := g.Add(src); err != nil {
		t.Fatal(err)
	}
	if err := src.Bind(testValue(1_000_000), "out"); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	stats, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0), MaxTicks: 50})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ticks != 50 {
		t.Errorf("Ticks = %d, want 50", stats.Ticks)
	}
}

func TestCompositeChainEquivalence(t *testing.T) {
	// Fig. 2: a read->invert chain folded into a composite "source" must
	// produce byte-identical output to the flat chain.
	run := func(composite bool) []*media.Frame {
		g := NewGraph("g")
		sink := newFrameSink("sink", AtApplication)
		if composite {
			comp := NewComposite("source", "Source", AtDatabase)
			src := newFrameSource("read", AtDatabase)
			inv := newInverter("decode", AtDatabase)
			if err := comp.Install(src); err != nil {
				t.Fatal(err)
			}
			if err := comp.Install(inv); err != nil {
				t.Fatal(err)
			}
			if _, err := comp.ConnectChildren(src, "out", inv, "in"); err != nil {
				t.Fatal(err)
			}
			if err := comp.ExportOut("out", inv, "out"); err != nil {
				t.Fatal(err)
			}
			if err := src.Bind(testValue(20), "out"); err != nil {
				t.Fatal(err)
			}
			if err := g.Add(comp); err != nil {
				t.Fatal(err)
			}
			if err := g.Add(sink); err != nil {
				t.Fatal(err)
			}
			if _, err := g.Connect(comp, "out", sink, "in"); err != nil {
				t.Fatal(err)
			}
		} else {
			src := newFrameSource("read", AtDatabase)
			inv := newInverter("decode", AtDatabase)
			for _, a := range []Activity{src, inv, sink} {
				if err := g.Add(a); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := g.Connect(src, "out", inv, "in"); err != nil {
				t.Fatal(err)
			}
			if _, err := g.Connect(inv, "out", sink, "in"); err != nil {
				t.Fatal(err)
			}
			if err := src.Bind(testValue(20), "out"); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0)}); err != nil {
			t.Fatal(err)
		}
		return sink.frames
	}
	flat := run(false)
	comp := run(true)
	if len(flat) != 20 || len(comp) != 20 {
		t.Fatalf("lengths: flat=%d composite=%d", len(flat), len(comp))
	}
	for i := range flat {
		if !flat[i].Equal(comp[i]) {
			t.Fatalf("frame %d differs between flat chain and composite", i)
		}
	}
}

func TestCompositeKindAndLifecycle(t *testing.T) {
	comp := NewComposite("ms", "MultiSource", AtDatabase)
	src := newFrameSource("v", AtDatabase)
	if err := comp.Install(src); err != nil {
		t.Fatal(err)
	}
	if err := comp.Install(src); err == nil {
		t.Error("duplicate install accepted")
	}
	if err := comp.ExportOut("out", src, "out"); err != nil {
		t.Fatal(err)
	}
	if comp.Kind() != KindSource {
		t.Errorf("composite kind = %v", comp.Kind())
	}
	if err := comp.Start(); err != nil {
		t.Fatal(err)
	}
	if src.State() != StateStarted {
		t.Error("start did not propagate")
	}
	if err := comp.Stop(); err != nil {
		t.Fatal(err)
	}
	if src.State() != StateStopped {
		t.Error("stop did not propagate")
	}
	if cs := comp.Children(); len(cs) != 1 || cs[0].Name() != "v" {
		t.Error("Children wrong")
	}
	if _, ok := comp.Child("v"); !ok {
		t.Error("Child lookup failed")
	}
	// Location mismatch rejected.
	appAct := newFrameSink("w", AtApplication)
	if err := comp.Install(appAct); err == nil {
		t.Error("cross-location install accepted")
	}
}

func TestCompositeExportValidation(t *testing.T) {
	comp := NewComposite("c", "C", AtDatabase)
	src := newFrameSource("v", AtDatabase)
	sink := newFrameSink("w", AtDatabase)
	if err := comp.Install(src); err != nil {
		t.Fatal(err)
	}
	if err := comp.Install(sink); err != nil {
		t.Fatal(err)
	}
	if err := comp.ExportOut("o", src, "nope"); err == nil {
		t.Error("export of missing port accepted")
	}
	if err := comp.ExportOut("o", sink, "in"); err == nil {
		t.Error("export of in port as out accepted")
	}
	if err := comp.ExportIn("i", src, "out"); err == nil {
		t.Error("export of out port as in accepted")
	}
	outside := newFrameSource("x", AtDatabase)
	if err := comp.ExportOut("o", outside, "out"); err == nil {
		t.Error("export of non-component accepted")
	}
	if err := comp.ExportMuxOut("m"); err == nil {
		t.Error("empty mux accepted")
	}
	if _, err := comp.ConnectChildren(outside, "out", sink, "in"); err == nil {
		t.Error("internal connect of non-component accepted")
	}
}

// multiplexed composite pair: a MultiSource with two video tracks and a
// MultiSink with two windows, connected by one multi/tracks connection.
func buildMultiPair(t *testing.T, frames int, syncAlpha float64, vLat, aLat *sched.Latency) (*Graph, *frameSink, *frameSink) {
	t.Helper()
	g := NewGraph("fig3")

	msrc := NewComposite("dbSource", "MultiSource", AtDatabase)
	v := newFrameSource("video", AtDatabase)
	a := newFrameSource("audio", AtDatabase)
	if vLat != nil {
		v.SetLatency(vLat)
	}
	if aLat != nil {
		a.SetLatency(aLat)
	}
	if err := msrc.Install(v); err != nil {
		t.Fatal(err)
	}
	if err := msrc.Install(a); err != nil {
		t.Fatal(err)
	}
	if err := msrc.ExportMuxOut("out", TrackRef{v, "out"}, TrackRef{a, "out"}); err != nil {
		t.Fatal(err)
	}
	if err := v.Bind(testValue(frames), "out"); err != nil {
		t.Fatal(err)
	}
	if err := a.Bind(testValue(frames), "out"); err != nil {
		t.Fatal(err)
	}

	msink := NewComposite("appSink", "MultiSink", AtApplication)
	wv := newFrameSink("video", AtApplication)
	wa := newFrameSink("audio", AtApplication)
	if err := msink.Install(wv); err != nil {
		t.Fatal(err)
	}
	if err := msink.Install(wa); err != nil {
		t.Fatal(err)
	}
	if err := msink.ExportMuxIn("in", TrackRef{wv, "in"}, TrackRef{wa, "in"}); err != nil {
		t.Fatal(err)
	}
	if syncAlpha > 0 {
		msink.EnableSync(syncAlpha)
	}

	if err := g.Add(msrc); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(msink); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(msrc, "out", msink, "in"); err != nil {
		t.Fatal(err)
	}
	return g, wv, wa
}

func TestCompositeMultiplexedDelivery(t *testing.T) {
	g, wv, wa := buildMultiPair(t, 25, 0, nil, nil)
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0)}); err != nil {
		t.Fatal(err)
	}
	if len(wv.frames) != 25 || len(wa.frames) != 25 {
		t.Fatalf("delivered %d video, %d audio frames; want 25 each", len(wv.frames), len(wa.frames))
	}
	for i := range wv.frames {
		if wv.frames[i].Pix[0] != byte(i) || wa.frames[i].Pix[0] != byte(i) {
			t.Fatalf("track content wrong at %d", i)
		}
	}
}

func TestCompositeSyncBoundsSkew(t *testing.T) {
	// Video is slow and jittery; audio fast.  Without sync, per-tick skew
	// equals the latency difference; with sync the MultiSink delays audio
	// to match.
	maxSkew := func(sync float64) avtime.WorldTime {
		vLat := sched.NewLatency(15*avtime.Millisecond, 4*avtime.Millisecond, 3)
		aLat := sched.NewLatency(1*avtime.Millisecond, 1*avtime.Millisecond, 4)
		g, wv, wa := buildMultiPair(t, 100, sync, vLat, aLat)
		if err := g.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0)}); err != nil {
			t.Fatal(err)
		}
		if len(wv.arrived) != 100 || len(wa.arrived) != 100 {
			t.Fatalf("lost frames: %d/%d", len(wv.arrived), len(wa.arrived))
		}
		var worst avtime.WorldTime
		for i := 20; i < 100; i++ { // skip controller warm-up
			s := wv.arrived[i] - wa.arrived[i]
			if s < 0 {
				s = -s
			}
			if s > worst {
				worst = s
			}
		}
		return worst
	}
	raw := maxSkew(0)
	synced := maxSkew(0.3)
	if raw < 10*avtime.Millisecond {
		t.Fatalf("unsynced skew suspiciously low: %v", raw)
	}
	if synced >= raw/2 {
		t.Errorf("sync did not bound skew: raw %v, synced %v", raw, synced)
	}
}

func TestMultiPayloadElement(t *testing.T) {
	f := media.NewFrame(2, 2, 8)
	mp := &MultiPayload{Parts: map[string]*Chunk{
		"v": {Payload: f},
		"a": {Payload: f},
	}}
	if mp.ElementKind() != media.KindMulti {
		t.Error("kind wrong")
	}
	if mp.Size() != 8 {
		t.Errorf("Size = %d", mp.Size())
	}
	var c Chunk
	if c.Size() != 0 {
		t.Error("empty chunk size wrong")
	}
}
