package activity

import (
	"fmt"
	"testing"

	"avdb/internal/media"
	"avdb/internal/sched"
)

// BenchmarkGraphChainThroughput streams frames through a three-stage
// chain and reports frames per wall second.
func BenchmarkGraphChainThroughput(b *testing.B) {
	const frames = 300
	v := media.NewVideoValue(media.TypeRawVideo30, 32, 24, 8)
	for i := 0; i < frames; i++ {
		if err := v.AppendFrame(media.NewFrame(32, 24, 8)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := NewGraph("bench")
		src := newBenchSource("src", v)
		inv := newBenchInverter("inv")
		sink := newBenchSink("sink")
		for _, a := range []Activity{src, inv, sink} {
			if err := g.Add(a); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := g.Connect(src, "out", inv, "in"); err != nil {
			b.Fatal(err)
		}
		if _, err := g.Connect(inv, "out", sink, "in"); err != nil {
			b.Fatal(err)
		}
		if err := g.Start(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0)}); err != nil {
			b.Fatal(err)
		}
		if sink.n != frames {
			b.Fatalf("delivered %d", sink.n)
		}
	}
}

// BenchmarkCompositeOverhead measures the composite wrapper against the
// equivalent flat chain.
func BenchmarkCompositeOverhead(b *testing.B) {
	const frames = 300
	v := media.NewVideoValue(media.TypeRawVideo30, 32, 24, 8)
	for i := 0; i < frames; i++ {
		if err := v.AppendFrame(media.NewFrame(32, 24, 8)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := NewGraph("bench")
		comp := NewComposite("source", "Source", AtDatabase)
		src := newBenchSource("read", v)
		inv := newBenchInverter("decode")
		if err := comp.Install(src); err != nil {
			b.Fatal(err)
		}
		if err := comp.Install(inv); err != nil {
			b.Fatal(err)
		}
		if _, err := comp.ConnectChildren(src, "out", inv, "in"); err != nil {
			b.Fatal(err)
		}
		if err := comp.ExportOut("out", inv, "out"); err != nil {
			b.Fatal(err)
		}
		sink := newBenchSink("sink")
		if err := g.Add(comp); err != nil {
			b.Fatal(err)
		}
		if err := g.Add(sink); err != nil {
			b.Fatal(err)
		}
		if _, err := g.Connect(comp, "out", sink, "in"); err != nil {
			b.Fatal(err)
		}
		if err := g.Start(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0)}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBurnSource synthesizes one frame per tick and runs `passes` of a
// deterministic pixel transform over it — a stand-in for the per-lane
// decode/effects work the wavefront executor exists to parallelize.
// Copy-only sources make every wide graph overhead-bound; these do not.
type benchBurnSource struct {
	*Base
	frames, passes, pos int
	w, h                int
	state               uint32
}

func newBenchBurnSource(name string, frames, passes int, seed uint32) *benchBurnSource {
	s := &benchBurnSource{
		Base:   NewBase(name, "BenchBurnSource", AtDatabase),
		frames: frames, passes: passes, w: 64, h: 48, state: seed | 1,
	}
	s.AddPort("out", Out, media.TypeRawVideo30)
	return s
}

func (s *benchBurnSource) Tick(tc *TickContext) error {
	if s.pos >= s.frames {
		s.MarkDone()
		return nil
	}
	f := media.NewFrame(s.w, s.h, 8)
	x := s.state
	for p := 0; p < s.passes; p++ {
		for i := range f.Pix {
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
			f.Pix[i] += byte(x)
		}
	}
	s.state = x
	tc.Emit("out", &Chunk{Seq: s.pos, At: tc.Now, Arrived: tc.Now, Payload: f})
	s.pos++
	if s.pos >= s.frames {
		s.MarkDone()
	}
	return nil
}

// benchBurnSink folds its input through the same transform, giving the
// fan-out level real per-lane work too.
type benchBurnSink struct {
	*Base
	passes int
	n      int
	sum    uint32
}

func newBenchBurnSink(name string, passes int) *benchBurnSink {
	s := &benchBurnSink{Base: NewBase(name, "BenchBurnSink", AtApplication), passes: passes}
	s.AddPort("in", In, media.TypeRawVideo30)
	return s
}

func (s *benchBurnSink) Tick(tc *TickContext) error {
	in := tc.In("in")
	if in == nil {
		return nil
	}
	f := in.Payload.(*media.Frame)
	x := s.sum | 1
	for p := 0; p < s.passes; p++ {
		for i := range f.Pix {
			x ^= uint32(f.Pix[i]) + x<<7
		}
	}
	s.sum = x
	s.n++
	return nil
}

// buildBurnGraph wires a wide fan-in/fan-out shape: width compute-heavy
// sources into one mixer whose output fans out to width compute-heavy
// sinks.  Both wide levels carry real work, so lanes matter.
func buildBurnGraph(b *testing.B, width, frames, passes int) (*Graph, []*benchBurnSink) {
	b.Helper()
	g := NewGraph("burn")
	mix := newTestMixer("mix", width, AtDatabase)
	if err := g.Add(mix); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < width; i++ {
		src := newBenchBurnSource(fmt.Sprintf("src%d", i), frames, passes, uint32(i+1))
		if err := g.Add(src); err != nil {
			b.Fatal(err)
		}
		if _, err := g.Connect(src, "out", mix, fmt.Sprintf("in%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	sinks := make([]*benchBurnSink, width)
	for i := 0; i < width; i++ {
		sinks[i] = newBenchBurnSink(fmt.Sprintf("sink%d", i), passes)
		if err := g.Add(sinks[i]); err != nil {
			b.Fatal(err)
		}
		if _, err := g.Connect(mix, "out", sinks[i], "in"); err != nil {
			b.Fatal(err)
		}
	}
	return g, sinks
}

// benchGraphRun measures one full run of the wide burn graph under the
// given lane count.  The serial and parallel variants execute identical
// work on identical graphs; only RunConfig.Workers differs.
func benchGraphRun(b *testing.B, workers int) {
	const (
		width  = 8
		frames = 30
		passes = 12
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, sinks := buildBurnGraph(b, width, frames, passes)
		if err := g.Start(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		stats, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0), Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if want := int64(width*frames + width*frames); stats.Chunks != want {
			b.Fatalf("stats.Chunks = %d, want %d", stats.Chunks, want)
		}
		for _, s := range sinks {
			if s.n != frames {
				b.Fatalf("sink got %d frames, want %d", s.n, frames)
			}
		}
		b.StartTimer()
	}
}

// BenchmarkGraphRun compares the wavefront executor's serial and
// parallel modes on an 8-wide fan-in/fan-out graph; scripts/bench_pr3.sh
// turns the two into BENCH_pr3.json.
func BenchmarkGraphRun(b *testing.B) {
	b.Run("wide-serial", func(b *testing.B) { benchGraphRun(b, 1) })
	b.Run("wide-parallel", func(b *testing.B) { benchGraphRun(b, 0) })
}

type benchSource struct {
	*Base
	v   *media.VideoValue
	pos int
}

func newBenchSource(name string, v *media.VideoValue) *benchSource {
	s := &benchSource{Base: NewBase(name, "BenchSource", AtDatabase), v: v}
	s.AddPort("out", Out, media.TypeRawVideo30)
	return s
}

func (s *benchSource) Tick(tc *TickContext) error {
	if s.pos >= s.v.NumFrames() {
		s.MarkDone()
		return nil
	}
	f, err := s.v.Frame(s.pos)
	if err != nil {
		return err
	}
	tc.Emit("out", &Chunk{Seq: s.pos, At: tc.Now, Arrived: tc.Now, Payload: f})
	s.pos++
	if s.pos >= s.v.NumFrames() {
		s.MarkDone()
	}
	return nil
}

type benchInverter struct{ *Base }

func newBenchInverter(name string) *benchInverter {
	t := &benchInverter{Base: NewBase(name, "BenchInverter", AtDatabase)}
	t.AddPort("in", In, media.TypeRawVideo30)
	t.AddPort("out", Out, media.TypeRawVideo30)
	return t
}

func (t *benchInverter) Tick(tc *TickContext) error {
	if in := tc.In("in"); in != nil {
		out := *in
		tc.Emit("out", &out)
	}
	return nil
}

type benchSink struct {
	*Base
	n int
}

func newBenchSink(name string) *benchSink {
	s := &benchSink{Base: NewBase(name, "BenchSink", AtApplication)}
	s.AddPort("in", In, media.TypeRawVideo30)
	return s
}

func (s *benchSink) Tick(tc *TickContext) error {
	if tc.In("in") != nil {
		s.n++
	}
	return nil
}
