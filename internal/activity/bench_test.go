package activity

import (
	"testing"

	"avdb/internal/media"
	"avdb/internal/sched"
)

// BenchmarkGraphChainThroughput streams frames through a three-stage
// chain and reports frames per wall second.
func BenchmarkGraphChainThroughput(b *testing.B) {
	const frames = 300
	v := media.NewVideoValue(media.TypeRawVideo30, 32, 24, 8)
	for i := 0; i < frames; i++ {
		if err := v.AppendFrame(media.NewFrame(32, 24, 8)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := NewGraph("bench")
		src := newBenchSource("src", v)
		inv := newBenchInverter("inv")
		sink := newBenchSink("sink")
		for _, a := range []Activity{src, inv, sink} {
			if err := g.Add(a); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := g.Connect(src, "out", inv, "in"); err != nil {
			b.Fatal(err)
		}
		if _, err := g.Connect(inv, "out", sink, "in"); err != nil {
			b.Fatal(err)
		}
		if err := g.Start(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0)}); err != nil {
			b.Fatal(err)
		}
		if sink.n != frames {
			b.Fatalf("delivered %d", sink.n)
		}
	}
}

// BenchmarkCompositeOverhead measures the composite wrapper against the
// equivalent flat chain.
func BenchmarkCompositeOverhead(b *testing.B) {
	const frames = 300
	v := media.NewVideoValue(media.TypeRawVideo30, 32, 24, 8)
	for i := 0; i < frames; i++ {
		if err := v.AppendFrame(media.NewFrame(32, 24, 8)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := NewGraph("bench")
		comp := NewComposite("source", "Source", AtDatabase)
		src := newBenchSource("read", v)
		inv := newBenchInverter("decode")
		if err := comp.Install(src); err != nil {
			b.Fatal(err)
		}
		if err := comp.Install(inv); err != nil {
			b.Fatal(err)
		}
		if _, err := comp.ConnectChildren(src, "out", inv, "in"); err != nil {
			b.Fatal(err)
		}
		if err := comp.ExportOut("out", inv, "out"); err != nil {
			b.Fatal(err)
		}
		sink := newBenchSink("sink")
		if err := g.Add(comp); err != nil {
			b.Fatal(err)
		}
		if err := g.Add(sink); err != nil {
			b.Fatal(err)
		}
		if _, err := g.Connect(comp, "out", sink, "in"); err != nil {
			b.Fatal(err)
		}
		if err := g.Start(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0)}); err != nil {
			b.Fatal(err)
		}
	}
}

type benchSource struct {
	*Base
	v   *media.VideoValue
	pos int
}

func newBenchSource(name string, v *media.VideoValue) *benchSource {
	s := &benchSource{Base: NewBase(name, "BenchSource", AtDatabase), v: v}
	s.AddPort("out", Out, media.TypeRawVideo30)
	return s
}

func (s *benchSource) Tick(tc *TickContext) error {
	if s.pos >= s.v.NumFrames() {
		s.MarkDone()
		return nil
	}
	f, err := s.v.Frame(s.pos)
	if err != nil {
		return err
	}
	tc.Emit("out", &Chunk{Seq: s.pos, At: tc.Now, Arrived: tc.Now, Payload: f})
	s.pos++
	if s.pos >= s.v.NumFrames() {
		s.MarkDone()
	}
	return nil
}

type benchInverter struct{ *Base }

func newBenchInverter(name string) *benchInverter {
	t := &benchInverter{Base: NewBase(name, "BenchInverter", AtDatabase)}
	t.AddPort("in", In, media.TypeRawVideo30)
	t.AddPort("out", Out, media.TypeRawVideo30)
	return t
}

func (t *benchInverter) Tick(tc *TickContext) error {
	if in := tc.In("in"); in != nil {
		out := *in
		tc.Emit("out", &out)
	}
	return nil
}

type benchSink struct {
	*Base
	n int
}

func newBenchSink(name string) *benchSink {
	s := &benchSink{Base: NewBase(name, "BenchSink", AtApplication)}
	s.AddPort("in", In, media.TypeRawVideo30)
	return s
}

func (s *benchSink) Tick(tc *TickContext) error {
	if tc.In("in") != nil {
		s.n++
	}
	return nil
}
