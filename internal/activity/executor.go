package activity

// executor.go holds the parallel wavefront machinery behind Graph.Run:
// partitioning the topological order into dependency levels and the
// bounded worker pool that ticks one level's activities concurrently.
//
// The paper frames an AV database as a locus of *concurrent* activities
// (§3.1, §4.4); the wavefront executor realizes that without giving up
// the discrete-event determinism the rest of the system leans on.  Each
// scheduling interval runs level by level in three phases:
//
//	A (serial)   deliver chunks across connections, account faults,
//	             emit chunk spans, stage every node's tick inputs;
//	B (parallel) Tick the staged nodes and draw their latency samples
//	             on the worker pool;
//	C (serial)   surface the first error in topological order, stamp
//	             latency onto outputs, publish produced chunks.
//
// Everything order-sensitive — span IDs, metric updates, fault-plan RNG
// draws on links, stats accumulation — happens in the serial phases in
// exactly the order the serial executor used, so a run with N workers is
// byte-identical to a run with one.

import (
	"runtime"
	"sync"

	"avdb/internal/avtime"
)

// levelize partitions a topological order into dependency levels:
// sources sit at level 0 and every other node one past its deepest
// predecessor.  Nodes within a level share no path and may tick
// concurrently.  Levels preserve the relative order of `order`; because
// topo()'s FIFO Kahn sort dequeues whole frontiers before any of their
// successors, concatenating the levels reproduces `order` exactly, which
// is what keeps parallel runs byte-identical to serial ones.
func levelize(order []Activity, conns []*Connection) [][]Activity {
	incoming := make(map[string][]*Connection, len(order))
	for _, c := range conns {
		incoming[c.to.Name()] = append(incoming[c.to.Name()], c)
	}
	depth := make(map[string]int, len(order))
	deepest := 0
	for _, node := range order {
		d := 0
		for _, c := range incoming[node.Name()] {
			if pd := depth[c.from.Name()] + 1; pd > d {
				d = pd
			}
		}
		depth[node.Name()] = d
		if d > deepest {
			deepest = d
		}
	}
	levels := make([][]Activity, deepest+1)
	for _, node := range order {
		d := depth[node.Name()]
		levels[d] = append(levels[d], node)
	}
	return levels
}

// maxWidth reports the widest level — the graph's available parallelism.
func maxWidth(levels [][]Activity) int {
	w := 0
	for _, l := range levels {
		if len(l) > w {
			w = len(l)
		}
	}
	return w
}

// resolveWorkers applies the RunConfig.Workers defaulting rule: zero or
// negative means GOMAXPROCS, and there is never a reason to keep more
// lanes than the widest level.
func resolveWorkers(requested, width int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > width {
		w = width
	}
	if w < 1 {
		w = 1
	}
	return w
}

// tickEntry is one activity's unit of work for the current level: built
// in phase A, executed (possibly concurrently) in phase B, merged in
// phase C.  Entries live in a slice reused across ticks so the steady
// state allocates nothing beyond the tick contexts the serial executor
// already made.
type tickEntry struct {
	node Activity
	tc   *TickContext
	lat  avtime.WorldTime
	err  error
}

// exec runs the parallel-safe part of a node's tick: the Tick itself and
// the node's latency draw (each activity owns its latency model and RNG,
// so draws from different nodes commute).
func (e *tickEntry) exec() {
	if err := e.node.Tick(e.tc); err != nil {
		e.err = err
		return
	}
	e.lat = sampleLatency(e.node)
}

// tickPool is a persistent bounded worker pool.  It is built once per
// run, so the per-level cost is a channel send per entry and one
// WaitGroup cycle — no goroutine churn on the hot path.
type tickPool struct {
	jobs chan *tickEntry
	wg   sync.WaitGroup
}

func newTickPool(workers int) *tickPool {
	p := &tickPool{jobs: make(chan *tickEntry, workers)}
	for i := 0; i < workers; i++ {
		go func() {
			for e := range p.jobs {
				e.exec()
				p.wg.Done()
			}
		}()
	}
	return p
}

// run executes the entries on the pool and blocks until all complete.
func (p *tickPool) run(entries []tickEntry) {
	p.wg.Add(len(entries))
	for i := range entries {
		p.jobs <- &entries[i]
	}
	p.wg.Wait()
}

// close releases the pool's workers.
func (p *tickPool) close() { close(p.jobs) }
