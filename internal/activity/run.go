package activity

import (
	"fmt"

	"avdb/internal/avtime"
	"avdb/internal/obs"
	"avdb/internal/sched"
)

// GraphRun is one graph execution, unrolled into a resumable per-tick
// state machine so a scheduler can interleave several runs on one shared
// clock.  The protocol is:
//
//	r, err := g.Begin(cfg)        // validate, levelize, open spans
//	for {
//	    done, err := r.Tick()     // one wavefront over every level
//	    if err != nil { break }
//	    r.Commit()                // advance the clock past the tick
//	    if done { break }
//	}
//	stats, err := r.Finish()      // drain, close spans, stop nodes
//
// Graph.Run drives exactly this loop, so a run stepped externally (by
// core.Engine) is byte-identical — same RunStats, same obs output — to a
// direct Run when nothing else shares the clock.  An external driver may
// replace Commit with its own clock advance covering several runs; Tick
// itself never moves the clock.
//
// GraphRun is not safe for concurrent use: Tick, Commit, SetRound and
// Finish must be called from one goroutine at a time.
type GraphRun struct {
	g        *Graph
	clock    *sched.VirtualClock
	rate     avtime.Rate
	maxTicks int

	order    []Activity
	conns    []*Connection
	incoming map[string][]*Connection
	levels   [][]Activity
	pool     *tickPool
	gate     *sched.AdvanceGate
	entries  []tickEntry

	startAt avtime.WorldTime
	lastNow avtime.WorldTime // scheduled time of the last executed tick

	sink      obs.Sink
	pbSpan    obs.SpanID
	actSpans  map[string]obs.SpanID
	connSpans map[*Connection]obs.SpanID

	stats    *RunStats
	tick     int   // ticks executed so far
	round    int64 // round tag for the next tick; <0 follows the tick index
	runErr   error
	done     bool
	finished bool
}

// Begin validates the configuration, freezes the graph's topology into
// dependency levels, opens the playback/activity/connection spans and
// returns a run ready for its first Tick.  The graph's nodes must already
// be started.  On error nothing is torn down (matching Run's historical
// behavior); the caller still owns the started graph.
func (g *Graph) Begin(cfg RunConfig) (*GraphRun, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("activity: RunConfig needs a clock")
	}
	rate := cfg.Rate
	if rate.IsZero() {
		rate = avtime.RateVideo30
	}
	maxTicks := cfg.MaxTicks
	if maxTicks <= 0 {
		maxTicks = 10_000_000
	}
	order, err := g.topo()
	if err != nil {
		return nil, err
	}
	conns := g.Connections()
	incoming := make(map[string][]*Connection)
	for _, c := range conns {
		incoming[c.to.Name()] = append(incoming[c.to.Name()], c)
	}
	levels := levelize(order, conns)
	workers := resolveWorkers(cfg.Workers, maxWidth(levels))
	var pool *tickPool
	if workers > 1 {
		pool = newTickPool(workers)
	}
	r := &GraphRun{
		g:         g,
		clock:     cfg.Clock,
		rate:      rate,
		maxTicks:  maxTicks,
		order:     order,
		conns:     conns,
		incoming:  incoming,
		levels:    levels,
		pool:      pool,
		gate:      sched.NewAdvanceGate(cfg.Clock),
		entries:   make([]tickEntry, 0, len(order)),
		startAt:   cfg.Clock.Now(),
		sink:      cfg.Obs,
		connSpans: map[*Connection]obs.SpanID{},
		stats:     &RunStats{},
		round:     -1,
	}
	// Observability: one playback span for the run, one activity span per
	// node and one connection span per edge, all closed by Finish on any
	// path.  Every chunk delivery nests a chunk span under its connection.
	// All guards are nil checks so an uninstrumented run never touches the
	// sink.
	if r.sink != nil {
		r.pbSpan = r.sink.BeginSpan(cfg.ObsParent, obs.KindPlayback, g.name, r.startAt)
		r.actSpans = make(map[string]obs.SpanID, len(order))
		for _, node := range order {
			r.actSpans[node.Name()] = r.sink.BeginSpan(r.pbSpan, obs.KindActivity, node.Name(), r.startAt)
		}
		for _, c := range conns {
			r.connSpans[c] = r.sink.BeginSpan(r.pbSpan, obs.KindConnection, c.label, r.startAt)
		}
		// Executor shape, not executor configuration: both gauges depend
		// only on the graph, so serial and parallel snapshots stay
		// byte-identical.
		r.sink.SetGauge("exec.levels", int64(len(levels)))
		r.sink.SetGauge("exec.width", int64(maxWidth(levels)))
	}
	return r, nil
}

// Graph returns the graph this run executes.
func (r *GraphRun) Graph() *Graph { return r.g }

// Rate returns the run's tick rate.
func (r *GraphRun) Rate() avtime.Rate { return r.rate }

// Ticks returns the number of ticks executed so far.
func (r *GraphRun) Ticks() int { return r.tick }

// Err returns the run's terminal error, if a Tick has failed.
func (r *GraphRun) Err() error { return r.runErr }

// SwapObs replaces the run's telemetry sink and returns the previous
// one.  The sharded engine uses it right after Begin (which emits the
// session's setup spans directly) to point the run at a private
// obs.Stage, so ticks on parallel workers buffer telemetry race-free
// for an admission-ordered replay at the commit barrier.  Callers must
// not swap while a Tick is in flight.
func (r *GraphRun) SwapObs(s obs.Sink) obs.Sink {
	old := r.sink
	r.sink = s
	return old
}

// Done reports whether the run has no more ticks to execute.
func (r *GraphRun) Done() bool { return r.done || r.runErr != nil || r.finished }

// NextDue returns the world time the run's next tick is scheduled for.
// A scheduler interleaving runs at different rates picks the run(s) with
// the smallest NextDue each step.
func (r *GraphRun) NextDue() avtime.WorldTime {
	return r.startAt + r.rate.DurationOf(avtime.ObjectTime(r.tick))
}

// CommitHorizon returns the clock value the run would commit after its
// last executed tick: the tick's scheduled time plus one tick interval.
// It is intentionally NOT NextDue — rational rates round per tick index,
// so lastNow+unit can differ from startAt+DurationOf(tick) by a
// microsecond, and byte-identity with the historical run loop requires
// the former.  Before the first tick it returns the start time (a no-op
// commit).
func (r *GraphRun) CommitHorizon() avtime.WorldTime {
	if r.tick == 0 {
		return r.startAt
	}
	return r.lastNow + r.rate.UnitDuration()
}

// SetRound tags the next Tick's chunk requests with an explicit storage
// service round.  The multi-session engine numbers rounds by engine step
// so concurrent graphs share per-disk SCAN-EDF batches; a standalone run
// leaves the default (the tick index).
func (r *GraphRun) SetRound(round int64) { r.round = round }

// Commit advances the shared clock past the last executed tick and
// refreshes Elapsed.  Single-run drivers call it after every successful
// Tick; a multi-run scheduler instead commits once per step, to the
// minimum CommitHorizon across its active runs.
func (r *GraphRun) Commit() {
	r.gate.CommitTick(r.CommitHorizon())
	r.stats.Elapsed = r.clock.Now() - r.startAt
}

// Tick executes one scheduling interval: every dependency level in
// order, with the phase A/B/C discipline of executor.go (serial
// delivery, pooled execution, serial publication), so any Workers count
// reproduces the serial byte stream.  It returns done=true when the run
// has nothing further to execute — no node running, every source
// exhausted, or the tick bound reached.  Tick never advances the clock;
// the caller commits (Commit, or a scheduler-wide advance) between
// ticks.  After an error the run is terminal and Finish skips the drain.
func (r *GraphRun) Tick() (bool, error) {
	if r.finished || r.runErr != nil || r.done {
		return true, r.runErr
	}
	if r.tick >= r.maxTicks {
		r.done = true
		return true, nil
	}
	// Keep Elapsed current even when an external scheduler owns the
	// commit: at this point the clock covers every previously committed
	// tick, which is exactly what the historical loop recorded.
	r.stats.Elapsed = r.clock.Now() - r.startAt

	tick := r.tick
	stats := r.stats
	sink := r.sink
	now := r.startAt + r.rate.DurationOf(avtime.ObjectTime(tick))
	iv := avtime.Interval{Start: now, Dur: r.rate.UnitDuration()}
	round := r.round
	if round < 0 {
		round = int64(tick)
	}

	anyRunning := false
	var last avtime.WorldTime
	produced := make(map[*Port]*Chunk)
	for _, level := range r.levels {
		r.entries = r.entries[:0]

		// Phase A — serial, in topological order: move chunks across
		// connections, account faults, emit chunk spans, stage every
		// running node's tick inputs.  Producers sit in strictly
		// earlier levels, so `produced` is complete for this level.
		for _, node := range level {
			if node.State() != StateStarted {
				continue
			}
			anyRunning = true
			tc := NewTickContext(now, tick, iv)
			tc.Round = round
			for _, conn := range r.incoming[node.Name()] {
				src := produced[conn.fromPort]
				if src == nil {
					continue
				}
				oc := conn.deliver(src)
				if oc.err != nil {
					r.runErr = oc.err
					return true, r.runErr
				}
				if oc.chunk == nil {
					// Lost in flight or absorbed by a fail-soft connection:
					// nothing arrives this tick; the receiver sees the gap and
					// the client hears about it.
					if oc.dropped {
						stats.ChunksDropped++
					}
					if oc.failed {
						stats.TransferFailures++
					}
					emitFault(conn.to, EventInfo{Event: EventFault, Activity: conn.to.Name(), At: now, Seq: src.Seq})
					continue
				}
				if oc.corrupted {
					stats.ChunksCorrupted++
				}
				if sink != nil {
					cs := sink.BeginSpan(r.connSpans[conn], obs.KindChunk, conn.label, src.At)
					sink.SpanAttr(cs, "seq", int64(src.Seq))
					sink.EndSpan(cs, oc.chunk.Arrived)
					sink.Observe("stream.chunk_latency_us", int64(oc.chunk.Arrived-oc.chunk.At))
				}
				tc.SetIn(conn.toPort.Name(), oc.chunk)
				stats.Chunks++
				stats.BytesMoved += oc.chunk.Size()
				if oc.chunk.Arrived > last {
					last = oc.chunk.Arrived
				}
			}
			r.entries = append(r.entries, tickEntry{node: node, tc: tc})
		}

		// Phase B — tick the level: on the pool when more than one
		// node is staged, inline otherwise.  A single lane executes
		// in entry order, which is exactly the serial order.
		if r.pool != nil && len(r.entries) > 1 {
			r.pool.run(r.entries)
		} else {
			for i := range r.entries {
				r.entries[i].exec()
			}
		}

		// Phase C — serial, in topological order: surface the first
		// error, stamp activity latency onto outputs, publish chunks
		// for the next level.
		for i := range r.entries {
			e := &r.entries[i]
			if e.err != nil {
				r.runErr = fmt.Errorf("activity: %s at tick %d: %w", e.node.Name(), tick, e.err)
				return true, r.runErr
			}
			for port, c := range e.tc.Outputs() {
				if c == nil {
					continue
				}
				if c.Arrived < now {
					c.Arrived = now
				}
				c.Arrived += e.lat
				propagateExtra(c, e.lat)
				p, ok := e.node.Port(port)
				if !ok {
					r.runErr = fmt.Errorf("activity: %s emitted on unknown port %q", e.node.Name(), port)
					return true, r.runErr
				}
				if c.Arrived > last {
					last = c.Arrived
				}
				produced[p] = c
			}
		}
	}

	stats.Ticks++
	if last > 0 {
		r.gate.Propose(last)
	}
	r.lastNow = now
	r.tick++
	if !anyRunning || r.g.sourcesFinished() || r.tick >= r.maxTicks {
		r.done = true
	}
	return r.done, nil
}

// Finish completes the run: on success it drains the advance gate so the
// final clock reading covers the latest in-flight arrival, then on every
// path it closes the observability spans, releases the worker pool and
// stops the graph's nodes (teardown failures surface as StopErr).
// Finish is idempotent; later calls return the same result.
func (r *GraphRun) Finish() (*RunStats, error) {
	if r.finished {
		return r.stats, r.runErr
	}
	r.finished = true
	if r.runErr == nil {
		// Drain: chunks still in flight when the sources finish belong to
		// this run.  The final clock reading must cover the latest
		// arrival, so tail latency shows up in Elapsed instead of being
		// cut off.
		r.stats.LastArrival = r.gate.Latest()
		r.gate.Drain()
		r.stats.Elapsed = r.clock.Now() - r.startAt
	}
	r.closeObs()
	if r.pool != nil {
		r.pool.close()
	}
	// A finished run leaves every activity quiescent so the graph can be
	// cued and started again; teardown failures surface through stats.
	if err := r.g.Stop(); err != nil {
		r.stats.StopErr = err
	}
	return r.stats, r.runErr
}

// closeObs ends every span opened by Begin and publishes the run's
// stream counters, at the clock's current (post-drain) reading.
func (r *GraphRun) closeObs() {
	if r.sink == nil {
		return
	}
	now := r.clock.Now()
	for _, c := range r.conns {
		id := r.connSpans[c]
		c.mu.Lock()
		chunks, bytes := c.chunks, c.bytes
		c.mu.Unlock()
		r.sink.SpanAttr(id, "chunks", chunks)
		r.sink.SpanAttr(id, "bytes", bytes)
		r.sink.EndSpan(id, now)
	}
	for _, node := range r.order {
		r.sink.EndSpan(r.actSpans[node.Name()], now)
	}
	r.sink.SpanAttr(r.pbSpan, "ticks", int64(r.stats.Ticks))
	r.sink.EndSpan(r.pbSpan, now)
	r.sink.Count("sched.ticks", int64(r.stats.Ticks))
	r.sink.Count("stream.chunks", r.stats.Chunks)
	r.sink.Count("stream.bytes", r.stats.BytesMoved)
	r.sink.Count("stream.dropped", r.stats.ChunksDropped)
	r.sink.Count("stream.corrupted", r.stats.ChunksCorrupted)
	r.sink.Count("stream.transfer_failures", r.stats.TransferFailures)
}
