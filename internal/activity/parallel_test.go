package activity

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"avdb/internal/avtime"
	"avdb/internal/media"
	"avdb/internal/netsim"
	"avdb/internal/obs"
	"avdb/internal/sched"
)

// testMixer merges up to `ins` video inputs by pixel-summing them, the
// fan-in half of a wide wavefront graph.
type testMixer struct {
	*Base
	ins int
}

func newTestMixer(name string, ins int, loc Location) *testMixer {
	m := &testMixer{Base: NewBase(name, "TestMixer", loc), ins: ins}
	for i := 0; i < ins; i++ {
		m.AddPort(fmt.Sprintf("in%d", i), In, media.TypeRawVideo30)
	}
	m.AddPort("out", Out, media.TypeRawVideo30)
	return m
}

func (m *testMixer) Tick(tc *TickContext) error {
	var acc *media.Frame
	var inputs []*Chunk
	seq := 0
	for i := 0; i < m.ins; i++ {
		in := tc.In(fmt.Sprintf("in%d", i))
		if in == nil {
			continue
		}
		inputs = append(inputs, in)
		f := in.Payload.(*media.Frame)
		if acc == nil {
			acc = f.Clone()
		} else {
			for p := range acc.Pix {
				acc.Pix[p] += f.Pix[p]
			}
		}
		seq = in.Seq
	}
	if acc == nil {
		return nil
	}
	tc.Emit("out", &Chunk{Seq: seq, At: tc.Now, Arrived: MaxArrival(inputs...), Payload: acc})
	return nil
}

// buildWideGraph wires width jittered sources through seeded network
// connections into one mixer feeding a sink — fan-in wide enough to give
// the wavefront executor real work, with every random draw seeded so two
// builds behave identically.
func buildWideGraph(t *testing.T, width, frames int) (*Graph, *frameSink) {
	t.Helper()
	g := NewGraph("wide")
	mix := newTestMixer("mix", width, AtDatabase)
	sink := newFrameSink("sink", AtApplication)
	if err := g.Add(mix); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	link := netsim.NewLink("lan", media.DataRate(width)*media.MBPerSecond, 2*avtime.Millisecond, avtime.Millisecond, 99)
	for i := 0; i < width; i++ {
		src := newFrameSource(fmt.Sprintf("src%d", i), AtDatabase)
		src.SetLatency(sched.NewLatency(3*avtime.Millisecond, 2*avtime.Millisecond, int64(i+1)))
		if err := g.Add(src); err != nil {
			t.Fatal(err)
		}
		if err := src.Bind(testValue(frames), "out"); err != nil {
			t.Fatal(err)
		}
		nc, err := link.Connect(media.MBPerSecond)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.ConnectVia(src, "out", mix, fmt.Sprintf("in%d", i), nc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.Connect(mix, "out", sink, "in"); err != nil {
		t.Fatal(err)
	}
	return g, sink
}

func TestLevelsPartitionTopoOrder(t *testing.T) {
	g, _ := buildWideGraph(t, 4, 1)
	order, err := g.topo()
	if err != nil {
		t.Fatal(err)
	}
	levels := levelize(order, g.Connections())
	// The levels must be contiguous slices of the topological order:
	// concatenating them reproduces it exactly, which is what keeps the
	// phased executor's serial phases in the serial executor's order.
	var flat []string
	for _, lv := range levels {
		for _, n := range lv {
			flat = append(flat, n.Name())
		}
	}
	if len(flat) != len(order) {
		t.Fatalf("levels hold %d nodes, order %d", len(flat), len(order))
	}
	for i, n := range order {
		if flat[i] != n.Name() {
			t.Fatalf("levels[%d] = %s, order[%d] = %s", i, flat[i], i, n.Name())
		}
	}
	if len(levels) != 3 {
		t.Errorf("levels = %d, want 3 (sources, mixer, sink)", len(levels))
	}
	if w := maxWidth(levels); w != 4 {
		t.Errorf("maxWidth = %d, want 4", w)
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := resolveWorkers(8, 3); got != 3 {
		t.Errorf("workers capped to width: got %d, want 3", got)
	}
	if got := resolveWorkers(2, 10); got != 2 {
		t.Errorf("explicit workers: got %d, want 2", got)
	}
	if got := resolveWorkers(0, 10); got < 1 {
		t.Errorf("default workers = %d, want >= 1", got)
	}
}

// runWide executes a fresh wide graph under the given worker count and
// returns everything an equivalence check needs: run stats, the
// observability snapshot bytes, and the sink's arrival times.
func runWide(t *testing.T, workers int) (*RunStats, []byte, []avtime.WorldTime) {
	t.Helper()
	g, sink := buildWideGraph(t, 4, 40)
	col := obs.NewCollector()
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	stats, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0), Workers: workers, Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	js, err := col.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	return stats, []byte(js), sink.arrived
}

// runWideStepped executes the same wide graph but drives the GraphRun
// state machine externally, exactly the way the multi-session engine
// does for a lone session: explicit round tags per step and one clock
// commit (to the minimum — here only — commit horizon) after each tick.
func runWideStepped(t *testing.T, workers int) (*RunStats, []byte, []avtime.WorldTime) {
	t.Helper()
	g, sink := buildWideGraph(t, 4, 40)
	col := obs.NewCollector()
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	clock := sched.NewVirtualClock(0)
	run, err := g.Begin(RunConfig{Clock: clock, Workers: workers, Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	for step := int64(0); ; step++ {
		run.SetRound(step)
		done, err := run.Tick()
		if err != nil {
			t.Fatal(err)
		}
		clock.AdvanceTo(run.CommitHorizon())
		if done {
			break
		}
	}
	stats, err := run.Finish()
	if err != nil {
		t.Fatal(err)
	}
	js, err := col.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	return stats, []byte(js), sink.arrived
}

func TestSerialParallelEquivalence(t *testing.T) {
	// Same seeds, different lane counts and drivers: the runs must be
	// byte-identical in stats, arrivals, and the full observability
	// snapshot (span IDs, metric values, histogram buckets).  The
	// "stepped" arms drive Begin/Tick/Commit/Finish externally — the
	// multi-session engine's protocol — and must reproduce the classic
	// Run loop exactly, pinning one-session-under-the-engine to today's
	// behavior for any Workers.
	serialStats, serialSnap, serialArr := runWide(t, 1)
	for _, workers := range []int{2, 4, 8} {
		parStats, parSnap, parArr := runWide(t, workers)
		if !reflect.DeepEqual(serialStats, parStats) {
			t.Errorf("workers=%d: RunStats diverged:\nserial   %+v\nparallel %+v", workers, serialStats, parStats)
		}
		if !reflect.DeepEqual(serialArr, parArr) {
			t.Errorf("workers=%d: sink arrival times diverged", workers)
		}
		if !bytes.Equal(serialSnap, parSnap) {
			t.Errorf("workers=%d: obs snapshots differ (%d vs %d bytes)", workers, len(serialSnap), len(parSnap))
		}
	}
	for _, workers := range []int{1, 2, 4} {
		stStats, stSnap, stArr := runWideStepped(t, workers)
		if !reflect.DeepEqual(serialStats, stStats) {
			t.Errorf("stepped workers=%d: RunStats diverged:\nrun     %+v\nstepped %+v", workers, serialStats, stStats)
		}
		if !reflect.DeepEqual(serialArr, stArr) {
			t.Errorf("stepped workers=%d: sink arrival times diverged", workers)
		}
		if !bytes.Equal(serialSnap, stSnap) {
			t.Errorf("stepped workers=%d: obs snapshots differ (%d vs %d bytes)", workers, len(serialSnap), len(stSnap))
		}
	}
}

func TestFanOutPortSemantics(t *testing.T) {
	// One out port feeding two connections: both receivers get every
	// chunk; delivered copies are independent chunk structs.
	g := NewGraph("fanout")
	src := newFrameSource("src", AtDatabase)
	s1 := newFrameSink("s1", AtApplication)
	s2 := newFrameSink("s2", AtApplication)
	for _, a := range []Activity{src, s1, s2} {
		if err := g.Add(a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.Connect(src, "out", s1, "in"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(src, "out", s2, "in"); err != nil {
		t.Fatal(err)
	}
	if err := src.Bind(testValue(10), "out"); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	stats, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.frames) != 10 || len(s2.frames) != 10 {
		t.Fatalf("fan-out delivered %d/%d frames, want 10/10", len(s1.frames), len(s2.frames))
	}
	if stats.Chunks != 20 {
		t.Errorf("stats.Chunks = %d, want 20 (10 per branch)", stats.Chunks)
	}
	for i := range s1.frames {
		if s1.frames[i].Pix[0] != byte(i) || s2.frames[i].Pix[0] != byte(i) {
			t.Fatalf("branch content wrong at %d", i)
		}
	}
}

// buildMuxFanOut wires one MultiSource whose mux out port fans out over
// two network connections to two MultiSink composites.
func buildMuxFanOut(t *testing.T) (*Graph, [2]*frameSink, [2]*frameSink) {
	t.Helper()
	g := NewGraph("muxfan")

	msrc := NewComposite("dbSource", "MultiSource", AtDatabase)
	v := newFrameSource("video", AtDatabase)
	a := newFrameSource("audio", AtDatabase)
	for _, child := range []Activity{v, a} {
		if err := msrc.Install(child); err != nil {
			t.Fatal(err)
		}
	}
	if err := msrc.ExportMuxOut("out", TrackRef{v, "out"}, TrackRef{a, "out"}); err != nil {
		t.Fatal(err)
	}
	if err := v.Bind(testValue(10), "out"); err != nil {
		t.Fatal(err)
	}
	if err := a.Bind(testValue(10), "out"); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(msrc); err != nil {
		t.Fatal(err)
	}

	var videoSinks, audioSinks [2]*frameSink
	link := netsim.NewLink("lan", 2*media.MBPerSecond, 3*avtime.Millisecond, 0, 1)
	for i := 0; i < 2; i++ {
		msink := NewComposite(fmt.Sprintf("appSink%d", i), "MultiSink", AtApplication)
		wv := newFrameSink("video", AtApplication)
		wa := newFrameSink("audio", AtApplication)
		for _, child := range []Activity{wv, wa} {
			if err := msink.Install(child); err != nil {
				t.Fatal(err)
			}
		}
		if err := msink.ExportMuxIn("in", TrackRef{wv, "in"}, TrackRef{wa, "in"}); err != nil {
			t.Fatal(err)
		}
		if err := g.Add(msink); err != nil {
			t.Fatal(err)
		}
		nc, err := link.Connect(media.MBPerSecond)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.ConnectVia(msrc, "out", msink, "in", nc); err != nil {
			t.Fatal(err)
		}
		videoSinks[i], audioSinks[i] = wv, wa
	}
	return g, videoSinks, audioSinks
}

func TestFanOutMultiPayloadLatencyAppliedOnce(t *testing.T) {
	// Regression for the chunk-aliasing bug: deliver copied the outer
	// chunk shallowly, so both fan-out branches shared one *MultiPayload
	// and propagateExtra shifted the shared parts once per branch —
	// double-applying the link latency on the second branch's tracks.
	g, videoSinks, _ := buildMuxFanOut(t)
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0)}); err != nil {
		t.Fatal(err)
	}
	// Per delivery: 3ms propagation + 32 bytes at 1 MB/s (32µs), applied
	// exactly once to each branch's parts.
	want := 3*avtime.Millisecond + 32*avtime.Microsecond
	for b, wv := range videoSinks {
		if len(wv.arrived) != 10 {
			t.Fatalf("branch %d delivered %d frames, want 10", b, len(wv.arrived))
		}
		if got := wv.arrived[0]; got != want {
			t.Errorf("branch %d part lateness = %v, want %v (latency applied once)", b, got, want)
		}
	}
}

func TestRunDrainsInFlightArrivals(t *testing.T) {
	// A source whose processing latency exceeds the tick interval leaves
	// its final chunks arriving after the last tick; the run must extend
	// the clock (and Elapsed) to cover them instead of cutting them off.
	g := NewGraph("tail")
	src := newFrameSource("src", AtDatabase)
	src.SetLatency(sched.NewLatency(100*avtime.Millisecond, 0, 1))
	sink := newFrameSink("sink", AtApplication)
	if err := g.Add(src); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(src, "out", sink, "in"); err != nil {
		t.Fatal(err)
	}
	if err := src.Bind(testValue(10), "out"); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	clock := sched.NewVirtualClock(0)
	stats, err := g.Run(RunConfig{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.arrived) != 10 {
		t.Fatalf("delivered %d frames, want 10", len(sink.arrived))
	}
	last := sink.arrived[len(sink.arrived)-1]
	if stats.LastArrival != last {
		t.Errorf("LastArrival = %v, want %v", stats.LastArrival, last)
	}
	if now := clock.Now(); now < last {
		t.Errorf("final clock %v does not cover last arrival %v", now, last)
	}
	if stats.Elapsed < last {
		t.Errorf("Elapsed %v under-reports tail latency (last arrival %v)", stats.Elapsed, last)
	}
}

// stopBomb is a sink whose teardown fails.
type stopBomb struct {
	*frameSink
	fail error
}

func (s *stopBomb) Stop() error {
	_ = s.frameSink.Stop()
	return s.fail
}

func TestStopErrorsSurface(t *testing.T) {
	errBoom := errors.New("device wedged")
	g := NewGraph("teardown")
	src := newFrameSource("src", AtDatabase)
	bomb := &stopBomb{frameSink: newFrameSink("sink", AtApplication), fail: errBoom}
	if err := g.Add(src); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(bomb); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(src, "out", bomb, "in"); err != nil {
		t.Fatal(err)
	}
	if err := src.Bind(testValue(3), "out"); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	stats, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(stats.StopErr, errBoom) {
		t.Errorf("StopErr = %v, want wrapped %v", stats.StopErr, errBoom)
	}
	if got := g.Stop(); !errors.Is(got, errBoom) {
		t.Errorf("Graph.Stop = %v, want wrapped %v", got, errBoom)
	}
}

func TestGraphRunParallelWideRace(t *testing.T) {
	// Exercises the worker pool under the race detector: a wide level
	// with per-node latency models, faults absent, many ticks.
	g, sink := buildWideGraph(t, 8, 60)
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	stats, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0), Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.frames) != 60 {
		t.Fatalf("delivered %d frames, want 60", len(sink.frames))
	}
	if stats.Chunks != 8*60+60 {
		t.Errorf("stats.Chunks = %d, want %d", stats.Chunks, 8*60+60)
	}
}
