package activity

import (
	"testing"

	"avdb/internal/media"
	"avdb/internal/obs"
	"avdb/internal/sched"
)

// benchGraph builds the three-stage chain used to measure instrumentation
// overhead on the chunk hot path.
func benchGraph(tb testing.TB, frames int) (*Graph, *benchSink) {
	v := media.NewVideoValue(media.TypeRawVideo30, 32, 24, 8)
	for i := 0; i < frames; i++ {
		if err := v.AppendFrame(media.NewFrame(32, 24, 8)); err != nil {
			tb.Fatal(err)
		}
	}
	g := NewGraph("bench")
	src := newBenchSource("src", v)
	inv := newBenchInverter("inv")
	sink := newBenchSink("sink")
	for _, a := range []Activity{src, inv, sink} {
		if err := g.Add(a); err != nil {
			tb.Fatal(err)
		}
	}
	if _, err := g.Connect(src, "out", inv, "in"); err != nil {
		tb.Fatal(err)
	}
	if _, err := g.Connect(inv, "out", sink, "in"); err != nil {
		tb.Fatal(err)
	}
	return g, sink
}

// BenchmarkGraphRunSinkOverhead compares an uninstrumented run against
// the same run with the zero-value no-op sink installed.  The acceptance
// bar for the observability layer is that nop stays within 5% of nil:
// the hot path pays only nil checks and no-op calls, never allocation
// or formatting.
func BenchmarkGraphRunSinkOverhead(b *testing.B) {
	const frames = 300
	for _, bc := range []struct {
		name string
		sink obs.Sink
	}{
		{"nil", nil},
		{"nop", obs.NopSink{}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g, sink := benchGraph(b, frames)
				if err := g.Start(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0), Obs: bc.sink}); err != nil {
					b.Fatal(err)
				}
				if sink.n != frames {
					b.Fatalf("delivered %d", sink.n)
				}
			}
		})
	}
}

// TestNopSinkChunkPathDoesNotAllocate verifies the allocation half of the
// overhead bar: with the no-op sink, per-chunk instrumentation must not
// allocate.  The run-level setup (span maps) may cost a few fixed
// allocations, so the test streams enough frames that any per-chunk
// allocation would dominate the difference.
func TestNopSinkChunkPathDoesNotAllocate(t *testing.T) {
	const frames = 200
	run := func(s obs.Sink) float64 {
		return testing.AllocsPerRun(10, func() {
			g, sink := benchGraph(t, frames)
			if err := g.Start(); err != nil {
				t.Fatal(err)
			}
			if _, err := g.Run(RunConfig{Clock: sched.NewVirtualClock(0), Obs: s}); err != nil {
				t.Fatal(err)
			}
			if sink.n != frames {
				t.Fatalf("delivered %d", sink.n)
			}
		})
	}
	bare := run(nil)
	nop := run(obs.NopSink{})
	// Allow the fixed per-run span bookkeeping but nothing proportional
	// to the stream: 200 frames x 2 connections would show up as >=400
	// extra allocations if the chunk path allocated even once per chunk.
	if delta := nop - bare; delta > 16 {
		t.Errorf("NopSink run allocates %.0f more than uninstrumented (bare=%.0f nop=%.0f); chunk path must be allocation-free", delta, bare, nop)
	}
}
