// Package activity implements the paper's MediaActivity framework (§4.2):
// activities with typed ports and declared events, the
// Bind/Cue/Start/Stop/Catch behavior of the abstract MediaActivity class,
// flow composition — typed port connections forming activity graphs — and
// composite activities that encapsulate sub-graphs while keeping their
// component streams synchronized.
//
// Execution is discrete-event: a Graph runs tick by tick against a
// virtual clock, moving Chunks from sources through transformers to sinks
// within each tick and accounting world-time latency (activity processing
// plus network transfer plus jitter) on every chunk.  Hour-long
// presentations therefore execute in milliseconds, deterministically.
package activity

import (
	"fmt"

	"avdb/internal/avtime"
	"avdb/internal/media"
)

// Location is where an activity executes: within the database system or
// within the client application (§4.2 "activity location").
type Location int

// The two activity locations of Fig. 3.
const (
	AtDatabase Location = iota
	AtApplication
)

// String returns the location's name.
func (l Location) String() string {
	switch l {
	case AtDatabase:
		return "database"
	case AtApplication:
		return "application"
	}
	return fmt.Sprintf("Location(%d)", int(l))
}

// Dir is a port direction.
type Dir int

// Port directions: streams enter through In ports and leave through Out
// ports.
const (
	In Dir = iota
	Out
)

// String returns "in" or "out".
func (d Dir) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	}
	return fmt.Sprintf("Dir(%d)", int(d))
}

// ActivityKind classifies an activity by its port directions, following
// the paper's taxonomy: sources have output ports only, sinks input ports
// only, transformers both.
type ActivityKind int

// The activity kinds of §3.1.
const (
	KindSource ActivityKind = iota
	KindSink
	KindTransformer
)

// String returns the kind's name.
func (k ActivityKind) String() string {
	switch k {
	case KindSource:
		return "source"
	case KindSink:
		return "sink"
	case KindTransformer:
		return "transformer"
	}
	return fmt.Sprintf("ActivityKind(%d)", int(k))
}

// Port is a stream endpoint on an activity.  A port has a direction and a
// media data type; an In port may be connected to an Out port "provided
// they are of the same data type" (§4.2).
type Port struct {
	name  string
	dir   Dir
	typ   *media.Type
	owner string // owning activity's name, set at AddPort
}

// Name returns the port's name.
func (p *Port) Name() string { return p.name }

// Dir returns the port's direction.
func (p *Port) Dir() Dir { return p.dir }

// Type returns the port's media data type.
func (p *Port) Type() *media.Type { return p.typ }

// Owner returns the owning activity's name.
func (p *Port) Owner() string { return p.owner }

// String formats the port as "activity.port(dir type)".
func (p *Port) String() string {
	return fmt.Sprintf("%s.%s(%s %s)", p.owner, p.name, p.dir, p.typ.Name)
}

// Event is a named activity event, e.g. EachFrame or LastFrame for a
// VideoSource.
type Event string

// Events every activity declares.
const (
	EventStarted Event = "STARTED"
	EventStopped Event = "STOPPED"
)

// Events declared by stream sources.
const (
	EventEachFrame Event = "EACH_FRAME"
	EventLastFrame Event = "LAST_FRAME"
)

// Fault and degradation events — the asynchronous surface of the
// robustness machinery.  Activities that participate in fault handling
// declare the subset they emit; clients Catch them like any other
// event ("perhaps being informed when the transfer is complete", §3.3,
// extended to being informed when it could not complete).
const (
	// EventFault reports a fault the stream absorbed: a failed or
	// dropped transfer, an exhausted retry, a corrupted chunk.
	EventFault Event = "FAULT"
	// EventStalled reports sustained deadline misses on a sink.
	EventStalled Event = "STALLED"
	// EventRecovered reports a stalled sink meeting deadlines again.
	EventRecovered Event = "RECOVERED"
	// EventDegraded reports a quality renegotiation: the stream now
	// carries a cheaper representation of the same value.
	EventDegraded Event = "DEGRADED"
	// EventRestored reports the reverse renegotiation: pressure cleared
	// and the stream carries its original representation again.
	EventRestored Event = "RESTORED"
)

// EventInfo accompanies an event delivery.
type EventInfo struct {
	Event    Event
	Activity string           // emitting activity's name
	At       avtime.WorldTime // world time of the occurrence
	Seq      int              // stream sequence number, when meaningful
}

// Handler receives events an application has Caught.  Handlers run
// synchronously at the emitting activity's tick; in the discrete-event
// model they are instantaneous.
type Handler func(EventInfo)

// State is an activity's lifecycle state.
type State int

// The activity lifecycle.  Stopping is client-initiated; Done means a
// source exhausted its bound value.
const (
	StateIdle State = iota
	StateStarted
	StateStopped
	StateDone
)

// String returns the state's name.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateStarted:
		return "started"
	case StateStopped:
		return "stopped"
	case StateDone:
		return "done"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Chunk is the unit of data on a stream: one media element (a video
// frame, an audio block, a text cue) with its scheduled presentation time
// and the accumulated actual delivery time.
type Chunk struct {
	Seq       int              // element sequence number in the stream
	At        avtime.WorldTime // scheduled presentation time
	Arrived   avtime.WorldTime // actual time after accumulated latencies
	Track     string           // track label inside composites, else ""
	Corrupted bool             // payload damaged in flight by a fault
	Payload   media.Element
}

// Size reports the payload size in bytes (zero for empty chunks).
func (c *Chunk) Size() int64 {
	if c.Payload == nil {
		return 0
	}
	return c.Payload.Size()
}

// Activity is the paper's MediaActivity interface: ports, events, and the
// Bind / Cue / Start / Stop / Catch behaviors.
type Activity interface {
	// Name returns the activity instance's unique name.
	Name() string
	// Class returns the activity class name (e.g. "VideoSource").
	Class() string
	// Location reports where the activity executes.
	Location() Location
	// Kind classifies the activity by its port directions.
	Kind() ActivityKind
	// Ports returns the activity's ports in declaration order.
	Ports() []*Port
	// Port looks a port up by name.
	Port(name string) (*Port, bool)
	// Events returns the events the activity can generate.
	Events() []Event
	// Bind associates a media value with a port (typically configuring a
	// source to produce the value).  The value's type must match the
	// port's.
	Bind(v media.Value, port string) error
	// Binding returns the value bound to a port, if any.
	Binding(port string) (media.Value, bool)
	// Cue positions the activity at the given world time of its bound
	// value, so that starting presents from there ("cueing a VideoSource
	// activity to world time 0 would position it at the first frame").
	Cue(w avtime.WorldTime) error
	// Start begins production/consumption.
	Start() error
	// Stop halts the activity.
	Stop() error
	// Catch registers a handler for one of the activity's events.
	Catch(e Event, h Handler) error
	// State reports the lifecycle state.
	State() State
	// Tick advances the activity across one scheduling interval; the
	// graph runner is the only caller.
	Tick(tc *TickContext) error
}
