package media

import (
	"fmt"
	"math"
)

// Signature is a compact content descriptor of a raster frame: a
// normalized 16-bin luminance histogram.  It supports the "restricted
// content-based retrieval ... by some form of similarity measure" that
// §2 identifies as the practical level of image retrieval (REDI's
// Query-by-Pictorial-Example).
type Signature [16]float64

// SignatureOf computes a frame's signature.
func SignatureOf(f *Frame) Signature {
	var s Signature
	if len(f.Pix) == 0 {
		return s
	}
	bpp := f.BytesPerPixel()
	n := 0
	for i := 0; i < len(f.Pix); i += bpp {
		s[int(f.Pix[i])>>4]++
		n++
	}
	for i := range s {
		s[i] /= float64(n)
	}
	return s
}

// Distance reports the L1 distance between two signatures, in [0, 2].
func (s Signature) Distance(o Signature) float64 {
	var d float64
	for i := range s {
		d += math.Abs(s[i] - o[i])
	}
	return d
}

// VideoSignature summarizes a video value by averaging the signatures of
// up to maxSamples evenly spaced frames.
func VideoSignature(v *VideoValue, maxSamples int) (Signature, error) {
	n := v.NumFrames()
	if n == 0 {
		return Signature{}, fmt.Errorf("media: signature of empty video")
	}
	if maxSamples <= 0 {
		maxSamples = 8
	}
	if maxSamples > n {
		maxSamples = n
	}
	var acc Signature
	for k := 0; k < maxSamples; k++ {
		f, err := v.Frame(k * n / maxSamples)
		if err != nil {
			return Signature{}, err
		}
		s := SignatureOf(f)
		for i := range acc {
			acc[i] += s[i]
		}
	}
	for i := range acc {
		acc[i] /= float64(maxSamples)
	}
	return acc, nil
}
