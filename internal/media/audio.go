package media

import (
	"fmt"

	"avdb/internal/avtime"
)

// SampleFrame is one audio element: the simultaneous samples of all
// channels at one sampling instant (the paper's "pairs of 16 bit audio
// samples" for CD audio).
type SampleFrame []int16

// ElementKind reports KindAudio.
func (s SampleFrame) ElementKind() Kind { return KindAudio }

// Size reports the element's byte size (two bytes per channel sample).
func (s SampleFrame) Size() int64 { return int64(len(s)) * 2 }

// AudioBlock is a window of consecutive sample frames, the unit in which
// stream activities move audio (per-sample chunks would be needlessly
// fine-grained at 44.1kHz).  Samples are interleaved.
type AudioBlock struct {
	Channels int
	Start    avtime.ObjectTime // object time of the first sample frame
	Samples  []int16
}

// ElementKind reports KindAudio.
func (b *AudioBlock) ElementKind() Kind { return KindAudio }

// Size reports the block's byte size.
func (b *AudioBlock) Size() int64 { return int64(len(b.Samples)) * 2 }

// NumFrames reports the number of sample frames in the block.
func (b *AudioBlock) NumFrames() int {
	if b.Channels == 0 {
		return 0
	}
	return len(b.Samples) / b.Channels
}

// Block returns the samples of frames [i, j) as an AudioBlock sharing
// storage with the value.
func (a *AudioValue) Block(i, j int) (*AudioBlock, error) {
	s, err := a.Samples(i, j)
	if err != nil {
		return nil, err
	}
	return &AudioBlock{Channels: a.channels, Start: avtime.ObjectTime(i), Samples: s}, nil
}

// AudioValue is the paper's AudioValue class: numChannel, depth and a
// sequence of sample frames.  Samples are stored interleaved; depth is
// fixed at 16 bits (the storage layer packs narrower qualities).
type AudioValue struct {
	base
	channels int
	samples  []int16 // interleaved: frame i occupies [i*channels, (i+1)*channels)
}

var _ Value = (*AudioValue)(nil)

// NewAudioValue returns an empty audio value with the given channel count
// and media data type.  The type must be an audio type.
func NewAudioValue(typ *Type, channels int) *AudioValue {
	if typ.Kind != KindAudio {
		panic(fmt.Sprintf("media: NewAudioValue with %s type %q", typ.Kind, typ.Name))
	}
	if channels <= 0 {
		panic(fmt.Sprintf("media: invalid channel count %d", channels))
	}
	a := &AudioValue{channels: channels}
	a.base = newBase(typ, func() int { return a.NumSamples() })
	return a
}

// Channels reports the number of audio channels.
func (a *AudioValue) Channels() int { return a.channels }

// SampleDepth reports the bits per sample (always 16 in memory).
func (a *AudioValue) SampleDepth() int { return 16 }

// NumSamples reports the number of sample frames.
func (a *AudioValue) NumSamples() int { return len(a.samples) / a.channels }

// NumElements implements Value.
func (a *AudioValue) NumElements() int { return a.NumSamples() }

// AppendSamples appends interleaved samples.  The slice length must be a
// multiple of the channel count.
func (a *AudioValue) AppendSamples(s []int16) error {
	if len(s)%a.channels != 0 {
		return fmt.Errorf("media: %d samples not a multiple of %d channels", len(s), a.channels)
	}
	a.samples = append(a.samples, s...)
	return nil
}

// Sample returns sample frame i.
func (a *AudioValue) Sample(i int) (SampleFrame, error) {
	if i < 0 || i >= a.NumSamples() {
		return nil, fmt.Errorf("%w: sample %d of %d", ErrOutOfRange, i, a.NumSamples())
	}
	return SampleFrame(a.samples[i*a.channels : (i+1)*a.channels]), nil
}

// Samples returns the interleaved samples of frames [i, j) without
// copying.  Stream activities move audio in such windows rather than one
// element at a time.
func (a *AudioValue) Samples(i, j int) ([]int16, error) {
	if i < 0 || j < i || j > a.NumSamples() {
		return nil, fmt.Errorf("%w: samples [%d,%d) of %d", ErrOutOfRange, i, j, a.NumSamples())
	}
	return a.samples[i*a.channels : j*a.channels], nil
}

// Element implements Value, returning the sample frame presented at world
// time w.
func (a *AudioValue) Element(w avtime.WorldTime) (Element, error) {
	i, err := a.objectIndex(w)
	if err != nil {
		return nil, err
	}
	s, err := a.Sample(i)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// ElementAt implements Value.
func (a *AudioValue) ElementAt(o avtime.ObjectTime) (Element, error) {
	i, err := a.checkIndex(o)
	if err != nil {
		return nil, err
	}
	s, err := a.Sample(i)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Size implements Value: two bytes per channel sample.
func (a *AudioValue) Size() int64 { return int64(len(a.samples)) * 2 }

// Segment returns a new value sharing sample frames [i, j) with a.
func (a *AudioValue) Segment(i, j int) (*AudioValue, error) {
	if i < 0 || j < i || j > a.NumSamples() {
		return nil, fmt.Errorf("%w: segment [%d,%d) of %d", ErrOutOfRange, i, j, a.NumSamples())
	}
	s := NewAudioValue(a.typ, a.channels)
	s.samples = a.samples[i*a.channels : j*a.channels : j*a.channels]
	return s, nil
}

// Clone returns a deep copy with an identity transform.
func (a *AudioValue) Clone() *AudioValue {
	c := NewAudioValue(a.typ, a.channels)
	c.samples = append([]int16(nil), a.samples...)
	return c
}

// Equal reports whether two audio values are identical in type, channel
// layout and samples.
func (a *AudioValue) Equal(o *AudioValue) bool {
	if a.typ != o.typ || a.channels != o.channels || len(a.samples) != len(o.samples) {
		return false
	}
	for i := range a.samples {
		if a.samples[i] != o.samples[i] {
			return false
		}
	}
	return true
}

// String describes the value, e.g. "audio/cd-pcm 2ch, 44100 samples".
func (a *AudioValue) String() string {
	return fmt.Sprintf("%s %dch, %d samples", a.typ.Name, a.channels, a.NumSamples())
}
