package media

import (
	"fmt"

	"avdb/internal/avtime"
)

// Frame is a raster video frame: Depth bits per pixel, rows packed
// top-to-bottom into Pix.  Only byte-aligned depths (8, 16, 24, 32) are
// used; Pix holds Width*Height*Depth/8 bytes.
type Frame struct {
	Width, Height, Depth int
	Pix                  []byte
}

// NewFrame allocates a zeroed frame.
func NewFrame(w, h, depth int) *Frame {
	if w <= 0 || h <= 0 || depth <= 0 || depth%8 != 0 {
		panic(fmt.Sprintf("media: invalid frame geometry %dx%dx%d", w, h, depth))
	}
	return &Frame{Width: w, Height: h, Depth: depth, Pix: make([]byte, w*h*depth/8)}
}

// ElementKind reports KindVideo.
func (f *Frame) ElementKind() Kind { return KindVideo }

// Size reports the frame's byte size.
func (f *Frame) Size() int64 { return int64(len(f.Pix)) }

// BytesPerPixel reports the pixel stride in bytes.
func (f *Frame) BytesPerPixel() int { return f.Depth / 8 }

// At returns the first byte of the pixel at (x, y).  For multi-byte
// depths use PixelOffset with direct Pix access.
func (f *Frame) At(x, y int) byte {
	return f.Pix[f.PixelOffset(x, y)]
}

// Set stores v in the first byte of the pixel at (x, y).
func (f *Frame) Set(x, y int, v byte) {
	f.Pix[f.PixelOffset(x, y)] = v
}

// PixelOffset reports the index into Pix of the pixel at (x, y).
func (f *Frame) PixelOffset(x, y int) int {
	if x < 0 || x >= f.Width || y < 0 || y >= f.Height {
		panic(fmt.Sprintf("media: pixel (%d,%d) outside %dx%d frame", x, y, f.Width, f.Height))
	}
	return (y*f.Width + x) * f.BytesPerPixel()
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	c := *f
	c.Pix = make([]byte, len(f.Pix))
	copy(c.Pix, f.Pix)
	return &c
}

// Equal reports whether two frames have identical geometry and pixels.
func (f *Frame) Equal(o *Frame) bool {
	if f.Width != o.Width || f.Height != o.Height || f.Depth != o.Depth {
		return false
	}
	if len(f.Pix) != len(o.Pix) {
		return false
	}
	for i := range f.Pix {
		if f.Pix[i] != o.Pix[i] {
			return false
		}
	}
	return true
}

// VideoValue is the paper's VideoValue class: width, height, depth and a
// sequence of raster frames.  The zero value is not usable; construct with
// NewVideoValue.
type VideoValue struct {
	base
	width, height, depth int
	frames               []*Frame
}

var _ Value = (*VideoValue)(nil)

// NewVideoValue returns an empty video value of the given geometry and
// media data type.  The type must be a video type; its rate drives the
// value's world/object transform.
func NewVideoValue(typ *Type, w, h, depth int) *VideoValue {
	if typ.Kind != KindVideo {
		panic(fmt.Sprintf("media: NewVideoValue with %s type %q", typ.Kind, typ.Name))
	}
	if w <= 0 || h <= 0 || depth <= 0 || depth%8 != 0 {
		panic(fmt.Sprintf("media: invalid video geometry %dx%dx%d", w, h, depth))
	}
	v := &VideoValue{width: w, height: h, depth: depth}
	v.base = newBase(typ, func() int { return len(v.frames) })
	return v
}

// Width reports the frame width in pixels.
func (v *VideoValue) Width() int { return v.width }

// Height reports the frame height in pixels.
func (v *VideoValue) Height() int { return v.height }

// Depth reports the bits per pixel.
func (v *VideoValue) Depth() int { return v.depth }

// NumFrames reports the number of frames (the paper's numFrame attribute).
func (v *VideoValue) NumFrames() int { return len(v.frames) }

// NumElements implements Value.
func (v *VideoValue) NumElements() int { return len(v.frames) }

// AppendFrame appends a frame.  The frame must match the value's geometry.
func (v *VideoValue) AppendFrame(f *Frame) error {
	if f.Width != v.width || f.Height != v.height || f.Depth != v.depth {
		return fmt.Errorf("media: frame %dx%dx%d does not match value %dx%dx%d",
			f.Width, f.Height, f.Depth, v.width, v.height, v.depth)
	}
	v.frames = append(v.frames, f)
	return nil
}

// Frame returns frame i.
func (v *VideoValue) Frame(i int) (*Frame, error) {
	if i < 0 || i >= len(v.frames) {
		return nil, fmt.Errorf("%w: frame %d of %d", ErrOutOfRange, i, len(v.frames))
	}
	return v.frames[i], nil
}

// Element implements Value, returning the frame presented at world time w.
func (v *VideoValue) Element(w avtime.WorldTime) (Element, error) {
	i, err := v.objectIndex(w)
	if err != nil {
		return nil, err
	}
	return v.frames[i], nil
}

// ElementAt implements Value.
func (v *VideoValue) ElementAt(o avtime.ObjectTime) (Element, error) {
	i, err := v.checkIndex(o)
	if err != nil {
		return nil, err
	}
	return v.frames[i], nil
}

// Size implements Value.
func (v *VideoValue) Size() int64 {
	var n int64
	for _, f := range v.frames {
		n += f.Size()
	}
	return n
}

// ReplaceFrame substitutes frame i, a passive-state modification (§4.2).
func (v *VideoValue) ReplaceFrame(i int, f *Frame) error {
	if i < 0 || i >= len(v.frames) {
		return fmt.Errorf("%w: frame %d of %d", ErrOutOfRange, i, len(v.frames))
	}
	if f.Width != v.width || f.Height != v.height || f.Depth != v.depth {
		return fmt.Errorf("media: frame geometry mismatch in ReplaceFrame")
	}
	v.frames[i] = f
	return nil
}

// InsertFrames inserts frames before index i (i may equal NumFrames to
// append), a passive-state modification (§4.2).
func (v *VideoValue) InsertFrames(i int, fs ...*Frame) error {
	if i < 0 || i > len(v.frames) {
		return fmt.Errorf("%w: insert at %d of %d", ErrOutOfRange, i, len(v.frames))
	}
	for _, f := range fs {
		if f.Width != v.width || f.Height != v.height || f.Depth != v.depth {
			return fmt.Errorf("media: frame geometry mismatch in InsertFrames")
		}
	}
	v.frames = append(v.frames[:i], append(append([]*Frame{}, fs...), v.frames[i:]...)...)
	return nil
}

// DeleteFrames removes frames [i, j), a passive-state modification (§4.2).
func (v *VideoValue) DeleteFrames(i, j int) error {
	if i < 0 || j < i || j > len(v.frames) {
		return fmt.Errorf("%w: delete [%d,%d) of %d", ErrOutOfRange, i, j, len(v.frames))
	}
	v.frames = append(v.frames[:i], v.frames[j:]...)
	return nil
}

// Segment returns a new value sharing frames [i, j) with v.  Segments are
// how editing applications address portions of stored material without
// copying (logical data sharing through aggregation, §2).
func (v *VideoValue) Segment(i, j int) (*VideoValue, error) {
	if i < 0 || j < i || j > len(v.frames) {
		return nil, fmt.Errorf("%w: segment [%d,%d) of %d", ErrOutOfRange, i, j, len(v.frames))
	}
	s := NewVideoValue(v.typ, v.width, v.height, v.depth)
	s.frames = v.frames[i:j:j]
	return s, nil
}

// Clone returns a deep copy of the value with an identity transform.
func (v *VideoValue) Clone() *VideoValue {
	c := NewVideoValue(v.typ, v.width, v.height, v.depth)
	c.frames = make([]*Frame, len(v.frames))
	for i, f := range v.frames {
		c.frames[i] = f.Clone()
	}
	return c
}

// Equal reports whether two values have identical geometry, type and
// frame contents.
func (v *VideoValue) Equal(o *VideoValue) bool {
	if v.typ != o.typ || v.width != o.width || v.height != o.height || v.depth != o.depth {
		return false
	}
	if len(v.frames) != len(o.frames) {
		return false
	}
	for i := range v.frames {
		if !v.frames[i].Equal(o.frames[i]) {
			return false
		}
	}
	return true
}

// String describes the value, e.g. "video/raw30 320x240x8, 90 frames".
func (v *VideoValue) String() string {
	return fmt.Sprintf("%s %dx%dx%d, %d frames", v.typ.Name, v.width, v.height, v.depth, len(v.frames))
}
