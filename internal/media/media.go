// Package media implements the AV data model of the paper's §4.1: media
// values with world/object time behavior, concrete video, audio, text and
// image value classes, media data types, and quality factors.
//
// A media data type (Type) governs "the encoding and interpretation" of a
// value's elements and determines its data rate.  A Value is a finite
// sequence of elements together with a transform between world time and
// the value's own object time; Scale and Translate reposition the value on
// the world timeline exactly as the paper's MediaValue class prescribes.
package media

import (
	"fmt"
	"sort"
	"sync"

	"avdb/internal/avtime"
)

// Kind classifies a media data type by the sense it addresses.
type Kind int

// The media kinds handled by the database.  KindMulti is the kind of a
// multiplexed composite stream carrying several temporally correlated
// tracks over one connection.
const (
	KindVideo Kind = iota
	KindAudio
	KindText
	KindImage
	KindMulti
	// KindControl is the kind of low-rate control streams, e.g. the
	// user-driven camera movement feeding the virtual-world renderer.
	KindControl
)

var kindNames = [...]string{
	KindVideo:   "video",
	KindAudio:   "audio",
	KindText:    "text",
	KindImage:   "image",
	KindMulti:   "multi",
	KindControl: "control",
}

// String returns the kind's name.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// DataRate is a sustained data rate in bytes per second.  It is the
// currency of admission control: devices, network links and activities all
// budget in DataRates.
type DataRate int64

// Convenient data-rate units.
const (
	BytePerSecond DataRate = 1
	KBPerSecond            = 1000 * BytePerSecond
	MBPerSecond            = 1000 * KBPerSecond
	GBPerSecond            = 1000 * MBPerSecond
)

// String formats the rate in engineering units, e.g. "31.10MB/s".
func (r DataRate) String() string {
	switch {
	case r >= GBPerSecond:
		return fmt.Sprintf("%.2fGB/s", float64(r)/float64(GBPerSecond))
	case r >= MBPerSecond:
		return fmt.Sprintf("%.2fMB/s", float64(r)/float64(MBPerSecond))
	case r >= KBPerSecond:
		return fmt.Sprintf("%.2fKB/s", float64(r)/float64(KBPerSecond))
	}
	return fmt.Sprintf("%dB/s", int64(r))
}

// Type is a media data type: it names an encoding, fixes the element rate
// for fixed-rate types, and reports whether elements are compressed.
// Examples from the paper: CD encoded audio (16-bit sample pairs at
// 44.1kHz) and CCIR 601 digital video.
type Type struct {
	Name       string      // canonical name, e.g. "video/ccir601"
	Kind       Kind        // sense addressed
	Rate       avtime.Rate // element rate; zero for untimed types (images)
	Compressed bool        // true if elements are an encoded representation
}

// String returns the type's canonical name.
func (t *Type) String() string { return t.Name }

// typeRegistry holds the known media data types.  Codecs register their
// encoded types at init time; lookups come from schema declarations.
var typeRegistry = struct {
	sync.RWMutex
	m map[string]*Type
}{m: make(map[string]*Type)}

// RegisterType adds a media data type to the registry.  Registering a name
// twice panics: type names are global constants of the system, and a
// collision is a programming error.
func RegisterType(t *Type) *Type {
	typeRegistry.Lock()
	defer typeRegistry.Unlock()
	if _, dup := typeRegistry.m[t.Name]; dup {
		panic(fmt.Sprintf("media: duplicate type registration %q", t.Name))
	}
	typeRegistry.m[t.Name] = t
	return t
}

// LookupType returns the registered type with the given name.
func LookupType(name string) (*Type, bool) {
	typeRegistry.RLock()
	defer typeRegistry.RUnlock()
	t, ok := typeRegistry.m[name]
	return t, ok
}

// Types returns the names of all registered media data types, sorted.
func Types() []string {
	typeRegistry.RLock()
	defer typeRegistry.RUnlock()
	names := make([]string, 0, len(typeRegistry.m))
	for n := range typeRegistry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Built-in raw (uncompressed) media data types.
var (
	// TypeCCIRVideo is component digital video in the style of CCIR 601:
	// raster frames of 8-bit samples.  We use the 25-frame variant so whole
	// frames align with whole milliseconds.
	TypeCCIRVideo = RegisterType(&Type{Name: "video/ccir601", Kind: KindVideo, Rate: avtime.RateVideo25})
	// TypeRawVideo30 is uncompressed 30fps raster video, the paper's
	// timecode rate.
	TypeRawVideo30 = RegisterType(&Type{Name: "video/raw30", Kind: KindVideo, Rate: avtime.RateVideo30})
	// TypeCDAudio is CD encoded audio: pairs of 16-bit samples at 44.1kHz.
	TypeCDAudio = RegisterType(&Type{Name: "audio/cd-pcm", Kind: KindAudio, Rate: avtime.RateCDAudio})
	// TypeFMAudio is "FM-quality" PCM audio.
	TypeFMAudio = RegisterType(&Type{Name: "audio/fm-pcm", Kind: KindAudio, Rate: avtime.RateFMAudio})
	// TypeVoiceAudio is "voice-quality" PCM audio.
	TypeVoiceAudio = RegisterType(&Type{Name: "audio/voice-pcm", Kind: KindAudio, Rate: avtime.RateVoice})
	// TypeTextStream is a stream of timed text cues (subtitles) with
	// millisecond tick resolution.
	TypeTextStream = RegisterType(&Type{Name: "text/stream", Kind: KindText, Rate: avtime.Rate{N: 1000, D: 1}})
	// TypeImage is a single untimed raster image.
	TypeImage = RegisterType(&Type{Name: "image/raster", Kind: KindImage})
	// TypeMultiTrack is the type of a multiplexed composite stream: the
	// single connection between a MultiSource and a MultiSink carries
	// chunks of this type, each bundling one element per track.
	TypeMultiTrack = RegisterType(&Type{Name: "multi/tracks", Kind: KindMulti})
)

// Element is one data element of an AV value: a video frame, an audio
// sample block, a text cue or an image.
type Element interface {
	// ElementKind reports the media kind of the element.
	ElementKind() Kind
	// Size reports the element's size in bytes as stored.
	Size() int64
}

// Value is the paper's MediaValue: a finite sequence of elements with a
// media data type and a position on the world timeline.
type Value interface {
	// Type returns the value's media data type.
	Type() *Type
	// NumElements reports the length of the element sequence.
	NumElements() int
	// Start reports the world time at which the value begins presentation.
	Start() avtime.WorldTime
	// Duration reports the presentation duration of the whole value under
	// its current transform.
	Duration() avtime.WorldTime
	// Interval reports [Start, Start+Duration).
	Interval() avtime.Interval
	// WorldToObject maps a world time to this value's object time.
	WorldToObject(avtime.WorldTime) avtime.ObjectTime
	// ObjectToWorld maps this value's object time to world time.
	ObjectToWorld(avtime.ObjectTime) avtime.WorldTime
	// Scale multiplies the value's presentation speed by f (2 = double
	// speed, half duration).  It panics if f <= 0.
	Scale(f float64)
	// Translate shifts the value on the world timeline by dw.
	Translate(dw avtime.WorldTime)
	// Element returns the element presented at world time w.
	Element(w avtime.WorldTime) (Element, error)
	// ElementAt returns the element with object time o.
	ElementAt(o avtime.ObjectTime) (Element, error)
	// Size reports the total stored size of the value in bytes.
	Size() int64
}

// ErrOutOfRange is returned (wrapped) by element accessors for times that
// fall outside the value.
var ErrOutOfRange = fmt.Errorf("media: time out of value's range")

// base carries the transform bookkeeping shared by every concrete value.
type base struct {
	typ *Type
	tr  avtime.Transform
	n   func() int // element count, supplied by the concrete type
}

func newBase(typ *Type, n func() int) base {
	return base{typ: typ, tr: avtime.NewTransform(typ.Rate), n: n}
}

func (b *base) Type() *Type { return b.typ }

func (b *base) Start() avtime.WorldTime { return b.tr.Translate }

func (b *base) Duration() avtime.WorldTime {
	return b.tr.DurationOf(avtime.ObjectTime(b.n()))
}

func (b *base) Interval() avtime.Interval {
	return avtime.Interval{Start: b.Start(), Dur: b.Duration()}
}

func (b *base) WorldToObject(w avtime.WorldTime) avtime.ObjectTime {
	return b.tr.WorldToObject(w)
}

func (b *base) ObjectToWorld(o avtime.ObjectTime) avtime.WorldTime {
	return b.tr.ObjectToWorld(o)
}

func (b *base) Scale(f float64) {
	if f <= 0 {
		panic("media: Scale factor must be positive")
	}
	b.tr = b.tr.Scaled(f)
}

func (b *base) Translate(dw avtime.WorldTime) {
	b.tr = b.tr.Translated(dw)
}

// objectIndex converts a world time to a bounds-checked element index.
func (b *base) objectIndex(w avtime.WorldTime) (int, error) {
	o := b.tr.WorldToObject(w)
	return b.checkIndex(o)
}

func (b *base) checkIndex(o avtime.ObjectTime) (int, error) {
	if o < 0 || int(o) >= b.n() {
		return 0, fmt.Errorf("%w: element %d of %d", ErrOutOfRange, o, b.n())
	}
	return int(o), nil
}
