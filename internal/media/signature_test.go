package media

import (
	"testing"
	"testing/quick"
)

func TestSignatureProperties(t *testing.T) {
	f := NewFrame(16, 16, 8)
	for i := range f.Pix {
		f.Pix[i] = byte(i)
	}
	s := SignatureOf(f)
	// Normalized: bins sum to 1.
	var sum float64
	for _, b := range s {
		sum += b
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("bins sum to %v", sum)
	}
	// Self distance is zero; distance is symmetric and bounded by 2.
	if s.Distance(s) != 0 {
		t.Error("self distance not zero")
	}
	g := NewFrame(16, 16, 8)
	for i := range g.Pix {
		g.Pix[i] = 255
	}
	o := SignatureOf(g)
	if d := s.Distance(o); d <= 0 || d > 2 {
		t.Errorf("distance = %v", d)
	}
	if s.Distance(o) != o.Distance(s) {
		t.Error("distance not symmetric")
	}
}

func TestSignatureDistanceTriangleProperty(t *testing.T) {
	mk := func(seed byte) Signature {
		f := NewFrame(8, 8, 8)
		for i := range f.Pix {
			f.Pix[i] = byte(int(seed)*7 + i*13)
		}
		return SignatureOf(f)
	}
	f := func(a, b, c byte) bool {
		x, y, z := mk(a), mk(b), mk(c)
		return x.Distance(z) <= x.Distance(y)+y.Distance(z)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVideoSignature(t *testing.T) {
	v := NewVideoValue(TypeRawVideo30, 8, 8, 8)
	for i := 0; i < 20; i++ {
		f := NewFrame(8, 8, 8)
		for p := range f.Pix {
			f.Pix[p] = byte(i * 12)
		}
		if err := v.AppendFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	s, err := VideoSignature(v, 8)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, b := range s {
		sum += b
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("video signature sums to %v", sum)
	}
	// Sampling more frames than exist clamps.
	if _, err := VideoSignature(v, 100); err != nil {
		t.Fatal(err)
	}
	// Default sample count.
	if _, err := VideoSignature(v, 0); err != nil {
		t.Fatal(err)
	}
	empty := NewVideoValue(TypeRawVideo30, 8, 8, 8)
	if _, err := VideoSignature(empty, 4); err == nil {
		t.Error("empty video signature accepted")
	}
	// 24-bit frames sample the first byte per pixel.
	f24 := NewFrame(4, 4, 24)
	if s := SignatureOf(f24); s[0] != 1 {
		t.Errorf("24-bit black frame signature = %v", s)
	}
}
