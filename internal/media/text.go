package media

import (
	"fmt"
	"sort"

	"avdb/internal/avtime"
)

// Cue is one timed-text element: text displayed for a span of the text
// stream's object time (ticks of TypeTextStream's rate, i.e. milliseconds).
type Cue struct {
	At   avtime.ObjectTime // first tick at which the cue is shown
	Dur  avtime.ObjectTime // ticks the cue stays up, > 0
	Text string
}

// ElementKind reports KindText.
func (c Cue) ElementKind() Kind { return KindText }

// Size reports the cue's byte size.
func (c Cue) Size() int64 { return int64(len(c.Text)) }

// TextStreamValue is the paper's TextStreamValue (the subtitleTrack of the
// Newscast class): a sequence of non-overlapping timed text cues.  Its
// object time is the tick, so NumElements is the tick length of the
// stream, not the cue count.
type TextStreamValue struct {
	base
	cues  []Cue
	ticks avtime.ObjectTime // total extent in ticks
}

var _ Value = (*TextStreamValue)(nil)

// NewTextStreamValue returns an empty text stream of the given extent in
// ticks of TypeTextStream's rate (milliseconds).
func NewTextStreamValue(ticks avtime.ObjectTime) *TextStreamValue {
	if ticks < 0 {
		panic("media: negative text stream extent")
	}
	v := &TextStreamValue{ticks: ticks}
	v.base = newBase(TypeTextStream, func() int { return int(v.ticks) })
	return v
}

// AddCue inserts a cue, keeping cues ordered and rejecting overlaps and
// cues extending past the stream's extent.
func (v *TextStreamValue) AddCue(c Cue) error {
	if c.Dur <= 0 {
		return fmt.Errorf("media: cue duration must be positive")
	}
	if c.At < 0 || c.At+c.Dur > v.ticks {
		return fmt.Errorf("%w: cue [%d,%d) of %d ticks", ErrOutOfRange, c.At, c.At+c.Dur, v.ticks)
	}
	i := sort.Search(len(v.cues), func(i int) bool { return v.cues[i].At >= c.At })
	if i < len(v.cues) && v.cues[i].At < c.At+c.Dur {
		return fmt.Errorf("media: cue at tick %d overlaps cue at tick %d", c.At, v.cues[i].At)
	}
	if i > 0 && v.cues[i-1].At+v.cues[i-1].Dur > c.At {
		return fmt.Errorf("media: cue at tick %d overlaps cue at tick %d", c.At, v.cues[i-1].At)
	}
	v.cues = append(v.cues[:i], append([]Cue{c}, v.cues[i:]...)...)
	return nil
}

// NumCues reports the number of cues.
func (v *TextStreamValue) NumCues() int { return len(v.cues) }

// Cue returns cue i in tick order.
func (v *TextStreamValue) Cue(i int) (Cue, error) {
	if i < 0 || i >= len(v.cues) {
		return Cue{}, fmt.Errorf("%w: cue %d of %d", ErrOutOfRange, i, len(v.cues))
	}
	return v.cues[i], nil
}

// CueAt returns the cue displayed at tick o, if any.
func (v *TextStreamValue) CueAt(o avtime.ObjectTime) (Cue, bool) {
	i := sort.Search(len(v.cues), func(i int) bool { return v.cues[i].At+v.cues[i].Dur > o })
	if i < len(v.cues) && v.cues[i].At <= o {
		return v.cues[i], true
	}
	return Cue{}, false
}

// NumElements implements Value: the extent in ticks.
func (v *TextStreamValue) NumElements() int { return int(v.ticks) }

// Element implements Value, returning the cue shown at world time w.  At
// ticks with no cue it returns an empty Cue (blank subtitle), not an
// error; silence is a valid state of a subtitle track.
func (v *TextStreamValue) Element(w avtime.WorldTime) (Element, error) {
	o := v.tr.WorldToObject(w)
	return v.ElementAt(o)
}

// ElementAt implements Value.
func (v *TextStreamValue) ElementAt(o avtime.ObjectTime) (Element, error) {
	if o < 0 || o >= v.ticks {
		return nil, fmt.Errorf("%w: tick %d of %d", ErrOutOfRange, o, v.ticks)
	}
	if c, ok := v.CueAt(o); ok {
		return c, nil
	}
	return Cue{At: o, Dur: 1}, nil
}

// Size implements Value.
func (v *TextStreamValue) Size() int64 {
	var n int64
	for _, c := range v.cues {
		n += c.Size()
	}
	return n
}

// Clone returns a deep copy with an identity transform.
func (v *TextStreamValue) Clone() *TextStreamValue {
	c := NewTextStreamValue(v.ticks)
	c.cues = append([]Cue(nil), v.cues...)
	return c
}

// String describes the value.
func (v *TextStreamValue) String() string {
	return fmt.Sprintf("%s %d cues over %d ticks", v.typ.Name, len(v.cues), v.ticks)
}

// ImageValue is a single untimed raster image, used for the virtual-world
// scenario's high-resolution raster images and surface-scan data.
type ImageValue struct {
	base
	frame *Frame
}

var _ Value = (*ImageValue)(nil)

// NewImageValue wraps a frame as an untimed image value.
func NewImageValue(f *Frame) *ImageValue {
	v := &ImageValue{frame: f}
	v.base = newBase(TypeImage, func() int { return 1 })
	return v
}

// Image returns the underlying frame.
func (v *ImageValue) Image() *Frame { return v.frame }

// NumElements implements Value.
func (v *ImageValue) NumElements() int { return 1 }

// Element implements Value; an image is presented at every world time.
func (v *ImageValue) Element(avtime.WorldTime) (Element, error) { return v.frame, nil }

// ElementAt implements Value.
func (v *ImageValue) ElementAt(o avtime.ObjectTime) (Element, error) {
	if o != 0 {
		return nil, fmt.Errorf("%w: image element %d", ErrOutOfRange, o)
	}
	return v.frame, nil
}

// Size implements Value.
func (v *ImageValue) Size() int64 { return v.frame.Size() }

// Duration implements Value: untimed values have zero duration.
func (v *ImageValue) Duration() avtime.WorldTime { return 0 }
