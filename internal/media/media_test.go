package media

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"avdb/internal/avtime"
)

func testVideo(t *testing.T, n int) *VideoValue {
	t.Helper()
	v := NewVideoValue(TypeRawVideo30, 8, 6, 8)
	for i := 0; i < n; i++ {
		f := NewFrame(8, 6, 8)
		for p := range f.Pix {
			f.Pix[p] = byte(i)
		}
		if err := v.AppendFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

func TestKindString(t *testing.T) {
	if KindVideo.String() != "video" || KindAudio.String() != "audio" {
		t.Error("kind names wrong")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("out-of-range kind name wrong")
	}
}

func TestDataRateString(t *testing.T) {
	cases := []struct {
		r    DataRate
		want string
	}{
		{500, "500B/s"},
		{44100 * 4, "176.40KB/s"},
		{31_104_000, "31.10MB/s"},
		{2 * GBPerSecond, "2.00GB/s"},
	}
	for _, tc := range cases {
		if got := tc.r.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", int64(tc.r), got, tc.want)
		}
	}
}

func TestTypeRegistry(t *testing.T) {
	typ, ok := LookupType("video/ccir601")
	if !ok || typ != TypeCCIRVideo {
		t.Fatal("CCIR type not registered")
	}
	if _, ok := LookupType("no/such"); ok {
		t.Error("lookup of unknown type succeeded")
	}
	names := Types()
	if len(names) < 7 {
		t.Errorf("Types() = %d entries, want >= 7", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("Types() not sorted")
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration did not panic")
			}
		}()
		RegisterType(&Type{Name: "video/ccir601"})
	}()
}

func TestVideoValueBasics(t *testing.T) {
	v := testVideo(t, 90)
	if v.Width() != 8 || v.Height() != 6 || v.Depth() != 8 {
		t.Error("geometry wrong")
	}
	if v.NumFrames() != 90 || v.NumElements() != 90 {
		t.Error("frame count wrong")
	}
	if v.Duration() != 3*avtime.Second {
		t.Errorf("90 frames @30fps duration = %v, want 3s", v.Duration())
	}
	if v.Size() != 90*8*6 {
		t.Errorf("Size = %d", v.Size())
	}
	f, err := v.Frame(10)
	if err != nil || f.Pix[0] != 10 {
		t.Errorf("Frame(10) = %v, %v", f, err)
	}
	if _, err := v.Frame(90); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Frame(90) error = %v", err)
	}
	if got := v.String(); !strings.Contains(got, "90 frames") {
		t.Errorf("String = %q", got)
	}
}

func TestVideoValueElementByWorldTime(t *testing.T) {
	v := testVideo(t, 90)
	e, err := v.Element(avtime.Second) // 1s in = frame 30
	if err != nil {
		t.Fatal(err)
	}
	if e.(*Frame).Pix[0] != 30 {
		t.Errorf("element at 1s is frame %d, want 30", e.(*Frame).Pix[0])
	}
	if _, err := v.Element(5 * avtime.Second); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("element past end error = %v", err)
	}
	if _, err := v.Element(-avtime.Second); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("element before start error = %v", err)
	}
}

func TestVideoValueScaleTranslate(t *testing.T) {
	v := testVideo(t, 90)
	v.Translate(10 * avtime.Second)
	if v.Start() != 10*avtime.Second {
		t.Errorf("Start = %v", v.Start())
	}
	e, err := v.Element(11 * avtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	if e.(*Frame).Pix[0] != 30 {
		t.Errorf("element 1s after translated start = frame %d, want 30", e.(*Frame).Pix[0])
	}
	v.Scale(2) // double speed: whole value now 1.5s
	if v.Duration() != 1500*avtime.Millisecond {
		t.Errorf("duration after 2x = %v, want 1.5s", v.Duration())
	}
	if iv := v.Interval(); iv.Start != 10*avtime.Second || iv.Dur != 1500*avtime.Millisecond {
		t.Errorf("Interval = %v", iv)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Scale(0) did not panic")
			}
		}()
		v.Scale(0)
	}()
}

func TestVideoValueEditing(t *testing.T) {
	v := testVideo(t, 10)
	nf := NewFrame(8, 6, 8)
	nf.Pix[0] = 200
	if err := v.ReplaceFrame(3, nf); err != nil {
		t.Fatal(err)
	}
	if f, _ := v.Frame(3); f.Pix[0] != 200 {
		t.Error("ReplaceFrame did not take")
	}
	if err := v.InsertFrames(0, nf.Clone(), nf.Clone()); err != nil {
		t.Fatal(err)
	}
	if v.NumFrames() != 12 {
		t.Errorf("after insert NumFrames = %d, want 12", v.NumFrames())
	}
	if f, _ := v.Frame(2); f.Pix[0] != 0 {
		t.Error("insert shifted frames wrongly")
	}
	if err := v.DeleteFrames(0, 2); err != nil {
		t.Fatal(err)
	}
	if v.NumFrames() != 10 {
		t.Errorf("after delete NumFrames = %d, want 10", v.NumFrames())
	}
	// Geometry mismatches are rejected.
	bad := NewFrame(4, 4, 8)
	if err := v.AppendFrame(bad); err == nil {
		t.Error("AppendFrame with wrong geometry succeeded")
	}
	if err := v.ReplaceFrame(0, bad); err == nil {
		t.Error("ReplaceFrame with wrong geometry succeeded")
	}
	if err := v.InsertFrames(0, bad); err == nil {
		t.Error("InsertFrames with wrong geometry succeeded")
	}
	if err := v.DeleteFrames(5, 3); err == nil {
		t.Error("DeleteFrames with reversed range succeeded")
	}
}

func TestVideoValueSegmentShares(t *testing.T) {
	v := testVideo(t, 30)
	s, err := v.Segment(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumFrames() != 10 {
		t.Errorf("segment frames = %d", s.NumFrames())
	}
	// Shared, not copied: mutating the parent's frame shows in the segment.
	f, _ := v.Frame(10)
	f.Pix[0] = 99
	sf, _ := s.Frame(0)
	if sf.Pix[0] != 99 {
		t.Error("segment does not share frames with parent")
	}
	if _, err := v.Segment(20, 10); err == nil {
		t.Error("reversed segment succeeded")
	}
}

func TestVideoValueCloneEqual(t *testing.T) {
	v := testVideo(t, 5)
	c := v.Clone()
	if !v.Equal(c) {
		t.Fatal("clone not equal")
	}
	f, _ := c.Frame(0)
	f.Pix[0] = 77
	if v.Equal(c) {
		t.Error("clone shares frame storage with original")
	}
	other := testVideo(t, 4)
	if v.Equal(other) {
		t.Error("values with different frame counts equal")
	}
}

func TestFramePixelAccess(t *testing.T) {
	f := NewFrame(4, 3, 8)
	f.Set(2, 1, 42)
	if f.At(2, 1) != 42 {
		t.Error("Set/At failed")
	}
	if f.PixelOffset(2, 1) != 1*4+2 {
		t.Error("PixelOffset wrong")
	}
	f24 := NewFrame(4, 3, 24)
	if f24.BytesPerPixel() != 3 || len(f24.Pix) != 4*3*3 {
		t.Error("24-bit frame layout wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-bounds pixel access did not panic")
			}
		}()
		f.At(4, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewFrame with bad depth did not panic")
			}
		}()
		NewFrame(4, 3, 7)
	}()
}

func TestAudioValueBasics(t *testing.T) {
	a := NewAudioValue(TypeCDAudio, 2)
	samples := make([]int16, 44100*2)
	for i := range samples {
		samples[i] = int16(i)
	}
	if err := a.AppendSamples(samples); err != nil {
		t.Fatal(err)
	}
	if a.NumSamples() != 44100 || a.Channels() != 2 || a.SampleDepth() != 16 {
		t.Error("audio layout wrong")
	}
	if a.Duration() != avtime.Second {
		t.Errorf("duration = %v, want 1s", a.Duration())
	}
	if a.Size() != 44100*2*2 {
		t.Errorf("Size = %d", a.Size())
	}
	sf, err := a.Sample(100)
	if err != nil || len(sf) != 2 || sf[0] != 200 {
		t.Errorf("Sample(100) = %v, %v", sf, err)
	}
	if err := a.AppendSamples([]int16{1}); err == nil {
		t.Error("odd sample append to stereo value succeeded")
	}
	if _, err := a.Sample(44100); !errors.Is(err, ErrOutOfRange) {
		t.Error("Sample past end succeeded")
	}
	if got := a.String(); !strings.Contains(got, "44100 samples") {
		t.Errorf("String = %q", got)
	}
}

func TestAudioValueWindowsAndSegments(t *testing.T) {
	a := NewAudioValue(TypeVoiceAudio, 1)
	if err := a.AppendSamples([]int16{0, 1, 2, 3, 4, 5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	w, err := a.Samples(2, 5)
	if err != nil || len(w) != 3 || w[0] != 2 {
		t.Errorf("Samples(2,5) = %v, %v", w, err)
	}
	if _, err := a.Samples(5, 2); err == nil {
		t.Error("reversed window succeeded")
	}
	s, err := a.Segment(4, 8)
	if err != nil || s.NumSamples() != 4 {
		t.Fatalf("Segment = %v, %v", s, err)
	}
	if sf, _ := s.Sample(0); sf[0] != 4 {
		t.Error("segment offset wrong")
	}
	c := a.Clone()
	if !a.Equal(c) {
		t.Error("clone not equal")
	}
	if a.Equal(s) {
		t.Error("value equal to its shorter segment")
	}
}

func TestAudioValueElementByWorldTime(t *testing.T) {
	a := NewAudioValue(TypeVoiceAudio, 1) // 8kHz
	if err := a.AppendSamples(make([]int16, 8000)); err != nil {
		t.Fatal(err)
	}
	e, err := a.Element(500 * avtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if e.(SampleFrame).Size() != 2 {
		t.Error("sample frame size wrong")
	}
	if _, err := a.Element(2 * avtime.Second); !errors.Is(err, ErrOutOfRange) {
		t.Error("element past end succeeded")
	}
}

func TestTextStreamCues(t *testing.T) {
	v := NewTextStreamValue(10_000) // 10s extent
	cues := []Cue{
		{At: 1000, Dur: 2000, Text: "hello"},
		{At: 5000, Dur: 1000, Text: "world"},
	}
	for _, c := range cues {
		if err := v.AddCue(c); err != nil {
			t.Fatal(err)
		}
	}
	if v.NumCues() != 2 {
		t.Error("cue count wrong")
	}
	if c, ok := v.CueAt(1500); !ok || c.Text != "hello" {
		t.Errorf("CueAt(1500) = %v, %v", c, ok)
	}
	if _, ok := v.CueAt(4000); ok {
		t.Error("cue found in silence")
	}
	// Overlap rejection, both directions.
	if err := v.AddCue(Cue{At: 2500, Dur: 1000, Text: "x"}); err == nil {
		t.Error("overlapping cue accepted (tail overlap)")
	}
	if err := v.AddCue(Cue{At: 4500, Dur: 1000, Text: "x"}); err == nil {
		t.Error("overlapping cue accepted (head overlap)")
	}
	if err := v.AddCue(Cue{At: 9500, Dur: 1000, Text: "x"}); err == nil {
		t.Error("cue past extent accepted")
	}
	if err := v.AddCue(Cue{At: 100, Dur: 0, Text: "x"}); err == nil {
		t.Error("zero-duration cue accepted")
	}
	// Out-of-order insertion keeps cues sorted.
	if err := v.AddCue(Cue{At: 0, Dur: 500, Text: "first"}); err != nil {
		t.Fatal(err)
	}
	if c, _ := v.Cue(0); c.Text != "first" {
		t.Error("cues not kept sorted")
	}
}

func TestTextStreamElement(t *testing.T) {
	v := NewTextStreamValue(3000)
	if err := v.AddCue(Cue{At: 1000, Dur: 1000, Text: "mid"}); err != nil {
		t.Fatal(err)
	}
	e, err := v.Element(1500 * avtime.Millisecond)
	if err != nil || e.(Cue).Text != "mid" {
		t.Errorf("Element(1.5s) = %v, %v", e, err)
	}
	e, err = v.Element(100 * avtime.Millisecond)
	if err != nil || e.(Cue).Text != "" {
		t.Errorf("silent Element = %v, %v", e, err)
	}
	if _, err := v.Element(5 * avtime.Second); !errors.Is(err, ErrOutOfRange) {
		t.Error("element past extent succeeded")
	}
	if v.Duration() != 3*avtime.Second {
		t.Errorf("duration = %v", v.Duration())
	}
	if c := v.Clone(); c.NumCues() != 1 {
		t.Error("clone lost cues")
	}
}

func TestImageValue(t *testing.T) {
	f := NewFrame(16, 16, 24)
	v := NewImageValue(f)
	if v.NumElements() != 1 || v.Duration() != 0 {
		t.Error("image value timing wrong")
	}
	if v.Image() != f {
		t.Error("Image() lost frame")
	}
	e, err := v.Element(123 * avtime.Second)
	if err != nil || e != Element(f) {
		t.Errorf("Element = %v, %v", e, err)
	}
	if _, err := v.ElementAt(1); !errors.Is(err, ErrOutOfRange) {
		t.Error("ElementAt(1) succeeded for image")
	}
	if v.Size() != 16*16*3 {
		t.Errorf("Size = %d", v.Size())
	}
}

func TestVideoQualityString(t *testing.T) {
	q := VideoQuality{640, 480, 8, 30}
	if q.String() != "640x480x8@30" {
		t.Errorf("String = %q", q.String())
	}
	if q.FrameSize() != 640*480 {
		t.Errorf("FrameSize = %d", q.FrameSize())
	}
	if q.DataRate() != DataRate(640*480*30) {
		t.Errorf("DataRate = %v", q.DataRate())
	}
	if !q.Rate().Equal(avtime.RateVideo30) {
		t.Error("Rate wrong")
	}
}

func TestParseVideoQuality(t *testing.T) {
	for _, s := range []string{"640x480x8@30", "640 x 480 x 8 @ 30", "320x240x8@30"} {
		q, err := ParseVideoQuality(s)
		if err != nil {
			t.Errorf("ParseVideoQuality(%q) error: %v", s, err)
			continue
		}
		if !q.Valid() {
			t.Errorf("parsed quality %v invalid", q)
		}
	}
	for _, bad := range []string{"", "640x480@30", "640x480x8", "ax480x8@30", "0x480x8@30", "640x480x7@30"} {
		if _, err := ParseVideoQuality(bad); err == nil {
			t.Errorf("ParseVideoQuality(%q) succeeded", bad)
		}
	}
}

func TestVideoQualityParseFormatProperty(t *testing.T) {
	f := func(w, h, fps uint8, dRaw uint8) bool {
		q := VideoQuality{int(w) + 1, int(h) + 1, (int(dRaw%4) + 1) * 8, int(fps) + 1}
		back, err := ParseVideoQuality(q.String())
		return err == nil && back == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVideoQualityAtLeast(t *testing.T) {
	hi := VideoQuality{640, 480, 8, 30}
	lo := VideoQuality{320, 240, 8, 30}
	if !hi.AtLeast(lo) || lo.AtLeast(hi) {
		t.Error("AtLeast misordered")
	}
	if !hi.AtLeast(hi) {
		t.Error("AtLeast not reflexive")
	}
}

func TestAudioQuality(t *testing.T) {
	if AudioQualityCD.String() != "CD" || AudioQualityVoice.String() != "voice" {
		t.Error("names wrong")
	}
	rate, ch, depth := AudioQualityCD.Params()
	if !rate.Equal(avtime.RateCDAudio) || ch != 2 || depth != 16 {
		t.Error("CD params wrong")
	}
	if AudioQualityCD.DataRate() != DataRate(44100*2*2) {
		t.Errorf("CD data rate = %v", AudioQualityCD.DataRate())
	}
	if AudioQualityVoice.DataRate() != DataRate(8000) {
		t.Errorf("voice data rate = %v", AudioQualityVoice.DataRate())
	}
	if AudioQualityCD.Type() != TypeCDAudio || AudioQualityUnspecified.Type() != nil {
		t.Error("Type mapping wrong")
	}
	for s, want := range map[string]AudioQuality{
		"voice": AudioQualityVoice, "CD": AudioQualityCD, "fm-quality": AudioQualityFM,
	} {
		if got, err := ParseAudioQuality(s); err != nil || got != want {
			t.Errorf("ParseAudioQuality(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseAudioQuality("8-track"); err == nil {
		t.Error("unknown quality parsed")
	}
}

func TestAudioQualityOrdering(t *testing.T) {
	if !(AudioQualityVoice < AudioQualityFM && AudioQualityFM < AudioQualityCD) {
		t.Error("quality ordering broken")
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"video with audio type": func() { NewVideoValue(TypeCDAudio, 8, 6, 8) },
		"video with bad depth":  func() { NewVideoValue(TypeRawVideo30, 8, 6, 5) },
		"audio with video type": func() { NewAudioValue(TypeRawVideo30, 2) },
		"audio with 0 channels": func() { NewAudioValue(TypeCDAudio, 0) },
		"negative text extent":  func() { NewTextStreamValue(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestElementKindsAndSmallAccessors(t *testing.T) {
	f := NewFrame(2, 2, 8)
	if f.ElementKind() != KindVideo {
		t.Error("frame kind wrong")
	}
	var sf SampleFrame = []int16{1, 2}
	if sf.ElementKind() != KindAudio || sf.Size() != 4 {
		t.Error("sample frame wrong")
	}
	b := &AudioBlock{Channels: 2, Samples: []int16{1, 2, 3, 4}}
	if b.ElementKind() != KindAudio || b.Size() != 8 || b.NumFrames() != 2 {
		t.Error("audio block wrong")
	}
	if (&AudioBlock{}).NumFrames() != 0 {
		t.Error("zero block frames wrong")
	}
	c := Cue{Text: "hello"}
	if c.ElementKind() != KindText || c.Size() != 5 {
		t.Error("cue wrong")
	}
	typ := TypeCCIRVideo
	if typ.String() != "video/ccir601" {
		t.Error("type String wrong")
	}
	if !(VideoQuality{}).IsZero() || (VideoQuality{Width: 1}).IsZero() {
		t.Error("quality IsZero wrong")
	}
	if (avtime.Rate{}).IsZero() != true {
		t.Error("rate IsZero wrong")
	}
}

func TestAudioBlockAccessor(t *testing.T) {
	a := NewAudioValue(TypeVoiceAudio, 2)
	if err := a.AppendSamples([]int16{0, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	blk, err := a.Block(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if blk.Start != 1 || blk.NumFrames() != 2 || blk.Samples[0] != 2 {
		t.Errorf("Block = %+v", blk)
	}
	if _, err := a.Block(3, 1); err == nil {
		t.Error("reversed block accepted")
	}
	if a.NumElements() != 3 {
		t.Error("NumElements wrong")
	}
	if _, err := a.ElementAt(1); err != nil {
		t.Error(err)
	}
	if _, err := a.ElementAt(99); err == nil {
		t.Error("out-of-range ElementAt accepted")
	}
}

func TestVideoValueElementAt(t *testing.T) {
	v := testVideo(t, 3)
	el, err := v.ElementAt(2)
	if err != nil || el.(*Frame).Pix[0] != 2 {
		t.Errorf("ElementAt = %v, %v", el, err)
	}
	if _, err := v.ElementAt(-1); err == nil {
		t.Error("negative ElementAt accepted")
	}
}

func TestTextStreamSizeStringAndCues(t *testing.T) {
	v := NewTextStreamValue(1000)
	if err := v.AddCue(Cue{At: 0, Dur: 100, Text: "abcde"}); err != nil {
		t.Fatal(err)
	}
	if v.Size() != 5 {
		t.Errorf("Size = %d", v.Size())
	}
	if v.String() == "" {
		t.Error("empty String")
	}
	if v.NumElements() != 1000 {
		t.Error("NumElements wrong")
	}
	if _, err := v.Cue(5); err == nil {
		t.Error("missing cue index accepted")
	}
	if _, err := v.ElementAt(-1); err == nil {
		t.Error("negative tick accepted")
	}
}

func TestAudioQualityParamsUnspecified(t *testing.T) {
	r, ch, depth := AudioQualityUnspecified.Params()
	if !r.IsZero() || ch != 0 || depth != 0 {
		t.Error("unspecified params wrong")
	}
	if AudioQualityUnspecified.DataRate() != 0 {
		t.Error("unspecified rate wrong")
	}
	if AudioQuality(99).String() != "AudioQuality(99)" {
		t.Error("out-of-range name wrong")
	}
	rate, ch, depth := AudioQualityFM.Params()
	if !rate.Equal(avtime.RateFMAudio) || ch != 2 || depth != 16 {
		t.Error("FM params wrong")
	}
	if AudioQualityFM.Type() != TypeFMAudio || AudioQualityVoice.Type() != TypeVoiceAudio {
		t.Error("type mapping wrong")
	}
}
