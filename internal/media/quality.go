package media

import (
	"fmt"
	"strconv"
	"strings"

	"avdb/internal/avtime"
)

// VideoQuality is a video quality factor of the paper's form
//
//	w × h × d @ r
//
// "indicating a video resolution of width w and height h pixels, a depth
// of d bits per pixel and a rate of r frames per second" (§4.1).
// Applications speak quality factors; the database maps them to encodings.
type VideoQuality struct {
	Width, Height, Depth int
	FPS                  int
}

// String formats the quality factor exactly as the paper writes it,
// e.g. "640x480x8@30".
func (q VideoQuality) String() string {
	return fmt.Sprintf("%dx%dx%d@%d", q.Width, q.Height, q.Depth, q.FPS)
}

// IsZero reports whether no quality has been specified.
func (q VideoQuality) IsZero() bool { return q == VideoQuality{} }

// Valid reports whether all components are positive and depth is
// byte-aligned.
func (q VideoQuality) Valid() bool {
	return q.Width > 0 && q.Height > 0 && q.Depth > 0 && q.Depth%8 == 0 && q.FPS > 0
}

// Rate returns the quality's frame rate.
func (q VideoQuality) Rate() avtime.Rate { return avtime.MakeRate(int64(q.FPS), 1) }

// DataRate reports the uncompressed data rate the quality implies, the
// number admission control budgets for raw transport.
func (q VideoQuality) DataRate() DataRate {
	return DataRate(int64(q.Width) * int64(q.Height) * int64(q.Depth) / 8 * int64(q.FPS))
}

// FrameSize reports the byte size of one uncompressed frame.
func (q VideoQuality) FrameSize() int64 {
	return int64(q.Width) * int64(q.Height) * int64(q.Depth) / 8
}

// AtLeast reports whether q meets or exceeds o in every component.  A
// value captured at q can serve a request for o without interpolation
// ("it is also possible to view a value at higher quality ... however
// this does not add information", §4.1).
func (q VideoQuality) AtLeast(o VideoQuality) bool {
	return q.Width >= o.Width && q.Height >= o.Height && q.Depth >= o.Depth && q.FPS >= o.FPS
}

// ParseVideoQuality parses the paper's "w x h x d @ r" notation; spaces
// are tolerated, e.g. "640x480x8@30" or "320 x 240 x 8 @ 30".
func ParseVideoQuality(s string) (VideoQuality, error) {
	clean := strings.ReplaceAll(s, " ", "")
	atParts := strings.Split(clean, "@")
	if len(atParts) != 2 {
		return VideoQuality{}, fmt.Errorf("media: malformed video quality %q: want WxHxD@FPS", s)
	}
	dims := strings.Split(atParts[0], "x")
	if len(dims) != 3 {
		return VideoQuality{}, fmt.Errorf("media: malformed video quality %q: want WxHxD@FPS", s)
	}
	var q VideoQuality
	fields := []*int{&q.Width, &q.Height, &q.Depth, &q.FPS}
	for i, str := range append(dims, atParts[1]) {
		v, err := strconv.Atoi(str)
		if err != nil {
			return VideoQuality{}, fmt.Errorf("media: malformed video quality %q: %v", s, err)
		}
		*fields[i] = v
	}
	if !q.Valid() {
		return VideoQuality{}, fmt.Errorf("media: invalid video quality %q", s)
	}
	return q, nil
}

// AudioQuality is an audio quality factor: the paper's "voice-quality,
// FM-quality, or CD-quality" descriptions.
type AudioQuality int

// The audio quality levels, ordered from lowest to highest.
const (
	AudioQualityUnspecified AudioQuality = iota
	AudioQualityVoice
	AudioQualityFM
	AudioQualityCD
)

var audioQualityNames = [...]string{
	AudioQualityUnspecified: "unspecified",
	AudioQualityVoice:       "voice",
	AudioQualityFM:          "FM",
	AudioQualityCD:          "CD",
}

// String returns the quality's name as written in the paper ("voice",
// "FM", "CD").
func (q AudioQuality) String() string {
	if q < 0 || int(q) >= len(audioQualityNames) {
		return fmt.Sprintf("AudioQuality(%d)", int(q))
	}
	return audioQualityNames[q]
}

// ParseAudioQuality parses an audio quality name, case-insensitively.
func ParseAudioQuality(s string) (AudioQuality, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "voice", "voice-quality":
		return AudioQualityVoice, nil
	case "fm", "fm-quality":
		return AudioQualityFM, nil
	case "cd", "cd-quality":
		return AudioQualityCD, nil
	}
	return AudioQualityUnspecified, fmt.Errorf("media: unknown audio quality %q", s)
}

// Params reports the sampling parameters the quality implies.
func (q AudioQuality) Params() (rate avtime.Rate, channels, depth int) {
	switch q {
	case AudioQualityVoice:
		return avtime.RateVoice, 1, 8
	case AudioQualityFM:
		return avtime.RateFMAudio, 2, 16
	case AudioQualityCD:
		return avtime.RateCDAudio, 2, 16
	}
	return avtime.Rate{}, 0, 0
}

// DataRate reports the PCM data rate the quality implies.
func (q AudioQuality) DataRate() DataRate {
	rate, ch, depth := q.Params()
	if rate.IsZero() {
		return 0
	}
	return DataRate(rate.N / rate.D * int64(ch) * int64(depth) / 8)
}

// Type returns the raw PCM media data type matching the quality.
func (q AudioQuality) Type() *Type {
	switch q {
	case AudioQualityVoice:
		return TypeVoiceAudio
	case AudioQualityFM:
		return TypeFMAudio
	case AudioQualityCD:
		return TypeCDAudio
	}
	return nil
}
