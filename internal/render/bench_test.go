package render

import (
	"testing"

	"avdb/internal/media"
)

func BenchmarkRenderFrame320x240(b *testing.B) {
	r := NewRenderer(Museum(), 320, 240)
	cam := Camera{X: 8, Y: 6, Angle: -1.3}
	tex := media.NewFrame(64, 48, 8)
	for i := range tex.Pix {
		tex.Pix[i] = byte(i)
	}
	b.SetBytes(r.FrameSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Render(cam, tex)
	}
}

func BenchmarkRenderFrame160x120(b *testing.B) {
	r := NewRenderer(Museum(), 160, 120)
	cam := Camera{X: 8, Y: 6, Angle: -1.3}
	b.SetBytes(r.FrameSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Render(cam, nil)
	}
}

func BenchmarkWalkthroughStep(b *testing.B) {
	w := Museum()
	r := NewRenderer(w, 160, 120)
	cam := Camera{X: 8, Y: 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cam = w.Move(cam, 0.05, 0.01)
		r.Render(cam, nil)
	}
}
