// Package render is the virtual-world substrate of Scenario II: a small
// software renderer over a grid world whose walls can carry live video
// textures ("the video material could be projected on a wall in the
// virtual world").  A camera navigates the world; each rendered frame is
// a raster image — an AV value — that can be produced either at the
// database site or at the client, which is exactly the trade-off of the
// paper's Fig. 4.
//
// The renderer is a classic column ray-caster: cheap enough to run in
// tests, expensive enough (per-pixel work) that rendering cost is a
// meaningful resource in the Fig. 4 experiments.
package render

import (
	"fmt"
	"math"

	"avdb/internal/media"
)

// TypeCameraControl is the media data type of camera-movement control
// streams: the "move" activity of Fig. 4 produces elements of this type.
var TypeCameraControl = media.RegisterType(&media.Type{Name: "control/camera", Kind: media.KindControl})

// CameraElement is one control-stream element: a camera pose.
type CameraElement struct {
	Cam Camera
}

// ElementKind reports media.KindControl.
func (CameraElement) ElementKind() media.Kind { return media.KindControl }

// Size reports the element's wire size: four float64 fields.
func (CameraElement) Size() int64 { return 32 }

// Cell values of the world grid.
const (
	CellEmpty byte = 0
	// CellVideo is a wall textured with the current video frame.
	CellVideo byte = 255
	// Values 1..254 are plain walls with that base shade.
)

// World is a rectangular grid of cells.
type World struct {
	W, H  int
	cells []byte
}

// NewWorld returns an empty world of the given dimensions, walled at the
// border with shade 200.
func NewWorld(w, h int) *World {
	if w < 3 || h < 3 {
		panic(fmt.Sprintf("render: world %dx%d too small", w, h))
	}
	world := &World{W: w, H: h, cells: make([]byte, w*h)}
	for x := 0; x < w; x++ {
		world.Set(x, 0, 200)
		world.Set(x, h-1, 200)
	}
	for y := 0; y < h; y++ {
		world.Set(0, y, 200)
		world.Set(w-1, y, 200)
	}
	return world
}

// Set assigns a cell.
func (w *World) Set(x, y int, v byte) {
	if x < 0 || x >= w.W || y < 0 || y >= w.H {
		panic(fmt.Sprintf("render: cell (%d,%d) outside %dx%d world", x, y, w.W, w.H))
	}
	w.cells[y*w.W+x] = v
}

// At reads a cell; out-of-bounds cells read as solid wall.
func (w *World) At(x, y int) byte {
	if x < 0 || x >= w.W || y < 0 || y >= w.H {
		return 200
	}
	return w.cells[y*w.W+x]
}

// Museum returns the demo world: a 16×12 gallery with interior pillars
// and a video wall along the north side.
func Museum() *World {
	w := NewWorld(16, 12)
	for x := 4; x <= 11; x++ {
		w.Set(x, 1, CellVideo) // the video wall
	}
	for _, p := range [][2]int{{4, 6}, {8, 6}, {12, 6}, {6, 9}, {10, 9}} {
		w.Set(p[0], p[1], 120)
	}
	return w
}

// Camera is a viewer position and orientation in world units (one cell =
// one unit).
type Camera struct {
	X, Y  float64
	Angle float64 // radians; 0 looks along +x
	FOV   float64 // radians; 0 defaults to ~66°
}

// Move advances the camera by dist along its heading, sliding along
// walls, and turns it by dAngle.  It returns the updated camera.
func (w *World) Move(c Camera, dist, dAngle float64) Camera {
	c.Angle += dAngle
	nx := c.X + math.Cos(c.Angle)*dist
	ny := c.Y + math.Sin(c.Angle)*dist
	if w.At(int(nx), int(c.Y)) == CellEmpty {
		c.X = nx
	}
	if w.At(int(c.X), int(ny)) == CellEmpty {
		c.Y = ny
	}
	return c
}

// Renderer rasterizes views of a world.
type Renderer struct {
	world *World
	w, h  int
}

// NewRenderer returns a renderer producing w×h 8-bit frames.
func NewRenderer(world *World, w, h int) *Renderer {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("render: invalid frame size %dx%d", w, h))
	}
	return &Renderer{world: world, w: w, h: h}
}

// FrameSize reports the byte size of one rendered frame.
func (r *Renderer) FrameSize() int64 { return int64(r.w) * int64(r.h) }

// Render rasterizes the camera's view.  videoTex, when non-nil, textures
// CellVideo walls; a nil texture renders them mid-gray.
func (r *Renderer) Render(cam Camera, videoTex *media.Frame) *media.Frame {
	f := media.NewFrame(r.w, r.h, 8)
	fov := cam.FOV
	if fov == 0 {
		fov = math.Pi / 2.75
	}
	for col := 0; col < r.w; col++ {
		rayAngle := cam.Angle + fov*(float64(col)/float64(r.w)-0.5)
		dist, cell, u := r.cast(cam.X, cam.Y, rayAngle)
		// Remove fisheye.
		dist *= math.Cos(rayAngle - cam.Angle)
		if dist < 1e-4 {
			dist = 1e-4
		}
		wallH := int(float64(r.h) / dist)
		top := (r.h - wallH) / 2
		for y := 0; y < r.h; y++ {
			var shade byte
			switch {
			case y < top: // ceiling
				shade = 16
			case y >= top+wallH: // floor
				shade = 48
			default:
				shade = r.wallShade(cell, u, float64(y-top)/float64(wallH), videoTex)
				// Distance shading.
				att := 1.0 / (1.0 + dist*0.15)
				shade = byte(float64(shade) * att)
			}
			f.Set(col, y, shade)
		}
	}
	return f
}

// cast runs a DDA ray through the grid, returning the distance, the cell
// value hit and the horizontal texture coordinate u in [0,1).
func (r *Renderer) cast(px, py, angle float64) (dist float64, cell byte, u float64) {
	dx, dy := math.Cos(angle), math.Sin(angle)
	mapX, mapY := int(px), int(py)
	var sideDistX, sideDistY float64
	deltaX := math.Abs(1 / nonZero(dx))
	deltaY := math.Abs(1 / nonZero(dy))
	var stepX, stepY int
	if dx < 0 {
		stepX = -1
		sideDistX = (px - float64(mapX)) * deltaX
	} else {
		stepX = 1
		sideDistX = (float64(mapX) + 1 - px) * deltaX
	}
	if dy < 0 {
		stepY = -1
		sideDistY = (py - float64(mapY)) * deltaY
	} else {
		stepY = 1
		sideDistY = (float64(mapY) + 1 - py) * deltaY
	}
	sideX := true
	for i := 0; i < 4*(r.world.W+r.world.H); i++ {
		if sideDistX < sideDistY {
			sideDistX += deltaX
			mapX += stepX
			sideX = true
		} else {
			sideDistY += deltaY
			mapY += stepY
			sideX = false
		}
		if c := r.world.At(mapX, mapY); c != CellEmpty {
			if sideX {
				dist = (float64(mapX) - px + float64(1-stepX)/2) / nonZero(dx)
				u = py + dist*dy
			} else {
				dist = (float64(mapY) - py + float64(1-stepY)/2) / nonZero(dy)
				u = px + dist*dx
			}
			u -= math.Floor(u)
			return dist, c, u
		}
	}
	return float64(r.world.W + r.world.H), 200, 0
}

func nonZero(v float64) float64 {
	if v == 0 {
		return 1e-9
	}
	return v
}

// wallShade picks the pixel for a wall hit: video walls sample the
// texture, plain walls use their base shade with a subtle vertical seam
// pattern.
func (r *Renderer) wallShade(cell byte, u, v float64, videoTex *media.Frame) byte {
	if cell == CellVideo {
		if videoTex == nil {
			return 128
		}
		tx := int(u * float64(videoTex.Width))
		ty := int(v * float64(videoTex.Height))
		if tx >= videoTex.Width {
			tx = videoTex.Width - 1
		}
		if ty >= videoTex.Height {
			ty = videoTex.Height - 1
		}
		return videoTex.At(tx, ty)
	}
	shade := cell
	if int(u*16)%8 == 0 {
		shade = byte(float64(shade) * 0.8)
	}
	return shade
}
