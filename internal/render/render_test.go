package render

import (
	"math"
	"testing"

	"avdb/internal/media"
	"avdb/internal/synth"
)

func TestWorldCells(t *testing.T) {
	w := NewWorld(8, 6)
	if w.At(0, 0) != 200 || w.At(7, 5) != 200 {
		t.Error("border not walled")
	}
	if w.At(3, 3) != CellEmpty {
		t.Error("interior not empty")
	}
	if w.At(-1, 0) != 200 || w.At(0, 99) != 200 {
		t.Error("out-of-bounds not solid")
	}
	w.Set(3, 3, 99)
	if w.At(3, 3) != 99 {
		t.Error("Set failed")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-bounds Set did not panic")
			}
		}()
		w.Set(99, 0, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("tiny world did not panic")
			}
		}()
		NewWorld(2, 2)
	}()
}

func TestMuseumHasVideoWall(t *testing.T) {
	m := Museum()
	var video int
	for x := 0; x < m.W; x++ {
		for y := 0; y < m.H; y++ {
			if m.At(x, y) == CellVideo {
				video++
			}
		}
	}
	if video == 0 {
		t.Error("museum lacks a video wall")
	}
}

func TestCameraMoveAndCollision(t *testing.T) {
	w := NewWorld(8, 6)
	cam := Camera{X: 4, Y: 3, Angle: 0}
	cam = w.Move(cam, 1, 0)
	if cam.X != 5 || cam.Y != 3 {
		t.Errorf("move failed: %+v", cam)
	}
	// Walking into the east wall stops at it.
	for i := 0; i < 10; i++ {
		cam = w.Move(cam, 1, 0)
	}
	if cam.X >= 7 {
		t.Errorf("camera walked through wall: %+v", cam)
	}
	// Turning changes heading.
	cam2 := w.Move(Camera{X: 4, Y: 3}, 0, math.Pi/2)
	if math.Abs(cam2.Angle-math.Pi/2) > 1e-9 {
		t.Error("turn failed")
	}
}

func TestRenderProducesWallsFloorCeiling(t *testing.T) {
	r := NewRenderer(Museum(), 64, 48)
	f := r.Render(Camera{X: 8, Y: 6, Angle: -math.Pi / 2}, nil)
	if f.Width != 64 || f.Height != 48 {
		t.Fatal("frame size wrong")
	}
	if r.FrameSize() != 64*48 {
		t.Error("FrameSize wrong")
	}
	// Ceiling darker than floor, walls present in the middle.
	if f.At(32, 0) != 16 {
		t.Errorf("ceiling = %d", f.At(32, 0))
	}
	if f.At(32, 47) != 48 {
		t.Errorf("floor = %d", f.At(32, 47))
	}
	mid := f.At(32, 24)
	if mid == 16 || mid == 48 {
		t.Errorf("no wall at center: %d", mid)
	}
}

func TestRenderDeterministic(t *testing.T) {
	r := NewRenderer(Museum(), 32, 24)
	cam := Camera{X: 8, Y: 6, Angle: 1.1}
	a := r.Render(cam, nil)
	b := r.Render(cam, nil)
	if !a.Equal(b) {
		t.Error("rendering not deterministic")
	}
}

func TestVideoWallShowsTexture(t *testing.T) {
	r := NewRenderer(Museum(), 64, 48)
	cam := Camera{X: 8, Y: 4, Angle: -math.Pi / 2} // facing the video wall
	plain := r.Render(cam, nil)
	// A texture with a distinctive bright stripe.
	tex := synth.Video(media.TypeRawVideo30, PatternForTest(), 32, 24, 8, 1, 0)
	tf, _ := tex.Frame(0)
	for y := 0; y < 24; y++ {
		tf.Set(16, y, 250)
	}
	textured := r.Render(cam, tf)
	if plain.Equal(textured) {
		t.Error("texture had no effect on the video wall")
	}
	// Different camera positions see different projections (the texture
	// repeats per cell, so change the distance, not just the x offset).
	other := r.Render(Camera{X: 8, Y: 5.5, Angle: -math.Pi / 2}, tf)
	if textured.Equal(other) {
		t.Error("moving the camera did not change the view")
	}
}

// PatternForTest keeps the synth import tidy.
func PatternForTest() synth.Pattern { return synth.PatternGradient }

func TestRendererPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-size renderer did not panic")
		}
	}()
	NewRenderer(Museum(), 0, 10)
}

func TestWalkthroughRendersEveryFrame(t *testing.T) {
	// A user interactively moving through the world: every step renders a
	// distinct frame — "as the user changes position, a new visualization
	// of the world is rendered" (§3.2).
	w := Museum()
	r := NewRenderer(w, 48, 36)
	cam := Camera{X: 8, Y: 8, Angle: math.Pi}
	var prev *media.Frame
	distinct := 0
	for step := 0; step < 20; step++ {
		cam = w.Move(cam, 0.15, 0.05)
		f := r.Render(cam, nil)
		if prev != nil && !f.Equal(prev) {
			distinct++
		}
		prev = f
	}
	if distinct < 15 {
		t.Errorf("only %d distinct frames over 19 moves", distinct)
	}
}
