package avtime

import "fmt"

// Interval is a half-open span [Start, Start+Dur) on the world timeline.
// Timeline diagrams (paper Fig. 1) are built from intervals: each track of
// a temporal composite occupies one interval, and correlations between
// tracks are statements about how their intervals relate.
type Interval struct {
	Start WorldTime
	Dur   WorldTime // non-negative
}

// IntervalOf returns the interval [start, end).  It panics if end < start;
// callers construct intervals from ordered timeline points.
func IntervalOf(start, end WorldTime) Interval {
	if end < start {
		panic(fmt.Sprintf("avtime: interval end %v before start %v", end, start))
	}
	return Interval{Start: start, Dur: end - start}
}

// End reports the exclusive end of the interval.
func (iv Interval) End() WorldTime { return iv.Start + iv.Dur }

// IsEmpty reports whether the interval has zero duration.
func (iv Interval) IsEmpty() bool { return iv.Dur == 0 }

// Contains reports whether world time w falls inside the interval.
func (iv Interval) Contains(w WorldTime) bool {
	return w >= iv.Start && w < iv.End()
}

// ContainsInterval reports whether o lies entirely within iv.
func (iv Interval) ContainsInterval(o Interval) bool {
	return o.Start >= iv.Start && o.End() <= iv.End()
}

// Overlaps reports whether the two intervals share any instant.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start < o.End() && o.Start < iv.End()
}

// Intersect returns the overlapping portion of the two intervals and
// whether it is non-empty.
func (iv Interval) Intersect(o Interval) (Interval, bool) {
	start := max(iv.Start, o.Start)
	end := min(iv.End(), o.End())
	if end <= start {
		return Interval{}, false
	}
	return IntervalOf(start, end), true
}

// Union returns the smallest interval covering both (their convex hull).
func (iv Interval) Union(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	return IntervalOf(min(iv.Start, o.Start), max(iv.End(), o.End()))
}

// Shift returns the interval translated by dw.
func (iv Interval) Shift(dw WorldTime) Interval {
	iv.Start += dw
	return iv
}

// String formats the interval as "[a, b)".
func (iv Interval) String() string {
	return fmt.Sprintf("[%v, %v)", iv.Start, iv.End())
}

// Relation is one of Allen's thirteen interval relations, used by the
// temporal-composition layer to describe and verify track correlations.
type Relation int

// Allen's interval relations.  Inverse relations are the same name with
// the roles swapped (e.g. a Before b ⇔ b After a).
const (
	RelBefore Relation = iota
	RelMeets
	RelOverlaps
	RelStarts
	RelDuring
	RelFinishes
	RelEqual
	RelFinishedBy
	RelContains
	RelStartedBy
	RelOverlappedBy
	RelMetBy
	RelAfter
)

var relationNames = [...]string{
	RelBefore:       "before",
	RelMeets:        "meets",
	RelOverlaps:     "overlaps",
	RelStarts:       "starts",
	RelDuring:       "during",
	RelFinishes:     "finishes",
	RelEqual:        "equal",
	RelFinishedBy:   "finished-by",
	RelContains:     "contains",
	RelStartedBy:    "started-by",
	RelOverlappedBy: "overlapped-by",
	RelMetBy:        "met-by",
	RelAfter:        "after",
}

// String returns the conventional name of the relation.
func (r Relation) String() string {
	if r < 0 || int(r) >= len(relationNames) {
		return fmt.Sprintf("Relation(%d)", int(r))
	}
	return relationNames[r]
}

// Inverse returns the relation that holds with the arguments swapped:
// Relate(a, b).Inverse() == Relate(b, a).
func (r Relation) Inverse() Relation {
	return RelAfter - r + RelBefore
}

// Relate classifies how interval a stands to interval b using Allen's
// interval algebra.  Both intervals must be non-empty for the
// classification to be meaningful; empty intervals are treated as points.
func Relate(a, b Interval) Relation {
	switch {
	case a.End() < b.Start:
		return RelBefore
	case a.End() == b.Start:
		return RelMeets
	case a.Start == b.Start && a.End() == b.End():
		return RelEqual
	case a.Start == b.Start:
		if a.End() < b.End() {
			return RelStarts
		}
		return RelStartedBy
	case a.End() == b.End():
		if a.Start > b.Start {
			return RelFinishes
		}
		return RelFinishedBy
	case a.Start > b.Start && a.End() < b.End():
		return RelDuring
	case a.Start < b.Start && a.End() > b.End():
		return RelContains
	case a.Start < b.Start && a.End() > b.Start && a.End() < b.End():
		return RelOverlaps
	case a.Start > b.Start && a.Start < b.End() && a.End() > b.End():
		return RelOverlappedBy
	case a.Start == b.End():
		return RelMetBy
	default:
		return RelAfter
	}
}
