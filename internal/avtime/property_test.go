package avtime

import (
	"math/rand"
	"testing"
)

// Property tests: randomized but fixed-seed, so failures reproduce.
// Each property is an algebraic law the package documents; the random
// walk just visits far more of the input space than table tests do.

const propIterations = 2000

func propRand() *rand.Rand { return rand.New(rand.NewSource(1993)) }

// randomRate draws from the published media rates plus arbitrary
// normalized rationals.
func randomRate(r *rand.Rand) Rate {
	common := []Rate{RateFilm24, RateVideo25, RateVideo30, RateNTSC,
		RateCDAudio, RateDATAudio, RateFMAudio, RateVoice}
	if r.Intn(2) == 0 {
		return common[r.Intn(len(common))]
	}
	return MakeRate(1+r.Int63n(100_000), 1+r.Int63n(2000))
}

func TestPropTransformRoundTrip(t *testing.T) {
	// The documented contract of ObjectToWorld: the returned instant lies
	// inside the unit's presentation span, so WorldToObject inverts it.
	r := propRand()
	for i := 0; i < propIterations; i++ {
		tr := NewTransform(randomRate(r)).Translated(WorldTime(r.Int63n(int64(Hour)) - int64(30*Minute)))
		o := ObjectTime(r.Int63n(10_000_000))
		if got := tr.WorldToObject(tr.ObjectToWorld(o)); got != o {
			t.Fatalf("iter %d: rate %v translate %v: WorldToObject(ObjectToWorld(%d)) = %d",
				i, tr.Rate, tr.Translate, o, got)
		}
	}
}

func TestPropTransformTranslateInverts(t *testing.T) {
	r := propRand()
	for i := 0; i < propIterations; i++ {
		tr := NewTransform(randomRate(r)).Translated(WorldTime(r.Int63n(int64(Hour))))
		d := WorldTime(r.Int63n(int64(Hour)) - int64(30*Minute))
		if got := tr.Translated(d).Translated(-d); got != tr {
			t.Fatalf("iter %d: Translated(%v).Translated(-%v) = %+v, want %+v", i, d, d, got, tr)
		}
	}
}

func TestPropRateNormalizationInvariant(t *testing.T) {
	// Scaling numerator and denominator by the same factor denotes the
	// same frequency, and every derived quantity must agree.
	r := propRand()
	for i := 0; i < propIterations; i++ {
		n, d := 1+r.Int63n(100_000), 1+r.Int63n(2000)
		k := 1 + r.Int63n(50)
		a, b := MakeRate(n, d), MakeRate(k*n, k*d)
		if a != b {
			t.Fatalf("iter %d: MakeRate(%d,%d) = %v but MakeRate(%d,%d) = %v", i, n, d, a, k*n, k*d, b)
		}
		if !a.Equal(Rate{k * n, k * d}) {
			t.Fatalf("iter %d: Equal rejects unnormalized %d/%d", i, k*n, k*d)
		}
	}
}

func TestPropRateDurationMonotoneAndAdditive(t *testing.T) {
	r := propRand()
	for i := 0; i < propIterations; i++ {
		rate := randomRate(r)
		m := ObjectTime(r.Int63n(1_000_000))
		n := ObjectTime(r.Int63n(1_000_000))
		dm, dn, dmn := rate.DurationOf(m), rate.DurationOf(n), rate.DurationOf(m+n)
		if m <= n && dm > dn {
			t.Fatalf("iter %d: %v: DurationOf not monotone: %d->%v, %d->%v", i, rate, m, dm, n, dn)
		}
		// Round-to-nearest makes DurationOf additive to within 1µs.
		if diff := dmn - (dm + dn); diff < -1 || diff > 1 {
			t.Fatalf("iter %d: %v: DurationOf(%d+%d)=%v but parts sum to %v", i, rate, m, n, dmn, dm+dn)
		}
	}
}

func TestPropRateUnitsInFloor(t *testing.T) {
	// UnitsIn(w) is the number of WHOLE units in w: u units fit, u+1
	// don't.  (Note UnitsIn is not an inverse of DurationOf — DurationOf
	// rounds to nearest while UnitsIn floors.)
	r := propRand()
	for i := 0; i < propIterations; i++ {
		rate := randomRate(r)
		w := WorldTime(r.Int63n(int64(Hour)))
		u := rate.UnitsIn(w)
		if u < 0 {
			t.Fatalf("iter %d: %v: UnitsIn(%v) negative: %d", i, rate, w, u)
		}
		// u units span at most w; exact check via the rational: u*D*Second <= w*N.
		if int64(u)*rate.D*int64(Second) > int64(w)*rate.N {
			t.Fatalf("iter %d: %v: UnitsIn(%v) = %d overshoots", i, rate, w, u)
		}
		if int64(u+1)*rate.D*int64(Second) <= int64(w)*rate.N {
			t.Fatalf("iter %d: %v: UnitsIn(%v) = %d undershoots", i, rate, w, u)
		}
	}
}

func randomInterval(r *rand.Rand) Interval {
	return Interval{
		Start: WorldTime(r.Int63n(int64(Minute))),
		Dur:   WorldTime(1 + r.Int63n(int64(10*Second))),
	}
}

func TestPropRelateInverse(t *testing.T) {
	r := propRand()
	for i := 0; i < propIterations; i++ {
		a, b := randomInterval(r), randomInterval(r)
		if r.Intn(4) == 0 { // force shared endpoints so the rarer relations occur
			b.Start = a.Start
		}
		if r.Intn(4) == 0 {
			b.Dur = a.End() - b.Start
			if b.Dur <= 0 {
				b.Dur = 1
			}
		}
		ab, ba := Relate(a, b), Relate(b, a)
		if ab.Inverse() != ba {
			t.Fatalf("iter %d: Relate(%v,%v)=%v but Relate(%v,%v)=%v; inverse of first is %v",
				i, a, b, ab, b, a, ba, ab.Inverse())
		}
		if ab.Inverse().Inverse() != ab {
			t.Fatalf("iter %d: double inverse of %v is %v", i, ab, ab.Inverse().Inverse())
		}
		if Relate(a, a) != RelEqual {
			t.Fatalf("iter %d: Relate(%v,%v) = %v, want equal", i, a, a, Relate(a, a))
		}
	}
}

func TestPropIntervalAlgebra(t *testing.T) {
	r := propRand()
	for i := 0; i < propIterations; i++ {
		a, b := randomInterval(r), randomInterval(r)
		inter, ok := a.Intersect(b)
		if ok != a.Overlaps(b) {
			t.Fatalf("iter %d: Intersect ok=%v but Overlaps=%v for %v,%v", i, ok, a.Overlaps(b), a, b)
		}
		if ok {
			if !a.ContainsInterval(inter) || !b.ContainsInterval(inter) {
				t.Fatalf("iter %d: intersection %v escapes %v or %v", i, inter, a, b)
			}
		}
		u := a.Union(b)
		if !u.ContainsInterval(a) || !u.ContainsInterval(b) {
			t.Fatalf("iter %d: union %v misses %v or %v", i, u, a, b)
		}
		// Shift is a group action: shifting there and back restores.
		d := WorldTime(r.Int63n(int64(Minute)) - int64(30*Second))
		if got := a.Shift(d).Shift(-d); got != a {
			t.Fatalf("iter %d: Shift(%v).Shift(-%v) = %v, want %v", i, d, d, got, a)
		}
		// Containment matches pointwise membership at the boundaries.
		if a.Contains(a.Start) != true || a.Contains(a.End()) != false {
			t.Fatalf("iter %d: half-open boundary broken for %v", i, a)
		}
	}
}

func TestPropTimecodeRoundTrip(t *testing.T) {
	r := propRand()
	rates := []int{24, 25, 30}
	for i := 0; i < propIterations; i++ {
		fps := rates[r.Intn(len(rates))]
		frames := ObjectTime(r.Int63n(int64(fps) * 3600 * 24)) // within a day
		tc := TimecodeFromFrames(frames, fps)
		if got := tc.Frames(); got != frames {
			t.Fatalf("iter %d: TimecodeFromFrames(%d, %d).Frames() = %d", i, frames, fps, got)
		}
		parsed, err := ParseTimecode(tc.String(), fps)
		if err != nil {
			t.Fatalf("iter %d: ParseTimecode(%q, %d): %v", i, tc.String(), fps, err)
		}
		if parsed != tc {
			t.Fatalf("iter %d: parse round-trip %q: %+v != %+v", i, tc.String(), parsed, tc)
		}
	}
}
