package avtime

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestWorldTimeConversions(t *testing.T) {
	if got := FromDuration(1500 * time.Millisecond); got != 1500*Millisecond {
		t.Errorf("FromDuration(1.5s) = %v, want %v", got, 1500*Millisecond)
	}
	if got := (2 * Second).Duration(); got != 2*time.Second {
		t.Errorf("Duration(2s) = %v, want 2s", got)
	}
	if got := FromSeconds(0.5); got != 500*Millisecond {
		t.Errorf("FromSeconds(0.5) = %v, want %v", got, 500*Millisecond)
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", got)
	}
	if got := (1500 * Millisecond).String(); got != "1.500000s" {
		t.Errorf("String() = %q", got)
	}
}

func TestMakeRateNormalises(t *testing.T) {
	r := MakeRate(60, 2)
	if r.N != 30 || r.D != 1 {
		t.Errorf("MakeRate(60,2) = %v, want 30/1", r)
	}
	r = MakeRate(-30, -1)
	if r.N != 30 || r.D != 1 {
		t.Errorf("MakeRate(-30,-1) = %v, want 30/1", r)
	}
	if !MakeRate(30000, 1001).Equal(Rate{30000, 1001}) {
		t.Error("NTSC rate should be in lowest terms already")
	}
}

func TestMakeRatePanics(t *testing.T) {
	for _, tc := range []struct{ n, d int64 }{{1, 0}, {0, 1}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MakeRate(%d,%d) did not panic", tc.n, tc.d)
				}
			}()
			MakeRate(tc.n, tc.d)
		}()
	}
}

func TestRateHzAndUnitDuration(t *testing.T) {
	if hz := RateVideo30.Hz(); hz != 30 {
		t.Errorf("30fps Hz = %v", hz)
	}
	if hz := RateNTSC.Hz(); math.Abs(hz-29.97) > 0.01 {
		t.Errorf("NTSC Hz = %v, want ≈29.97", hz)
	}
	if d := RateVideo30.UnitDuration(); d != 33333 {
		t.Errorf("30fps frame duration = %v µs, want 33333", int64(d))
	}
	if d := RateCDAudio.UnitDuration(); d != 23 {
		t.Errorf("CD sample duration = %v µs, want 23 (rounded)", int64(d))
	}
}

func TestRateDurationOfExact(t *testing.T) {
	// 30 frames at 30fps is exactly one second.
	if d := RateVideo30.DurationOf(30); d != Second {
		t.Errorf("30 frames @30fps = %v, want 1s", d)
	}
	// 44100 samples at 44.1kHz is exactly one second.
	if d := RateCDAudio.DurationOf(44100); d != Second {
		t.Errorf("44100 samples = %v, want 1s", d)
	}
	// 30000 frames of NTSC is exactly 1001 seconds.
	if d := RateNTSC.DurationOf(30000); d != 1001*Second {
		t.Errorf("30000 NTSC frames = %v, want 1001s", d)
	}
}

func TestRateUnitsIn(t *testing.T) {
	if n := RateVideo30.UnitsIn(Second); n != 30 {
		t.Errorf("frames in 1s = %d, want 30", n)
	}
	if n := RateVideo30.UnitsIn(Second - 1); n != 29 {
		t.Errorf("frames in 1s-1µs = %d, want 29", n)
	}
	if n := RateCDAudio.UnitsIn(Minute); n != 44100*60 {
		t.Errorf("samples in 1min = %d, want %d", n, 44100*60)
	}
}

func TestRateRoundTripProperty(t *testing.T) {
	rates := []Rate{RateFilm24, RateVideo25, RateVideo30, RateNTSC, RateCDAudio, RateVoice}
	f := func(nRaw int32) bool {
		n := ObjectTime(nRaw)
		if n < 0 {
			n = -n
		}
		for _, r := range rates {
			// Units that fit inside the duration of n units must be ≥ n-1
			// and ≤ n (rounding may shave at most one unit boundary).
			d := r.DurationOf(n)
			back := r.UnitsIn(d)
			if back > n || back < n-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransformWorldObjectRoundTrip(t *testing.T) {
	tr := NewTransform(RateVideo30)
	for _, frame := range []ObjectTime{0, 1, 29, 30, 100, 7 * 30} {
		w := tr.ObjectToWorld(frame)
		if got := tr.WorldToObject(w); got != frame {
			t.Errorf("frame %d -> %v -> %d", frame, w, got)
		}
	}
}

func TestTransformTranslate(t *testing.T) {
	tr := NewTransform(RateVideo30).Translated(2 * Second)
	if got := tr.WorldToObject(2 * Second); got != 0 {
		t.Errorf("object time at start = %d, want 0", got)
	}
	if got := tr.WorldToObject(3 * Second); got != 30 {
		t.Errorf("object time 1s in = %d, want 30", got)
	}
	if got := tr.ObjectToWorld(30); got != 3*Second {
		t.Errorf("world time of frame 30 = %v, want 3s", got)
	}
}

func TestTransformScale(t *testing.T) {
	// Double speed: 60 frames are presented in one world second.
	tr := NewTransform(RateVideo30).Scaled(2)
	if got := tr.WorldToObject(Second); got != 60 {
		t.Errorf("frames at double speed in 1s = %d, want 60", got)
	}
	if got := tr.DurationOf(60); got != Second {
		t.Errorf("duration of 60 frames at 2x = %v, want 1s", got)
	}
	// Half speed.
	tr = NewTransform(RateVideo30).Scaled(0.5)
	if got := tr.WorldToObject(2 * Second); got != 30 {
		t.Errorf("frames at half speed in 2s = %d, want 30", got)
	}
}

func TestTransformMonotonicProperty(t *testing.T) {
	tr := NewTransform(RateNTSC).Translated(-Second).Scaled(1.5)
	f := func(aRaw, bRaw int32) bool {
		a, b := WorldTime(aRaw)*Millisecond, WorldTime(bRaw)*Millisecond
		if a > b {
			a, b = b, a
		}
		return tr.WorldToObject(a) <= tr.WorldToObject(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimecodeRoundTrip(t *testing.T) {
	for _, frames := range []ObjectTime{0, 1, 29, 30, 1799, 1800, 30 * 3600, 12345678} {
		tc := TimecodeFromFrames(frames, 30)
		if got := tc.Frames(); got != frames {
			t.Errorf("timecode round trip %d -> %v -> %d", frames, tc, got)
		}
	}
}

func TestTimecodeString(t *testing.T) {
	tc := TimecodeFromFrames(30*3661+15, 30) // 1h 1m 1s 15f
	if got := tc.String(); got != "01:01:01:15" {
		t.Errorf("String() = %q, want 01:01:01:15", got)
	}
}

func TestParseTimecode(t *testing.T) {
	tc, err := ParseTimecode("01:02:03:04", 30)
	if err != nil {
		t.Fatal(err)
	}
	want := Timecode{1, 2, 3, 4, 30}
	if tc != want {
		t.Errorf("ParseTimecode = %+v, want %+v", tc, want)
	}
	for _, bad := range []string{"", "1:2:3", "01:02:03:30", "01:60:00:00", "aa:bb:cc:dd", "-1:00:00:00"} {
		if _, err := ParseTimecode(bad, 30); err == nil {
			t.Errorf("ParseTimecode(%q) succeeded, want error", bad)
		}
	}
	if _, err := ParseTimecode("00:00:00:00", 0); err == nil {
		t.Error("ParseTimecode with fps=0 succeeded, want error")
	}
}

func TestTimecodeParseFormatProperty(t *testing.T) {
	f := func(nRaw uint32) bool {
		frames := ObjectTime(nRaw % (30 * 86400)) // within 24h
		tc := TimecodeFromFrames(frames, 30)
		back, err := ParseTimecode(tc.String(), 30)
		return err == nil && back.Frames() == frames
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimecodeWorldTime(t *testing.T) {
	tc := TimecodeFromFrames(60, 30)
	if got := tc.WorldTime(); got != 2*Second {
		t.Errorf("WorldTime of frame 60 @30fps = %v, want 2s", got)
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := IntervalOf(Second, 3*Second)
	if iv.Dur != 2*Second || iv.End() != 3*Second {
		t.Errorf("interval = %v", iv)
	}
	if !iv.Contains(Second) || iv.Contains(3*Second) {
		t.Error("half-open containment violated")
	}
	if iv.IsEmpty() {
		t.Error("non-empty interval reported empty")
	}
	if got := iv.Shift(Second); got.Start != 2*Second {
		t.Errorf("Shift = %v", got)
	}
	if got := iv.String(); got != "[1.000000s, 3.000000s)" {
		t.Errorf("String = %q", got)
	}
}

func TestIntervalOfPanicsOnReversed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("IntervalOf(3,1) did not panic")
		}
	}()
	IntervalOf(3*Second, Second)
}

func TestIntervalIntersectUnion(t *testing.T) {
	a := IntervalOf(0, 2*Second)
	b := IntervalOf(Second, 3*Second)
	got, ok := a.Intersect(b)
	if !ok || got != IntervalOf(Second, 2*Second) {
		t.Errorf("Intersect = %v, %v", got, ok)
	}
	if u := a.Union(b); u != IntervalOf(0, 3*Second) {
		t.Errorf("Union = %v", u)
	}
	c := IntervalOf(5*Second, 6*Second)
	if _, ok := a.Intersect(c); ok {
		t.Error("disjoint intervals intersected")
	}
	if !a.Overlaps(b) || a.Overlaps(c) {
		t.Error("Overlaps misclassified")
	}
	if !a.ContainsInterval(IntervalOf(0, Second)) || a.ContainsInterval(b) {
		t.Error("ContainsInterval misclassified")
	}
	empty := Interval{}
	if u := empty.Union(a); u != a {
		t.Errorf("empty union = %v", u)
	}
	if u := a.Union(empty); u != a {
		t.Errorf("union empty = %v", u)
	}
}

func TestAllenRelations(t *testing.T) {
	s := func(a, b WorldTime) Interval { return IntervalOf(a*Second, b*Second) }
	cases := []struct {
		a, b Interval
		want Relation
	}{
		{s(0, 1), s(2, 3), RelBefore},
		{s(0, 1), s(1, 2), RelMeets},
		{s(0, 2), s(1, 3), RelOverlaps},
		{s(0, 1), s(0, 2), RelStarts},
		{s(1, 2), s(0, 3), RelDuring},
		{s(2, 3), s(0, 3), RelFinishes},
		{s(0, 1), s(0, 1), RelEqual},
		{s(0, 3), s(2, 3), RelFinishedBy},
		{s(0, 3), s(1, 2), RelContains},
		{s(0, 2), s(0, 1), RelStartedBy},
		{s(1, 3), s(0, 2), RelOverlappedBy},
		{s(1, 2), s(0, 1), RelMetBy},
		{s(2, 3), s(0, 1), RelAfter},
	}
	for _, tc := range cases {
		if got := Relate(tc.a, tc.b); got != tc.want {
			t.Errorf("Relate(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAllenInverseProperty(t *testing.T) {
	f := func(a1, d1, b1, d2 uint16) bool {
		a := Interval{WorldTime(a1), WorldTime(d1%100) + 1}
		b := Interval{WorldTime(b1), WorldTime(d2%100) + 1}
		return Relate(a, b).Inverse() == Relate(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelationString(t *testing.T) {
	if RelBefore.String() != "before" || RelMetBy.String() != "met-by" {
		t.Error("relation names wrong")
	}
	if Relation(99).String() != "Relation(99)" {
		t.Error("out-of-range relation name wrong")
	}
}

func TestRateStringAndIsZero(t *testing.T) {
	if RateVideo30.String() != "30Hz" {
		t.Errorf("String = %q", RateVideo30.String())
	}
	if RateNTSC.String() != "30000/1001Hz" {
		t.Errorf("NTSC String = %q", RateNTSC.String())
	}
	if !(Rate{}).IsZero() || RateVideo30.IsZero() {
		t.Error("IsZero wrong")
	}
	// Zero-value rate degenerates safely.
	var z Rate
	if z.Hz() != 0 || z.UnitDuration() != 0 || z.DurationOf(10) != 0 || z.UnitsIn(Second) != 0 {
		t.Error("zero rate arithmetic wrong")
	}
}

func TestTransformDegenerateCases(t *testing.T) {
	var z Transform
	if z.WorldToObject(Second) != 0 {
		t.Error("zero transform WorldToObject wrong")
	}
	if z.ObjectToWorld(5) != 0 {
		t.Error("zero transform ObjectToWorld wrong")
	}
	if z.DurationOf(5) != 0 {
		t.Error("zero transform DurationOf wrong")
	}
}

func TestTimecodeNegativeAndDefaultFPS(t *testing.T) {
	tc := TimecodeFromFrames(-5, 30)
	if tc.Frames() != 0 {
		t.Error("negative frames not clamped")
	}
	// fps <= 0 falls back to 30 everywhere.
	tc = TimecodeFromFrames(60, 0)
	if tc.Sec != 2 {
		t.Errorf("default-fps timecode = %v", tc)
	}
	if tc2 := (Timecode{Sec: 1}); tc2.Frames() != 30 {
		t.Error("zero-FPS Frames fallback wrong")
	}
	if (Timecode{Sec: 1}).WorldTime() != Second {
		t.Error("zero-FPS WorldTime fallback wrong")
	}
}

func TestMulDivNegativeOperands(t *testing.T) {
	// Negative world times flow through the exact division helpers.
	tr := NewTransform(RateVideo30)
	if got := tr.Rate.UnitsIn(-Second); got != -30 {
		t.Errorf("UnitsIn(-1s) = %d, want -30", got)
	}
	if got := tr.Rate.DurationOf(-30); got != -Second {
		t.Errorf("DurationOf(-30) = %v, want -1s", got)
	}
}
