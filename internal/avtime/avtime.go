// Package avtime provides the temporal coordinate systems used throughout
// the AV database: world time, object time, rational media rates, and the
// transforms between them.
//
// The model follows §4.1 of Gibbs, Breiteneder and Tsichritzis,
// "Audio/Video Databases: An Object-Oriented Approach" (ICDE 1993): every
// media value lives in two coordinate systems.  World time is the global
// presentation timeline shared by all values and activities; its unit is
// fixed by this package (one microsecond).  Object time is media-local —
// frame numbers for video, sample numbers for audio — and its unit is a
// subclass responsibility, expressed here as a rational Rate.
package avtime

import (
	"fmt"
	"math"
	"time"
)

// WorldTime is a point on (or a span of) the global presentation timeline.
// The unit is one microsecond.  Microsecond resolution is fine enough to
// place individual samples of CD audio (one sample ≈ 22.7µs) while keeping
// arithmetic in int64 exact for timelines of tens of thousands of hours.
type WorldTime int64

// Convenient world-time spans.
const (
	Microsecond WorldTime = 1
	Millisecond           = 1000 * Microsecond
	Second                = 1000 * Millisecond
	Minute                = 60 * Second
	Hour                  = 60 * Minute
)

// FromDuration converts a time.Duration to WorldTime, truncating to
// microsecond resolution.
func FromDuration(d time.Duration) WorldTime {
	return WorldTime(d / time.Microsecond)
}

// Duration converts a WorldTime span to a time.Duration.
func (w WorldTime) Duration() time.Duration {
	return time.Duration(w) * time.Microsecond
}

// Seconds reports the span as floating-point seconds.
func (w WorldTime) Seconds() float64 {
	return float64(w) / float64(Second)
}

// FromSeconds converts floating-point seconds to WorldTime, rounding to the
// nearest microsecond.
func FromSeconds(s float64) WorldTime {
	return WorldTime(math.Round(s * float64(Second)))
}

// String formats the world time as seconds with microsecond precision,
// e.g. "1.500000s".
func (w WorldTime) String() string {
	return fmt.Sprintf("%.6fs", w.Seconds())
}

// ObjectTime is a point in a media value's own coordinate system: a frame
// index for video, a sample index for audio, a cue index for timed text.
// The duration of one object-time unit is given by the value's Rate.
type ObjectTime int64

// Rate is a rational number of object-time units per second.  Rates are
// rational rather than floating point so that NTSC video (30000/1001
// frames per second) and long-running sample clocks stay exact.
type Rate struct {
	N int64 // units
	D int64 // per D seconds
}

// Common media rates.
var (
	RateFilm24   = Rate{24, 1}       // film
	RateVideo25  = Rate{25, 1}       // PAL/CCIR 625-line video
	RateVideo30  = Rate{30, 1}       // the paper's video timecode unit (1/30 s)
	RateNTSC     = Rate{30000, 1001} // NTSC color video
	RateCDAudio  = Rate{44100, 1}    // CD encoded audio samples
	RateDATAudio = Rate{48000, 1}    // DAT / professional audio
	RateFMAudio  = Rate{22050, 1}    // "FM-quality" audio
	RateVoice    = Rate{8000, 1}     // "voice-quality" audio
)

// MakeRate returns the rate n/d, normalised to lowest terms with a positive
// denominator.  It panics if d is zero or the rate is not positive; rates
// describe physical unit frequencies and are always > 0.
func MakeRate(n, d int64) Rate {
	if d == 0 {
		panic("avtime: rate with zero denominator")
	}
	if d < 0 {
		n, d = -n, -d
	}
	if n <= 0 {
		panic("avtime: rate must be positive")
	}
	g := gcd(n, d)
	return Rate{n / g, d / g}
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// IsZero reports whether r is the zero value (no rate set).
func (r Rate) IsZero() bool { return r.N == 0 && r.D == 0 }

// Hz reports the rate in units per second as a float.
func (r Rate) Hz() float64 {
	if r.D == 0 {
		return 0
	}
	return float64(r.N) / float64(r.D)
}

// UnitDuration reports the world-time duration of a single object-time
// unit, rounded to the nearest microsecond.
func (r Rate) UnitDuration() WorldTime {
	if r.N == 0 {
		return 0
	}
	return WorldTime((int64(Second)*r.D + r.N/2) / r.N)
}

// DurationOf reports the world-time duration of n object-time units at
// rate r, rounded to the nearest microsecond.
func (r Rate) DurationOf(n ObjectTime) WorldTime {
	if r.N == 0 {
		return 0
	}
	// n units take n*D/N seconds = n*D*Second/N microseconds.
	return WorldTime(mulDivRound(int64(n)*r.D, int64(Second), r.N))
}

// UnitsIn reports how many whole object-time units fit in the world-time
// span w at rate r.
func (r Rate) UnitsIn(w WorldTime) ObjectTime {
	if r.D == 0 {
		return 0
	}
	return ObjectTime(mulDivFloor(int64(w), r.N, r.D*int64(Second)))
}

// Equal reports whether two rates denote the same frequency.
func (r Rate) Equal(o Rate) bool {
	return r.N*o.D == o.N*r.D
}

// String formats the rate, e.g. "30/1 Hz" prints as "30Hz" and NTSC as
// "30000/1001Hz".
func (r Rate) String() string {
	if r.D == 1 {
		return fmt.Sprintf("%dHz", r.N)
	}
	return fmt.Sprintf("%d/%dHz", r.N, r.D)
}

// mulDivRound computes round(a*b/c) for c > 0, b ≥ 0, exactly, by splitting
// a into quotient and Euclidean remainder so the intermediate product r*b
// stays far from int64 overflow for the magnitudes used here (b up to 10^6,
// r < c up to ~10^9).
func mulDivRound(a, b, c int64) int64 {
	q, r := a/c, a%c
	if r < 0 {
		r += c
		q--
	}
	return q*b + (r*b+c/2)/c
}

// mulDivFloor computes floor(a*b/c) for c > 0, b ≥ 0 under the same range
// assumptions as mulDivRound.
func mulDivFloor(a, b, c int64) int64 {
	q, r := a/c, a%c
	if r < 0 {
		r += c
		q--
	}
	return q*b + r*b/c
}

// Transform maps between world time and object time for one media value.
// Object time o corresponds to world time
//
//	w = Translate + ObjectToWorld-span(o) / Scale
//
// Scale is the playback-speed factor (2 = double speed: the same object
// span occupies half the world span); Translate is the world time at which
// object time zero is presented.  A zero Transform (Scale 0) is invalid;
// use NewTransform.
type Transform struct {
	Rate      Rate      // object units per second at Scale 1
	Scale     float64   // speed factor, must be > 0
	Translate WorldTime // world time of object time 0
}

// NewTransform returns the identity-speed transform for rate r starting at
// world time zero.
func NewTransform(r Rate) Transform {
	return Transform{Rate: r, Scale: 1, Translate: 0}
}

// WorldToObject maps a world time to the object time presented at that
// instant.  Times before the start map to negative object times.
func (t Transform) WorldToObject(w WorldTime) ObjectTime {
	if t.Rate.D == 0 || t.Scale == 0 {
		return 0
	}
	elapsed := float64(w-t.Translate) * t.Scale
	units := elapsed * t.Rate.Hz() / float64(Second)
	// Guard against float error pushing an exact unit boundary just below
	// its integer (e.g. 99.99999999 for frame 100).
	return ObjectTime(math.Floor(units + 1e-6))
}

// ObjectToWorld maps an object time to the first whole microsecond at
// which that unit is being presented.  Rounding is upward so that the
// returned instant always lies inside the unit's presentation span, which
// makes WorldToObject(ObjectToWorld(o)) == o.
func (t Transform) ObjectToWorld(o ObjectTime) WorldTime {
	if t.Rate.N == 0 || t.Scale == 0 {
		return t.Translate
	}
	seconds := float64(o) * float64(t.Rate.D) / float64(t.Rate.N)
	return t.Translate + WorldTime(math.Ceil(seconds*float64(Second)/t.Scale-1e-6))
}

// Scaled returns a copy of the transform with its speed multiplied by f.
// Corresponds to MediaValue.Scale(float) in the paper's framework.
func (t Transform) Scaled(f float64) Transform {
	t.Scale *= f
	return t
}

// Translated returns a copy of the transform shifted by dw in world time.
// Corresponds to MediaValue.Translate(WorldTime) in the paper's framework.
func (t Transform) Translated(dw WorldTime) Transform {
	t.Translate += dw
	return t
}

// DurationOf reports the world-time duration occupied by n object units
// under this transform (rate and scale applied).
func (t Transform) DurationOf(n ObjectTime) WorldTime {
	if t.Scale == 0 {
		return 0
	}
	base := t.Rate.DurationOf(n)
	return WorldTime(math.Round(float64(base) / t.Scale))
}
