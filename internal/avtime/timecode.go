package avtime

import (
	"fmt"
	"strconv"
	"strings"
)

// Timecode is a non-drop-frame SMPTE-style timecode HH:MM:SS:FF at an
// integer frame rate.  The paper's video subclasses "measure object time
// using video timecode (where the smallest unit is 1/30th of a second)";
// Timecode provides that unit system for any integer rate.
type Timecode struct {
	Hour, Min, Sec, Frame int
	FPS                   int // frames per second, > 0
}

// TimecodeFromFrames converts a frame count to a timecode at fps frames
// per second.  Negative frame counts are clamped to zero; timecodes label
// positions within a value, which start at frame zero.
func TimecodeFromFrames(frames ObjectTime, fps int) Timecode {
	if fps <= 0 {
		fps = 30
	}
	f := int64(frames)
	if f < 0 {
		f = 0
	}
	tc := Timecode{FPS: fps}
	tc.Frame = int(f % int64(fps))
	secs := f / int64(fps)
	tc.Sec = int(secs % 60)
	mins := secs / 60
	tc.Min = int(mins % 60)
	tc.Hour = int(mins / 60)
	return tc
}

// Frames reports the timecode's position as a frame count.
func (tc Timecode) Frames() ObjectTime {
	fps := tc.FPS
	if fps <= 0 {
		fps = 30
	}
	secs := int64(tc.Hour)*3600 + int64(tc.Min)*60 + int64(tc.Sec)
	return ObjectTime(secs*int64(fps) + int64(tc.Frame))
}

// WorldTime reports the world time of the timecode's frame boundary.
func (tc Timecode) WorldTime() WorldTime {
	fps := tc.FPS
	if fps <= 0 {
		fps = 30
	}
	return MakeRate(int64(fps), 1).DurationOf(tc.Frames())
}

// String formats the timecode as "HH:MM:SS:FF".
func (tc Timecode) String() string {
	return fmt.Sprintf("%02d:%02d:%02d:%02d", tc.Hour, tc.Min, tc.Sec, tc.Frame)
}

// ParseTimecode parses "HH:MM:SS:FF" at the given frame rate.
func ParseTimecode(s string, fps int) (Timecode, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 4 {
		return Timecode{}, fmt.Errorf("avtime: malformed timecode %q: want HH:MM:SS:FF", s)
	}
	if fps <= 0 {
		return Timecode{}, fmt.Errorf("avtime: timecode rate must be positive, got %d", fps)
	}
	var vals [4]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return Timecode{}, fmt.Errorf("avtime: malformed timecode %q: %v", s, err)
		}
		if v < 0 {
			return Timecode{}, fmt.Errorf("avtime: malformed timecode %q: negative field", s)
		}
		vals[i] = v
	}
	tc := Timecode{Hour: vals[0], Min: vals[1], Sec: vals[2], Frame: vals[3], FPS: fps}
	if tc.Min > 59 || tc.Sec > 59 || tc.Frame >= fps {
		return Timecode{}, fmt.Errorf("avtime: timecode %q out of range at %d fps", s, fps)
	}
	return tc, nil
}
