package fault

import (
	"errors"

	"avdb/internal/avtime"
	"avdb/internal/device"
)

// Retryable reports whether an error is worth retrying: transient
// device read faults and disc-swap jams are; outages, partitions and
// everything else are not.
func Retryable(err error) bool {
	return errors.Is(err, device.ErrTransientRead)
}

// RetryPolicy bounds recovery from transient faults.  Retries are not
// free: every failed attempt's cost and every backoff pause is charged
// to the virtual timeline, so a stream that retries too generously
// misses its deadlines honestly.
type RetryPolicy struct {
	MaxAttempts int              // total attempts, including the first; <= 1 means no retries
	Backoff     avtime.WorldTime // pause before the first retry
	Multiplier  float64          // backoff growth per retry; values < 1 are treated as 1
}

// DefaultRetry is a sane policy for transient device faults: three
// attempts with a 5 ms initial backoff doubling per retry.
var DefaultRetry = RetryPolicy{MaxAttempts: 3, Backoff: 5 * avtime.Millisecond, Multiplier: 2}

// Do runs op until it succeeds, returns a non-retryable error, or
// attempts are exhausted.  op reports the world time the attempt cost
// (for a failed read, the time wasted discovering the failure).  Do
// returns the total world time consumed — failed attempts plus
// backoffs plus the final attempt — the attempt count, and the last
// error.
func (p RetryPolicy) Do(op func() (avtime.WorldTime, error)) (avtime.WorldTime, int, error) {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 1
	}
	var total avtime.WorldTime
	backoff := p.Backoff
	var err error
	for n := 1; ; n++ {
		var dt avtime.WorldTime
		dt, err = op()
		total += dt
		if err == nil {
			return total, n, nil
		}
		if n >= attempts || !Retryable(err) {
			return total, n, err
		}
		total += backoff
		backoff = avtime.WorldTime(float64(backoff) * mult)
	}
}
