// Package fault is the AV database's deterministic fault-injection
// subsystem.  A Plan schedules hardware misbehavior — transient device
// read errors, device outage windows, jukebox disc-swap jams, link
// bandwidth collapse, partitions, and in-flight chunk loss or
// corruption — against the virtual presentation clock, and an Injector
// realizes the plan through the fault hooks of internal/device and
// internal/netsim.
//
// Everything the paper's §3.3 guarantees — resource pre-allocation,
// client-visible scheduling, quality-factor representation — is only
// meaningful when hardware misbehaves, so faults are simulated with the
// same discipline as the hardware itself: probabilistic faults draw
// from PRNGs seeded per fault, windows are expressed in world time, and
// identical plans against identical workloads inject identical faults.
// An hour of hardware failure replays in milliseconds, byte-identically.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/netsim"
	"avdb/internal/obs"
	"avdb/internal/sched"
)

// Kind classifies an injected fault.
type Kind int

// The fault kinds.
const (
	// TransientRead makes device reads fail with Probability during the
	// window; injected errors wrap device.ErrTransientRead (retryable).
	TransientRead Kind = iota
	// DeviceOutage makes every device read fail during the window;
	// injected errors wrap device.ErrDeviceFailed (not retryable).
	DeviceOutage
	// DiscSwapFail makes jukebox disc swaps fail with Probability during
	// the window; injected errors wrap device.ErrTransientRead.
	DiscSwapFail
	// LinkDegrade collapses a link's effective bandwidth: serialization
	// time divides by Factor (a Factor of 0.25 quarters the bandwidth).
	LinkDegrade
	// LinkPartition fails every transfer on the link during the window
	// with an error wrapping netsim.ErrLinkDown.
	LinkPartition
	// ChunkLoss drops chunks in flight with Probability; the transfer
	// still consumes its time.
	ChunkLoss
	// ChunkCorrupt delivers chunks with damaged payloads, with
	// Probability.
	ChunkCorrupt
)

var kindNames = [...]string{
	TransientRead: "transient-read",
	DeviceOutage:  "device-outage",
	DiscSwapFail:  "disc-swap-fail",
	LinkDegrade:   "link-degrade",
	LinkPartition: "link-partition",
	ChunkLoss:     "chunk-loss",
	ChunkCorrupt:  "chunk-corrupt",
}

// kindMetrics holds the precomputed fault.injected.<kind> counter names
// so the injection paths never format strings.
var kindMetrics = [...]string{
	TransientRead: "fault.injected.transient-read",
	DeviceOutage:  "fault.injected.device-outage",
	DiscSwapFail:  "fault.injected.disc-swap-fail",
	LinkDegrade:   "fault.injected.link-degrade",
	LinkPartition: "fault.injected.link-partition",
	ChunkLoss:     "fault.injected.chunk-loss",
	ChunkCorrupt:  "fault.injected.chunk-corrupt",
}

// String returns the kind's name.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Fault is one scheduled misbehavior of one device or link.
type Fault struct {
	Kind   Kind
	Target string           // device ID or link ID
	Start  avtime.WorldTime // window start on the virtual clock
	Dur    avtime.WorldTime // window length; 0 means open-ended

	// Probability applies to TransientRead, DiscSwapFail, ChunkLoss and
	// ChunkCorrupt: the per-operation chance in [0, 1].
	Probability float64
	// Factor applies to LinkDegrade: the fraction of bandwidth that
	// survives, in (0, 1].
	Factor float64
}

// active reports whether the fault's window covers now.
func (f Fault) active(now avtime.WorldTime) bool {
	if now < f.Start {
		return false
	}
	return f.Dur == 0 || now < f.Start+f.Dur
}

// validate reports a configuration error.
func (f Fault) validate() error {
	if f.Target == "" {
		return fmt.Errorf("fault: fault needs a target")
	}
	if f.Start < 0 || f.Dur < 0 {
		return fmt.Errorf("fault: negative window [%v +%v]", f.Start, f.Dur)
	}
	switch f.Kind {
	case TransientRead, DiscSwapFail, ChunkLoss, ChunkCorrupt:
		if f.Probability <= 0 || f.Probability > 1 {
			return fmt.Errorf("fault: %v needs a probability in (0, 1], got %v", f.Kind, f.Probability)
		}
	case LinkDegrade:
		if f.Factor <= 0 || f.Factor > 1 {
			return fmt.Errorf("fault: %v needs a factor in (0, 1], got %v", f.Kind, f.Factor)
		}
	case DeviceOutage, LinkPartition:
		// Windowed hard faults carry no parameter.
	default:
		return fmt.Errorf("fault: unknown kind %v", f.Kind)
	}
	return nil
}

// String describes the fault.
func (f Fault) String() string {
	s := fmt.Sprintf("%v on %q from %v", f.Kind, f.Target, f.Start)
	if f.Dur > 0 {
		s += fmt.Sprintf(" for %v", f.Dur)
	}
	switch f.Kind {
	case TransientRead, DiscSwapFail, ChunkLoss, ChunkCorrupt:
		s += fmt.Sprintf(" p=%.2f", f.Probability)
	case LinkDegrade:
		s += fmt.Sprintf(" x%.2f", f.Factor)
	}
	return s
}

// Plan is a seeded set of scheduled faults.  The seed fixes every
// probabilistic draw, so one plan replayed against one workload injects
// the same faults at the same operations.
type Plan struct {
	seed   int64
	faults []Fault
}

// NewPlan returns an empty plan over the given seed.
func NewPlan(seed int64) *Plan { return &Plan{seed: seed} }

// Add schedules a fault, returning the plan for chaining.
func (p *Plan) Add(f Fault) (*Plan, error) {
	if err := f.validate(); err != nil {
		return p, err
	}
	p.faults = append(p.faults, f)
	return p, nil
}

// MustAdd schedules a fault, panicking on configuration errors — the
// convenience for statically written experiment plans.
func (p *Plan) MustAdd(f Fault) *Plan {
	if _, err := p.Add(f); err != nil {
		panic(err)
	}
	return p
}

// Faults returns the scheduled faults in insertion order.
func (p *Plan) Faults() []Fault { return append([]Fault(nil), p.faults...) }

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 { return p.seed }

// Injector realizes a plan against a clock.  It implements both
// device.FaultHook and netsim.FaultHook; install it with
// device.Manager.SetFaultHook and netsim.Link.SetFaultHook.
type Injector struct {
	clock sched.Clock

	mu     sync.Mutex
	faults []Fault
	rngs   []*rand.Rand // one per fault, seeded plan.seed + index
	counts map[Kind]int64
	sink   obs.Sink
}

// SetSink installs an observability sink.  Every injection bumps its
// fault.injected.<kind> counter.
func (in *Injector) SetSink(s obs.Sink) {
	in.mu.Lock()
	in.sink = s
	in.mu.Unlock()
}

// bump records one injection of kind k; callers hold in.mu.
func (in *Injector) bump(k Kind) {
	in.counts[k]++
	if in.sink != nil {
		in.sink.Count(kindMetrics[k], 1)
	}
}

// NewInjector returns an injector evaluating the plan's windows against
// the given clock.
func NewInjector(p *Plan, clock sched.Clock) *Injector {
	if clock == nil {
		panic("fault: injector needs a clock")
	}
	in := &Injector{
		clock:  clock,
		faults: append([]Fault(nil), p.faults...),
		rngs:   make([]*rand.Rand, len(p.faults)),
		counts: make(map[Kind]int64),
	}
	for i := range in.rngs {
		in.rngs[i] = rand.New(rand.NewSource(p.seed + int64(i)*104729))
	}
	return in
}

// BeforeRead implements device.FaultHook.
func (in *Injector) BeforeRead(deviceID string, bytes int64) (avtime.WorldTime, error) {
	now := in.clock.Now()
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, f := range in.faults {
		if f.Target != deviceID || !f.active(now) {
			continue
		}
		switch f.Kind {
		case DeviceOutage:
			in.bump(DeviceOutage)
			return 0, fmt.Errorf("fault: %q down at %v: %w", deviceID, now, device.ErrDeviceFailed)
		case TransientRead:
			if in.rngs[i].Float64() < f.Probability {
				in.bump(TransientRead)
				return 0, fmt.Errorf("fault: %q read fault at %v: %w", deviceID, now, device.ErrTransientRead)
			}
		}
	}
	return 0, nil
}

// BeforeSwap implements device.FaultHook.
func (in *Injector) BeforeSwap(deviceID string, disc int) error {
	now := in.clock.Now()
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, f := range in.faults {
		if f.Kind != DiscSwapFail || f.Target != deviceID || !f.active(now) {
			continue
		}
		if in.rngs[i].Float64() < f.Probability {
			in.bump(DiscSwapFail)
			return fmt.Errorf("fault: %q swap to disc %d jammed at %v: %w", deviceID, disc, now, device.ErrTransientRead)
		}
	}
	return nil
}

// TransferFault implements netsim.FaultHook.
func (in *Injector) TransferFault(linkID string, bytes int64) netsim.TransferFault {
	now := in.clock.Now()
	in.mu.Lock()
	defer in.mu.Unlock()
	var out netsim.TransferFault
	for i, f := range in.faults {
		if f.Target != linkID || !f.active(now) {
			continue
		}
		switch f.Kind {
		case LinkPartition:
			in.bump(LinkPartition)
			out.Down = true
		case LinkDegrade:
			if slow := 1 / f.Factor; slow > out.SlowFactor {
				out.SlowFactor = slow
			}
			in.bump(LinkDegrade)
		case ChunkLoss:
			if in.rngs[i].Float64() < f.Probability {
				in.bump(ChunkLoss)
				out.Drop = true
			}
		case ChunkCorrupt:
			if in.rngs[i].Float64() < f.Probability {
				in.bump(ChunkCorrupt)
				out.Corrupt = true
			}
		}
	}
	return out
}

// Counts returns a snapshot of injections by kind.
func (in *Injector) Counts() map[Kind]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Total reports the total number of injections.
func (in *Injector) Total() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, v := range in.counts {
		n += v
	}
	return n
}

// CountString renders the injection counts deterministically, sorted by
// kind.
func (in *Injector) CountString() string {
	counts := in.Counts()
	kinds := make([]Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	s := ""
	for i, k := range kinds {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%v:%d", k, counts[k])
	}
	if s == "" {
		s = "none"
	}
	return s
}
