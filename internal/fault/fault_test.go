package fault

import (
	"errors"
	"fmt"
	"testing"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/netsim"
)

// fakeClock is a settable sched.Clock.
type fakeClock struct{ now avtime.WorldTime }

func (c *fakeClock) Now() avtime.WorldTime { return c.now }

func TestPlanValidation(t *testing.T) {
	p := NewPlan(1)
	bad := []Fault{
		{Kind: TransientRead, Probability: 0.5},                                    // no target
		{Kind: TransientRead, Target: "d", Probability: 0},                         // p out of range
		{Kind: TransientRead, Target: "d", Probability: 1.5},                       // p out of range
		{Kind: LinkDegrade, Target: "l", Factor: 0},                                // factor out of range
		{Kind: LinkDegrade, Target: "l", Factor: 1.01},                             // factor out of range
		{Kind: DeviceOutage, Target: "d", Start: -avtime.Second},                   // negative window
		{Kind: ChunkLoss, Target: "l", Probability: 0.1, Dur: -avtime.Millisecond}, // negative window
		{Kind: Kind(99), Target: "d"},                                              // unknown kind
	}
	for i, f := range bad {
		if _, err := p.Add(f); err == nil {
			t.Errorf("fault %d (%v) accepted", i, f)
		}
	}
	if len(p.Faults()) != 0 {
		t.Errorf("rejected faults were scheduled: %v", p.Faults())
	}
	p.MustAdd(Fault{Kind: DeviceOutage, Target: "d", Start: avtime.Second, Dur: avtime.Second})
	if got := len(p.Faults()); got != 1 {
		t.Errorf("faults = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAdd on invalid fault did not panic")
		}
	}()
	p.MustAdd(Fault{Kind: TransientRead})
}

func TestFaultWindowActivation(t *testing.T) {
	windowed := Fault{Kind: DeviceOutage, Target: "d", Start: 2 * avtime.Second, Dur: avtime.Second}
	openEnded := Fault{Kind: DeviceOutage, Target: "d", Start: 2 * avtime.Second}
	cases := []struct {
		now               avtime.WorldTime
		wantWin, wantOpen bool
	}{
		{0, false, false},
		{2*avtime.Second - 1, false, false},
		{2 * avtime.Second, true, true}, // inclusive start
		{3*avtime.Second - 1, true, true},
		{3 * avtime.Second, false, true}, // exclusive end; open-ended never closes
		{time(1000), false, true},
	}
	for _, c := range cases {
		if got := windowed.active(c.now); got != c.wantWin {
			t.Errorf("windowed.active(%v) = %v", c.now, got)
		}
		if got := openEnded.active(c.now); got != c.wantOpen {
			t.Errorf("openEnded.active(%v) = %v", c.now, got)
		}
	}
}

func time(sec int64) avtime.WorldTime { return avtime.WorldTime(sec) * avtime.Second }

func TestInjectorBeforeRead(t *testing.T) {
	clock := &fakeClock{}
	p := NewPlan(42).
		MustAdd(Fault{Kind: DeviceOutage, Target: "disk0", Start: time(10), Dur: time(5)}).
		MustAdd(Fault{Kind: TransientRead, Target: "disk1", Start: 0, Probability: 0.5})
	in := NewInjector(p, clock)

	// Outside the outage window, disk0 is healthy.
	if _, err := in.BeforeRead("disk0", 4096); err != nil {
		t.Errorf("healthy read failed: %v", err)
	}
	// Inside it, every read fails hard.
	clock.now = time(12)
	for i := 0; i < 3; i++ {
		_, err := in.BeforeRead("disk0", 4096)
		if !errors.Is(err, device.ErrDeviceFailed) {
			t.Errorf("outage read %d: %v", i, err)
		}
		if Retryable(err) {
			t.Error("outage classified retryable")
		}
	}
	// disk1's transient faults hit roughly half the reads and are
	// retryable; an untargeted device is untouched.
	hits := 0
	for i := 0; i < 1000; i++ {
		if _, err := in.BeforeRead("disk1", 4096); err != nil {
			if !Retryable(err) {
				t.Fatalf("transient fault not retryable: %v", err)
			}
			hits++
		}
		if _, err := in.BeforeRead("disk9", 4096); err != nil {
			t.Fatalf("untargeted device faulted: %v", err)
		}
	}
	if hits < 400 || hits > 600 {
		t.Errorf("transient hits = %d of 1000 at p=0.5", hits)
	}
	counts := in.Counts()
	if counts[DeviceOutage] != 3 || counts[TransientRead] != int64(hits) {
		t.Errorf("counts = %v", counts)
	}
	if in.Total() != 3+int64(hits) {
		t.Errorf("total = %d", in.Total())
	}
}

func TestInjectorTransferFault(t *testing.T) {
	clock := &fakeClock{now: time(1)}
	p := NewPlan(7).
		MustAdd(Fault{Kind: LinkPartition, Target: "wan0", Start: time(100)}).
		MustAdd(Fault{Kind: LinkDegrade, Target: "lan0", Start: 0, Factor: 0.5}).
		MustAdd(Fault{Kind: LinkDegrade, Target: "lan0", Start: 0, Factor: 0.25}).
		MustAdd(Fault{Kind: ChunkLoss, Target: "lan0", Start: 0, Probability: 0.3})
	in := NewInjector(p, clock)

	tf := in.TransferFault("lan0", 3072)
	if tf.Down {
		t.Error("lan0 partitioned; only wan0 is")
	}
	// Two overlapping degrades: the worst (largest slowdown) wins.
	if tf.SlowFactor != 4 {
		t.Errorf("slow factor = %v, want 4", tf.SlowFactor)
	}
	drops := 0
	for i := 0; i < 1000; i++ {
		if in.TransferFault("lan0", 3072).Drop {
			drops++
		}
	}
	if drops < 200 || drops > 400 {
		t.Errorf("drops = %d of 1000 at p=0.3", drops)
	}
	// The partition window.
	if in.TransferFault("wan0", 3072).Down {
		t.Error("wan0 down before its window")
	}
	clock.now = time(200)
	if !in.TransferFault("wan0", 3072).Down {
		t.Error("wan0 up inside its open-ended partition")
	}
	var zero netsim.TransferFault
	if got := in.TransferFault("lan9", 3072); got != zero {
		t.Errorf("untargeted link faulted: %+v", got)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	run := func(seed int64) (string, string) {
		clock := &fakeClock{}
		p := NewPlan(seed).
			MustAdd(Fault{Kind: TransientRead, Target: "d", Start: 0, Probability: 0.4}).
			MustAdd(Fault{Kind: ChunkLoss, Target: "l", Start: 0, Probability: 0.2})
		in := NewInjector(p, clock)
		trace := ""
		for i := 0; i < 200; i++ {
			clock.now = avtime.WorldTime(i) * avtime.Millisecond
			if _, err := in.BeforeRead("d", 1024); err != nil {
				trace += "R"
			}
			if in.TransferFault("l", 1024).Drop {
				trace += "D"
			}
			trace += "."
		}
		return trace, in.CountString()
	}
	t1, c1 := run(99)
	t2, c2 := run(99)
	if t1 != t2 || c1 != c2 {
		t.Error("same seed diverged")
	}
	t3, _ := run(100)
	if t1 == t3 {
		t.Error("different seed replayed the same trace")
	}
}

func TestRetryPolicyAccounting(t *testing.T) {
	transient := fmt.Errorf("wrapped: %w", device.ErrTransientRead)
	// Succeeds on the third attempt: two failed costs, two backoffs
	// (5ms then 10ms), one success cost.
	calls := 0
	op := func() (avtime.WorldTime, error) {
		calls++
		if calls < 3 {
			return 2 * avtime.Millisecond, transient
		}
		return 7 * avtime.Millisecond, nil
	}
	total, attempts, err := DefaultRetry.Do(op)
	if err != nil || attempts != 3 {
		t.Fatalf("attempts = %d, err = %v", attempts, err)
	}
	want := 2*2*avtime.Millisecond + (5+10)*avtime.Millisecond + 7*avtime.Millisecond
	if total != want {
		t.Errorf("total = %v, want %v", total, want)
	}

	// Exhaustion keeps the last error and never exceeds MaxAttempts.
	calls = 0
	_, attempts, err = DefaultRetry.Do(func() (avtime.WorldTime, error) {
		calls++
		return avtime.Millisecond, transient
	})
	if attempts != 3 || calls != 3 || !errors.Is(err, device.ErrTransientRead) {
		t.Errorf("exhaustion: attempts=%d calls=%d err=%v", attempts, calls, err)
	}

	// A non-retryable error stops on the first attempt.
	calls = 0
	_, attempts, err = DefaultRetry.Do(func() (avtime.WorldTime, error) {
		calls++
		return avtime.Millisecond, device.ErrDeviceFailed
	})
	if attempts != 1 || calls != 1 || !errors.Is(err, device.ErrDeviceFailed) {
		t.Errorf("hard fault: attempts=%d calls=%d err=%v", attempts, calls, err)
	}

	// MaxAttempts <= 1 means no retries; Multiplier < 1 clamps to 1.
	single := RetryPolicy{MaxAttempts: 0, Backoff: avtime.Second, Multiplier: 0.1}
	calls = 0
	_, attempts, _ = single.Do(func() (avtime.WorldTime, error) {
		calls++
		return 0, transient
	})
	if attempts != 1 || calls != 1 {
		t.Errorf("degenerate policy: attempts=%d calls=%d", attempts, calls)
	}
}

func TestCountString(t *testing.T) {
	in := NewInjector(NewPlan(1), &fakeClock{})
	if got := in.CountString(); got != "none" {
		t.Errorf("empty counts = %q", got)
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("out-of-range kind = %q", Kind(99))
	}
	f := Fault{Kind: LinkDegrade, Target: "lan0", Start: time(1), Dur: time(2), Factor: 0.25}
	if f.String() != `link-degrade on "lan0" from 1.000000s for 2.000000s x0.25` {
		t.Errorf("fault rendition = %q", f)
	}
}
