package query

import "errors"

// Sentinel errors for the query subsystem.  Every error the package
// returns wraps exactly one of these, so callers branch with errors.Is
// instead of matching message text:
//
//	if errors.Is(err, query.ErrSyntax) { ... reprompt the user ... }
var (
	// ErrSyntax marks lexical and grammatical failures: the input never
	// became a well-formed query.
	ErrSyntax = errors.New("query: syntax error")

	// ErrNoClass marks a query or index request naming an undefined class.
	ErrNoClass = errors.New("query: no such class")

	// ErrNoAttr marks a predicate or index request naming an attribute
	// the class does not define.
	ErrNoAttr = errors.New("query: no such attribute")

	// ErrType marks semantic failures: a well-formed query whose
	// operator, literal or index kind does not fit the attribute's type.
	ErrType = errors.New("query: type error")

	// ErrIndex marks index-management failures: duplicate definitions,
	// plans referencing dropped indexes, operators an index cannot serve.
	ErrIndex = errors.New("query: index error")

	// ErrCorrupt marks a structural invariant violation detected inside
	// an index; it indicates a bug, not bad input.
	ErrCorrupt = errors.New("query: index corrupt")
)
