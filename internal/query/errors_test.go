package query

import (
	"errors"
	"testing"
)

// TestSentinelClassification checks that every failure mode wraps its
// documented sentinel, so callers can branch with errors.Is rather than
// parsing messages.
func TestSentinelClassification(t *testing.T) {
	_, _, eng := newsDB(t, 10)

	syntax := []string{
		"",
		"select",
		"select SimpleNewscast where",
		`select SimpleNewscast where title ~ "x"`,
		`select SimpleNewscast where title = "unterminated`,
		`select SimpleNewscast where (title = "a"`,
		`select SimpleNewscast where title = "a" extra`,
		`select SimpleNewscast where ! title`,
	}
	for _, src := range syntax {
		if _, err := Parse(src); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) = %v, want ErrSyntax", src, err)
		}
	}

	semantic := []struct {
		src  string
		want error
	}{
		{`select Nonesuch where title = "a"`, ErrNoClass},
		{`select SimpleNewscast where nonesuch = "a"`, ErrNoAttr},
		{`select SimpleNewscast where runtimeMin = "sixty"`, ErrType},
		{`select SimpleNewscast where runtimeMin contains "6"`, ErrType},
		{`select SimpleNewscast where archived < true`, ErrType},
		{`select SimpleNewscast where whenBroadcast = "not-a-date"`, ErrType},
	}
	for _, tc := range semantic {
		q, err := Parse(tc.src)
		if err != nil {
			t.Errorf("Parse(%q) failed at the syntax layer: %v", tc.src, err)
			continue
		}
		if _, err := eng.Prepare(q); !errors.Is(err, tc.want) {
			t.Errorf("Prepare(%q) = %v, want %v", tc.src, err, tc.want)
		}
	}

	// Index management failures.
	if _, err := eng.CreateIndex("Nonesuch", "title", HashIndex); !errors.Is(err, ErrNoClass) {
		t.Errorf("CreateIndex on missing class = %v, want ErrNoClass", err)
	}
	if _, err := eng.CreateIndex("SimpleNewscast", "nonesuch", HashIndex); !errors.Is(err, ErrNoAttr) {
		t.Errorf("CreateIndex on missing attr = %v, want ErrNoAttr", err)
	}
	if _, err := eng.CreateIndex("SimpleNewscast", "archived", BTreeIndex); !errors.Is(err, ErrType) {
		t.Errorf("btree over bool = %v, want ErrType", err)
	}
	if _, err := eng.CreateIndex("SimpleNewscast", "title", HashIndex); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CreateIndex("SimpleNewscast", "title", HashIndex); !errors.Is(err, ErrIndex) {
		t.Errorf("duplicate index = %v, want ErrIndex", err)
	}

	// A well-formed, well-typed query still works after all that.
	if _, err := eng.RunString(`select SimpleNewscast where title = "60 Minutes"`); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
}
