package query

import (
	"fmt"

	"avdb/internal/schema"
)

// btree is an in-memory B-tree keyed by schema.Datum, mapping each key to
// the OIDs of objects holding that attribute value.  It backs ordered
// (range-capable) indexes.  Minimum degree 16: nodes hold 15..31 items.
const btreeDegree = 16

type btreeItem struct {
	key  schema.Datum
	oids []schema.OID
}

type btreeNode struct {
	items    []btreeItem
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return n.children == nil }

type btree struct {
	root *btreeNode
	keys int // distinct keys
}

func newBTree() *btree {
	return &btree{root: &btreeNode{}}
}

// cmp orders two datums, panicking on incomparable kinds — the index
// layer guarantees homogeneous keys.
func cmp(a, b schema.Datum) int {
	c, err := a.Compare(b)
	if err != nil {
		panic(fmt.Sprintf("query: heterogeneous index keys: %v", err))
	}
	return c
}

// find locates key in a node's items, returning the position and whether
// it matched.
func (n *btreeNode) find(key schema.Datum) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		switch c := cmp(n.items[mid].key, key); {
		case c < 0:
			lo = mid + 1
		case c > 0:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// insert adds oid under key.
func (t *btree) insert(key schema.Datum, oid schema.OID) {
	if len(t.root.items) == 2*btreeDegree-1 {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.root.splitChild(0)
	}
	t.insertNonFull(t.root, key, oid)
}

func (t *btree) insertNonFull(n *btreeNode, key schema.Datum, oid schema.OID) {
	i, found := n.find(key)
	if found {
		n.items[i].oids = append(n.items[i].oids, oid)
		return
	}
	if n.leaf() {
		n.items = append(n.items, btreeItem{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = btreeItem{key: key, oids: []schema.OID{oid}}
		t.keys++
		return
	}
	if len(n.children[i].items) == 2*btreeDegree-1 {
		n.splitChild(i)
		switch c := cmp(key, n.items[i].key); {
		case c == 0:
			n.items[i].oids = append(n.items[i].oids, oid)
			return
		case c > 0:
			i++
		}
	}
	t.insertNonFull(n.children[i], key, oid)
}

// splitChild splits the full child at index i, hoisting its median item.
func (n *btreeNode) splitChild(i int) {
	child := n.children[i]
	mid := btreeDegree - 1
	median := child.items[mid]
	right := &btreeNode{items: append([]btreeItem(nil), child.items[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]
	n.items = append(n.items, btreeItem{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// lookup returns the OIDs stored under key.
func (t *btree) lookup(key schema.Datum) []schema.OID {
	n := t.root
	for {
		i, found := n.find(key)
		if found {
			return append([]schema.OID(nil), n.items[i].oids...)
		}
		if n.leaf() {
			return nil
		}
		n = n.children[i]
	}
}

// ascend visits keys in [lo, hi] order; nil bounds are open.  Inclusivity
// of each bound is controlled separately.
func (t *btree) ascend(lo, hi *schema.Datum, loIncl, hiIncl bool, visit func(schema.Datum, []schema.OID) bool) {
	t.root.ascend(lo, hi, loIncl, hiIncl, visit)
}

func (n *btreeNode) ascend(lo, hi *schema.Datum, loIncl, hiIncl bool, visit func(schema.Datum, []schema.OID) bool) bool {
	// Prune everything strictly below the lower bound: items before the
	// first key >= lo, and the subtrees hanging entirely under them.  The
	// subtree at the boundary position may straddle lo only when lo is
	// not itself a key here.
	start, exact := 0, false
	if lo != nil {
		start, exact = n.find(*lo)
	}
	for i := start; i < len(n.items); i++ {
		it := n.items[i]
		if !n.leaf() && !(i == start && exact) {
			if !n.children[i].ascend(lo, hi, loIncl, hiIncl, visit) {
				return false
			}
		}
		if lo != nil {
			c := cmp(it.key, *lo)
			if c < 0 || (c == 0 && !loIncl) {
				continue
			}
		}
		if hi != nil {
			c := cmp(it.key, *hi)
			if c > 0 || (c == 0 && !hiIncl) {
				// Later items are larger still, but the right subtree of
				// an earlier item could not contain smaller keys than
				// this one, so stop the whole traversal.
				return false
			}
		}
		if !visit(it.key, it.oids) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.items)].ascend(lo, hi, loIncl, hiIncl, visit)
	}
	return true
}

// remove deletes oid from under key, removing the key once its OID list
// empties.  It reports whether the oid was present.
func (t *btree) remove(key schema.Datum, oid schema.OID) bool {
	ok, emptied := t.root.removeOID(key, oid)
	if !ok {
		return false
	}
	if emptied {
		t.root.deleteKey(key)
		t.keys--
		if len(t.root.items) == 0 && !t.root.leaf() {
			t.root = t.root.children[0]
		}
	}
	return true
}

// removeOID removes one oid from the key's list without restructuring.
func (n *btreeNode) removeOID(key schema.Datum, oid schema.OID) (found, emptied bool) {
	i, ok := n.find(key)
	if ok {
		oids := n.items[i].oids
		for j, id := range oids {
			if id == oid {
				n.items[i].oids = append(oids[:j], oids[j+1:]...)
				return true, len(n.items[i].oids) == 0
			}
		}
		return false, false
	}
	if n.leaf() {
		return false, false
	}
	return n.children[i].removeOID(key, oid)
}

// deleteKey removes a key using the standard B-tree deletion algorithm
// (CLRS): ensure every descended-into child has at least degree items by
// borrowing from or merging with siblings.
func (n *btreeNode) deleteKey(key schema.Datum) {
	i, found := n.find(key)
	if found {
		if n.leaf() {
			n.items = append(n.items[:i], n.items[i+1:]...)
			return
		}
		switch {
		case len(n.children[i].items) >= btreeDegree:
			pred := n.children[i].maxItem()
			n.items[i] = pred
			n.children[i].deleteKey(pred.key)
		case len(n.children[i+1].items) >= btreeDegree:
			succ := n.children[i+1].minItem()
			n.items[i] = succ
			n.children[i+1].deleteKey(succ.key)
		default:
			n.mergeChildren(i)
			n.children[i].deleteKey(key)
		}
		return
	}
	if n.leaf() {
		return // key absent
	}
	if len(n.children[i].items) < btreeDegree {
		i = n.fill(i)
	}
	n.children[i].deleteKey(key)
}

func (n *btreeNode) maxItem() btreeItem {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

func (n *btreeNode) minItem() btreeItem {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

// fill ensures child i has at least degree items, returning the index of
// the child to descend into (merging may shift it).
func (n *btreeNode) fill(i int) int {
	switch {
	case i > 0 && len(n.children[i-1].items) >= btreeDegree:
		// Borrow from the left sibling through the separator.
		child, left := n.children[i], n.children[i-1]
		child.items = append([]btreeItem{n.items[i-1]}, child.items...)
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			child.children = append([]*btreeNode{left.children[len(left.children)-1]}, child.children...)
			left.children = left.children[:len(left.children)-1]
		}
		return i
	case i < len(n.items) && len(n.children[i+1].items) >= btreeDegree:
		// Borrow from the right sibling.
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = right.items[1:]
		if !right.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = right.children[1:]
		}
		return i
	case i < len(n.items):
		n.mergeChildren(i)
		return i
	default:
		n.mergeChildren(i - 1)
		return i - 1
	}
}

// mergeChildren folds child i+1 and the separator item into child i.
func (n *btreeNode) mergeChildren(i int) {
	child, right := n.children[i], n.children[i+1]
	child.items = append(child.items, n.items[i])
	child.items = append(child.items, right.items...)
	child.children = append(child.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// depth reports the tree height (1 for a lone root).
func (t *btree) depth() int {
	d := 1
	for n := t.root; !n.leaf(); n = n.children[0] {
		d++
	}
	return d
}

// checkInvariants verifies ordering and occupancy, for tests.
func (t *btree) checkInvariants() error {
	var prev *schema.Datum
	ok := true
	t.ascend(nil, nil, true, true, func(k schema.Datum, oids []schema.OID) bool {
		if prev != nil && cmp(*prev, k) >= 0 {
			ok = false
			return false
		}
		if len(oids) == 0 {
			ok = false
			return false
		}
		kk := k
		prev = &kk
		return true
	})
	if !ok {
		return fmt.Errorf("%w: btree ordering or occupancy violated", ErrCorrupt)
	}
	return t.root.checkOccupancy(true)
}

func (n *btreeNode) checkOccupancy(isRoot bool) error {
	if !isRoot && len(n.items) < btreeDegree-1 {
		return fmt.Errorf("%w: btree node underflow: %d items", ErrCorrupt, len(n.items))
	}
	if len(n.items) > 2*btreeDegree-1 {
		return fmt.Errorf("%w: btree node overflow: %d items", ErrCorrupt, len(n.items))
	}
	if !n.leaf() && len(n.children) != len(n.items)+1 {
		return fmt.Errorf("%w: btree child count %d for %d items", ErrCorrupt, len(n.children), len(n.items))
	}
	if !n.leaf() {
		for _, c := range n.children {
			if err := c.checkOccupancy(false); err != nil {
				return err
			}
		}
	}
	return nil
}
