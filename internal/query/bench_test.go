package query

import (
	"testing"

	"avdb/internal/schema"
)

func BenchmarkBTreeInsert(b *testing.B) {
	tr := newBTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.insert(schema.Int(int64(i%100000)), schema.OID(i+1))
	}
}

func BenchmarkBTreeLookup(b *testing.B) {
	tr := newBTree()
	for i := 0; i < 100000; i++ {
		tr.insert(schema.Int(int64(i)), schema.OID(i+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tr.lookup(schema.Int(int64(i % 100000))); len(got) != 1 {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkBTreeRangeScan(b *testing.B) {
	tr := newBTree()
	for i := 0; i < 100000; i++ {
		tr.insert(schema.Int(int64(i)), schema.OID(i+1))
	}
	lo, hi := schema.Int(40000), schema.Int(41000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tr.ascend(&lo, &hi, true, false, func(schema.Datum, []schema.OID) bool {
			n++
			return true
		})
		if n != 1000 {
			b.Fatalf("scanned %d", n)
		}
	}
}

func BenchmarkQueryFullScan(b *testing.B) {
	_, _, eng := benchDB(b, 10000)
	q, err := Parse(`select SimpleNewscast where title = "60 Minutes"`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryHashIndexed(b *testing.B) {
	_, _, eng := benchDB(b, 10000)
	if _, err := eng.CreateIndex("SimpleNewscast", "title", HashIndex); err != nil {
		b.Fatal(err)
	}
	q, err := Parse(`select SimpleNewscast where title = "60 Minutes"`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryBTreeRange(b *testing.B) {
	_, _, eng := benchDB(b, 10000)
	if _, err := eng.CreateIndex("SimpleNewscast", "runtimeMin", BTreeIndex); err != nil {
		b.Fatal(err)
	}
	q, err := Parse(`select SimpleNewscast where runtimeMin < 25`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	src := `select SimpleNewscast where (title = "60 Minutes" and whenBroadcast = 1993-04-19) or runtimeMin > 30`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDB mirrors newsDB for testing.B.
func benchDB(b *testing.B, n int) (*schema.Schema, *schema.Store, *Engine) {
	b.Helper()
	s := schema.NewSchema()
	cls, err := s.Define("SimpleNewscast", "", []schema.AttrDef{
		{Name: "title", Kind: schema.KindString},
		{Name: "runtimeMin", Kind: schema.KindInt},
	})
	if err != nil {
		b.Fatal(err)
	}
	store := schema.NewStore()
	titles := []string{"60 Minutes", "Evening News", "Morning Report", "Tech Today"}
	for i := 0; i < n; i++ {
		o := store.NewObject(cls)
		if err := o.Set("title", schema.String(titles[i%len(titles)])); err != nil {
			b.Fatal(err)
		}
		if err := o.Set("runtimeMin", schema.Int(int64(20+i%40))); err != nil {
			b.Fatal(err)
		}
	}
	return s, store, NewEngine(s, store)
}
