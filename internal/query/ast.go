package query

import (
	"fmt"
	"time"

	"avdb/internal/schema"
)

// Op is a predicate operator.
type Op int

// The predicate operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpContains
)

var opNames = [...]string{
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpContains: "contains",
}

// String returns the operator's source form.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("Op(%d)", int(o))
	}
	return opNames[o]
}

// Expr is a boolean predicate expression over one object.
type Expr interface {
	fmt.Stringer
	// check validates the expression against a class definition and
	// resolves literal types.
	check(c *schema.Class) error
	// eval decides the predicate for one object.
	eval(o *schema.Object) bool
}

// And is conjunction.
type And struct{ L, R Expr }

// String implements Expr.
func (e *And) String() string { return fmt.Sprintf("(%v and %v)", e.L, e.R) }

func (e *And) check(c *schema.Class) error {
	if err := e.L.check(c); err != nil {
		return err
	}
	return e.R.check(c)
}

func (e *And) eval(o *schema.Object) bool { return e.L.eval(o) && e.R.eval(o) }

// Or is disjunction.
type Or struct{ L, R Expr }

// String implements Expr.
func (e *Or) String() string { return fmt.Sprintf("(%v or %v)", e.L, e.R) }

func (e *Or) check(c *schema.Class) error {
	if err := e.L.check(c); err != nil {
		return err
	}
	return e.R.check(c)
}

func (e *Or) eval(o *schema.Object) bool { return e.L.eval(o) || e.R.eval(o) }

// Not is negation.
type Not struct{ E Expr }

// String implements Expr.
func (e *Not) String() string { return fmt.Sprintf("(not %v)", e.E) }

func (e *Not) check(c *schema.Class) error { return e.E.check(c) }

func (e *Not) eval(o *schema.Object) bool { return !e.E.eval(o) }

// Literal is an untyped literal as written; check resolves it to a Datum
// against the attribute's declared kind.
type Literal struct {
	kind tokenKind // tokString, tokNumber, tokDate, or tokKeyword (true/false)
	text string
}

// Pred is one comparison: attribute op literal.
type Pred struct {
	Attr string
	Op   Op
	Lit  Literal

	datum schema.Datum // resolved by check
}

// String implements Expr.
func (p *Pred) String() string {
	return fmt.Sprintf("%s %v %s", p.Attr, p.Op, p.Lit.text)
}

func (p *Pred) check(c *schema.Class) error {
	attr, ok := c.Attr(p.Attr)
	if !ok {
		return fmt.Errorf("%w: class %s has no attribute %q", ErrNoAttr, c.Name(), p.Attr)
	}
	d, err := resolveLiteral(p.Lit, attr.Kind)
	if err != nil {
		return err
	}
	p.datum = d
	switch p.Op {
	case OpEq, OpNe:
		if attr.Kind == schema.KindMedia || attr.Kind == schema.KindTComp {
			return fmt.Errorf("%w: attribute %q of kind %v cannot be compared", ErrType, p.Attr, attr.Kind)
		}
	case OpLt, OpLe, OpGt, OpGe:
		switch attr.Kind {
		case schema.KindString, schema.KindInt, schema.KindFloat, schema.KindDate:
		default:
			return fmt.Errorf("%w: attribute %q of kind %v is not ordered", ErrType, p.Attr, attr.Kind)
		}
	case OpContains:
		if attr.Kind != schema.KindString {
			return fmt.Errorf("%w: contains needs a String attribute, %q is %v", ErrType, p.Attr, attr.Kind)
		}
	}
	return nil
}

func resolveLiteral(lit Literal, kind schema.AttrKind) (schema.Datum, error) {
	switch kind {
	case schema.KindString:
		if lit.kind != tokString {
			return schema.Datum{}, fmt.Errorf("%w: %q is not a string literal", ErrType, lit.text)
		}
		return schema.String(lit.text), nil
	case schema.KindInt:
		if lit.kind != tokNumber {
			return schema.Datum{}, fmt.Errorf("%w: %q is not a number", ErrType, lit.text)
		}
		var v int64
		if _, err := fmt.Sscanf(lit.text, "%d", &v); err != nil {
			return schema.Datum{}, fmt.Errorf("%w: %q is not an integer", ErrType, lit.text)
		}
		return schema.Int(v), nil
	case schema.KindFloat:
		if lit.kind != tokNumber {
			return schema.Datum{}, fmt.Errorf("%w: %q is not a number", ErrType, lit.text)
		}
		var v float64
		if _, err := fmt.Sscanf(lit.text, "%g", &v); err != nil {
			return schema.Datum{}, fmt.Errorf("%w: %q is not a float", ErrType, lit.text)
		}
		return schema.Float(v), nil
	case schema.KindBool:
		switch lit.text {
		case "true":
			return schema.Bool(true), nil
		case "false":
			return schema.Bool(false), nil
		}
		return schema.Datum{}, fmt.Errorf("%w: %q is not a boolean", ErrType, lit.text)
	case schema.KindDate:
		text := lit.text
		if lit.kind != tokDate && lit.kind != tokString {
			return schema.Datum{}, fmt.Errorf("%w: %q is not a date", ErrType, lit.text)
		}
		t, err := time.Parse("2006-01-02", text)
		if err != nil {
			return schema.Datum{}, fmt.Errorf("%w: %q is not a date (want YYYY-MM-DD)", ErrType, text)
		}
		return schema.Date(t), nil
	}
	return schema.Datum{}, fmt.Errorf("%w: attribute kind %v has no literals", ErrType, kind)
}

func (p *Pred) eval(o *schema.Object) bool {
	d, ok := o.Get(p.Attr)
	if !ok {
		return false // unset attributes satisfy nothing
	}
	switch p.Op {
	case OpEq:
		return d.Equal(p.datum)
	case OpNe:
		return !d.Equal(p.datum)
	case OpContains:
		return d.Contains(p.datum.Str())
	}
	c, err := d.Compare(p.datum)
	if err != nil {
		return false
	}
	switch p.Op {
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// Query is a parsed select statement.
type Query struct {
	ClassName string
	Where     Expr // nil selects the whole extent
}

// String renders the query back to source form.
func (q *Query) String() string {
	if q.Where == nil {
		return fmt.Sprintf("select %s", q.ClassName)
	}
	return fmt.Sprintf("select %s where %v", q.ClassName, q.Where)
}
