package query

import "fmt"

// Parse compiles a query string into a Query.
//
// Grammar:
//
//	query  := 'select' IDENT [ 'where' expr ]
//	expr   := andExpr ( 'or' andExpr )*
//	andExpr:= unary ( 'and' unary )*
//	unary  := 'not' unary | '(' expr ')' | pred
//	pred   := IDENT ( '=' | '!=' | '<' | '<=' | '>' | '>=' | 'contains' ) literal
//	literal:= STRING | NUMBER | DATE | 'true' | 'false'
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("%w: trailing input at %v", ErrSyntax, p.peek())
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("%w: expected %q, got %v", ErrSyntax, kw, t)
	}
	return nil
}

func (p *parser) query() (*Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	cls := p.next()
	if cls.kind != tokIdent {
		return nil, fmt.Errorf("%w: expected class name, got %v", ErrSyntax, cls)
	}
	q := &Query{ClassName: cls.text}
	if p.peek().kind == tokKeyword && p.peek().text == "where" {
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	return q, nil
}

func (p *parser) expr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && p.peek().text == "or" {
		p.next()
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &Or{L: left, R: right}
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKeyword && p.peek().text == "and" {
		p.next()
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = &And{L: left, R: right}
	}
	return left, nil
}

func (p *parser) unary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokKeyword && t.text == "not":
		p.next()
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Not{E: e}, nil
	case t.kind == tokLParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if tt := p.next(); tt.kind != tokRParen {
			return nil, fmt.Errorf("%w: expected ')', got %v", ErrSyntax, tt)
		}
		return e, nil
	default:
		return p.pred()
	}
}

func (p *parser) pred() (Expr, error) {
	attr := p.next()
	if attr.kind != tokIdent {
		return nil, fmt.Errorf("%w: expected attribute name, got %v", ErrSyntax, attr)
	}
	opTok := p.next()
	var op Op
	switch {
	case opTok.kind == tokOp:
		switch opTok.text {
		case "=":
			op = OpEq
		case "!=":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		}
	case opTok.kind == tokKeyword && opTok.text == "contains":
		op = OpContains
	default:
		return nil, fmt.Errorf("%w: expected operator, got %v", ErrSyntax, opTok)
	}
	lit := p.next()
	switch lit.kind {
	case tokString, tokNumber, tokDate:
	case tokKeyword:
		if lit.text != "true" && lit.text != "false" {
			return nil, fmt.Errorf("%w: expected literal, got %v", ErrSyntax, lit)
		}
	default:
		return nil, fmt.Errorf("%w: expected literal, got %v", ErrSyntax, lit)
	}
	return &Pred{Attr: attr.text, Op: op, Lit: Literal{kind: lit.kind, text: lit.text}}, nil
}
