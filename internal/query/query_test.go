package query

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"avdb/internal/schema"
)

// newsDB builds a schema and store with n SimpleNewscast objects.
func newsDB(t testing.TB, n int) (*schema.Schema, *schema.Store, *Engine) {
	t.Helper()
	s := schema.NewSchema()
	if _, err := s.Define("MediaObject", "", []schema.AttrDef{
		{Name: "title", Kind: schema.KindString},
	}); err != nil {
		t.Fatal(err)
	}
	cls, err := s.Define("SimpleNewscast", "MediaObject", []schema.AttrDef{
		{Name: "broadcastSource", Kind: schema.KindString},
		{Name: "whenBroadcast", Kind: schema.KindDate},
		{Name: "runtimeMin", Kind: schema.KindInt},
		{Name: "rating", Kind: schema.KindFloat},
		{Name: "archived", Kind: schema.KindBool},
	})
	if err != nil {
		t.Fatal(err)
	}
	store := schema.NewStore()
	titles := []string{"60 Minutes", "Evening News", "Morning Report", "Tech Today"}
	sources := []string{"CBS", "NBC", "ABC"}
	base := time.Date(1993, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		o := store.NewObject(cls)
		must(t, o.Set("title", schema.String(titles[i%len(titles)])))
		must(t, o.Set("broadcastSource", schema.String(sources[i%len(sources)])))
		must(t, o.Set("whenBroadcast", schema.Date(base.AddDate(0, 0, i))))
		must(t, o.Set("runtimeMin", schema.Int(int64(20+i%40))))
		must(t, o.Set("rating", schema.Float(float64(i%100)/10)))
		must(t, o.Set("archived", schema.Bool(i%2 == 0)))
	}
	return s, store, NewEngine(s, store)
}

func must(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestLexBasics(t *testing.T) {
	toks, err := lex(`select SimpleNewscast where (title = "60 Minutes" and whenBroadcast = 1993-04-19)`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokKeyword, tokIdent, tokKeyword, tokLParen, tokIdent, tokOp, tokString,
		tokKeyword, tokIdent, tokOp, tokDate, tokRParen, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d = %v, kind %d, want %d", i, toks[i], toks[i].kind, k)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{`title = "unterminated`, `a ! b`, `x = 1993-04`, `x = @`} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) succeeded", bad)
		}
	}
}

func TestLexEscapedString(t *testing.T) {
	toks, err := lex(`x = "say \"hi\""`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].text != `say "hi"` {
		t.Errorf("escaped string = %q", toks[2].text)
	}
}

func TestParsePaperQuery(t *testing.T) {
	q, err := Parse(`select SimpleNewscast where (title = "60 Minutes" and whenBroadcast = 1993-04-19)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.ClassName != "SimpleNewscast" {
		t.Error("class wrong")
	}
	and, ok := q.Where.(*And)
	if !ok {
		t.Fatalf("Where = %T", q.Where)
	}
	if p := and.L.(*Pred); p.Attr != "title" || p.Op != OpEq {
		t.Error("left pred wrong")
	}
	if got := q.String(); !strings.Contains(got, "select SimpleNewscast where") {
		t.Errorf("String = %q", got)
	}
}

func TestParsePrecedenceAndNot(t *testing.T) {
	q, err := Parse(`select C where a = 1 or b = 2 and not c = 3`)
	if err != nil {
		t.Fatal(err)
	}
	or, ok := q.Where.(*Or)
	if !ok {
		t.Fatalf("top = %T, want Or (and binds tighter)", q.Where)
	}
	and, ok := or.R.(*And)
	if !ok {
		t.Fatalf("or.R = %T, want And", or.R)
	}
	if _, ok := and.R.(*Not); !ok {
		t.Fatalf("and.R = %T, want Not", and.R)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"select",
		"select 42",
		"where x = 1",
		"select C where",
		"select C where x",
		"select C where x =",
		"select C where (x = 1",
		"select C where x ~ 1",
		"select C where x = 1 extra",
		"select C where not",
		"select C where x contains",
		"select C where x = and",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestRunEqualityFullScan(t *testing.T) {
	_, store, eng := newsDB(t, 40)
	oids, err := eng.RunString(`select SimpleNewscast where title = "60 Minutes"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != 10 {
		t.Errorf("matched %d, want 10", len(oids))
	}
	for _, oid := range oids {
		o, _ := store.Get(oid)
		if d, _ := o.Get("title"); d.Str() != "60 Minutes" {
			t.Errorf("object %v title = %v", oid, d.Format())
		}
	}
}

func TestRunComparisonsAndBooleans(t *testing.T) {
	_, _, eng := newsDB(t, 40)
	cases := map[string]int{
		`select SimpleNewscast`:                                                                   40,
		`select SimpleNewscast where runtimeMin < 25`:                                             5, // runtimes 20..59, one each
		`select SimpleNewscast where runtimeMin >= 55`:                                            5,
		`select SimpleNewscast where archived = true`:                                             20,
		`select SimpleNewscast where not archived = true`:                                         20,
		`select SimpleNewscast where title contains "News"`:                                       10,
		`select SimpleNewscast where rating > 3.45 and rating < 3.55`:                             1,
		`select SimpleNewscast where title = "Tech Today" or title = "60 Minutes"`:                20,
		`select SimpleNewscast where whenBroadcast < 1993-01-11`:                                  10,
		`select SimpleNewscast where whenBroadcast >= 1993-02-01 and whenBroadcast <= 1993-02-05`: 5,
		`select SimpleNewscast where broadcastSource != "CBS"`:                                    26,
	}
	for src, want := range cases {
		oids, err := eng.RunString(src)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if len(oids) != want {
			t.Errorf("%s: matched %d, want %d", src, len(oids), want)
		}
	}
}

func TestRunTypeErrors(t *testing.T) {
	_, _, eng := newsDB(t, 4)
	for _, bad := range []string{
		`select Nope where title = "x"`,
		`select SimpleNewscast where nope = "x"`,
		`select SimpleNewscast where title = 42`,
		`select SimpleNewscast where runtimeMin = "x"`,
		`select SimpleNewscast where archived < true`,
		`select SimpleNewscast where runtimeMin contains "2"`,
		`select SimpleNewscast where whenBroadcast = "not-a-date"`,
		`select SimpleNewscast where rating = "x"`,
		`select SimpleNewscast where archived = 1`,
	} {
		if _, err := eng.RunString(bad); err == nil {
			t.Errorf("%s: succeeded", bad)
		}
	}
}

func TestUnsetAttributeNeverMatches(t *testing.T) {
	s := schema.NewSchema()
	cls, err := s.Define("Sparse", "", []schema.AttrDef{{Name: "x", Kind: schema.KindInt}})
	if err != nil {
		t.Fatal(err)
	}
	store := schema.NewStore()
	store.NewObject(cls) // x unset
	eng := NewEngine(s, store)
	for _, src := range []string{
		`select Sparse where x = 0`,
		`select Sparse where x != 0`,
		`select Sparse where x < 100`,
	} {
		oids, err := eng.RunString(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(oids) != 0 {
			t.Errorf("%s matched unset attribute", src)
		}
	}
}

func TestSubclassExtent(t *testing.T) {
	s, store, _ := newsDB(t, 3)
	eng := NewEngine(s, store)
	// Querying the root class sees SimpleNewscast instances.
	oids, err := eng.RunString(`select MediaObject where title contains "Minutes"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != 1 {
		t.Errorf("root-class query matched %d", len(oids))
	}
}

func TestHashIndexUsedForEquality(t *testing.T) {
	_, _, eng := newsDB(t, 100)
	if _, err := eng.CreateIndex("SimpleNewscast", "title", HashIndex); err != nil {
		t.Fatal(err)
	}
	q, err := Parse(`select SimpleNewscast where title = "60 Minutes" and runtimeMin > 0`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := eng.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.IndexUsed != "SimpleNewscast.title" {
		t.Errorf("plan = %v", plan)
	}
	oids, err := eng.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != 25 {
		t.Errorf("index scan matched %d, want 25", len(oids))
	}
	// The same query without the index gives identical results.
	eng2 := func() *Engine { _, _, e := newsDB(t, 100); return e }()
	plain, err := eng2.RunString(`select SimpleNewscast where title = "60 Minutes" and runtimeMin > 0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(oids) {
		t.Errorf("index and scan disagree: %d vs %d", len(oids), len(plain))
	}
}

func TestBTreeIndexServesRanges(t *testing.T) {
	_, _, eng := newsDB(t, 60)
	if _, err := eng.CreateIndex("SimpleNewscast", "whenBroadcast", BTreeIndex); err != nil {
		t.Fatal(err)
	}
	q, err := Parse(`select SimpleNewscast where whenBroadcast < 1993-01-08`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := eng.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.IndexUsed == "" {
		t.Fatalf("range plan did not use index: %v", plan)
	}
	oids, err := eng.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != 7 {
		t.Errorf("matched %d, want 7", len(oids))
	}
	// Hash indexes do not serve ranges: planner must skip them.
	_, _, eng2 := newsDB(t, 10)
	if _, err := eng2.CreateIndex("SimpleNewscast", "runtimeMin", HashIndex); err != nil {
		t.Fatal(err)
	}
	q2, _ := Parse(`select SimpleNewscast where runtimeMin < 25`)
	plan2, err := eng2.Prepare(q2)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.IndexUsed != "" {
		t.Errorf("hash index chosen for range: %v", plan2)
	}
	if !strings.Contains(plan2.String(), "full scan") {
		t.Errorf("plan String = %q", plan2.String())
	}
}

func TestCreateIndexValidation(t *testing.T) {
	_, _, eng := newsDB(t, 5)
	if _, err := eng.CreateIndex("Nope", "title", HashIndex); err == nil {
		t.Error("index on missing class accepted")
	}
	if _, err := eng.CreateIndex("SimpleNewscast", "nope", HashIndex); err == nil {
		t.Error("index on missing attribute accepted")
	}
	if _, err := eng.CreateIndex("SimpleNewscast", "archived", BTreeIndex); err == nil {
		t.Error("btree on bool accepted")
	}
	if _, err := eng.CreateIndex("SimpleNewscast", "title", HashIndex); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CreateIndex("SimpleNewscast", "title", HashIndex); err == nil {
		t.Error("duplicate index accepted")
	}
	if _, ok := eng.Index("SimpleNewscast", "title"); !ok {
		t.Error("Index lookup failed")
	}
}

func TestIndexMaintenance(t *testing.T) {
	s, store, eng := newsDB(t, 10)
	if _, err := eng.CreateIndex("SimpleNewscast", "title", HashIndex); err != nil {
		t.Fatal(err)
	}
	cls, _ := s.Class("SimpleNewscast")
	o := store.NewObject(cls)
	must(t, o.Set("title", schema.String("Late Edition")))
	eng.OnSet(o, "title", nil, schema.String("Late Edition"))

	oids, err := eng.RunString(`select SimpleNewscast where title = "Late Edition"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != 1 || oids[0] != o.OID() {
		t.Errorf("new object not indexed: %v", oids)
	}
	// Update: index must follow.
	old := schema.String("Late Edition")
	must(t, o.Set("title", schema.String("Final Edition")))
	eng.OnSet(o, "title", &old, schema.String("Final Edition"))
	oids, _ = eng.RunString(`select SimpleNewscast where title = "Late Edition"`)
	if len(oids) != 0 {
		t.Error("stale index entry after update")
	}
	oids, _ = eng.RunString(`select SimpleNewscast where title = "Final Edition"`)
	if len(oids) != 1 {
		t.Error("updated value not indexed")
	}
	// Delete.
	eng.OnDelete(o)
	must(t, store.Delete(o.OID()))
	oids, _ = eng.RunString(`select SimpleNewscast where title = "Final Edition"`)
	if len(oids) != 0 {
		t.Error("deleted object still indexed")
	}
}

func TestIndexAndScanAgreeProperty(t *testing.T) {
	_, _, scanEng := newsDB(t, 200)
	_, _, idxEng := newsDB(t, 200)
	if _, err := idxEng.CreateIndex("SimpleNewscast", "runtimeMin", BTreeIndex); err != nil {
		t.Fatal(err)
	}
	ops := []string{"=", "<", "<=", ">", ">="}
	f := func(opIdx uint8, val uint8) bool {
		src := fmt.Sprintf(`select SimpleNewscast where runtimeMin %s %d`, ops[int(opIdx)%len(ops)], int(val)%70)
		a, err1 := scanEng.RunString(src)
		b, err2 := idxEng.RunString(src)
		if (err1 == nil) != (err2 == nil) || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBTreeInsertLookupRemove(t *testing.T) {
	tr := newBTree()
	const n = 2000
	perm := rand.New(rand.NewSource(5)).Perm(n)
	for _, k := range perm {
		tr.insert(schema.Int(int64(k)), schema.OID(k+1))
		// Duplicates share a key.
		tr.insert(schema.Int(int64(k)), schema.OID(k+100_000))
	}
	if tr.keys != n {
		t.Fatalf("keys = %d, want %d", tr.keys, n)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if d := tr.depth(); d < 2 {
		t.Errorf("2000 keys produced depth %d", d)
	}
	if got := tr.lookup(schema.Int(1234)); len(got) != 2 {
		t.Errorf("lookup = %v", got)
	}
	if got := tr.lookup(schema.Int(99999)); got != nil {
		t.Error("missing key found")
	}
	// Remove one OID: key survives; remove the second: key goes.
	if !tr.remove(schema.Int(1234), 1235) {
		t.Fatal("remove failed")
	}
	if got := tr.lookup(schema.Int(1234)); len(got) != 1 {
		t.Errorf("after first remove: %v", got)
	}
	if !tr.remove(schema.Int(1234), 101_234) {
		t.Fatal("second remove failed")
	}
	if got := tr.lookup(schema.Int(1234)); got != nil {
		t.Error("key survived emptying")
	}
	if tr.remove(schema.Int(1234), 42) {
		t.Error("remove of absent oid succeeded")
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeRandomDeleteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := newBTree()
	alive := make(map[int]bool)
	for i := 0; i < 3000; i++ {
		k := rng.Intn(400)
		if alive[k] {
			if !tr.remove(schema.Int(int64(k)), schema.OID(k+1)) {
				t.Fatalf("remove of live key %d failed", k)
			}
			alive[k] = false
		} else {
			tr.insert(schema.Int(int64(k)), schema.OID(k+1))
			alive[k] = true
		}
		if i%250 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	for k, live := range alive {
		got := tr.lookup(schema.Int(int64(k)))
		if live && len(got) != 1 {
			t.Errorf("live key %d lookup = %v", k, got)
		}
		if !live && got != nil {
			t.Errorf("dead key %d lookup = %v", k, got)
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeAscendRange(t *testing.T) {
	tr := newBTree()
	for i := 0; i < 100; i++ {
		tr.insert(schema.Int(int64(i)), schema.OID(i+1))
	}
	lo, hi := schema.Int(10), schema.Int(20)
	var keys []int64
	tr.ascend(&lo, &hi, true, false, func(d schema.Datum, _ []schema.OID) bool {
		keys = append(keys, d.IntVal())
		return true
	})
	if len(keys) != 10 || keys[0] != 10 || keys[9] != 19 {
		t.Errorf("range [10,20) = %v", keys)
	}
	// Early termination by the visitor.
	count := 0
	tr.ascend(nil, nil, true, true, func(schema.Datum, []schema.OID) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("visitor termination at %d", count)
	}
}

func TestOpAndIndexKindStrings(t *testing.T) {
	if OpEq.String() != "=" || OpContains.String() != "contains" {
		t.Error("op names wrong")
	}
	if Op(99).String() != "Op(99)" {
		t.Error("out-of-range op name wrong")
	}
	if HashIndex.String() != "hash" || BTreeIndex.String() != "btree" {
		t.Error("index kind names wrong")
	}
	if IndexKind(9).String() != "IndexKind(9)" {
		t.Error("out-of-range index kind name wrong")
	}
}
