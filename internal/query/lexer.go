// Package query implements the AV database's query interface: a small
// declarative language in the style of the paper's pseudo-code —
//
//	select SimpleNewscast where (title = "60 Minutes" and
//	                             whenBroadcast = 1993-04-19)
//
// — with a lexer, recursive-descent parser, type-checked evaluation over
// the object store, and hash and B-tree attribute indexes the planner
// uses for equality and range predicates.  Queries return object
// references (OIDs), never media values: values are produced by binding
// them to activities (§3.1).
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokDate
	tokOp // = != < <= > >=
	tokLParen
	tokRParen
	tokKeyword // select, where, and, or, not, contains, true, false
)

var keywords = map[string]bool{
	"select": true, "where": true, "and": true, "or": true,
	"not": true, "contains": true, "true": true, "false": true,
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenizes a query string.  Dates appear as bare YYYY-MM-DD tokens.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("%w: stray '!' at offset %d", ErrSyntax, i)
			}
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op, i})
			i++
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("%w: unterminated string at offset %d", ErrSyntax, i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			digitsAndDashes := 0
			for j < len(src) && (isDigit(src[j]) || src[j] == '.' || src[j] == '-') {
				if src[j] == '-' {
					digitsAndDashes++
				}
				j++
			}
			text := src[i:j]
			if digitsAndDashes == 2 && len(text) == 10 {
				toks = append(toks, token{tokDate, text, i})
			} else if digitsAndDashes > 0 {
				return nil, fmt.Errorf("%w: malformed literal %q at offset %d", ErrSyntax, text, i)
			} else {
				toks = append(toks, token{tokNumber, text, i})
			}
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			text := src[i:j]
			if keywords[strings.ToLower(text)] {
				toks = append(toks, token{tokKeyword, strings.ToLower(text), i})
			} else {
				toks = append(toks, token{tokIdent, text, i})
			}
			i = j
		default:
			return nil, fmt.Errorf("%w: unexpected character %q at offset %d", ErrSyntax, c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}
