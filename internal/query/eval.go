package query

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"avdb/internal/schema"
)

// IndexKind selects an index implementation.
type IndexKind int

// The index kinds: hash indexes serve equality, B-tree indexes serve
// equality and range predicates.
const (
	HashIndex IndexKind = iota
	BTreeIndex
)

// String returns the kind's name.
func (k IndexKind) String() string {
	switch k {
	case HashIndex:
		return "hash"
	case BTreeIndex:
		return "btree"
	}
	return fmt.Sprintf("IndexKind(%d)", int(k))
}

// Index is an attribute index over a class extent.
type Index struct {
	class *schema.Class
	attr  string
	kind  IndexKind

	mu   sync.RWMutex
	hash map[string][]schema.OID
	tree *btree
}

// hashKey encodes a datum as a map key, prefixed by kind so values of
// different kinds never collide.
func hashKey(d schema.Datum) string {
	return strconv.Itoa(int(d.Kind())) + "|" + d.Format()
}

// Add indexes one object's value of the attribute.
func (ix *Index) Add(oid schema.OID, d schema.Datum) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.kind == HashIndex {
		k := hashKey(d)
		ix.hash[k] = append(ix.hash[k], oid)
		return
	}
	ix.tree.insert(d, oid)
}

// Remove drops one object's entry.
func (ix *Index) Remove(oid schema.OID, d schema.Datum) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.kind == HashIndex {
		k := hashKey(d)
		oids := ix.hash[k]
		for i, id := range oids {
			if id == oid {
				ix.hash[k] = append(oids[:i], oids[i+1:]...)
				break
			}
		}
		if len(ix.hash[k]) == 0 {
			delete(ix.hash, k)
		}
		return
	}
	ix.tree.remove(d, oid)
}

// Lookup returns the OIDs with the exact value.
func (ix *Index) Lookup(d schema.Datum) []schema.OID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.kind == HashIndex {
		return append([]schema.OID(nil), ix.hash[hashKey(d)]...)
	}
	return ix.tree.lookup(d)
}

// Range returns the OIDs with values in the given bounds (nil = open),
// in key order.  Only B-tree indexes support ranges.
func (ix *Index) Range(lo, hi *schema.Datum, loIncl, hiIncl bool) ([]schema.OID, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.kind != BTreeIndex {
		return nil, fmt.Errorf("%w: %v index on %s.%s cannot serve ranges", ErrIndex, ix.kind, ix.class.Name(), ix.attr)
	}
	var out []schema.OID
	ix.tree.ascend(lo, hi, loIncl, hiIncl, func(_ schema.Datum, oids []schema.OID) bool {
		out = append(out, oids...)
		return true
	})
	return out, nil
}

// Engine executes queries over a schema and store, using any indexes the
// administrator has created.
type Engine struct {
	schema *schema.Schema
	store  *schema.Store

	mu      sync.RWMutex
	indexes map[string]*Index // "Class.attr"
}

// NewEngine returns a query engine.
func NewEngine(s *schema.Schema, store *schema.Store) *Engine {
	return &Engine{schema: s, store: store, indexes: make(map[string]*Index)}
}

func indexName(class, attr string) string { return class + "." + attr }

// CreateIndex builds an index over the class's current extent (including
// subclasses) and registers it for maintenance and planning.
func (e *Engine) CreateIndex(className, attr string, kind IndexKind) (*Index, error) {
	c, ok := e.schema.Class(className)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoClass, className)
	}
	def, ok := c.Attr(attr)
	if !ok {
		return nil, fmt.Errorf("%w: class %s has no attribute %q", ErrNoAttr, className, attr)
	}
	switch def.Kind {
	case schema.KindString, schema.KindInt, schema.KindFloat, schema.KindDate, schema.KindBool:
	default:
		return nil, fmt.Errorf("%w: cannot index %v attribute %q", ErrType, def.Kind, attr)
	}
	if kind == BTreeIndex && def.Kind == schema.KindBool {
		return nil, fmt.Errorf("%w: boolean attributes take hash indexes only", ErrType)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	name := indexName(className, attr)
	if _, dup := e.indexes[name]; dup {
		return nil, fmt.Errorf("%w: index %s already exists", ErrIndex, name)
	}
	ix := &Index{class: c, attr: attr, kind: kind}
	if kind == HashIndex {
		ix.hash = make(map[string][]schema.OID)
	} else {
		ix.tree = newBTree()
	}
	for _, oid := range e.store.OfClass(c, true) {
		o, ok := e.store.Get(oid)
		if !ok {
			continue
		}
		if d, ok := o.Get(attr); ok {
			ix.Add(oid, d)
		}
	}
	e.indexes[name] = ix
	return ix, nil
}

// Index returns a registered index.
func (e *Engine) Index(className, attr string) (*Index, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ix, ok := e.indexes[indexName(className, attr)]
	return ix, ok
}

// OnSet maintains indexes after an attribute assignment; old is the
// previous value if there was one.
func (e *Engine) OnSet(o *schema.Object, attr string, old *schema.Datum, d schema.Datum) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, ix := range e.indexes {
		if ix.attr != attr || !o.Class().IsSubclassOf(ix.class) {
			continue
		}
		if old != nil {
			ix.Remove(o.OID(), *old)
		}
		ix.Add(o.OID(), d)
	}
}

// OnDelete removes an object from every index.
func (e *Engine) OnDelete(o *schema.Object) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, ix := range e.indexes {
		if !o.Class().IsSubclassOf(ix.class) {
			continue
		}
		if d, ok := o.Get(ix.attr); ok {
			ix.Remove(o.OID(), d)
		}
	}
}

// Plan describes how a query will execute, for inspection and tests.
type Plan struct {
	Class     *schema.Class
	Where     Expr
	IndexUsed string // "Class.attr" or "" for a full scan
	IndexPred *Pred  // the predicate served by the index
}

// String summarizes the plan.
func (p *Plan) String() string {
	scan := "full scan"
	if p.IndexUsed != "" {
		scan = fmt.Sprintf("index scan on %s (%v)", p.IndexUsed, p.IndexPred)
	}
	if p.Where == nil {
		return fmt.Sprintf("select %s: extent scan", p.Class.Name())
	}
	return fmt.Sprintf("select %s where %v: %s", p.Class.Name(), p.Where, scan)
}

// Prepare type-checks a query and picks an access path.
func (e *Engine) Prepare(q *Query) (*Plan, error) {
	c, ok := e.schema.Class(q.ClassName)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoClass, q.ClassName)
	}
	p := &Plan{Class: c, Where: q.Where}
	if q.Where == nil {
		return p, nil
	}
	if err := q.Where.check(c); err != nil {
		return nil, err
	}
	// Use an index for one predicate of the top-level AND chain.
	for _, pred := range andChain(q.Where) {
		ix, ok := e.Index(c.Name(), pred.Attr)
		if !ok {
			continue
		}
		switch pred.Op {
		case OpEq:
			p.IndexUsed = indexName(c.Name(), pred.Attr)
			p.IndexPred = pred
			return p, nil
		case OpLt, OpLe, OpGt, OpGe:
			if ix.kind == BTreeIndex {
				p.IndexUsed = indexName(c.Name(), pred.Attr)
				p.IndexPred = pred
				return p, nil
			}
		}
	}
	return p, nil
}

// andChain collects the predicates reachable through top-level ANDs.
func andChain(e Expr) []*Pred {
	switch x := e.(type) {
	case *Pred:
		return []*Pred{x}
	case *And:
		return append(andChain(x.L), andChain(x.R)...)
	}
	return nil
}

// Run parses nothing: it executes an already-parsed query, returning
// matching OIDs in ascending order.
func (e *Engine) Run(q *Query) ([]schema.OID, error) {
	plan, err := e.Prepare(q)
	if err != nil {
		return nil, err
	}
	return e.Execute(plan)
}

// RunString parses and executes a query string.
func (e *Engine) RunString(src string) ([]schema.OID, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Run(q)
}

// Execute runs a prepared plan.
func (e *Engine) Execute(plan *Plan) ([]schema.OID, error) {
	var candidates []schema.OID
	if plan.IndexUsed != "" {
		ix, ok := e.Index(plan.Class.Name(), plan.IndexPred.Attr)
		if !ok {
			return nil, fmt.Errorf("%w: plan references missing index %s", ErrIndex, plan.IndexUsed)
		}
		var err error
		candidates, err = indexCandidates(ix, plan.IndexPred)
		if err != nil {
			return nil, err
		}
	} else {
		candidates = e.store.OfClass(plan.Class, true)
	}
	var out []schema.OID
	for _, oid := range candidates {
		o, ok := e.store.Get(oid)
		if !ok {
			continue
		}
		if !o.Class().IsSubclassOf(plan.Class) {
			continue
		}
		if plan.Where == nil || plan.Where.eval(o) {
			out = append(out, oid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func indexCandidates(ix *Index, pred *Pred) ([]schema.OID, error) {
	switch pred.Op {
	case OpEq:
		return ix.Lookup(pred.datum), nil
	case OpLt:
		return ix.Range(nil, &pred.datum, true, false)
	case OpLe:
		return ix.Range(nil, &pred.datum, true, true)
	case OpGt:
		return ix.Range(&pred.datum, nil, false, true)
	case OpGe:
		return ix.Range(&pred.datum, nil, true, true)
	}
	return nil, fmt.Errorf("%w: operator %v cannot use an index", ErrIndex, pred.Op)
}
