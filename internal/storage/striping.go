package storage

// striping.go implements striped placement: a value's chunks are
// interleaved round-robin across N disks so the aggregate bandwidth
// available to one stream multiplies past what a single spindle can
// sustain — the classic continuous-media answer to "one hot disk
// saturates while the others idle".  A striped segment records a stripe
// map (home disk, byte offset and size per chunk) at placement time;
// OpenStream reserves a share of the stream rate on every participating
// disk and ReadChunkTime routes each chunk to its home disk for fault
// checks and positioning costs.

import (
	"fmt"
	"sort"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
)

// ErrStriped is wrapped by operations a striped segment does not
// support, such as Move.
var ErrStriped = fmt.Errorf("storage: segment is striped")

// StripePolicy configures the store's striped-read behavior.  The zero
// value changes nothing: placements stay single-device, every chunk read
// keeps its PR-3 cost model, and no scheduler exists.
type StripePolicy struct {
	// Width is the default stripe width for automatic placement
	// (core.PlaceMedia without a device pin); <= 1 keeps single-disk
	// auto placement.  Explicit PlaceStriped calls pass their own width.
	Width int
	// Seeks enables contended positioning costs: every demand chunk
	// read pays its home disk's seek, modeling heads that other
	// concurrent streams keep stealing.  Off, only the first read of a
	// stream pays positioning (the historical single-stream pricing).
	Seeks bool
	// Rounds enables the SCAN-EDF round scheduler: chunk requests
	// issued during one wavefront tick are batched per disk, ordered by
	// (deadline, track) and charged one amortized seek per run of
	// adjacent requests.
	Rounds bool
}

// Enabled reports whether the policy changes any behavior.
func (p StripePolicy) Enabled() bool { return p.Width > 1 || p.Seeks || p.Rounds }

// ReplicaPolicy configures hot-clip replication: values whose decayed
// popularity reaches PromoteAt get extra copies of their chunks on
// disjoint stripe groups, up to Copies copies total, and the round
// scheduler routes each read to the least-loaded copy — concurrent
// sessions of one clip fan out instead of queueing on one stripe
// group's bandwidth.  The zero value disables replication.
type ReplicaPolicy struct {
	Copies    int     // total copies of a hot value's chunks; <= 1 disables
	PromoteAt float64 // decayed popularity at which extra copies appear
}

// segReplica is one extra copy of a striped segment's chunks on a
// disjoint set of disks.  The chunk layout (chunkDev/chunkOff/
// chunkSize) is the segment's own — only the disks, allocation bases
// and home tracks differ.  Immutable once the copy is registered.
type segReplica struct {
	stripe    []string       // disk IDs, same round-robin order as the primary
	base      []int64        // allocation base offset on each disk
	perDev    []int64        // bytes per disk; aliases the segment's perDev
	chunkTrck []int          // chunk -> home track on this copy
	disks     []*device.Disk // resolved once, for the submit/failover hot paths
}

// SetStriping configures striping and I/O scheduling for streams opened
// afterwards; already-open streams keep the policy they were opened
// with.  The zero policy disables both.
func (st *Store) SetStriping(p StripePolicy) {
	st.mu.Lock()
	st.striping = p
	if (p.Seeks || p.Rounds) && st.io == nil {
		st.io = newIOSched(st.sink)
	}
	st.mu.Unlock()
}

// Striping reports the store's current stripe policy.
func (st *Store) Striping() StripePolicy {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.striping
}

// IOStats reports the round scheduler's counters; the zero value when no
// scheduling policy was ever installed.
func (st *Store) IOStats() IOStats {
	st.mu.Lock()
	io := st.io
	st.mu.Unlock()
	if io == nil {
		return IOStats{}
	}
	return io.Stats()
}

// Striped reports whether the segment is striped, and over which
// devices.
func (s *Segment) Striped() bool { return len(s.stripe) > 0 }

// Stripe returns the IDs of the disks holding the segment's stripes, in
// chunk round-robin order; nil for unstriped segments.
func (s *Segment) Stripe() []string {
	if s.stripe == nil {
		return nil
	}
	out := make([]string, len(s.stripe))
	copy(out, s.stripe)
	return out
}

// buildChunkMap computes the segment's chunk layout: home device index,
// byte offset within that device's share, and size for every chunk,
// assigning chunks round-robin over width devices.  It is called before
// the segment becomes visible (PlaceStriped) or under the store lock
// (lazy build for scheduled unstriped streams), so the map is immutable
// to readers.
func (s *Segment) buildChunkMap(width int) error {
	if width < 1 {
		width = 1
	}
	n := s.frames
	s.chunkDev = make([]int, n)
	s.chunkOff = make([]int64, n)
	s.chunkSize = make([]int64, n)
	off := make([]int64, width)
	for i := 0; i < n; i++ {
		el, err := s.value.ElementAt(avtime.ObjectTime(i))
		if err != nil {
			return fmt.Errorf("storage: chunk map for %v: %w", s.id, err)
		}
		d := i % width
		s.chunkDev[i] = d
		s.chunkOff[i] = off[d]
		s.chunkSize[i] = el.Size()
		off[d] += el.Size()
	}
	s.perDev = off
	return nil
}

// buildTrackMap caches each chunk's home track so the scheduler's
// submit path never recomputes geometry math (or takes the disk lock)
// per read.  disks holds the segment's home disks in chunkDev index
// order.  It is called before the segment becomes visible
// (PlaceStriped) or under the store lock (first scheduled open), and
// the cache is immutable once built — the same contract as the chunk
// map, which means disk geometry must be installed before the first
// scheduled stream opens (every placement path in the tree already
// does).
func (s *Segment) buildTrackMap(disks []*device.Disk) {
	if s.chunkTrck != nil || s.chunkDev == nil {
		return
	}
	tracks := make([]int, len(s.chunkDev))
	for i, k := range s.chunkDev {
		var base int64
		if s.base != nil {
			base = s.base[k]
		}
		tracks[i] = disks[k].TrackOf(base + s.chunkOff[i])
	}
	s.chunkTrck = tracks
}

// diskRank orders candidate disks for load-aware placement: most free
// bandwidth first, ties broken by free capacity, then by ID so the
// choice is deterministic for equal loads.
type diskRank struct {
	d      *device.Disk
	freeBW media.DataRate
	free   int64
}

// rankedDisks returns every disk passing the eligibility thresholds in
// placement-preference order.  minFree and minBW are lower bounds; pass
// zero to skip a criterion.
func (st *Store) rankedDisks(minFree int64, minBW media.DataRate) []diskRank {
	var out []diskRank
	for _, id := range st.devices.ListKind(device.KindDisk) {
		d, _ := st.devices.Get(id)
		disk := d.(*device.Disk)
		free := disk.Capacity() - disk.Used()
		bw := disk.FreeBandwidth()
		if free >= minFree && bw >= minBW {
			out = append(out, diskRank{d: disk, freeBW: bw, free: free})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].freeBW != out[j].freeBW {
			return out[i].freeBW > out[j].freeBW
		}
		if out[i].free != out[j].free {
			return out[i].free > out[j].free
		}
		return out[i].d.ID() < out[j].d.ID()
	})
	return out
}

// shareRate splits a stream rate over width devices: every share is
// rate/width with the remainder spread one byte/s at a time over the
// first shares, so the shares sum exactly to rate and release exactly
// what was reserved.
func shareRate(rate media.DataRate, width int) []media.DataRate {
	shares := make([]media.DataRate, width)
	base := rate / media.DataRate(width)
	rem := rate % media.DataRate(width)
	for i := range shares {
		shares[i] = base
		if media.DataRate(i) < rem {
			shares[i]++
		}
	}
	return shares
}

// PlaceStriped stores a value interleaved round-robin across width
// disks, chosen load-aware (most free bandwidth, then free capacity,
// then ID).  rate is the streaming rate the placement must later
// sustain: every chosen disk needs free bandwidth for a 1/width share of
// it.  Streams opened on the returned segment reserve that share on
// each disk, so the effective stream bandwidth multiplies by the stripe
// width.  width 1 degenerates to PlaceAuto.
func (st *Store) PlaceStriped(v media.Value, rate media.DataRate, width int) (*Segment, error) {
	if width < 1 {
		return nil, fmt.Errorf("storage: stripe width must be >= 1, got %d", width)
	}
	if width == 1 {
		return st.PlaceAuto(v, rate)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("storage: stripe rate must be positive, got %v", rate)
	}
	perBW := shareRate(rate, width)[0] // the largest share
	ranked := st.rankedDisks(0, perBW)
	if len(ranked) < width {
		return nil, fmt.Errorf("%w: %d disks with a %v bandwidth share free, %d needed",
			ErrNoPlacement, len(ranked), perBW, width)
	}
	// Stage the segment to compute per-disk shares before allocating.
	s := &Segment{value: v, disc: -1, size: v.Size(), frames: v.NumElements()}
	if err := s.buildChunkMap(width); err != nil {
		return nil, err
	}
	chosen := ranked[:width]
	s.stripe = make([]string, width)
	s.base = make([]int64, width)
	for k, c := range chosen {
		s.stripe[k] = c.d.ID()
		s.base[k] = c.d.Used()
		if err := c.d.Allocate(s.perDev[k]); err != nil {
			for u := 0; u < k; u++ {
				chosen[u].d.Free(s.perDev[u])
			}
			return nil, fmt.Errorf("storage: striping over %d disks: %w", width, err)
		}
	}
	s.devID = s.stripe[0]
	homes := make([]*device.Disk, width)
	for k, c := range chosen {
		homes[k] = c.d
	}
	s.buildTrackMap(homes)
	st.mu.Lock()
	s.id = st.nextID
	st.nextID++
	st.segments[s.id] = s
	st.mu.Unlock()
	return s, nil
}
