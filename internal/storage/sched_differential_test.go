package storage

// sched_differential_test.go is the differential harness behind PR 7's
// allocation-free IOSched rewrite: it drives the new flat scheduler
// (sched.go) and the retained old map+sort scheduler
// (sched_reference_test.go) through identical operation streams and
// fails on the first observable divergence — service order (svcEvent
// traces must be byte-identical), returned results, head positions,
// IOStats counters, and every storage.iosched.* sink event.
//
// Operation streams are decoded from plain byte slices so one decoder
// serves the fixed-seed property suite here, the seed corpus under
// testdata/fuzz/FuzzSCANEDFOrder, and the fuzz target in
// sched_fuzz_test.go.  Every byte slice is a valid op stream: opcodes
// and operands are taken modulo their ranges, and a stream that runs
// out of bytes mid-operation reads zeros for the rest.
//
// Byte format (all operand bytes are consumed unconditionally so
// corpus encoders can be written without simulating scheduler state):
//
//	op = next byte % 10
//	0,1,2  submit      + 8 request bytes (into the current round)
//	3      tick        (advance the current round)
//	4,5    read        + sid, chunk, flags, 8 next-request bytes
//	6      drop        + sid
//	7      straggler   + 8 request bytes (into current round - 2)
//	8      demand note + flags (bit0: seeked)
//	9      flush       (flushBefore the current round)
//
//	request bytes: sid, disk, chunk, track, size, rate, deadline, jitter
//	read flags: bit0 fault, bit1 has follow-on request, bit2 demand seek
//
// A "read" mirrors storage.go's ReadChunkTimeAt protocol exactly: flush
// rounds below the current one, consume the stream's slot (eagerly
// queueing the follow-on under the same lock on the new side), undo the
// consumption if the fault flag is set, and on a miss fall back to a
// demand read that then submits the follow-on.

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
	"avdb/internal/obs"
)

var updateCorpus = flag.Bool("update-corpus", false,
	"rewrite the seed corpus under testdata/fuzz/FuzzSCANEDFOrder")

// recSink records Count and Observe events in order; the differential
// harness compares the two schedulers' recordings byte for byte.
type recSink struct {
	obs.NopSink
	events []recEvent
}

type recEvent struct {
	name    string
	value   int64
	observe bool
}

func (s *recSink) Count(name string, delta int64) {
	s.events = append(s.events, recEvent{name: name, value: delta})
}

func (s *recSink) Observe(name string, value int64) {
	s.events = append(s.events, recEvent{name: name, value: value, observe: true})
}

const (
	diffSids  = 8 // streams the op decoder can address
	diffDisks = 4 // disks the op decoder can address
	diffTick  = 33 * avtime.Millisecond
)

// byteCursor walks an op stream; reads past the end return zero so any
// prefix of a valid stream is a valid stream.
type byteCursor struct {
	data []byte
	i    int
}

func (c *byteCursor) done() bool { return c.i >= len(c.data) }

func (c *byteCursor) byte() byte {
	if c.i >= len(c.data) {
		return 0
	}
	b := c.data[c.i]
	c.i++
	return b
}

// diffHarness holds the two schedulers under comparison plus the
// shared decode state.
type diffHarness struct {
	t        testing.TB
	disks    []*device.Disk
	neu      *IOSched
	ref      *refSched
	slots    [diffSids]ioSlot
	newTrace []svcEvent
	refTrace []svcEvent
	newSink  *recSink
	refSink  *recSink
	cur      int64 // current round
}

func newDiffHarness(t testing.TB) *diffHarness {
	h := &diffHarness{t: t, newSink: &recSink{}, refSink: &recSink{}, cur: 1}
	for i := 0; i < diffDisks; i++ {
		d := device.NewDisk(fmt.Sprintf("disk%d", i), 4_000_000, 8*media.MBPerSecond, 10*avtime.Millisecond)
		if i%2 == 0 {
			// Half the disks get track geometry, half stay on the flat
			// per-op seek model, so both SeekBetween branches are compared.
			if err := d.SetGeometry(16, avtime.Millisecond); err != nil {
				t.Fatalf("SetGeometry: %v", err)
			}
		}
		h.disks = append(h.disks, d)
	}
	h.neu = newIOSched(h.newSink)
	h.ref = newRefSched(h.refSink)
	h.neu.svcTrace = &h.newTrace
	h.ref.svcTrace = &h.refTrace
	return h
}

// reqFrom decodes one request relative to the current round.  The
// deadline range is deliberately tiny (four quantized values around the
// next tick) so cross-stream deadline ties — the tiebreak cases the
// SCAN-EDF key exists for — occur constantly.
func (h *diffHarness) reqFrom(c *byteCursor) ioReq {
	sid := int64(c.byte() % diffSids)
	disk := h.disks[int(c.byte())%diffDisks]
	chunk := int(c.byte() % 64)
	track := int(c.byte() % 24)
	bytes := int64(c.byte()%7+1) * 300
	var rate media.DataRate
	if rb := c.byte(); rb%4 != 0 {
		rate = media.DataRate(rb%8+1) * media.MBPerSecond / 8
	}
	deadline := avtime.WorldTime(h.cur+1)*diffTick + avtime.WorldTime(c.byte()%4)*avtime.Millisecond
	now := avtime.WorldTime(h.cur)*diffTick + avtime.WorldTime(c.byte()%100)*avtime.Microsecond
	return ioReq{
		sid: sid, chunk: chunk, bytes: bytes, disk: disk, track: track,
		rate: rate, now: now, deadline: deadline, slot: &h.slots[sid],
	}
}

// refReq strips the slot pointer: the reference delivers through its
// results map, not the slot.
func refReq(q ioReq) ioReq {
	q.slot = nil
	return q
}

func (h *diffHarness) opSubmit(c *byteCursor, round int64) {
	q := h.reqFrom(c)
	h.neu.submit(round, q)
	h.ref.submit(round, refReq(q))
}

func (h *diffHarness) opRead(c *byteCursor) {
	sid := int64(c.byte() % diffSids)
	chunk := int(c.byte() % 64)
	flags := c.byte()
	fault := flags&1 != 0
	var next *ioReq
	q := h.reqFrom(c) // always consume the operand bytes
	if flags&2 != 0 {
		next = &q
	}
	h.neu.flushBefore(h.cur)
	h.ref.flushBefore(h.cur)

	resN, okN := h.neu.consumeNext(&h.slots[sid], chunk, h.cur, next)
	if okN && fault {
		h.neu.unconsume(&h.slots[sid], resN, h.cur, next)
	}

	// The reference side replays the pre-PR-7 read protocol: peek, fault
	// check, then take + submit of the follow-on only on success.
	resR, okR := h.ref.peek(sid, chunk)
	if okR && !fault {
		h.ref.take(sid, chunk)
		if next != nil {
			h.ref.submit(h.cur, refReq(*next))
		}
	}
	if !okR {
		// The old take-on-miss discarded a stale mismatched result; the
		// new consumeNext does the same.
		h.ref.take(sid, chunk)
	}

	// The reference scheduler predates replica routing and never records
	// which disk serviced a request; the comparison covers the fields it
	// models.
	cmpN := resN
	cmpN.disk = nil
	if okN != okR || cmpN != resR {
		h.t.Fatalf("read(sid=%d chunk=%d fault=%v) diverged: new (%+v, %v) vs ref (%+v, %v)",
			sid, chunk, fault, resN, okN, resR, okR)
	}
	if !okN && !fault {
		// Miss: the read falls back to a demand read, which notes itself
		// and only then queues the follow-on.
		seeked := flags&4 != 0
		h.neu.noteDemand(seeked)
		h.ref.noteDemand(seeked)
		if next != nil {
			h.neu.submit(h.cur, *next)
			h.ref.submit(h.cur, refReq(*next))
		}
	}
}

func (h *diffHarness) opDrop(c *byteCursor) {
	sid := int64(c.byte() % diffSids)
	h.neu.drop(&h.slots[sid])
	h.ref.drop(sid)
}

func (h *diffHarness) opDemand(c *byteCursor) {
	seeked := c.byte()&1 != 0
	h.neu.noteDemand(seeked)
	h.ref.noteDemand(seeked)
}

// checkStep compares everything cheap after every operation so a
// divergence is pinned to the op that caused it.
func (h *diffHarness) checkStep(op int, n int) {
	h.t.Helper()
	if sn, sr := h.neu.Stats(), h.ref.Stats(); sn != sr {
		h.t.Fatalf("op %d (#%d): stats diverged:\nnew %+v\nref %+v", op, n, sn, sr)
	}
	if fn, fr := h.neu.flushed.Load(), h.ref.flushed; fn != fr {
		h.t.Fatalf("op %d (#%d): flushed watermark diverged: new %d ref %d", op, n, fn, fr)
	}
	h.checkPendingSorted()
}

// checkPendingSorted asserts the flat scheduler's structural invariants:
// rounds ascending, batches in device-ID order, and every batch strictly
// ordered under the SCAN-EDF key (strict because sid is unique per
// batch, so no two members may compare equal).
func (h *diffHarness) checkPendingSorted() {
	h.t.Helper()
	h.neu.mu.Lock()
	defer h.neu.mu.Unlock()
	for ri, r := range h.neu.pending {
		if ri > 0 && h.neu.pending[ri-1].seq >= r.seq {
			h.t.Fatalf("pending rounds out of order: %d then %d", h.neu.pending[ri-1].seq, r.seq)
		}
		for bi := range r.batches {
			b := &r.batches[bi]
			if bi > 0 && r.batches[bi-1].devID >= b.devID {
				h.t.Fatalf("round %d batches out of device order: %q then %q",
					r.seq, r.batches[bi-1].devID, b.devID)
			}
			for j := 1; j < len(b.reqs); j++ {
				a, c := &b.reqs[j-1], &b.reqs[j]
				if !reqBefore(a, c) || reqBefore(c, a) {
					h.t.Fatalf("round %d disk %s: batch not strictly SCAN-EDF ordered at %d: %+v then %+v",
						r.seq, b.devID, j, *a, *c)
				}
			}
		}
	}
}

// finish drains both schedulers and compares every remaining observable:
// full service traces, sink recordings, head positions, and per-stream
// result state.
func (h *diffHarness) finish() {
	h.t.Helper()
	h.cur += 3
	h.neu.flushBefore(h.cur)
	h.ref.flushBefore(h.cur)

	if len(h.newTrace) != len(h.refTrace) {
		h.t.Fatalf("service traces diverged in length: new %d ref %d", len(h.newTrace), len(h.refTrace))
	}
	for i := range h.newTrace {
		if h.newTrace[i] != h.refTrace[i] {
			h.t.Fatalf("service traces diverged at event %d:\nnew %+v\nref %+v",
				i, h.newTrace[i], h.refTrace[i])
		}
	}
	if len(h.newSink.events) != len(h.refSink.events) {
		h.t.Fatalf("sink recordings diverged in length: new %d ref %d",
			len(h.newSink.events), len(h.refSink.events))
	}
	for i := range h.newSink.events {
		if h.newSink.events[i] != h.refSink.events[i] {
			h.t.Fatalf("sink recordings diverged at event %d:\nnew %+v\nref %+v",
				i, h.newSink.events[i], h.refSink.events[i])
		}
	}
	for _, d := range h.disks {
		if hn, hr := h.neu.heads[d], h.ref.heads[d.ID()]; hn != hr {
			h.t.Fatalf("disk %s head diverged: new %d ref %d", d.ID(), hn, hr)
		}
	}
	for sid := int64(0); sid < diffSids; sid++ {
		slot := &h.slots[sid]
		res, ok := h.ref.results[sid]
		if slot.full != ok {
			h.t.Fatalf("stream %d result presence diverged: new %v ref %v", sid, slot.full, ok)
		}
		if ok && (slot.chunk != res.chunk || slot.cost != res.cost) {
			h.t.Fatalf("stream %d result diverged: new {%d %v} ref %+v", sid, slot.chunk, slot.cost, res)
		}
	}
	if sn, sr := h.neu.Stats(), h.ref.Stats(); sn != sr {
		h.t.Fatalf("final stats diverged:\nnew %+v\nref %+v", sn, sr)
	}
}

// runDifferential decodes data as an op stream, drives both schedulers,
// and fails t on any divergence.  It is the single entry point shared by
// the property suite, the seed corpus test, and FuzzSCANEDFOrder.
func runDifferential(t testing.TB, data []byte) {
	h := newDiffHarness(t)
	c := &byteCursor{data: data}
	for n := 0; !c.done() && n < 4096; n++ {
		op := int(c.byte() % 10)
		switch op {
		case 0, 1, 2:
			h.opSubmit(c, h.cur)
		case 3:
			h.cur++
		case 4, 5:
			h.opRead(c)
		case 6:
			h.opDrop(c)
		case 7:
			h.opSubmit(c, h.cur-2)
		case 8:
			h.opDemand(c)
		case 9:
			h.neu.flushBefore(h.cur)
			h.ref.flushBefore(h.cur)
		}
		h.checkStep(op, n)
	}
	h.finish()
}

// TestDifferentialRandomOpStreams is the fixed-seed property suite:
// arbitrary request streams — random deadlines, tracks, disks, sizes,
// rates, mid-round cancellations, stragglers and demand reads — must
// drive both schedulers identically.
func TestDifferentialRandomOpStreams(t *testing.T) {
	for seed := int64(0); seed < 64; seed++ {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			data := make([]byte, 512+rng.Intn(3072))
			rng.Read(data)
			runDifferential(t, data)
		})
	}
}

// TestDifferentialExperimentTraces replays the experiment-shaped op
// streams that also seed the fuzz corpus: steady striped playback,
// multi-tenant key-collision pressure, and overload with cancellations.
func TestDifferentialExperimentTraces(t *testing.T) {
	for name, data := range corpusSeeds() {
		name, data := name, data
		t.Run(name, func(t *testing.T) { runDifferential(t, data) })
	}
}

// TestSubmitOrderIndependence pins the determinism argument: the
// SCAN-EDF key is total, so shuffling the submission order of a round
// must not change the service trace, head walks, or any counter.
func TestSubmitOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reqs := make([]byte, 0, 9*24)
	for i := 0; i < 24; i++ {
		reqs = append(reqs, 0) // submit op
		operands := make([]byte, 8)
		rng.Read(operands)
		reqs = append(reqs, operands...)
	}
	run := func(order []int) ([]svcEvent, IOStats) {
		h := newDiffHarness(t)
		c := &byteCursor{}
		for _, i := range order {
			c.data = reqs[9*i+1 : 9*(i+1)]
			c.i = 0
			q := h.reqFrom(c)
			// One submission per stream per round, like the executor's
			// tick barrier guarantees: sid collisions would make
			// same-round replacement — deliberately last-writer-wins —
			// look like an order dependence.
			q.sid = int64(i)
			q.slot = nil
			h.neu.submit(h.cur, q)
		}
		h.cur += 2
		h.neu.flushBefore(h.cur)
		return h.newTrace, h.neu.Stats()
	}
	base := make([]int, 24)
	for i := range base {
		base[i] = i
	}
	wantTrace, wantStats := run(base)
	for trial := 0; trial < 16; trial++ {
		order := append([]int(nil), base...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		trace, stats := run(order)
		if stats != wantStats {
			t.Fatalf("trial %d: stats depend on submission order:\ngot  %+v\nwant %+v", trial, stats, wantStats)
		}
		if len(trace) != len(wantTrace) {
			t.Fatalf("trial %d: trace length depends on submission order: %d vs %d",
				trial, len(trace), len(wantTrace))
		}
		for i := range trace {
			if trace[i] != wantTrace[i] {
				t.Fatalf("trial %d: service order depends on submission order at event %d:\ngot  %+v\nwant %+v",
					trial, i, trace[i], wantTrace[i])
			}
		}
	}
}

// TestSCANEDFKeyTotalOrder pins the fix for the historical sort.Slice
// instability hazard: within one batch no two distinct requests may
// compare equal under the SCAN-EDF key.  Requests from the same stream
// cannot coexist (insert replaces by sid), and for distinct streams the
// sid tiebreak forces strictness even when deadline and track collide.
func TestSCANEDFKeyTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := newDiffHarness(t)
	for trial := 0; trial < 256; trial++ {
		a, b := h.reqFrom(&byteCursor{data: randBytes(rng, 8)}), h.reqFrom(&byteCursor{data: randBytes(rng, 8)})
		if trial%4 == 0 {
			// Force the hard case: full key-prefix collision.
			b.deadline, b.track = a.deadline, a.track
		}
		lt, gt := reqBefore(&a, &b), reqBefore(&b, &a)
		if lt && gt {
			t.Fatalf("reqBefore is not antisymmetric for %+v vs %+v", a, b)
		}
		if !lt && !gt && a.sid != b.sid {
			t.Fatalf("distinct streams compare equal under the SCAN-EDF key: %+v vs %+v", a, b)
		}
	}
	// Same-stream duplicates never coexist: insertion replaces.
	var b diskBatch
	q := h.reqFrom(&byteCursor{data: []byte{1, 0, 3, 4, 2, 5, 1, 0}})
	b.insert(q)
	q.chunk++
	b.insert(q)
	if len(b.reqs) != 1 || b.reqs[0].chunk != q.chunk {
		t.Fatalf("same-stream reinsert did not replace: %+v", b.reqs)
	}
}

func randBytes(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	rng.Read(out)
	return out
}

// --- seed corpus -----------------------------------------------------

// corpusSeeds returns the experiment-shaped op streams committed under
// testdata/fuzz/FuzzSCANEDFOrder.  Regenerate the files with
//
//	go test -run TestFuzzCorpusSeeds -update-corpus ./internal/storage
//
// after changing an encoder.
func corpusSeeds() map[string][]byte {
	return map[string][]byte{
		"stripe_steady":    corpusStripeSteady(),
		"tenancy_ties":     corpusTenancyTies(),
		"overload_cancels": corpusOverloadCancels(),
	}
}

// emitRead appends one read op with a follow-on request.
func emitRead(data []byte, sid, chunk byte, flags byte, next [8]byte) []byte {
	data = append(data, 4, sid, chunk, flags)
	return append(data, next[:]...)
}

// corpusStripeSteady mirrors the stripe experiment: eight streams in
// steady sequential playback over four disks, each read prefetching the
// next chunk on its round-robin home disk.
func corpusStripeSteady() []byte {
	var data []byte
	for tick := byte(0); tick < 12; tick++ {
		for sid := byte(0); sid < 8; sid++ {
			next := [8]byte{sid, (tick + 1) % diffDisks, tick + 1, (tick + 1) * 2 % 24, 3, 5, 1, sid}
			data = emitRead(data, sid, tick, 2, next) // flags: has next
		}
		data = append(data, 3) // tick
	}
	return data
}

// corpusTenancyTies mirrors the tenancy experiment: four sessions over
// one shared clip — same chunks, same tracks, same deadlines — so every
// round is decided purely by the sid tiebreak.
func corpusTenancyTies() []byte {
	var data []byte
	for tick := byte(0); tick < 10; tick++ {
		for sid := byte(0); sid < 4; sid++ {
			next := [8]byte{sid, tick % diffDisks, tick + 1, tick % 24, 4, 6, 0, 0}
			data = emitRead(data, sid, tick, 2, next)
		}
		data = append(data, 3)
	}
	return data
}

// corpusOverloadCancels mirrors the overload experiment: tight
// deadlines, oversized requests, mid-round cancellations (drops), plus
// stragglers and demand reads between rounds.
func corpusOverloadCancels() []byte {
	var data []byte
	for tick := byte(0); tick < 10; tick++ {
		for sid := byte(0); sid < 8; sid++ {
			// submit with heavyweight operands; deadline byte 0 keeps
			// everything due immediately.
			data = append(data, 0, sid, sid%diffDisks, tick, sid*3%24, 6, 7, 0, 99)
		}
		data = append(data, 6, tick%8)            // drop one stream's result
		data = append(data, 7, 2, 1, 9, 3, 6, 3, 1, 0) // straggler submit
		data = append(data, 8, tick)              // demand note
		data = append(data, 3)                    // tick
		data = append(data, 9)                    // flush
	}
	return data
}

// TestFuzzCorpusSeeds verifies the committed corpus files stay in sync
// with the encoders (and rewrites them under -update-corpus).  The files
// also run automatically as FuzzSCANEDFOrder seeds during plain go test.
func TestFuzzCorpusSeeds(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzSCANEDFOrder")
	for name, data := range corpusSeeds() {
		path := filepath.Join(dir, name)
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if *updateCorpus {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("corpus seed %s missing (run with -update-corpus): %v", name, err)
		}
		if string(got) != want {
			t.Errorf("corpus seed %s out of sync with its encoder (run with -update-corpus)", name)
		}
	}
}
