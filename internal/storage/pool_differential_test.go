package storage

// pool_differential_test.go holds the shared buffer pool to the retired
// per-stream LRU cache.  The oracle below is the pre-pool chunkCache
// (container/list LRU + lookahead fill) reproduced verbatim; the pool
// must be behavior-identical to it for single-session streams on the
// demand path (round < 0, where ops apply immediately) for ANY access
// pattern, and on the staged path (round >= 0) for sequential playback,
// the workload rounds model.  A separate shuffle test asserts the
// staged path's committed residency is independent of the order streams
// submit their reads within a round.

import (
	"container/list"
	"math/rand"
	"testing"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
)

// lruOracle is the retired per-stream chunk cache: front of order is
// most recently used, insert evicts from the back past Capacity, and a
// miss fills idx..idx+lookahead with residency checked after each
// insert (so a fill can re-stage a chunk it just evicted).
type lruOracle struct {
	policy   CachePolicy
	order    *list.List
	resident map[int]*list.Element
	stats    CacheStats
}

func newLRUOracle(p CachePolicy) *lruOracle {
	return &lruOracle{
		policy:   p,
		order:    list.New(),
		resident: make(map[int]*list.Element, p.Capacity),
	}
}

func (c *lruOracle) insert(idx int) int {
	if el, ok := c.resident[idx]; ok {
		c.order.MoveToFront(el)
		return 0
	}
	c.resident[idx] = c.order.PushFront(idx)
	evicted := 0
	for c.order.Len() > c.policy.Capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.resident, back.Value.(int))
		evicted++
	}
	return evicted
}

// read performs one chunk read against the oracle, mirroring the
// retired ReadChunkTime cache logic, and reports whether it hit.
func (c *lruOracle) read(idx, limit int) bool {
	if el, ok := c.resident[idx]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	evicted := c.insert(idx)
	staged := 0
	for k := idx + 1; k <= idx+c.policy.Lookahead && k <= limit; k++ {
		if _, ok := c.resident[k]; !ok {
			evicted += c.insert(k)
			staged++
		}
	}
	c.stats.Prefetched += int64(staged)
	c.stats.Evicted += int64(evicted)
	return false
}

// residency returns the oracle's resident chunks in LRU-chain order,
// most recently used first.
func (c *lruOracle) residency() []int {
	out := make([]int, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(int))
	}
	return out
}

// poolResidency walks the pool's intrusive LRU chain, most recently
// used first.
func poolResidency(p *bufferPool) []poolKey {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]poolKey, 0, len(p.resident))
	for i := p.head; i != poolNil; i = p.entries[i].next {
		out = append(out, p.entries[i].key)
	}
	return out
}

// diffRig opens one pooled stream over a fresh store plus a matching
// oracle.
func diffRig(t *testing.T, p CachePolicy, frames int) (*Stream, *lruOracle, int) {
	t.Helper()
	s := cachedStream(t, p, frames)
	return s, newLRUOracle(p), frames - 1
}

// runDemandDiff replays idxs on the demand path (round -1) against both
// implementations, failing on the first divergent read.
func runDemandDiff(t *testing.T, s *Stream, oracle *lruOracle, limit int, idxs []int) {
	t.Helper()
	for n, idx := range idxs {
		dt, err := s.ReadChunkTime(idx, 1200)
		if err != nil {
			t.Fatal(err)
		}
		hit := dt == 0
		if want := oracle.read(idx, limit); hit != want {
			t.Fatalf("read %d (chunk %d): pool hit=%v, oracle hit=%v", n, idx, hit, want)
		}
	}
	if got, want := s.CacheStats(), oracle.stats; got != want {
		t.Fatalf("stats diverged: pool %+v, oracle %+v", got, want)
	}
	got := poolResidency(s.pool)
	want := oracle.residency()
	if len(got) != len(want) {
		t.Fatalf("residency size: pool %d, oracle %d", len(got), len(want))
	}
	for i := range got {
		if got[i].chunk != want[i] || got[i].seg != s.seg.id {
			t.Fatalf("residency[%d]: pool %+v, oracle chunk %d", i, got[i], want[i])
		}
	}
}

func TestPoolMatchesLRUOracleSequential(t *testing.T) {
	s, oracle, limit := diffRig(t, CachePolicy{Capacity: 8, Lookahead: 4}, 64)
	idxs := make([]int, 64)
	for i := range idxs {
		idxs[i] = i
	}
	runDemandDiff(t, s, oracle, limit, idxs)
}

func TestPoolMatchesLRUOracleRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		policy := CachePolicy{Capacity: 2 + int(seed%7), Lookahead: int(seed % 5)}
		s, oracle, limit := diffRig(t, policy, 48)
		rng := rand.New(rand.NewSource(seed))
		idxs := make([]int, 300)
		for i := range idxs {
			idxs[i] = rng.Intn(48)
		}
		runDemandDiff(t, s, oracle, limit, idxs)
		s.Close()
	}
}

// TestPoolStagedSequentialMatchesOracle replays a sequential playback on
// the staged path, one read per round: every earlier round's ops commit
// before the next read probes residency, so the hit pattern and
// residency must equal the immediate-mode oracle's.
func TestPoolStagedSequentialMatchesOracle(t *testing.T) {
	policy := CachePolicy{Capacity: 8, Lookahead: 4}
	s, oracle, limit := diffRig(t, policy, 64)
	for i := 0; i < 64; i++ {
		dt, err := s.ReadChunkTimeAt(i, 1200, int64(i), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		hit := dt == 0
		if want := oracle.read(i, limit); hit != want {
			t.Fatalf("chunk %d: pool hit=%v, oracle hit=%v", i, hit, want)
		}
	}
	// The last round's staged ops are still pending; commit them so the
	// final residency snapshot is complete.
	s.pool.mu.Lock()
	s.pool.commitLocked(64)
	s.pool.mu.Unlock()
	cs := s.CacheStats()
	if cs.Hits != oracle.stats.Hits || cs.Misses != oracle.stats.Misses || cs.Prefetched != oracle.stats.Prefetched {
		t.Fatalf("stats diverged: pool %+v, oracle %+v", cs, oracle.stats)
	}
	// Staged-mode evictions are accounted on the store aggregate.
	if got, want := s.pool.stats().Evicted, oracle.stats.Evicted; got != want {
		t.Fatalf("evictions: pool %d, oracle %d", got, want)
	}
	got := poolResidency(s.pool)
	want := oracle.residency()
	if len(got) != len(want) {
		t.Fatalf("residency size: pool %d, oracle %d", len(got), len(want))
	}
	for i := range got {
		if got[i].chunk != want[i] {
			t.Fatalf("residency[%d]: pool chunk %d, oracle chunk %d", i, got[i].chunk, want[i])
		}
	}
}

func FuzzPoolVsLRU(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 4, 5})
	f.Add(int64(2), []byte{9, 9, 0, 17, 3, 3, 8})
	f.Add(int64(3), []byte{30, 0, 30, 1, 29, 2})
	f.Fuzz(func(t *testing.T, seed int64, pattern []byte) {
		if len(pattern) == 0 || len(pattern) > 400 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		policy := CachePolicy{Capacity: 1 + rng.Intn(12), Lookahead: rng.Intn(6)}
		const frames = 32
		s, oracle, limit := diffRig(t, policy, frames)
		defer s.Close()
		idxs := make([]int, len(pattern))
		for i, b := range pattern {
			idxs[i] = int(b) % frames
		}
		runDemandDiff(t, s, oracle, limit, idxs)
	})
}

// TestPoolCommitOrderIndependence drives several streams of one clip
// through staged rounds, permuting the order streams submit within each
// round across runs: the committed residency chain, the pool aggregate,
// and every per-stream counter must not move.
func TestPoolCommitOrderIndependence(t *testing.T) {
	const (
		streams = 4
		rounds  = 40
		frames  = 48
	)
	run := func(perm int) ([]poolKey, PoolStats, []CacheStats) {
		_, st := testRig(t)
		st.SetCachePolicy(CachePolicy{Capacity: 4, Lookahead: 3})
		seg, err := st.Place(clip(t, frames), "disk0")
		if err != nil {
			t.Fatal(err)
		}
		ss := make([]*Stream, streams)
		for i := range ss {
			s, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			ss[i] = s
		}
		rng := rand.New(rand.NewSource(int64(perm) + 77))
		order := make([]int, streams)
		for i := range order {
			order[i] = i
		}
		for r := 0; r < rounds; r++ {
			rng.Shuffle(streams, func(i, j int) { order[i], order[j] = order[j], order[i] })
			for _, i := range order {
				// Stream i walks the clip with stride i+1: overlapping but
				// distinct access sequences, fixed per stream across runs.
				idx := (r * (i + 1)) % frames
				if _, err := ss[i].ReadChunkTimeAt(idx, 1200, int64(r), 0, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
		pool := ss[0].pool
		pool.mu.Lock()
		pool.commitLocked(rounds)
		pool.mu.Unlock()
		perStream := make([]CacheStats, streams)
		for i, s := range ss {
			perStream[i] = s.CacheStats()
		}
		return poolResidency(pool), pool.stats(), perStream
	}
	refRes, refStats, refStreams := run(0)
	for perm := 1; perm < 6; perm++ {
		res, stats, streamsCS := run(perm)
		if len(res) != len(refRes) {
			t.Fatalf("perm %d: residency size %d, want %d", perm, len(res), len(refRes))
		}
		for i := range res {
			if res[i] != refRes[i] {
				t.Fatalf("perm %d: residency[%d] = %+v, want %+v", perm, i, res[i], refRes[i])
			}
		}
		if stats != refStats {
			t.Fatalf("perm %d: pool stats %+v, want %+v", perm, stats, refStats)
		}
		for i := range streamsCS {
			if streamsCS[i] != refStreams[i] {
				t.Fatalf("perm %d stream %d: stats %+v, want %+v", perm, i, streamsCS[i], refStreams[i])
			}
		}
	}
}

// TestPoolSharedAcrossStreams is the point of the whole exercise: a
// second session of the same clip rides the first one's staged chunks.
func TestPoolSharedAcrossStreams(t *testing.T) {
	_, st := testRig(t)
	st.SetCachePolicy(CachePolicy{Capacity: 8, Lookahead: 4})
	seg, err := st.Place(clip(t, 30), "disk0")
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 5; i++ {
		if _, err := a.ReadChunkTime(i, 1200); err != nil {
			t.Fatal(err)
		}
	}
	// a's first miss staged 0..4; b reads them at zero device cost.
	for i := 0; i < 5; i++ {
		dt, err := b.ReadChunkTime(i, 1200)
		if err != nil {
			t.Fatal(err)
		}
		if dt != 0 {
			t.Fatalf("chunk %d: cross-stream read cost %v, want pool hit", i, dt)
		}
	}
	bs := b.CacheStats()
	if bs.Hits != 5 || bs.Shared != 5 {
		t.Fatalf("b stats = %+v, want 5 hits all shared", bs)
	}
	a.Close()
	// The aggregate survives a's close.
	ps := st.PoolStats()
	if ps.Hits != bs.Hits+a.CacheStats().Hits || ps.Misses == 0 {
		t.Fatalf("aggregate lost history after close: %+v", ps)
	}
	if ps.Streams != 1 {
		t.Fatalf("streams = %d after close, want 1", ps.Streams)
	}
}

// TestPoolCapacityScalesWithStreams holds the pool to its contract:
// Capacity chunks per attached stream, shrinking on detach.
func TestPoolCapacityScalesWithStreams(t *testing.T) {
	_, st := testRig(t)
	st.SetCachePolicy(CachePolicy{Capacity: 3, Lookahead: 0})
	seg, err := st.Place(clip(t, 30), "disk0")
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.PoolStats().Capacity; got != 3 {
		t.Fatalf("capacity with 1 stream = %d, want 3", got)
	}
	b, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := st.PoolStats().Capacity; got != 6 {
		t.Fatalf("capacity with 2 streams = %d, want 6", got)
	}
	for i := 0; i < 6; i++ {
		if _, err := a.ReadChunkTime(i, 1200); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.PoolStats().Resident; got != 6 {
		t.Fatalf("resident = %d, want 6", got)
	}
	a.Close()
	ps := st.PoolStats()
	if ps.Capacity != 3 || ps.Resident != 3 {
		t.Fatalf("after detach: capacity %d resident %d, want 3/3", ps.Capacity, ps.Resident)
	}
	// The survivors are the three most recently used chunks.
	res := poolResidency(b.pool)
	for i, k := range res {
		if want := 5 - i; k.chunk != want {
			t.Fatalf("residency[%d] = chunk %d, want %d", i, k.chunk, want)
		}
	}
}

// TestPoolHitAllocs pins the staged-path warm hit to zero allocations:
// commit watermark check, one map probe, one staged touch in a retained
// buffer.
func TestPoolHitAllocs(t *testing.T) {
	_, st := testRig(t)
	st.SetCachePolicy(CachePolicy{Capacity: 8, Lookahead: 0})
	seg, err := st.Place(clip(t, 8), "disk0")
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	round := int64(0)
	for i := 0; i < 8; i++ {
		if _, err := s.ReadChunkTimeAt(i, 1200, round, 0, 0); err != nil {
			t.Fatal(err)
		}
		round++
	}
	// Warm the retained buffers through a few commit cycles.
	for i := 0; i < 16; i++ {
		if _, err := s.ReadChunkTimeAt(i%8, 1200, round, 0, 0); err != nil {
			t.Fatal(err)
		}
		round++
	}
	idx := 0
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.ReadChunkTimeAt(idx%8, 1200, round, 0, 0); err != nil {
			t.Fatal(err)
		}
		idx++
		round++
	})
	if allocs != 0 {
		t.Errorf("staged pool-hit read path allocates %.1f times per read, want 0", allocs)
	}
	if cs := s.CacheStats(); cs.Hits == 0 || cs.Misses != 8 {
		t.Fatalf("fixture mis-staged: %+v", cs)
	}
}

func BenchmarkPoolHit(b *testing.B) {
	dm := device.NewManager()
	if err := dm.Register(device.NewDisk("disk0", 1_000_000, 10*media.MBPerSecond, 10*avtime.Millisecond)); err != nil {
		b.Fatal(err)
	}
	st := NewStore(dm)
	st.SetCachePolicy(CachePolicy{Capacity: 8, Lookahead: 0})
	v := media.NewVideoValue(media.TypeRawVideo30, 40, 30, 8)
	for i := 0; i < 8; i++ {
		if err := v.AppendFrame(media.NewFrame(40, 30, 8)); err != nil {
			b.Fatal(err)
		}
	}
	seg, err := st.Place(v, "disk0")
	if err != nil {
		b.Fatal(err)
	}
	s, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	round := int64(0)
	for i := 0; i < 24; i++ {
		if _, err := s.ReadChunkTimeAt(i%8, 1200, round, 0, 0); err != nil {
			b.Fatal(err)
		}
		round++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ReadChunkTimeAt(i%8, 1200, round, 0, 0); err != nil {
			b.Fatal(err)
		}
		round++
	}
}
