package storage

// FuzzSCANEDFOrder fuzzes the differential harness: any byte stream
// decodes to a valid scheduler op stream (see
// sched_differential_test.go for the format), and the flat scheduler
// must stay byte-identical to the retained map+sort reference on every
// observable — service order, seek charges, results, head positions,
// IOStats and sink events.  The committed seeds under
// testdata/fuzz/FuzzSCANEDFOrder are experiment-shaped traces (steady
// striped playback, tenancy deadline ties, overload with cancellations)
// and run as part of plain go test; CI additionally runs a short
// -fuzz smoke.  Run it locally when touching sched.go:
//
//	go test -fuzz=FuzzSCANEDFOrder -fuzztime 60s ./internal/storage

import "testing"

func FuzzSCANEDFOrder(f *testing.F) {
	for _, data := range corpusSeeds() {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("op stream capped; longer inputs add no coverage")
		}
		runDifferential(t, data)
	})
}
