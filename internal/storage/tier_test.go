package storage

// tier_test.go exercises the storage hierarchy: popularity-driven
// promotion from the jukebox tier, hot-value replication, demotion
// sweeps, and the fail-soft behavior under platter jams and disk
// outages during a copy.

import (
	"errors"
	"testing"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
	"avdb/internal/obs"
)

// tierRig builds a jukebox-plus-disks hierarchy: jb0 with 3 discs and a
// 5s swap, and n stripe-ready disks named adisk, bdisk, ...
func tierRig(t *testing.T, n int) (*device.Manager, *Store) {
	t.Helper()
	dm := device.NewManager()
	if err := dm.Register(device.NewJukebox("jb0", 3, 10_000_000, 1*media.MBPerSecond, 5*avtime.Second)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		d := device.NewDisk(diskID(i), 4_000_000, 8*media.MBPerSecond, 10*avtime.Millisecond)
		if err := d.SetGeometry(16, avtime.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := dm.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	return dm, NewStore(dm)
}

func diskUsed(t *testing.T, dm *device.Manager, id string) int64 {
	t.Helper()
	dev, ok := dm.Get(id)
	if !ok {
		t.Fatalf("no device %q", id)
	}
	return dev.(*device.Disk).Used()
}

func TestTierPolicyAccessors(t *testing.T) {
	_, st := tierRig(t, 2)
	if st.Tiering().Enabled() {
		t.Error("zero tier policy should be disabled")
	}
	p := TierPolicy{PromoteAt: 3, DemoteBelow: 1, HalfLife: avtime.Minute, Width: 2}
	st.SetTierPolicy(p)
	if got := st.Tiering(); got != p {
		t.Errorf("Tiering = %+v, want %+v", got, p)
	}
	if !(TierPolicy{Replicas: ReplicaPolicy{Copies: 2}}).Enabled() {
		t.Error("replica-only policy should be enabled")
	}
}

func TestTierPromoteOnPopularity(t *testing.T) {
	dm, st := tierRig(t, 2)
	col := obs.NewCollector()
	st.SetSink(col)
	st.SetTierPolicy(TierPolicy{PromoteAt: 3, Width: 2})
	// Disc 1: a fresh jukebox has disc 0 in its platter, so the first
	// access pays a real swap.
	seg, err := st.PlaceOnDisc(clip(t, 10), "jb0", 1)
	if err != nil {
		t.Fatal(err)
	}
	var startups [3]avtime.WorldTime
	for i := 0; i < 3; i++ {
		s, startup, err := st.OpenStreamTiered(seg.ID(), media.MBPerSecond, avtime.WorldTime(i)*avtime.Second)
		if err != nil {
			t.Fatal(err)
		}
		startups[i] = startup
		s.Close()
	}
	ti := st.TierInfo(3 * avtime.Second)
	if len(ti) != 1 || !ti[0].Promoted || ti[0].Tier() != "jukebox+disk" {
		t.Fatalf("after 3 accesses: %+v, want promoted", ti)
	}
	if ti[0].Disc != 1 || ti[0].Device != "jb0" {
		t.Errorf("archival copy lost: %+v", ti[0])
	}
	// The promoting open pays the copy: disc read + stripe write on top
	// of a plain startup.
	if startups[2] <= startups[1] {
		t.Errorf("promotion not charged: startup %v vs %v", startups[2], startups[1])
	}
	// 12 KB split across a width-2 stripe.
	if a, b := diskUsed(t, dm, diskID(0)), diskUsed(t, dm, diskID(1)); a+b != 12_000 {
		t.Errorf("disk tier holds %d+%d bytes, want 12000", a, b)
	}
	snap := col.Snapshot()
	if got := snap.Counter("storage.tier.promotions"); got != 1 {
		t.Errorf("promotions = %d, want 1", got)
	}
	// The first jukebox open paid the platter swap (disc 1 stays loaded
	// afterwards); the second open and the promotion found it loaded.
	if got := snap.Counter("storage.tier.swaps"); got != 1 {
		t.Errorf("swaps = %d, want 1", got)
	}
	// Promoted reads stream from the disks, not the jukebox.
	s, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !seg.Striped() {
		t.Fatal("promoted segment should be striped")
	}
	if _, err := s.ReadChunkTime(0, 1200); err != nil {
		t.Fatal(err)
	}
}

func TestTierPromotionDefersWhileStreaming(t *testing.T) {
	_, st := tierRig(t, 2)
	st.SetTierPolicy(TierPolicy{PromoteAt: 2, Width: 1})
	seg, err := st.PlaceOnDisc(clip(t, 10), "jb0", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Half the jukebox head's bandwidth each, so two streams coexist.
	a, _, err := st.OpenStreamTiered(seg.ID(), media.MBPerSecond/2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Second access crosses the threshold, but a holds the value open:
	// rebuilding the layout under a live reader is the interactivity
	// killer the paper warns about, so the copy defers.
	b, _, err := st.OpenStreamTiered(seg.ID(), media.MBPerSecond/2, avtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.TierInfo(avtime.Second)[0].Promoted {
		t.Fatal("promoted under a live stream")
	}
	a.Close()
	b.Close()
	// The next quiet access promotes.
	c, _, err := st.OpenStreamTiered(seg.ID(), media.MBPerSecond/2, 2*avtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !st.TierInfo(2*avtime.Second)[0].Promoted {
		t.Fatal("quiet access did not promote")
	}
}

// jamHook fails the first n jukebox swaps, then lets them through.
type jamHook struct{ n *int }

func (h jamHook) BeforeRead(string, int64) (avtime.WorldTime, error) { return 0, nil }
func (h jamHook) BeforeSwap(string, int) error {
	if *h.n > 0 {
		*h.n--
		return errors.New("carousel jammed")
	}
	return nil
}

func TestTierSwapJamFailsPromotionCleanly(t *testing.T) {
	dm, st := tierRig(t, 2)
	col := obs.NewCollector()
	st.SetSink(col)
	st.SetTierPolicy(TierPolicy{PromoteAt: 1, Width: 2})
	// Disc 1 is out of the platter, so the promotion's read needs a swap.
	seg, err := st.PlaceOnDisc(clip(t, 10), "jb0", 1)
	if err != nil {
		t.Fatal(err)
	}
	jams := 1
	dm.SetFaultHook(jamHook{n: &jams})
	// The first access needs a swap to read the disc for the copy; the
	// jam fails the promotion but not the open (the open's own access
	// retries the swap, which now succeeds).
	s, startup, err := st.OpenStreamTiered(seg.ID(), media.MBPerSecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.TierInfo(0)[0].Promoted {
		t.Fatal("jammed promotion still promoted")
	}
	if used := diskUsed(t, dm, diskID(0)) + diskUsed(t, dm, diskID(1)); used != 0 {
		t.Errorf("failed promotion leaked %d bytes on the disk tier", used)
	}
	// The failed attempt still cost its swap latency on top of the
	// open's own swap-and-access startup.
	if startup <= 5*avtime.Second {
		t.Errorf("startup %v should include the jammed swap attempt", startup)
	}
	snap := col.Snapshot()
	if got := snap.Counter("storage.tier.promote_failed"); got != 1 {
		t.Errorf("promote_failed = %d, want 1", got)
	}
	s.Close()
	dm.SetFaultHook(nil)
	// Popularity survived the jam: the next quiet access promotes.
	c, _, err := st.OpenStreamTiered(seg.ID(), media.MBPerSecond, avtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !st.TierInfo(avtime.Second)[0].Promoted {
		t.Fatal("recovered jukebox did not promote")
	}
}

func TestTierDiskOutageRollsBackPromotion(t *testing.T) {
	dm, st := tierRig(t, 2)
	col := obs.NewCollector()
	st.SetSink(col)
	st.SetTierPolicy(TierPolicy{PromoteAt: 1, Width: 2})
	seg, err := st.PlaceOnDisc(clip(t, 10), "jb0", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Both promotion targets are down: the write-reachability probe
	// fails the copy and rolls the allocations back.
	dm.SetFaultHook(failHook{fail: map[string]bool{diskID(0): true, diskID(1): true}})
	s, _, err := st.OpenStreamTiered(seg.ID(), media.MBPerSecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.TierInfo(0)[0].Promoted {
		t.Fatal("promoted onto dead disks")
	}
	if used := diskUsed(t, dm, diskID(0)) + diskUsed(t, dm, diskID(1)); used != 0 {
		t.Errorf("rolled-back promotion leaked %d bytes", used)
	}
	if got := col.Snapshot().Counter("storage.tier.promote_failed"); got != 1 {
		t.Errorf("promote_failed = %d, want 1", got)
	}
	// The archival copy still serves reads.
	if _, err := s.ReadChunkTime(0, 1200); err != nil {
		t.Fatalf("jukebox read after failed promotion: %v", err)
	}
	s.Close()
	dm.SetFaultHook(nil)
	c, _, err := st.OpenStreamTiered(seg.ID(), media.MBPerSecond, avtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !st.TierInfo(avtime.Second)[0].Promoted {
		t.Fatal("recovered disks did not promote")
	}
}

func TestTierDemotionSweep(t *testing.T) {
	dm, st := tierRig(t, 2)
	col := obs.NewCollector()
	st.SetSink(col)
	st.SetTierPolicy(TierPolicy{PromoteAt: 1, DemoteBelow: 0.5, HalfLife: 10 * avtime.Second, Width: 2})
	seg, err := st.PlaceOnDisc(clip(t, 10), "jb0", 0)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := st.OpenStreamTiered(seg.ID(), media.MBPerSecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.TierInfo(0)[0].Promoted {
		t.Fatal("first access did not promote")
	}
	// Still hot shortly after: no demotion.
	if n := st.SweepTiers(avtime.Second); n != 0 {
		t.Fatalf("hot value demoted (%d)", n)
	}
	// Cold, but the open stream pins the disk copy.
	if n := st.SweepTiers(100 * avtime.Second); n != 0 {
		t.Fatalf("demoted under a live stream (%d)", n)
	}
	s.Close()
	if n := st.SweepTiers(100 * avtime.Second); n != 1 {
		t.Fatalf("SweepTiers = %d, want 1", n)
	}
	ti := st.TierInfo(100 * avtime.Second)[0]
	if ti.Promoted || ti.Tier() != "jukebox" {
		t.Fatalf("demoted value: %+v, want archival only", ti)
	}
	if used := diskUsed(t, dm, diskID(0)) + diskUsed(t, dm, diskID(1)); used != 0 {
		t.Errorf("demotion left %d bytes on the disk tier", used)
	}
	if got := col.Snapshot().Counter("storage.tier.demotions"); got != 1 {
		t.Errorf("demotions = %d, want 1", got)
	}
	// The archival copy still opens and reads.
	c, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ReadChunkTime(0, 1200); err != nil {
		t.Fatal(err)
	}
}

func TestTierReplicationOnHotValue(t *testing.T) {
	dm, st := stripeRig(t, 4)
	col := obs.NewCollector()
	st.SetSink(col)
	st.SetTierPolicy(TierPolicy{Replicas: ReplicaPolicy{Copies: 2, PromoteAt: 2}})
	seg, err := st.PlaceStriped(clip(t, 12), 2*media.MBPerSecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	primary := diskUsed(t, dm, diskID(0)) + diskUsed(t, dm, diskID(1))
	a, _, err := st.OpenStreamTiered(seg.ID(), 2*media.MBPerSecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	if got := st.TierInfo(0)[0].Copies; got != 1 {
		t.Fatalf("replicated below threshold: copies = %d", got)
	}
	b, _, err := st.OpenStreamTiered(seg.ID(), 2*media.MBPerSecond, avtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := st.TierInfo(avtime.Second)[0].Copies; got != 2 {
		t.Fatalf("copies = %d, want 2 at the threshold", got)
	}
	// The replica lives on the two disks disjoint from the primary.
	if got := diskUsed(t, dm, diskID(2)) + diskUsed(t, dm, diskID(3)); got != primary {
		t.Errorf("replica holds %d bytes, want %d", got, primary)
	}
	if got := col.Snapshot().Counter("storage.tier.replicas"); got != 1 {
		t.Errorf("replicas counter = %d, want 1", got)
	}
	// Copies is capped: another access adds nothing.
	c, _, err := st.OpenStreamTiered(seg.ID(), 2*media.MBPerSecond, 2*avtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := st.TierInfo(2*avtime.Second)[0].Copies; got != 2 {
		t.Fatalf("copies = %d after third access, want 2", got)
	}
}

func TestTierReplicaFailoverOnOutage(t *testing.T) {
	dm, st := stripeRig(t, 4)
	col := obs.NewCollector()
	st.SetSink(col)
	st.SetTierPolicy(TierPolicy{Replicas: ReplicaPolicy{Copies: 2, PromoteAt: 1}})
	seg, err := st.PlaceStriped(clip(t, 12), 2*media.MBPerSecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := st.OpenStreamTiered(seg.ID(), 2*media.MBPerSecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := st.TierInfo(0)[0].Copies; got != 2 {
		t.Fatalf("copies = %d, want 2", got)
	}
	// Chunk 0's home (the first stripe disk) goes down hard; the read
	// fails over to the replica's copy of the same stripe column.
	dm.SetFaultHook(downHook{down: map[string]bool{diskID(0): true}})
	dt, err := s.ReadChunkTime(0, 1200)
	if err != nil {
		t.Fatalf("read with a live replica: %v", err)
	}
	if dt == 0 {
		t.Error("failover read cannot be free")
	}
	if got := col.Snapshot().Counter("storage.replica.failover"); got != 1 {
		t.Errorf("failover counter = %d, want 1", got)
	}
	// Primary home and its replica column both down: no live copy left.
	dm.SetFaultHook(downHook{down: map[string]bool{diskID(0): true, diskID(2): true}})
	if _, err := s.ReadChunkTime(2, 1200); !errors.Is(err, device.ErrDeviceFailed) {
		t.Fatalf("read with no live copy: %v, want ErrDeviceFailed", err)
	}
}

// downHook hard-fails every read on the listed devices (an outage, not
// a transient fault — failover only engages on ErrDeviceFailed).
type downHook struct{ down map[string]bool }

func (h downHook) BeforeRead(deviceID string, bytes int64) (avtime.WorldTime, error) {
	if h.down[deviceID] {
		return avtime.Millisecond, device.ErrDeviceFailed
	}
	return 0, nil
}

func (h downHook) BeforeSwap(string, int) error { return nil }

// TestTierFlexRoutingLeastLoaded drives the scheduler directly: two
// streams request replicated chunks in one round, and the flex
// assignment spreads them across the copies by queued bytes, ties to
// the lower device ID, independent of submission order.
func TestTierFlexRoutingLeastLoaded(t *testing.T) {
	dm, _ := stripeRig(t, 2)
	da, _ := dm.Get(diskID(0))
	db, _ := dm.Get(diskID(1))
	a, b := da.(*device.Disk), db.(*device.Disk)
	mkReq := func(sid int64, chunk int, deadline avtime.WorldTime, slot *ioSlot) ioReq {
		q := ioReq{
			sid: sid, chunk: chunk, bytes: 1200, disk: a, track: 0,
			rate: media.MBPerSecond, deadline: deadline, slot: slot,
		}
		q.alts[0] = ioAlt{disk: b, track: 0}
		q.nalt = 1
		return q
	}
	for _, order := range [][]int64{{1, 2}, {2, 1}} {
		io := newIOSched(nil)
		slots := map[int64]*ioSlot{1: {}, 2: {}}
		for _, sid := range order {
			io.submit(0, mkReq(sid, int(sid), avtime.WorldTime(sid)*avtime.Second, slots[sid]))
		}
		io.flushBefore(1)
		// Earliest deadline routes first onto the equally-empty disks:
		// the tie goes to the lower ID (adisk); the second request then
		// sees adisk loaded and takes bdisk.
		if got := slots[1].disk; got != a {
			t.Fatalf("order %v: first request on %v, want %s", order, got.ID(), a.ID())
		}
		if got := slots[2].disk; got != b {
			t.Fatalf("order %v: second request on %v, want %s", order, got.ID(), b.ID())
		}
	}
}
