package storage

// stream_extras_test.go covers the smaller stream and pool surfaces
// around the hierarchy work: degraded payload fractions shortening
// scheduled rounds, failover accounting on the round scheduler, sink
// swaps reaching the pool and scheduler, same-round own-window hits,
// and the policy/rendering helpers.

import (
	"strings"
	"testing"

	"avdb/internal/avtime"
	"avdb/internal/media"
	"avdb/internal/obs"
)

// TestStreamPayloadFractionShortensRounds pins SetPayloadBytes: a
// degraded consumer ignoring half the encoded data must make the
// scheduled prefetches transfer half the bytes, so the same read
// sequence costs strictly less device time — and restoring the full
// payload restores the full cost exactly.
func TestStreamPayloadFractionShortensRounds(t *testing.T) {
	run := func(payload func(seg *Segment) int64) avtime.WorldTime {
		_, st := stripeRig(t, 2)
		st.SetStriping(StripePolicy{Seeks: true, Rounds: true})
		seg, err := st.PlaceStriped(clip(t, 20), 2*media.MBPerSecond, 2)
		if err != nil {
			t.Fatal(err)
		}
		s, _, err := st.OpenStream(seg.ID(), 2*media.MBPerSecond)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if payload != nil {
			s.SetPayloadBytes(payload(seg))
		}
		unit := media.TypeRawVideo30.Rate.UnitDuration()
		var total avtime.WorldTime
		for i := 0; i < 20; i++ {
			now := avtime.WorldTime(i) * unit
			dt, err := s.ReadChunkTimeAt(i, 1200, int64(i), now, now)
			if err != nil {
				t.Fatal(err)
			}
			total += dt
		}
		return total
	}
	full := run(nil)
	half := run(func(seg *Segment) int64 { return seg.Size() / 2 })
	if half >= full {
		t.Errorf("half-payload total %v not below full-payload %v", half, full)
	}
	// A payload at (or past) the stored size means nothing is ignored.
	restored := run(func(seg *Segment) int64 { return seg.Size() })
	if restored != full {
		t.Errorf("full-size payload total %v != undegraded %v", restored, full)
	}
	// Zero means "unknown": full-chunk reads, same cost.
	if zeroed := run(func(*Segment) int64 { return 0 }); zeroed != full {
		t.Errorf("zero payload total %v != undegraded %v", zeroed, full)
	}
}

// TestScheduledFailoverCountsInIOStats reads a replicated value through
// SCAN-EDF rounds while its primary home is down: the redirected read
// must land in the scheduler's failover counter, not just the sink.
func TestScheduledFailoverCountsInIOStats(t *testing.T) {
	dm, st := stripeRig(t, 4)
	st.SetStriping(StripePolicy{Seeks: true, Rounds: true})
	st.SetTierPolicy(TierPolicy{Replicas: ReplicaPolicy{Copies: 2, PromoteAt: 1}})
	seg, err := st.PlaceStriped(clip(t, 12), 2*media.MBPerSecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := st.OpenStreamTiered(seg.ID(), 2*media.MBPerSecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	dm.SetFaultHook(downHook{down: map[string]bool{diskID(0): true}})
	unit := media.TypeRawVideo30.Rate.UnitDuration()
	for i := 0; i < 12; i++ {
		now := avtime.WorldTime(i) * unit
		if _, err := s.ReadChunkTimeAt(i, 1200, int64(i), now, now); err != nil {
			t.Fatalf("chunk %d with a live replica: %v", i, err)
		}
	}
	if got := st.IOStats().Failovers; got == 0 {
		t.Error("scheduler recorded no failovers for reads off a dead primary")
	}
}

// TestSinkSwapReachesPoolAndScheduler installs the sink after the pool
// and scheduler already exist: counters from reads made afterwards must
// flow to the new sink.
func TestSinkSwapReachesPoolAndScheduler(t *testing.T) {
	_, st := stripeRig(t, 2)
	st.SetCachePolicy(CachePolicy{Capacity: 4, Lookahead: 2})
	st.SetStriping(StripePolicy{Seeks: true, Rounds: true})
	seg, err := st.PlaceStriped(clip(t, 10), 2*media.MBPerSecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := st.OpenStream(seg.ID(), 2*media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	unit := media.TypeRawVideo30.Rate.UnitDuration()
	if _, err := s.ReadChunkTimeAt(0, 1200, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	// The pool and scheduler were built sink-less; swap one in mid-run.
	col := obs.NewCollector()
	st.SetSink(col)
	for i := 1; i < 10; i++ {
		now := avtime.WorldTime(i) * unit
		if _, err := s.ReadChunkTimeAt(i, 1200, int64(i), now, now); err != nil {
			t.Fatal(err)
		}
	}
	snap := col.Snapshot()
	if snap.Counter("storage.pool.hits") == 0 {
		t.Error("pool hits after the sink swap did not reach the new sink")
	}
	if snap.Counter("storage.iosched.rounds") == 0 {
		t.Error("scheduler rounds after the sink swap did not reach the new sink")
	}
}

// TestPoolOwnWindowRepeatHit reads a chunk its own fill staged earlier
// in the same round: the insert is not committed yet, so the hit goes
// through the staged own-window path, and the commit must leave the
// pool's occupancy agreeing with the resident map.
func TestPoolOwnWindowRepeatHit(t *testing.T) {
	_, st := stripeRig(t, 2)
	st.SetCachePolicy(CachePolicy{Capacity: 6, Lookahead: 3})
	seg, err := st.PlaceStriped(clip(t, 12), 2*media.MBPerSecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := st.OpenStream(seg.ID(), 2*media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Round 0: the miss on chunk 0 stages 0..3; chunk 1 is in the own
	// fill window, uncommitted, and must still count as a (free) hit.
	if _, err := s.ReadChunkTimeAt(0, 1200, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	dt, err := s.ReadChunkTimeAt(1, 1200, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dt != 0 {
		t.Errorf("own-window hit cost %v, want free", dt)
	}
	cs := s.CacheStats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", cs.Hits, cs.Misses)
	}
	// A later round commits the staged ops; occupancy views must agree.
	if _, err := s.ReadChunkTimeAt(4, 1200, 4, 0, 1); err != nil {
		t.Fatal(err)
	}
	if got, want := s.pool.residentCount(), st.PoolStats().Resident; got != want {
		t.Errorf("residentCount %d != PoolStats.Resident %d", got, want)
	}
}

// TestPolicyEnabledAndSegmentStrings pins the policy switches and the
// segment rendering for each placement shape.
func TestPolicyEnabledAndSegmentStrings(t *testing.T) {
	if (StripePolicy{}).Enabled() {
		t.Error("zero stripe policy reports enabled")
	}
	for _, p := range []StripePolicy{{Width: 2}, {Seeks: true}, {Rounds: true}} {
		if !p.Enabled() {
			t.Errorf("stripe policy %+v reports disabled", p)
		}
	}
	if (TierPolicy{}).Enabled() {
		t.Error("zero tier policy reports enabled")
	}
	if !(TierPolicy{PromoteAt: 1}).Enabled() || !(TierPolicy{Replicas: ReplicaPolicy{Copies: 2}}).Enabled() {
		t.Error("promotion-only and replication-only tier policies must report enabled")
	}

	_, st := tierRig(t, 2)
	onDisc, err := st.PlaceOnDisc(clip(t, 2), "jb0", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := onDisc.String(); !strings.Contains(got, "disc 1") {
		t.Errorf("jukebox segment renders %q, want the disc", got)
	}
	striped, err := st.PlaceStriped(clip(t, 4), media.MBPerSecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := striped.String(); !strings.Contains(got, "striped over") {
		t.Errorf("striped segment renders %q, want the stripe", got)
	}
	plain, err := st.Place(clip(t, 2), diskID(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.String(); !strings.Contains(got, "on "+diskID(0)) || strings.Contains(got, "disc") {
		t.Errorf("plain segment renders %q, want just the device", got)
	}
}
