package storage

import (
	"errors"
	"sync"
	"testing"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
	"avdb/internal/obs"
)

// stripeRig builds a store over n identical disks with a positional
// geometry, the shape PlaceStriped and the round scheduler target.
func stripeRig(t *testing.T, n int) (*device.Manager, *Store) {
	t.Helper()
	dm := device.NewManager()
	for i := 0; i < n; i++ {
		d := device.NewDisk(diskID(i), 4_000_000, 8*media.MBPerSecond, 10*avtime.Millisecond)
		if err := d.SetGeometry(16, avtime.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := dm.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	return dm, NewStore(dm)
}

func diskID(i int) string { return string(rune('a'+i)) + "disk" }

func rigDisk(t *testing.T, dm *device.Manager, id string) *device.Disk {
	t.Helper()
	d, ok := dm.Get(id)
	if !ok {
		t.Fatalf("no device %q", id)
	}
	return d.(*device.Disk)
}

func TestPlaceStripedRoundRobin(t *testing.T) {
	dm, st := stripeRig(t, 4)
	v := clip(t, 12) // 1200 B/frame
	seg, err := st.PlaceStriped(v, 4*media.MBPerSecond, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !seg.Striped() {
		t.Fatal("segment not marked striped")
	}
	stripe := seg.Stripe()
	if len(stripe) != 4 {
		t.Fatalf("stripe spans %d disks, want 4", len(stripe))
	}
	// Chunks interleave round-robin and offsets advance per home disk.
	for i := 0; i < 12; i++ {
		if seg.chunkDev[i] != i%4 {
			t.Errorf("chunk %d home %d, want %d", i, seg.chunkDev[i], i%4)
		}
		if want := int64(i/4) * 1200; seg.chunkOff[i] != want {
			t.Errorf("chunk %d offset %d, want %d", i, seg.chunkOff[i], want)
		}
	}
	// Every stripe disk carries exactly its share of the bytes.
	var sum int64
	for k, id := range stripe {
		d := rigDisk(t, dm, id)
		if d.Used() != seg.perDev[k] {
			t.Errorf("disk %s used %d, want %d", id, d.Used(), seg.perDev[k])
		}
		sum += d.Used()
	}
	if sum != v.Size() {
		t.Errorf("stripe allocations sum to %d, want %d", sum, v.Size())
	}
	// An unstriped placement reports no stripe.
	plain, err := st.PlaceAuto(clip(t, 4), media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Striped() || plain.Stripe() != nil {
		t.Error("unstriped segment reports a stripe")
	}
}

func TestPlaceStripedEligibility(t *testing.T) {
	_, st := stripeRig(t, 2)
	if _, err := st.PlaceStriped(clip(t, 4), media.MBPerSecond, 0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := st.PlaceStriped(clip(t, 4), -media.MBPerSecond, 2); err == nil {
		t.Error("negative rate accepted")
	}
	// More disks demanded than qualify.
	if _, err := st.PlaceStriped(clip(t, 4), media.MBPerSecond, 3); !errors.Is(err, ErrNoPlacement) {
		t.Errorf("width 3 over 2 disks: %v, want ErrNoPlacement", err)
	}
	// Disks short on bandwidth shares don't qualify.
	if _, err := st.PlaceStriped(clip(t, 4), 100*media.MBPerSecond, 2); !errors.Is(err, ErrNoPlacement) {
		t.Errorf("oversized rate: %v, want ErrNoPlacement", err)
	}
	// Width 1 degenerates to plain auto placement.
	seg, err := st.PlaceStriped(clip(t, 4), media.MBPerSecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Striped() {
		t.Error("width-1 placement came back striped")
	}
}

func TestPlaceStripedRollbackOnAllocateFailure(t *testing.T) {
	// One disk too small for its share: bandwidth qualifies it, Allocate
	// fails mid-placement, and every prior allocation must roll back.
	dm := device.NewManager()
	big := device.NewDisk("big", 4_000_000, 8*media.MBPerSecond, 10*avtime.Millisecond)
	tiny := device.NewDisk("tiny", 100, 8*media.MBPerSecond, 10*avtime.Millisecond)
	for _, d := range []device.Device{big, tiny} {
		if err := dm.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	st := NewStore(dm)
	if _, err := st.PlaceStriped(clip(t, 10), media.MBPerSecond, 2); err == nil {
		t.Fatal("placement over a full disk succeeded")
	}
	if big.Used() != 0 || tiny.Used() != 0 {
		t.Errorf("leaked allocations after failed striping: big=%d tiny=%d", big.Used(), tiny.Used())
	}
}

func TestShareRateSplitsExactly(t *testing.T) {
	for _, tc := range []struct {
		rate  media.DataRate
		width int
	}{{10, 3}, {7, 2}, {1_000_003, 4}, {5, 5}, {4, 8}} {
		shares := shareRate(tc.rate, tc.width)
		var sum media.DataRate
		for _, s := range shares {
			sum += s
		}
		if sum != tc.rate {
			t.Errorf("shareRate(%d, %d) sums to %d", tc.rate, tc.width, sum)
		}
		if shares[0]-shares[tc.width-1] > 1 {
			t.Errorf("shareRate(%d, %d) uneven: %v", tc.rate, tc.width, shares)
		}
	}
}

func TestStripedStreamReservesAndReleasesShares(t *testing.T) {
	dm, st := stripeRig(t, 3)
	seg, err := st.PlaceStriped(clip(t, 9), 3*media.MBPerSecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	rate := 3 * media.MBPerSecond
	s, startup, err := st.OpenStream(seg.ID(), rate)
	if err != nil {
		t.Fatal(err)
	}
	if startup == 0 {
		t.Error("striped open reported zero startup")
	}
	var reserved media.DataRate
	for _, id := range seg.Stripe() {
		d := rigDisk(t, dm, id)
		if d.ReservedBandwidth() != rate/3 {
			t.Errorf("disk %s reserved %v, want %v", id, d.ReservedBandwidth(), rate/3)
		}
		reserved += d.ReservedBandwidth()
	}
	if reserved != rate {
		t.Errorf("stripe reservations sum to %v, want %v", reserved, rate)
	}
	s.Close()
	s.Close() // double close must not double-release
	for _, id := range seg.Stripe() {
		if d := rigDisk(t, dm, id); d.ReservedBandwidth() != 0 {
			t.Errorf("disk %s still reserves %v after close", id, d.ReservedBandwidth())
		}
	}
}

func TestStripedOpenRollsBackOnReserveFailure(t *testing.T) {
	dm, st := stripeRig(t, 2)
	seg, err := st.PlaceStriped(clip(t, 4), media.MBPerSecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the second stripe disk so its share reservation fails.
	hog := rigDisk(t, dm, seg.Stripe()[1])
	if err := hog.Reserve(8 * media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.OpenStream(seg.ID(), 2*media.MBPerSecond); err == nil {
		t.Fatal("open succeeded past a saturated stripe disk")
	}
	if d := rigDisk(t, dm, seg.Stripe()[0]); d.ReservedBandwidth() != 0 {
		t.Errorf("first stripe disk leaked %v after failed open", d.ReservedBandwidth())
	}
}

// Satellite (a): load-aware auto placement is deterministic — most free
// bandwidth, then most free capacity, then lowest device ID.
func TestPlaceAutoLoadAwareDeterministicOrder(t *testing.T) {
	dm := device.NewManager()
	mk := func(id string, capacity int64, bw media.DataRate) *device.Disk {
		d := device.NewDisk(id, capacity, bw, 10*avtime.Millisecond)
		if err := dm.Register(d); err != nil {
			t.Fatal(err)
		}
		return d
	}
	// c beats a and b on free bandwidth; among a and b, b has more
	// capacity; a wins only by ID once everything else ties.
	a := mk("a", 1_000_000, 4*media.MBPerSecond)
	mk("b", 2_000_000, 4*media.MBPerSecond)
	mk("c", 1_000_000, 6*media.MBPerSecond)
	st := NewStore(dm)

	place := func() string {
		t.Helper()
		seg, err := st.PlaceAuto(clip(t, 1), media.MBPerSecond)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Delete(seg.ID()); err != nil {
			t.Fatal(err)
		}
		return seg.Device()
	}
	if got := place(); got != "c" {
		t.Errorf("free bandwidth should win: placed on %q, want c", got)
	}
	// Drain c below the others: bandwidth tie between a and b, b has
	// more free capacity.
	cd := rigDisk(t, dm, "c")
	if err := cd.Reserve(3 * media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	if got := place(); got != "b" {
		t.Errorf("capacity should break the bandwidth tie: placed on %q, want b", got)
	}
	// Level the capacities too: the ID breaks the final tie.
	if err := a.Allocate(0); err != nil { // no-op, a stays eligible
		t.Fatal(err)
	}
	bd := rigDisk(t, dm, "b")
	if err := bd.Allocate(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := place(); got != "a" {
		t.Errorf("ID should break the full tie: placed on %q, want a", got)
	}
	// The order is stable across repeated calls.
	for i := 0; i < 5; i++ {
		if got := place(); got != "a" {
			t.Fatalf("placement order not deterministic: got %q on try %d", got, i)
		}
	}
}

// Satellite (b): Move/Delete error paths must not leak space, and a
// stream's bandwidth release must follow the reservation, not the
// segment's current placement.
func TestDeleteTwiceFreesOnce(t *testing.T) {
	dm, st := testRig(t)
	seg, err := st.Place(clip(t, 10), "disk0")
	if err != nil {
		t.Fatal(err)
	}
	d0 := rigDisk(t, dm, "disk0")
	if err := st.Delete(seg.ID()); err != nil {
		t.Fatal(err)
	}
	if d0.Used() != 0 {
		t.Fatalf("delete left %d bytes allocated", d0.Used())
	}
	if err := st.Delete(seg.ID()); !errors.Is(err, ErrNoSegment) {
		t.Errorf("second delete: %v, want ErrNoSegment", err)
	}
	if d0.Used() != 0 {
		t.Errorf("double delete corrupted accounting: used=%d", d0.Used())
	}
}

func TestMoveAfterDeleteLeaksNothing(t *testing.T) {
	dm, st := testRig(t)
	seg, err := st.Place(clip(t, 10), "disk0")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(seg.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Move(seg.ID(), "disk1"); !errors.Is(err, ErrNoSegment) {
		t.Errorf("move of deleted segment: %v, want ErrNoSegment", err)
	}
	if d1 := rigDisk(t, dm, "disk1"); d1.Used() != 0 {
		t.Errorf("move of deleted segment leaked %d bytes on destination", d1.Used())
	}
}

func TestMoveStripedRefused(t *testing.T) {
	dm, st := stripeRig(t, 2)
	seg, err := st.PlaceStriped(clip(t, 8), media.MBPerSecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Move(seg.ID(), diskID(0)); !errors.Is(err, ErrStriped) {
		t.Errorf("move of striped segment: %v, want ErrStriped", err)
	}
	// The refusal left the stripe allocations intact.
	var sum int64
	for _, id := range seg.Stripe() {
		sum += rigDisk(t, dm, id).Used()
	}
	if sum != seg.Size() {
		t.Errorf("refused move disturbed allocations: %d, want %d", sum, seg.Size())
	}
}

func TestDeleteStripedFreesEveryShare(t *testing.T) {
	dm, st := stripeRig(t, 3)
	seg, err := st.PlaceStriped(clip(t, 10), media.MBPerSecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	stripe := seg.Stripe()
	if err := st.Delete(seg.ID()); err != nil {
		t.Fatal(err)
	}
	for _, id := range stripe {
		if d := rigDisk(t, dm, id); d.Used() != 0 {
			t.Errorf("disk %s still holds %d bytes after striped delete", id, d.Used())
		}
	}
}

func TestCloseReleasesOnOriginalDeviceAfterMove(t *testing.T) {
	dm, st := testRig(t)
	seg, err := st.Place(clip(t, 10), "disk0")
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Move(seg.ID(), "disk1"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	d0, d1 := rigDisk(t, dm, "disk0"), rigDisk(t, dm, "disk1")
	if d0.ReservedBandwidth() != 0 {
		t.Errorf("disk0 leaked %v bandwidth: close released on the moved-to device", d0.ReservedBandwidth())
	}
	if d1.ReservedBandwidth() != 0 {
		t.Errorf("disk1 reserves %v it never granted", d1.ReservedBandwidth())
	}
}

// ---- round scheduler ----

func TestIOSchedBatchAmortizesSeeks(t *testing.T) {
	d := device.NewDisk("d", 1_000_000, 8*media.MBPerSecond, 10*avtime.Millisecond)
	if err := d.SetGeometry(16, avtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	io := newIOSched(nil)
	// Three streams, adjacent tracks, same deadline: one positioned seek
	// for the run, the rest ride for free.
	slots := make([]ioSlot, 3)
	for sid := int64(0); sid < 3; sid++ {
		io.submit(0, ioReq{sid: sid, chunk: 5, bytes: 1200, disk: d, track: 4 + int(sid),
			rate: media.MBPerSecond, now: 0, deadline: avtime.Second, slot: &slots[sid]})
	}
	io.flushBefore(1)
	st := io.Stats()
	if st.Rounds != 1 || st.Batches != 1 || st.Scheduled != 3 {
		t.Errorf("stats %+v, want 1 round, 1 batch, 3 scheduled", st)
	}
	if st.SeeksCharged != 1 || st.SeeksSaved != 2 {
		t.Errorf("seeks charged=%d saved=%d, want 1/2", st.SeeksCharged, st.SeeksSaved)
	}
	if st.MaxBatch != 3 {
		t.Errorf("max batch %d, want 3", st.MaxBatch)
	}
	// Every stream finds its serviced result, and the run's followers
	// are strictly cheaper than its opener.
	first, ok := io.take(&slots[0], 5)
	if !ok {
		t.Fatal("stream 0's result missing")
	}
	for sid := int64(1); sid < 3; sid++ {
		res, ok := io.take(&slots[sid], 5)
		if !ok {
			t.Fatalf("stream %d's result missing", sid)
		}
		if res.cost >= first.cost {
			t.Errorf("follower %d cost %v, want < opener's %v", sid, res.cost, first.cost)
		}
	}
}

func TestIOSchedScanEDFOrder(t *testing.T) {
	d := device.NewDisk("d", 1_000_000, 8*media.MBPerSecond, 10*avtime.Millisecond)
	if err := d.SetGeometry(16, avtime.Millisecond); err != nil {
		t.Fatal(err)
	}
	// An urgent request on a far track must be serviced before a relaxed
	// one near the head: deadline dominates track position.
	io := newIOSched(nil)
	io.heads[d] = 0
	slots := make([]ioSlot, 2)
	io.submit(0, ioReq{sid: 0, chunk: 1, bytes: 1200, disk: d, track: 15,
		rate: media.MBPerSecond, now: 0, deadline: avtime.Millisecond, slot: &slots[0]})
	io.submit(0, ioReq{sid: 1, chunk: 1, bytes: 1200, disk: d, track: 1,
		rate: media.MBPerSecond, now: 0, deadline: avtime.Second, slot: &slots[1]})
	io.flushBefore(1)
	// Head finished at the relaxed request's track — it went last.
	if io.heads[d] != 1 {
		t.Errorf("head at track %d, want 1 (EDF must outrank SCAN)", io.heads[d])
	}
	urgent, _ := io.take(&slots[0], 1)
	relaxed, _ := io.take(&slots[1], 1)
	// The urgent stream paid the full 0->15 sweep; the relaxed one paid
	// the shorter 15->1 return, cheaper than a cold full-span seek.
	if urgent.cost <= relaxed.cost {
		t.Errorf("urgent cost %v <= relaxed %v; order looks track-first", urgent.cost, relaxed.cost)
	}
	// The deadline miss on the urgent request was counted: a 1ms
	// deadline cannot absorb a full-span seek.
	if st := io.Stats(); st.DeadlineMisses != 1 {
		t.Errorf("deadline misses %d, want 1", st.DeadlineMisses)
	}
}

func TestIOSchedStaleAndStragglerRequests(t *testing.T) {
	d := device.NewDisk("d", 1_000_000, 8*media.MBPerSecond, 10*avtime.Millisecond)
	io := newIOSched(nil)
	slots := make([]ioSlot, 2)
	io.submit(0, ioReq{sid: 7, chunk: 3, bytes: 1200, disk: d, rate: media.MBPerSecond, deadline: avtime.Second, slot: &slots[0]})
	io.flushBefore(2)
	// Taking the wrong chunk discards the stale result entirely.
	if _, ok := io.take(&slots[0], 9); ok {
		t.Error("stale result consumed for the wrong chunk")
	}
	if _, ok := io.take(&slots[0], 3); ok {
		t.Error("discarded result resurfaced")
	}
	// Submissions into an already-flushed round are dropped, so the
	// consumer falls back to a demand read instead of waiting forever.
	io.submit(1, ioReq{sid: 8, chunk: 0, bytes: 1200, disk: d, rate: media.MBPerSecond, slot: &slots[1]})
	if _, ok := io.take(&slots[1], 0); ok {
		t.Error("straggler submission into a flushed round was serviced")
	}
	if st := io.Stats(); st.Rounds != 1 {
		t.Errorf("rounds %d, want 1 (flushed straggler must not start one)", st.Rounds)
	}
}

func TestScheduledStreamReadsThroughRounds(t *testing.T) {
	_, st := stripeRig(t, 2)
	st.SetStriping(StripePolicy{Seeks: true, Rounds: true})
	seg, err := st.PlaceStriped(clip(t, 20), 2*media.MBPerSecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := st.OpenStream(seg.ID(), 2*media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	unit := media.TypeRawVideo30.Rate.UnitDuration()
	var total avtime.WorldTime
	for i := 0; i < 20; i++ {
		now := avtime.WorldTime(i) * unit
		dt, err := s.ReadChunkTimeAt(i, 1200, int64(i), now, now)
		if err != nil {
			t.Fatal(err)
		}
		total += dt
	}
	stats := st.IOStats()
	if stats.Demand != 1 {
		t.Errorf("demand reads %d, want 1 (only the first chunk is unprefetched)", stats.Demand)
	}
	if stats.Scheduled != 19 {
		t.Errorf("scheduled reads %d, want 19", stats.Scheduled)
	}
	if stats.SeeksCharged+stats.SeeksSaved != 20 {
		t.Errorf("seek accounting incomplete: charged=%d saved=%d over 20 reads",
			stats.SeeksCharged, stats.SeeksSaved)
	}
	if s.BytesRead() != 20*1200 {
		t.Errorf("bytes read %d, want %d", s.BytesRead(), 20*1200)
	}

	// The same sequence on demand (round -1) charges a seek per chunk
	// and must cost strictly more.
	s2, _, err := st.OpenStream(seg.ID(), 2*media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var demand avtime.WorldTime
	for i := 0; i < 20; i++ {
		dt, err := s2.ReadChunkTime(i, 1200)
		if err != nil {
			t.Fatal(err)
		}
		demand += dt
	}
	if total >= demand {
		t.Errorf("scheduled total %v >= demand total %v; rounds saved nothing", total, demand)
	}
}

// ---- satellite (c): chunk cache x striping ----

// failHook fails every read on the listed devices.
type failHook struct{ fail map[string]bool }

func (h failHook) BeforeRead(deviceID string, bytes int64) (avtime.WorldTime, error) {
	if h.fail[deviceID] {
		return avtime.Millisecond, device.ErrTransientRead
	}
	return 0, nil
}

func (h failHook) BeforeSwap(string, int) error { return nil }

func TestCacheHitsSkipStripeHomeDisk(t *testing.T) {
	dm, st := stripeRig(t, 2)
	col := obs.NewCollector()
	st.SetSink(col)
	st.SetCachePolicy(CachePolicy{Capacity: 8, Lookahead: 3})
	st.SetStriping(StripePolicy{Seeks: true, Rounds: true})
	seg, err := st.PlaceStriped(clip(t, 12), 2*media.MBPerSecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := st.OpenStream(seg.ID(), 2*media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	unit := media.TypeRawVideo30.Rate.UnitDuration()
	read := func(i int) (avtime.WorldTime, error) {
		now := avtime.WorldTime(i) * unit
		return s.ReadChunkTimeAt(i, 1200, int64(i), now, now)
	}
	// Chunk 0 misses and stages chunks 1..3.
	if _, err := read(0); err != nil {
		t.Fatal(err)
	}
	// Fail every disk: resident chunks must still be served — a hit
	// never touches the home disk, so the fault hook has no say.
	dm.SetFaultHook(failHook{fail: map[string]bool{diskID(0): true, diskID(1): true}})
	for i := 1; i <= 3; i++ {
		dt, err := read(i)
		if err != nil {
			t.Fatalf("cache hit on chunk %d touched a failed disk: %v", i, err)
		}
		if dt != 0 {
			t.Errorf("cache hit on chunk %d cost %v, want 0", i, dt)
		}
	}
	// Past the staged window the stripe disk is consulted and fails.
	if _, err := read(4); !errors.Is(err, device.ErrTransientRead) {
		t.Fatalf("read past the cache: %v, want ErrTransientRead", err)
	}
	dm.SetFaultHook(nil)
	cs := s.CacheStats()
	if cs.Hits != 3 {
		t.Errorf("hits %d, want 3", cs.Hits)
	}
	// Chunk 0 plus the failed and retried chunk 4 both count as misses.
	if cs.Misses != 2 {
		t.Errorf("misses %d, want 2", cs.Misses)
	}
	snap := col.Snapshot()
	if got := snap.Counter("storage.pool.hits"); got != cs.Hits {
		t.Errorf("sink hits %d, stream stats %d", got, cs.Hits)
	}
	if got := snap.Counter("storage.pool.misses"); got != cs.Misses {
		t.Errorf("sink misses %d, stream stats %d", got, cs.Misses)
	}
	// Hits don't count as reads: only the successful device accesses do.
	if reads := snap.Counter("storage.reads"); reads != 1 {
		t.Errorf("storage.reads %d, want 1 (one successful miss, hits are free)", reads)
	}
	if faults := snap.Counter("storage.read_faults"); faults != 1 {
		t.Errorf("storage.read_faults %d, want 1", faults)
	}
}

func TestCacheAndSchedulerCountersConsistent(t *testing.T) {
	_, st := stripeRig(t, 2)
	col := obs.NewCollector()
	st.SetSink(col)
	st.SetCachePolicy(CachePolicy{Capacity: 4, Lookahead: 2})
	st.SetStriping(StripePolicy{Seeks: true, Rounds: true})
	seg, err := st.PlaceStriped(clip(t, 30), 2*media.MBPerSecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := st.OpenStream(seg.ID(), 2*media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	unit := media.TypeRawVideo30.Rate.UnitDuration()
	for i := 0; i < 30; i++ {
		now := avtime.WorldTime(i) * unit
		if _, err := s.ReadChunkTimeAt(i, 1200, int64(i), now, now); err != nil {
			t.Fatal(err)
		}
	}
	cs, io := s.CacheStats(), st.IOStats()
	if cs.Hits+cs.Misses != 30 {
		t.Errorf("hits %d + misses %d != 30 reads", cs.Hits, cs.Misses)
	}
	// Every miss went to a device, either through a round or on demand;
	// scheduled results consumed while resident are dropped, never
	// double-counted.
	if io.Demand+consumedScheduled(io) < cs.Misses {
		t.Errorf("device reads (demand %d + scheduled %d) < misses %d",
			io.Demand, consumedScheduled(io), cs.Misses)
	}
	snap := col.Snapshot()
	if got := snap.Counter("storage.iosched.scheduled"); got != io.Scheduled {
		t.Errorf("sink scheduled %d, stats %d", got, io.Scheduled)
	}
	if got := snap.Counter("storage.iosched.demand"); got != io.Demand {
		t.Errorf("sink demand %d, stats %d", got, io.Demand)
	}
	if got := snap.Counter("storage.iosched.rounds"); got != io.Rounds {
		t.Errorf("sink rounds %d, stats %d", got, io.Rounds)
	}
	if got := snap.Counter("storage.pool.hits"); got != cs.Hits {
		t.Errorf("sink hits %d, stats %d", got, cs.Hits)
	}
}

// consumedScheduled bounds how many scheduled services could have fed
// reads (each round services at most one request per stream).
func consumedScheduled(io IOStats) int64 { return io.Scheduled }

func TestStripedConcurrentStreamsRace(t *testing.T) {
	// Many striped streams sharing one IOSched, read from concurrent
	// goroutines the way executor lanes do.  Run under -race.
	_, st := stripeRig(t, 4)
	st.SetSink(obs.NewCollector())
	st.SetCachePolicy(CachePolicy{Capacity: 8, Lookahead: 2})
	st.SetStriping(StripePolicy{Seeks: true, Rounds: true})
	const frames = 40
	unit := media.TypeRawVideo30.Rate.UnitDuration()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		seg, err := st.PlaceStriped(clip(t, frames), media.MBPerSecond, 4)
		if err != nil {
			t.Fatal(err)
		}
		s, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		wg.Add(1)
		go func(s *Stream) {
			defer wg.Done()
			for i := 0; i < frames; i++ {
				now := avtime.WorldTime(i) * unit
				if _, err := s.ReadChunkTimeAt(i, 1200, int64(i), now, now); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	io := st.IOStats()
	if io.Scheduled+io.Demand == 0 {
		t.Error("no reads went through the scheduler")
	}
}
