package storage

import (
	"fmt"
	"testing"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
)

// benchClip builds a small raw clip without testing.T plumbing.
func benchClip(b *testing.B, frames int) *media.VideoValue {
	b.Helper()
	v := media.NewVideoValue(media.TypeRawVideo30, 40, 30, 8) // 1200 B/frame
	for i := 0; i < frames; i++ {
		if err := v.AppendFrame(media.NewFrame(40, 30, 8)); err != nil {
			b.Fatal(err)
		}
	}
	return v
}

// BenchmarkIOSchedFlush isolates the scheduler itself: one op is a full
// round — submit every stream's request, then flush — with no stream or
// store plumbing around it.  Arms cross batch width (narrow: 2 streams,
// wide: 16) with disk fan-out (1 or 4) and pool temperature: warm reuses
// one scheduler so the round buffers recycle, cold builds a fresh
// scheduler every op, paying the free-list warmup the sync.Pool
// spillover is meant to absorb.  ReportAllocs pins the warm arms at
// zero.
func BenchmarkIOSchedFlush(b *testing.B) {
	unit := media.TypeRawVideo30.Rate.UnitDuration()
	for _, wide := range []struct {
		name    string
		streams int
	}{{"narrow", 2}, {"wide", 16}} {
		for _, nDisks := range []int{1, 4} {
			for _, pool := range []string{"warm", "cold"} {
				name := fmt.Sprintf("%s-%ddisk-%s", wide.name, nDisks, pool)
				b.Run(name, func(b *testing.B) {
					disks := make([]*device.Disk, nDisks)
					for i := range disks {
						disks[i] = device.NewDisk(fmt.Sprintf("disk%d", i), 64_000_000,
							16*media.MBPerSecond, 10*avtime.Millisecond)
						if err := disks[i].SetGeometry(16, avtime.Millisecond); err != nil {
							b.Fatal(err)
						}
					}
					slots := make([]ioSlot, wide.streams)
					io := newIOSched(nil)
					round := int64(0)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if pool == "cold" {
							io = newIOSched(nil)
						}
						now := avtime.WorldTime(round) * unit
						for s := 0; s < wide.streams; s++ {
							io.submit(round, ioReq{
								sid: int64(s), chunk: i % 64, bytes: 1200,
								disk: disks[s%nDisks], track: (s*3 + i) % 16,
								rate: media.MBPerSecond, now: now,
								deadline: now + unit + avtime.WorldTime(s%4)*avtime.Millisecond,
								slot:     &slots[s],
							})
						}
						round++
						io.flushBefore(round)
					}
				})
			}
		}
	}
}

// BenchmarkStripedRead measures the host cost of the chunk-read path
// under the three storage configurations the stripe experiment compares:
// demand reads on one disk, demand reads over a stripe, and SCAN-EDF
// service rounds over a stripe.  Each op is a full pass of 8 streams
// over their clips — the scheduler's map/sort work happens on this path,
// so the benchmark bounds its overhead against the plain demand read.
func BenchmarkStripedRead(b *testing.B) {
	const (
		streams = 8
		frames  = 30
	)
	arms := []struct {
		name   string
		width  int
		policy StripePolicy
	}{
		{"single-demand", 1, StripePolicy{Seeks: true}},
		{"striped-demand", 4, StripePolicy{Seeks: true}},
		{"striped-scan-edf", 4, StripePolicy{Seeks: true, Rounds: true}},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			dm := device.NewManager()
			nDisks := arm.width
			for i := 0; i < nDisks; i++ {
				d := device.NewDisk(fmt.Sprintf("disk%d", i), 64_000_000,
					media.DataRate(streams)*media.MBPerSecond, 10*avtime.Millisecond)
				if err := d.SetGeometry(16, avtime.Millisecond); err != nil {
					b.Fatal(err)
				}
				if err := dm.Register(d); err != nil {
					b.Fatal(err)
				}
			}
			st := NewStore(dm)
			st.SetStriping(arm.policy)
			ss := make([]*Stream, streams)
			for j := 0; j < streams; j++ {
				clip := benchClip(b, frames)
				var seg *Segment
				var err error
				if arm.width > 1 {
					seg, err = st.PlaceStriped(clip, media.MBPerSecond, arm.width)
				} else {
					seg, err = st.Place(clip, "disk0")
				}
				if err != nil {
					b.Fatal(err)
				}
				if ss[j], _, err = st.OpenStream(seg.ID(), media.MBPerSecond); err != nil {
					b.Fatal(err)
				}
			}
			defer func() {
				for _, s := range ss {
					s.Close()
				}
			}()
			unit := media.TypeRawVideo30.Rate.UnitDuration()
			round := int64(0) // monotonic across iterations: rounds never rewind
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for t := 0; t < frames; t++ {
					now := avtime.WorldTime(round) * unit
					for _, s := range ss {
						if _, err := s.ReadChunkTimeAt(t, 1200, round, now, now); err != nil {
							b.Fatal(err)
						}
					}
					round++
				}
			}
		})
	}
}
