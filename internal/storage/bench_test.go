package storage

import (
	"fmt"
	"testing"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
)

// benchClip builds a small raw clip without testing.T plumbing.
func benchClip(b *testing.B, frames int) *media.VideoValue {
	b.Helper()
	v := media.NewVideoValue(media.TypeRawVideo30, 40, 30, 8) // 1200 B/frame
	for i := 0; i < frames; i++ {
		if err := v.AppendFrame(media.NewFrame(40, 30, 8)); err != nil {
			b.Fatal(err)
		}
	}
	return v
}

// BenchmarkStripedRead measures the host cost of the chunk-read path
// under the three storage configurations the stripe experiment compares:
// demand reads on one disk, demand reads over a stripe, and SCAN-EDF
// service rounds over a stripe.  Each op is a full pass of 8 streams
// over their clips — the scheduler's map/sort work happens on this path,
// so the benchmark bounds its overhead against the plain demand read.
func BenchmarkStripedRead(b *testing.B) {
	const (
		streams = 8
		frames  = 30
	)
	arms := []struct {
		name   string
		width  int
		policy StripePolicy
	}{
		{"single-demand", 1, StripePolicy{Seeks: true}},
		{"striped-demand", 4, StripePolicy{Seeks: true}},
		{"striped-scan-edf", 4, StripePolicy{Seeks: true, Rounds: true}},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			dm := device.NewManager()
			nDisks := arm.width
			for i := 0; i < nDisks; i++ {
				d := device.NewDisk(fmt.Sprintf("disk%d", i), 64_000_000,
					media.DataRate(streams)*media.MBPerSecond, 10*avtime.Millisecond)
				if err := d.SetGeometry(16, avtime.Millisecond); err != nil {
					b.Fatal(err)
				}
				if err := dm.Register(d); err != nil {
					b.Fatal(err)
				}
			}
			st := NewStore(dm)
			st.SetStriping(arm.policy)
			ss := make([]*Stream, streams)
			for j := 0; j < streams; j++ {
				clip := benchClip(b, frames)
				var seg *Segment
				var err error
				if arm.width > 1 {
					seg, err = st.PlaceStriped(clip, media.MBPerSecond, arm.width)
				} else {
					seg, err = st.Place(clip, "disk0")
				}
				if err != nil {
					b.Fatal(err)
				}
				if ss[j], _, err = st.OpenStream(seg.ID(), media.MBPerSecond); err != nil {
					b.Fatal(err)
				}
			}
			defer func() {
				for _, s := range ss {
					s.Close()
				}
			}()
			unit := media.TypeRawVideo30.Rate.UnitDuration()
			round := int64(0) // monotonic across iterations: rounds never rewind
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for t := 0; t < frames; t++ {
					now := avtime.WorldTime(round) * unit
					for _, s := range ss {
						if _, err := s.ReadChunkTimeAt(t, 1200, round, now, now); err != nil {
							b.Fatal(err)
						}
					}
					round++
				}
			}
		})
	}
}
