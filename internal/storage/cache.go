package storage

// cache.go declares the chunk-caching policy and stats behind
// Stream.ReadChunkTime.  The model: a stream has bandwidth reserved on
// its device whether or not the consumer is reading this instant, so
// the device can work ahead, staging the next few chunks overlapped
// with the playback interval the consumer spends presenting the current
// one.  A staged (resident) chunk then costs the consumer zero device
// time; only demand misses — the first read, seeks, jumps past the
// lookahead window — pay the full read cost.
//
// Residency is store-wide, not per stream: CachePolicy configures the
// shared buffer pool in pool.go, keyed by (segment, chunk), so
// co-admitted sessions of the same clip hit chunks their neighbors
// staged.  Determinism under parallel lanes comes from the pool's
// snapshot/commit discipline — ticks read committed residency and stage
// their mutations, applied in (stream, program-order) sequence at the
// round barrier — not from isolation.  A single stream over the pool
// behaves exactly like the retired per-stream LRU (the differential
// suite holds it to that oracle), and the zero CachePolicy still
// disables caching entirely, so uncached read costs and goldens are
// untouched.

// CachePolicy configures chunk caching for streams opened from a store.
// The zero value disables caching, preserving the uncached read costs.
// A non-zero policy sizes the store's shared buffer pool: the pool
// holds Capacity chunks per attached stream.
type CachePolicy struct {
	Capacity  int // pool chunks per attached stream; <= 0 disables caching
	Lookahead int // chunks staged past each demand miss
}

// Enabled reports whether the policy caches at all.
func (p CachePolicy) Enabled() bool { return p.Capacity > 0 }

// CacheStats summarizes cache behavior — per stream on
// Stream.CacheStats, pool-wide on Store.PoolStats.  Under scheduled
// (staged) reads, evictions happen at the round commit and are
// accounted to the pool aggregate, not to individual streams.
type CacheStats struct {
	Hits       int64 // reads served from resident chunks at zero device cost
	Misses     int64 // demand reads that paid the device
	Shared     int64 // hits on chunks some other stream made resident
	Prefetched int64 // chunks staged by lookahead
	Evicted    int64 // chunks dropped to respect capacity
}

// PoolStats snapshots the shared buffer pool: the aggregate stats over
// every stream that ever attached (they survive stream close) plus the
// pool's current occupancy.
type PoolStats struct {
	CacheStats
	Resident int // chunks currently resident
	Capacity int // Capacity × attached streams
	Streams  int // streams currently attached
}
