package storage

// cache.go implements the per-stream chunk cache and lookahead
// prefetcher behind Stream.ReadChunkTime.  The model: a stream has
// bandwidth reserved on its device whether or not the consumer is
// reading this instant, so the device can work ahead, staging the next
// few chunks overlapped with the playback interval the consumer spends
// presenting the current one.  A staged (resident) chunk then costs the
// consumer zero device time; only demand misses — the first read, seeks,
// jumps past the lookahead window — pay the full read cost.
//
// Caches are per stream, not shared across the store: two wavefront
// lanes reading the same device must not race on eviction order, and a
// per-stream cache keeps ReadChunkTime deterministic for a given access
// sequence regardless of how many executor lanes are active.

import "container/list"

// CachePolicy configures chunk caching for streams opened from a store.
// The zero value disables caching, preserving the uncached read costs.
type CachePolicy struct {
	Capacity  int // chunks retained per stream; <= 0 disables the cache
	Lookahead int // chunks staged past each demand miss
}

// Enabled reports whether the policy caches at all.
func (p CachePolicy) Enabled() bool { return p.Capacity > 0 }

// CacheStats summarizes one stream's cache behavior.
type CacheStats struct {
	Hits       int64 // reads served from resident chunks at zero device cost
	Misses     int64 // demand reads that paid the device
	Prefetched int64 // chunks staged by lookahead
	Evicted    int64 // chunks dropped to respect Capacity
}

// chunkCache is an LRU set of resident chunk indices for one stream.
// It is guarded by the owning Stream's mutex and tracks only residency:
// chunk bytes live in the stored media value, so there is nothing to
// copy — residency alone decides whether a read costs device time.
type chunkCache struct {
	policy   CachePolicy
	order    *list.List // front = most recently used; element values are chunk indices
	resident map[int]*list.Element
	stats    CacheStats
}

func newChunkCache(p CachePolicy) *chunkCache {
	return &chunkCache{
		policy:   p,
		order:    list.New(),
		resident: make(map[int]*list.Element, p.Capacity),
	}
}

func (c *chunkCache) contains(idx int) bool {
	_, ok := c.resident[idx]
	return ok
}

func (c *chunkCache) touch(idx int) {
	if el, ok := c.resident[idx]; ok {
		c.order.MoveToFront(el)
	}
}

// insert makes idx resident, evicting least-recently-used indices to
// respect Capacity, and reports how many were evicted.
func (c *chunkCache) insert(idx int) int {
	if el, ok := c.resident[idx]; ok {
		c.order.MoveToFront(el)
		return 0
	}
	c.resident[idx] = c.order.PushFront(idx)
	evicted := 0
	for c.order.Len() > c.policy.Capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.resident, back.Value.(int))
		evicted++
	}
	return evicted
}
