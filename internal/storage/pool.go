package storage

// pool.go implements the store-level shared buffer pool behind
// Stream.ReadChunkTime: residency is keyed by (segment, chunk), so
// co-admitted sessions of the same clip hit each other's chunks instead
// of each paying the device for bytes a neighbor staged moments ago.
//
// Determinism under parallel execution follows the engine's
// snapshot/commit playbook (DESIGN.md §15).  During a tick, lanes only
// READ committed residency; every mutation — the LRU touch behind a
// hit, the inserts behind a miss's fill — is staged as a poolOp tagged
// (pid, seq, round).  The first read of a later round commits every op
// of earlier rounds, applying them sorted by (pid, seq): pid is the
// pool-attach order of the stream and seq the stream's own program
// order, so the applied sequence is identical no matter which lanes
// staged first, and any Workers/EngineWorkers count leaves residency,
// eviction order and every counter byte-identical to serial.  Reads
// with round < 0 (no tick context) apply their ops immediately, which
// is exactly the retired per-stream LRU's behavior; the differential
// harness in pool_differential_test.go holds the pool to that oracle.
//
// The warm hit path — commit watermark check, one map probe, staging
// one touch — performs zero heap allocations (TestPoolHitAllocs): the
// LRU is intrusive (index-linked entries in a flat slice with a free
// list), staged ops land in a retained buffer, and the commit sorter is
// a pointer receiver so sort.Sort boxes no value.
//
// Capacity scales with attachment: the pool holds policy.Capacity
// chunks per attached stream, so one stream sees exactly the old
// per-stream capacity and N co-admitted streams share an N-times-larger
// pool.  Detaching shrinks it back, evicting coldest-first.

import (
	"sort"
	"sync"

	"avdb/internal/obs"
)

// poolKey identifies one resident chunk store-wide.
type poolKey struct {
	seg   SegID
	chunk int
}

// poolOpKind distinguishes staged residency mutations.
type poolOpKind uint8

const (
	opTouch  poolOpKind = iota // LRU bump behind a hit
	opInsert                   // make resident (bump if already resident)
)

// poolOp is one staged residency mutation, ordered by (pid, seq) at
// commit so the applied sequence is submission-order independent.
type poolOp struct {
	pid   int64
	seq   int64
	round int64
	key   poolKey
	kind  poolOpKind
}

// poolEntry is one resident chunk in the intrusive LRU: entries live in
// a flat slice and link by index, so residency churn recycles slots
// through a free list instead of allocating nodes.
type poolEntry struct {
	key        poolKey
	pid        int64 // stream that made the chunk resident
	prev, next int32 // LRU links; poolNil terminates
}

const poolNil = int32(-1)

// opSorter orders staged ops by (pid, seq) for the commit; it is a
// retained field so sort.Sort gets an existing pointer and the commit
// allocates nothing.
type opSorter struct{ ops []poolOp }

func (s *opSorter) Len() int      { return len(s.ops) }
func (s *opSorter) Swap(i, j int) { s.ops[i], s.ops[j] = s.ops[j], s.ops[i] }
func (s *opSorter) Less(i, j int) bool {
	if s.ops[i].pid != s.ops[j].pid {
		return s.ops[i].pid < s.ops[j].pid
	}
	return s.ops[i].seq < s.ops[j].seq
}

// bufferPool is the store-level shared residency set.
type bufferPool struct {
	policy CachePolicy

	mu       sync.Mutex
	sink     obs.Sink
	entries  []poolEntry
	freeIdx  []int32
	resident map[poolKey]int32
	head     int32 // most recently used
	tail     int32 // least recently used
	streams  int   // attached streams
	capacity int   // policy.Capacity per attached stream
	nextPID  int64
	staged   []poolOp
	commit   opSorter // retained apply buffer for one commit
	flushed  int64    // rounds below this are applied
	agg      CacheStats
}

func newBufferPool(p CachePolicy, sink obs.Sink) *bufferPool {
	return &bufferPool{
		policy:   p,
		sink:     sink,
		resident: make(map[poolKey]int32, p.Capacity),
		head:     poolNil,
		tail:     poolNil,
	}
}

func (p *bufferPool) setSink(s obs.Sink) {
	p.mu.Lock()
	p.sink = s
	p.mu.Unlock()
}

// attach registers a stream, growing capacity; the returned pid orders
// the stream's staged ops against other streams'.
func (p *bufferPool) attach() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.streams++
	p.capacity = p.policy.Capacity * p.streams
	pid := p.nextPID
	p.nextPID++
	return pid
}

// detach unregisters a stream, shrinking capacity and evicting the
// coldest chunks beyond it.  The aggregate stats survive: closing a
// stream no longer discards its cache history.
func (p *bufferPool) detach() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.streams > 0 {
		p.streams--
	}
	p.capacity = p.policy.Capacity * p.streams
	if n := p.evictOverLocked(); n > 0 {
		p.agg.Evicted += int64(n)
		if p.sink != nil {
			p.sink.Count("storage.pool.evicted", int64(n))
		}
	}
}

// read consults committed residency for key at the given round,
// counting a hit and staging its LRU touch.  round >= 0 first commits
// every earlier round's staged ops; round < 0 applies the touch
// immediately (the no-tick-context demand path).  shared reports a hit
// on a chunk some other stream made resident.
func (p *bufferPool) read(pid int64, seq *int64, key poolKey, round int64) (hit, shared bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if round >= 0 {
		p.commitLocked(round)
	}
	i, ok := p.resident[key]
	if !ok {
		return false, false
	}
	shared = p.entries[i].pid != pid
	p.agg.Hits++
	if shared {
		p.agg.Shared++
	}
	if round >= 0 {
		p.staged = append(p.staged, poolOp{pid: pid, seq: *seq, round: round, key: key, kind: opTouch})
		*seq++
	} else {
		p.moveFrontLocked(i)
	}
	if p.sink != nil {
		p.sink.Count("storage.pool.hits", 1)
		if shared {
			p.sink.Count("storage.pool.shared_hits", 1)
		}
	}
	return true, shared
}

// touchOwn counts a hit on a chunk this stream staged earlier in the
// same round (its fill window): the insert is not committed yet, so the
// resident map cannot see it, but the bytes are as staged as any other
// prefetch.  The touch commits after the insert — same pid, later seq.
func (p *bufferPool) touchOwn(pid int64, seq *int64, key poolKey, round int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.agg.Hits++
	p.staged = append(p.staged, poolOp{pid: pid, seq: *seq, round: round, key: key, kind: opTouch})
	*seq++
	if p.sink != nil {
		p.sink.Count("storage.pool.hits", 1)
	}
}

// miss counts a demand read that paid the device.
func (p *bufferPool) miss() {
	p.mu.Lock()
	p.agg.Misses++
	sink := p.sink
	p.mu.Unlock()
	if sink != nil {
		sink.Count("storage.pool.misses", 1)
	}
}

// fill makes chunks idx..idx+lookahead of seg resident (bounded by
// limit, the segment's last chunk), staging the inserts at round >= 0
// or applying them immediately at round < 0.  It returns how many
// chunks beyond idx were newly staged and, in immediate mode, how many
// residents were evicted; staged-mode evictions happen at commit and
// are accounted to the store aggregate there.
func (p *bufferPool) fill(pid int64, seq *int64, seg SegID, idx, lookahead, limit int, round int64) (staged, evicted int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if round >= 0 {
		p.staged = append(p.staged, poolOp{pid: pid, seq: *seq, round: round, key: poolKey{seg: seg, chunk: idx}, kind: opInsert})
		*seq++
		for k := idx + 1; k <= idx+lookahead && k <= limit; k++ {
			if _, ok := p.resident[poolKey{seg: seg, chunk: k}]; ok {
				continue
			}
			p.staged = append(p.staged, poolOp{pid: pid, seq: *seq, round: round, key: poolKey{seg: seg, chunk: k}, kind: opInsert})
			*seq++
			staged++
		}
	} else {
		evicted += p.applyInsertLocked(poolKey{seg: seg, chunk: idx}, pid)
		for k := idx + 1; k <= idx+lookahead && k <= limit; k++ {
			if _, ok := p.resident[poolKey{seg: seg, chunk: k}]; ok {
				continue
			}
			evicted += p.applyInsertLocked(poolKey{seg: seg, chunk: k}, pid)
			staged++
		}
	}
	p.agg.Prefetched += int64(staged)
	p.agg.Evicted += int64(evicted)
	if p.sink != nil {
		if staged > 0 {
			p.sink.Count("storage.pool.prefetched", int64(staged))
		}
		if evicted > 0 {
			p.sink.Count("storage.pool.evicted", int64(evicted))
		}
	}
	return staged, evicted
}

// commitLocked applies every staged op of rounds below round, sorted by
// (pid, seq).  The caller's tick barrier guarantees those rounds are
// complete, so the applied set — and therefore residency and eviction
// order — is independent of which lane triggers the commit; p.mu is
// held.
func (p *bufferPool) commitLocked(round int64) {
	if round <= p.flushed {
		return
	}
	p.flushed = round
	if len(p.staged) == 0 {
		return
	}
	apply := p.commit.ops[:0]
	keep := 0
	for _, op := range p.staged {
		if op.round < round {
			apply = append(apply, op)
		} else {
			p.staged[keep] = op
			keep++
		}
	}
	p.staged = p.staged[:keep]
	p.commit.ops = apply
	sort.Sort(&p.commit)
	evicted := 0
	for _, op := range p.commit.ops {
		switch op.kind {
		case opTouch:
			if i, ok := p.resident[op.key]; ok {
				p.moveFrontLocked(i)
			}
		case opInsert:
			evicted += p.applyInsertLocked(op.key, op.pid)
		}
	}
	p.commit.ops = p.commit.ops[:0]
	if evicted > 0 {
		p.agg.Evicted += int64(evicted)
		if p.sink != nil {
			p.sink.Count("storage.pool.evicted", int64(evicted))
		}
	}
}

// applyInsertLocked makes key resident attributed to pid, evicting the
// coldest residents beyond capacity; a key already resident is bumped
// and keeps its original inserter.  Returns the evictions; p.mu held.
func (p *bufferPool) applyInsertLocked(key poolKey, pid int64) int {
	if i, ok := p.resident[key]; ok {
		p.moveFrontLocked(i)
		return 0
	}
	var i int32
	if n := len(p.freeIdx); n > 0 {
		i = p.freeIdx[n-1]
		p.freeIdx = p.freeIdx[:n-1]
	} else {
		p.entries = append(p.entries, poolEntry{})
		i = int32(len(p.entries) - 1)
	}
	p.entries[i] = poolEntry{key: key, pid: pid, prev: poolNil, next: p.head}
	if p.head != poolNil {
		p.entries[p.head].prev = i
	}
	p.head = i
	if p.tail == poolNil {
		p.tail = i
	}
	p.resident[key] = i
	return p.evictOverLocked()
}

// evictOverLocked drops least-recently-used residents until the pool
// fits its capacity; p.mu is held.
func (p *bufferPool) evictOverLocked() int {
	evicted := 0
	for len(p.resident) > p.capacity {
		t := p.tail
		if t == poolNil {
			break
		}
		delete(p.resident, p.entries[t].key)
		p.tail = p.entries[t].prev
		if p.tail != poolNil {
			p.entries[p.tail].next = poolNil
		} else {
			p.head = poolNil
		}
		p.entries[t] = poolEntry{prev: poolNil, next: poolNil}
		p.freeIdx = append(p.freeIdx, t)
		evicted++
	}
	return evicted
}

// moveFrontLocked bumps entry i to most recently used; p.mu is held.
func (p *bufferPool) moveFrontLocked(i int32) {
	if p.head == i {
		return
	}
	e := &p.entries[i]
	if e.prev != poolNil {
		p.entries[e.prev].next = e.next
	}
	if e.next != poolNil {
		p.entries[e.next].prev = e.prev
	}
	if p.tail == i {
		p.tail = e.prev
	}
	e.prev, e.next = poolNil, p.head
	if p.head != poolNil {
		p.entries[p.head].prev = i
	}
	p.head = i
	if p.tail == poolNil {
		p.tail = i
	}
}

// residentCount reports how many chunks are resident.
func (p *bufferPool) residentCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.resident)
}

// stats snapshots the pool's aggregate behavior.
func (p *bufferPool) stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		CacheStats: p.agg,
		Resident:   len(p.resident),
		Capacity:   p.capacity,
		Streams:    p.streams,
	}
}
