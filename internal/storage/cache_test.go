package storage

import (
	"strings"
	"sync"
	"testing"

	"avdb/internal/media"
	"avdb/internal/obs"
)

func cachedStream(t *testing.T, p CachePolicy, frames int) *Stream {
	t.Helper()
	_, st := testRig(t)
	st.SetCachePolicy(p)
	seg, err := st.Place(clip(t, frames), "disk0")
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestCachePolicyAccessors(t *testing.T) {
	_, st := testRig(t)
	if st.CachePolicy().Enabled() {
		t.Error("zero policy should be disabled")
	}
	p := CachePolicy{Capacity: 8, Lookahead: 2}
	st.SetCachePolicy(p)
	if got := st.CachePolicy(); got != p {
		t.Errorf("CachePolicy = %+v, want %+v", got, p)
	}
}

func TestReadChunkTimeWithoutPolicyMatchesReadTime(t *testing.T) {
	_, st := testRig(t)
	seg, err := st.Place(clip(t, 20), "disk0")
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 5; i++ {
		ta, err := a.ReadChunkTime(i, 1200)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := b.ReadTime(1200)
		if err != nil {
			t.Fatal(err)
		}
		if ta != tb {
			t.Fatalf("chunk %d: ReadChunkTime=%v, ReadTime=%v", i, ta, tb)
		}
	}
	if a.CacheStats() != (CacheStats{}) {
		t.Errorf("no-policy stream reported cache stats: %+v", a.CacheStats())
	}
}

func TestCacheLookaheadServesSequentialReads(t *testing.T) {
	s := cachedStream(t, CachePolicy{Capacity: 8, Lookahead: 4}, 30)
	// First read: demand miss — pays the device (startup + transfer) and
	// stages the next 4 chunks.
	t0, err := s.ReadChunkTime(0, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if t0 == 0 {
		t.Fatal("first read cannot be a hit")
	}
	// Chunks 1..4 were prefetched: zero device time.
	for i := 1; i <= 4; i++ {
		dt, err := s.ReadChunkTime(i, 1200)
		if err != nil {
			t.Fatal(err)
		}
		if dt != 0 {
			t.Errorf("chunk %d: prefetched read cost %v, want 0", i, dt)
		}
	}
	// Chunk 5 lies past the window: demand miss again.
	t5, err := s.ReadChunkTime(5, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if t5 == 0 {
		t.Error("chunk 5 should miss")
	}
	cs := s.CacheStats()
	if cs.Hits != 4 || cs.Misses != 2 {
		t.Errorf("stats = %+v, want 4 hits / 2 misses", cs)
	}
	if cs.Prefetched != 8 {
		t.Errorf("prefetched = %d, want 8 (4 per miss)", cs.Prefetched)
	}
	if s.BytesRead() != 6*1200 {
		t.Errorf("BytesRead = %d, want %d (hits count toward the stream)", s.BytesRead(), 6*1200)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Capacity 3, lookahead 0: reads 0,1,2 fill the cache; reading 3
	// evicts 0 (least recently used); re-reading 0 misses again.
	s := cachedStream(t, CachePolicy{Capacity: 3, Lookahead: 0}, 30)
	for i := 0; i < 4; i++ {
		if _, err := s.ReadChunkTime(i, 1200); err != nil {
			t.Fatal(err)
		}
	}
	if dt, err := s.ReadChunkTime(1, 1200); err != nil || dt != 0 {
		t.Errorf("chunk 1 should still be resident: dt=%v err=%v", dt, err)
	}
	if dt, err := s.ReadChunkTime(0, 1200); err != nil || dt == 0 {
		t.Errorf("chunk 0 should have been evicted: dt=%v err=%v", dt, err)
	}
	cs := s.CacheStats()
	if cs.Evicted == 0 {
		t.Error("no evictions recorded")
	}
}

func TestCachePrefetchStopsAtSegmentEnd(t *testing.T) {
	s := cachedStream(t, CachePolicy{Capacity: 16, Lookahead: 10}, 5)
	if _, err := s.ReadChunkTime(3, 1200); err != nil {
		t.Fatal(err)
	}
	cs := s.CacheStats()
	if cs.Prefetched != 1 {
		t.Errorf("prefetched = %d, want 1 (only chunk 4 exists past 3)", cs.Prefetched)
	}
}

func TestCacheDeterministicAcrossRuns(t *testing.T) {
	run := func() ([]int64, CacheStats) {
		s := cachedStream(t, CachePolicy{Capacity: 6, Lookahead: 3}, 40)
		var costs []int64
		for _, idx := range []int{0, 1, 2, 3, 4, 10, 11, 2, 12, 13, 14} {
			dt, err := s.ReadChunkTime(idx, 1200)
			if err != nil {
				t.Fatal(err)
			}
			costs = append(costs, int64(dt))
		}
		return costs, s.CacheStats()
	}
	c1, s1 := run()
	c2, s2 := run()
	if s1 != s2 {
		t.Errorf("cache stats diverged: %+v vs %+v", s1, s2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Errorf("read %d cost diverged: %d vs %d", i, c1[i], c2[i])
		}
	}
}

func TestCacheMetricsThroughSink(t *testing.T) {
	_, st := testRig(t)
	col := obs.NewCollector()
	st.SetSink(col)
	st.SetCachePolicy(CachePolicy{Capacity: 4, Lookahead: 2})
	seg, err := st.Place(clip(t, 20), "disk0")
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 6; i++ {
		if _, err := s.ReadChunkTime(i, 1200); err != nil {
			t.Fatal(err)
		}
	}
	text := col.Snapshot().MetricsText()
	for _, metric := range []string{"storage.pool.hits", "storage.pool.misses", "storage.pool.prefetched"} {
		if !strings.Contains(text, metric) {
			t.Errorf("metrics missing %s:\n%s", metric, text)
		}
	}
}

func TestCacheConcurrentStreamsRace(t *testing.T) {
	// Several streams over segments on one device, read concurrently —
	// the wavefront executor's lanes do exactly this.  Run under -race.
	_, st := testRig(t)
	st.SetSink(obs.NewCollector())
	st.SetCachePolicy(CachePolicy{Capacity: 8, Lookahead: 4})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		seg, err := st.Place(clip(t, 50), "disk0")
		if err != nil {
			t.Fatal(err)
		}
		s, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		wg.Add(2)
		// Two goroutines per stream: the cache must also tolerate a
		// single stream shared across lanes.
		for g := 0; g < 2; g++ {
			go func(s *Stream, off int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if _, err := s.ReadChunkTime((i+off)%50, 1200); err != nil {
						t.Error(err)
						return
					}
				}
			}(s, g*25)
		}
	}
	wg.Wait()
}
