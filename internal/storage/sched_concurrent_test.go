package storage

// sched_concurrent_test.go extends TestSubmitOrderIndependence to the
// sharded engine's actual access pattern: sessions on different engine
// workers submitting into the same round from different goroutines.
// Order independence (the SCAN-EDF key is total) plus io.mu on every
// shared-state touch means the interleaving must be invisible — the
// service trace, head walks and counters after the flush have to match
// a sequential submission of the same round byte for byte.  Run under
// -race this is also the data-race proof for cross-session submits.

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentSubmitDeterminism submits one round's requests from
// several goroutines at once — a different random partition every
// trial — then flushes and compares the full observable state against
// a single-goroutine baseline.
func TestConcurrentSubmitDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const streams = 24
	reqs := make([]byte, 0, 9*streams)
	for i := 0; i < streams; i++ {
		reqs = append(reqs, 0) // submit op
		operands := make([]byte, 8)
		rng.Read(operands)
		reqs = append(reqs, operands...)
	}
	decode := func(h *diffHarness, i int) ioReq {
		c := &byteCursor{data: reqs[9*i+1 : 9*(i+1)]}
		q := h.reqFrom(c)
		// One submission per stream per round, exactly what the engine's
		// commit barrier guarantees; distinct sids keep same-round
		// replacement (last-writer-wins by design) out of the picture.
		q.sid = int64(i)
		q.slot = nil
		return q
	}
	run := func(goroutines int) ([]svcEvent, IOStats) {
		h := newDiffHarness(t)
		if goroutines <= 1 {
			for i := 0; i < streams; i++ {
				h.neu.submit(h.cur, decode(h, i))
			}
		} else {
			// Deal the streams into per-goroutine hands, shuffled so the
			// racing submission orders differ across trials.
			order := rng.Perm(streams)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := g; i < streams; i += goroutines {
						h.neu.submit(h.cur, decode(h, order[i]))
					}
				}(g)
			}
			wg.Wait()
		}
		h.cur += 2
		h.neu.flushBefore(h.cur)
		return h.newTrace, h.neu.Stats()
	}

	wantTrace, wantStats := run(1)
	for trial := 0; trial < 8; trial++ {
		for _, goroutines := range []int{2, 4, 8} {
			trace, stats := run(goroutines)
			if stats != wantStats {
				t.Fatalf("trial %d, %d goroutines: stats depend on submission interleaving:\ngot  %+v\nwant %+v",
					trial, goroutines, stats, wantStats)
			}
			if len(trace) != len(wantTrace) {
				t.Fatalf("trial %d, %d goroutines: trace length diverged: %d vs %d",
					trial, goroutines, len(trace), len(wantTrace))
			}
			for i := range trace {
				if trace[i] != wantTrace[i] {
					t.Fatalf("trial %d, %d goroutines: service order diverged at event %d:\ngot  %+v\nwant %+v",
						trial, goroutines, i, trace[i], wantTrace[i])
				}
			}
		}
	}
}
