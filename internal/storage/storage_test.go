package storage

import (
	"errors"
	"strings"
	"testing"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
)

func testRig(t *testing.T) (*device.Manager, *Store) {
	t.Helper()
	dm := device.NewManager()
	for _, d := range []device.Device{
		device.NewDisk("disk0", 1_000_000, 10*media.MBPerSecond, 10*avtime.Millisecond),
		device.NewDisk("disk1", 500_000, 5*media.MBPerSecond, 10*avtime.Millisecond),
		device.NewJukebox("jb0", 3, 10_000_000, 1*media.MBPerSecond, 5*avtime.Second),
		device.NewUnit("dac0", device.KindDAC, media.MBPerSecond, true),
	} {
		if err := dm.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	return dm, NewStore(dm)
}

func clip(t *testing.T, frames int) *media.VideoValue {
	t.Helper()
	v := media.NewVideoValue(media.TypeRawVideo30, 40, 30, 8) // 1200 B/frame
	for i := 0; i < frames; i++ {
		if err := v.AppendFrame(media.NewFrame(40, 30, 8)); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

func TestPlaceOnDisk(t *testing.T) {
	dm, st := testRig(t)
	v := clip(t, 100) // 120 KB
	seg, err := st.Place(v, "disk0")
	if err != nil {
		t.Fatal(err)
	}
	if seg.Device() != "disk0" || seg.Size() != 120_000 || seg.Disc() != -1 {
		t.Errorf("segment = %v", seg)
	}
	if seg.Value() != media.Value(v) {
		t.Error("value lost")
	}
	d, _ := dm.Get("disk0")
	if d.(*device.Disk).Used() != 120_000 {
		t.Error("space not accounted")
	}
	if got, ok := st.Get(seg.ID()); !ok || got != seg {
		t.Error("Get failed")
	}
	if ids := st.Segments(); len(ids) != 1 || ids[0] != seg.ID() {
		t.Errorf("Segments = %v", ids)
	}
	if !strings.Contains(seg.String(), "disk0") {
		t.Errorf("String = %q", seg.String())
	}
	if seg.ID().String() != "seg:1" {
		t.Errorf("SegID String = %q", seg.ID())
	}
}

func TestPlaceErrors(t *testing.T) {
	_, st := testRig(t)
	v := clip(t, 100)
	if _, err := st.Place(v, "nope"); err == nil {
		t.Error("place on missing device accepted")
	}
	if _, err := st.Place(v, "jb0"); err == nil {
		t.Error("disk place on jukebox accepted")
	}
	if _, err := st.Place(v, "dac0"); err == nil {
		t.Error("place on DAC accepted")
	}
	// Capacity exhaustion.
	big := clip(t, 900) // 1.08 MB > 1 MB
	if _, err := st.Place(big, "disk0"); !errors.Is(err, device.ErrCapacity) {
		t.Errorf("oversize place error = %v", err)
	}
	if _, err := st.PlaceOnDisc(v, "disk0", 0); err == nil {
		t.Error("disc place on disk accepted")
	}
	if _, err := st.PlaceOnDisc(v, "jb0", 99); err == nil {
		t.Error("place on missing disc accepted")
	}
}

func TestPlaceAutoPicksRoomiestQualifyingDisk(t *testing.T) {
	_, st := testRig(t)
	seg, err := st.PlaceAuto(clip(t, 100), media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Device() != "disk0" { // most free space
		t.Errorf("auto placement chose %s", seg.Device())
	}
	// Demand more bandwidth than disk1 has after loading disk0.
	d0, _ := st.Devices().Get("disk0")
	if err := d0.(*device.Disk).Reserve(10 * media.MBPerSecond); err != nil {
		t.Fatal(err)
	}
	seg2, err := st.PlaceAuto(clip(t, 100), media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	if seg2.Device() != "disk1" {
		t.Errorf("auto placement chose %s, want disk1 (disk0 saturated)", seg2.Device())
	}
	// Impossible demands fail.
	if _, err := st.PlaceAuto(clip(t, 100), 100*media.MBPerSecond); err == nil {
		t.Error("unsatisfiable auto placement accepted")
	}
}

func TestDeleteFreesSpace(t *testing.T) {
	dm, st := testRig(t)
	seg, err := st.Place(clip(t, 100), "disk0")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(seg.ID()); err != nil {
		t.Fatal(err)
	}
	d, _ := dm.Get("disk0")
	if d.(*device.Disk).Used() != 0 {
		t.Error("delete did not free space")
	}
	if err := st.Delete(seg.ID()); err == nil {
		t.Error("double delete accepted")
	}
	// Jukebox segments free their disc.
	jseg, err := st.PlaceOnDisc(clip(t, 100), "jb0", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(jseg.ID()); err != nil {
		t.Fatal(err)
	}
}

func TestMoveCostsFullCopy(t *testing.T) {
	_, st := testRig(t)
	seg, err := st.Place(clip(t, 100), "disk0") // 120 KB
	if err != nil {
		t.Fatal(err)
	}
	dt, err := st.Move(seg.ID(), "disk1")
	if err != nil {
		t.Fatal(err)
	}
	// Read at 10MB/s: 12ms + 10ms seek; write at 5MB/s: 24ms + 10ms seek.
	want := 22*avtime.Millisecond + 34*avtime.Millisecond
	if dt != want {
		t.Errorf("move time = %v, want %v", dt, want)
	}
	if seg.Device() != "disk1" {
		t.Error("move did not relocate")
	}
	// Moving to the same device is free.
	dt, err = st.Move(seg.ID(), "disk1")
	if err != nil || dt != 0 {
		t.Errorf("same-device move = %v, %v", dt, err)
	}
	// Source space freed, destination charged.
	d0, _ := st.Devices().Get("disk0")
	d1, _ := st.Devices().Get("disk1")
	if d0.(*device.Disk).Used() != 0 || d1.(*device.Disk).Used() != 120_000 {
		t.Error("move accounting wrong")
	}
	if _, err := st.Move(SegID(999), "disk0"); err == nil {
		t.Error("move of missing segment accepted")
	}
	if _, err := st.Move(seg.ID(), "jb0"); err == nil {
		t.Error("move to jukebox accepted")
	}
}

func TestMoveFromJukeboxIncludesSwap(t *testing.T) {
	_, st := testRig(t)
	seg, err := st.PlaceOnDisc(clip(t, 100), "jb0", 2)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := st.Move(seg.ID(), "disk0")
	if err != nil {
		t.Fatal(err)
	}
	// Swap 5s + read 120KB at 1MB/s = 120ms; write 12ms + 10ms seek.
	want := 5*avtime.Second + 120*avtime.Millisecond + 22*avtime.Millisecond
	if dt != want {
		t.Errorf("jukebox move time = %v, want %v", dt, want)
	}
	if seg.Disc() != -1 {
		t.Error("disc not cleared after move")
	}
}

func TestOpenStreamReservesBandwidth(t *testing.T) {
	_, st := testRig(t)
	seg, err := st.Place(clip(t, 100), "disk0")
	if err != nil {
		t.Fatal(err)
	}
	s1, startup, err := st.OpenStream(seg.ID(), 6*media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	if startup != 10*avtime.Millisecond {
		t.Errorf("startup = %v, want one seek", startup)
	}
	// Admission: a second 6MB/s stream exceeds the 10MB/s disk.
	if _, _, err := st.OpenStream(seg.ID(), 6*media.MBPerSecond); !errors.Is(err, device.ErrBandwidth) {
		t.Errorf("over-subscribed stream error = %v", err)
	}
	dt, err := s1.ReadTime(600_000)
	if err != nil {
		t.Fatal(err)
	}
	// 600KB at 6MB/s plus the 10ms startup seek charged to the first
	// read.
	if dt != 110*avtime.Millisecond {
		t.Errorf("first ReadTime = %v", dt)
	}
	// Subsequent reads pay no startup.
	dt, err = s1.ReadTime(600_000)
	if err != nil {
		t.Fatal(err)
	}
	if dt != 100*avtime.Millisecond {
		t.Errorf("second ReadTime = %v", dt)
	}
	if s1.BytesRead() != 1_200_000 || s1.Rate() != 6*media.MBPerSecond || s1.Segment() != seg {
		t.Error("stream accounting wrong")
	}
	if _, err := s1.ReadTime(-1); err == nil {
		t.Error("negative read accepted")
	}
	s1.Close()
	s1.Close() // no-op
	if _, err := s1.ReadTime(1); err == nil {
		t.Error("read on closed stream accepted")
	}
	// Bandwidth released.
	if s2, _, err := st.OpenStream(seg.ID(), 10*media.MBPerSecond); err != nil {
		t.Errorf("full-rate stream after close failed: %v", err)
	} else {
		s2.Close()
	}
}

func TestOpenStreamOnJukeboxPaysSwap(t *testing.T) {
	_, st := testRig(t)
	seg, err := st.PlaceOnDisc(clip(t, 100), "jb0", 1)
	if err != nil {
		t.Fatal(err)
	}
	s, startup, err := st.OpenStream(seg.ID(), media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if startup != 5*avtime.Second {
		t.Errorf("jukebox startup = %v, want 5s swap", startup)
	}
	// Second open on the now-loaded disc costs nothing... but bandwidth
	// is exhausted (1 MB/s total), so it must fail instead.
	if _, _, err := st.OpenStream(seg.ID(), media.MBPerSecond); err == nil {
		t.Error("over-subscribed jukebox stream accepted")
	}
}

func TestOpenStreamErrors(t *testing.T) {
	_, st := testRig(t)
	seg, err := st.Place(clip(t, 10), "disk0")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.OpenStream(SegID(99), media.MBPerSecond); err == nil {
		t.Error("stream on missing segment accepted")
	}
	if _, _, err := st.OpenStream(seg.ID(), 0); err == nil {
		t.Error("zero-rate stream accepted")
	}
}
