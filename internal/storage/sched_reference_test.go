package storage

// sched_reference_test.go retains the PR 4-6 map+sort round scheduler
// verbatim as the differential oracle for the flat, allocation-free
// IOSched in sched.go.  The two must produce byte-identical service
// orders, seek charges, results and storage.iosched.* metrics for any
// request stream; sched_differential_test.go and FuzzSCANEDFOrder hold
// them to it.  When touching sched.go, re-run the harness (and the
// fuzzer: go test -fuzz=FuzzSCANEDFOrder ./internal/storage) against
// this file — do not "modernize" the reference, its value is being the
// old code.
//
// The reference keeps the old per-sid results map and the old
// peek/take consumption protocol; the harness maps the new
// consumeNext/unconsume protocol onto it (see refDriver).

import (
	"sort"

	"avdb/internal/avtime"
	"avdb/internal/obs"
)

// refSched is the original nested-map scheduler: requests pile into
// round -> disk -> stream maps and every flush rebuilds and sorts each
// batch from scratch.
type refSched struct {
	sink     obs.Sink
	pending  map[int64]map[string]map[int64]ioReq // round -> disk -> stream -> request
	results  map[int64]ioResult                   // stream -> last serviced request
	heads    map[string]int                       // disk -> head track after last round
	flushed  int64                                // rounds below this are serviced
	stats    IOStats
	svcTrace *[]svcEvent
}

func newRefSched(sink obs.Sink) *refSched {
	return &refSched{
		sink:    sink,
		pending: make(map[int64]map[string]map[int64]ioReq),
		results: make(map[int64]ioResult),
		heads:   make(map[string]int),
	}
}

// Stats returns a snapshot of the counters.
func (io *refSched) Stats() IOStats { return io.stats }

// submit queues a request into the given round; same-round resubmission
// by one stream replaces the previous request.
func (io *refSched) submit(round int64, q ioReq) {
	if round < io.flushed {
		return
	}
	byDev := io.pending[round]
	if byDev == nil {
		byDev = make(map[string]map[int64]ioReq)
		io.pending[round] = byDev
	}
	bySid := byDev[q.disk.ID()]
	if bySid == nil {
		bySid = make(map[int64]ioReq)
		byDev[q.disk.ID()] = bySid
	}
	bySid[q.sid] = q
}

// flushBefore services every pending round strictly below round, in
// ascending order, disks in ID order.
func (io *refSched) flushBefore(round int64) {
	if round <= io.flushed {
		return
	}
	var due []int64
	for r := range io.pending {
		if r < round {
			due = append(due, r)
		}
	}
	io.flushed = round
	if len(due) == 0 {
		return
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, r := range due {
		byDev := io.pending[r]
		delete(io.pending, r)
		devs := make([]string, 0, len(byDev))
		for id := range byDev {
			devs = append(devs, id)
		}
		sort.Strings(devs)
		for _, id := range devs {
			io.service(id, byDev[id])
		}
		io.stats.Rounds++
		if io.sink != nil {
			io.sink.Count("storage.iosched.rounds", 1)
		}
	}
}

// service prices one disk's batch SCAN-EDF, rebuilding and sorting it
// from the stream map the way the old scheduler did every round.
func (io *refSched) service(devID string, bySid map[int64]ioReq) {
	batch := make([]ioReq, 0, len(bySid))
	for _, q := range bySid {
		batch = append(batch, q)
	}
	sort.Slice(batch, func(i, j int) bool {
		a, b := batch[i], batch[j]
		if a.deadline != b.deadline {
			return a.deadline < b.deadline
		}
		if a.track != b.track {
			return a.track < b.track
		}
		if a.sid != b.sid {
			return a.sid < b.sid
		}
		return a.chunk < b.chunk
	})
	pos := io.heads[devID]
	start := batch[0].now
	for _, q := range batch {
		if q.now < start {
			start = q.now
		}
	}
	var busy avtime.WorldTime
	var misses, charged, saved int64
	last := batch[len(batch)-1].deadline
	for i, q := range batch {
		var seek avtime.WorldTime
		if i == 0 || abs(q.track-pos) > 1 {
			seek = q.disk.SeekBetween(pos, q.track)
		}
		if seek > 0 {
			charged++
		} else {
			saved++
		}
		busy += seek + avtime.WorldTime(q.bytes*int64(avtime.Second)/int64(q.disk.TotalBandwidth()))
		if start+busy > q.deadline {
			misses++
		}
		cost := seek
		if q.rate > 0 {
			cost += avtime.WorldTime(q.bytes * int64(avtime.Second) / int64(q.rate))
		}
		io.results[q.sid] = ioResult{chunk: q.chunk, cost: cost}
		if io.svcTrace != nil {
			*io.svcTrace = append(*io.svcTrace, svcEvent{
				dev: devID, sid: q.sid, chunk: q.chunk, track: q.track, seek: seek, cost: cost,
			})
		}
		pos = q.track
	}
	io.heads[devID] = pos
	overrun := start+busy > last
	io.stats.Batches++
	io.stats.Scheduled += int64(len(batch))
	io.stats.SeeksCharged += charged
	io.stats.SeeksSaved += saved
	io.stats.DeadlineMisses += misses
	if overrun {
		io.stats.RoundsOverrun++
	}
	if len(batch) > io.stats.MaxBatch {
		io.stats.MaxBatch = len(batch)
	}
	if io.sink != nil {
		io.sink.Observe("storage.iosched.batch_size", int64(len(batch)))
		io.sink.Count("storage.iosched.scheduled", int64(len(batch)))
		if charged > 0 {
			io.sink.Count("storage.iosched.seeks_charged", charged)
		}
		if saved > 0 {
			io.sink.Count("storage.iosched.seeks_saved", saved)
		}
		if misses > 0 {
			io.sink.Count("storage.iosched.deadline_misses", misses)
		}
		if overrun {
			io.sink.Count("storage.iosched.overrun", 1)
		}
	}
}

// peek reports a waiting result without consuming it.
func (io *refSched) peek(sid int64, chunk int) (ioResult, bool) {
	res, ok := io.results[sid]
	if !ok || res.chunk != chunk {
		return ioResult{}, false
	}
	return res, true
}

// take consumes the result for the stream's chunk, discarding it on a
// chunk mismatch.
func (io *refSched) take(sid int64, chunk int) (ioResult, bool) {
	res, ok := io.results[sid]
	if !ok {
		return ioResult{}, false
	}
	delete(io.results, sid)
	if res.chunk != chunk {
		return ioResult{}, false
	}
	return res, true
}

// drop discards any result held for the stream.
func (io *refSched) drop(sid int64) { delete(io.results, sid) }

// noteDemand accounts a read that bypassed the rounds.
func (io *refSched) noteDemand(seeked bool) {
	io.stats.Demand++
	if seeked {
		io.stats.SeeksCharged++
	}
	if io.sink != nil {
		io.sink.Count("storage.iosched.demand", 1)
		if seeked {
			io.sink.Count("storage.iosched.seeks_charged", 1)
		}
	}
}
