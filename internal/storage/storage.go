// Package storage is the AV database's media store: it places stored
// media values (segments) on concrete storage devices, accounts space and
// bandwidth, and prices every access in world time.
//
// Placement is deliberately client-visible (§3.3 "data placement"):
// callers may pin a value to a named device — two values that must be
// mixed in real time are placed on different disks — or let the store
// choose.  Moving a value between devices is possible but costs the full
// read+write time, the copy the paper warns "could be so time-consuming
// as to destroy any sense of interactivity."
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
	"avdb/internal/obs"
)

// ErrNoSegment is wrapped by lookups of unknown segments.
var ErrNoSegment = fmt.Errorf("storage: no such segment")

// ErrNoPlacement is wrapped when no device can hold a value at the
// required rate — the placement half of admission failing.
var ErrNoPlacement = fmt.Errorf("storage: no eligible placement")

// ErrStreamClosed is wrapped by reads on a closed stream.
var ErrStreamClosed = fmt.Errorf("storage: stream closed")

// SegID identifies a stored segment.
type SegID uint64

// String formats the segment ID.
func (s SegID) String() string { return fmt.Sprintf("seg:%d", uint64(s)) }

// Segment is one stored media value: the value plus its physical
// placement.
type Segment struct {
	id     SegID
	value  media.Value
	devID  string
	disc   int // jukebox disc, -1 on disks
	size   int64
	frames int

	// Stripe map, nil/empty for unstriped segments.  chunkDev/chunkOff/
	// chunkSize also serve scheduled unstriped streams (built lazily
	// under the store lock); once built the map is immutable.
	stripe    []string // disk IDs in round-robin order
	base      []int64  // allocation base offset on each stripe disk
	perDev    []int64  // bytes allocated per stripe disk
	chunkDev  []int    // chunk -> index into stripe
	chunkOff  []int64  // chunk -> byte offset within its disk's share
	chunkSize []int64  // chunk -> size in bytes
	chunkTrck []int    // chunk -> home track, cached once (see buildTrackMap)

	// Tiering state, guarded by the store lock (see tier.go).
	pop         float64          // decayed access popularity
	popAt       avtime.WorldTime // when pop was last decayed
	promoted    bool             // jukebox value with a live disk-tier copy
	openStreams int              // open streams; demotion is gated on zero
	replicas    []*segReplica    // extra copies across stripe groups
}

// ID returns the segment's identifier.
func (s *Segment) ID() SegID { return s.id }

// Value returns the stored media value.
func (s *Segment) Value() media.Value { return s.value }

// Device returns the ID of the device holding the segment.
func (s *Segment) Device() string { return s.devID }

// Disc returns the jukebox disc holding the segment, or -1.
func (s *Segment) Disc() int { return s.disc }

// Size returns the stored size in bytes.
func (s *Segment) Size() int64 { return s.size }

// String describes the segment.
func (s *Segment) String() string {
	if len(s.stripe) > 0 {
		return fmt.Sprintf("%v striped over %v (%d bytes)", s.id, s.stripe, s.size)
	}
	if s.disc >= 0 {
		return fmt.Sprintf("%v on %s disc %d (%d bytes)", s.id, s.devID, s.disc, s.size)
	}
	return fmt.Sprintf("%v on %s (%d bytes)", s.id, s.devID, s.size)
}

// Store places media values on devices.
type Store struct {
	devices *device.Manager

	mu       sync.Mutex
	nextID   SegID
	nextSID  int64 // stream IDs, for the round scheduler's total order
	segments map[SegID]*Segment
	sink     obs.Sink
	policy   CachePolicy
	striping StripePolicy
	tiering  TierPolicy
	io       *IOSched    // non-nil once a Seeks/Rounds policy was installed
	pool     *bufferPool // non-nil once a caching policy opened a stream
}

// SetCachePolicy configures chunk caching for streams opened afterwards;
// already-open streams keep the policy (and the shared pool) they were
// opened with — changing the policy retires the current pool, and later
// streams share a fresh one.  The zero policy disables caching.
func (st *Store) SetCachePolicy(p CachePolicy) {
	st.mu.Lock()
	if p != st.policy {
		st.pool = nil
	}
	st.policy = p
	st.mu.Unlock()
}

// CachePolicy reports the store's current cache policy.
func (st *Store) CachePolicy() CachePolicy {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.policy
}

// SetSink installs an observability sink.  Streams opened afterwards
// emit storage.reads / read_bytes / read_faults / streams_opened
// counters and observe read costs into storage.read_time_us.
func (st *Store) SetSink(s obs.Sink) {
	st.mu.Lock()
	st.sink = s
	io := st.io
	pool := st.pool
	st.mu.Unlock()
	if io != nil {
		io.setSink(s)
	}
	if pool != nil {
		pool.setSink(s)
	}
}

// PoolStats snapshots the shared buffer pool's aggregate behavior; the
// zero value when no caching stream ever opened.  The aggregate
// outlives streams: closing one no longer discards its cache history.
func (st *Store) PoolStats() PoolStats {
	st.mu.Lock()
	pool := st.pool
	st.mu.Unlock()
	if pool == nil {
		return PoolStats{}
	}
	return pool.stats()
}

// NewStore returns a store over the given device manager.
func NewStore(devices *device.Manager) *Store {
	return &Store{devices: devices, nextID: 1, segments: make(map[SegID]*Segment)}
}

// Devices exposes the device manager.
func (st *Store) Devices() *device.Manager { return st.devices }

// Place stores a value on the named disk device.
func (st *Store) Place(v media.Value, deviceID string) (*Segment, error) {
	d, err := st.disk(deviceID)
	if err != nil {
		return nil, err
	}
	size := v.Size()
	if err := d.Allocate(size); err != nil {
		return nil, err
	}
	return st.register(v, deviceID, -1, size), nil
}

// PlaceOnDisc stores a value on one disc of a jukebox.
func (st *Store) PlaceOnDisc(v media.Value, deviceID string, disc int) (*Segment, error) {
	j, err := st.jukebox(deviceID)
	if err != nil {
		return nil, err
	}
	size := v.Size()
	if err := j.Allocate(disc, size); err != nil {
		return nil, err
	}
	return st.register(v, deviceID, disc, size), nil
}

// PlaceAuto stores a value on an automatically chosen disk, load-aware:
// among the disks with room for the value that can sustain the given
// streaming rate, it picks the one with the most free bandwidth —
// spreading concurrent streams over spindles instead of piling them on
// the emptiest disk — breaking ties by free capacity and then by device
// ID so the choice is deterministic.
func (st *Store) PlaceAuto(v media.Value, rate media.DataRate) (*Segment, error) {
	ranked := st.rankedDisks(v.Size(), rate)
	if len(ranked) == 0 {
		return nil, fmt.Errorf("%w: no disk with %d bytes free and %v bandwidth", ErrNoPlacement, v.Size(), rate)
	}
	return st.Place(v, ranked[0].d.ID())
}

func (st *Store) register(v media.Value, devID string, disc int, size int64) *Segment {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := &Segment{id: st.nextID, value: v, devID: devID, disc: disc, size: size, frames: v.NumElements()}
	st.nextID++
	st.segments[s.id] = s
	return s
}

// Get returns a segment by ID.
func (st *Store) Get(id SegID) (*Segment, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.segments[id]
	return s, ok
}

// Segments returns all segment IDs, sorted.
func (st *Store) Segments() []SegID {
	st.mu.Lock()
	defer st.mu.Unlock()
	ids := make([]SegID, 0, len(st.segments))
	for id := range st.segments {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Delete removes a segment and frees its space.  The placement fields
// are captured under the store lock so a racing Move can neither make
// Delete free the wrong device nor free the same allocation twice.
func (st *Store) Delete(id SegID) error {
	st.mu.Lock()
	s, ok := st.segments[id]
	var devID string
	var disc int
	var size int64
	if ok {
		delete(st.segments, id)
		devID, disc, size = s.devID, s.disc, s.size
	}
	st.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoSegment, id)
	}
	if s.Striped() {
		for k, sid := range s.stripe {
			if dev, found := st.devices.Get(sid); found {
				if d, isDisk := dev.(*device.Disk); isDisk {
					d.Free(s.perDev[k])
				}
			}
		}
		for _, rep := range s.replicas {
			for k, d := range rep.disks {
				d.Free(rep.perDev[k])
			}
		}
		// A promoted value keeps its archival jukebox copy; free it too.
		if s.promoted && disc >= 0 {
			if j, err := st.jukebox(devID); err == nil {
				j.Free(disc, size)
			}
		}
		return nil
	}
	dev, found := st.devices.Get(devID)
	if !found {
		return fmt.Errorf("storage: segment %v references missing device: %w: %q", id, device.ErrNoDevice, devID)
	}
	switch d := dev.(type) {
	case *device.Disk:
		d.Free(size)
	case *device.Jukebox:
		d.Free(disc, size)
	}
	return nil
}

// Move relocates a segment to another disk, returning the world time the
// copy occupies: a full read from the source plus a full write to the
// destination.
func (st *Store) Move(id SegID, toDevice string) (avtime.WorldTime, error) {
	st.mu.Lock()
	s, ok := st.segments[id]
	var srcID string
	var srcDisc int
	var size int64
	var striped bool
	if ok {
		srcID, srcDisc, size, striped = s.devID, s.disc, s.size, s.Striped()
	}
	st.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNoSegment, id)
	}
	if striped {
		return 0, fmt.Errorf("%w: %v cannot be moved; delete and re-place it", ErrStriped, id)
	}
	dst, err := st.disk(toDevice)
	if err != nil {
		return 0, err
	}
	if srcID == toDevice {
		return 0, nil
	}
	var readTime avtime.WorldTime
	srcDev, found := st.devices.Get(srcID)
	if !found {
		return 0, fmt.Errorf("storage: segment %v references missing device: %w: %q", id, device.ErrNoDevice, srcID)
	}
	switch d := srcDev.(type) {
	case *device.Disk:
		readTime = d.TransferTime(size, 1)
	case *device.Jukebox:
		t, err := d.AccessTime(srcDisc, size)
		if err != nil {
			return 0, err
		}
		readTime = t
	}
	if err := dst.Allocate(size); err != nil {
		return 0, err
	}
	writeTime := dst.TransferTime(size, 1)
	// Commit the relocation, but only if the segment still exists with
	// the placement we copied from: a Delete or competing Move that won
	// the race already freed (or will free) the source, and freeing it
	// again here would corrupt the space accounting and leak the
	// destination allocation on a dead segment.
	st.mu.Lock()
	cur, live := st.segments[id]
	if !live || cur != s || s.devID != srcID || s.disc != srcDisc {
		st.mu.Unlock()
		dst.Free(size)
		return 0, fmt.Errorf("%w: %v deleted or relocated during copy", ErrNoSegment, id)
	}
	s.devID, s.disc = toDevice, -1
	st.mu.Unlock()
	// Free the old placement.
	switch d := srcDev.(type) {
	case *device.Disk:
		d.Free(size)
	case *device.Jukebox:
		d.Free(srcDisc, size)
	}
	return readTime + writeTime, nil
}

func (st *Store) disk(deviceID string) (*device.Disk, error) {
	dev, ok := st.devices.Get(deviceID)
	if !ok {
		return nil, fmt.Errorf("storage: %w: %q", device.ErrNoDevice, deviceID)
	}
	d, ok := dev.(*device.Disk)
	if !ok {
		return nil, fmt.Errorf("storage: device %q is a %v, not a disk", deviceID, dev.DeviceKind())
	}
	return d, nil
}

func (st *Store) jukebox(deviceID string) (*device.Jukebox, error) {
	dev, ok := st.devices.Get(deviceID)
	if !ok {
		return nil, fmt.Errorf("storage: %w: %q", device.ErrNoDevice, deviceID)
	}
	j, ok := dev.(*device.Jukebox)
	if !ok {
		return nil, fmt.Errorf("storage: device %q is a %v, not a jukebox", deviceID, dev.DeviceKind())
	}
	return j, nil
}

// Stream is an open, bandwidth-reserved read stream over a segment.
type Stream struct {
	st   *Store
	seg  *Segment
	dev  device.Device
	rate media.DataRate

	// Striped and scheduled streams only.
	sid    int64            // total order for the round scheduler
	disks  []*device.Disk   // stripe home disks, nil when unstriped
	shares []media.DataRate // per-disk reservation, sums to rate
	io     *IOSched         // non-nil under a Seeks or Rounds policy
	slot   ioSlot           // serviced-result slot, guarded by io.mu
	rounds bool             // submit/consume through service rounds
	seeks  bool             // contended pricing: every demand read seeks
	unit   avtime.WorldTime // playback interval between chunk deadlines
	reps   []*segReplica    // replica snapshot taken at open time

	mu       sync.Mutex
	open     bool
	startup  avtime.WorldTime // positioning cost charged on the first read
	bytes    int64
	readFrac float64  // fraction of each chunk scheduled reads transfer; 0 = full
	sink     obs.Sink // copied from the store at open time

	// Shared buffer pool attachment; nil when caching is disabled.
	pool     *bufferPool
	pid      int64      // pool-attach order, orders staged ops
	poolSeq  int64      // program order of this stream's staged ops
	cstats   CacheStats // this stream's view of pool behavior
	poolLo   int        // own staged fill window [poolLo, poolHi] ...
	poolHi   int        //
	poolRnd  int64      // ... staged at this round, valid while poolWin
	poolWin  bool
}

// OpenStream reserves rate on the segment's device and returns a stream.
// It fails when the device cannot sustain the rate alongside existing
// reservations — the storage half of admission control.  For jukebox
// segments the returned startup time includes a disc swap if needed.
// For striped segments a 1/width share of the rate is reserved on every
// stripe disk, so the stream's effective bandwidth spans all of them.
// The store's stripe policy applies; OpenStreamWith overrides it.
func (st *Store) OpenStream(id SegID, rate media.DataRate) (*Stream, avtime.WorldTime, error) {
	return st.OpenStreamWith(id, rate, st.Striping())
}

// OpenStreamWith opens a stream under an explicit stripe policy instead
// of the store-wide one (the policy's Width is placement-time and
// ignored here).
func (st *Store) OpenStreamWith(id SegID, rate media.DataRate, policy StripePolicy) (*Stream, avtime.WorldTime, error) {
	st.mu.Lock()
	s, ok := st.segments[id]
	st.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %v", ErrNoSegment, id)
	}
	if rate <= 0 {
		return nil, 0, fmt.Errorf("storage: stream rate must be positive, got %v", rate)
	}
	stream := &Stream{st: st, seg: s, rate: rate, open: true}
	swapped := false
	if s.Striped() {
		disks := make([]*device.Disk, len(s.stripe))
		for k, devID := range s.stripe {
			d, err := st.disk(devID)
			if err != nil {
				return nil, 0, err
			}
			disks[k] = d
		}
		shares := shareRate(rate, len(disks))
		var startup avtime.WorldTime
		for k, d := range disks {
			if err := d.Reserve(shares[k]); err != nil {
				for u := 0; u < k; u++ {
					disks[u].Release(shares[u])
				}
				return nil, 0, fmt.Errorf("storage: stripe disk %q: %w", d.ID(), err)
			}
			if t := d.SeekTime(); t > startup {
				startup = t
			}
		}
		stream.dev, stream.disks, stream.shares, stream.startup = disks[0], disks, shares, startup
	} else {
		dev, found := st.devices.Get(s.devID)
		if !found {
			return nil, 0, fmt.Errorf("storage: segment %v references missing device: %w: %q", id, device.ErrNoDevice, s.devID)
		}
		var startup avtime.WorldTime
		switch d := dev.(type) {
		case *device.Disk:
			if err := d.Reserve(rate); err != nil {
				return nil, 0, err
			}
			startup = d.SeekTime()
		case *device.Jukebox:
			if err := d.Reserve(rate); err != nil {
				return nil, 0, err
			}
			swapped = !d.DiscLoaded(s.disc)
			t, err := d.AccessTime(s.disc, 0)
			if err != nil {
				d.Release(rate)
				return nil, 0, err
			}
			startup = t
		default:
			return nil, 0, fmt.Errorf("storage: device %q cannot stream", s.devID)
		}
		stream.dev, stream.startup = dev, startup
	}
	st.mu.Lock()
	stream.sink = st.sink
	stream.reps = s.replicas
	stream.seeks = policy.Seeks
	if st.policy.Enabled() {
		if st.pool == nil {
			st.pool = newBufferPool(st.policy, st.sink)
		}
		stream.pool = st.pool
	}
	if policy.Seeks || policy.Rounds {
		if st.io == nil {
			st.io = newIOSched(st.sink)
		}
		stream.io = st.io
		stream.sid = st.nextSID
		st.nextSID++
	}
	if policy.Rounds {
		// Rounds route chunks to tracks, which needs the chunk layout;
		// striped segments built theirs at placement, unstriped disk
		// segments get a single-device map here.  Jukebox segments stay
		// on the demand path: one read head has nothing to batch.
		_, onDisk := stream.dev.(*device.Disk)
		if s.Striped() || onDisk {
			if s.chunkDev == nil {
				if err := s.buildChunkMap(1); err != nil {
					st.mu.Unlock()
					stream.releaseReservations()
					return nil, 0, err
				}
			}
			if s.chunkTrck == nil {
				if stream.disks != nil {
					s.buildTrackMap(stream.disks)
				} else if d, isDisk := stream.dev.(*device.Disk); isDisk {
					s.buildTrackMap([]*device.Disk{d})
				}
			}
			stream.rounds = true
			stream.unit = s.value.Type().Rate.UnitDuration()
		}
	}
	if stream.pool != nil {
		stream.pid = stream.pool.attach()
	}
	s.openStreams++
	st.mu.Unlock()
	if stream.sink != nil {
		stream.sink.Count("storage.streams_opened", 1)
		if swapped {
			// An un-promoted value paid the platter swap on open.
			stream.sink.Count("storage.tier.swaps", 1)
		}
	}
	return stream, stream.startup, nil
}

// Segment returns the streamed segment.
func (s *Stream) Segment() *Segment { return s.seg }

// Rate returns the reserved rate.
func (s *Stream) Rate() media.DataRate { return s.rate }

// ReadTime accounts a read of the given bytes and reports the world time
// it occupies at the reserved rate.  The stream's startup cost — a seek,
// or a disc swap on the jukebox — is charged to the first read.
//
// When the segment's device has a fault hook installed, the read may
// fail with an error wrapping device.ErrTransientRead (retryable) or
// device.ErrDeviceFailed (outage).  A failed read consumes no stream
// bytes, but the returned world time is the cost of the failed attempt
// and must still be charged to the caller's timeline.
func (s *Stream) ReadTime(bytes int64) (avtime.WorldTime, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("storage: negative read %d", bytes)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.open {
		return 0, fmt.Errorf("%w: read on closed stream", ErrStreamClosed)
	}
	return s.readLocked(bytes)
}

// readLocked prices one device read; the caller holds s.mu.
func (s *Stream) readLocked(bytes int64) (avtime.WorldTime, error) {
	var extra avtime.WorldTime
	if f, ok := s.dev.(device.Faultable); ok {
		dt, err := f.CheckRead(bytes)
		if err != nil {
			if s.sink != nil {
				s.sink.Count("storage.read_faults", 1)
			}
			return dt, fmt.Errorf("storage: reading %v from %q: %w", s.seg.id, s.seg.devID, err)
		}
		extra = dt
	}
	s.bytes += bytes
	t := extra + avtime.WorldTime(bytes*int64(avtime.Second)/int64(s.rate))
	t += s.startup
	s.startup = 0
	if s.sink != nil {
		s.sink.Count("storage.reads", 1)
		s.sink.Count("storage.read_bytes", bytes)
		s.sink.Observe("storage.read_time_us", int64(t))
	}
	return t, nil
}

// ReadChunkTime accounts a read of the segment's idx'th chunk and
// reports the world time it occupies.  Without a cache policy it behaves
// exactly like ReadTime.  With one, a resident chunk costs zero device
// time — the prefetcher staged it overlapped with earlier playback, on
// bandwidth the stream already has reserved — and the fault hook is not
// consulted because no device access happens.  A demand miss pays the
// full device read (including any startup cost and injected faults),
// then stages the next Lookahead chunks.
//
// ReadChunkTime bypasses the round scheduler (round -1): callers that
// cannot tag a playback deadline read on demand.
func (s *Stream) ReadChunkTime(idx int, bytes int64) (avtime.WorldTime, error) {
	return s.ReadChunkTimeAt(idx, bytes, -1, 0, 0)
}

// ReadChunkTimeAt is the deadline-tagged chunk read: round is the
// caller's tick number, now the tick's world time, and deadline the
// moment the chunk must be presentable.  Under a Rounds policy the call
// first services every complete earlier round, consumes the scheduled
// result for this chunk if one was prefetched (paying its SCAN-EDF
// amortized cost instead of a full seek), and submits the following
// chunk into the current round tagged deadline+unit.  A chunk nothing
// prefetched — the first read, a jump — is a demand read.  round < 0
// disables scheduling for this call.
func (s *Stream) ReadChunkTimeAt(idx int, bytes int64, round int64, now, deadline avtime.WorldTime) (avtime.WorldTime, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("storage: negative read %d", bytes)
	}
	if idx < 0 {
		return 0, fmt.Errorf("storage: negative chunk index %d", idx)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.open {
		return 0, fmt.Errorf("%w: read on closed stream", ErrStreamClosed)
	}
	scheduled := s.rounds && round >= 0
	if scheduled {
		// The tick barrier guarantees every round before this one is
		// fully submitted, so servicing them now is deterministic
		// regardless of which stream flushes first.
		s.io.flushBefore(round)
	}
	if s.pool != nil {
		key := poolKey{seg: s.seg.id, chunk: idx}
		hit := false
		if h, shared := s.pool.read(s.pid, &s.poolSeq, key, round); h {
			hit = true
			if shared {
				s.cstats.Shared++
			}
		} else if round >= 0 && s.poolWin && round == s.poolRnd && idx >= s.poolLo && idx <= s.poolHi {
			// The chunk is in this stream's own fill window, staged earlier
			// this round and not yet committed to the shared residency map.
			s.pool.touchOwn(s.pid, &s.poolSeq, key, round)
			hit = true
		}
		if hit {
			s.cstats.Hits++
			s.bytes += bytes
			if s.io != nil {
				// A hit makes any scheduled result for this stream moot.
				s.io.drop(&s.slot)
			}
			return 0, nil
		}
	}
	var t avtime.WorldTime
	var err error
	if scheduled {
		var next ioReq
		var nextReq *ioReq
		if s.stageNext(idx, now, deadline, &next) {
			nextReq = &next
		}
		if res, ok := s.io.consumeNext(&s.slot, idx, round, nextReq); ok {
			// Consume the round-serviced prefetch; the follow-on request
			// was queued in the same critical section.  The home disk's
			// fault hook still gets a say: the transfer happened on
			// simulated hardware.  On a fault the result goes back and
			// the follow-on is retracted, so a retry re-consumes it;
			// s.mu makes the pair atomic with respect to every other
			// operation on this stream.
			var extra avtime.WorldTime
			var served device.Device
			if res.disk != nil {
				// The scheduler recorded which replica serviced the chunk.
				served = res.disk
				extra, err = res.disk.CheckRead(bytes)
			} else if s.disks != nil && s.seg.chunkDev != nil && idx < len(s.seg.chunkDev) {
				// Devirtualized fast path: striped homes are always disks.
				served = s.disks[s.seg.chunkDev[idx]]
				extra, err = s.disks[s.seg.chunkDev[idx]].CheckRead(bytes)
			} else if f, isF := s.chunkDevice(idx).(device.Faultable); isF {
				served = s.chunkDevice(idx)
				extra, err = f.CheckRead(bytes)
			}
			if err != nil {
				if alt, adt, live := s.failoverLocked(idx, bytes, served, err); live {
					// Fail-soft: the serviced copy's disk died, so re-read
					// the chunk from a surviving replica as a demand read —
					// a seek plus the transfer at the stream's rate, on top
					// of the failed attempt's cost.
					s.bytes += bytes
					t = extra + adt + alt.SeekTime() + avtime.WorldTime(bytes*int64(avtime.Second)/int64(s.rate))
					err = nil
					if s.sink != nil {
						s.sink.Count("storage.reads", 1)
						s.sink.Count("storage.read_bytes", bytes)
						s.sink.Observe("storage.read_time_us", int64(t))
					}
				} else {
					s.io.unconsume(&s.slot, res, round, nextReq)
					t = extra
					err = fmt.Errorf("storage: reading %v from %q: %w", s.seg.id, s.chunkDevice(idx).ID(), err)
					if s.sink != nil {
						s.sink.Count("storage.read_faults", 1)
					}
				}
			} else {
				s.bytes += bytes
				t = extra + res.cost
				if s.sink != nil {
					s.sink.Count("storage.reads", 1)
					s.sink.Count("storage.read_bytes", bytes)
					s.sink.Observe("storage.read_time_us", int64(t))
				}
			}
		} else {
			t, err = s.readChunkLocked(idx, bytes)
			if err == nil && nextReq != nil {
				s.io.submit(round, next)
			}
		}
	} else {
		t, err = s.readChunkLocked(idx, bytes)
	}
	if s.pool == nil {
		return t, err
	}
	s.cstats.Misses++
	s.pool.miss()
	if err != nil {
		return t, err
	}
	lookahead := s.pool.policy.Lookahead
	limit := s.seg.frames - 1
	staged, evicted := s.pool.fill(s.pid, &s.poolSeq, s.seg.id, idx, lookahead, limit, round)
	if round >= 0 {
		s.poolLo, s.poolHi, s.poolRnd, s.poolWin = idx, idx+lookahead, round, true
		if s.poolHi > limit {
			s.poolHi = limit
		}
	}
	s.cstats.Prefetched += int64(staged)
	s.cstats.Evicted += int64(evicted)
	return t, nil
}

// failoverLocked finds a live disk holding another copy of chunk idx
// after a copy's disk failed: the primary stripe home first, then
// replicas in creation order, so every stream picks the same survivor.
// It reports the fault-check cost of the surviving disk; the caller
// holds s.mu.
func (s *Stream) failoverLocked(idx int, bytes int64, failed device.Device, cause error) (*device.Disk, avtime.WorldTime, bool) {
	if len(s.reps) == 0 || !errors.Is(cause, device.ErrDeviceFailed) {
		return nil, 0, false
	}
	if d, _, ok := s.chunkHome(idx); ok && device.Device(d) != failed {
		if dt, err := d.CheckRead(bytes); err == nil {
			s.noteFailoverLocked()
			return d, dt, true
		}
	}
	if s.seg.chunkDev == nil || idx >= len(s.seg.chunkDev) {
		return nil, 0, false
	}
	for _, rep := range s.reps {
		d := rep.disks[s.seg.chunkDev[idx]]
		if device.Device(d) == failed {
			continue
		}
		if dt, err := d.CheckRead(bytes); err == nil {
			s.noteFailoverLocked()
			return d, dt, true
		}
	}
	return nil, 0, false
}

func (s *Stream) noteFailoverLocked() {
	if s.io != nil {
		s.io.noteFailover()
	}
	if s.sink != nil {
		s.sink.Count("storage.replica.failover", 1)
	}
}

// chunkDevice returns the device holding the given chunk: the stripe
// home disk for striped segments, the segment's device otherwise.
func (s *Stream) chunkDevice(idx int) device.Device {
	if s.disks != nil && s.seg.chunkDev != nil && idx < len(s.seg.chunkDev) {
		return s.disks[s.seg.chunkDev[idx]]
	}
	return s.dev
}

// chunkHome resolves the disk and track holding a chunk; ok is false for
// chunks outside the map or segments without one (jukebox).  The track
// comes from the segment's cache when one was built (every scheduled
// open builds it), so the hot submit path pays no per-read geometry
// math or device lock.
func (s *Stream) chunkHome(idx int) (*device.Disk, int, bool) {
	if s.seg.chunkDev == nil || idx >= len(s.seg.chunkDev) {
		return nil, 0, false
	}
	k := s.seg.chunkDev[idx]
	var d *device.Disk
	if s.disks != nil {
		d = s.disks[k]
	} else if dd, isDisk := s.dev.(*device.Disk); isDisk {
		d = dd
	} else {
		return nil, 0, false
	}
	if s.seg.chunkTrck != nil {
		return d, s.seg.chunkTrck[idx], true
	}
	var base int64
	if s.seg.base != nil {
		base = s.seg.base[k]
	}
	return d, d.TrackOf(base + s.seg.chunkOff[idx]), true
}

// readChunkLocked prices one demand chunk read on the chunk's home
// device; the caller holds s.mu.  Under contended pricing (Seeks) every
// demand read pays the home disk's positioning cost, not just the
// first; the startup charge doubles as the first read's seek.
func (s *Stream) readChunkLocked(idx int, bytes int64) (avtime.WorldTime, error) {
	dev := s.chunkDevice(idx)
	var extra avtime.WorldTime
	if f, ok := dev.(device.Faultable); ok {
		dt, err := f.CheckRead(bytes)
		if err != nil {
			alt, adt, live := s.failoverLocked(idx, bytes, dev, err)
			if !live {
				if s.sink != nil {
					s.sink.Count("storage.read_faults", 1)
				}
				return dt, fmt.Errorf("storage: reading %v from %q: %w", s.seg.id, dev.ID(), err)
			}
			// Fail-soft onto a surviving replica: the read continues there,
			// paying the failed attempt's cost on top.
			dev, extra = alt, dt+adt
		} else {
			extra = dt
		}
	}
	s.bytes += bytes
	t := extra + avtime.WorldTime(bytes*int64(avtime.Second)/int64(s.rate))
	seeked := false
	if s.startup > 0 {
		t += s.startup
		s.startup = 0
		seeked = true
	} else if s.seeks {
		if d, isDisk := dev.(*device.Disk); isDisk {
			t += d.SeekTime()
			seeked = true
		}
	}
	if s.io != nil {
		s.io.noteDemand(seeked)
	}
	if s.sink != nil {
		s.sink.Count("storage.reads", 1)
		s.sink.Count("storage.read_bytes", bytes)
		s.sink.Observe("storage.read_time_us", int64(t))
	}
	return t, nil
}

// stageNext fills req with the request for the chunk after idx, due one
// playback unit past the consumed chunk's deadline, reporting false when
// there is nothing to prefetch (end of clip, unmapped chunk); the caller
// holds s.mu and decides when the staged request enters a round.
func (s *Stream) stageNext(idx int, now, deadline avtime.WorldTime, req *ioReq) bool {
	next := idx + 1
	if next >= s.seg.frames {
		return false
	}
	d, track, ok := s.chunkHome(next)
	if !ok {
		return false
	}
	bytes := s.seg.chunkSize[next]
	if s.readFrac > 0 && s.readFrac < 1 {
		bytes = int64(float64(bytes) * s.readFrac)
		if bytes < 1 {
			bytes = 1
		}
	}
	*req = ioReq{
		sid:      s.sid,
		chunk:    next,
		bytes:    bytes,
		disk:     d,
		track:    track,
		rate:     s.rate,
		now:      now,
		deadline: deadline + s.unit,
		slot:     &s.slot,
	}
	// Replicated chunks offer the scheduler alternates: at flush time the
	// round routes the request to the least-loaded copy (see
	// assignFlexLocked), so concurrent sessions fan out across stripe
	// groups instead of queueing on one disk's round.
	for _, rep := range s.reps {
		if int(req.nalt) == len(req.alts) {
			break
		}
		k := s.seg.chunkDev[next]
		req.alts[req.nalt] = ioAlt{disk: rep.disks[k], track: rep.chunkTrck[next]}
		req.nalt++
	}
	return true
}

// SetPayloadBytes tells the stream the total size of the representation
// it is now delivering.  A degraded consumer views the stored value at
// lower quality by ignoring part of the encoded data, so when the
// payload shrinks below the placed segment's size, scheduled prefetches
// transfer only the matching fraction of each chunk — the point of
// degrading under pressure is that the disk rounds get shorter.  A total
// of zero, or one at least the segment size, restores full-chunk reads.
func (s *Stream) SetPayloadBytes(total int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if total <= 0 || s.seg.size <= 0 || total >= s.seg.size {
		s.readFrac = 0
		return
	}
	s.readFrac = float64(total) / float64(s.seg.size)
}

// CacheStats reports this stream's view of the shared pool — its own
// hits, misses and prefetches; the zero value when caching is disabled.
// Evictions under scheduled reads land on the pool aggregate
// (Store.PoolStats), which also survives the stream closing.
func (s *Stream) CacheStats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cstats
}

// BytesRead reports the bytes accounted so far.
func (s *Stream) BytesRead() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Close releases the reserved bandwidth.  Closing twice is a no-op.
// The release goes to the device(s) the reservation was made on at open
// time — not a fresh lookup of the segment's placement, which a
// concurrent Move may have redirected (releasing on the new device would
// leak the old reservation and corrupt the new device's accounting).
func (s *Stream) Close() {
	s.mu.Lock()
	if !s.open {
		s.mu.Unlock()
		return
	}
	s.open = false
	io := s.io
	s.mu.Unlock()
	if io != nil {
		io.drop(&s.slot)
	}
	if s.pool != nil {
		s.pool.detach()
	}
	s.st.mu.Lock()
	s.seg.openStreams--
	s.st.mu.Unlock()
	s.releaseReservations()
}

// releaseReservations returns the bandwidth reserved at open time.
func (s *Stream) releaseReservations() {
	if s.disks != nil {
		for k, d := range s.disks {
			d.Release(s.shares[k])
		}
		return
	}
	switch d := s.dev.(type) {
	case *device.Disk:
		d.Release(s.rate)
	case *device.Jukebox:
		d.Release(s.rate)
	}
}
