// Package storage is the AV database's media store: it places stored
// media values (segments) on concrete storage devices, accounts space and
// bandwidth, and prices every access in world time.
//
// Placement is deliberately client-visible (§3.3 "data placement"):
// callers may pin a value to a named device — two values that must be
// mixed in real time are placed on different disks — or let the store
// choose.  Moving a value between devices is possible but costs the full
// read+write time, the copy the paper warns "could be so time-consuming
// as to destroy any sense of interactivity."
package storage

import (
	"fmt"
	"sort"
	"sync"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
	"avdb/internal/obs"
)

// ErrNoSegment is wrapped by lookups of unknown segments.
var ErrNoSegment = fmt.Errorf("storage: no such segment")

// ErrNoPlacement is wrapped when no device can hold a value at the
// required rate — the placement half of admission failing.
var ErrNoPlacement = fmt.Errorf("storage: no eligible placement")

// ErrStreamClosed is wrapped by reads on a closed stream.
var ErrStreamClosed = fmt.Errorf("storage: stream closed")

// SegID identifies a stored segment.
type SegID uint64

// String formats the segment ID.
func (s SegID) String() string { return fmt.Sprintf("seg:%d", uint64(s)) }

// Segment is one stored media value: the value plus its physical
// placement.
type Segment struct {
	id     SegID
	value  media.Value
	devID  string
	disc   int // jukebox disc, -1 on disks
	size   int64
	frames int
}

// ID returns the segment's identifier.
func (s *Segment) ID() SegID { return s.id }

// Value returns the stored media value.
func (s *Segment) Value() media.Value { return s.value }

// Device returns the ID of the device holding the segment.
func (s *Segment) Device() string { return s.devID }

// Disc returns the jukebox disc holding the segment, or -1.
func (s *Segment) Disc() int { return s.disc }

// Size returns the stored size in bytes.
func (s *Segment) Size() int64 { return s.size }

// String describes the segment.
func (s *Segment) String() string {
	if s.disc >= 0 {
		return fmt.Sprintf("%v on %s disc %d (%d bytes)", s.id, s.devID, s.disc, s.size)
	}
	return fmt.Sprintf("%v on %s (%d bytes)", s.id, s.devID, s.size)
}

// Store places media values on devices.
type Store struct {
	devices *device.Manager

	mu       sync.Mutex
	nextID   SegID
	segments map[SegID]*Segment
	sink     obs.Sink
	policy   CachePolicy
}

// SetCachePolicy configures chunk caching for streams opened afterwards;
// already-open streams keep the policy they were opened with.  The zero
// policy disables caching.
func (st *Store) SetCachePolicy(p CachePolicy) {
	st.mu.Lock()
	st.policy = p
	st.mu.Unlock()
}

// CachePolicy reports the store's current cache policy.
func (st *Store) CachePolicy() CachePolicy {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.policy
}

// SetSink installs an observability sink.  Streams opened afterwards
// emit storage.reads / read_bytes / read_faults / streams_opened
// counters and observe read costs into storage.read_time_us.
func (st *Store) SetSink(s obs.Sink) {
	st.mu.Lock()
	st.sink = s
	st.mu.Unlock()
}

// NewStore returns a store over the given device manager.
func NewStore(devices *device.Manager) *Store {
	return &Store{devices: devices, nextID: 1, segments: make(map[SegID]*Segment)}
}

// Devices exposes the device manager.
func (st *Store) Devices() *device.Manager { return st.devices }

// Place stores a value on the named disk device.
func (st *Store) Place(v media.Value, deviceID string) (*Segment, error) {
	d, err := st.disk(deviceID)
	if err != nil {
		return nil, err
	}
	size := v.Size()
	if err := d.Allocate(size); err != nil {
		return nil, err
	}
	return st.register(v, deviceID, -1, size), nil
}

// PlaceOnDisc stores a value on one disc of a jukebox.
func (st *Store) PlaceOnDisc(v media.Value, deviceID string, disc int) (*Segment, error) {
	j, err := st.jukebox(deviceID)
	if err != nil {
		return nil, err
	}
	size := v.Size()
	if err := j.Allocate(disc, size); err != nil {
		return nil, err
	}
	return st.register(v, deviceID, disc, size), nil
}

// PlaceAuto stores a value on the disk with the most free space that can
// also sustain the given streaming rate, returning an error when no disk
// qualifies.
func (st *Store) PlaceAuto(v media.Value, rate media.DataRate) (*Segment, error) {
	var best *device.Disk
	var bestFree int64
	for _, id := range st.devices.ListKind(device.KindDisk) {
		d, _ := st.devices.Get(id)
		disk := d.(*device.Disk)
		free := disk.Capacity() - disk.Used()
		if free >= v.Size() && disk.FreeBandwidth() >= rate && free > bestFree {
			best, bestFree = disk, free
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no disk with %d bytes free and %v bandwidth", ErrNoPlacement, v.Size(), rate)
	}
	return st.Place(v, best.ID())
}

func (st *Store) register(v media.Value, devID string, disc int, size int64) *Segment {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := &Segment{id: st.nextID, value: v, devID: devID, disc: disc, size: size, frames: v.NumElements()}
	st.nextID++
	st.segments[s.id] = s
	return s
}

// Get returns a segment by ID.
func (st *Store) Get(id SegID) (*Segment, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.segments[id]
	return s, ok
}

// Segments returns all segment IDs, sorted.
func (st *Store) Segments() []SegID {
	st.mu.Lock()
	defer st.mu.Unlock()
	ids := make([]SegID, 0, len(st.segments))
	for id := range st.segments {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Delete removes a segment and frees its space.
func (st *Store) Delete(id SegID) error {
	st.mu.Lock()
	s, ok := st.segments[id]
	if ok {
		delete(st.segments, id)
	}
	st.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoSegment, id)
	}
	dev, found := st.devices.Get(s.devID)
	if !found {
		return fmt.Errorf("storage: segment %v references missing device: %w: %q", id, device.ErrNoDevice, s.devID)
	}
	switch d := dev.(type) {
	case *device.Disk:
		d.Free(s.size)
	case *device.Jukebox:
		d.Free(s.disc, s.size)
	}
	return nil
}

// Move relocates a segment to another disk, returning the world time the
// copy occupies: a full read from the source plus a full write to the
// destination.
func (st *Store) Move(id SegID, toDevice string) (avtime.WorldTime, error) {
	st.mu.Lock()
	s, ok := st.segments[id]
	st.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNoSegment, id)
	}
	dst, err := st.disk(toDevice)
	if err != nil {
		return 0, err
	}
	if s.devID == toDevice {
		return 0, nil
	}
	var readTime avtime.WorldTime
	srcDev, found := st.devices.Get(s.devID)
	if !found {
		return 0, fmt.Errorf("storage: segment %v references missing device: %w: %q", id, device.ErrNoDevice, s.devID)
	}
	switch d := srcDev.(type) {
	case *device.Disk:
		readTime = d.TransferTime(s.size, 1)
	case *device.Jukebox:
		t, err := d.AccessTime(s.disc, s.size)
		if err != nil {
			return 0, err
		}
		readTime = t
	}
	if err := dst.Allocate(s.size); err != nil {
		return 0, err
	}
	writeTime := dst.TransferTime(s.size, 1)
	// Free the old placement.
	switch d := srcDev.(type) {
	case *device.Disk:
		d.Free(s.size)
	case *device.Jukebox:
		d.Free(s.disc, s.size)
	}
	st.mu.Lock()
	s.devID, s.disc = toDevice, -1
	st.mu.Unlock()
	return readTime + writeTime, nil
}

func (st *Store) disk(deviceID string) (*device.Disk, error) {
	dev, ok := st.devices.Get(deviceID)
	if !ok {
		return nil, fmt.Errorf("storage: %w: %q", device.ErrNoDevice, deviceID)
	}
	d, ok := dev.(*device.Disk)
	if !ok {
		return nil, fmt.Errorf("storage: device %q is a %v, not a disk", deviceID, dev.DeviceKind())
	}
	return d, nil
}

func (st *Store) jukebox(deviceID string) (*device.Jukebox, error) {
	dev, ok := st.devices.Get(deviceID)
	if !ok {
		return nil, fmt.Errorf("storage: %w: %q", device.ErrNoDevice, deviceID)
	}
	j, ok := dev.(*device.Jukebox)
	if !ok {
		return nil, fmt.Errorf("storage: device %q is a %v, not a jukebox", deviceID, dev.DeviceKind())
	}
	return j, nil
}

// Stream is an open, bandwidth-reserved read stream over a segment.
type Stream struct {
	st   *Store
	seg  *Segment
	dev  device.Device
	rate media.DataRate

	mu      sync.Mutex
	open    bool
	startup avtime.WorldTime // positioning cost charged on the first read
	bytes   int64
	sink    obs.Sink    // copied from the store at open time
	cache   *chunkCache // nil when the store's policy disables caching
}

// OpenStream reserves rate on the segment's device and returns a stream.
// It fails when the device cannot sustain the rate alongside existing
// reservations — the storage half of admission control.  For jukebox
// segments the returned startup time includes a disc swap if needed.
func (st *Store) OpenStream(id SegID, rate media.DataRate) (*Stream, avtime.WorldTime, error) {
	st.mu.Lock()
	s, ok := st.segments[id]
	st.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %v", ErrNoSegment, id)
	}
	if rate <= 0 {
		return nil, 0, fmt.Errorf("storage: stream rate must be positive, got %v", rate)
	}
	dev, found := st.devices.Get(s.devID)
	if !found {
		return nil, 0, fmt.Errorf("storage: segment %v references missing device: %w: %q", id, device.ErrNoDevice, s.devID)
	}
	var startup avtime.WorldTime
	switch d := dev.(type) {
	case *device.Disk:
		if err := d.Reserve(rate); err != nil {
			return nil, 0, err
		}
		startup = d.SeekTime()
	case *device.Jukebox:
		if err := d.Reserve(rate); err != nil {
			return nil, 0, err
		}
		t, err := d.AccessTime(s.disc, 0)
		if err != nil {
			d.Release(rate)
			return nil, 0, err
		}
		startup = t
	default:
		return nil, 0, fmt.Errorf("storage: device %q cannot stream", s.devID)
	}
	st.mu.Lock()
	sink := st.sink
	policy := st.policy
	st.mu.Unlock()
	if sink != nil {
		sink.Count("storage.streams_opened", 1)
	}
	stream := &Stream{st: st, seg: s, dev: dev, rate: rate, open: true, startup: startup, sink: sink}
	if policy.Enabled() {
		stream.cache = newChunkCache(policy)
	}
	return stream, startup, nil
}

// Segment returns the streamed segment.
func (s *Stream) Segment() *Segment { return s.seg }

// Rate returns the reserved rate.
func (s *Stream) Rate() media.DataRate { return s.rate }

// ReadTime accounts a read of the given bytes and reports the world time
// it occupies at the reserved rate.  The stream's startup cost — a seek,
// or a disc swap on the jukebox — is charged to the first read.
//
// When the segment's device has a fault hook installed, the read may
// fail with an error wrapping device.ErrTransientRead (retryable) or
// device.ErrDeviceFailed (outage).  A failed read consumes no stream
// bytes, but the returned world time is the cost of the failed attempt
// and must still be charged to the caller's timeline.
func (s *Stream) ReadTime(bytes int64) (avtime.WorldTime, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("storage: negative read %d", bytes)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.open {
		return 0, fmt.Errorf("%w: read on closed stream", ErrStreamClosed)
	}
	return s.readLocked(bytes)
}

// readLocked prices one device read; the caller holds s.mu.
func (s *Stream) readLocked(bytes int64) (avtime.WorldTime, error) {
	var extra avtime.WorldTime
	if f, ok := s.dev.(device.Faultable); ok {
		dt, err := f.CheckRead(bytes)
		if err != nil {
			if s.sink != nil {
				s.sink.Count("storage.read_faults", 1)
			}
			return dt, fmt.Errorf("storage: reading %v from %q: %w", s.seg.id, s.seg.devID, err)
		}
		extra = dt
	}
	s.bytes += bytes
	t := extra + avtime.WorldTime(bytes*int64(avtime.Second)/int64(s.rate))
	t += s.startup
	s.startup = 0
	if s.sink != nil {
		s.sink.Count("storage.reads", 1)
		s.sink.Count("storage.read_bytes", bytes)
		s.sink.Observe("storage.read_time_us", int64(t))
	}
	return t, nil
}

// ReadChunkTime accounts a read of the segment's idx'th chunk and
// reports the world time it occupies.  Without a cache policy it behaves
// exactly like ReadTime.  With one, a resident chunk costs zero device
// time — the prefetcher staged it overlapped with earlier playback, on
// bandwidth the stream already has reserved — and the fault hook is not
// consulted because no device access happens.  A demand miss pays the
// full device read (including any startup cost and injected faults),
// then stages the next Lookahead chunks.
func (s *Stream) ReadChunkTime(idx int, bytes int64) (avtime.WorldTime, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("storage: negative read %d", bytes)
	}
	if idx < 0 {
		return 0, fmt.Errorf("storage: negative chunk index %d", idx)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.open {
		return 0, fmt.Errorf("%w: read on closed stream", ErrStreamClosed)
	}
	if s.cache == nil {
		return s.readLocked(bytes)
	}
	if s.cache.contains(idx) {
		s.cache.touch(idx)
		s.bytes += bytes
		s.cache.stats.Hits++
		if s.sink != nil {
			s.sink.Count("storage.cache.hits", 1)
		}
		return 0, nil
	}
	t, err := s.readLocked(bytes)
	s.cache.stats.Misses++
	if s.sink != nil {
		s.sink.Count("storage.cache.misses", 1)
	}
	if err != nil {
		return t, err
	}
	evicted := s.cache.insert(idx)
	staged := 0
	lookahead := s.cache.policy.Lookahead
	limit := s.seg.frames - 1
	for k := idx + 1; k <= idx+lookahead && k <= limit; k++ {
		if !s.cache.contains(k) {
			evicted += s.cache.insert(k)
			staged++
		}
	}
	s.cache.stats.Prefetched += int64(staged)
	s.cache.stats.Evicted += int64(evicted)
	if s.sink != nil {
		if staged > 0 {
			s.sink.Count("storage.cache.prefetched", int64(staged))
		}
		if evicted > 0 {
			s.sink.Count("storage.cache.evicted", int64(evicted))
		}
	}
	return t, nil
}

// CacheStats reports the stream's cache behavior; the zero value when
// caching is disabled.
func (s *Stream) CacheStats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		return CacheStats{}
	}
	return s.cache.stats
}

// BytesRead reports the bytes accounted so far.
func (s *Stream) BytesRead() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Close releases the reserved bandwidth.  Closing twice is a no-op.
func (s *Stream) Close() {
	s.mu.Lock()
	if !s.open {
		s.mu.Unlock()
		return
	}
	s.open = false
	s.mu.Unlock()
	dev, ok := s.st.devices.Get(s.seg.devID)
	if !ok {
		return
	}
	switch d := dev.(type) {
	case *device.Disk:
		d.Release(s.rate)
	case *device.Jukebox:
		d.Release(s.rate)
	}
}
