package storage

// sched.go implements IOSched, the per-device round scheduler.  Streams
// driven by the wavefront executor submit the *next* chunk they will
// need while consuming the current one; all requests submitted during
// one graph tick form a round.  When the first stream of a later tick
// consumes its result, every complete earlier round is serviced: each
// disk's batch is ordered SCAN-EDF — earliest playback deadline first,
// ties by track position, then stream — and charged one positioned seek
// per run of adjacent tracks instead of one full seek per chunk.
//
// Determinism under parallel execution is structural.  The executor's
// tick barrier guarantees that every submission of round T happens
// before any activity of tick T+1 runs, so by the time flushBefore(T+1)
// fires, round T's batch content is complete and identical no matter how
// many workers raced through tick T.  The SCAN-EDF sort key (deadline,
// track, stream, chunk) is total — sid is unique within one disk's batch
// because a stream resubmitting in the same round replaces its previous
// request, so no two distinct batch members ever compare equal (pinned
// by TestSCANEDFKeyTotalOrder) — and therefore the service order, the
// per-disk head walk, every seek charge and every counter are
// independent of submission order.  Within one flush, rounds are
// serviced in ascending round order and disks in ID order.
//
// The same argument covers the sharded engine's cross-SESSION
// parallelism (EngineWorkers > 1): every method that touches shared
// scheduler state takes io.mu, so racing sessions' submissions of the
// same engine step interleave safely, and because the key is total the
// interleaving is invisible.  Service itself is serialized by the
// flushed watermark — the first tick of step T+1 to reach
// flushBefore(T+1) on any worker services every complete round while
// the other workers pass the lock-free watermark check — and demand
// reads price seeks from the stream's own recorded position without
// moving the shared per-disk heads, so only watermark-ordered service
// advances them.  TestConcurrentSubmitDeterminism pins this under the
// race detector.
//
// The hot path is allocation-free in steady state (pinned by
// TestIOSchedAllocsPerRun).  Rounds live in flat, reusable buffers: a
// schedRound holds one diskBatch per disk, kept sorted by device ID, and
// each batch keeps its requests sorted by the SCAN-EDF key from the
// moment they are inserted — deadline-bucketed insertion at enqueue —
// so flushing a round walks the batches in final service order with no
// sort at all.  Retired rounds are recycled through a per-IOSched free
// list (their batch and request capacity survives the round trip) with a
// package-level sync.Pool as spillover, so once the buffers are warm the
// scheduled chunk path allocates nothing.  The retained reference
// implementation of the original map+sort scheduler lives in
// sched_reference_test.go; the differential harness
// (sched_differential_test.go, FuzzSCANEDFOrder) proves the two produce
// byte-identical service orders, seek charges and metrics.
//
// IOSched runs entirely in virtual time: servicing a batch prices the
// requests, it does not block anything.

import (
	"sync"
	"sync/atomic"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
	"avdb/internal/obs"
)

// ioReq is one stream's request for one chunk, tagged with the playback
// deadline its consumer attached.  The SCAN-EDF sort key is the field
// tuple (deadline, track, sid, chunk); track is computed once at
// enqueue from the segment's cached track map, never during service.
type ioReq struct {
	sid      int64 // submitting stream
	chunk    int
	bytes    int64
	disk     *device.Disk
	track    int
	rate     media.DataRate   // stream rate, prices the transfer
	now      avtime.WorldTime // submission (tick) time
	deadline avtime.WorldTime // when the chunk must be presentable
	slot     *ioSlot          // where the serviced result lands

	// Replicated chunks carry alternates: the round assigns the request
	// to the least-loaded copy at flush time (assignFlexLocked).  nalt is
	// zero for unreplicated chunks, which skip the flex path entirely.
	alts [3]ioAlt
	nalt uint8
}

// ioAlt is one alternate home for a replicated chunk.
type ioAlt struct {
	disk  *device.Disk
	track int
}

// ioSlot receives a stream's serviced result.  One slot belongs to one
// stream (it is embedded in Stream, so delivering a result is two field
// writes — no per-stream map on the hot path); every access is guarded
// by the owning IOSched's mu.
type ioSlot struct {
	chunk int
	cost  avtime.WorldTime
	disk  *device.Disk // replica that serviced the chunk
	full  bool
	// displaced holds the request consumeNext's eager queue replaced (a
	// same-stream request already sat in the round), so an unconsume can
	// restore it instead of leaving a hole.  Valid only between a
	// consumeNext and the unconsume that undoes it.
	displaced    ioReq
	hasDisplaced bool
}

// reqBefore is the SCAN-EDF total order: earliest deadline first, ties
// by track position, then stream, then chunk.
func reqBefore(a, b *ioReq) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	if a.track != b.track {
		return a.track < b.track
	}
	if a.sid != b.sid {
		return a.sid < b.sid
	}
	return a.chunk < b.chunk
}

// ioResult is a serviced request waiting for its stream to consume it.
type ioResult struct {
	chunk int
	cost  avtime.WorldTime // what the consuming read is charged
	disk  *device.Disk     // replica that serviced the chunk
}

// svcEvent records one serviced request; emitted only when a service
// trace is installed (the differential harness's byte-identical-order
// probe), nil in production.
type svcEvent struct {
	dev   string
	sid   int64
	chunk int
	track int
	seek  avtime.WorldTime
	cost  avtime.WorldTime
}

// IOStats summarizes the scheduler's behavior.
type IOStats struct {
	Rounds         int64 // service rounds completed
	Batches        int64 // per-disk batches serviced
	Scheduled      int64 // requests serviced inside rounds
	Demand         int64 // chunk reads that bypassed the rounds
	SeeksCharged   int64 // positioning costs actually charged (incl. demand)
	SeeksSaved     int64 // scheduled requests that rode an adjacent run for free
	DeadlineMisses int64 // requests whose disk finished past their deadline
	RoundsOverrun  int64 // per-disk batches whose service ran past their last deadline
	Failovers      int64 // reads redirected to a surviving replica after an outage
	MaxBatch       int   // largest per-disk batch seen
}

// diskBatch is one disk's requests for one round, kept in SCAN-EDF
// order from insertion so servicing walks it front to back.
type diskBatch struct {
	devID string
	disk  *device.Disk
	reqs  []ioReq
	load  int64 // bytes queued this round; steers flex assignment
}

// schedRound is one round's batches, kept sorted by device ID, plus the
// flex list: requests for replicated chunks, kept in SCAN-EDF order and
// assigned to the least-loaded copy's batch at flush time.  The struct
// is reused: retiring a round truncates the batches and their request
// slices without releasing capacity.
type schedRound struct {
	seq     int64
	batches []diskBatch
	flex    []ioReq
}

// roundPool is the spillover behind each IOSched's free list: rounds
// displaced from a full free list park here so another store (or a
// burst of deep pending windows) can reuse their buffers.
var roundPool = sync.Pool{New: func() any { return new(schedRound) }}

// roundFreeCap bounds the per-IOSched free list; in steady state one
// round retires per flush, so the list stays short and deterministic —
// the sync.Pool only sees overflow.
const roundFreeCap = 8

// IOSched batches chunk requests into per-device service rounds.
type IOSched struct {
	// flushed is the service watermark: rounds below it are priced.  It
	// only grows, and it is read lock-free so every stream after the
	// first in a tick skips the flush lock entirely (a stale read just
	// falls through to the locked re-check).
	flushed atomic.Int64

	mu       sync.Mutex
	sink     obs.Sink
	pending  []*schedRound        // unserviced rounds, ascending seq
	free     []*schedRound        // recycled round buffers
	heads    map[*device.Disk]int // disk -> head track after last round
	stats    IOStats
	svcTrace *[]svcEvent // test hook: records service order when non-nil
}

func newIOSched(sink obs.Sink) *IOSched {
	return &IOSched{
		sink:  sink,
		heads: make(map[*device.Disk]int),
	}
}

// setSink swaps the observability sink (streams opened later observe
// through the store's current sink; the scheduler follows it).
func (io *IOSched) setSink(s obs.Sink) {
	io.mu.Lock()
	io.sink = s
	io.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (io *IOSched) Stats() IOStats {
	io.mu.Lock()
	defer io.mu.Unlock()
	return io.stats
}

// getRound returns a reset round buffer: free list first, then the
// shared pool.
func (io *IOSched) getRound() *schedRound {
	if n := len(io.free); n > 0 {
		r := io.free[n-1]
		io.free[n-1] = nil
		io.free = io.free[:n-1]
		return r
	}
	return roundPool.Get().(*schedRound)
}

// putRound recycles a serviced round, keeping every batch's request
// capacity alive under the truncated length so the next use of the
// buffer allocates nothing.
func (io *IOSched) putRound(r *schedRound) {
	for i := range r.batches {
		r.batches[i].disk = nil
		r.batches[i].reqs = r.batches[i].reqs[:0]
		r.batches[i].load = 0
	}
	r.batches = r.batches[:0]
	r.flex = r.flex[:0]
	if len(io.free) < roundFreeCap {
		io.free = append(io.free, r)
		return
	}
	roundPool.Put(r)
}

// roundFor finds or inserts the pending round with the given sequence
// number, keeping io.pending sorted ascending; io.mu is held.  Rounds
// arrive in nearly ascending order, so the scan runs from the back.
func (io *IOSched) roundFor(seq int64) *schedRound {
	n := len(io.pending)
	i := n
	for i > 0 {
		r := io.pending[i-1]
		if r.seq == seq {
			return r
		}
		if r.seq < seq {
			break
		}
		i--
	}
	r := io.getRound()
	r.seq = seq
	io.pending = append(io.pending, nil)
	copy(io.pending[i+1:], io.pending[i:])
	io.pending[i] = r
	return r
}

// batchFor finds or inserts the round's batch for the given disk,
// keeping batches sorted by device ID.  Growing into the truncated
// region of a recycled buffer reclaims the spare element's request
// capacity instead of dropping it.
func (r *schedRound) batchFor(d *device.Disk) *diskBatch {
	id := d.ID()
	n := len(r.batches)
	i := 0
	for i < n {
		if r.batches[i].disk == d {
			return &r.batches[i]
		}
		if r.batches[i].devID > id {
			break
		}
		i++
	}
	var spare []ioReq
	if n < cap(r.batches) {
		r.batches = r.batches[:n+1]
		spare = r.batches[n].reqs[:0]
	} else {
		r.batches = append(r.batches, diskBatch{})
	}
	copy(r.batches[i+1:], r.batches[i:n])
	r.batches[i] = diskBatch{devID: id, disk: d, reqs: spare}
	return &r.batches[i]
}

// insert places q at its SCAN-EDF position.  A request from the same
// stream already in the batch is replaced — resubmitting in one round
// stays idempotent, and keeps sid unique so the sort key stays total.
// The displaced request is returned so a speculative insert (consumeNext)
// can be rolled back without losing it.
func (b *diskBatch) insert(q ioReq) (displaced ioReq, replaced bool) {
	for j := range b.reqs {
		if b.reqs[j].sid == q.sid {
			displaced, replaced = b.reqs[j], true
			b.load -= b.reqs[j].bytes
			copy(b.reqs[j:], b.reqs[j+1:])
			b.reqs = b.reqs[:len(b.reqs)-1]
			break
		}
	}
	lo, hi := 0, len(b.reqs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if reqBefore(&b.reqs[mid], &q) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b.reqs = append(b.reqs, ioReq{})
	copy(b.reqs[lo+1:], b.reqs[lo:])
	b.reqs[lo] = q
	b.load += q.bytes
	return displaced, replaced
}

// addReq routes a request into the round: unreplicated chunks go
// straight to their disk's batch, replicated ones to the flex list for
// least-loaded assignment at flush time.
func (r *schedRound) addReq(q ioReq) (displaced ioReq, replaced bool) {
	if q.nalt == 0 {
		return r.batchFor(q.disk).insert(q)
	}
	return r.flexInsert(q)
}

// flexInsert places q at its SCAN-EDF position in the flex list with
// the same same-stream replacement rule as diskBatch.insert.
func (r *schedRound) flexInsert(q ioReq) (displaced ioReq, replaced bool) {
	for j := range r.flex {
		if r.flex[j].sid == q.sid {
			displaced, replaced = r.flex[j], true
			copy(r.flex[j:], r.flex[j+1:])
			r.flex = r.flex[:len(r.flex)-1]
			break
		}
	}
	lo, hi := 0, len(r.flex)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if reqBefore(&r.flex[mid], &q) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	r.flex = append(r.flex, ioReq{})
	copy(r.flex[lo+1:], r.flex[lo:])
	r.flex[lo] = q
	return displaced, replaced
}

// loadOf reports the bytes already queued on a disk's batch this round.
func (r *schedRound) loadOf(d *device.Disk) int64 {
	for i := range r.batches {
		if r.batches[i].disk == d {
			return r.batches[i].load
		}
	}
	return 0
}

// assignFlexLocked routes every flex request to the least-loaded copy.
// The flex list is in SCAN-EDF order — a total key — so the greedy
// walk, and therefore every assignment, is independent of submission
// order; ties in load go to the lower device ID.  Earlier assignments
// count toward later ones' load, spreading a burst of hot-clip readers
// across the stripe groups.  io.mu is held.
func (io *IOSched) assignFlexLocked(r *schedRound) {
	for i := range r.flex {
		q := r.flex[i]
		best, bestTrack := q.disk, q.track
		bestLoad := r.loadOf(best)
		for a := 0; a < int(q.nalt); a++ {
			alt := q.alts[a]
			l := r.loadOf(alt.disk)
			if l < bestLoad || (l == bestLoad && alt.disk.ID() < best.ID()) {
				best, bestTrack, bestLoad = alt.disk, alt.track, l
			}
		}
		q.disk, q.track, q.nalt = best, bestTrack, 0
		r.batchFor(best).insert(q)
	}
	r.flex = r.flex[:0]
}

// submit queues a request into the given round.  A stream resubmitting
// in the same round replaces its previous request, so retried reads stay
// idempotent.
func (io *IOSched) submit(round int64, q ioReq) {
	io.mu.Lock()
	defer io.mu.Unlock()
	if round < io.flushed.Load() {
		// The round was already serviced (a straggler after a seek or
		// degrade); the request becomes a demand read at consumption.
		return
	}
	io.roundFor(round).addReq(q)
}

// flushBefore services every pending round strictly below round, in
// ascending order.  The caller's tick barrier — within a session the
// wavefront executor's, across sessions the sharded engine's
// admission-order commit barrier — guarantees those rounds are
// complete.  Concurrent callers race on the watermark: exactly one
// wins and services, the rest exit lock-free, and because batch
// content is already fixed it does not matter which.
func (io *IOSched) flushBefore(round int64) {
	if round <= io.flushed.Load() {
		// Already serviced: the watermark only grows, so this lock-free
		// exit is safe — every stream in a tick after the first takes it.
		return
	}
	io.mu.Lock()
	defer io.mu.Unlock()
	if round <= io.flushed.Load() {
		return
	}
	io.flushed.Store(round)
	for len(io.pending) > 0 && io.pending[0].seq < round {
		r := io.pending[0]
		n := len(io.pending)
		copy(io.pending, io.pending[1:])
		io.pending[n-1] = nil
		io.pending = io.pending[:n-1]
		io.assignFlexLocked(r)
		for i := range r.batches {
			io.serviceLocked(&r.batches[i])
		}
		io.stats.Rounds++
		if io.sink != nil {
			io.sink.Count("storage.iosched.rounds", 1)
		}
		io.putRound(r)
	}
}

// serviceLocked prices one disk's batch, already in SCAN-EDF order;
// io.mu is held.
func (io *IOSched) serviceLocked(b *diskBatch) {
	batch := b.reqs
	if len(batch) == 0 {
		return
	}
	pos := io.heads[b.disk]
	start := batch[0].now
	for _, q := range batch {
		if q.now < start {
			start = q.now
		}
	}
	var busy avtime.WorldTime
	var misses, charged, saved int64
	last := batch[len(batch)-1].deadline // SCAN-EDF order, so this is the latest
	for i := range batch {
		q := &batch[i]
		var seek avtime.WorldTime
		if i == 0 || abs(q.track-pos) > 1 {
			// A new run: position the head.  Adjacent tracks ride the
			// previous transfer's momentum for free.
			seek = q.disk.SeekBetween(pos, q.track)
		}
		if seek > 0 {
			charged++
		} else {
			saved++
		}
		// The disk is busy for the seek plus the transfer at platter
		// speed; the stream is charged the seek plus the transfer at
		// its reserved rate.
		busy += seek + avtime.WorldTime(q.bytes*int64(avtime.Second)/int64(q.disk.TotalBandwidth()))
		if start+busy > q.deadline {
			misses++
		}
		cost := seek
		if q.rate > 0 {
			cost += avtime.WorldTime(q.bytes * int64(avtime.Second) / int64(q.rate))
		}
		if q.slot != nil {
			q.slot.chunk, q.slot.cost, q.slot.disk, q.slot.full = q.chunk, cost, q.disk, true
		}
		if io.svcTrace != nil {
			*io.svcTrace = append(*io.svcTrace, svcEvent{
				dev: b.devID, sid: q.sid, chunk: q.chunk, track: q.track, seek: seek, cost: cost,
			})
		}
		pos = q.track
	}
	io.heads[b.disk] = pos
	// An overrun batch is the round-level pressure signal: the disk was
	// still busy when its last request's deadline passed, so the round
	// as scheduled was infeasible — not just one unlucky request late.
	overrun := start+busy > last
	io.stats.Batches++
	io.stats.Scheduled += int64(len(batch))
	io.stats.SeeksCharged += charged
	io.stats.SeeksSaved += saved
	io.stats.DeadlineMisses += misses
	if overrun {
		io.stats.RoundsOverrun++
	}
	if len(batch) > io.stats.MaxBatch {
		io.stats.MaxBatch = len(batch)
	}
	if io.sink != nil {
		io.sink.Observe("storage.iosched.batch_size", int64(len(batch)))
		io.sink.Count("storage.iosched.scheduled", int64(len(batch)))
		if charged > 0 {
			io.sink.Count("storage.iosched.seeks_charged", charged)
		}
		if saved > 0 {
			io.sink.Count("storage.iosched.seeks_saved", saved)
		}
		if misses > 0 {
			io.sink.Count("storage.iosched.deadline_misses", misses)
		}
		if overrun {
			io.sink.Count("storage.iosched.overrun", 1)
		}
	}
}

// take consumes the serviced result for the stream's chunk.  A stale
// result — the stream sought or degraded past what it had prefetched —
// is discarded so the read falls back to a demand read.
func (io *IOSched) take(slot *ioSlot, chunk int) (ioResult, bool) {
	io.mu.Lock()
	defer io.mu.Unlock()
	return io.takeLocked(slot, chunk)
}

func (io *IOSched) takeLocked(slot *ioSlot, chunk int) (ioResult, bool) {
	if !slot.full {
		return ioResult{}, false
	}
	slot.full = false
	if slot.chunk != chunk {
		return ioResult{}, false
	}
	return ioResult{chunk: slot.chunk, cost: slot.cost, disk: slot.disk}, true
}

// consumeNext is the steady-state read: under one lock it consumes the
// serviced result for chunk and, when one was there, eagerly queues the
// stream's follow-on request into round.  The eager queue is what fuses
// the old take+submit pair into a single critical section; a
// consumption that then faults hands the pair back through unconsume.
// next may be nil (end of clip, or nothing to prefetch).
func (io *IOSched) consumeNext(slot *ioSlot, chunk int, round int64, next *ioReq) (ioResult, bool) {
	io.mu.Lock()
	defer io.mu.Unlock()
	res, ok := io.takeLocked(slot, chunk)
	slot.hasDisplaced = false
	if ok && next != nil && round >= io.flushed.Load() {
		slot.displaced, slot.hasDisplaced = io.roundFor(round).addReq(*next)
	}
	return res, ok
}

// unconsume undoes a consumeNext whose fault check failed: the result
// goes back into the slot so a retry re-consumes it, and the eagerly
// queued follow-on (if any) is retracted — the old scheduler never
// submitted it until the read succeeded, and the differential harness
// holds this path to that behavior.  The caller's stream lock
// serializes it against every other operation on the slot.
func (io *IOSched) unconsume(slot *ioSlot, res ioResult, round int64, next *ioReq) {
	io.mu.Lock()
	defer io.mu.Unlock()
	slot.chunk, slot.cost, slot.disk, slot.full = res.chunk, res.cost, res.disk, true
	if next == nil {
		return
	}
	restore := slot.hasDisplaced
	slot.hasDisplaced = false
	for ri, r := range io.pending {
		if r.seq != round {
			continue
		}
		if next.nalt > 0 {
			// The eager queue routed a replicated chunk to the flex list.
			for j := range r.flex {
				if r.flex[j].sid == next.sid {
					copy(r.flex[j:], r.flex[j+1:])
					r.flex = r.flex[:len(r.flex)-1]
					break
				}
			}
			if restore {
				r.flexInsert(slot.displaced)
			}
		} else {
			for bi := range r.batches {
				b := &r.batches[bi]
				if b.disk != next.disk {
					continue
				}
				for j := range b.reqs {
					if b.reqs[j].sid == next.sid {
						b.load -= b.reqs[j].bytes
						copy(b.reqs[j:], b.reqs[j+1:])
						b.reqs = b.reqs[:len(b.reqs)-1]
						break
					}
				}
				if restore {
					// The eager queue had replaced an earlier same-stream
					// request (found by FuzzSCANEDFOrder, seed
					// e9318929d9b848a3): put it back, the old scheduler
					// would still hold it.
					b.insert(slot.displaced)
				}
				if len(b.reqs) == 0 {
					// Shift the batch out, and park its (emptied) request
					// buffer in the vacated slot: leaving the neighbor's
					// slice header there would alias a live batch's array
					// when batchFor later reclaims the truncated region
					// (found by FuzzSCANEDFOrder, seed 14d7f6ab65a64f66).
					spare := b.reqs
					b.load = 0
					copy(r.batches[bi:], r.batches[bi+1:])
					last := len(r.batches) - 1
					r.batches[last] = diskBatch{reqs: spare}
					r.batches = r.batches[:last]
				}
				break
			}
		}
		if len(r.batches) == 0 && len(r.flex) == 0 {
			// The retraction emptied the round; drop it so an empty
			// round is never counted as serviced.
			copy(io.pending[ri:], io.pending[ri+1:])
			io.pending[len(io.pending)-1] = nil
			io.pending = io.pending[:len(io.pending)-1]
			io.putRound(r)
		}
		return
	}
}

// drop discards any serviced result held for the stream (cache hits and
// closes make prefetched results moot).
func (io *IOSched) drop(slot *ioSlot) {
	io.mu.Lock()
	slot.full = false
	io.mu.Unlock()
}

// noteDemand accounts a chunk read that bypassed the rounds, and whether
// it paid a positioning cost.
func (io *IOSched) noteDemand(seeked bool) {
	io.mu.Lock()
	io.stats.Demand++
	if seeked {
		io.stats.SeeksCharged++
	}
	sink := io.sink
	io.mu.Unlock()
	if sink != nil {
		sink.Count("storage.iosched.demand", 1)
		if seeked {
			sink.Count("storage.iosched.seeks_charged", 1)
		}
	}
}

// noteFailover accounts a read redirected to a surviving replica after
// the serviced copy's disk failed.
func (io *IOSched) noteFailover() {
	io.mu.Lock()
	io.stats.Failovers++
	io.mu.Unlock()
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
