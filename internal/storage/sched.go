package storage

// sched.go implements IOSched, the per-device round scheduler.  Streams
// driven by the wavefront executor submit the *next* chunk they will
// need while consuming the current one; all requests submitted during
// one graph tick form a round.  When the first stream of a later tick
// consumes its result, every complete earlier round is serviced: each
// disk's batch is ordered SCAN-EDF — earliest playback deadline first,
// ties by track position, then stream — and charged one positioned seek
// per run of adjacent tracks instead of one full seek per chunk.
//
// Determinism under parallel execution is structural.  The executor's
// tick barrier guarantees that every submission of round T happens
// before any activity of tick T+1 runs, so by the time flushBefore(T+1)
// fires, round T's batch content is complete and identical no matter how
// many workers raced through tick T.  The SCAN-EDF sort key (deadline,
// track, stream, chunk) is total, so the service order — and with it the
// per-disk head walk, every seek charge and every counter — is
// independent of submission order.  Within one flush, rounds are
// serviced in ascending round order and disks in ID order.
//
// IOSched runs entirely in virtual time: servicing a batch prices the
// requests, it does not block anything.

import (
	"sort"
	"sync"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
	"avdb/internal/obs"
)

// ioReq is one stream's request for one chunk, tagged with the playback
// deadline its consumer attached.
type ioReq struct {
	sid      int64 // submitting stream
	chunk    int
	bytes    int64
	disk     *device.Disk
	track    int
	rate     media.DataRate   // stream rate, prices the transfer
	now      avtime.WorldTime // submission (tick) time
	deadline avtime.WorldTime // when the chunk must be presentable
}

// ioResult is a serviced request waiting for its stream to consume it.
type ioResult struct {
	chunk int
	cost  avtime.WorldTime // what the consuming read is charged
}

// IOStats summarizes the scheduler's behavior.
type IOStats struct {
	Rounds         int64 // service rounds completed
	Batches        int64 // per-disk batches serviced
	Scheduled      int64 // requests serviced inside rounds
	Demand         int64 // chunk reads that bypassed the rounds
	SeeksCharged   int64 // positioning costs actually charged (incl. demand)
	SeeksSaved     int64 // scheduled requests that rode an adjacent run for free
	DeadlineMisses int64 // requests whose disk finished past their deadline
	RoundsOverrun  int64 // per-disk batches whose service ran past their last deadline
	MaxBatch       int   // largest per-disk batch seen
}

// IOSched batches chunk requests into per-device service rounds.
type IOSched struct {
	mu      sync.Mutex
	sink    obs.Sink
	pending map[int64]map[string]map[int64]ioReq // round -> disk -> stream -> request
	results map[int64]ioResult                   // stream -> last serviced request
	heads   map[string]int                       // disk -> head track after last round
	flushed int64                                // rounds below this are serviced
	stats   IOStats
}

func newIOSched(sink obs.Sink) *IOSched {
	return &IOSched{
		sink:    sink,
		pending: make(map[int64]map[string]map[int64]ioReq),
		results: make(map[int64]ioResult),
		heads:   make(map[string]int),
	}
}

// setSink swaps the observability sink (streams opened later observe
// through the store's current sink; the scheduler follows it).
func (io *IOSched) setSink(s obs.Sink) {
	io.mu.Lock()
	io.sink = s
	io.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (io *IOSched) Stats() IOStats {
	io.mu.Lock()
	defer io.mu.Unlock()
	return io.stats
}

// submit queues a request into the given round.  A stream resubmitting
// in the same round replaces its previous request, so retried reads stay
// idempotent.
func (io *IOSched) submit(round int64, q ioReq) {
	io.mu.Lock()
	defer io.mu.Unlock()
	if round < io.flushed {
		// The round was already serviced (a straggler after a seek or
		// degrade); the request becomes a demand read at consumption.
		return
	}
	byDev := io.pending[round]
	if byDev == nil {
		byDev = make(map[string]map[int64]ioReq)
		io.pending[round] = byDev
	}
	bySid := byDev[q.disk.ID()]
	if bySid == nil {
		bySid = make(map[int64]ioReq)
		byDev[q.disk.ID()] = bySid
	}
	bySid[q.sid] = q
}

// flushBefore services every pending round strictly below round, in
// ascending order.  The caller's tick barrier guarantees those rounds
// are complete.
func (io *IOSched) flushBefore(round int64) {
	io.mu.Lock()
	defer io.mu.Unlock()
	if round <= io.flushed {
		return
	}
	var due []int64
	for r := range io.pending {
		if r < round {
			due = append(due, r)
		}
	}
	io.flushed = round
	if len(due) == 0 {
		return
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, r := range due {
		byDev := io.pending[r]
		delete(io.pending, r)
		devs := make([]string, 0, len(byDev))
		for id := range byDev {
			devs = append(devs, id)
		}
		sort.Strings(devs)
		for _, id := range devs {
			io.serviceLocked(id, byDev[id])
		}
		io.stats.Rounds++
		if io.sink != nil {
			io.sink.Count("storage.iosched.rounds", 1)
		}
	}
}

// serviceLocked prices one disk's batch SCAN-EDF; io.mu is held.
func (io *IOSched) serviceLocked(devID string, bySid map[int64]ioReq) {
	batch := make([]ioReq, 0, len(bySid))
	for _, q := range bySid {
		batch = append(batch, q)
	}
	sort.Slice(batch, func(i, j int) bool {
		a, b := batch[i], batch[j]
		if a.deadline != b.deadline {
			return a.deadline < b.deadline
		}
		if a.track != b.track {
			return a.track < b.track
		}
		if a.sid != b.sid {
			return a.sid < b.sid
		}
		return a.chunk < b.chunk
	})
	pos := io.heads[devID]
	start := batch[0].now
	for _, q := range batch {
		if q.now < start {
			start = q.now
		}
	}
	var busy avtime.WorldTime
	var misses, charged, saved int64
	last := batch[len(batch)-1].deadline // SCAN-EDF sorts by deadline, so this is the latest
	for i, q := range batch {
		var seek avtime.WorldTime
		if i == 0 || abs(q.track-pos) > 1 {
			// A new run: position the head.  Adjacent tracks ride the
			// previous transfer's momentum for free.
			seek = q.disk.SeekBetween(pos, q.track)
		}
		if seek > 0 {
			charged++
		} else {
			saved++
		}
		// The disk is busy for the seek plus the transfer at platter
		// speed; the stream is charged the seek plus the transfer at
		// its reserved rate.
		busy += seek + avtime.WorldTime(q.bytes*int64(avtime.Second)/int64(q.disk.TotalBandwidth()))
		if start+busy > q.deadline {
			misses++
		}
		cost := seek
		if q.rate > 0 {
			cost += avtime.WorldTime(q.bytes * int64(avtime.Second) / int64(q.rate))
		}
		io.results[q.sid] = ioResult{chunk: q.chunk, cost: cost}
		pos = q.track
	}
	io.heads[devID] = pos
	// An overrun batch is the round-level pressure signal: the disk was
	// still busy when its last request's deadline passed, so the round
	// as scheduled was infeasible — not just one unlucky request late.
	overrun := start+busy > last
	io.stats.Batches++
	io.stats.Scheduled += int64(len(batch))
	io.stats.SeeksCharged += charged
	io.stats.SeeksSaved += saved
	io.stats.DeadlineMisses += misses
	if overrun {
		io.stats.RoundsOverrun++
	}
	if len(batch) > io.stats.MaxBatch {
		io.stats.MaxBatch = len(batch)
	}
	if io.sink != nil {
		io.sink.Observe("storage.iosched.batch_size", int64(len(batch)))
		io.sink.Count("storage.iosched.scheduled", int64(len(batch)))
		if charged > 0 {
			io.sink.Count("storage.iosched.seeks_charged", charged)
		}
		if saved > 0 {
			io.sink.Count("storage.iosched.seeks_saved", saved)
		}
		if misses > 0 {
			io.sink.Count("storage.iosched.deadline_misses", misses)
		}
		if overrun {
			io.sink.Count("storage.iosched.overrun", 1)
		}
	}
}

// take consumes the serviced result for the stream's chunk.  A stale
// result — the stream sought or degraded past what it had prefetched —
// is discarded so the read falls back to a demand read.
func (io *IOSched) take(sid int64, chunk int) (ioResult, bool) {
	io.mu.Lock()
	defer io.mu.Unlock()
	res, ok := io.results[sid]
	if !ok {
		return ioResult{}, false
	}
	delete(io.results, sid)
	if res.chunk != chunk {
		return ioResult{}, false
	}
	return res, true
}

// peek reports whether a serviced result for the stream's chunk is
// waiting, without consuming it; used so a faulted consumption can
// retry.
func (io *IOSched) peek(sid int64, chunk int) (ioResult, bool) {
	io.mu.Lock()
	defer io.mu.Unlock()
	res, ok := io.results[sid]
	if !ok || res.chunk != chunk {
		return ioResult{}, false
	}
	return res, true
}

// drop discards any serviced result held for the stream (cache hits and
// closes make prefetched results moot).
func (io *IOSched) drop(sid int64) {
	io.mu.Lock()
	delete(io.results, sid)
	io.mu.Unlock()
}

// noteDemand accounts a chunk read that bypassed the rounds, and whether
// it paid a positioning cost.
func (io *IOSched) noteDemand(seeked bool) {
	io.mu.Lock()
	io.stats.Demand++
	if seeked {
		io.stats.SeeksCharged++
	}
	sink := io.sink
	io.mu.Unlock()
	if sink != nil {
		sink.Count("storage.iosched.demand", 1)
		if seeked {
			sink.Count("storage.iosched.seeks_charged", 1)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
