package storage

// tier.go implements the storage hierarchy: values archived on the
// jukebox tier are promoted to the disk tier — and hot values
// replicated across stripe groups — driven by a decayed per-value
// popularity counter, and demoted back when they go cold.  The paper's
// data-placement characteristic (§3.3) made placement client-visible;
// tiering makes it workload-visible: reads of un-promoted values pay
// the platter swap, reads of promoted values stream from disks at
// stripe bandwidth, and the store moves values between the tiers as
// their audience changes.
//
// Promotion is a COPY, priced in virtual time like Move: the jukebox
// keeps the archival copy (demotion just frees the disk copy), and the
// cost — disc access incl. any swap, plus the striped write — is
// charged to the startup of the stream whose access crossed the
// threshold.  Both promotion and demotion are gated on the value having
// no open streams: rebuilding the chunk layout under a live reader is
// exactly the copy-during-playback the paper warns "could be so
// time-consuming as to destroy any sense of interactivity", so a
// threshold crossed mid-stream simply defers to the next quiet access.
// Replication has no such gate — a replica adds state existing streams
// never look at (they snapshot the replica set at open).
//
// Everything here runs under the store lock; device allocations are
// virtual-time bookkeeping, not blocking work.  Fault hooks get a say
// at every step: a jammed platter swap fails the promotion cleanly
// (the value stays archival, the failed attempt still costs its time),
// and a disk outage during the copy rolls the allocations back.

import (
	"fmt"
	"math"
	"sort"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
)

// TierPolicy configures popularity-driven movement between the jukebox
// and disk tiers.  The zero value disables tiering entirely.
type TierPolicy struct {
	// PromoteAt is the decayed popularity at which a jukebox value gets
	// a disk-tier copy; <= 0 disables promotion.
	PromoteAt float64
	// DemoteBelow: SweepTiers demotes promoted values whose popularity
	// decayed under this; <= 0 disables demotion.
	DemoteBelow float64
	// HalfLife is the popularity decay half-life in virtual time; <= 0
	// means popularity never decays.
	HalfLife avtime.WorldTime
	// Width is the stripe width of promoted disk copies; <= 1 places the
	// copy on a single disk.
	Width int
	// Replicas adds extra copies of hot values across stripe groups.
	Replicas ReplicaPolicy
}

// Enabled reports whether the policy moves or copies anything.
func (p TierPolicy) Enabled() bool { return p.PromoteAt > 0 || p.Replicas.Copies > 1 }

// SetTierPolicy configures tiering for TierAccess/OpenStreamTiered
// calls made afterwards.
func (st *Store) SetTierPolicy(p TierPolicy) {
	st.mu.Lock()
	st.tiering = p
	st.mu.Unlock()
}

// Tiering reports the store's current tier policy.
func (st *Store) Tiering() TierPolicy {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.tiering
}

// decayPop applies exponential decay to the segment's popularity up to
// now and reports the result; the store lock is held.
func (s *Segment) decayPop(now, halfLife avtime.WorldTime) float64 {
	if halfLife > 0 && now > s.popAt && s.pop > 0 {
		s.pop *= math.Exp2(-float64(now-s.popAt) / float64(halfLife))
	}
	if now > s.popAt {
		s.popAt = now
	}
	return s.pop
}

// TierAccess records one access to the value at virtual time now for
// popularity-driven placement: the decayed popularity is bumped, and
// crossing the promotion or replication thresholds copies the value up
// the hierarchy.  The returned world time is the cost of any copy made,
// which the caller charges to the accessing stream's startup.  Failures
// are fail-soft — the value simply stays where it is, the attempt's
// cost is still returned, and storage.tier.* counters record what
// happened.
func (st *Store) TierAccess(id SegID, now avtime.WorldTime) avtime.WorldTime {
	st.mu.Lock()
	defer st.mu.Unlock()
	pol := st.tiering
	if !pol.Enabled() {
		return 0
	}
	s, ok := st.segments[id]
	if !ok {
		return 0
	}
	s.decayPop(now, pol.HalfLife)
	s.pop++
	var extra avtime.WorldTime
	if pol.PromoteAt > 0 && !s.promoted && s.disc >= 0 && s.openStreams == 0 && s.pop >= pol.PromoteAt {
		t, err := st.promoteLocked(s, now, pol)
		extra += t
		if err == nil {
			st.countLocked("storage.tier.promotions", 1)
		} else {
			st.countLocked("storage.tier.promote_failed", 1)
		}
	}
	if pol.Replicas.Copies > 1 && s.Striped() && s.pop >= pol.Replicas.PromoteAt &&
		len(s.replicas) < pol.Replicas.Copies-1 {
		t, err := st.addReplicaLocked(s)
		extra += t
		if err == nil {
			st.countLocked("storage.tier.replicas", 1)
		}
	}
	return extra
}

// OpenStreamTiered is OpenStream with popularity accounting: the access
// bumps the value's popularity, may promote or replicate it, and the
// returned startup time includes any copy the access triggered (charged
// to this stream's first read).  now is the caller's virtual time.
func (st *Store) OpenStreamTiered(id SegID, rate media.DataRate, now avtime.WorldTime) (*Stream, avtime.WorldTime, error) {
	return st.OpenStreamTieredWith(id, rate, now, st.Striping())
}

// OpenStreamTieredWith is OpenStreamTiered under an explicit stripe
// policy, for callers carrying a per-session override.
func (st *Store) OpenStreamTieredWith(id SegID, rate media.DataRate, now avtime.WorldTime, policy StripePolicy) (*Stream, avtime.WorldTime, error) {
	extra := st.TierAccess(id, now)
	stream, startup, err := st.OpenStreamWith(id, rate, policy)
	if err != nil {
		return nil, extra, err
	}
	if extra > 0 {
		stream.mu.Lock()
		stream.startup += extra
		stream.mu.Unlock()
	}
	return stream, startup + extra, nil
}

// promoteLocked copies a jukebox value into the disk tier: one disc
// access (paying any platter swap) reads the value, then a stripe-wide
// allocation takes the write, priced as the slowest disk's transfer.
// On any failure the allocations roll back and the value stays
// archival.  The store lock is held.
func (st *Store) promoteLocked(s *Segment, now avtime.WorldTime, pol TierPolicy) (avtime.WorldTime, error) {
	j, err := st.jukebox(s.devID)
	if err != nil {
		return 0, err
	}
	swap := !j.DiscLoaded(s.disc)
	readT, err := j.AccessTime(s.disc, s.size)
	if err != nil {
		// Swap jam: promotion fails cleanly; the attempt still cost time.
		return readT, err
	}
	if swap {
		st.countLocked("storage.tier.swaps", 1)
	}
	width := pol.Width
	if width < 1 {
		width = 1
	}
	if s.chunkDev == nil || len(s.perDev) != width {
		if err := s.buildChunkMap(width); err != nil {
			return readT, err
		}
	}
	alloc := func() ([]diskRank, []int64, error) {
		ranked := st.rankedDisks(0, 0)
		if len(ranked) < width {
			return nil, nil, fmt.Errorf("%w: %d disks for a width-%d promotion", ErrNoPlacement, len(ranked), width)
		}
		chosen := ranked[:width]
		bases := make([]int64, width)
		for k := 0; k < width; k++ {
			bases[k] = chosen[k].d.Used()
			if err := chosen[k].d.Allocate(s.perDev[k]); err != nil {
				for u := 0; u < k; u++ {
					chosen[u].d.Free(s.perDev[u])
				}
				return nil, nil, err
			}
		}
		return chosen, bases, nil
	}
	chosen, bases, err := alloc()
	if err != nil {
		// The disk tier is full of colder values: demote what the sweep
		// can and retry once.
		if st.sweepLocked(now) > 0 {
			chosen, bases, err = alloc()
		}
		if err != nil {
			return readT, err
		}
	}
	rollback := func() {
		for k := 0; k < width; k++ {
			chosen[k].d.Free(s.perDev[k])
		}
	}
	// The write half consults each target disk's fault hook as a
	// reachability probe: promoting onto a dead disk must fail now, not
	// at first read.
	var probe avtime.WorldTime
	for k := 0; k < width; k++ {
		dt, err := chosen[k].d.CheckRead(s.perDev[k])
		if err != nil {
			rollback()
			return readT + dt, err
		}
		probe += dt
	}
	var writeT avtime.WorldTime
	for k := 0; k < width; k++ {
		if t := chosen[k].d.TransferTime(s.perDev[k], 1); t > writeT {
			writeT = t
		}
	}
	s.stripe = make([]string, width)
	s.base = bases
	homes := make([]*device.Disk, width)
	for k := 0; k < width; k++ {
		s.stripe[k] = chosen[k].d.ID()
		homes[k] = chosen[k].d
	}
	s.chunkTrck = nil
	s.buildTrackMap(homes)
	s.promoted = true
	return readT + probe + writeT, nil
}

// addReplicaLocked places one extra copy of a striped value on disks
// disjoint from every existing copy, priced as the primary's read plus
// the new copy's write.  The store lock is held.
func (st *Store) addReplicaLocked(s *Segment) (avtime.WorldTime, error) {
	width := len(s.stripe)
	exclude := make(map[string]bool, width*(1+len(s.replicas)))
	for _, id := range s.stripe {
		exclude[id] = true
	}
	for _, rep := range s.replicas {
		for _, id := range rep.stripe {
			exclude[id] = true
		}
	}
	ranked := st.rankedDisks(0, 0)
	chosen := make([]*device.Disk, 0, width)
	for _, r := range ranked {
		if exclude[r.d.ID()] {
			continue
		}
		chosen = append(chosen, r.d)
		if len(chosen) == width {
			break
		}
	}
	if len(chosen) < width {
		return 0, fmt.Errorf("%w: %d disjoint disks for a width-%d replica", ErrNoPlacement, len(chosen), width)
	}
	rep := &segReplica{
		stripe: make([]string, width),
		base:   make([]int64, width),
		perDev: s.perDev,
		disks:  chosen,
	}
	for k, d := range chosen {
		rep.stripe[k] = d.ID()
		rep.base[k] = d.Used()
		if err := d.Allocate(s.perDev[k]); err != nil {
			for u := 0; u < k; u++ {
				chosen[u].Free(s.perDev[u])
			}
			return 0, err
		}
	}
	var probe avtime.WorldTime
	for k, d := range chosen {
		dt, err := d.CheckRead(s.perDev[k])
		if err != nil {
			for u, du := range chosen {
				du.Free(s.perDev[u])
			}
			return probe + dt, err
		}
		probe += dt
	}
	var readT, writeT avtime.WorldTime
	for k, id := range s.stripe {
		if dev, found := st.devices.Get(id); found {
			if d, isDisk := dev.(*device.Disk); isDisk {
				if t := d.TransferTime(s.perDev[k], 1); t > readT {
					readT = t
				}
			}
		}
	}
	for k, d := range chosen {
		if t := d.TransferTime(s.perDev[k], 1); t > writeT {
			writeT = t
		}
	}
	rep.chunkTrck = make([]int, len(s.chunkDev))
	for i, k := range s.chunkDev {
		rep.chunkTrck[i] = chosen[k].TrackOf(rep.base[k] + s.chunkOff[i])
	}
	s.replicas = append(s.replicas, rep)
	return readT + probe + writeT, nil
}

// SweepTiers demotes every promoted value that has gone cold — decayed
// popularity under DemoteBelow and no open streams — freeing its disk
// copy and replicas; the jukebox keeps the archival copy.  Values are
// swept in segment-ID order so the demotion sequence is deterministic.
// Returns how many values were demoted.
func (st *Store) SweepTiers(now avtime.WorldTime) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.sweepLocked(now)
}

func (st *Store) sweepLocked(now avtime.WorldTime) int {
	pol := st.tiering
	if pol.DemoteBelow <= 0 {
		return 0
	}
	ids := make([]SegID, 0, len(st.segments))
	for id := range st.segments {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	n := 0
	for _, id := range ids {
		s := st.segments[id]
		if !s.promoted || s.openStreams > 0 {
			continue
		}
		if s.decayPop(now, pol.HalfLife) < pol.DemoteBelow {
			st.demoteLocked(s)
			n++
		}
	}
	return n
}

// demoteLocked frees a promoted value's disk copy and replicas; the
// jukebox's archival copy remains the only one.  The store lock is
// held and the caller checked openStreams == 0.
func (st *Store) demoteLocked(s *Segment) {
	for _, rep := range s.replicas {
		for k, d := range rep.disks {
			d.Free(rep.perDev[k])
		}
	}
	s.replicas = nil
	for k, id := range s.stripe {
		if dev, found := st.devices.Get(id); found {
			if d, isDisk := dev.(*device.Disk); isDisk {
				d.Free(s.perDev[k])
			}
		}
	}
	s.stripe, s.base = nil, nil
	s.chunkDev, s.chunkOff, s.chunkSize, s.chunkTrck, s.perDev = nil, nil, nil, nil, nil
	s.promoted = false
	st.countLocked("storage.tier.demotions", 1)
}

// TierInfo describes one value's place in the hierarchy.
type TierInfo struct {
	Seg        SegID
	Device     string // archival device (the jukebox for promoted values)
	Disc       int    // jukebox disc, -1 for disk-native values
	Promoted   bool
	Popularity float64
	Copies     int // readable copies: 1 + replicas for striped values
	Streams    int // open streams
	Size       int64
}

// Tier names the storage tier serving the value's reads.
func (ti TierInfo) Tier() string {
	switch {
	case ti.Promoted:
		return "jukebox+disk"
	case ti.Disc >= 0:
		return "jukebox"
	default:
		return "disk"
	}
}

// TierInfo reports every value's tier state at virtual time now, in
// segment-ID order.
func (st *Store) TierInfo(now avtime.WorldTime) []TierInfo {
	st.mu.Lock()
	defer st.mu.Unlock()
	pol := st.tiering
	ids := make([]SegID, 0, len(st.segments))
	for id := range st.segments {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]TierInfo, 0, len(ids))
	for _, id := range ids {
		s := st.segments[id]
		copies := 1
		if s.Striped() {
			copies = 1 + len(s.replicas)
		}
		out = append(out, TierInfo{
			Seg:        id,
			Device:     s.devID,
			Disc:       s.disc,
			Promoted:   s.promoted,
			Popularity: s.decayPop(now, pol.HalfLife),
			Copies:     copies,
			Streams:    s.openStreams,
			Size:       s.size,
		})
	}
	return out
}

func (st *Store) countLocked(name string, n int64) {
	if st.sink != nil {
		st.sink.Count(name, n)
	}
}
