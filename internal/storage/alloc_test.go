package storage

// alloc_test.go pins the storage hot paths' allocation discipline with
// testing.AllocsPerRun, the same gate the activity package applies to
// the wavefront executor.  The scheduled chunk-read path must allocate
// nothing once the round buffers are warm: requests live in recycled
// flat rounds, results land in the per-stream slot, and track keys come
// from the segment's cached track map.  A regression here silently
// reintroduces per-round garbage across every playback, so it fails the
// build rather than a benchmark eyeball.

import (
	"fmt"
	"testing"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
)

// allocStreams builds the striped SCAN-EDF fixture the stripe benchmark
// uses: streams sequential readers striped over nDisks with the round
// scheduler on, reading frames chunks each.
func allocStreams(t *testing.T, streams, nDisks, frames int) []*Stream {
	t.Helper()
	dm := device.NewManager()
	for i := 0; i < nDisks; i++ {
		d := device.NewDisk(fmt.Sprintf("disk%d", i), 64_000_000,
			media.DataRate(streams)*media.MBPerSecond, 10*avtime.Millisecond)
		if err := d.SetGeometry(16, avtime.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := dm.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	st := NewStore(dm)
	st.SetStriping(StripePolicy{Seeks: true, Rounds: true})
	ss := make([]*Stream, streams)
	for j := range ss {
		v := media.NewVideoValue(media.TypeRawVideo30, 40, 30, 8)
		for i := 0; i < frames; i++ {
			if err := v.AppendFrame(media.NewFrame(40, 30, 8)); err != nil {
				t.Fatal(err)
			}
		}
		seg, err := st.PlaceStriped(v, media.MBPerSecond, nDisks)
		if err != nil {
			t.Fatal(err)
		}
		if ss[j], _, err = st.OpenStream(seg.ID(), media.MBPerSecond); err != nil {
			t.Fatal(err)
		}
	}
	return ss
}

// TestIOSchedAllocsPerRun pins the tentpole target: the steady-state
// scheduled read path — submit into a pooled round, flush, consume from
// the stream slot, eagerly queue the follow-on — performs zero heap
// allocations per round once warm.
func TestIOSchedAllocsPerRun(t *testing.T) {
	const (
		streams = 8
		frames  = 400
	)
	ss := allocStreams(t, streams, 4, frames)
	defer func() {
		for _, s := range ss {
			s.Close()
		}
	}()
	unit := media.TypeRawVideo30.Rate.UnitDuration()
	round := int64(0)
	idx := 0
	tick := func() {
		now := avtime.WorldTime(round) * unit
		for _, s := range ss {
			if _, err := s.ReadChunkTimeAt(idx, 1200, round, now, now); err != nil {
				t.Fatal(err)
			}
		}
		round++
		idx++
	}
	// Warm the round buffers, slot protocol and sink paths past the
	// first-use allocations.
	for idx < 40 {
		tick()
	}
	// AllocsPerRun runs the body runs+1 times; keep every run inside the
	// clip so no tick wraps around into a seek.
	allocs := testing.AllocsPerRun(frames-idx-2, tick)
	if allocs != 0 {
		t.Errorf("scheduled read path allocates %.1f times per round, want 0", allocs)
	}
}

// TestCacheHitAllocs is the companion gate for the PR-3 cache path: a
// read served from a resident chunk is a map probe plus an LRU bump and
// must not allocate either.
func TestCacheHitAllocs(t *testing.T) {
	dm := device.NewManager()
	d := device.NewDisk("d", 4_000_000, 8*media.MBPerSecond, 10*avtime.Millisecond)
	if err := dm.Register(d); err != nil {
		t.Fatal(err)
	}
	st := NewStore(dm)
	st.SetCachePolicy(CachePolicy{Capacity: 8})
	v := media.NewVideoValue(media.TypeRawVideo30, 40, 30, 8)
	for i := 0; i < 8; i++ {
		if err := v.AppendFrame(media.NewFrame(40, 30, 8)); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := st.Place(v, "d")
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := st.OpenStream(seg.ID(), media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Fault every chunk in, then hammer hits.
	for i := 0; i < 8; i++ {
		if _, err := s.ReadChunkTime(i, 1200); err != nil {
			t.Fatal(err)
		}
	}
	idx := 0
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.ReadChunkTime(idx%8, 1200); err != nil {
			t.Fatal(err)
		}
		idx++
	})
	if allocs != 0 {
		t.Errorf("cache-hit read path allocates %.1f times per read, want 0", allocs)
	}
	if stats := s.CacheStats(); stats.Hits == 0 {
		t.Fatalf("fixture never hit the cache: %+v", stats)
	}
}
