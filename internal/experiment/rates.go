package experiment

import (
	"fmt"

	"avdb/internal/codec"
	"avdb/internal/media"
)

// RateRow is one media data type with its uncompressed data rate, the
// numbers behind §1's "one second of high quality digital video can
// occupy tens of Mbytes".
type RateRow struct {
	Name     string
	Detail   string
	Rate     media.DataRate
	PerSec   string
	Measured float64 // measured compression ratio, 0 for raw types
}

// RatesResult tabulates the data rates of the system's media data types
// and the measured compression ratios of its codecs on program material.
type RatesResult struct {
	Rows []RateRow
}

// Rates computes the table.  Compression ratios are measured by encoding
// a standard motion clip.
func Rates() (*RatesResult, error) {
	res := &RatesResult{}
	add := func(name, detail string, r media.DataRate, ratio float64) {
		res.Rows = append(res.Rows, RateRow{Name: name, Detail: detail, Rate: r, PerSec: r.String(), Measured: ratio})
	}

	// Raw media data types of §3.1.
	ccir := media.VideoQuality{Width: 720, Height: 576, Depth: 16, FPS: 25}
	add("CCIR 601 video", ccir.String(), ccir.DataRate(), 0)
	hq := media.VideoQuality{Width: 640, Height: 480, Depth: 8, FPS: 30}
	add("workstation video", hq.String(), hq.DataRate(), 0)
	add("CD audio", "2ch 16-bit 44.1kHz", media.AudioQualityCD.DataRate(), 0)
	add("FM audio", "2ch 16-bit 22.05kHz", media.AudioQualityFM.DataRate(), 0)
	add("voice audio", "1ch 8-bit 8kHz", media.AudioQualityVoice.DataRate(), 0)

	// Measured compression on the standard clip.
	clip := stdClip(60, 15)
	q := stdQuality()
	for _, c := range []struct {
		name  string
		codec codec.VideoCodec
	}{
		{"video/jpeg-sim (intra)", codec.JPEG},
		{"video/mpeg-sim (inter)", codec.MPEG},
		{"video/dvi-sim (coarse)", codec.DVICodec},
		{"video/scalable-sim", codec.ScalableCodec},
	} {
		e, err := c.codec.Encode(clip)
		if err != nil {
			return nil, err
		}
		rate := media.DataRate(float64(q.DataRate()) / e.CompressionRatio())
		add(c.name, "encoded "+q.String(), rate, e.CompressionRatio())
	}
	return res, nil
}

// String renders the table.
func (r *RatesResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		ratio := "-"
		if row.Measured > 0 {
			ratio = fmt.Sprintf("%.1f:1", row.Measured)
		}
		rows = append(rows, []string{row.Name, row.Detail, row.PerSec, ratio})
	}
	s := "Media data rates (§3.1 examples; encoded rates measured on the standard clip)\n\n"
	s += table([]string{"media data type", "parameters", "data rate", "compression"}, rows)
	s += fmt.Sprintf("\none second of CCIR 601 video occupies %.1f MB — the storage pressure motivating AV databases\n",
		float64(r.Rows[0].Rate)/1e6)
	return s
}
