package experiment

import (
	"strings"
	"testing"

	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/media"
)

func TestTable1MatchesPaper(t *testing.T) {
	res, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's kinds, by activity.
	want := map[string]activity.ActivityKind{
		"video digitizer":           activity.KindSource,
		"video reader":              activity.KindSource,
		"video reader (compressed)": activity.KindSource,
		"video encoder":             activity.KindTransformer,
		"video decoder":             activity.KindTransformer,
		"video tee":                 activity.KindTransformer,
		"video mixer":               activity.KindTransformer,
		"video window":              activity.KindSink,
		"video writer":              activity.KindSink,
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		if row.Kind != want[row.Activity] {
			t.Errorf("%s: kind %v, want %v", row.Activity, row.Kind, want[row.Activity])
		}
	}
	out := res.String()
	for _, needle := range []string{"video mixer", "transformer", "video/jpeg-sim", "video/raw30"} {
		if !strings.Contains(out, needle) {
			t.Errorf("rendition missing %q:\n%s", needle, out)
		}
	}
}

func TestFig1TimelineShape(t *testing.T) {
	res, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 1 has exactly four boundaries t0..t3.
	if len(res.Boundaries) != 4 {
		t.Fatalf("boundaries = %v", res.Boundaries)
	}
	if res.Boundaries[0] != 0 || res.Boundaries[3] != 12*avtime.Second {
		t.Errorf("outer boundaries = %v", res.Boundaries)
	}
	if res.Boundaries[1] != 2*avtime.Second || res.Boundaries[2] != 10*avtime.Second {
		t.Errorf("inner boundaries = %v", res.Boundaries)
	}
	out := res.String()
	for _, needle := range []string{"videoTrack", "englishTrack", "frenchTrack", "subtitleTrack", "t3 ="} {
		if !strings.Contains(out, needle) {
			t.Errorf("rendition missing %q", needle)
		}
	}
}

func TestFig2CompositeEquivalence(t *testing.T) {
	res, err := Fig2(45)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Error("composite output differs from flat chain")
	}
	if res.FlatTicks != res.CompositeTicks {
		t.Errorf("tick counts differ: %d vs %d", res.FlatTicks, res.CompositeTicks)
	}
	if res.FlatBytes != res.CompositeBytes {
		t.Errorf("delivered bytes differ: %d vs %d", res.FlatBytes, res.CompositeBytes)
	}
	if res.CompressionRate <= 1 {
		t.Errorf("compression = %.2f", res.CompressionRate)
	}
	if !strings.Contains(res.String(), "byte-identical: true") {
		t.Error("rendition wrong")
	}
}

func TestFig3SyncBeatsIndependent(t *testing.T) {
	res, err := Fig3(90)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 90 {
		t.Errorf("frames = %d", res.Frames)
	}
	if res.SamplesPlayed == 0 {
		t.Error("no audio played")
	}
	// The design claim: temporal composition + resynchronization bounds
	// skew well below the uncorrelated configuration.
	if res.CompositeSkew*2 >= res.IndependentSkew {
		t.Errorf("composite skew %v not well under independent %v",
			res.CompositeSkew, res.IndependentSkew)
	}
	if res.MissRate > 0.05 {
		t.Errorf("miss rate = %.2f", res.MissRate)
	}
	if !strings.Contains(res.String(), "MultiSource") {
		t.Error("rendition wrong")
	}
}

func TestFig4ClientRenderingSavesBandwidth(t *testing.T) {
	res, err := Fig4(40, 320, 240, 10*media.MBPerSecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	client, dbSide := res.Rows[0], res.Rows[1]
	if !client.NeedsClientGPU || dbSide.NeedsClientGPU {
		t.Error("GPU flags wrong")
	}
	if client.Frames == 0 || dbSide.Frames == 0 {
		t.Fatal("frames lost")
	}
	// The 64x48 texture stream is far smaller than the 320x240 rendered
	// view: rendering at the client wins on wire bytes.
	if client.WireBytes*4 >= dbSide.WireBytes {
		t.Errorf("client rendering wire %d not well under db rendering %d",
			client.WireBytes, dbSide.WireBytes)
	}
	if client.SustainableFPS <= dbSide.SustainableFPS {
		t.Error("sustainable fps ordering wrong")
	}
	if !strings.Contains(res.String(), "render at database") {
		t.Error("rendition wrong")
	}
}

func TestC1ProcessingAtDataHalvesTraffic(t *testing.T) {
	res, err := C1DevicePlacement(30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Factor < 1.9 || res.Factor > 2.1 {
		t.Errorf("factor = %.2f, want ~2 (two streams vs one)", res.Factor)
	}
	if !strings.Contains(res.String(), "2.0x") {
		t.Errorf("rendition:\n%s", res.String())
	}
}

func TestC2AdmissionPreventsMisses(t *testing.T) {
	res, err := C2AdmissionControl(12, 60)
	if err != nil {
		t.Fatal(err)
	}
	// The 4 MB/s disk sustains 45 of the ~92KB/s streams; requesting 12
	// admits all 12... compute the real capacity instead of guessing:
	capacity := int(res.DiskRate / res.StreamRate)
	wantAdmitted := min(res.Requested, capacity)
	if res.Admitted != wantAdmitted {
		t.Errorf("admitted = %d, want %d", res.Admitted, wantAdmitted)
	}
	if res.AdmittedMisses != 0 {
		t.Errorf("admitted streams missed %.1f%%", 100*res.AdmittedMisses)
	}
	if res.String() == "" {
		t.Error("empty rendition")
	}
}

func TestC2BestEffortMissesWhenOversubscribed(t *testing.T) {
	// Push far past capacity so fair sharing cannot keep up.
	res, err := C2AdmissionControl(120, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted >= res.Requested {
		t.Fatalf("oversubscription not reached: admitted %d of %d", res.Admitted, res.Requested)
	}
	if res.AdmittedMisses != 0 {
		t.Errorf("admitted streams missed %.1f%%", 100*res.AdmittedMisses)
	}
	if res.BestEffortMisses < 0.5 {
		t.Errorf("best effort missed only %.1f%%", 100*res.BestEffortMisses)
	}
	if res.BestEffortWorst <= 0 {
		t.Error("no lateness recorded")
	}
}

func TestC3AsyncFinishesSooner(t *testing.T) {
	res, err := C3AsyncVsBlocking(60, 5*avtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.AsyncDone >= res.BlockingDone {
		t.Errorf("async %v not sooner than blocking %v", res.AsyncDone, res.BlockingDone)
	}
	if res.FirstResultAt >= res.TransferEnd {
		t.Errorf("async first result %v not before transfer end %v", res.FirstResultAt, res.TransferEnd)
	}
	if res.Speedup <= 1 {
		t.Errorf("speedup = %.2f", res.Speedup)
	}
	if res.String() == "" {
		t.Error("empty rendition")
	}
}

func TestC4PlacementPreservesInteractivity(t *testing.T) {
	res, err := C4DataPlacement(90)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interactive {
		t.Errorf("dual-device startup %v not interactive", res.DualDevice)
	}
	if res.Factor < 5 {
		t.Errorf("same-device copy only %.1fx slower (%v vs %v)",
			res.Factor, res.SameDevice, res.DualDevice)
	}
	if res.String() == "" {
		t.Error("empty rendition")
	}
}

func TestC5ScalableServesCheaper(t *testing.T) {
	res, err := C5QualityFactors(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byKey := make(map[string]C5Row)
	for _, r := range res.Rows {
		byKey[r.Stored+"/"+r.Requested.String()] = r
	}
	low := media.VideoQuality{Width: clipW / 4, Height: clipH / 4, Depth: clipDepth, FPS: clipFPS}.String()
	sc := byKey["scalable/"+low]
	mp := byKey["mpeg-sim/"+low]
	if sc.Method != "layer-drop" || mp.Method != "transcode" {
		t.Errorf("methods = %s, %s", sc.Method, mp.Method)
	}
	if sc.BytesProcessed >= mp.BytesProcessed {
		t.Errorf("layer drop (%d) not cheaper than transcode (%d)",
			sc.BytesProcessed, mp.BytesProcessed)
	}
	full := stdQuality().String()
	if byKey["scalable/"+full].Method != "direct" {
		t.Error("full-quality scalable retrieval not direct")
	}
	if !strings.Contains(res.String(), "layer-drop") {
		t.Error("rendition wrong")
	}
}

func TestFig4SweepCrossover(t *testing.T) {
	rows, err := Fig4Sweep(20, 320, 240, []media.DataRate{
		500 * media.KBPerSecond, 2 * media.MBPerSecond,
		5 * media.MBPerSecond, 40 * media.MBPerSecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Monotone in link rate; client render always sustains more.
	for i, r := range rows {
		if r.ClientFPS <= r.DBFPS {
			t.Errorf("row %d: client %v not above db %v", i, r.ClientFPS, r.DBFPS)
		}
		if i > 0 && (r.ClientFPS <= rows[i-1].ClientFPS || r.DBFPS <= rows[i-1].DBFPS) {
			t.Errorf("row %d: fps not monotone in link rate", i)
		}
	}
	// The crossover: narrow links serve only GPU clients; wide links both.
	if rows[0].FullRateAt != "client-render only" {
		t.Errorf("narrow link: %s", rows[0].FullRateAt)
	}
	if rows[len(rows)-1].FullRateAt != "both" {
		t.Errorf("wide link: %s", rows[len(rows)-1].FullRateAt)
	}
	if SweepString(rows) == "" {
		t.Error("empty rendition")
	}
}

func TestRatesTable(t *testing.T) {
	res, err := Rates()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// CCIR 601 occupies tens of MB per second, as §1 claims.
	if res.Rows[0].Rate < 10*media.MBPerSecond {
		t.Errorf("CCIR rate = %v", res.Rows[0].Rate)
	}
	// Inter coding compresses harder than intra on the standard clip.
	var intra, inter float64
	for _, r := range res.Rows {
		switch {
		case strings.Contains(r.Name, "jpeg"):
			intra = r.Measured
		case strings.Contains(r.Name, "mpeg"):
			inter = r.Measured
		}
	}
	if inter <= intra {
		t.Errorf("inter %.1f:1 not above intra %.1f:1", inter, intra)
	}
	if !strings.Contains(res.String(), "CCIR 601") {
		t.Error("rendition wrong")
	}
}

func TestExperimentsAreDeterministic(t *testing.T) {
	// The reproducibility claim: every experiment's rendition is
	// bit-identical across runs (all jitter and content is seeded).
	run := func() []string {
		f2, err := Fig2(30)
		if err != nil {
			t.Fatal(err)
		}
		f3, err := Fig3(45)
		if err != nil {
			t.Fatal(err)
		}
		c5, err := C5QualityFactors(10)
		if err != nil {
			t.Fatal(err)
		}
		return []string{f2.String(), f3.String(), c5.String()}
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("experiment %d not deterministic:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}
