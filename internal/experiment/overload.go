package experiment

import (
	"errors"
	"fmt"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/core"
	"avdb/internal/device"
	"avdb/internal/media"
	"avdb/internal/netsim"
	"avdb/internal/sched"
	"avdb/internal/schema"
	"avdb/internal/storage"
)

// The overload experiment: n sessions — half high priority playing half
// the clip, half low priority playing all of it — share two disks sized
// so the full-quality load is infeasible: each disk's SCAN-EDF round
// busy time exceeds the frame period, so every round overruns and
// deadlines miss.  A late joiner on its own (idle) third disk tries to
// start mid-run and again near the end.
//
// With overload control on, the engine's detector sees the misses and
// overruns, escalates to Overloaded, degrades the low-priority sessions
// (halved geometry = a quarter of the bytes) until the rounds fit,
// sheds the late joiner's first Start with ErrOverloaded, and restores
// quality — and admits the retry — once the high-priority streams
// finish and pressure clears.  With it off the same load just thrashes:
// every round overruns for the whole run and the late joiner is
// admitted straight into the storm.
const (
	overloadSeek      = avtime.Millisecond      // per-round positioning cost
	overloadTolerance = 40 * avtime.Millisecond // presentation-deadline slack
	overloadLatency   = avtime.Millisecond      // lan0 latency
	overloadSeed      = 7
	overloadLateTry   = 12 // frame at which the late joiner first tries
)

// overloadDiskBW sizes the two loaded disks so one full-quality frame
// read costs 20 ms of transfer: two streams per disk plus two seeks is
// a 42 ms round against a 33.3 ms period (infeasible), while one full
// and one degraded stream cost 27 ms (feasible again).
func overloadDiskBW() media.DataRate {
	frameBytes := int64(clipW * clipH * clipDepth / 8)
	return media.DataRate(frameBytes * 50)
}

// OverloadSession is one admitted stream's outcome.
type OverloadSession struct {
	Client   string
	Priority sched.Priority
	Disk     string
	Frames   int
	Shown    int
	Degraded int // EventDegraded edges seen at the window
	Restored int // EventRestored edges seen at the window
	Misses   int // presentation misses + undelivered frames
	Err      string
}

// OverloadArm is one run of the workload, control on or off.
type OverloadArm struct {
	Control  bool
	Sessions []OverloadSession

	// Late joiner outcomes.
	LateShedAt    int    // frame of the rejected Start (0 = never shed)
	LateRetryHint string // virtual-time hint carried by ErrOverloaded
	LateAdmitted  int    // frame of the successful Start (0 = never ran)
	LateShown     int
	LateFrames    int

	// Engine and storage accounting.
	Pressure    string // final pressure level
	Transitions int64
	Rejected    int64
	Swept       int64 // sweep degradations
	Restores    int64 // sweep restores
	Misses      int64 // storage deadline misses
	Served      int64 // storage requests served
	Overruns    int64 // SCAN-EDF rounds that overran the period
}

// MissRate is storage deadline misses over requests served.
func (a *OverloadArm) MissRate() float64 {
	if a.Served == 0 {
		return 0
	}
	return float64(a.Misses) / float64(a.Served)
}

// OverloadResult is the ablation: identical load, control on vs off.
type OverloadResult struct {
	Frames   int
	SessionN int
	DiskBW   media.DataRate
	On       OverloadArm
	Off      OverloadArm
}

// Overload runs the overload-control ablation over n sessions (n even,
// >= 2) of a frames-long clip.
func Overload(frames, n int) (*OverloadResult, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("experiment: overload needs an even session count >= 2, got %d", n)
	}
	if frames < 8*overloadLateTry {
		return nil, fmt.Errorf("experiment: overload needs frames >= %d, got %d", 8*overloadLateTry, frames)
	}
	on, err := overloadArm(frames, n, true)
	if err != nil {
		return nil, err
	}
	off, err := overloadArm(frames, n, false)
	if err != nil {
		return nil, err
	}
	return &OverloadResult{Frames: frames, SessionN: n, DiskBW: overloadDiskBW(), On: *on, Off: *off}, nil
}

// overloadStream is one wired session awaiting Start.
type overloadStream struct {
	out   OverloadSession
	sess  *core.Session
	vr    *activities.VideoReader
	win   *activities.VideoWindow
	grant *sched.Grant
}

func overloadArm(frames, n int, control bool) (*OverloadArm, error) {
	frameBytes := int64(clipW * clipH * clipDepth / 8)
	q := stdQuality()
	rate := q.DataRate()
	clipBytes := int64(frames) * frameBytes
	db, err := core.Open(core.Config{
		Name: "overload",
		Resources: sched.Resources{
			Buffers: 8*n + 16,
			CPU:     100 * media.MBPerSecond,
			Bus:     100 * media.MBPerSecond,
		},
		Striping: storage.StripePolicy{Seeks: true, Rounds: true},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 3; i++ {
		d := device.NewDisk(fmt.Sprintf("disk%d", i), 4*clipBytes+frameBytes, overloadDiskBW(), overloadSeek)
		if err := db.Devices().Register(d); err != nil {
			return nil, err
		}
	}
	linkBW := media.DataRate(n+2) * rate
	if err := db.Network().AddLink(netsim.NewLink("lan0", linkBW, overloadLatency, 0, overloadSeed)); err != nil {
		return nil, err
	}
	if _, err := db.DefineClass("Clip", "", []schema.AttrDef{
		{Name: "title", Kind: schema.KindString},
		{Name: "video", Kind: schema.KindMedia, MediaKind: media.KindVideo},
	}); err != nil {
		return nil, err
	}

	var det *sched.OverloadDetector
	if control {
		det = db.Engine().EnableOverloadControl(sched.OverloadPolicy{})
	}
	_ = det

	// build wires one degradable stream over its clip on the given disk.
	// placeRate is the disk-bandwidth reservation: the loaded disks are
	// booked optimistically (below the streams' true appetite) — exactly
	// the §3.3 admission the engine's runtime control has to clean up
	// after.
	build := func(client, disk string, clipFrames int, prio sched.Priority, placeRate media.DataRate) (*overloadStream, error) {
		obj, err := db.NewObject("Clip")
		if err != nil {
			return nil, err
		}
		if err := db.SetAttr(obj.OID(), "title", schema.String(client)); err != nil {
			return nil, err
		}
		if err := db.SetAttr(obj.OID(), "video", schema.Media(stdClip(clipFrames, overloadSeed))); err != nil {
			return nil, err
		}
		if _, err := db.PlaceMedia(obj.OID(), "video", disk, placeRate); err != nil {
			return nil, err
		}
		sess, err := db.Connect(client, "lan0")
		if err != nil {
			return nil, err
		}
		sess.SetPriority(prio)
		vr, err := activities.NewVideoReader("reader", activity.AtDatabase, media.TypeRawVideo30)
		if err != nil {
			return nil, err
		}
		win := activities.NewVideoWindow("window", activity.AtApplication, media.VideoQuality{}, overloadTolerance)
		for _, a := range []activity.Activity{vr, win} {
			if err := sess.Install(a, sched.Resources{}); err != nil {
				return nil, err
			}
		}
		conn, err := sess.Connect(vr, "out", win, "in", rate)
		if err != nil {
			return nil, err
		}
		if err := sess.BindValue(obj.OID(), "video", vr, "out", placeRate); err != nil {
			return nil, err
		}
		grant, err := db.Admission().Reserve(core.ResourcesForVideo(q))
		if err != nil {
			return nil, err
		}
		// Every session arms the same degradation path.  No stall detector
		// is wired, so nothing self-degrades: the engine's sweep alone
		// decides who gives up quality, lowest class first — the ablation's
		// whole contrast.
		fallback := media.VideoQuality{Width: clipW / 2, Height: clipH / 2, Depth: clipDepth, FPS: clipFPS}
		if err := sess.EnableDegradation(core.DegradeSpec{
			Source: vr, Port: "out", Sink: win, Quality: fallback, Grant: grant, Conn: conn.Network(),
		}); err != nil {
			return nil, err
		}
		st := &overloadStream{
			out:  OverloadSession{Client: client, Priority: prio, Disk: disk, Frames: clipFrames},
			sess: sess, vr: vr, win: win, grant: grant,
		}
		if err := win.Catch(activity.EventDegraded, func(activity.EventInfo) { st.out.Degraded++ }); err != nil {
			return nil, err
		}
		if err := win.Catch(activity.EventRestored, func(activity.EventInfo) { st.out.Restored++ }); err != nil {
			return nil, err
		}
		return st, nil
	}

	// Half the sessions are high priority and play half the clip; the
	// other half are low priority and play it all.  Alternating disks
	// puts one of each class on each loaded spindle.
	streams := make([]*overloadStream, n)
	for i := 0; i < n; i++ {
		prio, clipFrames := sched.PriorityHigh, frames/2
		if i >= n/2 {
			prio, clipFrames = sched.PriorityLow, frames
		}
		st, err := build(fmt.Sprintf("s%d-%s", i, prio), fmt.Sprintf("disk%d", i%2), clipFrames, prio, overloadDiskBW()/media.DataRate(n))
		if err != nil {
			return nil, err
		}
		streams[i] = st
	}

	arm := &OverloadArm{Control: control, LateFrames: frames / 4}
	late, err := build("late-joiner", "disk2", arm.LateFrames, sched.PriorityHigh, rate)
	if err != nil {
		return nil, err
	}

	// The late joiner starts from inside the run: an EachFrame handler on
	// the longest-lived stream fires Session.Start at frame overloadLateTry
	// (deep in the overload) and again at 3/4 of the run (after the
	// high-priority streams finished and pressure cleared).  Handlers run
	// on the engine goroutine, where Start is safe and the shed gate's
	// answer is deterministic.
	var latePB *core.Playback
	lastLow := streams[n-1]
	lateRetry := frames * 3 / 4
	frameCount := 0
	if err := lastLow.vr.Catch(activity.EventEachFrame, func(activity.EventInfo) {
		frameCount++
		if (frameCount != overloadLateTry && frameCount != lateRetry) || latePB != nil {
			return
		}
		pb, err := late.sess.Start()
		if err != nil {
			var oe *core.OverloadError
			if errors.As(err, &oe) {
				arm.LateShedAt = frameCount
				arm.LateRetryHint = oe.RetryAfter.String()
			} else {
				late.out.Err = err.Error()
			}
			return
		}
		latePB = pb
		arm.LateAdmitted = frameCount
	}); err != nil {
		return nil, err
	}

	db.Engine().Pause()
	pbs := make([]*core.Playback, n)
	for i, st := range streams {
		pb, err := st.sess.Start()
		if err != nil {
			return nil, fmt.Errorf("experiment: overload start %s: %w", st.out.Client, err)
		}
		pbs[i] = pb
	}
	db.Engine().Resume()

	for i, pb := range pbs {
		if _, err := pb.Wait(); err != nil {
			streams[i].out.Err = err.Error()
		}
	}
	if latePB != nil {
		if _, err := latePB.Wait(); err != nil {
			late.out.Err = err.Error()
		}
	}

	for _, st := range append(append([]*overloadStream{}, streams...), late) {
		st.out.Shown = st.win.FramesShown()
		st.out.Misses = st.win.Monitor().Misses() + (st.out.Frames - st.out.Shown)
		if latePB == nil && st == late {
			st.out.Misses = 0 // never admitted: nothing was due
		}
	}
	arm.LateShown = late.out.Shown
	for _, st := range streams {
		arm.Sessions = append(arm.Sessions, st.out)
	}

	est := db.Engine().Stats()
	arm.Pressure = est.Pressure.String()
	arm.Transitions = est.Transitions
	arm.Rejected = est.Rejected
	arm.Swept = est.Degraded
	arm.Restores = est.Restored
	io := db.MediaIOStats()
	arm.Misses = io.DeadlineMisses
	arm.Served = io.Scheduled + io.Demand
	arm.Overruns = io.RoundsOverrun

	for _, st := range append(append([]*overloadStream{}, streams...), late) {
		st.grant.Release()
		if err := st.sess.Close(); err != nil {
			return nil, fmt.Errorf("experiment: overload close %s: %w", st.out.Client, err)
		}
	}
	return arm, nil
}

// String renders the ablation.
func (r *OverloadResult) String() string {
	s := fmt.Sprintf("Overload: %d sessions + 1 late joiner over 2 loaded disks (%d frames, %d B/s per disk)\n",
		r.SessionN, r.Frames, int64(r.DiskBW))
	s += "half high priority (half-length clips), half low; every round overruns at full quality\n"
	s += "control on = detector + degrade sweeps + shed; control off = admit everything and thrash\n"
	for _, arm := range []*OverloadArm{&r.On, &r.Off} {
		mode := "off"
		if arm.Control {
			mode = "on"
		}
		s += fmt.Sprintf("\narm: control %s\n", mode)
		header := []string{"session", "priority", "disk", "frames", "shown", "degraded", "restored", "misses", "error"}
		rows := make([][]string, 0, len(arm.Sessions))
		for _, os := range arm.Sessions {
			errCell := "-"
			if os.Err != "" {
				errCell = os.Err
			}
			rows = append(rows, []string{
				os.Client, os.Priority.String(), os.Disk,
				fmt.Sprint(os.Frames), fmt.Sprint(os.Shown),
				fmt.Sprint(os.Degraded), fmt.Sprint(os.Restored),
				fmt.Sprint(os.Misses), errCell,
			})
		}
		s += table(header, rows)
		switch {
		case arm.LateShedAt > 0 && arm.LateAdmitted > 0:
			s += fmt.Sprintf("late joiner: shed at frame %d (retry hint %s), admitted at frame %d, shown %d/%d\n",
				arm.LateShedAt, arm.LateRetryHint, arm.LateAdmitted, arm.LateShown, arm.LateFrames)
		case arm.LateAdmitted > 0:
			s += fmt.Sprintf("late joiner: admitted at frame %d (never shed), shown %d/%d\n",
				arm.LateAdmitted, arm.LateShown, arm.LateFrames)
		default:
			s += "late joiner: never admitted\n"
		}
		if arm.Control {
			s += fmt.Sprintf("pressure: final=%s transitions=%d rejected=%d degraded=%d restored=%d\n",
				arm.Pressure, arm.Transitions, arm.Rejected, arm.Swept, arm.Restores)
		}
		s += fmt.Sprintf("io: deadline misses=%d/%d served (%.1f%%), rounds overrun=%d\n",
			arm.Misses, arm.Served, 100*arm.MissRate(), arm.Overruns)
	}
	return s
}
