package experiment

import (
	"fmt"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/codec"
	"avdb/internal/sched"
)

// Fig2Result reproduces Fig. 2: the read → decode → display chain run
// flat (top of the figure) and with read and decode folded into a
// composite "source" (bottom).  The two configurations must deliver
// byte-identical frames; the composite must add no measurable stream
// overhead.
type Fig2Result struct {
	Frames          int
	FlatTicks       int
	CompositeTicks  int
	Identical       bool
	FlatBytes       int64 // bytes delivered to the display, flat chain
	CompositeBytes  int64
	EncodedSize     int64
	CompressionRate float64
}

// Fig2 runs both configurations of the figure over the same stored
// compressed value.
func Fig2(frames int) (*Fig2Result, error) {
	clip := stdClip(frames, 2)
	enc, err := codec.MPEG.Encode(clip)
	if err != nil {
		return nil, err
	}

	runChain := func(composite bool) (*activities.VideoWindow, int, error) {
		reader, err := activities.NewVideoReader("read", activity.AtDatabase, codec.TypeMPEGVideo)
		if err != nil {
			return nil, 0, err
		}
		if err := reader.Bind(enc, "out"); err != nil {
			return nil, 0, err
		}
		sd, err := codec.NewVideoStreamDecoder(clipW, clipH, clipDepth, 2)
		if err != nil {
			return nil, 0, err
		}
		dec, err := activities.NewVideoDecoder("decode", activity.AtDatabase, codec.TypeMPEGVideo, sd)
		if err != nil {
			return nil, 0, err
		}
		window := activities.NewVideoWindow("display", activity.AtApplication, stdQuality(), 0)
		window.KeepFrames()

		g := activity.NewGraph("fig2")
		if composite {
			source := activity.NewComposite("source", "Source", activity.AtDatabase)
			if err := source.Install(reader); err != nil {
				return nil, 0, err
			}
			if err := source.Install(dec); err != nil {
				return nil, 0, err
			}
			if _, err := source.ConnectChildren(reader, "out", dec, "in"); err != nil {
				return nil, 0, err
			}
			if err := source.ExportOut("out", dec, "out"); err != nil {
				return nil, 0, err
			}
			if err := g.Add(source); err != nil {
				return nil, 0, err
			}
			if err := g.Add(window); err != nil {
				return nil, 0, err
			}
			if _, err := g.Connect(source, "out", window, "in"); err != nil {
				return nil, 0, err
			}
		} else {
			for _, a := range []activity.Activity{reader, dec, window} {
				if err := g.Add(a); err != nil {
					return nil, 0, err
				}
			}
			if _, err := g.Connect(reader, "out", dec, "in"); err != nil {
				return nil, 0, err
			}
			if _, err := g.Connect(dec, "out", window, "in"); err != nil {
				return nil, 0, err
			}
		}
		if err := g.Start(); err != nil {
			return nil, 0, err
		}
		stats, err := g.Run(activity.RunConfig{Clock: sched.NewVirtualClock(0)})
		if err != nil {
			return nil, 0, err
		}
		return window, stats.Ticks, nil
	}

	flat, flatTicks, err := runChain(false)
	if err != nil {
		return nil, err
	}
	comp, compTicks, err := runChain(true)
	if err != nil {
		return nil, err
	}
	identical := len(flat.Frames()) == len(comp.Frames())
	if identical {
		for i := range flat.Frames() {
			if !flat.Frames()[i].Equal(comp.Frames()[i]) {
				identical = false
				break
			}
		}
	}
	return &Fig2Result{
		Frames:          frames,
		FlatTicks:       flatTicks,
		CompositeTicks:  compTicks,
		Identical:       identical,
		FlatBytes:       flat.BytesShown(),
		CompositeBytes:  comp.BytesShown(),
		EncodedSize:     enc.Size(),
		CompressionRate: enc.CompressionRatio(),
	}, nil
}

// String renders the comparison.
func (r *Fig2Result) String() string {
	rows := [][]string{
		{"flat chain (read -> decode -> display)", fmt.Sprint(r.FlatTicks), fmt.Sprint(r.FlatBytes)},
		{"composite source (read+decode) -> display", fmt.Sprint(r.CompositeTicks), fmt.Sprint(r.CompositeBytes)},
	}
	s := fmt.Sprintf("Fig. 2: flow composition over %d stored frames (%.1f:1 compressed)\n\n",
		r.Frames, r.CompressionRate)
	s += table([]string{"configuration", "ticks", "bytes displayed"}, rows)
	s += fmt.Sprintf("\noutputs byte-identical: %v\n", r.Identical)
	return s
}
