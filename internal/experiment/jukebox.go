package experiment

import (
	"fmt"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/core"
	"avdb/internal/device"
	"avdb/internal/media"
	"avdb/internal/netsim"
	"avdb/internal/sched"
	"avdb/internal/schema"
	"avdb/internal/storage"
)

// The jukebox experiment: the storage hierarchy's life cycle in one
// deterministic run.  A small library is archived on videodisc — one
// clip per disc, none preloaded — and waves of audience play it back
// to back.  The cold wave pays a platter swap per clip; a hot ramp on
// one clip crosses the promotion threshold, so the store copies it to
// a striped disk-tier placement (the copy priced in virtual time and
// charged to the triggering stream's startup); the next access crosses
// the replication threshold and a second stripe-disjoint copy appears;
// then the audience leaves, popularity decays through its half-life,
// and the sweep demotes the copy — the jukebox keeps the archival
// original throughout.  Every wave reports its virtual wall time and
// platter swaps, so the rendition shows where the hierarchy moved the
// cost: swaps in the cold wave, the copy in the ramp, neither after.
const (
	jbDisks   = 4                 // the disk tier promotion stripes over
	jbClips   = 3                 // library size, one disc each
	jbSwap    = 2 * avtime.Second // carousel swap latency
	jbSeed    = 31
	jbIdle    = 60 * avtime.Second // quiet period before the demotion sweep
	jbPromote   = 2.0
	jbReplicate = 3.0
	jbDemote    = 0.5
	jbHalf      = 10 * avtime.Second
)

// JukeboxWave is one audience wave: which clips played (back to back,
// one session at a time), what it cost, and where the hot clip sat
// afterwards.
type JukeboxWave struct {
	Name      string
	Plays     []int            // clip indices, in play order
	Wall      avtime.WorldTime // virtual time the wave took
	Swaps     int64            // platter swaps during the wave
	Misses    int              // presentation-deadline misses (swaps land here)
	HotTier   string           // the hot clip's tier after the wave
	HotPop    float64          // its decayed popularity
	HotCopies int              // readable copies of the hot clip
}

// JukeboxResult is the full hierarchy life cycle.
type JukeboxResult struct {
	Frames  int
	Policy  storage.TierPolicy
	Waves   []JukeboxWave
	Idle    avtime.WorldTime // quiet time before the sweep
	Demoted int              // values the sweep demoted
	Final   []storage.TierInfo
	Swaps   int64 // platter swaps, whole run
}

// jukeboxPlatform builds the two-tier platform: a disk array for
// promoted copies, the jukebox holding the archival library (clip k on
// disc k+1 — disc 0 starts in the platter, and the cold wave should
// pay a swap for every clip), and one client link.
func jukeboxPlatform(frames int) (*core.Database, []schema.OID, error) {
	frameBytes := int64(clipW * clipH * clipDepth / 8)
	clipBytes := int64(frames) * frameBytes
	db, err := core.Open(core.Config{
		Name: "jukebox",
		Resources: sched.Resources{
			Buffers: 32,
			CPU:     100 * media.MBPerSecond,
			Bus:     100 * media.MBPerSecond,
		},
		Tiering: storage.TierPolicy{
			PromoteAt:   jbPromote,
			DemoteBelow: jbDemote,
			HalfLife:    jbHalf,
			Width:       2,
			Replicas:    storage.ReplicaPolicy{Copies: 2, PromoteAt: jbReplicate},
		},
	})
	if err != nil {
		return nil, nil, err
	}
	diskCap := 2*clipBytes + frameBytes
	for i := 0; i < jbDisks; i++ {
		d := device.NewDisk(fmt.Sprintf("disk%d", i), diskCap, 8*media.MBPerSecond, tenancySeek)
		if err := d.SetGeometry(tenancyTracks, tenancySettle); err != nil {
			return nil, nil, err
		}
		if err := db.Devices().Register(d); err != nil {
			return nil, nil, err
		}
	}
	jb := device.NewJukebox("jukebox0", jbClips+1, 4*clipBytes, 2*media.MBPerSecond, jbSwap)
	if err := db.Devices().Register(jb); err != nil {
		return nil, nil, err
	}
	if err := db.Network().AddLink(netsim.NewLink("lan0", 4*media.MBPerSecond, tenancyLatency, 0, jbSeed)); err != nil {
		return nil, nil, err
	}
	if _, err := db.DefineClass("Reel", "", []schema.AttrDef{
		{Name: "title", Kind: schema.KindString},
		{Name: "video", Kind: schema.KindMedia, MediaKind: media.KindVideo},
	}); err != nil {
		return nil, nil, err
	}
	oids := make([]schema.OID, jbClips)
	for k := 0; k < jbClips; k++ {
		obj, err := db.NewObject("Reel")
		if err != nil {
			return nil, nil, err
		}
		if err := db.SetAttr(obj.OID(), "title", schema.String(fmt.Sprintf("reel-%d", k+1))); err != nil {
			return nil, nil, err
		}
		if err := db.SetAttr(obj.OID(), "video", schema.Media(stdClip(frames, jbSeed+int64(k)))); err != nil {
			return nil, nil, err
		}
		if _, err := db.PlaceMediaOnDisc(obj.OID(), "video", "jukebox0", k+1); err != nil {
			return nil, nil, err
		}
		oids[k] = obj.OID()
	}
	return db, oids, nil
}

// jukeboxPlay runs one full playback of the clip and closes the
// session, so the next access finds the value quiet (promotion and
// demotion are gated on zero open streams).
func jukeboxPlay(db *core.Database, oid schema.OID, client string) (int, error) {
	sess, err := db.Connect(client, "lan0")
	if err != nil {
		return 0, err
	}
	defer sess.Close()
	vr, err := activities.NewVideoReader("reader", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		return 0, err
	}
	win := activities.NewVideoWindow("window", activity.AtApplication, stdQuality(), tenancyTolerance)
	for _, a := range []activity.Activity{vr, win} {
		if err := sess.Install(a, sched.Resources{}); err != nil {
			return 0, err
		}
	}
	if _, err := sess.Connect(vr, "out", win, "in", stdQuality().DataRate()); err != nil {
		return 0, err
	}
	if err := sess.BindValue(oid, "video", vr, "out", media.MBPerSecond); err != nil {
		return 0, err
	}
	pb, err := sess.Start()
	if err != nil {
		return 0, err
	}
	if _, err := pb.Wait(); err != nil {
		return 0, err
	}
	return win.Monitor().Misses(), nil
}

// Jukebox runs the hierarchy life cycle: cold wave, hot ramp,
// replicated replay, then the idle demotion sweep.
func Jukebox(frames int) (*JukeboxResult, error) {
	if frames < 2 {
		return nil, fmt.Errorf("experiment: jukebox needs frames >= 2")
	}
	db, oids, err := jukeboxPlatform(frames)
	if err != nil {
		return nil, fmt.Errorf("experiment: jukebox platform: %w", err)
	}
	jbDev, _ := db.Devices().Get("jukebox0")
	jb := jbDev.(*device.Jukebox)
	res := &JukeboxResult{Frames: frames, Policy: db.Storage().Tiering(), Idle: jbIdle}

	wave := func(name string, plays []int) error {
		startWall, startSwaps := db.Clock().Now(), jb.Swaps()
		misses := 0
		for i, k := range plays {
			m, err := jukeboxPlay(db, oids[k], fmt.Sprintf("%s-%d", name, i+1))
			if err != nil {
				return fmt.Errorf("experiment: jukebox wave %s play %d: %w", name, i+1, err)
			}
			misses += m
		}
		now := db.Clock().Now()
		hot := db.Storage().TierInfo(now)[0]
		res.Waves = append(res.Waves, JukeboxWave{
			Name: name, Plays: plays,
			Wall: now - startWall, Swaps: jb.Swaps() - startSwaps, Misses: misses,
			HotTier: hot.Tier(), HotPop: hot.Popularity, HotCopies: hot.Copies,
		})
		return nil
	}
	// Cold wave: every clip once; each access swaps its disc in.
	if err := wave("cold", []int{0, 1, 2}); err != nil {
		return nil, err
	}
	// Hot ramp on clip 1: the access that crosses PromoteAt pays one
	// last swap (the promotion's archival read) plus the striped write,
	// then the value streams from the disk tier.
	if err := wave("hot ramp", []int{0, 0}); err != nil {
		return nil, err
	}
	// Replay: the second access crosses the replica threshold and adds
	// a stripe-disjoint second copy; no platter involved any more.
	if err := wave("replay", []int{0, 0}); err != nil {
		return nil, err
	}
	// The audience leaves.  After jbIdle of quiet, popularity has
	// decayed through several half-lives and the sweep demotes the disk
	// copy (and its replica); the archival original remains.
	later := db.Clock().Now() + jbIdle
	res.Demoted = db.Storage().SweepTiers(later)
	res.Final = db.Storage().TierInfo(later)
	res.Swaps = jb.Swaps()
	return res, nil
}

// String renders the wave table and the final tier state.
func (r *JukeboxResult) String() string {
	s := fmt.Sprintf("Storage hierarchy: %d archival clips on videodisc, promotion at popularity %.1f\n",
		len(r.Final), r.Policy.PromoteAt)
	s += fmt.Sprintf("(half-life %s), demotion below %.1f, disk copies striped width %d, %d copies of hot values;\n",
		r.Policy.HalfLife, r.Policy.DemoteBelow, r.Policy.Width, r.Policy.Replicas.Copies)
	s += "waves play back to back — swaps and misses show where the hierarchy put the cost\n\n"

	waveRows := make([][]string, 0, len(r.Waves))
	for _, w := range r.Waves {
		plays := ""
		for i, k := range w.Plays {
			if i > 0 {
				plays += "+"
			}
			plays += fmt.Sprintf("reel-%d", k+1)
		}
		waveRows = append(waveRows, []string{
			w.Name, plays, w.Wall.String(), fmt.Sprint(w.Swaps), fmt.Sprint(w.Misses),
			w.HotTier, fmt.Sprintf("%.2f", w.HotPop), fmt.Sprint(w.HotCopies),
		})
	}
	s += table([]string{"wave", "plays", "wall", "swaps", "misses", "reel-1 tier", "pop", "copies"}, waveRows)
	s += fmt.Sprintf("\nafter %s idle the sweep demoted %d value(s); %d swaps total\n\n", r.Idle, r.Demoted, r.Swaps)

	finalRows := make([][]string, 0, len(r.Final))
	for i, ti := range r.Final {
		finalRows = append(finalRows, []string{
			fmt.Sprintf("reel-%d", i+1), ti.Tier(), fmt.Sprintf("%.2f", ti.Popularity),
			fmt.Sprint(ti.Copies), fmt.Sprint(ti.Size),
		})
	}
	s += table([]string{"value", "tier", "pop", "copies", "bytes"}, finalRows)
	return s
}
