// Package experiment regenerates every figure and table of the paper and
// benchmarks the five design claims of §3.3.  Each experiment is a pure
// function returning a structured result plus a formatted rendition, so
// the avbench command, the repository's benchmarks and the test suite all
// drive exactly the same code.
//
// Artifacts:
//
//	Table1 — the video activity classes (Table 1)
//	Fig1   — the Newscast.clip timeline diagram (Fig. 1)
//	Fig2   — flow composition: flat chain vs composite (Fig. 2)
//	Fig3   — synchronized composite playback over a session (Fig. 3, §4.3)
//	Fig4   — virtual world: render at database vs client (Fig. 4)
//
// Design-claim benchmarks:
//
//	C1 — database platform: processing placed with the data
//	C2 — scheduling: admission control and deadline misses
//	C3 — client interface: asynchronous vs blocking
//	C4 — data placement: same-device copy vs dual-device mixing
//	C5 — data representation: quality factors over scalable video
package experiment

import (
	"fmt"
	"strings"

	"avdb/internal/media"
	"avdb/internal/synth"
)

// Standard clip used across experiments: quarter-scale motion video.
const (
	clipW, clipH, clipDepth = 64, 48, 8
	clipFPS                 = 30
)

func stdClip(frames int, seed int64) *media.VideoValue {
	return synth.Video(media.TypeRawVideo30, synth.PatternMotion, clipW, clipH, clipDepth, frames, seed)
}

func stdQuality() media.VideoQuality {
	return media.VideoQuality{Width: clipW, Height: clipH, Depth: clipDepth, FPS: clipFPS}
}

// table renders rows as a fixed-width text table.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	rule := make([]string, len(header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
