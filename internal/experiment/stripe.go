package experiment

import (
	"fmt"

	"avdb/internal/avtime"
	"avdb/internal/device"
	"avdb/internal/media"
	"avdb/internal/storage"
)

// The striping experiment: the same multi-stream read workload — 2×width
// concurrent streams, each pulling every frame of its own clip — runs
// under three storage configurations and reports the aggregate
// virtual-time read throughput of each:
//
//  1. single disk: every clip on one spindle, contended pricing (each
//     demand chunk pays a positioning cost — the heads of 2×width
//     interleaved streams keep stealing each other's position).
//  2. striped, demand reads: clips striped round-robin over width disks,
//     each stream reserving a 1/width rate share per disk.  Bandwidth
//     multiplies, but every chunk still seeks.
//  3. striped + SCAN-EDF rounds: as 2, with each tick's chunk requests
//     batched per disk, ordered by (deadline, track) and charged one
//     positioned seek per run of adjacent tracks.
//
// Everything is virtual time, so the table is deterministic and golden.

// stripeSeek is the average positioning time of the experiment's disks;
// stripeTracks/stripeSettle give them a positional geometry so SCAN
// ordering has distances to amortize.
const (
	stripeSeek   = 10 * avtime.Millisecond
	stripeSettle = 1 * avtime.Millisecond
	stripeTracks = 16
)

// StripeArm is one storage configuration under the common workload.
type StripeArm struct {
	Name       string
	Width      int              // disks a clip spans
	Rate       media.DataRate   // per-stream reserved rate (spanning the stripe)
	StreamTime avtime.WorldTime // slowest stream's total read time
	Bytes      int64            // total bytes delivered to all streams
	Throughput float64          // aggregate MB/s of virtual read time
	Speedup    float64          // vs the single-disk arm
	IO         storage.IOStats
}

// StripeResult is the three-arm comparison.
type StripeResult struct {
	Streams int
	Frames  int
	DiskBW  media.DataRate // per-disk bandwidth
	Arms    []StripeArm
}

// stripeArm runs the workload under one configuration and returns the
// measured arm.
func stripeArm(name string, frames, streams, width int, rate media.DataRate, policy storage.StripePolicy) (StripeArm, error) {
	frameBytes := int64(clipW * clipH * clipDepth / 8)
	diskBW := media.DataRate(streams) * media.MBPerSecond
	// Every arm gets enough capacity for the whole corpus on one disk,
	// so placement never fails for space reasons.
	capacity := 2 * int64(streams) * int64(frames) * frameBytes
	dm := device.NewManager()
	nDisks := width
	if nDisks < 1 {
		nDisks = 1
	}
	for i := 0; i < nDisks; i++ {
		d := device.NewDisk(fmt.Sprintf("disk%d", i), capacity, diskBW, stripeSeek)
		if err := d.SetGeometry(stripeTracks, stripeSettle); err != nil {
			return StripeArm{}, err
		}
		if err := dm.Register(d); err != nil {
			return StripeArm{}, err
		}
	}
	st := storage.NewStore(dm)
	st.SetStriping(policy)
	unit := media.TypeRawVideo30.Rate.UnitDuration()
	type lane struct {
		stream *storage.Stream
	}
	lanes := make([]lane, streams)
	for j := 0; j < streams; j++ {
		clip := stdClip(frames, int64(j+1))
		var seg *storage.Segment
		var err error
		if width > 1 {
			seg, err = st.PlaceStriped(clip, rate, width)
		} else {
			seg, err = st.Place(clip, "disk0")
		}
		if err != nil {
			return StripeArm{}, fmt.Errorf("experiment: stripe arm %q place: %w", name, err)
		}
		stream, _, err := st.OpenStream(seg.ID(), rate)
		if err != nil {
			return StripeArm{}, fmt.Errorf("experiment: stripe arm %q open: %w", name, err)
		}
		lanes[j].stream = stream
	}
	perStream := make([]avtime.WorldTime, streams)
	for t := 0; t < frames; t++ {
		now := avtime.WorldTime(t) * unit
		for j := range lanes {
			dt, err := lanes[j].stream.ReadChunkTimeAt(t, frameBytes, int64(t), now, now)
			if err != nil {
				return StripeArm{}, fmt.Errorf("experiment: stripe arm %q read: %w", name, err)
			}
			perStream[j] += dt
		}
	}
	for j := range lanes {
		lanes[j].stream.Close()
	}
	var worst avtime.WorldTime
	for _, pt := range perStream {
		if pt > worst {
			worst = pt
		}
	}
	total := int64(streams) * int64(frames) * frameBytes
	arm := StripeArm{
		Name:       name,
		Width:      width,
		Rate:       rate,
		StreamTime: worst,
		Bytes:      total,
		IO:         st.IOStats(),
	}
	if worst > 0 {
		arm.Throughput = float64(total) / (float64(worst) / float64(avtime.Second)) / (1 << 20)
	}
	return arm, nil
}

// Stripe runs the three-arm striping comparison: 2×width streams of
// `frames` frames each, single-disk vs striped-demand vs striped with
// SCAN-EDF service rounds.  Stream rates are the admission maximum of
// each configuration: diskBW/streams on one disk, width times that over
// a stripe — striping is precisely what lets a stream reserve past one
// spindle.
func Stripe(frames, width int) (*StripeResult, error) {
	if frames < 2 || width < 2 {
		return nil, fmt.Errorf("experiment: stripe needs frames >= 2 and width >= 2")
	}
	streams := 2 * width
	diskBW := media.DataRate(streams) * media.MBPerSecond
	singleRate := diskBW / media.DataRate(streams)
	stripedRate := singleRate * media.DataRate(width)
	res := &StripeResult{Streams: streams, Frames: frames, DiskBW: diskBW}
	arms := []struct {
		name   string
		width  int
		rate   media.DataRate
		policy storage.StripePolicy
	}{
		{"single disk", 1, singleRate, storage.StripePolicy{Seeks: true}},
		{"striped demand", width, stripedRate, storage.StripePolicy{Seeks: true}},
		{"striped scan-edf", width, stripedRate, storage.StripePolicy{Seeks: true, Rounds: true}},
	}
	for _, a := range arms {
		arm, err := stripeArm(a.name, frames, streams, a.width, a.rate, a.policy)
		if err != nil {
			return nil, err
		}
		if len(res.Arms) > 0 && res.Arms[0].Throughput > 0 {
			arm.Speedup = arm.Throughput / res.Arms[0].Throughput
		} else {
			arm.Speedup = 1
		}
		res.Arms = append(res.Arms, arm)
	}
	return res, nil
}

// String renders the comparison.
func (r *StripeResult) String() string {
	header := []string{"arm", "width", "stream rate", "stream time", "agg MB/s", "speedup", "seeks", "saved", "misses", "max batch"}
	rows := make([][]string, 0, len(r.Arms))
	for _, a := range r.Arms {
		rows = append(rows, []string{
			a.Name,
			fmt.Sprint(a.Width),
			a.Rate.String(),
			a.StreamTime.String(),
			fmt.Sprintf("%.2f", a.Throughput),
			fmt.Sprintf("%.2fx", a.Speedup),
			fmt.Sprint(a.IO.SeeksCharged),
			fmt.Sprint(a.IO.SeeksSaved),
			fmt.Sprint(a.IO.DeadlineMisses),
			fmt.Sprint(a.IO.MaxBatch),
		})
	}
	s := fmt.Sprintf("Stripe: %d streams x %d frames, %v per disk; round-robin striping + SCAN-EDF service rounds\n",
		r.Streams, r.Frames, r.DiskBW)
	s += "per-stream rates are each configuration's admission maximum; all times are virtual\n\n"
	s += table(header, rows)
	return s
}
