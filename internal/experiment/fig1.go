package experiment

import (
	"fmt"

	"avdb/internal/avtime"
	"avdb/internal/media"
	"avdb/internal/synth"
	"avdb/internal/temporal"
)

// Fig1Result reproduces the paper's Fig. 1: the timeline diagram of a
// Newscast.clip value whose video track spans [t0, t3) while the audio
// and subtitle tracks span [t1, t2) inside it.
type Fig1Result struct {
	Clip       *temporal.Composite
	Timeline   *temporal.Timeline
	Boundaries []avtime.WorldTime
	Verified   []temporal.Correlation
}

// Fig1 builds the four-track composite with the paper's timing (video
// [0, 12s), narration and subtitles [2s, 10s)) and verifies the declared
// correlations against the instance.
func Fig1() (*Fig1Result, error) {
	const videoSec, innerStart, innerSec = 12, 2, 8

	video := stdClip(videoSec*clipFPS, 1)
	english, err := synth.Speech(media.AudioQualityVoice, innerSec, 2)
	if err != nil {
		return nil, err
	}
	english.Translate(innerStart * avtime.Second)
	french, err := synth.Speech(media.AudioQualityVoice, innerSec, 3)
	if err != nil {
		return nil, err
	}
	french.Translate(innerStart * avtime.Second)
	subtitles, err := synth.Subtitles([]string{
		"good evening", "our top story", "in other news", "goodnight",
	}, innerSec*1000/4)
	if err != nil {
		return nil, err
	}
	subtitles.Translate(innerStart * avtime.Second)

	clip := temporal.NewComposite("Newscast.clip")
	for _, tr := range []struct {
		name string
		v    media.Value
	}{
		{"videoTrack", video},
		{"englishTrack", english},
		{"frenchTrack", french},
		{"subtitleTrack", subtitles},
	} {
		if err := clip.Add(tr.name, tr.v); err != nil {
			return nil, err
		}
	}

	spec := []temporal.Correlation{
		{A: "englishTrack", B: "videoTrack", Rel: avtime.RelDuring},
		{A: "frenchTrack", B: "videoTrack", Rel: avtime.RelDuring},
		{A: "subtitleTrack", B: "videoTrack", Rel: avtime.RelDuring},
		{A: "englishTrack", B: "frenchTrack", Rel: avtime.RelEqual},
		{A: "englishTrack", B: "subtitleTrack", Rel: avtime.RelEqual},
	}
	if err := clip.Verify(spec); err != nil {
		return nil, err
	}
	tl := clip.Timeline()
	return &Fig1Result{Clip: clip, Timeline: tl, Boundaries: tl.Boundaries(), Verified: spec}, nil
}

// String renders the timeline diagram with its boundary legend and the
// verified correlations.
func (r *Fig1Result) String() string {
	s := "Fig. 1: timeline diagram for a Newscast.clip value\n\n"
	s += r.Timeline.ASCII(60)
	s += "\nverified correlations:\n"
	for _, c := range r.Verified {
		s += fmt.Sprintf("  %v\n", c)
	}
	return s
}
