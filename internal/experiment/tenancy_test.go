package experiment

import "testing"

// TestTenancySharedBeatsSerial pins the point of the multi-session
// engine at the disk: once two or more sessions stream the same clip,
// merging their per-tick chunk requests into shared SCAN-EDF rounds
// must charge strictly fewer seeks — and finish in less virtual wall
// time — than running the identical sessions back-to-back.
func TestTenancySharedBeatsSerial(t *testing.T) {
	res, err := Tenancy(45, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		sh, se := row.Shared, row.Serial
		if sh.Bytes != se.Bytes {
			t.Errorf("%d sessions: arms moved different byte totals: %d vs %d", row.Sessions, sh.Bytes, se.Bytes)
		}
		if row.Sessions < 2 {
			continue
		}
		if sh.IO.SeeksCharged >= se.IO.SeeksCharged {
			t.Errorf("%d sessions: shared rounds charged %d seeks, serial %d — sharing must cost fewer",
				row.Sessions, sh.IO.SeeksCharged, se.IO.SeeksCharged)
		}
		if sh.IO.SeeksSaved == 0 {
			t.Errorf("%d sessions: shared rounds saved no seeks; requests were not batched", row.Sessions)
		}
		if sh.Wall >= se.Wall {
			t.Errorf("%d sessions: shared wall %v not below serial wall %v", row.Sessions, sh.Wall, se.Wall)
		}
		if sh.IO.MaxBatch < row.Sessions {
			t.Errorf("%d sessions: max batch %d never merged all sessions into one round", row.Sessions, sh.IO.MaxBatch)
		}
	}
}
