package experiment

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/core"
	"avdb/internal/device"
	"avdb/internal/media"
	"avdb/internal/netsim"
	"avdb/internal/sched"
	"avdb/internal/schema"
	"avdb/internal/storage"
)

// The Zipf tenancy experiment: the sharded engine's proof at realistic
// multi-tenant scale.  A library of clips is striped over a disk array
// and N sessions pick clips by a Zipf popularity law — a hot clip
// drawing roughly a third of the audience, a long cold tail sharing the
// rest — the canonical video-server access pattern.  Session counts in
// the quotas are assigned analytically by largest remainder, so the
// workload has no RNG: the same (frames, sessions) inputs build the
// same tenancy, bit for bit.
//
// The sweep reruns the identical workload with EngineWorkers 1, 2 and
// 4.  Sessions shard by their clip's stripe group (same disks → same
// shard), shards tick concurrently, and the commit barrier merges
// results in admission order — so every arm must agree with the serial
// one not just on throughput and misses but on the full observability
// snapshot.  Each arm's fingerprint hashes the snapshot bytes plus
// every session's outcome; the rendition's "identical" column is the
// determinism claim made machine-checkable in a golden file.
// A second sweep reruns the same tenancy with the shared buffer pool
// on (Capacity 8, Lookahead 4 per stream): sessions on the same clip
// read the same chunks in the same engine rounds, so one cohort
// member's miss fills a chunk the rest hit for free.  The pooled arms
// report the cohort hit rate — over clips with two or more sessions —
// and must be byte-identical across EngineWorkers too, which is the
// pool's snapshot/commit discipline made machine-checkable.
const (
	zipfDisks     = 8   // the array the library is striped over
	zipfWidth     = 4   // disks per clip, so two natural stripe groups
	zipfClips     = 12  // library size
	zipfExponent  = 1.1 // Zipf popularity exponent
	zipfSeed      = 29
	zipfPoolCap   = 8 // pooled arms: chunks per attached stream
	zipfLookahead = 4 // pooled arms: prefetch depth
)

// ZipfClip is one library entry: its popularity share, the sessions the
// largest-remainder quota assigns it, and the disks it is striped over.
type ZipfClip struct {
	Rank     int
	Share    float64 // fraction of the audience, 0..1
	Sessions int
	Stripe   []string
}

// ZipfArm is the whole tenancy run at one EngineWorkers count.
type ZipfArm struct {
	Workers     int
	Wall        avtime.WorldTime // virtual time from first start to last finish
	Bytes       int64            // payload bytes delivered to all sessions
	Throughput  float64          // aggregate MB/s of virtual wall time
	Misses      int              // presentation-deadline misses, all sessions
	IO          storage.IOStats
	Pool        storage.PoolStats // shared buffer pool, pooled arms only
	CohortRate  float64           // pool hit rate over clips with 2+ sessions
	Fingerprint uint64            // FNV-64a over the obs snapshot + per-session outcomes
	Identical   bool              // fingerprint matches the EngineWorkers=1 arm
}

// ZipfResult is the EngineWorkers sweep over the fixed tenancy.
type ZipfResult struct {
	Frames   int
	Sessions int
	Disks    int
	Width    int
	Exponent float64
	Clips    []ZipfClip
	Arms     []ZipfArm
	Pooled   []ZipfArm // the same sweep with the shared buffer pool on
}

// zipfQuotas splits sessions over ranks 1..clips in proportion to
// 1/rank^exponent using largest-remainder rounding: floors first, then
// the leftover seats go to the largest fractional parts, ties to the
// more popular rank.  The shares returned are the exact (unrounded)
// popularity fractions.
func zipfQuotas(sessions, clips int, exponent float64) (quotas []int, shares []float64) {
	weights := make([]float64, clips)
	var total float64
	for k := 0; k < clips; k++ {
		weights[k] = 1 / math.Pow(float64(k+1), exponent)
		total += weights[k]
	}
	quotas = make([]int, clips)
	shares = make([]float64, clips)
	fracs := make([]float64, clips)
	assigned := 0
	for k := 0; k < clips; k++ {
		shares[k] = weights[k] / total
		exact := float64(sessions) * shares[k]
		quotas[k] = int(math.Floor(exact))
		fracs[k] = exact - math.Floor(exact)
		assigned += quotas[k]
	}
	order := make([]int, clips)
	for k := range order {
		order[k] = k
	}
	sort.SliceStable(order, func(i, j int) bool { return fracs[order[i]] > fracs[order[j]] })
	for i := 0; assigned < sessions; i++ {
		quotas[order[i%clips]]++
		assigned++
	}
	return quotas, shares
}

// zipfPlatform builds the fixed array and library: zipfDisks striped
// disks with geometry, one client link, and zipfClips placed clips.
// Placement is load-aware and all clips are the same size, so the
// library alternates deterministically between the two natural stripe
// groups.  workers flows into Config.EngineWorkers — the only knob the
// sweep turns.
func zipfPlatform(frames, sessions, workers int, pooled bool) (*core.Database, []schema.OID, [][]string, error) {
	frameBytes := int64(clipW * clipH * clipDepth / 8)
	clipBytes := int64(frames) * frameBytes
	diskBW := media.DataRate(sessions+zipfDisks) * media.MBPerSecond
	capacity := int64(zipfClips)*clipBytes + frameBytes
	var cache storage.CachePolicy
	if pooled {
		cache = storage.CachePolicy{Capacity: zipfPoolCap, Lookahead: zipfLookahead}
	}
	db, err := core.Open(core.Config{
		Name: "zipf",
		Resources: sched.Resources{
			Buffers: 8*sessions + 16,
			CPU:     media.DataRate(2*sessions+100) * media.MBPerSecond,
			Bus:     media.DataRate(2*sessions+100) * media.MBPerSecond,
		},
		Striping:      storage.StripePolicy{Width: zipfWidth, Seeks: true, Rounds: true},
		Cache:         cache,
		EngineWorkers: workers,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	for i := 0; i < zipfDisks; i++ {
		d := device.NewDisk(fmt.Sprintf("disk%d", i), capacity, diskBW, tenancySeek)
		if err := d.SetGeometry(tenancyTracks, tenancySettle); err != nil {
			return nil, nil, nil, err
		}
		if err := db.Devices().Register(d); err != nil {
			return nil, nil, nil, err
		}
	}
	linkBW := media.DataRate(sessions+1) * media.MBPerSecond
	if err := db.Network().AddLink(netsim.NewLink("lan0", linkBW, tenancyLatency, 0, zipfSeed)); err != nil {
		return nil, nil, nil, err
	}
	if _, err := db.DefineClass("Clip", "", []schema.AttrDef{
		{Name: "title", Kind: schema.KindString},
		{Name: "video", Kind: schema.KindMedia, MediaKind: media.KindVideo},
	}); err != nil {
		return nil, nil, nil, err
	}
	oids := make([]schema.OID, zipfClips)
	stripes := make([][]string, zipfClips)
	for k := 0; k < zipfClips; k++ {
		obj, err := db.NewObject("Clip")
		if err != nil {
			return nil, nil, nil, err
		}
		if err := db.SetAttr(obj.OID(), "title", schema.String(fmt.Sprintf("clip-%d", k+1))); err != nil {
			return nil, nil, nil, err
		}
		if err := db.SetAttr(obj.OID(), "video", schema.Media(stdClip(frames, zipfSeed+int64(k)))); err != nil {
			return nil, nil, nil, err
		}
		seg, err := db.PlaceMediaStriped(obj.OID(), "video", media.MBPerSecond, zipfWidth)
		if err != nil {
			return nil, nil, nil, err
		}
		oids[k] = obj.OID()
		stripes[k] = seg.Stripe()
	}
	return db, oids, stripes, nil
}

// zipfArm runs the whole tenancy once at one EngineWorkers count on a
// fresh platform and fingerprints everything observable.
func zipfArm(frames, sessions, workers int, quotas []int, pooled bool) (ZipfArm, error) {
	db, oids, _, err := zipfPlatform(frames, sessions, workers, pooled)
	if err != nil {
		return ZipfArm{}, fmt.Errorf("experiment: zipf platform: %w", err)
	}
	col := db.EnableObservability()
	q := stdQuality()
	type tenant struct {
		sess *core.Session
		win  *activities.VideoWindow
		clip int // rank index, for the cohort hit rate
	}
	var tenants []tenant
	for k, quota := range quotas {
		for i := 0; i < quota; i++ {
			sess, err := db.Connect(fmt.Sprintf("zipf-%d-%d", k+1, i), "lan0")
			if err != nil {
				return ZipfArm{}, err
			}
			vr, err := activities.NewVideoReader("reader", activity.AtDatabase, media.TypeRawVideo30)
			if err != nil {
				return ZipfArm{}, err
			}
			win := activities.NewVideoWindow("window", activity.AtApplication, q, tenancyTolerance)
			for _, a := range []activity.Activity{vr, win} {
				if err := sess.Install(a, sched.Resources{}); err != nil {
					return ZipfArm{}, err
				}
			}
			if _, err := sess.Connect(vr, "out", win, "in", q.DataRate()); err != nil {
				return ZipfArm{}, err
			}
			if err := sess.BindValue(oids[k], "video", vr, "out", media.MBPerSecond); err != nil {
				return ZipfArm{}, err
			}
			tenants = append(tenants, tenant{sess: sess, win: win, clip: k})
		}
	}

	arm := ZipfArm{Workers: workers}
	db.Engine().Pause()
	pbs := make([]*core.Playback, len(tenants))
	for i, t := range tenants {
		pb, err := t.sess.Start()
		if err != nil {
			return ZipfArm{}, err
		}
		pbs[i] = pb
	}
	db.Engine().Resume()
	h := fnv.New64a()
	for i, pb := range pbs {
		stats, err := pb.Wait()
		if err != nil {
			return ZipfArm{}, err
		}
		arm.Bytes += stats.BytesMoved
		misses := tenants[i].win.Monitor().Misses()
		arm.Misses += misses
		fmt.Fprintf(h, "%d:%d:%d:%d;", i, stats.BytesMoved, stats.Ticks, misses)
	}
	arm.Wall = db.Clock().Now()
	arm.IO = db.MediaIOStats()
	if pooled {
		// Cohort hit rate: pool traffic of the sessions whose clip has
		// company.  Collected before Close (per-session stats live on
		// the streams) and folded into the fingerprint — the pool's
		// commit order is part of the determinism claim.
		var cohortHits, cohortTotal int64
		for i, t := range tenants {
			cs := t.sess.CacheStats()
			if quotas[t.clip] >= 2 {
				cohortHits += cs.Hits
				cohortTotal += cs.Hits + cs.Misses
			}
			fmt.Fprintf(h, "c%d:%d:%d:%d;", i, cs.Hits, cs.Misses, cs.Shared)
		}
		if cohortTotal > 0 {
			arm.CohortRate = float64(cohortHits) / float64(cohortTotal)
		}
	}
	for _, t := range tenants {
		if err := t.sess.Close(); err != nil {
			return ZipfArm{}, fmt.Errorf("experiment: zipf close: %w", err)
		}
	}
	if pooled {
		// Store-level aggregate; survives the session closes above.
		arm.Pool = db.Storage().PoolStats()
		fmt.Fprintf(h, "pool:%d:%d:%d:%d:%d;", arm.Pool.Hits, arm.Pool.Misses,
			arm.Pool.Shared, arm.Pool.Prefetched, arm.Pool.Evicted)
	}
	snap, err := col.Snapshot().JSON()
	if err != nil {
		return ZipfArm{}, err
	}
	h.Write([]byte(snap))
	fmt.Fprintf(h, "|%d", arm.Wall)
	arm.Fingerprint = h.Sum64()
	if arm.Wall > 0 {
		arm.Throughput = float64(arm.Bytes) / (float64(arm.Wall) / float64(avtime.Second)) / (1 << 20)
	}
	return arm, nil
}

// ZipfTenancy runs the fixed hot-clip/cold-tail tenancy at every
// EngineWorkers count in {1, 2, 4} and checks the arms byte-identical.
func ZipfTenancy(frames, sessions int) (*ZipfResult, error) {
	if frames < 2 || sessions < zipfClips {
		return nil, fmt.Errorf("experiment: zipf needs frames >= 2 and sessions >= %d", zipfClips)
	}
	quotas, shares := zipfQuotas(sessions, zipfClips, zipfExponent)
	res := &ZipfResult{
		Frames:   frames,
		Sessions: sessions,
		Disks:    zipfDisks,
		Width:    zipfWidth,
		Exponent: zipfExponent,
	}
	// Stripe assignment is a platform property; read it off one build.
	_, _, stripes, err := zipfPlatform(frames, sessions, 1, false)
	if err != nil {
		return nil, err
	}
	for k := 0; k < zipfClips; k++ {
		res.Clips = append(res.Clips, ZipfClip{
			Rank: k + 1, Share: shares[k], Sessions: quotas[k], Stripe: stripes[k],
		})
	}
	for _, pooled := range []bool{false, true} {
		arms := &res.Arms
		if pooled {
			arms = &res.Pooled
		}
		for _, workers := range []int{1, 2, 4} {
			arm, err := zipfArm(frames, sessions, workers, quotas, pooled)
			if err != nil {
				return nil, err
			}
			if len(*arms) == 0 {
				arm.Identical = true
			} else {
				arm.Identical = arm.Fingerprint == (*arms)[0].Fingerprint
			}
			*arms = append(*arms, arm)
		}
	}
	return res, nil
}

// String renders the popularity table and the EngineWorkers sweep.
func (r *ZipfResult) String() string {
	s := fmt.Sprintf("Zipf tenancy: %d sessions over %d clips (exponent %.1f), striped over %d disks, width %d\n",
		r.Sessions, len(r.Clips), r.Exponent, r.Disks, r.Width)
	s += "hot-clip/cold-tail audience assigned analytically (largest remainder, no RNG);\n"
	s += "each arm reruns the identical workload with a different EngineWorkers count —\n"
	s += "identical=yes means the obs snapshot and every session outcome hash equal to serial\n\n"

	clipRows := make([][]string, 0, len(r.Clips))
	for _, c := range r.Clips {
		clipRows = append(clipRows, []string{
			fmt.Sprint(c.Rank),
			fmt.Sprintf("%.1f%%", 100*c.Share),
			fmt.Sprint(c.Sessions),
			strings.Join(c.Stripe, "+"),
		})
	}
	s += table([]string{"clip", "share", "sessions", "stripe"}, clipRows)
	s += "\n"

	armRows := make([][]string, 0, len(r.Arms))
	for _, a := range r.Arms {
		ident := "yes"
		if !a.Identical {
			ident = "NO"
		}
		armRows = append(armRows, []string{
			fmt.Sprint(a.Workers),
			a.Wall.String(),
			fmt.Sprintf("%.2f", a.Throughput),
			fmt.Sprint(a.Misses),
			fmt.Sprint(a.IO.SeeksCharged),
			fmt.Sprint(a.IO.SeeksSaved),
			fmt.Sprint(a.IO.MaxBatch),
			fmt.Sprintf("%016x", a.Fingerprint),
			ident,
		})
	}
	s += table([]string{"workers", "wall", "MB/s", "misses", "seeks", "saved", "max batch", "fingerprint", "identical"}, armRows)

	if len(r.Pooled) > 0 {
		s += fmt.Sprintf("\nshared buffer pool on (capacity %d, lookahead %d per stream): one cohort member's\n", zipfPoolCap, zipfLookahead)
		s += "miss fills the chunk the rest hit; cohort = sessions on clips with 2+ viewers\n\n"
		poolRows := make([][]string, 0, len(r.Pooled))
		for _, a := range r.Pooled {
			ident := "yes"
			if !a.Identical {
				ident = "NO"
			}
			total := a.Pool.Hits + a.Pool.Misses
			rate := "-"
			if total > 0 {
				rate = fmt.Sprintf("%.1f%%", 100*float64(a.Pool.Hits)/float64(total))
			}
			poolRows = append(poolRows, []string{
				fmt.Sprint(a.Workers),
				a.Wall.String(),
				fmt.Sprintf("%.2f", a.Throughput),
				fmt.Sprint(a.Misses),
				rate,
				fmt.Sprint(a.Pool.Shared),
				fmt.Sprintf("%.1f%%", 100*a.CohortRate),
				fmt.Sprintf("%016x", a.Fingerprint),
				ident,
			})
		}
		s += table([]string{"workers", "wall", "MB/s", "misses", "pool hit", "shared", "cohort hit", "fingerprint", "identical"}, poolRows)
	}
	return s
}
