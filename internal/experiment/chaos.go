package experiment

import (
	"fmt"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/core"
	"avdb/internal/fault"
	"avdb/internal/media"
	"avdb/internal/sched"
	"avdb/internal/schema"
)

// Chaos ablation parameters.  The plan injects, over a frames-long
// stream on the default platform:
//
//   - transient read faults on disk0 (p=0.25) in the first quarter,
//   - a hard disk0 outage for a tenth of the run starting at 40%,
//   - a link-bandwidth collapse to a quarter from 50% to 87.5%,
//   - chunk loss (p=0.05) and corruption (p=0.03) throughout.
//
// The baseline run takes the faults with no recovery machinery; the
// resilient run arms bounded retry, frame sacrifice, fail-soft
// transfers, stall detection and quality degradation.
const (
	chaosTransientP = 0.25
	chaosLossP      = 0.05
	chaosCorruptP   = 0.03
	chaosDegrade    = 0.25 // surviving bandwidth fraction during collapse
)

// chaosTolerance and chaosThreshold parameterize stall detection: the
// per-frame path cost is ~70 ms fault-free and ~170 ms under the
// collapsed link, so 100 ms separates jitter from catastrophe.
const (
	chaosTolerance = 100 * avtime.Millisecond
	chaosThreshold = 3
)

// chaosPlan schedules the fault campaign over a run of the given
// length.
func chaosPlan(total avtime.WorldTime, seed int64) (*fault.Plan, error) {
	p := fault.NewPlan(seed)
	for _, f := range []fault.Fault{
		{Kind: fault.TransientRead, Target: "disk0", Start: 0, Dur: total / 4, Probability: chaosTransientP},
		{Kind: fault.DeviceOutage, Target: "disk0", Start: total * 2 / 5, Dur: total / 10},
		{Kind: fault.LinkDegrade, Target: "lan0", Start: total / 2, Dur: total * 3 / 8, Factor: chaosDegrade},
		{Kind: fault.ChunkLoss, Target: "lan0", Start: 0, Dur: total, Probability: chaosLossP},
		{Kind: fault.ChunkCorrupt, Target: "lan0", Start: 0, Dur: total, Probability: chaosCorruptP},
	} {
		if _, err := p.Add(f); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// ChaosRun is one arm of the ablation.
type ChaosRun struct {
	Recovery bool   // retry + sacrifice + fail-soft + degradation armed
	Survived bool   // the stream ran to completion
	Fatal    string // the fault that killed it, when it did not

	FramesTotal int // frames the clip holds
	FramesShown int // frames that reached the window
	FramesLost  int // frames the reader sacrificed to device faults
	Corrupted   int // frames shown with damaged payloads
	Retries     int // extra read attempts spent on transient faults

	ChunksDropped    int64 // chunks lost in flight
	TransferFailures int64 // failed transfers absorbed in flight

	Stalls   int  // stall episodes detected
	Degraded bool // quality renegotiation fired

	Misses   int     // deadline misses, counting undelivered frames
	MissRate float64 // Misses / FramesTotal
	Injected string  // injection counts by kind
}

// ChaosResult is the full ablation: identical fault seeds, recovery off
// versus on.
type ChaosResult struct {
	Frames    int
	Seed      int64
	Baseline  ChaosRun
	Resilient ChaosRun
}

// Chaos runs the fault-injection ablation.  Both arms stream the same
// stored clip from disk0 over lan0 under the same seeded fault plan;
// only the recovery machinery differs.
func Chaos(frames int, seed int64) (*ChaosResult, error) {
	base, err := chaosArm(frames, seed, false)
	if err != nil {
		return nil, err
	}
	res, err := chaosArm(frames, seed, true)
	if err != nil {
		return nil, err
	}
	return &ChaosResult{Frames: frames, Seed: seed, Baseline: *base, Resilient: *res}, nil
}

func chaosArm(frames int, seed int64, recovery bool) (*ChaosRun, error) {
	total := avtime.WorldTime(frames) * avtime.Second / clipFPS
	db, err := core.OpenDefault("chaos", core.PlatformConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	if _, err := db.DefineClass("Clip", "", []schema.AttrDef{
		{Name: "title", Kind: schema.KindString},
		{Name: "video", Kind: schema.KindMedia, MediaKind: media.KindVideo},
	}); err != nil {
		return nil, err
	}
	obj, err := db.NewObject("Clip")
	if err != nil {
		return nil, err
	}
	if err := db.SetAttr(obj.OID(), "title", schema.String("chaos")); err != nil {
		return nil, err
	}
	if err := db.SetAttr(obj.OID(), "video", schema.Media(stdClip(frames, seed))); err != nil {
		return nil, err
	}
	q := stdQuality()
	rate := q.DataRate()
	if _, err := db.PlaceMedia(obj.OID(), "video", "disk0", rate); err != nil {
		return nil, err
	}

	// Arm the fault campaign before any stream opens.
	plan, err := chaosPlan(total, seed)
	if err != nil {
		return nil, err
	}
	inj := fault.NewInjector(plan, db.Clock())
	db.Devices().SetFaultHook(inj)
	link, ok := db.Network().Link("lan0")
	if !ok {
		return nil, fmt.Errorf("experiment: default platform lost lan0")
	}
	link.SetFaultHook(inj)

	sess, err := db.Connect("chaos-app", "lan0")
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	vr, err := activities.NewVideoReader("reader", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		return nil, err
	}
	window := activities.NewVideoWindow("window", activity.AtApplication, media.VideoQuality{}, chaosTolerance)
	// The stream's admission grant is reserved explicitly so the
	// degradation path can shrink it.
	grant, err := db.Admission().Reserve(core.ResourcesForVideo(q))
	if err != nil {
		return nil, err
	}
	defer grant.Release()
	for _, a := range []activity.Activity{vr, window} {
		if err := sess.Install(a, sched.Resources{}); err != nil {
			return nil, err
		}
	}
	conn, err := sess.Connect(vr, "out", window, "in", rate)
	if err != nil {
		return nil, err
	}
	if err := sess.BindValue(obj.OID(), "video", vr, "out", rate); err != nil {
		return nil, err
	}

	var stall *sched.StallDetector
	if recovery {
		vr.SetRetry(fault.DefaultRetry)
		vr.SetDropOnFault(true)
		conn.SetFailSoft(true)
		stall = window.EnableStallDetection(chaosTolerance, chaosThreshold)
		// Degrade geometry, keep the frame rate: under a collapsed link
		// the pipe stays reserved and the content shrinks to fit it.
		fallback := media.VideoQuality{Width: clipW / 2, Height: clipH / 2, Depth: clipDepth, FPS: clipFPS}
		if err := sess.EnableDegradation(core.DegradeSpec{
			Source: vr, Port: "out", Sink: window, Quality: fallback, Grant: grant,
		}); err != nil {
			return nil, err
		}
	}
	degraded := false
	if err := window.Catch(activity.EventDegraded, func(activity.EventInfo) { degraded = true }); err != nil {
		return nil, err
	}

	pb, err := sess.Start()
	if err != nil {
		return nil, err
	}
	stats, runErr := pb.Wait()

	run := &ChaosRun{
		Recovery:    recovery,
		Survived:    runErr == nil,
		FramesTotal: frames,
		FramesShown: window.FramesShown(),
		FramesLost:  vr.FramesLost(),
		Corrupted:   window.CorruptedFrames(),
		Retries:     vr.Retries(),
		Degraded:    degraded,
		Injected:    inj.CountString(),
	}
	if runErr != nil {
		run.Fatal = runErr.Error()
	}
	if stats != nil {
		run.ChunksDropped = stats.ChunksDropped
		run.TransferFailures = stats.TransferFailures
	}
	if stall != nil {
		run.Stalls = stall.Episodes()
	}
	// Undelivered frames are deadline misses: nothing was presented when
	// something was due.
	run.Misses = window.Monitor().Misses() + (run.FramesTotal - run.FramesShown)
	if run.FramesTotal > 0 {
		run.MissRate = float64(run.Misses) / float64(run.FramesTotal)
	}
	return run, nil
}

// String renders the ablation.
func (r *ChaosResult) String() string {
	cell := func(run ChaosRun) []string {
		survived := "died"
		if run.Survived {
			survived = "yes"
		}
		deg := "no"
		if run.Degraded {
			deg = "yes"
		}
		return []string{
			survived,
			fmt.Sprintf("%d/%d", run.FramesShown, run.FramesTotal),
			fmt.Sprint(run.FramesLost),
			fmt.Sprint(run.ChunksDropped),
			fmt.Sprint(run.Corrupted),
			fmt.Sprint(run.Retries),
			fmt.Sprint(run.Stalls),
			deg,
			fmt.Sprintf("%.1f%%", 100*run.MissRate),
		}
	}
	header := []string{"configuration", "survived", "shown", "sacrificed", "lost in flight", "corrupted", "retries", "stalls", "degraded", "miss rate"}
	rows := [][]string{
		append([]string{"baseline (no recovery)"}, cell(r.Baseline)...),
		append([]string{"resilient (retry+degrade)"}, cell(r.Resilient)...),
	}
	s := fmt.Sprintf("Chaos: fault injection over %d frames, seed %d\n\n", r.Frames, r.Seed)
	s += table(header, rows)
	s += fmt.Sprintf("\ninjected (baseline arm):  %s\n", r.Baseline.Injected)
	s += fmt.Sprintf("injected (resilient arm): %s\n", r.Resilient.Injected)
	if r.Baseline.Fatal != "" {
		s += fmt.Sprintf("baseline died: %s\n", r.Baseline.Fatal)
	}
	return s
}
