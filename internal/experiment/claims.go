package experiment

import (
	"fmt"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/codec"
	"avdb/internal/core"
	"avdb/internal/device"
	"avdb/internal/media"
	"avdb/internal/netsim"
	"avdb/internal/sched"
	"avdb/internal/storage"
)

// C1Result measures §3.3 "database platform": placing the processing
// device (here the video mixer) with the data halves the network traffic
// of a two-source mix.
type C1Result struct {
	Frames      int
	MixAtDB     int64 // wire bytes with the mixer at the database
	MixAtClient int64 // wire bytes shipping both streams to the client
	Factor      float64
}

// C1DevicePlacement mixes two stored clips and ships the result, with the
// mixer at either end of the link.
func C1DevicePlacement(frames int) (*C1Result, error) {
	run := func(mixAtDB bool) (int64, error) {
		loc := activity.AtApplication
		if mixAtDB {
			loc = activity.AtDatabase
		}
		link := netsim.NewLink("lan", media.GBPerSecond, avtime.Millisecond, 0, 23)
		a, err := activities.NewVideoReader("a", activity.AtDatabase, media.TypeRawVideo30)
		if err != nil {
			return 0, err
		}
		if err := a.Bind(stdClip(frames, 7), "out"); err != nil {
			return 0, err
		}
		b, err := activities.NewVideoReader("b", activity.AtDatabase, media.TypeRawVideo30)
		if err != nil {
			return 0, err
		}
		if err := b.Bind(stdClip(frames, 8), "out"); err != nil {
			return 0, err
		}
		mixer, err := activities.NewVideoMixer("mix", loc, []float64{1, 1})
		if err != nil {
			return 0, err
		}
		window := activities.NewVideoWindow("view", activity.AtApplication, media.VideoQuality{}, avtime.Second)

		g := activity.NewGraph("c1")
		for _, act := range []activity.Activity{a, b, mixer, window} {
			if err := g.Add(act); err != nil {
				return 0, err
			}
		}
		var conns []*netsim.Conn
		connect := func(from activity.Activity, fp string, to activity.Activity, tp string) error {
			if from.Location() == to.Location() {
				_, err := g.Connect(from, fp, to, tp)
				return err
			}
			nc, err := link.Connect(100 * media.MBPerSecond)
			if err != nil {
				return err
			}
			conns = append(conns, nc)
			_, err = g.ConnectVia(from, fp, to, tp, nc)
			return err
		}
		if err := connect(a, "out", mixer, "in0"); err != nil {
			return 0, err
		}
		if err := connect(b, "out", mixer, "in1"); err != nil {
			return 0, err
		}
		if err := connect(mixer, "out", window, "in"); err != nil {
			return 0, err
		}
		if err := g.Start(); err != nil {
			return 0, err
		}
		if _, err := g.Run(activity.RunConfig{Clock: sched.NewVirtualClock(0)}); err != nil {
			return 0, err
		}
		var wire int64
		for _, c := range conns {
			wire += c.BytesCarried()
			c.Close()
		}
		return wire, nil
	}
	atDB, err := run(true)
	if err != nil {
		return nil, err
	}
	atClient, err := run(false)
	if err != nil {
		return nil, err
	}
	return &C1Result{Frames: frames, MixAtDB: atDB, MixAtClient: atClient,
		Factor: float64(atClient) / float64(atDB)}, nil
}

// String renders the comparison.
func (r *C1Result) String() string {
	rows := [][]string{
		{"mixer at database (shared effects processor)", fmt.Sprint(r.MixAtDB)},
		{"mixer at client (both streams shipped)", fmt.Sprint(r.MixAtClient)},
	}
	s := fmt.Sprintf("C1 database platform: two-source mix, %d frames\n\n", r.Frames)
	s += table([]string{"configuration", "wire bytes"}, rows)
	s += fmt.Sprintf("\nprocessing at the data cuts network traffic %.1fx\n", r.Factor)
	return s
}

// C2Result measures §3.3 "scheduling": resource pre-allocation versus
// best-effort admission of concurrent streams from one disk.
type C2Result struct {
	Requested  int
	DiskRate   media.DataRate
	StreamRate media.DataRate
	// With admission control: streams admitted; every admitted stream
	// holds its reservation and misses nothing.
	Admitted       int
	AdmittedMisses float64
	// Without: all streams run, sharing the disk fairly, and every one
	// of them misses deadlines once the disk oversubscribes.
	BestEffortMisses float64
	BestEffortWorst  avtime.WorldTime
}

// C2AdmissionControl requests n concurrent streams of a stored clip.
func C2AdmissionControl(n, frames int) (*C2Result, error) {
	dm := device.NewManager()
	diskRate := 4 * media.MBPerSecond
	disk := device.NewDisk("disk0", 1_000_000_000, diskRate, avtime.Millisecond)
	if err := dm.Register(disk); err != nil {
		return nil, err
	}
	st := storage.NewStore(dm)
	clip := stdClip(frames, 9)
	seg, err := st.Place(clip, "disk0")
	if err != nil {
		return nil, err
	}
	frameBytes := int64(clipW * clipH * clipDepth / 8)
	// Each stream needs frameBytes every frame period.
	streamRate := media.DataRate(frameBytes * clipFPS)
	period := avtime.Second / clipFPS

	res := &C2Result{Requested: n, DiskRate: diskRate, StreamRate: streamRate}

	// With admission control: reserve before streaming.
	var streams []*storage.Stream
	for i := 0; i < n; i++ {
		s, _, err := st.OpenStream(seg.ID(), streamRate)
		if err != nil {
			break
		}
		streams = append(streams, s)
	}
	res.Admitted = len(streams)
	// Streams prefetch: frame f's read starts one period early.  With a
	// held reservation a frame read takes exactly one period, so every
	// frame is ready at its deadline.
	mon := sched.NewMonitor(period / 2)
	for _, s := range streams {
		var backlog avtime.WorldTime
		for f := 0; f < frames; f++ {
			deadline := avtime.WorldTime(f+1) * period
			rt, err := s.ReadTime(frameBytes)
			if err != nil {
				return nil, err
			}
			start := max(avtime.WorldTime(f)*period, backlog)
			done := start + rt
			backlog = done
			mon.Record(deadline, done)
		}
		s.Close()
	}
	res.AdmittedMisses = mon.MissRate()

	// Best effort: everyone streams, the disk's bandwidth is split n
	// ways, reads queue behind one another.  Once the per-stream share
	// drops below the consumption rate, the backlog grows without bound.
	be := sched.NewMonitor(period / 2)
	perStream := diskRate / media.DataRate(n)
	readTime := avtime.WorldTime(frameBytes * int64(avtime.Second) / int64(perStream))
	for i := 0; i < n; i++ {
		var backlog avtime.WorldTime
		for f := 0; f < frames; f++ {
			deadline := avtime.WorldTime(f+1) * period
			start := max(avtime.WorldTime(f)*period, backlog)
			done := start + readTime
			backlog = done
			be.Record(deadline, done)
		}
	}
	res.BestEffortMisses = be.MissRate()
	res.BestEffortWorst = be.MaxLateness()
	return res, nil
}

// String renders the comparison.
func (r *C2Result) String() string {
	rows := [][]string{
		{"with admission control", fmt.Sprintf("%d of %d", r.Admitted, r.Requested),
			fmt.Sprintf("%.1f%%", 100*r.AdmittedMisses), "0s"},
		{"best effort (no reservation)", fmt.Sprintf("%d of %d", r.Requested, r.Requested),
			fmt.Sprintf("%.1f%%", 100*r.BestEffortMisses), r.BestEffortWorst.String()},
	}
	s := fmt.Sprintf("C2 scheduling: %d streams of %v from a %v disk\n\n", r.Requested, r.StreamRate, r.DiskRate)
	s += table([]string{"policy", "streams running", "deadline misses", "worst lateness"}, rows)
	return s
}

// C3Result measures §3.3 "client interface": with the asynchronous
// stream interface the client overlaps its per-frame processing with the
// transfer; with request/reply it waits for the whole value first.
type C3Result struct {
	Frames        int
	WorkPerFrame  avtime.WorldTime
	TransferEnd   avtime.WorldTime // when the last frame reaches the client
	FirstFrame    avtime.WorldTime
	AsyncDone     avtime.WorldTime // async client finishes processing
	BlockingDone  avtime.WorldTime // blocking client finishes processing
	Speedup       float64
	FirstResultAt avtime.WorldTime // async client's first processed frame
}

// C3AsyncVsBlocking streams a clip over a modest link and accounts both
// interaction styles over the same arrival times.
func C3AsyncVsBlocking(frames int, workPerFrame avtime.WorldTime) (*C3Result, error) {
	link := netsim.NewLink("lan", 2*media.MBPerSecond, 2*avtime.Millisecond, 0, 29)
	nc, err := link.Connect(2 * media.MBPerSecond)
	if err != nil {
		return nil, err
	}
	defer nc.Close()
	reader, err := activities.NewVideoReader("src", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		return nil, err
	}
	if err := reader.Bind(stdClip(frames, 10), "out"); err != nil {
		return nil, err
	}
	window := activities.NewVideoWindow("win", activity.AtApplication, media.VideoQuality{}, avtime.Second)
	g := activity.NewGraph("c3")
	if err := g.Add(reader); err != nil {
		return nil, err
	}
	if err := g.Add(window); err != nil {
		return nil, err
	}
	if _, err := g.ConnectVia(reader, "out", window, "in", nc); err != nil {
		return nil, err
	}
	if err := g.Start(); err != nil {
		return nil, err
	}
	if _, err := g.Run(activity.RunConfig{Clock: sched.NewVirtualClock(0)}); err != nil {
		return nil, err
	}
	arr := window.Arrivals()
	if len(arr) == 0 {
		return nil, fmt.Errorf("experiment: no frames delivered")
	}
	res := &C3Result{Frames: frames, WorkPerFrame: workPerFrame}
	res.FirstFrame = arr[0]
	res.TransferEnd = arr[len(arr)-1]
	// Async: per-frame work overlaps the stream; each frame is processed
	// at max(arrival, previous completion) + work.
	var done avtime.WorldTime
	for i, a := range arr {
		start := max(a, done)
		done = start + workPerFrame
		if i == 0 {
			res.FirstResultAt = done
		}
	}
	res.AsyncDone = done
	// Blocking: receive the whole reply, then process.
	res.BlockingDone = res.TransferEnd + avtime.WorldTime(len(arr))*workPerFrame
	res.Speedup = float64(res.BlockingDone) / float64(res.AsyncDone)
	return res, nil
}

// String renders the comparison.
func (r *C3Result) String() string {
	rows := [][]string{
		{"asynchronous stream interface", r.FirstResultAt.String(), r.AsyncDone.String()},
		{"issue-request / receive-reply", r.TransferEnd.String(), r.BlockingDone.String()},
	}
	s := fmt.Sprintf("C3 client interface: %d frames, %v client work per frame\n\n", r.Frames, r.WorkPerFrame)
	s += table([]string{"interaction style", "first result at", "all frames processed at"}, rows)
	s += fmt.Sprintf("\nasync completes %.2fx sooner\n", r.Speedup)
	return s
}

// C4Result measures §3.3 "data placement": mixing two values stored on
// one device forces a copy first; client-visible placement on two devices
// starts instantly.
type C4Result struct {
	ValueBytes  int64
	SameDevice  avtime.WorldTime // startup: copy one value away, then stream
	DualDevice  avtime.WorldTime // startup: two seeks
	Interactive bool             // dual-device startup under 100ms
	Factor      float64
}

// C4DataPlacement stores two clips and prices the startup latency of a
// simultaneous two-stream mix under both placements.
func C4DataPlacement(frames int) (*C4Result, error) {
	build := func() (*storage.Store, *storage.Segment, *storage.Segment, error) {
		dm := device.NewManager()
		for _, id := range []string{"disk0", "disk1"} {
			if err := dm.Register(device.NewDisk(id, 1_000_000_000, 4*media.MBPerSecond, 10*avtime.Millisecond)); err != nil {
				return nil, nil, nil, err
			}
		}
		st := storage.NewStore(dm)
		a, err := st.Place(stdClip(frames, 12), "disk0")
		if err != nil {
			return nil, nil, nil, err
		}
		b, err := st.Place(stdClip(frames, 13), "disk0")
		if err != nil {
			return nil, nil, nil, err
		}
		return st, a, b, nil
	}

	// A production-quality real-time stream reservation: more than half
	// the 4 MB/s disk, so one stream fits and two do not.
	streamRate := media.DataRate(5) * media.MBPerSecond / 2

	// Same-device: the second reservation fails; the database must copy
	// one value to disk1 first (the copy the paper warns about), then
	// open both streams.
	st, a, b, err := build()
	if err != nil {
		return nil, err
	}
	res := &C4Result{ValueBytes: a.Size()}
	s1, startup1, err := st.OpenStream(a.ID(), streamRate)
	if err != nil {
		return nil, err
	}
	if _, _, err := st.OpenStream(b.ID(), streamRate); err == nil {
		return nil, fmt.Errorf("experiment: same-device double stream unexpectedly admitted")
	}
	moveTime, err := st.Move(b.ID(), "disk1")
	if err != nil {
		return nil, err
	}
	s2, startup2, err := st.OpenStream(b.ID(), streamRate)
	if err != nil {
		return nil, err
	}
	res.SameDevice = moveTime + max(startup1, startup2)
	s1.Close()
	s2.Close()

	// Dual-device: the application placed the values apart up front.
	st2, a2, _, err := build()
	if err != nil {
		return nil, err
	}
	b2, err := st2.Place(stdClip(frames, 13), "disk1")
	if err != nil {
		return nil, err
	}
	t1, st1up, err := st2.OpenStream(a2.ID(), streamRate)
	if err != nil {
		return nil, err
	}
	t2, st2up, err := st2.OpenStream(b2.ID(), streamRate)
	if err != nil {
		return nil, err
	}
	res.DualDevice = max(st1up, st2up)
	t1.Close()
	t2.Close()

	res.Interactive = res.DualDevice < 100*avtime.Millisecond
	res.Factor = float64(res.SameDevice) / float64(res.DualDevice)
	return res, nil
}

// String renders the comparison.
func (r *C4Result) String() string {
	rows := [][]string{
		{"both values on one disk (copy first)", r.SameDevice.String()},
		{"client-placed on two disks", r.DualDevice.String()},
	}
	s := fmt.Sprintf("C4 data placement: simultaneous mix of two %d-byte values\n\n", r.ValueBytes)
	s += table([]string{"placement", "startup latency"}, rows)
	s += fmt.Sprintf("\nexplicit placement starts %.0fx faster (interactive: %v)\n", r.Factor, r.Interactive)
	return s
}

// C5Row is one quality-factor retrieval.
type C5Row struct {
	Stored         string
	Requested      media.VideoQuality
	Method         string
	BytesProcessed int64
	BytesOut       int64
}

// C5Result measures §3.3/§4.1 "data representation": serving quality
// factors from a scalable encoding by layer dropping versus transcoding a
// conventional encoding.
type C5Result struct {
	Rows []C5Row
}

// C5QualityFactors encodes one clip both ways and serves three quality
// factors from each.
func C5QualityFactors(frames int) (*C5Result, error) {
	clip := stdClip(frames, 14)
	scal, err := codec.ScalableCodec.Encode(clip)
	if err != nil {
		return nil, err
	}
	mpeg, err := codec.MPEG.Encode(clip)
	if err != nil {
		return nil, err
	}
	qualities := []media.VideoQuality{
		{Width: clipW, Height: clipH, Depth: clipDepth, FPS: clipFPS},
		{Width: clipW / 2, Height: clipH / 2, Depth: clipDepth, FPS: clipFPS},
		{Width: clipW / 4, Height: clipH / 4, Depth: clipDepth, FPS: clipFPS},
	}
	res := &C5Result{}
	for _, stored := range []struct {
		name string
		v    media.Value
	}{
		{"scalable", scal},
		{"mpeg-sim", mpeg},
	} {
		for _, q := range qualities {
			_, info, err := core.RetrieveAtQuality(stored.v, q)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, C5Row{
				Stored: stored.name, Requested: q,
				Method: info.Method, BytesProcessed: info.BytesProcessed, BytesOut: info.BytesOut,
			})
		}
	}
	return res, nil
}

// String renders the sweep.
func (r *C5Result) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Stored, row.Requested.String(), row.Method,
			fmt.Sprint(row.BytesProcessed), fmt.Sprint(row.BytesOut),
		})
	}
	return "C5 data representation: serving quality factors\n\n" +
		table([]string{"stored as", "requested", "method", "bytes touched", "bytes out"}, rows)
}
