package experiment

import (
	"strings"
	"testing"
)

func TestChaosAblation(t *testing.T) {
	res, err := Chaos(120, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance claim: under an identical seeded fault campaign the
	// recovery machinery keeps the stream alive and strictly reduces the
	// deadline-miss rate.
	if res.Baseline.Survived {
		t.Error("baseline survived the campaign; faults not injected?")
	}
	if !res.Resilient.Survived {
		t.Errorf("resilient stream died: %s", res.Resilient.Fatal)
	}
	if res.Resilient.MissRate >= res.Baseline.MissRate {
		t.Errorf("resilient miss rate %.3f not under baseline %.3f",
			res.Resilient.MissRate, res.Baseline.MissRate)
	}
	if res.Resilient.Retries == 0 {
		t.Error("no retries spent; transient faults not exercised")
	}
	if res.Resilient.Stalls == 0 {
		t.Error("no stall episode under the link collapse")
	}
	if !res.Resilient.Degraded {
		t.Error("degradation never fired")
	}
	if res.Resilient.ChunksDropped == 0 {
		t.Error("no chunks dropped; loss faults not exercised")
	}
	if res.Resilient.Corrupted == 0 {
		t.Error("no corrupted frames seen")
	}
	if res.Resilient.FramesShown+res.Resilient.FramesLost+int(res.Resilient.ChunksDropped) != res.Resilient.FramesTotal {
		t.Errorf("frame accounting broken: %d shown + %d lost + %d dropped != %d",
			res.Resilient.FramesShown, res.Resilient.FramesLost,
			res.Resilient.ChunksDropped, res.Resilient.FramesTotal)
	}
	out := res.String()
	for _, needle := range []string{"baseline (no recovery)", "resilient (retry+degrade)", "transient-read"} {
		if !strings.Contains(out, needle) {
			t.Errorf("rendition missing %q:\n%s", needle, out)
		}
	}
}

func TestChaosDeterministic(t *testing.T) {
	// Same seed, byte-identical report; a different seed changes the
	// injection trace.
	a, err := Chaos(90, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chaos(90, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
	c, err := Chaos(90, 12)
	if err != nil {
		t.Fatal(err)
	}
	if c.Resilient.Injected == a.Resilient.Injected && c.Resilient.FramesShown == a.Resilient.FramesShown {
		t.Error("different seed produced the same injection trace")
	}
}

func BenchmarkChaosBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := chaosArm(120, 7, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChaosResilient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := chaosArm(120, 7, true); err != nil {
			b.Fatal(err)
		}
	}
}
