package experiment

import (
	"fmt"
	"strings"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/core"
	"avdb/internal/device"
	"avdb/internal/media"
	"avdb/internal/netsim"
	"avdb/internal/sched"
	"avdb/internal/schema"
	"avdb/internal/storage"
)

// The tenancy experiment: N client sessions all stream the same popular
// clip — one striped placement on a fixed disk array — and the sweep
// compares two ways of running them:
//
//	shared — all N playbacks admitted to the database's multi-session
//	  engine at once.  Every engine step ticks every session, so the
//	  sessions' chunk requests for the same frame land in the same
//	  SCAN-EDF round: per disk the batch sorts into one run of adjacent
//	  tracks, charging one positioned seek and riding the rest for free.
//	serial — the same N sessions on an identical platform, each playback
//	  run to completion before the next starts.  Every pass re-walks the
//	  clip's tracks alone, so the array pays the full seek bill N times.
//
// Aggregate throughput is total bytes over the virtual wall time the
// whole tenancy took, so shared scales with N while serial stays flat.
// Everything is seeded virtual time; the table is deterministic.
const (
	tenancyWidth     = 4                       // disks the clip is striped over
	tenancySeek      = 10 * avtime.Millisecond // average positioning time
	tenancySettle    = 1 * avtime.Millisecond  // per-track settle
	tenancyTracks    = 16
	tenancyTolerance = 50 * avtime.Millisecond // presentation-deadline slack
	tenancyLatency   = 2 * avtime.Millisecond  // lan0 latency
	tenancySeed      = 21
)

// TenancyArm is one way of running n sessions over the shared clip.
type TenancyArm struct {
	Sessions   int
	Wall       avtime.WorldTime // virtual time from first start to last finish
	Bytes      int64            // payload bytes delivered to all sessions
	Throughput float64          // aggregate MB/s of virtual wall time
	Misses     []int            // per-session presentation-deadline misses
	IO         storage.IOStats
}

// TenancyRow compares the two arms at one session count.
type TenancyRow struct {
	Sessions int
	Shared   TenancyArm
	Serial   TenancyArm
	Speedup  float64 // shared throughput over serial
}

// TenancyResult is the session-count sweep.
type TenancyResult struct {
	Frames int
	Width  int
	DiskBW media.DataRate // per-disk bandwidth
	Rows   []TenancyRow
}

// tenancyPlatform builds the fixed array: width striped disks with a
// positional geometry, a client link, and the one placed clip.  The
// platform is sized by maxSessions so every row of the sweep runs on
// identical hardware.
func tenancyPlatform(frames, maxSessions int) (*core.Database, schema.OID, error) {
	frameBytes := int64(clipW * clipH * clipDepth / 8)
	clipBytes := int64(frames) * frameBytes
	diskBW := media.DataRate(maxSessions) * media.MBPerSecond
	// Size each disk so the clip's stripe spans about half its tracks:
	// SCAN ordering then has real distances to amortize.
	capacity := 2*clipBytes/int64(tenancyWidth) + frameBytes
	db, err := core.Open(core.Config{
		Name: "tenancy",
		Resources: sched.Resources{
			Buffers: 8*maxSessions + 16,
			CPU:     100 * media.MBPerSecond,
			Bus:     100 * media.MBPerSecond,
		},
		Striping: storage.StripePolicy{Width: tenancyWidth, Seeks: true, Rounds: true},
	})
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i < tenancyWidth; i++ {
		d := device.NewDisk(fmt.Sprintf("disk%d", i), capacity, diskBW, tenancySeek)
		if err := d.SetGeometry(tenancyTracks, tenancySettle); err != nil {
			return nil, 0, err
		}
		if err := db.Devices().Register(d); err != nil {
			return nil, 0, err
		}
	}
	linkBW := media.DataRate(maxSessions+1) * media.MBPerSecond
	if err := db.Network().AddLink(netsim.NewLink("lan0", linkBW, tenancyLatency, 0, tenancySeed)); err != nil {
		return nil, 0, err
	}
	if _, err := db.DefineClass("Clip", "", []schema.AttrDef{
		{Name: "title", Kind: schema.KindString},
		{Name: "video", Kind: schema.KindMedia, MediaKind: media.KindVideo},
	}); err != nil {
		return nil, 0, err
	}
	obj, err := db.NewObject("Clip")
	if err != nil {
		return nil, 0, err
	}
	if err := db.SetAttr(obj.OID(), "title", schema.String("tenancy")); err != nil {
		return nil, 0, err
	}
	if err := db.SetAttr(obj.OID(), "video", schema.Media(stdClip(frames, tenancySeed))); err != nil {
		return nil, 0, err
	}
	if _, err := db.PlaceMediaStriped(obj.OID(), "video", media.MBPerSecond, tenancyWidth); err != nil {
		return nil, 0, err
	}
	return db, obj.OID(), nil
}

// tenancyArm runs n sessions over the shared clip, concurrently under
// the engine or back-to-back, on a fresh platform sized for maxSessions.
func tenancyArm(frames, n, maxSessions int, shared bool) (TenancyArm, error) {
	db, oid, err := tenancyPlatform(frames, maxSessions)
	if err != nil {
		return TenancyArm{}, fmt.Errorf("experiment: tenancy platform: %w", err)
	}
	q := stdQuality()
	type tenant struct {
		sess *core.Session
		win  *activities.VideoWindow
	}
	tenants := make([]tenant, n)
	for i := 0; i < n; i++ {
		sess, err := db.Connect(fmt.Sprintf("tenant-%d", i), "lan0")
		if err != nil {
			return TenancyArm{}, err
		}
		vr, err := activities.NewVideoReader("reader", activity.AtDatabase, media.TypeRawVideo30)
		if err != nil {
			return TenancyArm{}, err
		}
		win := activities.NewVideoWindow("window", activity.AtApplication, q, tenancyTolerance)
		for _, a := range []activity.Activity{vr, win} {
			if err := sess.Install(a, sched.Resources{}); err != nil {
				return TenancyArm{}, err
			}
		}
		if _, err := sess.Connect(vr, "out", win, "in", q.DataRate()); err != nil {
			return TenancyArm{}, err
		}
		if err := sess.BindValue(oid, "video", vr, "out", media.MBPerSecond); err != nil {
			return TenancyArm{}, err
		}
		tenants[i] = tenant{sess: sess, win: win}
	}

	arm := TenancyArm{Sessions: n}
	if shared {
		// Pause admits every playback into the same first engine step,
		// so all n sessions tick — and request chunks — in lockstep.
		db.Engine().Pause()
		pbs := make([]*core.Playback, n)
		for i, t := range tenants {
			pb, err := t.sess.Start()
			if err != nil {
				return TenancyArm{}, err
			}
			pbs[i] = pb
		}
		db.Engine().Resume()
		for _, pb := range pbs {
			stats, err := pb.Wait()
			if err != nil {
				return TenancyArm{}, err
			}
			arm.Bytes += stats.BytesMoved
		}
	} else {
		for _, t := range tenants {
			pb, err := t.sess.Start()
			if err != nil {
				return TenancyArm{}, err
			}
			stats, err := pb.Wait()
			if err != nil {
				return TenancyArm{}, err
			}
			arm.Bytes += stats.BytesMoved
		}
	}
	arm.Wall = db.Clock().Now()
	for _, t := range tenants {
		arm.Misses = append(arm.Misses, t.win.Monitor().Misses())
	}
	arm.IO = db.MediaIOStats()
	for _, t := range tenants {
		if err := t.sess.Close(); err != nil {
			return TenancyArm{}, fmt.Errorf("experiment: tenancy close: %w", err)
		}
	}
	if arm.Wall > 0 {
		arm.Throughput = float64(arm.Bytes) / (float64(arm.Wall) / float64(avtime.Second)) / (1 << 20)
	}
	return arm, nil
}

// Tenancy sweeps session counts (doubling up to maxSessions) over the
// shared-clip workload, running the engine-shared and back-to-back arms
// at each count.
func Tenancy(frames, maxSessions int) (*TenancyResult, error) {
	if frames < 2 || maxSessions < 1 {
		return nil, fmt.Errorf("experiment: tenancy needs frames >= 2 and sessions >= 1")
	}
	var counts []int
	for n := 1; n < maxSessions; n *= 2 {
		counts = append(counts, n)
	}
	counts = append(counts, maxSessions)
	res := &TenancyResult{
		Frames: frames,
		Width:  tenancyWidth,
		DiskBW: media.DataRate(maxSessions) * media.MBPerSecond,
	}
	for _, n := range counts {
		shared, err := tenancyArm(frames, n, maxSessions, true)
		if err != nil {
			return nil, err
		}
		serial, err := tenancyArm(frames, n, maxSessions, false)
		if err != nil {
			return nil, err
		}
		row := TenancyRow{Sessions: n, Shared: shared, Serial: serial}
		if serial.Throughput > 0 {
			row.Speedup = shared.Throughput / serial.Throughput
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the sweep.
func (r *TenancyResult) String() string {
	header := []string{"sessions", "shared wall", "serial wall", "shared MB/s", "serial MB/s", "speedup",
		"shared seeks", "serial seeks", "saved", "misses", "max batch"}
	rows := make([][]string, 0, len(r.Rows))
	misses := func(a TenancyArm) string {
		parts := make([]string, len(a.Misses))
		for i, m := range a.Misses {
			parts[i] = fmt.Sprint(m)
		}
		return strings.Join(parts, "/")
	}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprint(row.Sessions),
			row.Shared.Wall.String(),
			row.Serial.Wall.String(),
			fmt.Sprintf("%.2f", row.Shared.Throughput),
			fmt.Sprintf("%.2f", row.Serial.Throughput),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprint(row.Shared.IO.SeeksCharged),
			fmt.Sprint(row.Serial.IO.SeeksCharged),
			fmt.Sprint(row.Shared.IO.SeeksSaved),
			misses(row.Shared),
			fmt.Sprint(row.Shared.IO.MaxBatch),
		})
	}
	s := fmt.Sprintf("Tenancy: up to %d sessions streaming one clip (%d frames, striped over %d disks, %v each)\n",
		r.Rows[len(r.Rows)-1].Sessions, r.Frames, r.Width, r.DiskBW)
	s += "shared = all sessions on the database engine, requests merged into SCAN-EDF rounds;\n"
	s += "serial = same sessions back-to-back on identical hardware; all times are virtual\n\n"
	s += table(header, rows)
	return s
}
