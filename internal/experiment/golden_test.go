package experiment

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"avdb/internal/media"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenCases enumerates every deterministic experiment rendition.
// Seeds and frame counts are pinned: the whole point is that the same
// inputs render the same bytes on every machine, every run.
func goldenCases(t *testing.T) map[string]func() (fmt.Stringer, error) {
	t.Helper()
	return map[string]func() (fmt.Stringer, error){
		"table1":   func() (fmt.Stringer, error) { return Table1() },
		"fig1":     func() (fmt.Stringer, error) { return Fig1() },
		"fig2":     func() (fmt.Stringer, error) { return Fig2(60) },
		"fig3":     func() (fmt.Stringer, error) { return Fig3(60) },
		"fig4":     func() (fmt.Stringer, error) { return Fig4(30, 320, 240, 10*media.MBPerSecond) },
		"chaos":    func() (fmt.Stringer, error) { return Chaos(90, 7) },
		"stripe":   func() (fmt.Stringer, error) { return Stripe(90, 4) },
		"tenancy":  func() (fmt.Stringer, error) { return Tenancy(45, 4) },
		"zipf":     func() (fmt.Stringer, error) { return ZipfTenancy(12, 96) },
		"jukebox":  func() (fmt.Stringer, error) { return Jukebox(90) },
		"overload": func() (fmt.Stringer, error) { return Overload(120, 4) },
		"observe": func() (fmt.Stringer, error) {
			res, err := Observe(60, 7)
			if err != nil {
				return nil, err
			}
			return res, nil
		},
	}
}

// TestGoldenRenditions locks every experiment's rendered output to a
// checked-in golden file.  Regenerate intentionally with
//
//	go test ./internal/experiment -run TestGoldenRenditions -update
//
// and review the diff like any other code change.
func TestGoldenRenditions(t *testing.T) {
	for name, run := range goldenCases(t) {
		t.Run(name, func(t *testing.T) {
			res, err := run()
			if err != nil {
				t.Fatal(err)
			}
			got := res.String()
			path := filepath.Join("testdata", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output drifted from golden file %s\n--- got ---\n%s\n--- want ---\n%s", name, path, got, want)
			}
		})
	}
}

// TestGoldenRenditionsStable guards the guard: each experiment run twice
// in-process must render identical bytes, otherwise the golden files
// would flap regardless of code changes.
func TestGoldenRenditionsStable(t *testing.T) {
	for name, run := range goldenCases(t) {
		t.Run(name, func(t *testing.T) {
			a, err := run()
			if err != nil {
				t.Fatal(err)
			}
			b, err := run()
			if err != nil {
				t.Fatal(err)
			}
			if a.String() != b.String() {
				t.Errorf("%s renders differently across two identical runs", name)
			}
		})
	}
}
