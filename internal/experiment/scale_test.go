package experiment

import (
	"strings"
	"testing"
)

// Wall-clock columns are hardware noise, so Scale stays out of the
// golden corpus; the determinism and accounting columns are pinned
// here instead.
func TestScaleArmsAreIdentical(t *testing.T) {
	res, err := Scale(4, 20, []int{1, 2, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 4 {
		t.Fatalf("got %d runs, want 4", len(res.Runs))
	}
	// 4 lanes x 20 frames x 2 hops (src→fil, fil→sink) chunks.
	const wantChunks = 4 * 20 * 2
	for _, run := range res.Runs {
		if !run.Identical {
			t.Errorf("workers=%d arm diverged from serial baseline", run.Workers)
		}
		if run.Chunks != wantChunks {
			t.Errorf("workers=%d: chunks = %d, want %d", run.Workers, run.Chunks, wantChunks)
		}
		if run.Speedup <= 0 {
			t.Errorf("workers=%d: speedup %.2f not positive", run.Workers, run.Speedup)
		}
	}
	out := res.String()
	for _, needle := range []string{"workers", "identical", "GOMAXPROCS"} {
		if !strings.Contains(out, needle) {
			t.Errorf("rendition missing %q:\n%s", needle, out)
		}
	}
}

func TestScaleRejectsBadArgs(t *testing.T) {
	if _, err := Scale(0, 10, []int{1}); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := Scale(4, 10, nil); err == nil {
		t.Error("empty worker sweep accepted")
	}
}
