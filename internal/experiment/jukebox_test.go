package experiment

import "testing"

// TestJukeboxLifeCycle pins the hierarchy's arc: the cold wave pays a
// platter swap per clip, the hot ramp promotes the hot clip to the
// disk tier, the replay replicates it, and the idle sweep demotes it —
// with the carousel untouched once the value lives on disks.
func TestJukeboxLifeCycle(t *testing.T) {
	res, err := Jukebox(90)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Waves) != 3 {
		t.Fatalf("waves = %d, want 3", len(res.Waves))
	}
	cold, ramp, replay := res.Waves[0], res.Waves[1], res.Waves[2]
	if cold.Swaps != int64(len(cold.Plays)) {
		t.Errorf("cold wave swaps = %d, want one per clip (%d)", cold.Swaps, len(cold.Plays))
	}
	if cold.HotTier != "jukebox" || cold.HotCopies != 1 {
		t.Errorf("hot clip after cold wave: tier %q copies %d, want archival single copy", cold.HotTier, cold.HotCopies)
	}
	if ramp.HotTier != "jukebox+disk" {
		t.Errorf("hot ramp did not promote: tier %q", ramp.HotTier)
	}
	if replay.HotCopies != 2 {
		t.Errorf("replay did not replicate: copies = %d, want 2", replay.HotCopies)
	}
	if replay.Swaps != 0 {
		t.Errorf("replay touched the carousel: %d swaps, want 0 once promoted", replay.Swaps)
	}
	if res.Demoted != 1 {
		t.Errorf("idle sweep demoted %d values, want 1", res.Demoted)
	}
	for i, ti := range res.Final {
		if ti.Tier() != "jukebox" || ti.Promoted {
			t.Errorf("value %d after the sweep: tier %q, want everything back on the archival tier", i, ti.Tier())
		}
	}
}

// TestZipfPooledArms pins the shared buffer pool's claims at tenancy
// scale: co-viewing cohorts hit the pool on most reads, the pooled
// arms move at least the baseline's throughput, and the pool's commit
// discipline keeps every EngineWorkers arm byte-identical to serial.
func TestZipfPooledArms(t *testing.T) {
	res, err := ZipfTenancy(12, 96)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pooled) != 3 {
		t.Fatalf("pooled arms = %d, want 3", len(res.Pooled))
	}
	for _, a := range res.Pooled {
		if !a.Identical {
			t.Errorf("pooled arm workers=%d not byte-identical to serial", a.Workers)
		}
		if a.CohortRate <= 0.5 {
			t.Errorf("pooled arm workers=%d: cohort hit rate %.1f%%, want > 50%%", a.Workers, 100*a.CohortRate)
		}
		if a.Pool.Shared == 0 {
			t.Errorf("pooled arm workers=%d: no cross-stream shared hits", a.Workers)
		}
		if a.Throughput < res.Arms[0].Throughput {
			t.Errorf("pooled arm workers=%d: %.2f MB/s under the unpooled baseline %.2f",
				a.Workers, a.Throughput, res.Arms[0].Throughput)
		}
	}
}
