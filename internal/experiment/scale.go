package experiment

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/media"
	"avdb/internal/obs"
	"avdb/internal/sched"
)

// The wavefront-scaling experiment: the same wide activity graph runs
// once per worker count, and every arm must reproduce the serial arm's
// RunStats and obs snapshot byte for byte — parallelism here buys wall
// time, never different answers.  The graph is width independent
// source→filter→sink lanes, so every dependency level is width
// activities wide and the executor has real concurrency to harvest.
//
// Wall-clock numbers are hardware-dependent and therefore excluded from
// the golden corpus; the determinism columns are what the test suite
// pins.

// scalePasses tunes the per-tick busy work so a lane's tick dominates
// executor overhead without making the experiment slow serially.
const scalePasses = 8

// scaleBurner is a source that synthesizes a frame per tick and runs a
// deterministic pixel transform over it — stand-in compute for decode.
type scaleBurner struct {
	*activity.Base
	frames, pos int
	state       uint32
}

func newScaleBurner(name string, frames int, seed uint32) *scaleBurner {
	s := &scaleBurner{
		Base:   activity.NewBase(name, "ScaleBurner", activity.AtDatabase),
		frames: frames, state: seed | 1,
	}
	s.AddPort("out", activity.Out, media.TypeRawVideo30)
	return s
}

func burn(f *media.Frame, state uint32, passes int) uint32 {
	x := state
	for p := 0; p < passes; p++ {
		for i := range f.Pix {
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
			f.Pix[i] += byte(x)
		}
	}
	return x
}

func (s *scaleBurner) Tick(tc *activity.TickContext) error {
	if s.pos >= s.frames {
		s.MarkDone()
		return nil
	}
	f := media.NewFrame(clipW, clipH, clipDepth)
	s.state = burn(f, s.state, scalePasses)
	tc.Emit("out", &activity.Chunk{Seq: s.pos, At: tc.Now, Arrived: tc.Now, Payload: f})
	s.pos++
	if s.pos >= s.frames {
		s.MarkDone()
	}
	return nil
}

// scaleFilter applies the same transform in place, giving the middle
// level of every lane real work too.
type scaleFilter struct {
	*activity.Base
	state uint32
}

func newScaleFilter(name string, seed uint32) *scaleFilter {
	f := &scaleFilter{Base: activity.NewBase(name, "ScaleFilter", activity.AtDatabase), state: seed | 1}
	f.AddPort("in", activity.In, media.TypeRawVideo30)
	f.AddPort("out", activity.Out, media.TypeRawVideo30)
	return f
}

func (f *scaleFilter) Tick(tc *activity.TickContext) error {
	in := tc.In("in")
	if in == nil {
		return nil
	}
	frame := in.Payload.(*media.Frame)
	f.state = burn(frame, f.state, scalePasses)
	out := *in
	tc.Emit("out", &out)
	return nil
}

// scaleSink counts and checksums what arrives so the arms can be
// compared on content, not just counts.
type scaleSink struct {
	*activity.Base
	n   int
	sum uint32
}

func newScaleSink(name string) *scaleSink {
	s := &scaleSink{Base: activity.NewBase(name, "ScaleSink", activity.AtApplication)}
	s.AddPort("in", activity.In, media.TypeRawVideo30)
	return s
}

func (s *scaleSink) Tick(tc *activity.TickContext) error {
	in := tc.In("in")
	if in == nil {
		return nil
	}
	f := in.Payload.(*media.Frame)
	x := s.sum | 1
	for i := range f.Pix {
		x ^= uint32(f.Pix[i]) + x<<7
	}
	s.sum = x
	s.n++
	return nil
}

// ScaleRun is one arm: the wide graph under one worker-count setting.
type ScaleRun struct {
	Workers   int           // RunConfig.Workers (0 was resolved before the run)
	Wall      time.Duration // host wall-clock for the whole run
	Ticks     int
	Chunks    int64
	Virtual   avtime.WorldTime // virtual elapsed stream time
	Speedup   float64          // serial wall / this wall
	Identical bool             // RunStats, sink checksums and obs snapshot match serial
}

// ScaleResult is the sweep over worker counts.
type ScaleResult struct {
	Width   int // lanes, = width of every dependency level
	Frames  int // frames per lane
	MaxProc int // runtime.GOMAXPROCS on this host
	Runs    []ScaleRun
}

// scaleArm builds the wide graph and runs it once under the given
// worker count, returning the run plus the evidence used for the
// determinism comparison.
func scaleArm(width, frames, workers int) (ScaleRun, *activity.RunStats, string, []uint32, error) {
	g := activity.NewGraph("scale")
	sinks := make([]*scaleSink, width)
	for i := 0; i < width; i++ {
		src := newScaleBurner(fmt.Sprintf("src%d", i), frames, uint32(i+1))
		fil := newScaleFilter(fmt.Sprintf("fil%d", i), uint32(i+101))
		sinks[i] = newScaleSink(fmt.Sprintf("sink%d", i))
		for _, a := range []activity.Activity{src, fil, sinks[i]} {
			if err := g.Add(a); err != nil {
				return ScaleRun{}, nil, "", nil, err
			}
		}
		if _, err := g.Connect(src, "out", fil, "in"); err != nil {
			return ScaleRun{}, nil, "", nil, err
		}
		if _, err := g.Connect(fil, "out", sinks[i], "in"); err != nil {
			return ScaleRun{}, nil, "", nil, err
		}
	}
	if err := g.Start(); err != nil {
		return ScaleRun{}, nil, "", nil, err
	}
	col := obs.NewCollector()
	begin := time.Now()
	stats, err := g.Run(activity.RunConfig{
		Clock:   sched.NewVirtualClock(0),
		Workers: workers,
		Obs:     col,
	})
	wall := time.Since(begin)
	if err != nil {
		return ScaleRun{}, nil, "", nil, err
	}
	sums := make([]uint32, width)
	for i, s := range sinks {
		if s.n != frames {
			return ScaleRun{}, nil, "", nil, fmt.Errorf("experiment: lane %d delivered %d/%d frames", i, s.n, frames)
		}
		sums[i] = s.sum
	}
	run := ScaleRun{
		Workers: workers,
		Wall:    wall,
		Ticks:   stats.Ticks,
		Chunks:  stats.Chunks,
		Virtual: stats.Elapsed,
	}
	snap, err := col.Snapshot().JSON()
	if err != nil {
		return ScaleRun{}, nil, "", nil, err
	}
	return run, stats, snap, sums, nil
}

// Scale sweeps the wavefront executor over worker counts on a
// width-lane graph.  The first count is the baseline the others are
// compared against (pass 1 first for a serial baseline).
func Scale(width, frames int, workerCounts []int) (*ScaleResult, error) {
	if width < 1 || frames < 1 || len(workerCounts) == 0 {
		return nil, fmt.Errorf("experiment: scale needs width, frames and at least one worker count")
	}
	res := &ScaleResult{Width: width, Frames: frames, MaxProc: runtime.GOMAXPROCS(0)}
	var baseStats *activity.RunStats
	var baseSnap string
	var baseSums []uint32
	var baseWall time.Duration
	for i, w := range workerCounts {
		run, stats, snap, sums, err := scaleArm(width, frames, w)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			baseStats, baseSnap, baseSums, baseWall = stats, snap, sums, run.Wall
		}
		run.Identical = reflect.DeepEqual(stats, baseStats) &&
			snap == baseSnap && reflect.DeepEqual(sums, baseSums)
		if run.Wall > 0 {
			run.Speedup = float64(baseWall) / float64(run.Wall)
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

// String renders the sweep.
func (r *ScaleResult) String() string {
	header := []string{"workers", "wall", "speedup", "ticks", "chunks", "virtual", "identical"}
	rows := make([][]string, 0, len(r.Runs))
	for _, run := range r.Runs {
		w := fmt.Sprint(run.Workers)
		if run.Workers == 0 {
			w = fmt.Sprintf("0 (GOMAXPROCS=%d)", r.MaxProc)
		}
		ident := "no"
		if run.Identical {
			ident = "yes"
		}
		rows = append(rows, []string{
			w,
			run.Wall.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", run.Speedup),
			fmt.Sprint(run.Ticks),
			fmt.Sprint(run.Chunks),
			run.Virtual.String(),
			ident,
		})
	}
	s := fmt.Sprintf("Scale: wavefront execution, %d lanes x %d frames (host GOMAXPROCS=%d)\n", r.Width, r.Frames, r.MaxProc)
	s += "every arm must reproduce the serial arm byte for byte; wall time is the only permitted difference\n\n"
	s += table(header, rows)
	return s
}
