package experiment

import (
	"fmt"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/media"
	"avdb/internal/netsim"
	"avdb/internal/render"
	"avdb/internal/sched"
)

// Fig4Row is one configuration of the virtual-world experiment.
type Fig4Row struct {
	Config         string // "render at client" or "render at database"
	Frames         int
	WireBytes      int64   // total bytes crossing the network
	BytesPerFrame  float64 // wire bytes per presented frame
	SustainableFPS float64 // frame rate one such stream can sustain on the link
	NeedsClientGPU bool
}

// Fig4Result reproduces Fig. 4: the two alternative activity graphs for
// the virtual-world application, measured on the same walkthrough.
type Fig4Result struct {
	ViewW, ViewH int
	LinkRate     media.DataRate
	Rows         []Fig4Row
}

// Fig4 runs the same user walkthrough under both activity graphs of the
// figure and accounts the bytes each one moves across the network.
func Fig4(steps, viewW, viewH int, linkRate media.DataRate) (*Fig4Result, error) {
	res := &Fig4Result{ViewW: viewW, ViewH: viewH, LinkRate: linkRate}

	for _, atClient := range []bool{true, false} {
		wire, frames, err := fig4Run(steps, viewW, viewH, linkRate, atClient)
		if err != nil {
			return nil, err
		}
		row := Fig4Row{
			Frames:         frames,
			WireBytes:      wire,
			NeedsClientGPU: atClient,
		}
		if atClient {
			row.Config = "render at client (Fig. 4 top)"
		} else {
			row.Config = "render at database (Fig. 4 bottom)"
		}
		if frames > 0 {
			row.BytesPerFrame = float64(wire) / float64(frames)
			row.SustainableFPS = float64(linkRate) / row.BytesPerFrame
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func fig4Run(steps, viewW, viewH int, linkRate media.DataRate, renderAtClient bool) (wireBytes int64, frames int, err error) {
	world := render.Museum()
	renderer := render.NewRenderer(world, viewW, viewH)
	link := netsim.NewLink("wan", linkRate, 2*avtime.Millisecond, 0, 17)

	loc := activity.AtApplication
	if !renderAtClient {
		loc = activity.AtDatabase
	}

	// The texture video lives at the database.
	texSource, err := activities.NewVideoReader("videosrc", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		return 0, 0, err
	}
	if err := texSource.Bind(stdClip(steps, 6), "out"); err != nil {
		return 0, 0, err
	}
	// The user drives the camera from the application.
	move, err := activities.NewMoveSource("move", activity.AtApplication,
		render.Camera{X: 8, Y: 6, Angle: 0}, activities.OrbitPolicy(world, 0.12, 0.04), steps)
	if err != nil {
		return 0, 0, err
	}
	ra := activities.NewRenderActivity("render", loc, renderer)
	window := activities.NewVideoWindow("view", activity.AtApplication, media.VideoQuality{}, avtime.Second)

	g := activity.NewGraph("fig4")
	for _, a := range []activity.Activity{texSource, move, ra, window} {
		if err := g.Add(a); err != nil {
			return 0, 0, err
		}
	}
	var conns []*netsim.Conn
	connect := func(from activity.Activity, fp string, to activity.Activity, tp string, rate media.DataRate) error {
		if from.Location() == to.Location() {
			_, err := g.Connect(from, fp, to, tp)
			return err
		}
		nc, err := link.Connect(rate)
		if err != nil {
			return err
		}
		conns = append(conns, nc)
		_, err = g.ConnectVia(from, fp, to, tp, nc)
		return err
	}
	// Both configurations share the wiring; locations decide which edges
	// cross the network.
	share := linkRate / 4
	if err := connect(texSource, "out", ra, "video", share); err != nil {
		return 0, 0, err
	}
	if err := connect(move, "out", ra, "move", share); err != nil {
		return 0, 0, err
	}
	if err := connect(ra, "out", window, "in", share*2); err != nil {
		return 0, 0, err
	}
	if err := g.Start(); err != nil {
		return 0, 0, err
	}
	if _, err := g.Run(activity.RunConfig{Clock: sched.NewVirtualClock(0)}); err != nil {
		return 0, 0, err
	}
	for _, c := range conns {
		wireBytes += c.BytesCarried()
		c.Close()
	}
	return wireBytes, window.FramesShown(), nil
}

// Fig4SweepRow is one point of the bandwidth sweep: which configuration
// sustains full rate on a link of the given capacity.
type Fig4SweepRow struct {
	LinkRate   media.DataRate
	ClientFPS  float64
	DBFPS      float64
	FullRateAt string // which configurations reach 30 fps
}

// Fig4Sweep measures both configurations across link capacities, locating
// the crossover where database-side rendering stops sustaining full rate
// and only GPU-equipped clients can keep the frame rate.
func Fig4Sweep(steps, viewW, viewH int, rates []media.DataRate) ([]Fig4SweepRow, error) {
	var out []Fig4SweepRow
	for _, rate := range rates {
		res, err := Fig4(steps, viewW, viewH, rate)
		if err != nil {
			return nil, err
		}
		row := Fig4SweepRow{LinkRate: rate,
			ClientFPS: res.Rows[0].SustainableFPS, DBFPS: res.Rows[1].SustainableFPS}
		switch {
		case row.ClientFPS >= 30 && row.DBFPS >= 30:
			row.FullRateAt = "both"
		case row.ClientFPS >= 30:
			row.FullRateAt = "client-render only"
		case row.DBFPS >= 30:
			row.FullRateAt = "db-render only"
		default:
			row.FullRateAt = "neither"
		}
		out = append(out, row)
	}
	return out, nil
}

// SweepString renders a bandwidth sweep.
func SweepString(rows []Fig4SweepRow) string {
	tbl := make([][]string, 0, len(rows))
	for _, r := range rows {
		tbl = append(tbl, []string{
			r.LinkRate.String(),
			fmt.Sprintf("%.1f", r.ClientFPS),
			fmt.Sprintf("%.1f", r.DBFPS),
			r.FullRateAt,
		})
	}
	return "Fig. 4 sweep: sustainable frame rate by link capacity\n\n" +
		table([]string{"link", "fps client-render", "fps db-render", "30fps sustained by"}, tbl)
}

// String renders the comparison.
func (r *Fig4Result) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Config,
			fmt.Sprint(row.Frames),
			fmt.Sprint(row.WireBytes),
			fmt.Sprintf("%.0f", row.BytesPerFrame),
			fmt.Sprintf("%.1f", row.SustainableFPS),
			fmt.Sprint(row.NeedsClientGPU),
		})
	}
	s := fmt.Sprintf("Fig. 4: virtual world, %dx%d view over a %v link\n\n", r.ViewW, r.ViewH, r.LinkRate)
	s += table([]string{"configuration", "frames", "wire bytes", "bytes/frame", "sustainable fps", "needs client 3D"}, rows)
	return s
}
