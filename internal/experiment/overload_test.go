package experiment

import (
	"testing"

	"avdb/internal/sched"
)

// TestOverloadContrast locks the experiment's headline claims: with
// overload control on, misses stay bounded, degradation lands on the
// low-priority class while the high class is never touched, the late
// joiner is shed with a retry hint and later admitted; with control
// off, everything is admitted and the disks thrash for the whole run.
func TestOverloadContrast(t *testing.T) {
	res, err := Overload(120, 4)
	if err != nil {
		t.Fatal(err)
	}
	on, off := res.On, res.Off

	// The off arm thrashes: no sweeps, no shedding, a miss rate that
	// says the admitted schedule is infeasible.
	if off.Swept != 0 || off.Rejected != 0 || off.LateShedAt != 0 {
		t.Errorf("off arm took control actions: swept=%d rejected=%d lateShed=%d",
			off.Swept, off.Rejected, off.LateShedAt)
	}
	if off.MissRate() < 0.20 {
		t.Errorf("off arm miss rate %.3f, want the thrash regime (>= 0.20)", off.MissRate())
	}

	// The on arm keeps misses bounded — well under half the off arm's.
	if on.MissRate() >= off.MissRate()/2 {
		t.Errorf("on arm miss rate %.3f not bounded vs off arm %.3f", on.MissRate(), off.MissRate())
	}
	if on.Overruns >= off.Overruns/2 {
		t.Errorf("on arm overruns %d not bounded vs off arm %d", on.Overruns, off.Overruns)
	}

	// Victim selection respects the service classes: low-priority
	// sessions carry every degradation, the high class is never touched.
	var lowDegraded int
	for _, s := range on.Sessions {
		switch s.Priority {
		case sched.PriorityHigh:
			if s.Degraded != 0 {
				t.Errorf("high-priority %s degraded %d times", s.Client, s.Degraded)
			}
		case sched.PriorityLow:
			lowDegraded += s.Degraded
		}
	}
	if lowDegraded == 0 {
		t.Error("on arm never degraded a low-priority session")
	}
	if on.Swept < 2 || on.Restores < 1 {
		t.Errorf("on arm swept=%d restores=%d, want >=2 sweeps and >=1 restore", on.Swept, on.Restores)
	}

	// Load shedding: the late joiner is rejected under pressure with a
	// virtual-time retry hint, then admitted once pressure clears, and
	// still completes its clip.
	if on.Rejected < 1 || on.LateShedAt == 0 || on.LateRetryHint == "" {
		t.Errorf("on arm late joiner not shed: rejected=%d shedAt=%d hint=%q",
			on.Rejected, on.LateShedAt, on.LateRetryHint)
	}
	if on.LateAdmitted == 0 || on.LateShown != on.LateFrames {
		t.Errorf("on arm late joiner not admitted whole: admitted=%d shown=%d/%d",
			on.LateAdmitted, on.LateShown, on.LateFrames)
	}

	// Every resident session still completes in both arms: degradation
	// sacrifices quality, never frames.
	for _, arm := range []OverloadArm{on, off} {
		for _, s := range arm.Sessions {
			if s.Err != "" || s.Shown != s.Frames {
				t.Errorf("control=%v %s: shown %d/%d err=%q", arm.Control, s.Client, s.Shown, s.Frames, s.Err)
			}
		}
	}
}
