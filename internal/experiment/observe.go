package experiment

import (
	"fmt"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/core"
	"avdb/internal/fault"
	"avdb/internal/media"
	"avdb/internal/obs"
	"avdb/internal/sched"
	"avdb/internal/schema"
)

// Observe fault parameters: a light, seeded campaign that exercises the
// fault counters without killing the stream — transient reads in the
// first quarter (retried), and chunk loss throughout (absorbed by a
// fail-soft connection).
const (
	obsTransientP = 0.10
	obsLossP      = 0.05
	obsTolerance  = 100 * avtime.Millisecond
	obsThreshold  = 3
)

// ObserveResult is one fully instrumented playback: the run statistics
// plus the observability snapshot that reconstructs it.
type ObserveResult struct {
	Frames int
	Seed   int64
	Stats  *activity.RunStats
	Snap   *obs.Snapshot
}

// Observe streams a stored clip from disk0 over lan0 with the
// observability layer enabled end to end: the session, playback,
// activity, connection and chunk spans land in the trace, and the
// admission, storage, network, deadline and fault metrics land in the
// registry.  Everything is keyed to the virtual clock and seeded, so
// two runs with the same arguments render byte-identical snapshots.
func Observe(frames int, seed int64) (*ObserveResult, error) {
	db, err := core.OpenDefault("observe", core.PlatformConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	collector := db.EnableObservability()

	if _, err := db.DefineClass("Clip", "", []schema.AttrDef{
		{Name: "title", Kind: schema.KindString},
		{Name: "video", Kind: schema.KindMedia, MediaKind: media.KindVideo},
	}); err != nil {
		return nil, err
	}
	obj, err := db.NewObject("Clip")
	if err != nil {
		return nil, err
	}
	if err := db.SetAttr(obj.OID(), "title", schema.String("observe")); err != nil {
		return nil, err
	}
	if err := db.SetAttr(obj.OID(), "video", schema.Media(stdClip(frames, seed))); err != nil {
		return nil, err
	}
	q := stdQuality()
	rate := q.DataRate()
	if _, err := db.PlaceMedia(obj.OID(), "video", "disk0", rate); err != nil {
		return nil, err
	}

	total := avtime.WorldTime(frames) * avtime.Second / clipFPS
	plan := fault.NewPlan(seed).
		MustAdd(fault.Fault{Kind: fault.TransientRead, Target: "disk0", Start: 0, Dur: total / 4, Probability: obsTransientP}).
		MustAdd(fault.Fault{Kind: fault.ChunkLoss, Target: "lan0", Start: 0, Dur: total, Probability: obsLossP})
	inj := fault.NewInjector(plan, db.Clock())
	inj.SetSink(collector)
	db.Devices().SetFaultHook(inj)
	link, ok := db.Network().Link("lan0")
	if !ok {
		return nil, fmt.Errorf("experiment: default platform lost lan0")
	}
	link.SetFaultHook(inj)

	sess, err := db.Connect("observe-app", "lan0")
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	vr, err := activities.NewVideoReader("reader", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		return nil, err
	}
	vr.SetRetry(fault.DefaultRetry)
	window := activities.NewVideoWindow("window", activity.AtApplication, media.VideoQuality{}, obsTolerance)
	window.Monitor().SetSink(collector)
	window.EnableStallDetection(obsTolerance, obsThreshold).SetSink(collector)
	for _, a := range []activity.Activity{vr, window} {
		if err := sess.Install(a, sched.Resources{}); err != nil {
			return nil, err
		}
	}
	if _, err := db.Admission().Reserve(core.ResourcesForVideo(q)); err != nil {
		return nil, err
	}
	conn, err := sess.Connect(vr, "out", window, "in", rate)
	if err != nil {
		return nil, err
	}
	conn.SetFailSoft(true)
	if err := sess.BindValue(obj.OID(), "video", vr, "out", rate); err != nil {
		return nil, err
	}

	pb, err := sess.Start()
	if err != nil {
		return nil, err
	}
	stats, err := pb.Wait()
	if err != nil {
		return nil, err
	}
	sess.Close()

	return &ObserveResult{Frames: frames, Seed: seed, Stats: stats, Snap: collector.Snapshot()}, nil
}

// String summarizes the instrumented run; the full snapshot is rendered
// separately via Snap.MetricsText / Snap.TraceText.
func (r *ObserveResult) String() string {
	s := fmt.Sprintf("Observe: instrumented playback of %d frames, seed %d\n\n", r.Frames, r.Seed)
	header := []string{"measure", "value"}
	lat := r.Snap.Histogram("stream.chunk_latency_us")
	latMean := avtime.WorldTime(0)
	if lat != nil {
		latMean = avtime.WorldTime(int64(lat.Mean()))
	}
	usedBuf, _ := r.Snap.Gauge("admission.used_buffers")
	rows := [][]string{
		{"spans recorded", fmt.Sprint(len(r.Snap.Spans))},
		{"chunks delivered", fmt.Sprint(r.Snap.Counter("stream.chunks"))},
		{"bytes delivered", fmt.Sprint(r.Snap.Counter("stream.bytes"))},
		{"chunks dropped", fmt.Sprint(r.Snap.Counter("stream.dropped"))},
		{"mean chunk latency", fmt.Sprint(latMean)},
		{"deadlines presented", fmt.Sprint(r.Snap.Counter("deadline.presented"))},
		{"deadlines missed", fmt.Sprint(r.Snap.Counter("deadline.missed"))},
		{"storage reads", fmt.Sprint(r.Snap.Counter("storage.reads"))},
		{"read faults (retried)", fmt.Sprint(r.Snap.Counter("storage.read_faults"))},
		{"faults injected (loss)", fmt.Sprint(r.Snap.Counter("fault.injected.chunk-loss"))},
		{"admission buffers held", fmt.Sprint(usedBuf)},
	}
	s += table(header, rows)
	s += "\nrun `avbench -exp obs -metrics -trace` for the full snapshot\n"
	return s
}
