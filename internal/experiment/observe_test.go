package experiment

import (
	"strings"
	"testing"
)

// TestObserveSnapshotDeterministic is the acceptance criterion for the
// observability layer: the same seed must render a byte-identical
// snapshot — spans, counters, gauges and histograms — across runs.
// Everything downstream (golden files, avbench output diffs) rests on
// this.
func TestObserveSnapshotDeterministic(t *testing.T) {
	a, err := Observe(60, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Observe(60, 7)
	if err != nil {
		t.Fatal(err)
	}
	if at, bt := a.Snap.Text(), b.Snap.Text(); at != bt {
		t.Errorf("snapshot text differs between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", at, bt)
	}
	aj, err := a.Snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.Snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Error("snapshot JSON differs between identical runs")
	}
	if as, bs := a.String(), b.String(); as != bs {
		t.Errorf("summary differs between identical runs:\n%s\nvs\n%s", as, bs)
	}
}

// TestObserveCapturesAllSurfaces checks that one instrumented playback
// lands data in every metric family the layer advertises.
func TestObserveCapturesAllSurfaces(t *testing.T) {
	res, err := Observe(90, 42)
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Snap
	if len(snap.Spans) == 0 {
		t.Fatal("no spans recorded")
	}
	// Exactly one session span, one playback span nested under it.
	var sessions, playbacks int
	for _, sp := range snap.Spans {
		switch sp.Kind {
		case "session":
			sessions++
		case "playback":
			playbacks++
		}
		if sp.Open {
			t.Errorf("span %d %q left open", sp.ID, sp.Name)
		}
	}
	if sessions != 1 || playbacks != 1 {
		t.Errorf("got %d session, %d playback spans; want 1 each", sessions, playbacks)
	}
	for _, counter := range []string{
		"session.opened", "session.closed",
		"stream.chunks", "stream.bytes",
		"storage.reads", "storage.read_bytes",
		"sched.ticks",
		"deadline.presented",
	} {
		if snap.Counter(counter) == 0 {
			t.Errorf("counter %s never incremented", counter)
		}
	}
	for _, gauge := range []string{
		"admission.total_buffers", "admission.used_buffers",
		"admission.total_cpu", "admission.total_bus",
	} {
		if _, ok := snap.Gauge(gauge); !ok {
			t.Errorf("gauge %s never set", gauge)
		}
	}
	for _, hist := range []string{
		"stream.chunk_latency_us", "storage.read_time_us", "deadline.lateness_us",
	} {
		h := snap.Histogram(hist)
		if h == nil || h.N == 0 {
			t.Errorf("histogram %s has no observations", hist)
		}
	}
	// Network metrics carry the link id prefix.
	if snap.Counter("net.lan0.transfers") == 0 {
		t.Error("net.lan0.transfers never incremented")
	}
	// The rendered summary mentions its own follow-up command.
	if !strings.Contains(res.String(), "avbench -exp obs") {
		t.Error("summary lost its usage hint")
	}
}
