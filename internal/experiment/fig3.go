package experiment

import (
	"fmt"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/avtime"
	"avdb/internal/core"
	"avdb/internal/media"
	"avdb/internal/sched"
	"avdb/internal/schema"
	"avdb/internal/synth"
	"avdb/internal/temporal"
)

// Fig3Result reproduces Fig. 3 and the §4.3 programs: an AV database as
// the locus of activities, streaming a temporally composed newscast to an
// application.  It contrasts two configurations:
//
//   - independent: video and audio as two unrelated streams over two
//     network connections (no temporal composition) — the tracks drift
//     apart under jitter;
//   - composite: one MultiSource → MultiSink composite stream whose sync
//     controller maintains the correlation.
type Fig3Result struct {
	Frames          int
	SamplesPlayed   int64
	IndependentSkew avtime.WorldTime // worst steady-state inter-track skew
	CompositeSkew   avtime.WorldTime
	MissRate        float64 // video deadline-miss rate, composite run
}

// Fig3 stores a Newscast object in a fresh database and plays it back
// both ways through real sessions.
func Fig3(frames int) (*Fig3Result, error) {
	independent, err := fig3Run(frames, false)
	if err != nil {
		return nil, err
	}
	composite, err := fig3Run(frames, true)
	if err != nil {
		return nil, err
	}
	composite.IndependentSkew = independent.CompositeSkew
	return composite, nil
}

func fig3Run(frames int, useComposite bool) (*Fig3Result, error) {
	db, err := core.OpenDefault("corp", core.PlatformConfig{Seed: 11})
	if err != nil {
		return nil, err
	}
	if _, err := db.DefineClass("Newscast", "", []schema.AttrDef{
		{Name: "title", Kind: schema.KindString},
		{Name: "clip", Kind: schema.KindTComp, Tracks: []schema.TrackDef{
			{Name: "video", MediaKind: media.KindVideo},
			{Name: "english", MediaKind: media.KindAudio},
		}},
	}); err != nil {
		return nil, err
	}
	clip := temporal.NewComposite("clip")
	if err := clip.Add("video", stdClip(frames, 4)); err != nil {
		return nil, err
	}
	narration, err := synth.Speech(media.AudioQualityVoice, float64(frames)/clipFPS, 5)
	if err != nil {
		return nil, err
	}
	if err := clip.Add("english", narration); err != nil {
		return nil, err
	}
	obj, err := db.NewObject("Newscast")
	if err != nil {
		return nil, err
	}
	if err := db.SetAttr(obj.OID(), "title", schema.String("60 Minutes")); err != nil {
		return nil, err
	}
	if err := db.SetAttr(obj.OID(), "clip", schema.TComp(clip)); err != nil {
		return nil, err
	}
	myNews, err := db.SelectOne(`select Newscast where title = "60 Minutes"`)
	if err != nil {
		return nil, err
	}

	sess, err := db.Connect("app", "lan0")
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	// Per-track processing latencies: video decoding is slow and jittery,
	// audio is fast.
	vr, err := activities.NewVideoReader("video", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		return nil, err
	}
	vr.SetLatency(sched.NewLatency(14*avtime.Millisecond, 6*avtime.Millisecond, 31))
	ar, err := activities.NewAudioReader("english", activity.AtDatabase, media.TypeVoiceAudio)
	if err != nil {
		return nil, err
	}
	ar.SetLatency(sched.NewLatency(2*avtime.Millisecond, avtime.Millisecond, 32))

	// Sink names: inside a MultiSink they must match the source tracks;
	// as free-standing nodes they must not collide with the readers.
	winName, dacName := "video", "english"
	if !useComposite {
		winName, dacName = "video-window", "audio-dac"
	}
	tolerance := 80 * avtime.Millisecond
	window := activities.NewVideoWindow(winName, activity.AtApplication, media.VideoQuality{}, tolerance)
	dac, err := activities.NewAudioSink(dacName, activity.AtApplication, media.TypeVoiceAudio, media.AudioQualityVoice, tolerance)
	if err != nil {
		return nil, err
	}

	if useComposite {
		src := activities.NewMultiSource("dbSource", activity.AtDatabase)
		for _, a := range []activity.Activity{vr, ar} {
			if err := src.Install(a); err != nil {
				return nil, err
			}
		}
		if err := activities.SealMultiSource(src); err != nil {
			return nil, err
		}
		sink := activities.NewMultiSink("appSink", activity.AtApplication)
		for _, a := range []activity.Activity{window, dac} {
			if err := sink.Install(a); err != nil {
				return nil, err
			}
		}
		if err := activities.SealMultiSink(sink); err != nil {
			return nil, err
		}
		if err := sess.Install(src, sched.Resources{Buffers: 2}); err != nil {
			return nil, err
		}
		if err := sess.Install(sink, sched.Resources{}); err != nil {
			return nil, err
		}
		if _, err := sess.Connect(src, "out", sink, "in", media.MBPerSecond); err != nil {
			return nil, err
		}
		if err := sess.BindClip(myNews, "clip", src, 0); err != nil {
			return nil, err
		}
	} else {
		for _, a := range []activity.Activity{vr, ar, window, dac} {
			if err := sess.Install(a, sched.Resources{}); err != nil {
				return nil, err
			}
		}
		if _, err := sess.Connect(vr, "out", window, "in", media.MBPerSecond); err != nil {
			return nil, err
		}
		if _, err := sess.Connect(ar, "out", dac, "in", media.MBPerSecond); err != nil {
			return nil, err
		}
		if err := sess.BindTrack(myNews, "clip", "video", vr, "out", 0); err != nil {
			return nil, err
		}
		if err := sess.BindTrack(myNews, "clip", "english", ar, "out", 0); err != nil {
			return nil, err
		}
	}

	pb, err := sess.Start()
	if err != nil {
		return nil, err
	}
	if _, err := pb.Wait(); err != nil {
		return nil, err
	}

	va, aa := window.Arrivals(), dac.Arrivals()
	n := min(len(va), len(aa))
	var worst avtime.WorldTime
	warmup := n / 5
	for i := warmup; i < n; i++ {
		s := va[i] - aa[i]
		if s < 0 {
			s = -s
		}
		if s > worst {
			worst = s
		}
	}
	return &Fig3Result{
		Frames:        window.FramesShown(),
		SamplesPlayed: dac.SamplesPlayed(),
		CompositeSkew: worst,
		MissRate:      window.Monitor().MissRate(),
	}, nil
}

// String renders the comparison.
func (r *Fig3Result) String() string {
	rows := [][]string{
		{"independent streams (no tcomp)", r.IndependentSkew.String()},
		{"composite MultiSource/MultiSink", r.CompositeSkew.String()},
	}
	s := fmt.Sprintf("Fig. 3: database/application streaming, %d video frames + %d audio samples\n\n",
		r.Frames, r.SamplesPlayed)
	s += table([]string{"configuration", "worst steady-state A/V skew"}, rows)
	s += fmt.Sprintf("\nvideo deadline-miss rate (composite): %.1f%%\n", 100*r.MissRate)
	return s
}
