package experiment

import (
	"fmt"
	"strings"

	"avdb/internal/activities"
	"avdb/internal/activity"
	"avdb/internal/codec"
	"avdb/internal/media"
)

// Table1Row is one line of the paper's Table 1, derived by instantiating
// the concrete class and introspecting its ports.
type Table1Row struct {
	Activity string
	Kind     activity.ActivityKind
	InTypes  []string
	OutTypes []string
}

// Table1Result reproduces Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 instantiates every video activity class of Table 1 and reads the
// table's columns back from the framework: the kind comes from the port
// directions, the data-type columns from the port types.
func Table1() (*Table1Result, error) {
	se, err := codec.NewIntraStreamEncoder(2)
	if err != nil {
		return nil, err
	}
	sd, err := codec.NewVideoStreamDecoder(clipW, clipH, clipDepth, 2)
	if err != nil {
		return nil, err
	}
	gen := func(int) *media.Frame { return media.NewFrame(clipW, clipH, clipDepth) }

	dig, err := activities.NewVideoDigitizer("video digitizer", activity.AtDatabase, gen, 1)
	if err != nil {
		return nil, err
	}
	rawReader, err := activities.NewVideoReader("video reader", activity.AtDatabase, media.TypeRawVideo30)
	if err != nil {
		return nil, err
	}
	compReader, err := activities.NewVideoReader("video reader (compressed)", activity.AtDatabase, codec.TypeMPEGVideo)
	if err != nil {
		return nil, err
	}
	enc, err := activities.NewVideoEncoder("video encoder", activity.AtDatabase, codec.TypeJPEGVideo, se)
	if err != nil {
		return nil, err
	}
	dec, err := activities.NewVideoDecoder("video decoder", activity.AtDatabase, codec.TypeJPEGVideo, sd)
	if err != nil {
		return nil, err
	}
	tee, err := activities.NewVideoTee("video tee", activity.AtDatabase, 3)
	if err != nil {
		return nil, err
	}
	mixer, err := activities.NewVideoMixer("video mixer", activity.AtDatabase, []float64{1, 1})
	if err != nil {
		return nil, err
	}
	window := activities.NewVideoWindow("video window", activity.AtApplication, media.VideoQuality{}, 0)
	writer, err := activities.NewVideoWriter("video writer", activity.AtDatabase, codec.TypeMPEGVideo)
	if err != nil {
		return nil, err
	}

	res := &Table1Result{}
	for _, a := range []activity.Activity{dig, rawReader, compReader, enc, dec, tee, mixer, window, writer} {
		row := Table1Row{Activity: a.Name(), Kind: a.Kind()}
		for _, p := range a.Ports() {
			if p.Dir() == activity.In {
				row.InTypes = appendUnique(row.InTypes, p.Type().Name)
			} else {
				row.OutTypes = appendUnique(row.OutTypes, p.Type().Name)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// String renders the reproduced table.
func (r *Table1Result) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		in, out := strings.Join(row.InTypes, ", "), strings.Join(row.OutTypes, ", ")
		if in == "" {
			in = "-"
		}
		if out == "" {
			out = "-"
		}
		rows = append(rows, []string{row.Activity, row.Kind.String(), in, out})
	}
	return fmt.Sprintf("Table 1: examples of video activities\n\n%s",
		table([]string{"activity", "kind", "input port datatype", "output port datatype"}, rows))
}
